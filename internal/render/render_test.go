package render_test

import (
	"math/rand"
	"strings"
	"testing"

	"ptrider/internal/render"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

func newMap(t *testing.T, w, h int) (*roadnet.Graph, *render.Map) {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 6, 6, 100)
	m, err := render.NewMap(g, w, h)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return g, m
}

func TestNewMapValidation(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 3, 3, 100)
	if _, err := render.NewMap(g, 1, 10); err == nil {
		t.Error("1-wide map accepted")
	}
	plain := testnet.RandomConnected(rand.New(rand.NewSource(1)), 5, 1)
	if _, err := render.NewMap(plain, 10, 10); err == nil {
		t.Error("non-embedded network accepted")
	}
}

func TestMapShowsRoadsAndBorder(t *testing.T) {
	_, m := newMap(t, 30, 15)
	s := m.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 17 {
		t.Fatalf("map has %d lines, want 17", len(lines))
	}
	if !strings.HasPrefix(lines[0], "+---") || !strings.HasPrefix(lines[16], "+---") {
		t.Fatal("missing border")
	}
	if !strings.Contains(s, string(render.GlyphRoad)) {
		t.Fatal("no road glyphs plotted")
	}
	for _, l := range lines[1:16] {
		if len([]rune(l)) != 32 {
			t.Fatalf("ragged line %q", l)
		}
	}
}

func TestVehiclePriorities(t *testing.T) {
	_, m := newMap(t, 40, 20)
	m.PlotVehicle(0, false)
	if !strings.Contains(m.String(), string(render.GlyphVehicle)) {
		t.Fatal("idle vehicle not drawn")
	}
	// A busy vehicle at the same vertex overwrites the idle one.
	m.PlotVehicle(0, true)
	s := m.String()
	if !strings.Contains(s, string(render.GlyphBusy)) {
		t.Fatal("busy vehicle not drawn")
	}
	// The selected-vehicle overlay wins over everything.
	m.PlotSchedule(0, []roadnet.VertexID{7}, []roadnet.VertexID{14})
	s = m.String()
	for _, want := range []rune{render.GlyphSelected, render.GlyphPickup, render.GlyphDropoff} {
		if !strings.Contains(s, string(want)) {
			t.Fatalf("missing glyph %q in\n%s", want, s)
		}
	}
}

func TestLowPriorityDoesNotOverwrite(t *testing.T) {
	_, m := newMap(t, 40, 20)
	m.PlotSchedule(0, nil, nil) // '*' at vertex 0, priority 5
	m.PlotVehicle(0, false)     // priority 2 must lose
	if strings.Contains(m.String(), string(render.GlyphVehicle)) {
		t.Fatal("low-priority glyph overwrote the selection")
	}
}

func TestLegendMentionsAllGlyphs(t *testing.T) {
	l := render.Legend()
	for _, g := range []rune{render.GlyphRoad, render.GlyphVehicle, render.GlyphBusy, render.GlyphSelected, render.GlyphPickup, render.GlyphDropoff} {
		if !strings.Contains(l, string(g)) {
			t.Errorf("legend missing %q", g)
		}
	}
}
