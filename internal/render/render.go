// Package render draws the website interface's map view (paper
// Fig. 4c) as ASCII: the road network's extent as a character raster
// with vehicles, a selected vehicle's trip-schedule stops, and request
// endpoints overlaid. The web demo draws red lines on a slippy map;
// terminals get a raster — the information content (where the fleet is,
// where a taxi is headed) is the same.
package render

import (
	"fmt"
	"strings"

	"ptrider/internal/geo"
	"ptrider/internal/roadnet"
)

// Glyphs used by the renderer, in increasing priority (later entries
// overwrite earlier ones when cells collide).
const (
	GlyphEmpty     = ' '
	GlyphRoad      = '.'
	GlyphVehicle   = 'v'
	GlyphBusy      = 'V' // vehicle with riders onboard
	GlyphPickup    = 'P'
	GlyphDropoff   = 'D'
	GlyphSelected  = '*' // the selected vehicle
	GlyphRequested = 'R' // a request's start vertex
)

// Map is an ASCII raster over a road network's bounding box.
type Map struct {
	g      *roadnet.Graph
	bounds geo.Rect
	w, h   int
	cells  []rune
	prio   []int
}

// NewMap creates a raster of the given character dimensions (both ≥ 2)
// covering the network's bounding box, with every vertex pre-plotted as
// road.
func NewMap(g *roadnet.Graph, width, height int) (*Map, error) {
	if width < 2 || height < 2 {
		return nil, fmt.Errorf("render: map must be at least 2x2 characters")
	}
	if !g.Embedded() {
		return nil, fmt.Errorf("render: network is not embedded")
	}
	m := &Map{
		g:      g,
		bounds: g.Bounds().Expand(1e-9),
		w:      width,
		h:      height,
		cells:  make([]rune, width*height),
		prio:   make([]int, width*height),
	}
	for i := range m.cells {
		m.cells[i] = GlyphEmpty
	}
	for v := 0; v < g.NumVertices(); v++ {
		m.plot(g.Point(roadnet.VertexID(v)), GlyphRoad, 1)
	}
	return m, nil
}

// cellAt maps a point to a raster index.
func (m *Map) cellAt(p geo.Point) int {
	fx := (p.X - m.bounds.Min.X) / m.bounds.Width()
	fy := (p.Y - m.bounds.Min.Y) / m.bounds.Height()
	x := int(fx * float64(m.w))
	// Flip y: row 0 is the top of the map, max Y of the world.
	y := m.h - 1 - int(fy*float64(m.h))
	if x < 0 {
		x = 0
	}
	if x >= m.w {
		x = m.w - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= m.h {
		y = m.h - 1
	}
	return y*m.w + x
}

func (m *Map) plot(p geo.Point, glyph rune, priority int) {
	i := m.cellAt(p)
	if priority >= m.prio[i] {
		m.cells[i] = glyph
		m.prio[i] = priority
	}
}

// PlotVertex draws a glyph at a vertex with the given priority
// (higher priorities overwrite lower ones).
func (m *Map) PlotVertex(v roadnet.VertexID, glyph rune, priority int) {
	m.plot(m.g.Point(v), glyph, priority)
}

// PlotVehicle draws a vehicle at vertex loc; busy vehicles (riders
// onboard) render differently.
func (m *Map) PlotVehicle(loc roadnet.VertexID, busy bool) {
	if busy {
		m.PlotVertex(loc, GlyphBusy, 3)
		return
	}
	m.PlotVertex(loc, GlyphVehicle, 2)
}

// PlotSchedule overlays a selected vehicle's position and its stop
// sequence (pickups and dropoffs).
func (m *Map) PlotSchedule(loc roadnet.VertexID, pickups, dropoffs []roadnet.VertexID) {
	for _, p := range pickups {
		m.PlotVertex(p, GlyphPickup, 4)
	}
	for _, d := range dropoffs {
		m.PlotVertex(d, GlyphDropoff, 4)
	}
	m.PlotVertex(loc, GlyphSelected, 5)
}

// String renders the raster with a border.
func (m *Map) String() string {
	var b strings.Builder
	b.Grow((m.w + 3) * (m.h + 2))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", m.w))
	b.WriteString("+\n")
	for y := 0; y < m.h; y++ {
		b.WriteByte('|')
		for x := 0; x < m.w; x++ {
			b.WriteRune(m.cells[y*m.w+x])
		}
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", m.w))
	b.WriteString("+\n")
	return b.String()
}

// Legend describes the glyphs for display next to a map.
func Legend() string {
	return "legend: . road   v idle taxi   V taxi with riders   * selected taxi   P pickup   D dropoff   R request"
}
