package sim_test

// Surge-loop simulation tests: the price-aware rider model declines
// premium quotes, and a peak-hour day with surge enabled sheds demand
// from hot cells without cratering overall acceptance.

import (
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/pricing"
	"ptrider/internal/pricing/surge"
	"ptrider/internal/sim"
)

func TestPriceAwareChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	model := sim.PriceAware{}
	sd := 1000.0
	floor := pricing.DefaultRatio(1) * sd

	// At the unsurged floor (premium 1) nearly every quote is accepted,
	// and the pick is the cheapest option.
	atFloor := []core.Option{{Price: floor * 1.1}, {Price: floor}}
	accepted := 0
	for i := 0; i < 500; i++ {
		if pick := model.ChooseCtx(atFloor, sd, 1, rng); pick == 1 {
			accepted++
		} else if pick == 0 {
			t.Fatal("accepted a non-cheapest option")
		}
	}
	if accepted < 450 {
		t.Fatalf("floor-priced quotes accepted %d/500 times", accepted)
	}

	// Far beyond the pivot premium, quotes are almost surely declined.
	steep := []core.Option{{Price: floor * 4}}
	accepted = 0
	for i := 0; i < 500; i++ {
		if model.ChooseCtx(steep, sd, 1, rng) == 0 {
			accepted++
		}
	}
	if accepted > 50 {
		t.Fatalf("4x-premium quotes accepted %d/500 times", accepted)
	}

	// Interface plumbing: empty skylines decline, the plain Choose
	// fallback behaves like Cheapest, and the model parses by name.
	if model.ChooseCtx(nil, sd, 1, rng) != -1 {
		t.Fatal("empty skyline not declined")
	}
	if model.Choose(atFloor, rng) != 1 {
		t.Fatal("context-free fallback is not cheapest")
	}
	if m, err := sim.ParseChoiceModel("priceaware"); err != nil || m.Name() != "priceaware" {
		t.Fatalf("ParseChoiceModel(priceaware) = %v, %v", m, err)
	}
	if _, ok := sim.ChoiceModel(model).(sim.ContextChoice); !ok {
		t.Fatal("PriceAware does not implement ContextChoice")
	}
}

// TestPeakSurgeSimulation runs a peak-hour day against a surge-enabled
// engine with price-aware riders: surged quotes must appear, some
// riders must be priced off the hot cells, and the overall acceptance
// rate must stay healthy.
func TestPeakSurgeSimulation(t *testing.T) {
	run := func(surgeOn bool) (*sim.Result, core.SurgePanel) {
		g, err := gen.GenerateNetwork(gen.CityConfig{Width: 12, Height: 12, Seed: 8})
		if err != nil {
			t.Fatalf("network: %v", err)
		}
		cfg := core.Config{
			GridCols: 4, GridRows: 4, Capacity: 4,
			MaxWaitSeconds: 900, Sigma: 0.6, Algorithm: core.AlgoDualSide, Seed: 8,
		}
		if surgeOn {
			cfg.SurgeEnabled = true
			cfg.SurgeEpochSeconds = 600
			cfg.SurgeAlpha = 0.7
			cfg.SurgeTiers = []surge.Tier{{MinRatio: 0.2, Multiplier: 1.2}, {MinRatio: 0.8, Multiplier: 1.5}}
		}
		e, err := core.NewEngine(g, cfg)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		e.AddVehiclesUniform(10)

		trips, err := gen.GenerateTrips(g, gen.TripConfig{
			NumTrips: 400, DaySeconds: 86400, Seed: 8, MinTripMeters: 400,
			HourlyWeights: gen.PeakHourlyWeights(),
		})
		if err != nil {
			t.Fatalf("trips: %v", err)
		}
		// The peak profile must actually concentrate the day: most
		// trips land in the 07–09 and 17–19 rush windows.
		rush := 0
		for _, tr := range trips {
			h := int(tr.Time) / 3600 % 24
			if (h >= 6 && h <= 9) || (h >= 16 && h <= 19) {
				rush++
			}
		}
		if rush*10 < len(trips)*7 {
			t.Fatalf("only %d/%d trips in the rush windows", rush, len(trips))
		}

		// Pivot 4: a shared ride's detour already prices well above the
		// solo floor, so the decline band has to sit above the baseline
		// premium for the surge delta to be the thing riders react to.
		s, err := sim.New(e, trips, sim.Config{
			TickSeconds: 5, Seed: 8, Choice: sim.PriceAware{Pivot: 4}, DrainSeconds: 3600,
		})
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res, e.SurgeStats()
	}

	off, offPanel := run(false)
	on, onPanel := run(true)

	if offPanel.SurgedQuotes != 0 || onPanel.SurgedQuotes == 0 {
		t.Fatalf("surged quotes: off %d, on %d", offPanel.SurgedQuotes, onPanel.SurgedQuotes)
	}
	if onPanel.Epoch == 0 {
		t.Fatalf("surge epochs never advanced: %+v", onPanel)
	}
	// Surge sheds demand: the price-aware riders decline more quotes
	// when hot cells carry a multiplier...
	if on.Declined <= off.Declined {
		t.Fatalf("surge shed no demand: declined %d (on) vs %d (off)", on.Declined, off.Declined)
	}
	// ...but must not crater acceptance relative to the static-fare
	// baseline.
	rate := func(r *sim.Result) float64 {
		quoted := r.Submitted - r.NoOption
		if quoted <= 0 {
			t.Fatalf("no quotes at all: %+v", r)
		}
		return float64(r.Accepted) / float64(quoted)
	}
	if rOn, rOff := rate(on), rate(off); rOn < 0.75*rOff {
		t.Fatalf("acceptance cratered under surge: %.2f vs %.2f baseline", rOn, rOff)
	}
	if on.Engine.Completed == 0 {
		t.Fatal("nothing completed under surge")
	}
}
