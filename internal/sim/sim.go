// Package sim drives PTRider through a day-scale workload (paper §4):
// trips arrive from a trace, each is answered with its option skyline,
// a rider choice model picks one (or declines), vehicles move at the
// constant system speed, and the statistics panel quantities — average
// response time, sharing rate, options per request — are accumulated.
// Vehicle failure injection exercises the index-removal paths.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"ptrider/internal/core"
	"ptrider/internal/pricing"
	"ptrider/internal/stats"
	"ptrider/internal/trace"
)

// ChoiceModel selects one option from a skyline, or -1 to decline.
// Implementations must be deterministic given the rng.
type ChoiceModel interface {
	Name() string
	Choose(opts []core.Option, rng *rand.Rand) int
}

// EarliestPickup always takes the earliest pick-up option (index 0 of
// the time-sorted skyline).
type EarliestPickup struct{}

// Name implements ChoiceModel.
func (EarliestPickup) Name() string { return "earliest" }

// Choose implements ChoiceModel.
func (EarliestPickup) Choose(opts []core.Option, _ *rand.Rand) int {
	if len(opts) == 0 {
		return -1
	}
	return 0
}

// Cheapest always takes the lowest-price option.
type Cheapest struct{}

// Name implements ChoiceModel.
func (Cheapest) Name() string { return "cheapest" }

// Choose implements ChoiceModel.
func (Cheapest) Choose(opts []core.Option, _ *rand.Rand) int {
	best, bestPrice := -1, math.Inf(1)
	for i, o := range opts {
		if o.Price < bestPrice {
			best, bestPrice = i, o.Price
		}
	}
	return best
}

// UniformChoice picks uniformly among the options — the demo's
// assumption that riders have heterogeneous preferences across the
// skyline.
type UniformChoice struct{}

// Name implements ChoiceModel.
func (UniformChoice) Name() string { return "uniform" }

// Choose implements ChoiceModel.
func (UniformChoice) Choose(opts []core.Option, rng *rand.Rand) int {
	if len(opts) == 0 {
		return -1
	}
	return rng.Intn(len(opts))
}

// UtilityChoice trades pick-up time against price with per-rider random
// weights: utility = −(α·time + (1−α)·β·price), α ~ U(0,1). Riders in a
// hurry take early pickups; price-sensitive riders wait (the paper's
// seaside-couple motivation).
type UtilityChoice struct {
	// PriceScale β converts price units into time-equivalent units
	// (0 = 60: one price unit ≈ one minute).
	PriceScale float64
}

// Name implements ChoiceModel.
func (UtilityChoice) Name() string { return "utility" }

// Choose implements ChoiceModel.
func (u UtilityChoice) Choose(opts []core.Option, rng *rand.Rand) int {
	if len(opts) == 0 {
		return -1
	}
	beta := u.PriceScale
	if beta == 0 {
		beta = 60
	}
	alpha := rng.Float64()
	best, bestU := -1, math.Inf(1)
	for i, o := range opts {
		cost := alpha*o.PickupDist + (1-alpha)*beta*o.Price
		if cost < bestU {
			best, bestU = i, cost
		}
	}
	return best
}

// ContextChoice is an optional ChoiceModel extension for riders whose
// decision depends on the request itself, not just the skyline: the
// trip distance and rider count let a model judge prices against the
// unsurged fare floor. Models implementing it get ChooseCtx called
// instead of Choose.
type ContextChoice interface {
	ChoiceModel
	ChooseCtx(opts []core.Option, sd float64, riders int, rng *rand.Rand) int
}

// PriceAware declines surged quotes with probability rising in the
// premium over the base fare: the cheapest option's price is compared
// against the unsurged floor f_n·dist(s,d), and acceptance follows a
// logistic curve in that ratio — premium 1 (no surge) is almost always
// accepted, premium ≥ Pivot is a coin flip, far beyond it a near-sure
// decline. Accepted riders then pick the cheapest option. This is the
// demand-elasticity half of the surge loop: hot cells price some
// riders out, which sheds demand until the multiplier relaxes.
type PriceAware struct {
	// Pivot is the premium with 50% acceptance (0 = 2.0).
	Pivot float64
	// Steepness scales the logistic slope (0 = 4).
	Steepness float64
}

// Name implements ChoiceModel.
func (PriceAware) Name() string { return "priceaware" }

// Choose implements ChoiceModel: with no request context there is no
// floor to compare against, so fall back to cheapest-option behaviour.
func (p PriceAware) Choose(opts []core.Option, rng *rand.Rand) int {
	return Cheapest{}.Choose(opts, rng)
}

// ChooseCtx implements ContextChoice.
func (p PriceAware) ChooseCtx(opts []core.Option, sd float64, riders int, rng *rand.Rand) int {
	best := Cheapest{}.Choose(opts, rng)
	if best < 0 {
		return -1
	}
	floor := pricing.DefaultRatio(riders) * sd
	if floor <= 0 {
		return best
	}
	pivot := p.Pivot
	if pivot == 0 {
		pivot = 2.0
	}
	steep := p.Steepness
	if steep == 0 {
		steep = 4
	}
	premium := opts[best].Price / floor
	accept := 1 / (1 + math.Exp(steep*(premium-pivot)))
	if rng.Float64() > accept {
		return -1
	}
	return best
}

// choose dispatches to ChooseCtx when the model wants request context.
func choose(m ChoiceModel, rec *core.RequestRecord, rng *rand.Rand) int {
	if cc, ok := m.(ContextChoice); ok {
		return cc.ChooseCtx(rec.Options, rec.SD, rec.Riders, rng)
	}
	return m.Choose(rec.Options, rng)
}

// ParseChoiceModel maps a rider-model name — "earliest", "cheapest",
// "uniform", "priceaware" or "utility" (the default for "") — to its
// ChoiceModel.
func ParseChoiceModel(name string) (ChoiceModel, error) {
	switch name {
	case "", "utility":
		return UtilityChoice{}, nil
	case "earliest":
		return EarliestPickup{}, nil
	case "cheapest":
		return Cheapest{}, nil
	case "uniform":
		return UniformChoice{}, nil
	case "priceaware":
		return PriceAware{}, nil
	}
	return nil, fmt.Errorf("sim: unknown choice model %q", name)
}

// Config parameterises a simulation run.
type Config struct {
	// TickSeconds is the movement step (0 = 1s).
	TickSeconds float64
	// Choice is the rider model (nil = UtilityChoice{}).
	Choice ChoiceModel
	// Seed drives choices and failure injection.
	Seed int64
	// FailuresPerHour removes that many random vehicles per simulated
	// hour (failure injection; 0 = none). Orphaned requests are
	// resubmitted once.
	FailuresPerHour float64
	// EndSeconds stops the run at this clock even if trips remain
	// (0 = run to last trip + drain).
	EndSeconds float64
	// DrainSeconds keeps simulating after the last submission so
	// onboard riders arrive (0 = 3600).
	DrainSeconds float64
}

// HourBucket aggregates one hour of the day (the website panel's
// statistics-over-time view).
type HourBucket struct {
	Hour      int
	Submitted int
	Accepted  int
	NoOption  int
	// AvgOptions is the mean skyline size for this hour's requests.
	AvgOptions float64
	optionsSum float64
}

// Result aggregates a run.
type Result struct {
	Engine core.EngineStats
	// Submitted counts trips offered to the system.
	Submitted int
	// NoOption counts trips whose skyline was empty.
	NoOption int
	// Declined counts trips whose rider rejected all options.
	Declined int
	// Accepted counts trips that chose an option.
	Accepted int
	// FailuresInjected counts removed vehicles.
	FailuresInjected int
	// Resubmitted counts orphaned requests re-offered.
	Resubmitted int
	// OptionsPerRequest summarises skyline sizes.
	OptionsPerRequest stats.Online
	// PickupSeconds and Prices summarise chosen options.
	PickupSeconds stats.Online
	Prices        stats.Online
	// Hourly buckets requests by submission hour (clock/3600, capped at
	// 23). Only hours with traffic appear.
	Hourly []HourBucket
}

func (r *Result) hourBucket(clock float64) *HourBucket {
	h := int(clock / 3600)
	if h < 0 {
		h = 0
	}
	if h > 23 {
		h = 23
	}
	for i := range r.Hourly {
		if r.Hourly[i].Hour == h {
			return &r.Hourly[i]
		}
	}
	r.Hourly = append(r.Hourly, HourBucket{Hour: h})
	return &r.Hourly[len(r.Hourly)-1]
}

// Simulation replays a workload against an engine.
type Simulation struct {
	eng    *core.Engine
	trips  []trace.Trip
	cfg    Config
	rng    *rand.Rand
	choice ChoiceModel
}

// New prepares a simulation. Trips must be sorted by Time.
func New(eng *core.Engine, trips []trace.Trip, cfg Config) (*Simulation, error) {
	for i := 1; i < len(trips); i++ {
		if trips[i].Time < trips[i-1].Time {
			return nil, fmt.Errorf("sim: trips not sorted by time at index %d", i)
		}
	}
	if cfg.TickSeconds == 0 {
		cfg.TickSeconds = 1
	}
	if cfg.TickSeconds < 0 {
		return nil, fmt.Errorf("sim: negative tick")
	}
	if cfg.DrainSeconds == 0 {
		cfg.DrainSeconds = 3600
	}
	choice := cfg.Choice
	if choice == nil {
		choice = UtilityChoice{}
	}
	return &Simulation{
		eng:    eng,
		trips:  trips,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		choice: choice,
	}, nil
}

// Run replays the whole workload and returns the aggregate result.
func (s *Simulation) Run() (*Result, error) {
	res := &Result{}
	end := s.cfg.EndSeconds
	if end == 0 {
		if len(s.trips) > 0 {
			end = s.trips[len(s.trips)-1].Time + s.cfg.DrainSeconds
		} else {
			end = s.cfg.DrainSeconds
		}
	}

	next := 0
	clock := s.eng.Clock()
	failBudget := 0.0
	for clock < end {
		// Submit every trip due in this tick.
		for next < len(s.trips) && s.trips[next].Time <= clock {
			if err := s.submit(s.trips[next], res); err != nil {
				return res, err
			}
			next++
		}
		if _, err := s.eng.Tick(s.cfg.TickSeconds); err != nil {
			return res, err
		}
		clock = s.eng.Clock()

		if s.cfg.FailuresPerHour > 0 {
			failBudget += s.cfg.FailuresPerHour * s.cfg.TickSeconds / 3600
			for failBudget >= 1 {
				failBudget--
				if err := s.injectFailure(res); err != nil {
					return res, err
				}
			}
		}
		if next >= len(s.trips) && s.eng.Stats().Completed >= int64(res.Accepted) {
			break // drained
		}
	}
	res.Engine = s.eng.Stats()
	return res, nil
}

func (s *Simulation) submit(t trace.Trip, res *Result) error {
	res.Submitted++
	rec, err := s.eng.Submit(t.S, t.D, t.Riders)
	if err != nil {
		return fmt.Errorf("sim: trip %d: %w", t.ID, err)
	}
	// Bucket by the clock the engine stamped at submission — one
	// atomic snapshot — rather than re-reading the clock, which could
	// have advanced under a concurrent ticker.
	bucket := res.hourBucket(rec.SubmitClock)
	bucket.Submitted++
	res.OptionsPerRequest.Observe(float64(len(rec.Options)))
	bucket.optionsSum += float64(len(rec.Options))
	bucket.AvgOptions = bucket.optionsSum / float64(bucket.Submitted)
	if len(rec.Options) == 0 {
		res.NoOption++
		bucket.NoOption++
		return nil
	}
	pick := choose(s.choice, rec, s.rng)
	if pick < 0 {
		res.Declined++
		return s.eng.Decline(rec.ID)
	}
	if err := s.eng.Choose(rec.ID, pick); err != nil {
		return fmt.Errorf("sim: trip %d choose: %w", t.ID, err)
	}
	opt := rec.Options[pick]
	res.Accepted++
	bucket.Accepted++
	res.PickupSeconds.Observe(s.eng.PickupSeconds(opt))
	res.Prices.Observe(opt.Price)
	return nil
}

func (s *Simulation) injectFailure(res *Result) error {
	n := s.eng.NumVehicles()
	if n <= 1 {
		return nil
	}
	// Pick random ids until an active one is hit; ids are dense.
	for attempt := 0; attempt < 32; attempt++ {
		id := int32(s.rng.Intn(n))
		orphans, err := s.eng.RemoveVehicle(id)
		if err != nil {
			continue // already removed
		}
		res.FailuresInjected++
		for _, rid := range orphans {
			rec, err := s.eng.Request(rid)
			if err != nil {
				continue
			}
			res.Resubmitted++
			nrec, err := s.eng.Submit(rec.S, rec.D, rec.Riders)
			if err != nil {
				continue
			}
			res.OptionsPerRequest.Observe(float64(len(nrec.Options)))
			if pick := choose(s.choice, nrec, s.rng); pick >= 0 {
				if err := s.eng.Choose(nrec.ID, pick); err == nil {
					res.Accepted++
				}
			} else if len(nrec.Options) == 0 {
				res.NoOption++
			} else {
				res.Declined++
				s.eng.Decline(nrec.ID)
			}
		}
		return nil
	}
	return nil
}
