package sim_test

import (
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/sim"
	"ptrider/internal/trace"
)

func smallWorld(t *testing.T, seed int64, vehicles, trips int) (*core.Engine, []trace.Trip) {
	t.Helper()
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 12, Height: 12, Seed: seed})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	e, err := core.NewEngine(g, core.Config{
		GridCols: 4, GridRows: 4,
		Capacity: 4, Algorithm: core.AlgoDualSide,
		MaxWaitSeconds: 600, Sigma: 0.6, Seed: seed,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	e.AddVehiclesUniform(vehicles)
	tr, err := gen.GenerateTrips(g, gen.TripConfig{
		NumTrips: trips, DaySeconds: 600, Seed: seed, MinTripMeters: 400,
	})
	if err != nil {
		t.Fatalf("trips: %v", err)
	}
	return e, tr
}

func TestChoiceModels(t *testing.T) {
	opts := []core.Option{
		{PickupDist: 100, Price: 9},
		{PickupDist: 500, Price: 5},
		{PickupDist: 900, Price: 2},
	}
	rng := rand.New(rand.NewSource(1))
	if got := (sim.EarliestPickup{}).Choose(opts, rng); got != 0 {
		t.Errorf("EarliestPickup = %d", got)
	}
	if got := (sim.Cheapest{}).Choose(opts, rng); got != 2 {
		t.Errorf("Cheapest = %d", got)
	}
	if got := (sim.UniformChoice{}).Choose(nil, rng); got != -1 {
		t.Errorf("UniformChoice on empty = %d", got)
	}
	if got := (sim.EarliestPickup{}).Choose(nil, rng); got != -1 {
		t.Errorf("EarliestPickup on empty = %d", got)
	}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		counts[(sim.UniformChoice{}).Choose(opts, rng)]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] == 0 {
			t.Errorf("UniformChoice never picked %d: %v", i, counts)
		}
	}
	counts = map[int]int{}
	for i := 0; i < 500; i++ {
		pick := (sim.UtilityChoice{}).Choose(opts, rng)
		if pick < 0 || pick > 2 {
			t.Fatalf("UtilityChoice out of range: %d", pick)
		}
		counts[pick]++
	}
	// Heterogeneous preferences must spread over the extremes.
	if counts[0] == 0 || counts[2] == 0 {
		t.Errorf("UtilityChoice degenerate: %v", counts)
	}
}

func TestRunCompletesTrips(t *testing.T) {
	e, trips := smallWorld(t, 1, 20, 60)
	s, err := sim.New(e, trips, sim.Config{TickSeconds: 2, Seed: 1})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Submitted != 60 {
		t.Fatalf("Submitted = %d", res.Submitted)
	}
	if res.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	if res.Accepted+res.Declined+res.NoOption != res.Submitted {
		t.Fatalf("accounting mismatch: %+v", res)
	}
	if res.Engine.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Engine.Completed > int64(res.Accepted) {
		t.Fatalf("completed %d > accepted %d", res.Engine.Completed, res.Accepted)
	}
	if res.OptionsPerRequest.Count() != int64(res.Submitted) {
		t.Fatalf("options observed %d times", res.OptionsPerRequest.Count())
	}
	if res.Engine.AvgResponseMs <= 0 {
		t.Fatal("no response time recorded")
	}
}

func TestRunRejectsUnsortedTrips(t *testing.T) {
	e, trips := smallWorld(t, 2, 3, 10)
	trips[0], trips[1] = trips[1], trips[0]
	trips[0].Time, trips[1].Time = trips[1].Time+100, trips[0].Time
	if _, err := sim.New(e, trips, sim.Config{}); err == nil {
		t.Fatal("unsorted trips accepted")
	}
	if _, err := sim.New(e, nil, sim.Config{TickSeconds: -1}); err == nil {
		t.Fatal("negative tick accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *sim.Result {
		e, trips := smallWorld(t, 3, 10, 40)
		s, err := sim.New(e, trips, sim.Config{TickSeconds: 2, Seed: 3})
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Accepted != b.Accepted || a.NoOption != b.NoOption ||
		a.Engine.Completed != b.Engine.Completed ||
		a.Prices.Mean() != b.Prices.Mean() {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestFailureInjection(t *testing.T) {
	e, trips := smallWorld(t, 4, 15, 40)
	s, err := sim.New(e, trips, sim.Config{
		TickSeconds: 2, Seed: 4,
		FailuresPerHour: 120, // two per minute over a 10-minute day
	})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run with failures: %v", err)
	}
	if res.FailuresInjected == 0 {
		t.Fatal("no failures injected")
	}
	if res.Engine.ActiveVehicles >= 15 {
		t.Fatalf("active vehicles = %d, want < 15", res.Engine.ActiveVehicles)
	}
	// The run must stay consistent despite removals.
	if res.Engine.Completed < 0 || res.Accepted < 0 {
		t.Fatalf("corrupted result: %+v", res)
	}
}

func TestSharingHappensUnderLoad(t *testing.T) {
	// Few vehicles, many overlapping trips in a short window: the
	// sharing rate must be positive (the demo's headline statistic).
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, Seed: 5})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	e, err := core.NewEngine(g, core.Config{
		GridCols: 3, GridRows: 3, Capacity: 4,
		MaxWaitSeconds: 1200, Sigma: 1.0, Algorithm: core.AlgoDualSide, Seed: 5,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	e.AddVehiclesUniform(3)
	trips, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 60, DaySeconds: 300, Seed: 5, MinTripMeters: 400})
	if err != nil {
		t.Fatalf("trips: %v", err)
	}
	s, err := sim.New(e, trips, sim.Config{TickSeconds: 2, Seed: 5, Choice: sim.Cheapest{}, DrainSeconds: 7200})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Engine.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Engine.SharingRate == 0 {
		t.Fatalf("sharing rate 0 under heavy load: %+v", res.Engine)
	}
}

func TestHourlyBreakdown(t *testing.T) {
	e, trips := smallWorld(t, 7, 10, 50)
	s, err := sim.New(e, trips, sim.Config{TickSeconds: 2, Seed: 7})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Hourly) == 0 {
		t.Fatal("no hourly buckets")
	}
	totalSub, totalAcc, totalNo := 0, 0, 0
	for _, h := range res.Hourly {
		if h.Hour < 0 || h.Hour > 23 {
			t.Fatalf("bucket hour %d out of range", h.Hour)
		}
		if h.Accepted > h.Submitted || h.NoOption > h.Submitted {
			t.Fatalf("inconsistent bucket %+v", h)
		}
		if h.Submitted > 0 && (h.AvgOptions < 0 || h.AvgOptions > 50) {
			t.Fatalf("implausible AvgOptions %v", h.AvgOptions)
		}
		totalSub += h.Submitted
		totalAcc += h.Accepted
		totalNo += h.NoOption
	}
	if totalSub != res.Submitted || totalAcc != res.Accepted || totalNo != res.NoOption {
		t.Fatalf("hourly totals %d/%d/%d do not match result %d/%d/%d",
			totalSub, totalAcc, totalNo, res.Submitted, res.Accepted, res.NoOption)
	}
}

func TestEndSecondsStopsEarly(t *testing.T) {
	e, trips := smallWorld(t, 6, 5, 50)
	s, err := sim.New(e, trips, sim.Config{TickSeconds: 5, Seed: 6, EndSeconds: 60})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Engine.Clock > 65 {
		t.Fatalf("clock = %v, want ≤ 65", res.Engine.Clock)
	}
	if res.Submitted == 50 {
		t.Fatal("early stop should leave trips unsubmitted")
	}
}
