// multi.go drives a multi-city router through a day-scale workload:
// trips arrive as planar coordinates, the router assigns each to the
// city owning its origin, rider choice models pick options, and every
// city's fleet moves concurrently on each tick. The generator skews
// load across cities and injects a configurable fraction of cross-city
// trips; a relay-enabled router serves those as two-leg relay trips
// (counted as relayed and then accepted/declined like any other),
// while a plain router rejects them with its typed error — so the same
// workload demonstrates per-city isolation, relay scheduling, or the
// rejection behaviour, depending on the router's configuration.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/geo"
	"ptrider/internal/multicity"
)

// MultiTrip is one entry of a multi-city workload: endpoints are planar
// coordinates — city assignment is the router's job, not the trace's.
type MultiTrip struct {
	// Time is the submission time in seconds from the start of the day.
	Time float64
	// O and D are the origin and destination coordinates.
	O, D geo.Point
	// Riders is the group size.
	Riders int
	// Cross marks a trip whose destination was deliberately moved to
	// another city (served by relay when the router enables it,
	// rejected with the typed error otherwise).
	Cross bool
	// City is the origin city the generator drew the trip from (for
	// assertions; the router re-derives it from O).
	City string
}

// MultiWorkloadConfig parameterises the multi-city workload generator.
type MultiWorkloadConfig struct {
	// NumTrips is the total trip count across all cities.
	NumTrips int
	// DaySeconds is the horizon (0 = 86400).
	DaySeconds float64
	// Weights skews the per-city load share by city name; cities
	// missing from the map get weight 1, so nil means uniform. A
	// weight of 3 sends a city three times the traffic of a weight-1
	// city.
	Weights map[string]float64
	// CrossFrac moves this fraction of each city's trips' destinations
	// into another city (0 = none; must be < 1). A relay-enabled
	// router serves them as two-leg relay trips; a plain router
	// rejects them through the typed cross-city error path.
	CrossFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateMultiWorkload synthesises a skewed multi-city day: each
// city's share of trips comes from the standard hotspot/diurnal
// generator on that city's own network, converted to coordinates, and
// a CrossFrac fraction of destinations is relocated into another city.
// The merged workload is sorted by submission time.
func GenerateMultiWorkload(r *multicity.Router, cfg MultiWorkloadConfig) ([]MultiTrip, error) {
	if cfg.NumTrips <= 0 {
		return nil, fmt.Errorf("sim: NumTrips %d < 1", cfg.NumTrips)
	}
	if cfg.CrossFrac < 0 || cfg.CrossFrac >= 1 {
		return nil, fmt.Errorf("sim: CrossFrac %v outside [0,1)", cfg.CrossFrac)
	}
	names := r.CityNames()
	if cfg.CrossFrac > 0 && len(names) < 2 {
		return nil, fmt.Errorf("sim: cross-city trips need at least two cities")
	}
	// A misspelled weight key would silently degrade the run to uniform
	// load; reject it instead.
	for key := range cfg.Weights {
		if _, err := r.Engine(key); err != nil {
			return nil, fmt.Errorf("sim: weight for unknown city %q", key)
		}
	}
	weight := func(name string) float64 {
		if w, ok := cfg.Weights[name]; ok {
			if w < 0 {
				return 0
			}
			return w
		}
		return 1
	}
	var totalW float64
	for _, name := range names {
		totalW += weight(name)
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("sim: all city weights are zero")
	}

	// The rounding remainder goes to the last city with positive
	// weight, never to a city the caller explicitly zeroed out.
	lastPositive := -1
	for i, name := range names {
		if weight(name) > 0 {
			lastPositive = i
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []MultiTrip
	assigned := 0
	for i, name := range names {
		share := int(float64(cfg.NumTrips) * weight(name) / totalW)
		if i == lastPositive {
			share = cfg.NumTrips - assigned // remainder keeps the total exact
		}
		assigned += share
		if share == 0 {
			continue
		}
		eng, err := r.Engine(name)
		if err != nil {
			return nil, err
		}
		g := eng.Graph()
		trips, err := gen.GenerateTrips(g, gen.TripConfig{
			NumTrips:   share,
			DaySeconds: cfg.DaySeconds,
			Seed:       cfg.Seed + int64(i)*7919,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: city %s: %w", name, err)
		}
		for _, t := range trips {
			mt := MultiTrip{
				Time:   t.Time,
				O:      g.Point(t.S),
				D:      g.Point(t.D),
				Riders: t.Riders,
				City:   name,
			}
			if cfg.CrossFrac > 0 && rng.Float64() < cfg.CrossFrac {
				// Relocate the destination into a random other city.
				other := names[rng.Intn(len(names)-1)]
				if other == name {
					other = names[len(names)-1]
				}
				oeng, err := r.Engine(other)
				if err != nil {
					return nil, err
				}
				og := oeng.Graph()
				mt.D = og.Point(int32(rng.Intn(og.NumVertices())))
				mt.Cross = true
			}
			out = append(out, mt)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// CityResult is one city's slice of a multi-city replay. Relay trips
// count toward their origin city (which also answers their leg-1
// quotes).
type CityResult struct {
	Submitted int
	Accepted  int
	Declined  int
	NoOption  int
	// Relayed counts the city's submitted trips that were cross-city
	// and served through relay scheduling.
	Relayed int
}

// MultiResult aggregates a multi-city replay.
type MultiResult struct {
	// Submitted counts trips offered to the router (including rejected
	// cross-city trips).
	Submitted int
	// CrossRejected counts trips the router rejected as cross-city —
	// zero when the router serves them by relay instead.
	CrossRejected int
	// NoCity counts trips whose origin no city serves (0 with
	// generated workloads).
	NoCity int
	// Accepted / Declined / NoOption mirror the single-city simulator.
	// Relay trips classify like any other: a committed relay counts
	// accepted, an empty joint skyline counts no-option.
	Accepted int
	Declined int
	NoOption int
	// Relayed counts cross-city trips quoted through relay scheduling
	// (each also lands in exactly one of Accepted/Declined/NoOption).
	Relayed int
	// PerCity breaks the served trips down by owning city (relay trips
	// by origin city).
	PerCity map[string]CityResult
	// Stats is the backend's final aggregated panel, including the
	// relay scheduler's own counters when relay is enabled.
	Stats core.ServiceStats
}

// RunMulti replays a multi-city workload against any core.Service
// backend (typically a multicity.Router): trips are submitted by
// coordinate at their due tick, a rider model chooses (relay trips
// through their synthesised joint options), and the backend's Advance
// moves every city's fleet — and the relay ledger — in parallel.
// Cross-city trips are served when the backend relays and counted as
// typed rejections when it does not; neither is fatal.
func RunMulti(svc core.Service, trips []MultiTrip, cfg Config) (*MultiResult, error) {
	for i := 1; i < len(trips); i++ {
		if trips[i].Time < trips[i-1].Time {
			return nil, fmt.Errorf("sim: trips not sorted by time at index %d", i)
		}
	}
	if cfg.TickSeconds == 0 {
		cfg.TickSeconds = 1
	}
	if cfg.TickSeconds < 0 {
		return nil, fmt.Errorf("sim: negative tick")
	}
	if cfg.FailuresPerHour != 0 {
		// Multi-city failure injection is not implemented yet; rejecting
		// beats silently running a zero-failure day.
		return nil, fmt.Errorf("sim: FailuresPerHour is not supported by the multi-city replay")
	}
	if cfg.DrainSeconds == 0 {
		cfg.DrainSeconds = 3600
	}
	choice := cfg.Choice
	if choice == nil {
		choice = UtilityChoice{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := &MultiResult{PerCity: make(map[string]CityResult)}
	end := cfg.EndSeconds
	if end == 0 {
		if len(trips) > 0 {
			end = trips[len(trips)-1].Time + cfg.DrainSeconds
		} else {
			end = cfg.DrainSeconds
		}
	}

	// The backend ticks every city in lockstep, so the loop tracks the
	// clock locally instead of paying a full cross-city stats
	// aggregation per tick; the aggregation runs only for the drain
	// check once submissions are exhausted.
	next := 0
	clock := svc.ServiceStats().Total.Clock
	for clock < end {
		for next < len(trips) && trips[next].Time <= clock {
			if err := submitMulti(svc, trips[next], choice, rng, res); err != nil {
				return res, err
			}
			next++
		}
		if _, err := svc.Advance(cfg.TickSeconds); err != nil {
			return res, err
		}
		clock += cfg.TickSeconds

		if next >= len(trips) {
			// Drained when every accepted trip's engine-level completions
			// landed: one per ordinary trip, two per committed relay trip
			// (each leg completes in its own city). Failed relays produce
			// fewer; the EndSeconds bound covers that tail.
			st := svc.ServiceStats()
			if st.Total.Completed >= int64(res.Accepted)+st.Relay.Committed {
				break
			}
		}
	}
	res.Stats = svc.ServiceStats()
	return res, nil
}

func submitMulti(svc core.Service, t MultiTrip, choice ChoiceModel, rng *rand.Rand, res *MultiResult) error {
	res.Submitted++
	rec, err := svc.SubmitRequest(core.SubmitSpec{
		ByCoords: true, Origin: t.O, Dest: t.D, Riders: t.Riders,
		Constraints: core.DefaultConstraints(),
	})
	if err != nil {
		switch {
		case errors.Is(err, core.ErrCrossCity):
			res.CrossRejected++
			return nil
		case errors.Is(err, core.ErrNoCity):
			res.NoCity++
			return nil
		default:
			return fmt.Errorf("sim: multi trip at %.0fs: %w", t.Time, err)
		}
	}
	city := res.PerCity[rec.City]
	city.Submitted++
	defer func() { res.PerCity[rec.City] = city }()
	if rec.Relay != nil {
		res.Relayed++
		city.Relayed++
	}
	if len(rec.Options) == 0 {
		res.NoOption++
		city.NoOption++
		if rec.Relay != nil {
			// Release the relay trip's leg quotes eagerly; a single-city
			// quote holds no resources, but a relay quote owns one leg
			// record per gateway in two cities.
			return svc.Decline(rec.ID)
		}
		return nil
	}
	pick := choose(choice, &rec.RequestRecord, rng)
	if pick < 0 {
		res.Declined++
		city.Declined++
		return svc.Decline(rec.ID)
	}
	if err := svc.Choose(rec.ID, pick); err != nil {
		// Stale candidates under the concurrent per-city tickers are
		// expected; the trip ends declined rather than failing the run.
		res.Declined++
		city.Declined++
		if rec.Relay != nil {
			// A failed two-phase commit already aborted the relay trip
			// and released every leg; there is nothing left to decline.
			return nil
		}
		return svc.Decline(rec.ID)
	}
	res.Accepted++
	city.Accepted++
	return nil
}
