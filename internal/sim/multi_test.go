package sim_test

import (
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/multicity"
	"ptrider/internal/sim"
)

func twinRouter(t *testing.T) *multicity.Router {
	t.Helper()
	r, err := multicity.BuildFromSpec("east:8x8:8,west:6x6:6",
		core.Config{GridCols: 4, GridRows: 4, Capacity: 4, Algorithm: core.AlgoDualSide}, 17)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	return r
}

func TestGenerateMultiWorkloadSkewAndCross(t *testing.T) {
	r := twinRouter(t)
	trips, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{
		NumTrips:   200,
		DaySeconds: 3600,
		Weights:    map[string]float64{"east": 3, "west": 1},
		CrossFrac:  0.2,
		Seed:       17,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(trips) != 200 {
		t.Fatalf("trip count = %d, want 200", len(trips))
	}

	perCity := map[string]int{}
	cross := 0
	for i, tr := range trips {
		if i > 0 && tr.Time < trips[i-1].Time {
			t.Fatalf("trips not sorted at %d", i)
		}
		perCity[tr.City]++
		origin, err := r.Locate(tr.O)
		if err != nil || origin != tr.City {
			t.Fatalf("trip %d origin locates to %q (%v), labelled %q", i, origin, err, tr.City)
		}
		dest, err := r.Locate(tr.D)
		if err != nil {
			t.Fatalf("trip %d destination outside all cities: %v", i, err)
		}
		if tr.Cross {
			cross++
			if dest == tr.City {
				t.Fatalf("trip %d marked cross but stays in %q", i, tr.City)
			}
		} else if dest != tr.City {
			t.Fatalf("trip %d not marked cross but leaves %q for %q", i, tr.City, dest)
		}
	}
	// 3:1 skew on 200 trips: east gets 150 by construction.
	if perCity["east"] != 150 || perCity["west"] != 50 {
		t.Fatalf("skew = %v, want east 150 / west 50", perCity)
	}
	// CrossFrac 0.2 over 200 trips: expect a healthy band around 40.
	if cross < 15 || cross > 80 {
		t.Fatalf("cross trips = %d, outside sane band for frac 0.2", cross)
	}

	// Validation paths.
	if _, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{NumTrips: 0}); err == nil {
		t.Error("zero trips accepted")
	}
	if _, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{NumTrips: 10, CrossFrac: 1}); err == nil {
		t.Error("CrossFrac 1 accepted")
	}
	if _, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{
		NumTrips: 10, Weights: map[string]float64{"east": 0, "west": 0},
	}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{
		NumTrips: 10, Weights: map[string]float64{"esat": 3},
	}); err == nil {
		t.Error("weight for unknown city accepted")
	}
	if _, err := sim.RunMulti(r, nil, sim.Config{FailuresPerHour: 2}); err == nil {
		t.Error("unsupported failure injection accepted")
	}

	// A zero-weight city must receive no trips, including the rounding
	// remainder.
	zeroed, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{
		NumTrips: 101, DaySeconds: 600,
		Weights: map[string]float64{"east": 1, "west": 0},
		Seed:    19,
	})
	if err != nil {
		t.Fatalf("zero-weight generate: %v", err)
	}
	if len(zeroed) != 101 {
		t.Fatalf("zero-weight trip count = %d, want 101", len(zeroed))
	}
	for i, tr := range zeroed {
		if tr.City == "west" {
			t.Fatalf("trip %d landed in zero-weight west", i)
		}
	}
}

func TestRunMultiServesTwoCitiesWithIsolatedStats(t *testing.T) {
	r := twinRouter(t)
	trips, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{
		NumTrips:   120,
		DaySeconds: 900,
		Weights:    map[string]float64{"east": 2, "west": 1},
		CrossFrac:  0.15,
		Seed:       18,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := sim.RunMulti(r, trips, sim.Config{TickSeconds: 2, Seed: 18})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	if res.Submitted != 120 {
		t.Fatalf("submitted = %d", res.Submitted)
	}
	if res.CrossRejected == 0 {
		t.Fatal("no cross-city rejections despite CrossFrac")
	}
	if res.NoCity != 0 {
		t.Fatalf("generated trips fell outside all cities: %d", res.NoCity)
	}
	served := res.Accepted + res.Declined + res.NoOption
	if served+res.CrossRejected != res.Submitted {
		t.Fatalf("accounting: %d served + %d rejected != %d submitted", served, res.CrossRejected, res.Submitted)
	}
	if res.PerCity["east"].Submitted == 0 || res.PerCity["west"].Submitted == 0 {
		t.Fatalf("a city saw no traffic: %+v", res.PerCity)
	}

	// Per-city engine panels agree with the per-city accounting, and
	// the aggregate is their sum — the isolation the router promises.
	for _, name := range []string{"east", "west"} {
		if got := res.Stats.Cities[name].Requests; got != int64(res.PerCity[name].Submitted) {
			t.Fatalf("%s: engine requests %d != sim submitted %d", name, got, res.PerCity[name].Submitted)
		}
	}
	if res.Stats.Total.Requests != res.Stats.Cities["east"].Requests+res.Stats.Cities["west"].Requests {
		t.Fatalf("total requests %d not the sum of cities", res.Stats.Total.Requests)
	}
	if res.Accepted == 0 || res.Stats.Total.Completed == 0 {
		t.Fatalf("run served nothing: %+v", res)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("post-run invariants: %v", err)
	}
}

// TestRunMultiServesCrossViaRelay replays a cross-heavy workload
// against a relay-enabled router: the cross fraction must be served
// (classified relayed + accepted/declined/no-option), not counted as
// rejection traffic, and the relay panel must reflect the outcomes.
func TestRunMultiServesCrossViaRelay(t *testing.T) {
	r, err := multicity.BuildFromSpecWithConfig("east:8x8:10,west:6x6:8",
		core.Config{GridCols: 4, GridRows: 4, Capacity: 4, Algorithm: core.AlgoDualSide, CommitSlack: 0.3}, 17,
		multicity.RouterConfig{EnableRelay: true})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	trips, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{
		NumTrips:   150,
		DaySeconds: 900,
		CrossFrac:  0.25,
		Seed:       18,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cross := 0
	for _, tr := range trips {
		if tr.Cross {
			cross++
		}
	}
	if cross == 0 {
		t.Fatal("workload has no cross trips")
	}

	res, err := sim.RunMulti(r, trips, sim.Config{TickSeconds: 2, Seed: 18, DrainSeconds: 600})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.CrossRejected != 0 {
		t.Fatalf("relay-enabled run rejected %d cross trips", res.CrossRejected)
	}
	if res.Relayed != cross {
		t.Fatalf("relayed %d != cross trips %d", res.Relayed, cross)
	}
	if res.Accepted+res.Declined+res.NoOption != res.Submitted {
		t.Fatalf("classification leaks: %d + %d + %d != %d submitted",
			res.Accepted, res.Declined, res.NoOption, res.Submitted)
	}
	perCityRelayed := 0
	for _, pc := range res.PerCity {
		perCityRelayed += pc.Relayed
	}
	if perCityRelayed != res.Relayed {
		t.Fatalf("per-city relayed %d != total %d", perCityRelayed, res.Relayed)
	}
	rs := res.Stats.Relay
	if !res.Stats.RelayEnabled || rs.Quoted != int64(cross) {
		t.Fatalf("relay panel quoted %d, want %d", rs.Quoted, cross)
	}
	if rs.Committed == 0 {
		t.Fatal("no relay trip committed; workload too sparse to exercise relay")
	}
	if rs.Completed == 0 {
		t.Fatal("no relay trip completed within the drain window")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRunMultiStillRejectsWithoutRelay pins the opt-in: the same
// workload against a plain router keeps the typed rejection counts.
func TestRunMultiStillRejectsWithoutRelay(t *testing.T) {
	r := twinRouter(t)
	trips, err := sim.GenerateMultiWorkload(r, sim.MultiWorkloadConfig{
		NumTrips: 60, DaySeconds: 300, CrossFrac: 0.3, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	cross := 0
	for _, tr := range trips {
		if tr.Cross {
			cross++
		}
	}
	res, err := sim.RunMulti(r, trips, sim.Config{TickSeconds: 2, Seed: 19, DrainSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossRejected != cross || res.Relayed != 0 {
		t.Fatalf("plain router: rejected %d (want %d), relayed %d", res.CrossRejected, cross, res.Relayed)
	}
}
