// Package trace defines the trip-trace format PTRider's workloads are
// stored in and streamed from — the stand-in for the demo's Shanghai
// taxi trip extract — with CSV and JSON-lines codecs and summary
// statistics.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ptrider/internal/roadnet"
)

// Trip is one ridesharing request extracted from (or synthesised as) a
// taxi trace.
type Trip struct {
	// ID numbers trips in submission order, starting at 1.
	ID int64 `json:"id"`
	// Time is the submission time in seconds from the start of the day.
	Time float64 `json:"time"`
	// S and D are the start and destination vertices.
	S roadnet.VertexID `json:"s"`
	D roadnet.VertexID `json:"d"`
	// Riders is the group size n.
	Riders int `json:"riders"`
}

// Validate checks a trip against a network size.
func (t Trip) Validate(numVertices int) error {
	if t.S < 0 || int(t.S) >= numVertices || t.D < 0 || int(t.D) >= numVertices {
		return fmt.Errorf("trace: trip %d endpoints (%d,%d) outside [0,%d)", t.ID, t.S, t.D, numVertices)
	}
	if t.S == t.D {
		return fmt.Errorf("trace: trip %d has identical endpoints", t.ID)
	}
	if t.Riders < 1 {
		return fmt.Errorf("trace: trip %d has %d riders", t.ID, t.Riders)
	}
	if t.Time < 0 {
		return fmt.Errorf("trace: trip %d has negative time", t.ID)
	}
	return nil
}

// csvHeader is the canonical column set.
var csvHeader = []string{"id", "time", "s", "d", "riders"}

// WriteCSV writes trips with a header row.
func WriteCSV(w io.Writer, trips []Trip) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, 5)
	for _, t := range trips {
		row[0] = strconv.FormatInt(t.ID, 10)
		row[1] = strconv.FormatFloat(t.Time, 'f', -1, 64)
		row[2] = strconv.FormatInt(int64(t.S), 10)
		row[3] = strconv.FormatInt(int64(t.D), 10)
		row[4] = strconv.Itoa(t.Riders)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads trips written by WriteCSV.
func ReadCSV(r io.Reader) ([]Trip, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, header[i], h)
		}
	}
	var trips []Trip
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		trips = append(trips, t)
	}
	return trips, nil
}

func parseRow(row []string) (Trip, error) {
	var t Trip
	id, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return t, fmt.Errorf("bad id %q", row[0])
	}
	tm, err := strconv.ParseFloat(row[1], 64)
	if err != nil {
		return t, fmt.Errorf("bad time %q", row[1])
	}
	s, err := strconv.ParseInt(row[2], 10, 32)
	if err != nil {
		return t, fmt.Errorf("bad s %q", row[2])
	}
	d, err := strconv.ParseInt(row[3], 10, 32)
	if err != nil {
		return t, fmt.Errorf("bad d %q", row[3])
	}
	riders, err := strconv.Atoi(row[4])
	if err != nil {
		return t, fmt.Errorf("bad riders %q", row[4])
	}
	return Trip{ID: id, Time: tm, S: roadnet.VertexID(s), D: roadnet.VertexID(d), Riders: riders}, nil
}

// WriteJSONL writes one JSON object per line.
func WriteJSONL(w io.Writer, trips []Trip) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range trips {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads trips written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Trip, error) {
	dec := json.NewDecoder(r)
	var trips []Trip
	for {
		var t Trip
		if err := dec.Decode(&t); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl record %d: %w", len(trips)+1, err)
		}
		trips = append(trips, t)
	}
	return trips, nil
}

// Summary aggregates a workload for display and sanity checks.
type Summary struct {
	Count     int
	ByHour    [24]int
	ByRiders  map[int]int
	FirstTime float64
	LastTime  float64
}

// Summarise computes a Summary. DaySeconds scales the hour bucketing
// (0 = 86400).
func Summarise(trips []Trip, daySeconds float64) Summary {
	if daySeconds == 0 {
		daySeconds = 86400
	}
	s := Summary{Count: len(trips), ByRiders: make(map[int]int)}
	for i, t := range trips {
		h := int(t.Time / daySeconds * 24)
		if h < 0 {
			h = 0
		}
		if h > 23 {
			h = 23
		}
		s.ByHour[h]++
		s.ByRiders[t.Riders]++
		if i == 0 || t.Time < s.FirstTime {
			s.FirstTime = t.Time
		}
		if t.Time > s.LastTime {
			s.LastTime = t.Time
		}
	}
	return s
}

// SortByTime sorts trips in place by submission time (stable on ID).
func SortByTime(trips []Trip) {
	sort.SliceStable(trips, func(a, b int) bool { return trips[a].Time < trips[b].Time })
}
