package trace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ptrider/internal/trace"
)

func sampleTrips() []trace.Trip {
	return []trace.Trip{
		{ID: 1, Time: 0.5, S: 3, D: 9, Riders: 1},
		{ID: 2, Time: 120, S: 7, D: 2, Riders: 4},
		{ID: 3, Time: 86399.25, S: 0, D: 1, Riders: 2},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleTrips()
	if err := trace.WriteCSV(&buf, in); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleTrips()
	if err := trace.WriteJSONL(&buf, in); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	out, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong header": "a,b,c,d,e\n1,2,3,4,5\n",
		"short header": "id,time\n",
		"bad id":       "id,time,s,d,riders\nx,1,2,3,1\n",
		"bad time":     "id,time,s,d,riders\n1,x,2,3,1\n",
		"bad s":        "id,time,s,d,riders\n1,1,x,3,1\n",
		"bad d":        "id,time,s,d,riders\n1,1,2,x,1\n",
		"bad riders":   "id,time,s,d,riders\n1,1,2,3,x\n",
		"ragged row":   "id,time,s,d,riders\n1,1,2\n",
	}
	for name, input := range cases {
		if _, err := trace.ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	out, err := trace.ReadCSV(strings.NewReader("id,time,s,d,riders\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d trips from empty body", len(out))
	}
}

func TestValidate(t *testing.T) {
	good := trace.Trip{ID: 1, Time: 5, S: 0, D: 3, Riders: 2}
	if err := good.Validate(10); err != nil {
		t.Errorf("good trip rejected: %v", err)
	}
	bad := []trace.Trip{
		{ID: 1, Time: 5, S: 0, D: 0, Riders: 1},  // same endpoints
		{ID: 2, Time: 5, S: -1, D: 3, Riders: 1}, // s out of range
		{ID: 3, Time: 5, S: 0, D: 10, Riders: 1}, // d out of range
		{ID: 4, Time: 5, S: 0, D: 3, Riders: 0},  // no riders
		{ID: 5, Time: -1, S: 0, D: 3, Riders: 1}, // negative time
	}
	for _, tr := range bad {
		if err := tr.Validate(10); err == nil {
			t.Errorf("trip %d accepted: %+v", tr.ID, tr)
		}
	}
}

func TestSummarise(t *testing.T) {
	trips := []trace.Trip{
		{ID: 1, Time: 0, S: 0, D: 1, Riders: 1},
		{ID: 2, Time: 3600 * 8.5, S: 0, D: 1, Riders: 2},
		{ID: 3, Time: 3600 * 8.9, S: 0, D: 1, Riders: 1},
		{ID: 4, Time: 86399, S: 0, D: 1, Riders: 1},
	}
	s := trace.Summarise(trips, 86400)
	if s.Count != 4 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.ByHour[8] != 2 || s.ByHour[0] != 1 || s.ByHour[23] != 1 {
		t.Fatalf("ByHour = %v", s.ByHour)
	}
	if s.ByRiders[1] != 3 || s.ByRiders[2] != 1 {
		t.Fatalf("ByRiders = %v", s.ByRiders)
	}
	if s.FirstTime != 0 || s.LastTime != 86399 {
		t.Fatalf("First/Last = %v/%v", s.FirstTime, s.LastTime)
	}
}

func TestSortByTime(t *testing.T) {
	trips := []trace.Trip{
		{ID: 1, Time: 50, S: 0, D: 1, Riders: 1},
		{ID: 2, Time: 10, S: 0, D: 1, Riders: 1},
		{ID: 3, Time: 30, S: 0, D: 1, Riders: 1},
	}
	trace.SortByTime(trips)
	if trips[0].ID != 2 || trips[1].ID != 3 || trips[2].ID != 1 {
		t.Fatalf("sorted order = %+v", trips)
	}
}
