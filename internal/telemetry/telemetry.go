// Package telemetry is the system-wide metrics layer: a low-overhead
// registry of counters, gauges and sharded latency histograms, plus a
// per-request span recorder, rendered in the Prometheus text
// exposition format (hand-rolled — no dependencies beyond
// internal/stats).
//
// Design rules, in order of importance:
//
//   - A nil registry is a working registry. Every constructor on a nil
//     *Registry returns a nil instrument, and every instrument method
//     on a nil receiver is a no-op — one predictable branch on the hot
//     path. That is what lets core.Engine, fleet.Step and wal record
//     stage timings unconditionally while benchmarks pin the disabled
//     cost at zero (see BenchmarkSubmitTelemetry).
//   - Observation never allocates and never takes a registry-wide
//     lock. Counters and gauges are single atomics; latency histograms
//     shard their state and pick a shard from the observed value's
//     float bits, so concurrent observers rarely contend.
//   - Exposition is the slow path. Gather snapshots every instrument
//     under its own lock and renders families grouped by name; the
//     scrape pays for consistency, not the quote path.
//
// Metric naming follows the Prometheus conventions: a "ptrider_"
// namespace, base units (seconds), "_total" on counters, and label
// dimensions for route/stage/city. Each latency histogram additionally
// exposes P² quantile estimates (p50/p95/p99) as a companion summary
// family named "<name>_summary" — O(1) per observation, no sample
// retention (see stats.P2Quantile).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ptrider/internal/stats"
)

// Label is one name=value pair of a metric series.
type Label struct {
	Name, Value string
}

// Registry holds a set of metric instruments for one subsystem (one
// city engine, the HTTP layer, the relay scheduler). A nil *Registry
// is valid everywhere and hands out nil instruments whose methods are
// no-ops.
type Registry struct {
	mu      sync.Mutex
	order   []string            // family emission order (first registration wins)
	series  map[string][]series // family name → series
	keySeen map[string]series   // name + label key → existing instrument (dedupe)
}

// series is one registered instrument with its fixed labels.
type series struct {
	labels []Label
	help   string
	inst   any // *Counter, *Gauge, *LatencyHist, counterFunc, gaugeFunc
}

type counterFunc func() float64
type gaugeFunc func() float64

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series:  make(map[string][]series),
		keySeen: make(map[string]series),
	}
}

// seriesKey identifies one series inside a family for deduplication.
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// register installs inst under (name, labels), returning the existing
// instrument when the identical series was registered before — the
// idempotence that lets callers re-request a labeled series (per-route
// histograms) without tracking first-use themselves.
func (r *Registry) register(name, help string, labels []Label, inst any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	if prior, ok := r.keySeen[key]; ok {
		return prior.inst
	}
	if _, ok := r.series[name]; !ok {
		r.order = append(r.order, name)
	}
	s := series{labels: labels, help: help, inst: inst}
	r.series[name] = append(r.series[name], s)
	r.keySeen[key] = s
	return inst
}

// Counter returns the monotonically increasing counter registered
// under name+labels, creating it on first use. Nil registry → nil
// counter (whose methods are no-ops).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, labels, &Counter{}).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at
// gather time — for monotone totals a subsystem already tracks
// (request counts behind an atomic, say). fn runs on the scrape path
// and may take locks.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, labels, counterFunc(fn))
}

// Gauge returns the settable gauge registered under name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, labels, &Gauge{}).(*Gauge)
}

// GaugeFunc registers a gauge read from fn at gather time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, labels, gaugeFunc(fn))
}

// LatencyHist returns the sharded latency histogram registered under
// name+labels (seconds; default exponential bucket bounds).
func (r *Registry) LatencyHist(name, help string, labels ...Label) *LatencyHist {
	if r == nil {
		return nil
	}
	return r.register(name, help, labels, newLatencyHist()).(*LatencyHist)
}

// ---------------------------------------------------------------------------
// Instruments

// Counter is a monotonically increasing counter. The zero value is
// ready; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be ≥ 0 for the value to stay monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// defBuckets are the latency histogram's cumulative upper bounds in
// seconds: 50µs to 10s, roughly exponential — wide enough for an
// in-process quote (~100µs) and a cross-network HTTP round trip alike.
var defBuckets = []float64{
	5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
	2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histShards is the shard fan-out of one LatencyHist. Power of two so
// shard selection is a mask.
const histShards = 4

// histShard is one shard's state, mutated under its own lock.
type histShard struct {
	mu     sync.Mutex
	counts []int64 // per defBuckets bound, plus a +Inf overflow slot
	sum    float64
	n      int64
	p50    *stats.P2Quantile
	p95    *stats.P2Quantile
	p99    *stats.P2Quantile
	// pad keeps neighbouring shards off one cache line.
	_ [24]byte
}

// LatencyHist is a fixed-bucket latency histogram with P² quantile
// summaries, sharded so concurrent observers rarely share a lock. A
// nil *LatencyHist is a no-op — the zero-cost disabled state.
type LatencyHist struct {
	shards [histShards]*histShard
}

func newLatencyHist() *LatencyHist {
	h := &LatencyHist{}
	for i := range h.shards {
		h.shards[i] = &histShard{
			counts: make([]int64, len(defBuckets)+1),
			p50:    stats.NewP2Quantile(0.50),
			p95:    stats.NewP2Quantile(0.95),
			p99:    stats.NewP2Quantile(0.99),
		}
	}
	return h
}

// Observe records one latency in seconds. Shard selection hashes the
// value's float bits — stateless, allocation-free, and effectively
// random across the nanosecond noise of measured durations.
func (h *LatencyHist) Observe(seconds float64) {
	if h == nil {
		return
	}
	bits := math.Float64bits(seconds)
	sh := h.shards[(bits^bits>>7)&(histShards-1)]
	sh.mu.Lock()
	i := sort.SearchFloat64s(defBuckets, seconds)
	sh.counts[i]++
	sh.sum += seconds
	sh.n++
	sh.p50.Observe(seconds)
	sh.p95.Observe(seconds)
	sh.p99.Observe(seconds)
	sh.mu.Unlock()
}

// ObserveSince records the latency elapsed since start.
func (h *LatencyHist) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total observation count (0 on nil).
func (h *LatencyHist) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for _, sh := range h.shards {
		sh.mu.Lock()
		n += sh.n
		sh.mu.Unlock()
	}
	return n
}

// snapshot merges the shards into one consistent view. Bucket counts
// and sums merge exactly; the quantile estimates merge as
// count-weighted means of the per-shard P² values (each shard saw an
// unbiased sample partition, so the weighted mean is a faithful
// estimator of the same quantile).
func (h *LatencyHist) snapshot() histSnapshot {
	var s histSnapshot
	s.counts = make([]int64, len(defBuckets)+1)
	var q50, q95, q99 float64
	for _, sh := range h.shards {
		sh.mu.Lock()
		for i, c := range sh.counts {
			s.counts[i] += c
		}
		s.sum += sh.sum
		s.n += sh.n
		if sh.n > 0 {
			w := float64(sh.n)
			q50 += w * sh.p50.Value()
			q95 += w * sh.p95.Value()
			q99 += w * sh.p99.Value()
		}
		sh.mu.Unlock()
	}
	if s.n > 0 {
		w := float64(s.n)
		s.q50, s.q95, s.q99 = q50/w, q95/w, q99/w
	}
	return s
}

type histSnapshot struct {
	counts        []int64 // non-cumulative per-bucket counts
	sum           float64
	n             int64
	q50, q95, q99 float64
}

// ---------------------------------------------------------------------------
// Spans

// Stage is one named timing of a span.
type Stage struct {
	Name    string
	Seconds float64
}

// Span records the per-stage timings of one request as it crosses the
// layers: the HTTP middleware opens it, the engine's submit pipeline
// appends quote/register/WAL-wait stages, and a slow-request log line
// renders the breakdown. A nil *Span is a no-op, so the engine records
// stages unconditionally.
type Span struct {
	// ID is the request correlation id (the X-Request-ID value).
	ID    string
	Start time.Time

	mu     sync.Mutex
	stages []Stage
}

// NewSpan opens a span for one correlated request.
func NewSpan(id string) *Span {
	return &Span{ID: id, Start: time.Now()}
}

// Observe appends one stage timing.
func (s *Span) Observe(stage string, seconds float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: stage, Seconds: seconds})
	s.mu.Unlock()
}

// ObserveSince appends one stage timing measured from start.
func (s *Span) ObserveSince(stage string, start time.Time) {
	if s == nil {
		return
	}
	s.Observe(stage, time.Since(start).Seconds())
}

// Stages returns a copy of the recorded stages (nil on a nil span).
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Stage(nil), s.stages...)
}

// Breakdown renders the stages as "quote=1.234ms register=0.1ms" for
// log lines. Empty string when nothing was recorded.
func (s *Span) Breakdown() string {
	stages := s.Stages()
	if len(stages) == 0 {
		return ""
	}
	parts := make([]string, len(stages))
	for i, st := range stages {
		parts[i] = fmt.Sprintf("%s=%.3fms", st.Name, st.Seconds*1e3)
	}
	return strings.Join(parts, " ")
}

// ---------------------------------------------------------------------------
// Gathering and exposition

// Series is one rendered metric series of a family.
type Series struct {
	Labels []Label
	// Value carries counter/gauge series.
	Value float64
	// Hist carries histogram series (nil otherwise).
	Hist *HistView
}

// HistView is a gathered histogram: cumulative bucket counts over the
// default bounds, the sum/count pair, and the P² quantile estimates.
type HistView struct {
	Bounds []float64 // upper bounds; the final +Inf bucket is implied
	Counts []int64   // cumulative, len(Bounds)+1 with the +Inf total last
	Sum    float64
	Count  int64
	Q50    float64
	Q95    float64
	Q99    float64
}

// Family is one gathered metric family.
type Family struct {
	Name   string
	Help   string
	Type   string // "counter", "gauge" or "histogram"
	Series []Series
}

// Gather snapshots every registered instrument into families, in
// registration order. Nil registry gathers nothing.
func (r *Registry) Gather() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	byName := make(map[string][]series, len(names))
	for _, n := range names {
		byName[n] = append([]series(nil), r.series[n]...)
	}
	r.mu.Unlock()

	fams := make([]Family, 0, len(names))
	for _, name := range names {
		group := byName[name]
		if len(group) == 0 {
			continue
		}
		fam := Family{Name: name, Help: group[0].help}
		for _, s := range group {
			switch inst := s.inst.(type) {
			case *Counter:
				fam.Type = "counter"
				fam.Series = append(fam.Series, Series{Labels: s.labels, Value: float64(inst.Value())})
			case counterFunc:
				fam.Type = "counter"
				fam.Series = append(fam.Series, Series{Labels: s.labels, Value: inst()})
			case *Gauge:
				fam.Type = "gauge"
				fam.Series = append(fam.Series, Series{Labels: s.labels, Value: inst.Value()})
			case gaugeFunc:
				fam.Type = "gauge"
				fam.Series = append(fam.Series, Series{Labels: s.labels, Value: inst()})
			case *LatencyHist:
				fam.Type = "histogram"
				snap := inst.snapshot()
				hv := &HistView{
					Bounds: defBuckets,
					Counts: make([]int64, len(snap.counts)),
					Sum:    snap.sum, Count: snap.n,
					Q50: snap.q50, Q95: snap.q95, Q99: snap.q99,
				}
				cum := int64(0)
				for i, c := range snap.counts {
					cum += c
					hv.Counts[i] = cum
				}
				fam.Series = append(fam.Series, Series{Labels: s.labels, Hist: hv})
			}
		}
		fams = append(fams, fam)
	}
	return fams
}

// WithLabel returns the families with one extra label prepended to
// every series — how the multi-city router tags each city registry's
// families with city=<name> before merging them.
func WithLabel(fams []Family, name, value string) []Family {
	out := make([]Family, len(fams))
	for i, f := range fams {
		nf := f
		nf.Series = make([]Series, len(f.Series))
		for j, s := range f.Series {
			ns := s
			ns.Labels = append([]Label{{Name: name, Value: value}}, s.Labels...)
			nf.Series[j] = ns
		}
		out[i] = nf
	}
	return out
}

// Merge combines families with the same name (their series concatenate
// in order) so one exposition emits each HELP/TYPE header once even
// when several registries contribute the family.
func Merge(groups ...[]Family) []Family {
	var order []string
	byName := make(map[string]*Family)
	for _, fams := range groups {
		for _, f := range fams {
			if prior, ok := byName[f.Name]; ok {
				prior.Series = append(prior.Series, f.Series...)
				continue
			}
			cp := f
			cp.Series = append([]Series(nil), f.Series...)
			byName[f.Name] = &cp
			order = append(order, f.Name)
		}
	}
	out := make([]Family, len(order))
	for i, n := range order {
		out[i] = *byName[n]
	}
	return out
}

// formatValue renders a sample value in exposition form.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelString renders {a="b",c="d"} (empty string for no labels);
// extra appends one more pair (the le/quantile label).
func labelString(labels []Label, extra ...Label) string {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteText renders families in the Prometheus text exposition format
// (version 0.0.4). Histograms emit the standard _bucket/_sum/_count
// triple plus a companion "<name>_summary" summary family carrying the
// P² quantile estimates.
func WriteText(b *strings.Builder, fams []Family) {
	for _, f := range fams {
		if len(f.Series) == 0 {
			continue
		}
		fmt.Fprintf(b, "# HELP %s %s\n", f.Name, f.Help)
		fmt.Fprintf(b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Series {
			if s.Hist == nil {
				fmt.Fprintf(b, "%s%s %s\n", f.Name, labelString(s.Labels), formatValue(s.Value))
				continue
			}
			h := s.Hist
			for i, bound := range h.Bounds {
				fmt.Fprintf(b, "%s_bucket%s %d\n",
					f.Name, labelString(s.Labels, Label{"le", formatValue(bound)}), h.Counts[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n",
				f.Name, labelString(s.Labels, Label{"le", "+Inf"}), h.Counts[len(h.Counts)-1])
			fmt.Fprintf(b, "%s_sum%s %s\n", f.Name, labelString(s.Labels), formatValue(h.Sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.Name, labelString(s.Labels), h.Count)
		}
		if f.Type == "histogram" {
			sname := f.Name + "_summary"
			fmt.Fprintf(b, "# HELP %s P2 quantile estimates of %s\n", sname, f.Name)
			fmt.Fprintf(b, "# TYPE %s summary\n", sname)
			for _, s := range f.Series {
				if s.Hist == nil {
					continue
				}
				h := s.Hist
				for _, q := range []struct {
					q string
					v float64
				}{{"0.5", h.Q50}, {"0.95", h.Q95}, {"0.99", h.Q99}} {
					fmt.Fprintf(b, "%s%s %s\n",
						sname, labelString(s.Labels, Label{"quantile", q.q}), formatValue(q.v))
				}
				fmt.Fprintf(b, "%s_sum%s %s\n", sname, labelString(s.Labels), formatValue(h.Sum))
				fmt.Fprintf(b, "%s_count%s %d\n", sname, labelString(s.Labels), h.Count)
			}
		}
	}
}
