package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every constructor on a nil registry and every method
// on a nil instrument must be a usable no-op — that IS the disabled
// state the hot paths rely on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.LatencyHist("x_seconds", "")
	r.CounterFunc("f_total", "", func() float64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(4)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if fams := r.Gather(); fams != nil {
		t.Fatalf("nil registry gathered %v", fams)
	}
	var sp *Span
	sp.Observe("quote", 1)
	sp.ObserveSince("quote", time.Now())
	if sp.Stages() != nil || sp.Breakdown() != "" {
		t.Fatalf("nil span must be empty")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("clock_seconds", "clock")
	g.Set(12.5)
	if g.Value() != 12.5 {
		t.Fatalf("gauge = %v, want 12.5", g.Value())
	}
	// Registration is idempotent: same name+labels returns the same
	// instrument.
	if c2 := r.Counter("reqs_total", "requests"); c2 != c {
		t.Fatalf("re-registration returned a new counter")
	}
	// Same name, different labels → distinct series of one family.
	cb := r.Counter("reqs_total", "requests", Label{"route", "/v1/requests"})
	cb.Inc()
	fams := r.Gather()
	var fam *Family
	for i := range fams {
		if fams[i].Name == "reqs_total" {
			fam = &fams[i]
		}
	}
	if fam == nil || len(fam.Series) != 2 {
		t.Fatalf("want 2 series in reqs_total, got %+v", fam)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHist("lat_seconds", "latency")
	// 1000 observations uniform in (0, 1]s.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	fams := r.Gather()
	hv := fams[0].Series[0].Hist
	if hv == nil {
		t.Fatalf("no hist view")
	}
	// Cumulative counts must be monotone and end at the total.
	last := int64(0)
	for i, c := range hv.Counts {
		if c < last {
			t.Fatalf("bucket %d not cumulative: %v", i, hv.Counts)
		}
		last = c
	}
	if last != 1000 {
		t.Fatalf("+Inf bucket = %d, want 1000", last)
	}
	// le=0.5 must hold exactly the 500 observations ≤ 0.5.
	for i, b := range hv.Bounds {
		if b == 0.5 && hv.Counts[i] != 500 {
			t.Fatalf("le=0.5 bucket = %d, want 500", hv.Counts[i])
		}
	}
	if math.Abs(hv.Sum-500.5) > 1e-6 {
		t.Fatalf("sum = %v, want 500.5", hv.Sum)
	}
	// P² estimates on uniform data: generous tolerance, the point is
	// they landed in the right region after shard merging.
	if hv.Q50 < 0.3 || hv.Q50 > 0.7 {
		t.Fatalf("p50 = %v, want ~0.5", hv.Q50)
	}
	if hv.Q99 < 0.9 || hv.Q99 > 1.01 {
		t.Fatalf("p99 = %v, want ~0.99", hv.Q99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().LatencyHist("lat_seconds", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w*1000+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestSpan(t *testing.T) {
	sp := NewSpan("req-123")
	sp.Observe("quote", 0.0012)
	sp.Observe("register", 0.0001)
	st := sp.Stages()
	if len(st) != 2 || st[0].Name != "quote" || st[1].Name != "register" {
		t.Fatalf("stages = %+v", st)
	}
	bd := sp.Breakdown()
	if !strings.Contains(bd, "quote=1.200ms") || !strings.Contains(bd, "register=0.100ms") {
		t.Fatalf("breakdown = %q", bd)
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_reqs_total", "total requests").Add(7)
	r.GaugeFunc("app_clock_seconds", "sim clock", func() float64 { return 42 })
	h := r.LatencyHist("app_lat_seconds", "latency", Label{"stage", "quote"})
	h.Observe(0.003)
	h.Observe(0.2)
	var b strings.Builder
	WriteText(&b, r.Gather())
	out := b.String()

	for _, want := range []string{
		"# HELP app_reqs_total total requests",
		"# TYPE app_reqs_total counter",
		"app_reqs_total 7",
		"# TYPE app_clock_seconds gauge",
		"app_clock_seconds 42",
		"# TYPE app_lat_seconds histogram",
		`app_lat_seconds_bucket{stage="quote",le="+Inf"} 2`,
		`app_lat_seconds_count{stage="quote"} 2`,
		"# TYPE app_lat_seconds_summary summary",
		`app_lat_seconds_summary{stage="quote",quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestWithLabelAndMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c_total", "help").Add(1)
	b := NewRegistry()
	b.Counter("c_total", "help").Add(2)
	merged := Merge(WithLabel(a.Gather(), "city", "east"), WithLabel(b.Gather(), "city", "west"))
	if len(merged) != 1 {
		t.Fatalf("want 1 family, got %d", len(merged))
	}
	f := merged[0]
	if len(f.Series) != 2 {
		t.Fatalf("want 2 series, got %+v", f.Series)
	}
	for i, city := range []string{"east", "west"} {
		if f.Series[i].Labels[0] != (Label{"city", city}) {
			t.Fatalf("series %d labels = %+v", i, f.Series[i].Labels)
		}
	}
	if f.Series[0].Value != 1 || f.Series[1].Value != 2 {
		t.Fatalf("values = %v %v", f.Series[0].Value, f.Series[1].Value)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "h", Label{"v", "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	WriteText(&b, r.Gather())
	if !strings.Contains(b.String(), `e_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}
