// Package relay serves cross-city trips as two coordinated legs — the
// subsystem the multi-city router (PR 3) left as a typed rejection.
//
// A relay trip from a city A origin to a city B destination is planned
// as origin → gateway in A, hand-off, gateway → destination in B. The
// candidate hand-off gateways — nearest vertex pairs across the two
// cities' shared region boundary — are precomputed per city pair at
// construction (see gateway.go). Quoting fans both legs of every
// gateway out to the two city engines concurrently and composes the
// per-leg price-and-time skylines into one joint skyline: a relay
// option's fare is the sum of its leg fares, and its ETA chains the
// legs — the rider boards leg 2 no earlier than leg 1's worst-case
// arrival at the gateway plus a configurable transfer buffer, and no
// earlier than the leg-2 vehicle's own planned pickup.
//
// Committing is a two-phase probe/commit/compensate protocol: both leg
// records are probed (still quoted, option index valid), leg 1 is
// committed, then leg 2; a leg-2 failure releases leg 1's vehicle
// reservation through core.Engine.CancelAssigned before the error
// surfaces, so a half-booked relay can never leak a reservation. The
// unused gateways' leg quotes are declined on commit.
//
// A ledger tracks each trip's state machine — quoted → leg1-committed
// → in-transfer → leg2-active → completed — and Advance (called from
// the router's Tick) moves trips forward by observing the two leg
// records' lifecycle states. A leg orphaned by a vehicle failure moves
// the trip to failed and compensates the surviving leg.
//
// Model honesty: the fleet serves a stop when its vehicle reaches it,
// so the leg-2 vehicle may "pick up" at the gateway before the rider
// physically arrives — the transfer buffer is a quoting margin
// (pricing and ETA composition), not an enforced rendezvous. The
// ledger still reports in-transfer faithfully from leg 1's completion.
package relay

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/geo"
	"ptrider/internal/roadnet"
	"ptrider/internal/skyline"
	"ptrider/internal/telemetry"
	"ptrider/internal/wal"
)

// TripID identifies a relay trip within one Scheduler. IDs are dense
// and start at 1; transport layers embed them into their own request
// namespaces (the multi-city router negates them).
type TripID int64

// Config parameterises a Scheduler. The zero value means defaults.
type Config struct {
	// MaxGateways bounds the hand-off gateway pairs quoted per city
	// pair (0 = 3). More gateways widen the joint skyline at the cost
	// of 2 extra leg quotes each.
	MaxGateways int
	// BoundaryCandidates is how many boundary-nearest vertices per city
	// feed gateway selection (0 = 24).
	BoundaryCandidates int
	// TransferBufferSeconds is the hand-off margin chained between the
	// legs' ETAs and added to leg 2's waiting-time and pick-up windows
	// (0 = 120; pass a negative value for a literal zero buffer).
	TransferBufferSeconds float64

	// Durability selects write-ahead journaling of the trip ledger
	// (see durability.go); WALDir names the journal directory when on.
	Durability wal.Mode
	WALDir     string
	// FaultInjector arms simulated crash points (tests only).
	FaultInjector *wal.Injector

	// LegQuoteHist, when non-nil, observes each relay leg's quote wall
	// time in seconds (nil = telemetry off, no cost).
	LegQuoteHist *telemetry.LatencyHist
}

func (c Config) withDefaults() Config {
	if c.MaxGateways == 0 {
		c.MaxGateways = 3
	}
	if c.BoundaryCandidates == 0 {
		c.BoundaryCandidates = 24
	}
	if c.TransferBufferSeconds == 0 {
		c.TransferBufferSeconds = 120
	} else if c.TransferBufferSeconds < 0 {
		c.TransferBufferSeconds = 0
	}
	return c
}

// LegEngine is the per-city engine surface the scheduler needs to
// quote, commit, observe and compensate one relay leg. *core.Engine
// satisfies it natively; a remote city shard satisfies it through
// cluster.ShardClient, whose transport failures surface as
// core.ErrUnavailable — the scheduler answers those with deferred,
// idempotent compensation instead of an immediate abort, because an
// unreachable shard may have journaled the mutation before dying.
type LegEngine interface {
	// Graph and Speed describe the city (gateway selection, ETA
	// composition).
	Graph() *roadnet.Graph
	Speed() float64
	// LegLimits returns the city-global waiting-time and planned
	// pick-up budgets leg-2 quoting widens by the transfer buffer.
	LegLimits() (maxWait, maxPickup float64)
	// SubmitWithConstraints quotes one leg.
	SubmitWithConstraints(s, d roadnet.VertexID, riders int, c core.Constraints) (*core.RequestRecord, error)
	// Choose, Decline, Request and CancelAssigned drive the leg
	// records through the two-phase commit and its compensation.
	Choose(id core.RequestID, optionIndex int) error
	Decline(id core.RequestID) error
	Request(id core.RequestID) (*core.RequestRecord, error)
	CancelAssigned(id core.RequestID) error
}

// CityRef is one city the scheduler relays between — the engine plus
// the service region its gateway selection reasons about. The slice
// order given to New is the city index space of Quote.
type CityRef struct {
	Name   string
	Engine LegEngine
	Region geo.Rect
}

// Option is one entry of a relay trip's joint skyline.
type Option struct {
	// Gateway indexes TripView.Gateways: the hand-off this option uses.
	Gateway int
	// Leg1Index/Leg2Index are the option indices inside the two leg
	// records' skylines; Leg1/Leg2 are those options' snapshots.
	Leg1Index, Leg2Index int
	Leg1, Leg2           core.Option
	// Fare is Leg1.Price + Leg2.Price — relay fares compose by sum.
	Fare float64
	// PickupSeconds is leg 1's planned pick-up ETA at the door.
	PickupSeconds float64
	// ETASeconds is the door-to-destination worst-case ETA: leg-1
	// pickup + leg-1 ride bound, then the transfer buffer, then leg 2
	// (whose vehicle may also arrive at the gateway later), then the
	// leg-2 ride bound.
	ETASeconds float64
}

// State is a relay trip's lifecycle stage.
type State int

// Relay trip states. Quoted..Completed is the forward path; Declined,
// Aborted and Failed are terminal exits (rider declined, two-phase
// commit aborted, a committed leg orphaned by a vehicle failure).
const (
	StateQuoted State = iota
	StateLeg1Committed
	StateInTransfer
	StateLeg2Active
	StateCompleted
	StateDeclined
	StateAborted
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateQuoted:
		return "quoted"
	case StateLeg1Committed:
		return "leg1-committed"
	case StateInTransfer:
		return "in-transfer"
	case StateLeg2Active:
		return "leg2-active"
	case StateCompleted:
		return "completed"
	case StateDeclined:
		return "declined"
	case StateAborted:
		return "aborted"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// terminal reports whether the state ends the trip's lifecycle.
func (s State) terminal() bool {
	return s == StateCompleted || s == StateDeclined || s == StateAborted || s == StateFailed
}

// trip is the ledger's live record of one relay trip.
type trip struct {
	mu sync.Mutex

	id       TripID
	oc, dc   int // city indices
	o, d     roadnet.VertexID
	riders   int
	state    State
	gateways []Gateway
	// leg1Recs[gi]/leg2Recs[gi] hold gateway gi's two leg record ids
	// (city-local to oc and dc respectively).
	leg1Recs, leg2Recs []core.RequestID
	options            []Option
	chosen             int // committed option index; -1 before
	// intent is the option index of an in-flight two-phase commit
	// (journaled before the legs book, cleared by the done record);
	// -1 outside the window. Recovery compensates trips whose intent
	// survived a crash (see durability.go).
	intent int
}

// TripView is a consistent snapshot of a relay trip.
type TripView struct {
	ID           TripID
	Origin, Dest string
	// OriginVertex/DestVertex are the snapped endpoints, local to the
	// origin and destination city graphs.
	OriginVertex, DestVertex roadnet.VertexID
	Riders                   int
	State                    State
	Gateways                 []Gateway
	Options                  []Option
	// Chosen is the committed option index (-1 while quoted/declined).
	Chosen int
	// Leg1/Leg2 are the committed legs' request ids, city-local to the
	// origin and destination engines (zero before commit).
	Leg1, Leg2 core.RequestID
	// CoreOptions renders the joint skyline in the single-city option
	// shape for surfaces that speak it (rider choice models, batch
	// choosers): index-aligned with Options, PickupDist carries the
	// composed door-to-destination ETA as a distance equivalent at the
	// origin city's speed, Price the composed fare, Vehicle the leg-1
	// vehicle.
	CoreOptions []core.Option
	// TransferBufferSeconds echoes the scheduler's hand-off margin.
	TransferBufferSeconds float64
}

// Stats is a snapshot of the scheduler's counters — the core-level
// relay panel (core.RelayStats), aliased so the Service interface and
// the scheduler speak the same type. Each leg quote also inflates the
// owning city's request count: relay quoting is real engine traffic.
type Stats = core.RelayStats

// CommitFunc is the leg-commit seam's signature (see
// SetCommitOverride): leg is 1 or 2.
type CommitFunc func(leg int, eng LegEngine, id core.RequestID, optionIndex int) error

// Scheduler coordinates relay trips over a fixed set of city engines.
// All methods are safe for concurrent use.
type Scheduler struct {
	cities   []CityRef
	cfg      Config
	gateways map[[2]int][]Gateway // key: ordered city-index pair (i<j), oriented i→j

	nextID atomic.Int64

	mu     sync.Mutex
	trips  map[TripID]*trip
	active map[TripID]*trip // committed, non-terminal — Advance's worklist
	// pending holds trips whose compensation hit an unavailable
	// engine (a remote shard mid-restart): the two-phase window stays
	// open in the journal — no abort record — and Advance retries the
	// release every tick until the shard answers. A crash while a trip
	// is pending re-runs the same compensation from the recovery scan.
	pending []*trip

	quoted, legQuotes, committed         atomic.Int64
	aborted, declined, completed, failed atomic.Int64

	// commitOverride replaces the engine Choose of a leg commit when
	// set (test seam, like core.Engine.SetStepOverride): relay
	// atomicity tests inject leg-2 failures here because a real
	// mid-commit failure is not reachable deterministically through the
	// public API.
	commitOverride atomic.Pointer[CommitFunc]

	// Durability (see durability.go); journal is nil when off.
	journal *wal.Journal
	inj     *wal.Injector
	walDir  string
}

// New builds a Scheduler over the given cities (index space shared
// with the caller) and precomputes the gateway table for every city
// pair.
func New(cities []CityRef, cfg Config) (*Scheduler, error) {
	if len(cities) < 2 {
		return nil, fmt.Errorf("relay: need at least two cities, got %d", len(cities))
	}
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cities:   cities,
		cfg:      cfg,
		gateways: make(map[[2]int][]Gateway),
		trips:    make(map[TripID]*trip),
		active:   make(map[TripID]*trip),
	}
	for i := range cities {
		if cities[i].Engine == nil {
			return nil, fmt.Errorf("relay: city %q has no engine", cities[i].Name)
		}
		for j := i + 1; j < len(cities); j++ {
			gws := buildGateways(cities[i], cities[j], cfg)
			if len(gws) == 0 {
				return nil, fmt.Errorf("relay: no gateways between %q and %q", cities[i].Name, cities[j].Name)
			}
			s.gateways[[2]int{i, j}] = gws
		}
	}
	if cfg.Durability != wal.ModeOff {
		if cfg.WALDir == "" {
			return nil, fmt.Errorf("relay: durability %v requires WALDir", cfg.Durability)
		}
		if err := s.openDurability(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SetCommitOverride installs (or, with nil, removes) the leg-commit
// seam. Not part of the supported surface.
func (s *Scheduler) SetCommitOverride(fn CommitFunc) {
	if fn == nil {
		s.commitOverride.Store(nil)
		return
	}
	s.commitOverride.Store(&fn)
}

func (s *Scheduler) commitLeg(leg int, eng LegEngine, id core.RequestID, optionIndex int) error {
	if fn := s.commitOverride.Load(); fn != nil {
		return (*fn)(leg, eng, id, optionIndex)
	}
	return eng.Choose(id, optionIndex)
}

// gatewaysFor returns the gateway list oriented origin→destination.
func (s *Scheduler) gatewaysFor(oc, dc int) []Gateway {
	if oc < dc {
		return s.gateways[[2]int{oc, dc}]
	}
	flipped := s.gateways[[2]int{dc, oc}]
	out := make([]Gateway, len(flipped))
	for i, g := range flipped {
		out[i] = Gateway{From: g.To, To: g.From, GapMeters: g.GapMeters}
	}
	return out
}

// Quote answers a cross-city request: per candidate gateway, both legs
// are quoted through the two city engines concurrently, and the
// surviving per-leg option sets are composed into the trip's joint
// skyline. Gateways whose leg quoting fails (degenerate endpoints, no
// route) are dropped — their sibling quotes declined — and the trip is
// registered quoted even when the joint skyline comes back empty (the
// rider then declines, exactly like an optionless single-city quote).
func (s *Scheduler) Quote(oc, dc int, o, d roadnet.VertexID, riders int, cons core.Constraints) (*TripView, error) {
	if oc == dc || oc < 0 || dc < 0 || oc >= len(s.cities) || dc >= len(s.cities) {
		return nil, fmt.Errorf("relay: bad city pair (%d, %d)", oc, dc)
	}
	gws := s.gatewaysFor(oc, dc)
	engO, engD := s.cities[oc].Engine, s.cities[dc].Engine

	// Leg 2 is a hand-off pickup: its waiting-time budget and pick-up
	// window widen by the transfer buffer, since the rendezvous is
	// planned one transfer later than a door pickup. This is what the
	// engine's constraint-scoped submits exist for.
	buffer := s.cfg.TransferBufferSeconds
	waitD, pickupD := engD.LegLimits()
	cons2 := cons
	wait2 := cons.WaitSeconds
	if wait2 <= 0 {
		wait2 = waitD
	}
	cons2.WaitSeconds = wait2 + buffer
	pickup2 := cons.MaxPickupSeconds
	if pickup2 <= 0 {
		pickup2 = pickupD
	}
	cons2.MaxPickupSeconds = pickup2 + buffer

	k := len(gws)
	leg1 := make([]*core.RequestRecord, k)
	leg2 := make([]*core.RequestRecord, k)
	errs1 := make([]error, k)
	errs2 := make([]error, k)
	var wg sync.WaitGroup
	for gi := range gws {
		wg.Add(2)
		go func(gi int) {
			defer wg.Done()
			t0 := time.Now()
			leg1[gi], errs1[gi] = engO.SubmitWithConstraints(o, gws[gi].From, riders, cons)
			s.cfg.LegQuoteHist.ObserveSince(t0)
		}(gi)
		go func(gi int) {
			defer wg.Done()
			t0 := time.Now()
			leg2[gi], errs2[gi] = engD.SubmitWithConstraints(gws[gi].To, d, riders, cons2)
			s.cfg.LegQuoteHist.ObserveSince(t0)
		}(gi)
	}
	wg.Wait()

	tr := &trip{
		id: TripID(s.nextID.Add(1)),
		oc: oc, dc: dc, o: o, d: d, riders: riders,
		state:  StateQuoted,
		chosen: -1,
		intent: -1,
	}
	var firstErr error
	for gi := range gws {
		if errs1[gi] != nil || errs2[gi] != nil {
			// Drop the gateway; decline whichever sibling did quote so
			// no record lingers half-owned.
			if errs1[gi] == nil {
				_ = engO.Decline(leg1[gi].ID)
			}
			if errs2[gi] == nil {
				_ = engD.Decline(leg2[gi].ID)
			}
			if firstErr == nil {
				firstErr = errs1[gi]
				if firstErr == nil {
					firstErr = errs2[gi]
				}
			}
			continue
		}
		s.legQuotes.Add(2)
		tr.gateways = append(tr.gateways, gws[gi])
		tr.leg1Recs = append(tr.leg1Recs, leg1[gi].ID)
		tr.leg2Recs = append(tr.leg2Recs, leg2[gi].ID)
		s.composeGateway(tr, len(tr.gateways)-1, leg1[gi], leg2[gi])
	}
	if len(tr.gateways) == 0 {
		return nil, fmt.Errorf("relay: no viable gateway %s → %s: %w",
			s.cities[oc].Name, s.cities[dc].Name, firstErr)
	}
	tr.options = s.jointSkyline(tr.options)

	// Journal the quote before it becomes visible; the replay rebuilds
	// the trip from this record alone (the leg records themselves live
	// in the city engines' own journals).
	snap := tr.snapLocked()
	if err := s.append(&relayRecord{Op: opQuote, Quote: &snap}); err != nil {
		return nil, fmt.Errorf("relay: trip %d quote: %w", tr.id, err)
	}

	s.mu.Lock()
	s.trips[tr.id] = tr
	s.mu.Unlock()
	s.quoted.Add(1)
	return s.viewLocked(tr), nil
}

// composeGateway appends every (leg-1 option × leg-2 option) pair of
// one gateway to the trip's raw option list. Fares sum; ETAs chain —
// the rider reaches the gateway after leg 1's pickup plus its
// service-bounded ride, waits out the transfer buffer, and boards no
// earlier than the leg-2 vehicle's own planned pickup.
func (s *Scheduler) composeGateway(tr *trip, gi int, rec1, rec2 *core.RequestRecord) {
	engO, engD := s.cities[tr.oc].Engine, s.cities[tr.dc].Engine
	speed1, speed2 := engO.Speed(), engD.Speed()
	ride1 := (1 + rec1.Sigma) * rec1.SD / speed1
	ride2 := (1 + rec2.Sigma) * rec2.SD / speed2
	for i1, o1 := range rec1.Options {
		pickup1 := o1.PickupDist / speed1
		riderAtGateway := pickup1 + ride1 + s.cfg.TransferBufferSeconds
		for i2, o2 := range rec2.Options {
			boarding := math.Max(riderAtGateway, o2.PickupDist/speed2)
			tr.options = append(tr.options, Option{
				Gateway:       gi,
				Leg1Index:     i1,
				Leg2Index:     i2,
				Leg1:          o1,
				Leg2:          o2,
				Fare:          o1.Price + o2.Price,
				PickupSeconds: pickup1,
				ETASeconds:    boarding + ride2,
			})
		}
	}
}

// jointSkyline reduces the raw composed options to the non-dominated
// set over (ETA, fare), sorted by ETA ascending — the §2 skyline
// semantics lifted to two-leg itineraries.
func (s *Scheduler) jointSkyline(raw []Option) []Option {
	var sky skyline.Skyline[Option]
	for _, o := range raw {
		if sky.IsDominated(o.ETASeconds, o.Fare) || sky.ContainsPoint(o.ETASeconds, o.Fare) {
			continue
		}
		sky.Add(o.ETASeconds, o.Fare, o)
	}
	entries := sky.Sorted()
	out := make([]Option, len(entries))
	for i, e := range entries {
		out[i] = e.Payload
	}
	return out
}

// trip looks a live trip up.
func (s *Scheduler) trip(id TripID) (*trip, error) {
	s.mu.Lock()
	tr, ok := s.trips[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("relay: unknown trip %d: %w", id, core.ErrNotFound)
	}
	return tr, nil
}

// Choose commits option optionIndex of a quoted relay trip with the
// two-phase protocol: probe both leg records, commit leg 1, commit
// leg 2, and on a leg-2 failure release leg 1's reservation before
// surfacing the error — both legs book, or neither stays booked. The
// unused gateways' leg quotes are declined either way.
func (s *Scheduler) Choose(id TripID, optionIndex int) error {
	tr, err := s.trip(id)
	if err != nil {
		return err
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.state != StateQuoted {
		if tr.chosen >= 0 {
			// Both legs are already booked — the relay flavour of the
			// engine's double-commit, typed the same way.
			return fmt.Errorf("relay: trip %d is %v, not quoted: %w", id, tr.state, core.ErrAlreadyChosen)
		}
		return fmt.Errorf("relay: trip %d is %v, not quoted", id, tr.state)
	}
	if optionIndex < 0 || optionIndex >= len(tr.options) {
		return fmt.Errorf("relay: option index %d outside [0,%d)", optionIndex, len(tr.options))
	}
	opt := tr.options[optionIndex]
	engO, engD := s.cities[tr.oc].Engine, s.cities[tr.dc].Engine
	leg1ID, leg2ID := tr.leg1Recs[opt.Gateway], tr.leg2Recs[opt.Gateway]

	// Probe: both records must still be live quotes. The engines
	// re-validate under their vehicle locks at commit; this pre-check
	// just fails fast without touching vehicle state.
	for _, probe := range []struct {
		eng LegEngine
		id  core.RequestID
		idx int
	}{{engO, leg1ID, opt.Leg1Index}, {engD, leg2ID, opt.Leg2Index}} {
		rec, err := probe.eng.Request(probe.id)
		if err != nil {
			s.abortJournaled(tr)
			return fmt.Errorf("relay: trip %d probe: %w", id, err)
		}
		if rec.Status != core.StatusQuoted || probe.idx >= len(rec.Options) {
			s.abortJournaled(tr)
			return fmt.Errorf("relay: trip %d probe: leg record %d is %v", id, probe.id, rec.Status)
		}
	}

	// Open the two-phase window durably: recovery treats an intent
	// without a matching done record as a crashed commit and releases
	// whatever leg reservations reached the engines' journals.
	tr.intent = optionIndex
	if err := s.append(&relayRecord{Op: opIntent, ID: tr.id, Opt: optionIndex}); err != nil {
		tr.intent = -1
		s.abortLocked(tr)
		return fmt.Errorf("relay: trip %d intent: %w", id, err)
	}

	// Phase 1: book leg 1. An unavailable engine is ambiguous — the
	// commit may have journaled on a shard that died before answering
	// — so the intent stays open and compensation is deferred until
	// the shard is back (or recovery re-runs the scan).
	if err := s.commitLeg(1, engO, leg1ID, opt.Leg1Index); err != nil {
		if errors.Is(err, core.ErrUnavailable) {
			s.deferCompensationLocked(tr)
		} else {
			s.abortJournaled(tr)
		}
		return fmt.Errorf("relay: trip %d leg 1: %w", id, err)
	}
	// Phase 2: book leg 2 — compensate leg 1 on failure.
	if err := s.commitLeg(2, engD, leg2ID, opt.Leg2Index); err != nil {
		if errors.Is(err, core.ErrUnavailable) {
			// Leg 2 may or may not have booked on the dead shard; leg 1
			// definitely did. Defer: the drain releases both once the
			// shard answers again.
			s.deferCompensationLocked(tr)
			return fmt.Errorf("relay: trip %d leg 2: %w", id, err)
		}
		if cerr := engO.CancelAssigned(leg1ID); cerr != nil {
			if errors.Is(cerr, core.ErrUnavailable) {
				// The origin engine vanished between commit and release;
				// its journaled reservation is exactly what the deferred
				// drain (or recovery's intent scan) compensates.
				s.deferCompensationLocked(tr)
				return fmt.Errorf("relay: trip %d leg 2: %w (leg-1 release deferred: %v)", id, err, cerr)
			}
			// The rider was already picked up by a racing tick: leg 1
			// then completes as an ordinary trip and still leaks no
			// reservation. Anything else is an engine inconsistency
			// worth surfacing with the abort.
			err = fmt.Errorf("%w (leg-1 release: %v)", err, cerr)
		}
		s.abortJournaled(tr)
		return fmt.Errorf("relay: trip %d leg 2: %w", id, err)
	}

	tr.state = StateLeg1Committed
	tr.chosen = optionIndex
	tr.intent = -1
	// The unused gateways' quotes are dead weight now; decline them.
	s.declineLegsLocked(tr, opt.Gateway)
	s.committed.Add(1)
	s.mu.Lock()
	s.active[tr.id] = tr
	s.mu.Unlock()
	// Close the window. If this append fails the legs stay booked in
	// this process but recovery will compensate them — the error must
	// surface so the caller knows the commit is not durable.
	if err := s.append(&relayRecord{Op: opDone, ID: tr.id}); err != nil {
		return fmt.Errorf("relay: trip %d committed, journal failed: %w", id, err)
	}
	return nil
}

// abortJournaled aborts a trip and journals the abort (best effort —
// a dead journal re-aborts the trip at recovery instead). Caller holds
// tr.mu.
func (s *Scheduler) abortJournaled(tr *trip) {
	tr.intent = -1
	s.abortLocked(tr)
	_ = s.append(&relayRecord{Op: opAbort, ID: tr.id})
}

// deferCompensationLocked parks a trip whose two-phase commit ran into
// an unavailable engine: the journaled intent stays open (no abort
// record — recovery must still see the window), the unused gateways'
// quotes are dropped, the trip is surfaced as aborted, and the drain
// retries the release of the intent gateway's legs every Advance.
// Caller holds tr.mu.
func (s *Scheduler) deferCompensationLocked(tr *trip) {
	s.declineLegsLocked(tr, tr.options[tr.intent].Gateway)
	tr.state = StateAborted
	s.aborted.Add(1)
	s.mu.Lock()
	s.pending = append(s.pending, tr)
	s.mu.Unlock()
}

// compensateTripLocked releases whatever the intent gateway's legs
// still hold on their engines: an assigned leg is cancelled, a
// still-quoted one declined, an unknown one ignored (its commit never
// reached that engine's journal). Idempotent — re-running it against
// the same state is a no-op. It reports false when an engine is
// unavailable (retry later, intent stays open) and clears the intent
// on success. Caller holds tr.mu; err carries a non-transport
// cancellation failure (recovery surfaces it, the drain tolerates it
// as "picked up by a racing tick"). Caller must not hold s.mu.
func (s *Scheduler) compensateTripLocked(tr *trip) (done bool, err error) {
	opt := tr.options[tr.intent]
	for _, leg := range []struct {
		eng LegEngine
		id  core.RequestID
	}{
		{s.cities[tr.oc].Engine, tr.leg1Recs[opt.Gateway]},
		{s.cities[tr.dc].Engine, tr.leg2Recs[opt.Gateway]},
	} {
		rec, rerr := leg.eng.Request(leg.id)
		if rerr != nil {
			if errors.Is(rerr, core.ErrUnavailable) {
				return false, err
			}
			continue // commit never reached that engine's journal
		}
		switch rec.Status {
		case core.StatusAssigned:
			if cerr := leg.eng.CancelAssigned(leg.id); cerr != nil {
				if errors.Is(cerr, core.ErrUnavailable) {
					return false, err
				}
				if err == nil {
					err = fmt.Errorf("relay: compensate trip %d leg %d: %w", tr.id, leg.id, cerr)
				}
			}
		case core.StatusQuoted:
			_ = leg.eng.Decline(leg.id)
		}
	}
	tr.intent = -1
	return true, err
}

// drainPending retries the deferred compensations. Each resolved trip
// closes its two-phase window with the abort record; unresolved ones
// stay queued for the next tick.
func (s *Scheduler) drainPending() {
	s.mu.Lock()
	pend := s.pending
	s.pending = nil
	s.mu.Unlock()
	if len(pend) == 0 {
		return
	}
	var still []*trip
	for _, tr := range pend {
		tr.mu.Lock()
		done, _ := s.compensateTripLocked(tr)
		tr.mu.Unlock()
		if done {
			_ = s.append(&relayRecord{Op: opAbort, ID: tr.id})
		} else {
			still = append(still, tr)
		}
	}
	if len(still) > 0 {
		s.mu.Lock()
		s.pending = append(s.pending, still...)
		s.mu.Unlock()
	}
}

// PendingCompensations reports how many trips still await a deferred
// leg release (0 in steady state; tests and operators poll it).
func (s *Scheduler) PendingCompensations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// committedLegsLocked returns the committed legs' record ids. Caller
// holds tr.mu; tr.chosen must be ≥ 0.
func (tr *trip) committedLegsLocked() (leg1, leg2 core.RequestID) {
	gw := tr.options[tr.chosen].Gateway
	return tr.leg1Recs[gw], tr.leg2Recs[gw]
}

// Decline records that the rider took none of the joint options; every
// leg quote is declined.
func (s *Scheduler) Decline(id TripID) error {
	tr, err := s.trip(id)
	if err != nil {
		return err
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.state != StateQuoted {
		return fmt.Errorf("relay: trip %d is %v, not quoted", id, tr.state)
	}
	if err := s.append(&relayRecord{Op: opDecline, ID: tr.id}); err != nil {
		return fmt.Errorf("relay: trip %d decline: %w", id, err)
	}
	s.declineLegsLocked(tr, -1)
	tr.state = StateDeclined
	s.declined.Add(1)
	return nil
}

// declineLegsLocked declines every still-quoted leg record except the
// keep gateway's (-1 keeps none). Caller holds tr.mu.
func (s *Scheduler) declineLegsLocked(tr *trip, keep int) {
	engO, engD := s.cities[tr.oc].Engine, s.cities[tr.dc].Engine
	for gi := range tr.gateways {
		if gi == keep {
			continue
		}
		_ = engO.Decline(tr.leg1Recs[gi])
		_ = engD.Decline(tr.leg2Recs[gi])
	}
}

// abortLocked ends a trip whose two-phase commit failed: every
// still-quoted leg record is declined and the trip marked aborted.
// Caller holds tr.mu.
func (s *Scheduler) abortLocked(tr *trip) {
	s.declineLegsLocked(tr, -1)
	tr.state = StateAborted
	s.aborted.Add(1)
}

// Trip returns a snapshot of a relay trip.
func (s *Scheduler) Trip(id TripID) (*TripView, error) {
	tr, err := s.trip(id)
	if err != nil {
		return nil, err
	}
	return s.viewLocked(tr), nil
}

// viewLocked snapshots a trip. It takes tr.mu itself.
func (s *Scheduler) viewLocked(tr *trip) *TripView {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tv := &TripView{
		ID:                    tr.id,
		Origin:                s.cities[tr.oc].Name,
		Dest:                  s.cities[tr.dc].Name,
		OriginVertex:          tr.o,
		DestVertex:            tr.d,
		Riders:                tr.riders,
		State:                 tr.state,
		Gateways:              append([]Gateway(nil), tr.gateways...),
		Options:               append([]Option(nil), tr.options...),
		Chosen:                tr.chosen,
		TransferBufferSeconds: s.cfg.TransferBufferSeconds,
	}
	if tr.chosen >= 0 {
		tv.Leg1, tv.Leg2 = tr.committedLegsLocked()
	}
	speed1 := s.cities[tr.oc].Engine.Speed()
	tv.CoreOptions = make([]core.Option, len(tr.options))
	for i, o := range tr.options {
		tv.CoreOptions[i] = core.Option{
			Vehicle:    o.Leg1.Vehicle,
			PickupDist: o.ETASeconds * speed1,
			Price:      o.Fare,
		}
	}
	return tv
}

// Advance moves every committed trip's state machine forward by
// observing its leg records — called once per router tick, after the
// per-city movement phases. Completed and failed trips leave the
// active set; a trip one leg's vehicle failure orphaned compensates
// the surviving leg's reservation so nothing stays half-booked.
func (s *Scheduler) Advance() {
	s.drainPending()
	s.mu.Lock()
	worklist := make([]*trip, 0, len(s.active))
	for _, tr := range s.active {
		worklist = append(worklist, tr)
	}
	s.mu.Unlock()

	for _, tr := range worklist {
		tr.mu.Lock()
		s.advanceLocked(tr)
		done := tr.state.terminal()
		id := tr.id
		tr.mu.Unlock()
		if done {
			s.mu.Lock()
			delete(s.active, id)
			s.mu.Unlock()
		}
	}
}

// advanceLocked recomputes a committed trip's stage from its leg
// records' lifecycle states. Caller holds tr.mu.
func (s *Scheduler) advanceLocked(tr *trip) {
	if tr.state.terminal() || tr.state == StateQuoted {
		return
	}
	engO, engD := s.cities[tr.oc].Engine, s.cities[tr.dc].Engine
	leg1ID, leg2ID := tr.committedLegsLocked()
	rec1, err1 := engO.Request(leg1ID)
	rec2, err2 := engD.Request(leg2ID)
	if err1 != nil || err2 != nil {
		return // engine restarted under us; leave the trip as is
	}
	if rec1.Status == core.StatusDeclined || rec2.Status == core.StatusDeclined {
		// A committed leg was orphaned (vehicle failure). Compensate
		// the surviving leg so the relay leaks nothing, then fail. An
		// unavailable engine keeps the trip active — the next tick
		// retries the release.
		if rec1.Status == core.StatusAssigned {
			if err := engO.CancelAssigned(rec1.ID); errors.Is(err, core.ErrUnavailable) {
				return
			}
		}
		if rec2.Status == core.StatusAssigned {
			if err := engD.CancelAssigned(rec2.ID); errors.Is(err, core.ErrUnavailable) {
				return
			}
		}
		tr.state = StateFailed
		s.failed.Add(1)
		return
	}
	next := tr.state
	switch {
	case rec1.Status == core.StatusCompleted && rec2.Status == core.StatusCompleted:
		next = StateCompleted
	case rec2.Status == core.StatusOnboard || rec2.Status == core.StatusCompleted:
		// A leg-2 vehicle that reached the gateway early can complete
		// its record before leg 1 lands; the trip is not complete —
		// and must stay on the compensation worklist — until the rider
		// actually made it across leg 1 too.
		next = StateLeg2Active
	case rec1.Status == core.StatusCompleted:
		next = StateInTransfer
	}
	if next > tr.state {
		tr.state = next
		if next == StateCompleted {
			s.completed.Add(1)
		}
	}
}

// ServiceView renders the trip snapshot as the core-level relay
// itinerary the Service interface exposes; reqID is the trip's id in
// the transport's global namespace (the multi-city router's negated
// trip id).
func (tv *TripView) ServiceView(reqID core.RequestID) *core.RelayView {
	out := &core.RelayView{
		RequestID:             reqID,
		Origin:                tv.Origin,
		Dest:                  tv.Dest,
		State:                 tv.State.String(),
		TransferBufferSeconds: tv.TransferBufferSeconds,
		Gateways:              make([]core.RelayGatewayView, len(tv.Gateways)),
		Options:               make([]core.RelayOptionView, len(tv.Options)),
		Chosen:                tv.Chosen,
		Leg1:                  tv.Leg1,
		Leg2:                  tv.Leg2,
	}
	for i, g := range tv.Gateways {
		out.Gateways[i] = core.RelayGatewayView{From: g.From, To: g.To, GapMeters: g.GapMeters}
	}
	for i, o := range tv.Options {
		out.Options[i] = core.RelayOptionView{
			Gateway:       o.Gateway,
			Leg1:          o.Leg1,
			Leg2:          o.Leg2,
			Fare:          o.Fare,
			PickupSeconds: o.PickupSeconds,
			ETASeconds:    o.ETASeconds,
		}
	}
	return out
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	active := int64(len(s.active))
	s.mu.Unlock()
	return Stats{
		Quoted:    s.quoted.Load(),
		LegQuotes: s.legQuotes.Load(),
		Committed: s.committed.Load(),
		Aborted:   s.aborted.Load(),
		Declined:  s.declined.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Active:    active,
	}
}
