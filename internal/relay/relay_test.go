package relay_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
)

// asEngine unwraps a test CityRef back to its concrete engine for the
// engine-only assertions (stats, invariants, ticking).
func asEngine(ref relay.CityRef) *core.Engine { return ref.Engine.(*core.Engine) }

// twinCities builds two engines over disjoint synthetic cities for
// direct scheduler tests: "west" at the origin, "east" 20 km out.
func twinCities(t testing.TB, taxisW, taxisE int, commitSlack float64) []relay.CityRef {
	t.Helper()
	gw, err := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ge, err := gen.GenerateNetwork(gen.CityConfig{Width: 8, Height: 8, OriginX: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Capacity: 4, Algorithm: core.AlgoDualSide, CommitSlack: commitSlack}
	cfgW, cfgE := cfg, cfg
	cfgW.Seed, cfgE.Seed = 1, 2
	engW, err := core.NewEngine(gw, cfgW)
	if err != nil {
		t.Fatal(err)
	}
	engE, err := core.NewEngine(ge, cfgE)
	if err != nil {
		t.Fatal(err)
	}
	engW.AddVehiclesUniform(taxisW)
	engE.AddVehiclesUniform(taxisE)
	return []relay.CityRef{
		{Name: "west", Engine: engW, Region: gw.Bounds()},
		{Name: "east", Engine: engE, Region: ge.Bounds()},
	}
}

func TestGatewaySelection(t *testing.T) {
	cities := twinCities(t, 4, 4, 0)
	s, err := relay.New(cities, relay.Config{MaxGateways: 3})
	if err != nil {
		t.Fatal(err)
	}
	tv := quoteSomething(t, s, cities)
	if len(tv.Gateways) == 0 {
		t.Fatal("no gateways quoted")
	}
	gw, ge := cities[0].Engine.Graph(), cities[1].Engine.Graph()
	seenFrom := map[roadnet.VertexID]bool{}
	seenTo := map[roadnet.VertexID]bool{}
	for i, g := range tv.Gateways {
		if seenFrom[g.From] || seenTo[g.To] {
			t.Fatalf("gateway %d reuses an endpoint: %+v", i, g)
		}
		seenFrom[g.From] = true
		seenTo[g.To] = true
		// The hand-off crosses the inter-city gap, so every pair's gap
		// is at least the sea width minus the cities' extents — in this
		// layout several kilometres — and From/To face each other:
		// From on west's east edge, To on east's west edge.
		if g.GapMeters <= 1000 {
			t.Fatalf("gateway %d gap %.0f m implausibly small", i, g.GapMeters)
		}
		if p := gw.Point(g.From); p.X < gw.Bounds().Max.X-1500 {
			t.Fatalf("gateway %d From at x=%.0f is not on the boundary (max %.0f)", i, p.X, gw.Bounds().Max.X)
		}
		if p := ge.Point(g.To); p.X > ge.Bounds().Min.X+1500 {
			t.Fatalf("gateway %d To at x=%.0f is not on the boundary (min %.0f)", i, p.X, ge.Bounds().Min.X)
		}
	}
}

// quoteSomething quotes one west→east relay trip with a non-empty
// joint skyline.
func quoteSomething(t testing.TB, s *relay.Scheduler, cities []relay.CityRef) *relay.TripView {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	gw, ge := cities[0].Engine.Graph(), cities[1].Engine.Graph()
	for attempt := 0; attempt < 50; attempt++ {
		o := roadnet.VertexID(rng.Intn(gw.NumVertices()))
		d := roadnet.VertexID(rng.Intn(ge.NumVertices()))
		tv, err := s.Quote(0, 1, o, d, 1, core.DefaultConstraints())
		if err != nil {
			t.Fatalf("quote: %v", err)
		}
		if len(tv.Options) > 0 {
			return tv
		}
		_ = s.Decline(tv.ID)
	}
	t.Fatal("no relay quote produced options in 50 attempts")
	return nil
}

func TestQuoteComposesJointSkyline(t *testing.T) {
	cities := twinCities(t, 10, 8, 0)
	buffer := 90.0
	s, err := relay.New(cities, relay.Config{TransferBufferSeconds: buffer})
	if err != nil {
		t.Fatal(err)
	}
	tv := quoteSomething(t, s, cities)

	if tv.State != relay.StateQuoted || tv.Chosen != -1 {
		t.Fatalf("fresh quote state = %v, chosen %d", tv.State, tv.Chosen)
	}
	if len(tv.CoreOptions) != len(tv.Options) {
		t.Fatalf("core options (%d) not aligned with joint options (%d)", len(tv.CoreOptions), len(tv.Options))
	}
	speedW := cities[0].Engine.Speed()
	for i, o := range tv.Options {
		if o.Fare != o.Leg1.Price+o.Leg2.Price {
			t.Fatalf("option %d fare %v != leg sum %v", i, o.Fare, o.Leg1.Price+o.Leg2.Price)
		}
		// The ETA chains the legs through the buffer: it can never beat
		// leg-1 pickup + transfer buffer + the leg-2 ride, nor the
		// leg-2 vehicle's own pickup plus that ride.
		if o.ETASeconds < o.PickupSeconds+buffer {
			t.Fatalf("option %d ETA %.0f ignores the %.0f s transfer buffer (pickup %.0f)", i, o.ETASeconds, buffer, o.PickupSeconds)
		}
		if o.PickupSeconds != o.Leg1.PickupDist/speedW {
			t.Fatalf("option %d pickup %.1f s != leg-1 pickup dist / speed", i, o.PickupSeconds)
		}
		if tv.CoreOptions[i].Price != o.Fare {
			t.Fatalf("core option %d price %v != fare %v", i, tv.CoreOptions[i].Price, o.Fare)
		}
		// Joint skyline: sorted by ETA, strictly improving fares.
		if i > 0 {
			prev := tv.Options[i-1]
			if o.ETASeconds < prev.ETASeconds {
				t.Fatalf("options not sorted by ETA at %d", i)
			}
			if o.Fare >= prev.Fare {
				t.Fatalf("option %d (ETA %.0f, fare %.2f) dominated by %d (ETA %.0f, fare %.2f)",
					i, o.ETASeconds, o.Fare, i-1, prev.ETASeconds, prev.Fare)
			}
		}
	}
}

func TestChooseCommitsBothLegsAtomically(t *testing.T) {
	cities := twinCities(t, 10, 8, 0)
	s, err := relay.New(cities, relay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tv := quoteSomething(t, s, cities)
	if err := s.Choose(tv.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	after, err := s.Trip(tv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != relay.StateLeg1Committed {
		t.Fatalf("state after choose = %v", after.State)
	}
	rec1, err := cities[0].Engine.Request(after.Leg1)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := cities[1].Engine.Request(after.Leg2)
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Status != core.StatusAssigned || rec2.Status != core.StatusAssigned {
		t.Fatalf("leg statuses after choose: %v / %v", rec1.Status, rec2.Status)
	}
	// Every leg quote this trip issued is now either committed or
	// declined — nothing lingers quoted in either engine.
	for _, ref := range []relay.CityRef{cities[0], cities[1]} {
		st := asEngine(ref).Stats()
		if st.Requests != st.Assigned+st.Declined {
			t.Fatalf("%s: %d requests but %d assigned + %d declined", ref.Name, st.Requests, st.Assigned, st.Declined)
		}
	}
	// Double choose is refused.
	if err := s.Choose(tv.ID, 0); err == nil {
		t.Fatal("second choose succeeded")
	}
	if err := asEngine(cities[0]).CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := asEngine(cities[1]).CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Committed != 1 || st.Active != 1 {
		t.Fatalf("stats after choose: %+v", st)
	}
}

// TestChooseLeg2FailureReleasesLeg1 is the relay atomicity guarantee:
// a leg-2 commit failure (injected through the commit seam, since a
// real mid-commit failure is not deterministically reachable) must
// release leg 1's vehicle reservation — no half-booked relay.
func TestChooseLeg2FailureReleasesLeg1(t *testing.T) {
	cities := twinCities(t, 10, 8, 0)
	s, err := relay.New(cities, relay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tv := quoteSomething(t, s, cities)
	opt := tv.Options[0]
	leg1ID := legRecordID(t, s, cities, tv, 0)

	s.SetCommitOverride(func(leg int, eng relay.LegEngine, id core.RequestID, idx int) error {
		if leg == 2 {
			return fmt.Errorf("injected leg-2 failure")
		}
		return eng.Choose(id, idx)
	})
	if err := s.Choose(tv.ID, 0); err == nil {
		t.Fatal("choose succeeded despite leg-2 failure")
	}
	s.SetCommitOverride(nil)

	// Leg 1's record ended declined, and the quoted vehicle carries no
	// pending request for it — the reservation was released.
	rec1, err := cities[0].Engine.Request(leg1ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Status != core.StatusDeclined {
		t.Fatalf("leg-1 record after abort = %v, want declined", rec1.Status)
	}
	loc, _, err := asEngine(cities[0]).VehicleSchedules(opt.Leg1.Vehicle)
	_ = loc
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range asEngine(cities[0]).VehicleViews(0) {
		if v.ID == opt.Leg1.Vehicle && v.Pending != 0 {
			t.Fatalf("leg-1 vehicle %d still holds %d pending requests", v.ID, v.Pending)
		}
	}
	after, err := s.Trip(tv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != relay.StateAborted {
		t.Fatalf("trip state after abort = %v", after.State)
	}
	if err := asEngine(cities[0]).CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Aborted != 1 || st.Committed != 0 || st.Active != 0 {
		t.Fatalf("stats after abort: %+v", st)
	}
}

// legRecordID digs the chosen option's leg-1 record id out of a trip
// view via the scheduler (the view exposes committed legs only after
// commit, so tests read it pre-commit through the option's gateway).
func legRecordID(t *testing.T, s *relay.Scheduler, cities []relay.CityRef, tv *relay.TripView, optIdx int) core.RequestID {
	t.Helper()
	// The leg-1 quote is the newest quoted record ending at the
	// gateway: find it by scanning the engine's id space backwards is
	// not exposed, so instead recover it after the abort via the trip
	// view — Choose stores committed ids, but an aborted trip declines
	// them. Simplest: quote ids are dense per engine, and the leg-1
	// records were created by this trip's Quote; walk recent ids.
	eng := cities[0].Engine
	opt := tv.Options[optIdx]
	for id := core.RequestID(1); ; id++ {
		rec, err := eng.Request(id)
		if err != nil {
			break
		}
		if rec.D == tv.Gateways[opt.Gateway].From && rec.S == tv.OriginVertex && rec.Status == core.StatusQuoted {
			return rec.ID
		}
	}
	t.Fatal("leg-1 record not found")
	return 0
}

func TestDeclineReleasesAllLegQuotes(t *testing.T) {
	cities := twinCities(t, 10, 8, 0)
	s, err := relay.New(cities, relay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tv := quoteSomething(t, s, cities)
	if err := s.Decline(tv.ID); err != nil {
		t.Fatal(err)
	}
	after, err := s.Trip(tv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != relay.StateDeclined {
		t.Fatalf("state after decline = %v", after.State)
	}
	if err := s.Choose(tv.ID, 0); err == nil {
		t.Fatal("choose after decline succeeded")
	}
	// No quoted leg record of this trip remains.
	for _, ref := range []relay.CityRef{cities[0], cities[1]} {
		st := asEngine(ref).Stats()
		if st.Requests != st.Declined {
			t.Fatalf("%s: %d requests but only %d declined after trip decline", ref.Name, st.Requests, st.Declined)
		}
	}
}

// TestRelayTripCompletesEndToEnd drives both engines' clocks until a
// committed relay trip's ledger walks quoted → leg1-committed →
// (in-transfer | leg2-active)* → completed.
func TestRelayTripCompletesEndToEnd(t *testing.T) {
	cities := twinCities(t, 12, 10, 0.5)
	s, err := relay.New(cities, relay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tv := quoteSomething(t, s, cities)
	if err := s.Choose(tv.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	seen := map[relay.State]bool{}
	for tick := 0; tick < 5000; tick++ {
		if _, err := asEngine(cities[0]).Tick(2); err != nil {
			t.Fatal(err)
		}
		if _, err := asEngine(cities[1]).Tick(2); err != nil {
			t.Fatal(err)
		}
		s.Advance()
		cur, err := s.Trip(tv.ID)
		if err != nil {
			t.Fatal(err)
		}
		seen[cur.State] = true
		if cur.State == relay.StateCompleted {
			if st := s.Stats(); st.Completed != 1 || st.Active != 0 {
				t.Fatalf("stats after completion: %+v", st)
			}
			return
		}
		if cur.State == relay.StateFailed || cur.State == relay.StateAborted {
			t.Fatalf("trip ended %v", cur.State)
		}
	}
	t.Fatalf("trip did not complete; states seen: %v", seen)
}
