// durability.go makes the relay trip ledger crash-safe. The scheduler
// keeps its own wal.Journal next to the city engines' journals; trip
// records reference the leg requests by id, and those legs live in the
// engines' durable ledgers, so the relay journal only has to persist
// the coordination state — which trips exist, and where each one is in
// the two-phase commit.
//
// The two-phase commit window is the interesting part. Choose journals
// an *intent* record before booking the legs and a *done* record after
// both leg commits landed. A crash inside the window leaves an intent
// without a done: the origin engine may hold a journaled leg-1
// reservation that no live trip will ever advance — a leaked vehicle.
// Recovery therefore scans for open intents and compensates each one:
// any leg the recovered engines still show assigned is cancelled
// (checked by status first, so a leg whose commit never reached its
// engine's journal is a no-op) and the trip is aborted. Compensation
// is idempotent — a crash mid-compensate (the CrashMidCompensate
// point) re-runs the same scan on the next recovery.
//
// Non-atomicity across journals, documented: a crash after the city
// engines journaled a trip's leg quotes but before the relay quote
// record landed leaves the legs as unclaimed quoted records in the
// engines. They hold no vehicle and expire into declines harmlessly;
// nothing leaks.
package relay

import (
	"encoding/json"
	"fmt"

	"ptrider/internal/core"
	"ptrider/internal/roadnet"
	"ptrider/internal/wal"
)

// Relay journal operation tags.
const (
	opQuote   = "quote"
	opIntent  = "intent"
	opDone    = "done"
	opDecline = "decline"
	opAbort   = "abort"
)

// relayRecord is the envelope of one journaled trip operation.
type relayRecord struct {
	Op    string    `json:"op"`
	Quote *tripSnap `json:"quote,omitempty"`
	ID    TripID    `json:"id,omitempty"`
	Opt   int       `json:"opt,omitempty"` // intent's option index
}

// tripSnap is the serialisable state of one trip — the quote record's
// payload and the snapshot's per-trip entry.
type tripSnap struct {
	ID       TripID
	OC, DC   int
	O, D     roadnet.VertexID
	Riders   int
	State    State
	Chosen   int
	Intent   int // pending two-phase option index; -1 outside the window
	Gateways []Gateway
	Leg1Recs []core.RequestID
	Leg2Recs []core.RequestID
	Options  []Option
}

// relaySnap is the snapshot payload: the whole trip ledger plus the
// counters the stats panel reports.
type relaySnap struct {
	NextID    int64
	Trips     []tripSnap
	Quoted    int64
	LegQuotes int64
	Committed int64
	Aborted   int64
	Declined  int64
	Completed int64
	Failed    int64
}

func (tr *trip) snapLocked() tripSnap {
	return tripSnap{
		ID: tr.id, OC: tr.oc, DC: tr.dc, O: tr.o, D: tr.d,
		Riders: tr.riders, State: tr.state, Chosen: tr.chosen,
		Intent:   tr.intent,
		Gateways: tr.gateways,
		Leg1Recs: tr.leg1Recs, Leg2Recs: tr.leg2Recs,
		Options: tr.options,
	}
}

func tripFromSnap(ts *tripSnap) *trip {
	return &trip{
		id: ts.ID, oc: ts.OC, dc: ts.DC, o: ts.O, d: ts.D,
		riders: ts.Riders, state: ts.State, chosen: ts.Chosen,
		intent:   ts.Intent,
		gateways: ts.Gateways,
		leg1Recs: ts.Leg1Recs, leg2Recs: ts.Leg2Recs,
		options: ts.Options,
	}
}

// append journals one trip record; sync-mode waits ride on the group
// commit like the engine's. Callers must not hold s.mu.
func (s *Scheduler) append(rec *relayRecord) error {
	if s.journal == nil {
		return nil
	}
	if s.inj.Fire(wal.CrashPreAppend) {
		s.journal.Kill()
		return wal.ErrCrashed
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("relay: journal encode: %w", err)
	}
	c, err := s.journal.Append(payload)
	if err != nil {
		return err
	}
	if s.inj.Fire(wal.CrashPostAppend) {
		s.journal.Kill()
		return wal.ErrCrashed
	}
	return c.Wait()
}

// openDurability recovers the trip ledger from cfg.WALDir and opens
// the journal. Called from New after the gateway tables are built and
// before the scheduler is returned; the city engines are already
// recovered, which the compensation scan relies on.
func (s *Scheduler) openDurability(cfg Config) error {
	s.inj = cfg.FaultInjector
	s.walDir = cfg.WALDir
	rec, err := wal.Recover(cfg.WALDir)
	if err != nil {
		return err
	}
	if rec.Snapshot != nil {
		var snap relaySnap
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return fmt.Errorf("relay: snapshot %d: %w", rec.SnapshotSeg, err)
		}
		s.applySnapshot(&snap)
	}
	for i, payload := range rec.Records {
		if err := s.replayRecord(payload); err != nil {
			return fmt.Errorf("relay: replay record %d/%d: %w", i+1, len(rec.Records), err)
		}
	}
	j, err := wal.Open(cfg.WALDir, rec.NextSeg, wal.Options{Mode: cfg.Durability, Injector: cfg.FaultInjector})
	if err != nil {
		return err
	}
	s.journal = j
	return s.compensateOpenIntents()
}

func (s *Scheduler) applySnapshot(snap *relaySnap) {
	s.nextID.Store(snap.NextID)
	s.quoted.Store(snap.Quoted)
	s.legQuotes.Store(snap.LegQuotes)
	s.committed.Store(snap.Committed)
	s.aborted.Store(snap.Aborted)
	s.declined.Store(snap.Declined)
	s.completed.Store(snap.Completed)
	s.failed.Store(snap.Failed)
	for i := range snap.Trips {
		tr := tripFromSnap(&snap.Trips[i])
		s.trips[tr.id] = tr
		if tr.chosen >= 0 && !tr.state.terminal() {
			s.active[tr.id] = tr
		}
	}
}

func (s *Scheduler) replayRecord(payload []byte) error {
	var r relayRecord
	if err := json.Unmarshal(payload, &r); err != nil {
		return err
	}
	switch r.Op {
	case opQuote:
		tr := tripFromSnap(r.Quote)
		s.trips[tr.id] = tr
		if int64(tr.id) > s.nextID.Load() {
			s.nextID.Store(int64(tr.id))
		}
		s.quoted.Add(1)
		s.legQuotes.Add(int64(2 * len(tr.gateways)))

	case opIntent:
		tr := s.trips[r.ID]
		if tr == nil {
			return fmt.Errorf("intent for unknown trip %d", r.ID)
		}
		tr.intent = r.Opt

	case opDone:
		tr := s.trips[r.ID]
		if tr == nil {
			return fmt.Errorf("done for unknown trip %d", r.ID)
		}
		// Restored at leg1-committed; the first Advance after recovery
		// walks the state machine forward from the recovered leg
		// records (transitions are monotonic, so an already-completed
		// trip just completes again).
		tr.state = StateLeg1Committed
		tr.chosen = tr.intent
		tr.intent = -1
		s.committed.Add(1)
		s.active[tr.id] = tr

	case opDecline:
		tr := s.trips[r.ID]
		if tr == nil {
			return fmt.Errorf("decline for unknown trip %d", r.ID)
		}
		tr.state = StateDeclined
		s.declined.Add(1)

	case opAbort:
		tr := s.trips[r.ID]
		if tr == nil {
			return fmt.Errorf("abort for unknown trip %d", r.ID)
		}
		tr.state = StateAborted
		tr.intent = -1
		s.aborted.Add(1)
		delete(s.active, tr.id)

	default:
		return fmt.Errorf("unknown relay journal op %q", r.Op)
	}
	return nil
}

// compensateOpenIntents is the recovery half of the two-phase commit:
// every trip with a journaled intent and no done crashed inside the
// commit window. Whatever leg reservations reached the engines'
// journals are released (status-checked, so a leg that never committed
// is a no-op) and the trip is aborted. The CrashMidCompensate point
// fires between trips; the whole scan is idempotent under re-recovery.
func (s *Scheduler) compensateOpenIntents() error {
	var open []*trip
	for _, tr := range s.trips {
		if tr.intent >= 0 && !tr.state.terminal() {
			open = append(open, tr)
		}
	}
	for _, tr := range open {
		if s.inj.Fire(wal.CrashMidCompensate) {
			s.journal.Kill()
			return wal.ErrCrashed
		}
		tr.mu.Lock()
		done, cerr := s.compensateTripLocked(tr)
		if !done {
			// An engine is unreachable (a sibling shard still
			// restarting): keep the intent open and let the Advance
			// drain finish the release once it answers. Recovery
			// itself stays idempotent — a crash before the drain
			// re-runs this same scan.
			s.deferCompensationLocked(tr)
			tr.mu.Unlock()
			continue
		}
		if cerr != nil {
			tr.mu.Unlock()
			return cerr
		}
		s.abortLocked(tr)
		tr.mu.Unlock()
		if err := s.append(&relayRecord{Op: opAbort, ID: tr.id}); err != nil {
			return err
		}
	}
	return nil
}

// Kill simulates a process crash of the relay shard (see
// core.Engine.Kill). No-op when durability is off.
func (s *Scheduler) Kill() {
	if s.journal != nil {
		s.journal.Kill()
	}
}

// Snapshot writes the trip ledger beside a rotated journal segment and
// prunes what the snapshot covers.
func (s *Scheduler) Snapshot() error {
	if s.journal == nil {
		return nil
	}
	s.mu.Lock()
	seg, err := s.journal.Rotate()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	snap := relaySnap{
		NextID:    s.nextID.Load(),
		Quoted:    s.quoted.Load(),
		LegQuotes: s.legQuotes.Load(),
		Committed: s.committed.Load(),
		Aborted:   s.aborted.Load(),
		Declined:  s.declined.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
	}
	for _, tr := range s.trips {
		tr.mu.Lock()
		snap.Trips = append(snap.Trips, tr.snapLocked())
		tr.mu.Unlock()
	}
	s.mu.Unlock()
	payload, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("relay: snapshot encode: %w", err)
	}
	if err := wal.WriteSnapshot(s.walDir, seg, payload, s.inj); err != nil {
		return err
	}
	wal.PruneBefore(s.walDir, seg)
	return nil
}

// Close snapshots the trip ledger and closes the journal (no-op when
// durability is off). A killed journal skips the snapshot — the disk
// keeps the crash state.
func (s *Scheduler) Close() error {
	if s.journal == nil {
		return nil
	}
	var serr error
	if !s.journal.Dead() {
		serr = s.Snapshot()
	}
	if cerr := s.journal.Close(); cerr != nil && serr == nil {
		serr = cerr
	}
	return serr
}
