package relay

// gateway.go precomputes the hand-off gateway table: for every city
// pair, the vertex pairs that face each other across the shared region
// boundary. Cities' service regions are disjoint rectangles separated
// by un-networked gap (the "sea"), so the hand-off is modelled as a
// fixed crossing at the gateway pair; its Euclidean gap is recorded
// for views but does not enter the composed fares (each leg prices its
// own network distance) — the transfer buffer covers the crossing
// time.

import (
	"sort"

	"ptrider/internal/geo"
	"ptrider/internal/roadnet"
)

// Gateway is one hand-off vertex pair: From in the origin city's
// graph, To in the destination city's. Gateways are selected once per
// city pair at construction (see buildGateways) and reused by every
// relay trip between those cities.
type Gateway struct {
	From, To roadnet.VertexID
	// GapMeters is the Euclidean hand-off gap between the two gateway
	// vertices — the crossing the transfer buffer has to cover.
	GapMeters float64
}

// boundaryCandidates returns the n vertices of g closest (Euclidean)
// to the other city's region — the vertices that can face a gateway.
func boundaryCandidates(g *roadnet.Graph, other geo.Rect, n int) []roadnet.VertexID {
	type cand struct {
		v roadnet.VertexID
		d float64
	}
	cands := make([]cand, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		cands[v] = cand{roadnet.VertexID(v), other.DistToPoint(g.Point(roadnet.VertexID(v)))}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]roadnet.VertexID, n)
	for i := range out {
		out[i] = cands[i].v
	}
	return out
}

// buildGateways selects up to cfg.MaxGateways hand-off pairs between
// two cities: each city contributes its cfg.BoundaryCandidates
// boundary-nearest vertices, every cross pair is ranked by Euclidean
// gap, and pairs are picked greedily with distinct endpoints — reusing
// a vertex would offer the rider the same hand-off twice. Gateways are
// oriented a→b (From in a, To in b); callers flip for the reverse
// direction.
func buildGateways(a, b CityRef, cfg Config) []Gateway {
	ga, gb := a.Engine.Graph(), b.Engine.Graph()
	if ga.NumVertices() == 0 || gb.NumVertices() == 0 {
		return nil
	}
	candA := boundaryCandidates(ga, b.Region, cfg.BoundaryCandidates)
	candB := boundaryCandidates(gb, a.Region, cfg.BoundaryCandidates)

	pairs := make([]Gateway, 0, len(candA)*len(candB))
	for _, va := range candA {
		pa := ga.Point(va)
		for _, vb := range candB {
			pairs = append(pairs, Gateway{From: va, To: vb, GapMeters: pa.Dist(gb.Point(vb))})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].GapMeters < pairs[j].GapMeters })

	usedA := make(map[roadnet.VertexID]bool, cfg.MaxGateways)
	usedB := make(map[roadnet.VertexID]bool, cfg.MaxGateways)
	out := make([]Gateway, 0, cfg.MaxGateways)
	for _, p := range pairs {
		if len(out) == cfg.MaxGateways {
			break
		}
		if usedA[p.From] || usedB[p.To] {
			continue
		}
		usedA[p.From] = true
		usedB[p.To] = true
		out = append(out, p)
	}
	return out
}
