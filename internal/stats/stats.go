// Package stats provides the online statistics behind PTRider's website
// interface (paper §4.2): running means and variances, P²-estimated
// quantiles without sample retention, and fixed-bin histograms, all
// O(1) per observation so the statistics panel never perturbs the
// matching measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean, variance, min and max with Welford's
// algorithm. The zero value is ready for use.
type Online struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Observe adds x.
func (o *Online) Observe(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Count returns the number of observations.
func (o *Online) Count() int64 { return o.n }

// Mean returns the running mean (zero when empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (zero with < 2 samples).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (+Inf when empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.Inf(1)
	}
	return o.min
}

// Max returns the largest observation (-Inf when empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.Inf(-1)
	}
	return o.max
}

// String summarises the accumulator.
func (o *Online) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f", o.n, o.Mean(), o.Std(), o.Min(), o.Max())
}

// P2Quantile estimates a single quantile online with the P² algorithm
// (Jain & Chlamtac 1985): five markers, O(1) memory and time per
// observation. Construct with NewP2Quantile.
type P2Quantile struct {
	p       float64
	n       int64
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	dwant   [5]float64
	init    []float64
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	q := &P2Quantile{p: p, init: make([]float64, 0, 5)}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Observe adds x.
func (q *P2Quantile) Observe(x float64) {
	q.n++
	if len(q.init) < 5 {
		q.init = append(q.init, x)
		if len(q.init) == 5 {
			sort.Float64s(q.init)
			copy(q.heights[:], q.init)
			q.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}

	// Locate the cell containing x and update extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.dwant[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := q.parabolic(i, s)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, s)
			}
			q.pos[i] += s
		}
	}
}

func (q *P2Quantile) parabolic(i int, s float64) float64 {
	return q.heights[i] + s/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+s)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-s)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return q.heights[i] + s*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it returns the exact sample quantile.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if len(q.init) < 5 {
		tmp := append([]float64(nil), q.init...)
		sort.Float64s(tmp)
		idx := int(q.p * float64(len(tmp)-1))
		return tmp[idx]
	}
	return q.heights[2]
}

// Count returns the number of observations.
func (q *P2Quantile) Count() int64 { return q.n }

// Histogram counts observations into fixed-width bins over [Min, Max),
// with underflow and overflow buckets.
type Histogram struct {
	Min, Max float64
	bins     []int64
	under    int64
	over     int64
	n        int64
}

// NewHistogram returns a histogram with n bins over [min, max).
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n < 1 || !(max > min) {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v) with %d bins", min, max, n)
	}
	return &Histogram{Min: min, Max: max, bins: make([]int64, n)}, nil
}

// Observe adds x.
func (h *Histogram) Observe(x float64) {
	h.n++
	switch {
	case x < h.Min:
		h.under++
	case x >= h.Max:
		h.over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.bins)))
		if i >= len(h.bins) { // guard boundary rounding
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of interior bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Under and Over return the out-of-range counts.
func (h *Histogram) Under() int64 { return h.under }

// Over returns the count of observations at or above Max.
func (h *Histogram) Over() int64 { return h.over }

// Count returns the total observations including out-of-range ones.
func (h *Histogram) Count() int64 { return h.n }

// BinBounds returns the [lo, hi) range of bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	w := (h.Max - h.Min) / float64(len(h.bins))
	return h.Min + float64(i)*w, h.Min + float64(i+1)*w
}
