package stats_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ptrider/internal/stats"
)

func TestOnlineBasics(t *testing.T) {
	var o stats.Online
	if o.Count() != 0 || o.Mean() != 0 {
		t.Fatal("zero value not empty")
	}
	if !math.IsInf(o.Min(), 1) || !math.IsInf(o.Max(), -1) {
		t.Fatal("empty min/max should be ±Inf")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Observe(x)
	}
	if o.Count() != 8 {
		t.Fatalf("Count = %d", o.Count())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", o.Mean())
	}
	// Sample (unbiased) variance of that classic set is 32/7.
	if math.Abs(o.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v", o.Var())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var o stats.Online
	xs := make([]float64, 1000)
	sum := 0.0
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 3
		sum += xs[i]
		o.Observe(xs[i])
	}
	mean := sum / float64(len(xs))
	if math.Abs(o.Mean()-mean) > 1e-9 {
		t.Fatalf("Mean drifted: %v vs %v", o.Mean(), mean)
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	if math.Abs(o.Var()-ss/float64(len(xs)-1)) > 1e-6 {
		t.Fatalf("Var drifted: %v vs %v", o.Var(), ss/float64(len(xs)-1))
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	q := stats.NewP2Quantile(0.5)
	if !math.IsNaN(q.Value()) {
		t.Fatal("empty estimator should be NaN")
	}
	q.Observe(3)
	q.Observe(1)
	q.Observe(2)
	// With < 5 samples the exact sample quantile is returned.
	if v := q.Value(); v != 2 {
		t.Fatalf("median of {1,2,3} = %v", v)
	}
}

func TestP2QuantileConvergesOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range []float64{0.5, 0.9, 0.95} {
		q := stats.NewP2Quantile(p)
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			q.Observe(xs[i])
		}
		sort.Float64s(xs)
		exact := xs[int(p*float64(len(xs)))]
		if math.Abs(q.Value()-exact) > 3 { // 3% of the range
			t.Errorf("p=%v: estimate %v, exact %v", p, q.Value(), exact)
		}
		if q.Count() != 20000 {
			t.Errorf("Count = %d", q.Count())
		}
	}
}

func TestP2QuantileConvergesOnNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := stats.NewP2Quantile(0.95)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		q.Observe(xs[i])
	}
	sort.Float64s(xs)
	exact := xs[int(0.95*float64(len(xs)))]
	if math.Abs(q.Value()-exact) > 0.1 {
		t.Fatalf("P95 estimate %v, exact %v", q.Value(), exact)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := stats.NewHistogram(0, 0, 4); err == nil {
		t.Error("degenerate range accepted")
	}
	if _, err := stats.NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	h, err := stats.NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Observe(x)
	}
	if h.Under() != 1 || h.Over() != 2 {
		t.Fatalf("Under/Over = %d/%d", h.Under(), h.Over())
	}
	if h.Bin(0) != 2 { // 0 and 1.9
		t.Fatalf("Bin(0) = %d", h.Bin(0))
	}
	if h.Bin(1) != 1 { // 2
		t.Fatalf("Bin(1) = %d", h.Bin(1))
	}
	if h.Bin(4) != 1 { // 9.99
		t.Fatalf("Bin(4) = %d", h.Bin(4))
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d", h.Count())
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BinBounds(1) = (%v,%v)", lo, hi)
	}
	if h.NumBins() != 5 {
		t.Fatalf("NumBins = %d", h.NumBins())
	}
}
