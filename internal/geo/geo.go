// Package geo provides the planar-geometry primitives used by the road
// network and its grid index: points in a metric plane, axis-aligned
// rectangles, and Euclidean distances.
//
// PTRider embeds the road network in the plane (coordinates in metres)
// so that the Euclidean distance between two vertices is a valid lower
// bound of their network distance whenever every edge weight is at least
// the Euclidean length of the edge. The workload generator guarantees
// that property, and the grid index exploits it.
package geo

import "math"

// Point is a location in the plane. Units are metres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. It is
// cheaper than Dist and sufficient for comparisons.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the translation of p by −q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k about the origin.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Lerp returns the point a fraction t of the way from p to q.
// t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle. Min is the lower-left corner and
// Max the upper-right corner; a Rect is well-formed when Min.X ≤ Max.X
// and Min.Y ≤ Max.Y. The zero Rect is the empty rectangle at the origin.
type Rect struct {
	Min, Max Point
}

// NewRect returns the smallest well-formed Rect containing both p and q.
func NewRect(p, q Point) Rect {
	return Rect{
		Min: Point{math.Min(p.X, q.X), math.Min(p.Y, q.Y)},
		Max: Point{math.Max(p.X, q.X), math.Max(p.Y, q.Y)},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies in r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point
// (boundary inclusive).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Expand returns r grown by m on every side. A negative m shrinks r; the
// result may be ill-formed if m is more negative than half the extent.
func (r Rect) Expand(m float64) Rect {
	return Rect{
		Min: Point{r.Min.X - m, r.Min.Y - m},
		Max: Point{r.Max.X + m, r.Max.Y + m},
	}
}

// Union returns the smallest Rect containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// DistToPoint returns the Euclidean distance from p to the closest point
// of r; zero when r contains p.
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// DistToRect returns the minimal Euclidean distance between any point of
// r and any point of s; zero when they intersect.
func (r Rect) DistToRect(s Rect) float64 {
	dx := math.Max(0, math.Max(s.Min.X-r.Max.X, r.Min.X-s.Max.X))
	dy := math.Max(0, math.Max(s.Min.Y-r.Max.Y, r.Min.Y-s.Max.Y))
	return math.Hypot(dx, dy)
}

// BoundingRect returns the smallest Rect containing all pts. It returns
// the zero Rect when pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}
