package geo_test

import (
	"math"
	"testing"
	"testing/quick"

	"ptrider/internal/geo"
)

func TestPointDist(t *testing.T) {
	p := geo.Point{X: 0, Y: 0}
	q := geo.Point{X: 3, Y: 4}
	if d := p.Dist(q); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := p.DistSq(q); d != 25 {
		t.Errorf("DistSq = %v, want 25", d)
	}
	if d := p.Dist(p); d != 0 {
		t.Errorf("Dist to self = %v, want 0", d)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := geo.Point{X: 1, Y: 2}
	q := geo.Point{X: 3, Y: -1}
	if got := p.Add(q); got != (geo.Point{X: 4, Y: 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (geo.Point{X: -2, Y: 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (geo.Point{X: 2, Y: 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != (geo.Point{X: 2, Y: 0.5}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := geo.Point{X: clamp(ax), Y: clamp(ay)}
		b := geo.Point{X: clamp(bx), Y: clamp(by)}
		c := geo.Point{X: clamp(cx), Y: clamp(cy)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestRectBasics(t *testing.T) {
	r := geo.NewRect(geo.Point{X: 4, Y: 1}, geo.Point{X: 0, Y: 3})
	if r.Min != (geo.Point{X: 0, Y: 1}) || r.Max != (geo.Point{X: 4, Y: 3}) {
		t.Fatalf("NewRect normalised to %+v", r)
	}
	if r.Width() != 4 || r.Height() != 2 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if r.Center() != (geo.Point{X: 2, Y: 2}) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(geo.Point{X: 0, Y: 1}) || !r.Contains(geo.Point{X: 2, Y: 2}) {
		t.Error("Contains should include boundary and interior")
	}
	if r.Contains(geo.Point{X: 5, Y: 2}) {
		t.Error("Contains included exterior point")
	}
}

func TestRectIntersectsAndUnion(t *testing.T) {
	a := geo.NewRect(geo.Point{}, geo.Point{X: 2, Y: 2})
	b := geo.NewRect(geo.Point{X: 1, Y: 1}, geo.Point{X: 3, Y: 3})
	c := geo.NewRect(geo.Point{X: 5, Y: 5}, geo.Point{X: 6, Y: 6})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects should intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
	// Touching edges count as intersecting.
	d := geo.NewRect(geo.Point{X: 2, Y: 0}, geo.Point{X: 4, Y: 2})
	if !a.Intersects(d) {
		t.Error("edge-touching rects should intersect")
	}
	u := a.Union(c)
	if u.Min != (geo.Point{}) || u.Max != (geo.Point{X: 6, Y: 6}) {
		t.Errorf("Union = %+v", u)
	}
}

func TestRectDistances(t *testing.T) {
	r := geo.NewRect(geo.Point{}, geo.Point{X: 2, Y: 2})
	if d := r.DistToPoint(geo.Point{X: 1, Y: 1}); d != 0 {
		t.Errorf("DistToPoint inside = %v", d)
	}
	if d := r.DistToPoint(geo.Point{X: 5, Y: 6}); d != 5 {
		t.Errorf("DistToPoint corner = %v, want 5", d)
	}
	if d := r.DistToPoint(geo.Point{X: 1, Y: -3}); d != 3 {
		t.Errorf("DistToPoint edge = %v, want 3", d)
	}
	s := geo.NewRect(geo.Point{X: 5, Y: 6}, geo.Point{X: 7, Y: 8})
	if d := r.DistToRect(s); d != 5 {
		t.Errorf("DistToRect = %v, want 5", d)
	}
	if d := r.DistToRect(r); d != 0 {
		t.Errorf("DistToRect self = %v, want 0", d)
	}
}

func TestRectExpand(t *testing.T) {
	r := geo.NewRect(geo.Point{}, geo.Point{X: 2, Y: 2}).Expand(1)
	if r.Min != (geo.Point{X: -1, Y: -1}) || r.Max != (geo.Point{X: 3, Y: 3}) {
		t.Errorf("Expand = %+v", r)
	}
}

func TestBoundingRect(t *testing.T) {
	if r := geo.BoundingRect(nil); r != (geo.Rect{}) {
		t.Errorf("BoundingRect(nil) = %+v, want zero", r)
	}
	pts := []geo.Point{{X: 1, Y: 5}, {X: -2, Y: 3}, {X: 4, Y: -1}}
	r := geo.BoundingRect(pts)
	if r.Min != (geo.Point{X: -2, Y: -1}) || r.Max != (geo.Point{X: 4, Y: 5}) {
		t.Errorf("BoundingRect = %+v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("BoundingRect does not contain %v", p)
		}
	}
}

func TestDistToPointIsLowerBoundOfContainedPoints(t *testing.T) {
	f := func(px, py, qx, qy float64) bool {
		p := geo.Point{X: clamp(px), Y: clamp(py)}
		q := geo.Point{X: clamp(qx), Y: clamp(qy)}
		r := geo.NewRect(geo.Point{X: -100, Y: -100}, geo.Point{X: 100, Y: 100})
		if !r.Contains(q) {
			return true
		}
		return r.DistToPoint(p) <= p.Dist(q)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
