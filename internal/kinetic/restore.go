package kinetic

import (
	"fmt"

	"ptrider/internal/roadnet"
)

// This file is the durability surface of the kinetic tree: exporting a
// tree's commitment state for snapshots and rebuilding an identical
// tree on recovery. The trie itself is never serialised — it is a pure
// function of (root, odometer, pending requests) and is re-enumerated
// lazily after restore.

// ReqSnapshot is the serialisable state of one pending request inside a
// tree: the public Request plus the commitment fields that Commit and
// Pickup anchor to the odometer.
type ReqSnapshot struct {
	Req              Request `json:"req"`
	PickupDeadline   float64 `json:"pickup_deadline"`
	DropoffDeadline  float64 `json:"dropoff_deadline"`
	PlannedPickupOdo float64 `json:"planned_pickup_odo"`
	Onboard          bool    `json:"onboard"`
}

// SnapshotReqs exports the pending requests in commit order — the
// order Restore needs to rebuild the identical point sequence.
func (t *Tree) SnapshotReqs() []ReqSnapshot {
	out := make([]ReqSnapshot, len(t.reqs))
	for i, r := range t.reqs {
		out[i] = ReqSnapshot{
			Req:              r.Request,
			PickupDeadline:   r.pickupDeadline,
			DropoffDeadline:  r.dropoffDeadline,
			PlannedPickupOdo: r.plannedPickupOdo,
			Onboard:          r.onboard,
		}
	}
	return out
}

// Restore rebuilds a tree from a snapshot. The pending-point sequence
// is reconstructed exactly as the live tree held it: Commit appends
// [pickup, dropoff] per request in commit order and Pickup removes only
// the pickup point, so per request (in snapshot order) the points are
// the pickup (unless onboard) followed by the dropoff. Restoring in
// that order preserves enumeration order, which keeps recovered trees
// golden-equivalent to uncrashed ones.
func Restore(m Metric, capacity, maxPoints int, loc roadnet.VertexID, odo float64, reqs []ReqSnapshot) *Tree {
	t := New(m, capacity, maxPoints, loc, odo)
	for _, s := range reqs {
		st := &reqState{
			Request:          s.Req,
			pickupDeadline:   s.PickupDeadline,
			dropoffDeadline:  s.DropoffDeadline,
			plannedPickupOdo: s.PlannedPickupOdo,
			onboard:          s.Onboard,
		}
		t.reqs = append(t.reqs, st)
		ri := len(t.reqs) - 1
		if !s.Onboard {
			t.pts = append(t.pts, Point{Loc: s.Req.S, Kind: Pickup, Req: s.Req.ID})
			t.reqIdx = append(t.reqIdx, ri)
		}
		t.pts = append(t.pts, Point{Loc: s.Req.D, Kind: Dropoff, Req: s.Req.ID})
		t.reqIdx = append(t.reqIdx, ri)
	}
	t.dirty = len(t.pts) > 0
	return t
}

// RestoreCommit re-applies a journaled commit during replay: like
// Commit, but the waiting-time anchor comes from the journal (the
// planned pickup odometer recorded when the commit really happened)
// instead of being re-derived from a candidate, so replayed deadlines
// are bit-identical to the originals regardless of quote determinism.
// No stale-candidate rollback: the journal only holds commits that
// succeeded.
func (t *Tree) RestoreCommit(req Request, plannedPickupOdo float64) error {
	for _, r := range t.reqs {
		if r.ID == req.ID {
			return fmt.Errorf("kinetic: request %d already assigned", req.ID)
		}
	}
	if len(t.pts)+2 > t.maxPoints {
		return fmt.Errorf("kinetic: vehicle is at its pending-point cap")
	}
	st := &reqState{
		Request:          req,
		pickupDeadline:   plannedPickupOdo + req.WaitBudget,
		plannedPickupOdo: plannedPickupOdo,
	}
	t.reqs = append(t.reqs, st)
	ri := len(t.reqs) - 1
	t.pts = append(t.pts,
		Point{Loc: req.S, Kind: Pickup, Req: req.ID},
		Point{Loc: req.D, Kind: Dropoff, Req: req.ID},
	)
	t.reqIdx = append(t.reqIdx, ri, ri)
	t.dirty = true
	return nil
}
