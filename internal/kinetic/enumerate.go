package kinetic

import (
	"fmt"
	"math"

	"ptrider/internal/roadnet"
	"ptrider/internal/skyline"
)

// budgetEps absorbs floating-point drift when comparing travelled
// distances against budgets; distances are metres, so 1e-6 is far below
// any physical significance.
const budgetEps = 1e-6

// dfsScratch holds the per-enumeration workspace, reused across
// rebuilds to keep the hot path allocation-light.
type dfsScratch struct {
	locs     []roadnet.VertexID // 0 is the root location, then one per point
	exact    []float64          // (k+1)×(k+1) lazy distance matrix; NaN = unknown
	n        int                // k+1
	pickDist []float64          // per request: dist_tr at its in-sequence pickup
	picked   []bool             // per request: pickup placed in current prefix
}

func (sc *dfsScratch) init(root roadnet.VertexID, pts []Point, nReqs int) {
	k := len(pts)
	sc.n = k + 1
	sc.locs = append(sc.locs[:0], root)
	for _, p := range pts {
		sc.locs = append(sc.locs, p.Loc)
	}
	need := sc.n * sc.n
	if cap(sc.exact) < need {
		sc.exact = make([]float64, need)
	}
	sc.exact = sc.exact[:need]
	for i := range sc.exact {
		sc.exact[i] = math.NaN()
	}
	if cap(sc.pickDist) < nReqs {
		sc.pickDist = make([]float64, nReqs)
		sc.picked = make([]bool, nReqs)
	}
	sc.pickDist = sc.pickDist[:nReqs]
	sc.picked = sc.picked[:nReqs]
	for i := range sc.picked {
		sc.picked[i] = false
	}
}

func (t *Tree) exactDist(sc *dfsScratch, i, j int) float64 {
	d := sc.exact[i*sc.n+j]
	if !math.IsNaN(d) {
		return d
	}
	d = t.metric.Dist(sc.locs[i], sc.locs[j])
	sc.exact[i*sc.n+j] = d
	return d
}

func (t *Tree) lbDist(sc *dfsScratch, i, j int) float64 {
	// A previously computed exact value is its own best lower bound.
	if d := sc.exact[i*sc.n+j]; !math.IsNaN(d) {
		return d
	}
	return t.metric.LB(sc.locs[i], sc.locs[j])
}

// stepBudget returns the remaining distance budget for placing point pi
// (index into pts) when the vehicle has already driven curDist along the
// candidate schedule. +Inf means unconstrained. reqs and picked/pickDist
// come from the enumeration state.
func (t *Tree) stepBudget(sc *dfsScratch, pts []Point, reqIdx []int, reqs []*reqState, pi int) (budget float64, ok bool) {
	p := pts[pi]
	r := reqs[reqIdx[pi]]
	if p.Kind == Pickup {
		return r.pickupDeadline - t.odo, true
	}
	if r.onboard {
		return r.dropoffDeadline - t.odo, true
	}
	if !sc.picked[reqIdx[pi]] {
		return 0, false // dropoff cannot precede its pickup
	}
	return sc.pickDist[reqIdx[pi]] + r.ServiceLimit, true
}

// rebuild re-enumerates every valid ordering of the pending points from
// the current root, materialising the trie and refreshing bestDist and
// the branch count.
func (t *Tree) rebuild() {
	t.dirty = false
	t.odoAtBuild = t.odo
	sc := &t.scratch
	sc.init(t.rootLoc, t.pts, len(t.reqs))

	t.root = &Node{
		Point:     Point{Loc: t.rootLoc},
		Occupancy: t.startOccupancy(),
	}
	t.maxLeg = 0
	if len(t.pts) == 0 {
		t.bestDist = 0
		t.branches = 1
		return
	}
	full := (1 << len(t.pts)) - 1
	best, count := t.buildChildren(sc, t.root, 0, 0, 0.0, t.root.Occupancy, full)
	t.root.subtreeBest = best
	if count == 0 {
		t.bestDist = math.Inf(1)
		t.branches = 0
		t.root.Children = nil
		return
	}
	t.bestDist = best
	t.branches = count
}

func (t *Tree) startOccupancy() int {
	occ := 0
	for _, r := range t.reqs {
		if r.onboard {
			occ += r.Riders
		}
	}
	return occ
}

// buildChildren extends the trie node at location index cur (0 = root)
// with every feasible next point from the unused set, recursing until
// complete schedules are formed. It returns the best total distance in
// the subtree and the number of complete branches. Subtrees with no
// completion are discarded.
func (t *Tree) buildChildren(sc *dfsScratch, parent *Node, used int, cur int, curDist float64, occ int, full int) (best float64, count int) {
	best = math.Inf(1)
	for pi := range t.pts {
		bit := 1 << pi
		if used&bit != 0 {
			continue
		}
		p := t.pts[pi]
		ri := t.reqIdx[pi]
		r := t.reqs[ri]
		budget, ok := t.stepBudget(sc, t.pts, t.reqIdx, t.reqs, pi)
		if !ok {
			continue
		}
		if p.Kind == Pickup && occ+r.Riders > t.capacity {
			continue
		}
		// Lower-bound prune before the exact distance (paper §3.3).
		if curDist+t.lbDist(sc, cur, pi+1) > budget+budgetEps {
			continue
		}
		nd := curDist + t.exactDist(sc, cur, pi+1)
		if nd > budget+budgetEps {
			continue
		}

		child := &Node{Point: p, DistTr: nd, Occupancy: occ}
		var undoPick bool
		if p.Kind == Pickup {
			child.Occupancy += r.Riders
			sc.picked[ri] = true
			sc.pickDist[ri] = nd
			undoPick = true
		} else {
			child.Occupancy -= r.Riders
		}

		nused := used | bit
		if nused == full {
			parent.Children = append(parent.Children, child)
			child.subtreeBest = nd
			if nd < best {
				best = nd
			}
			if leg := nd - curDist; leg > t.maxLeg {
				t.maxLeg = leg
			}
			count++
		} else {
			subBest, subCount := t.buildChildren(sc, child, nused, pi+1, nd, child.Occupancy, full)
			if subCount > 0 {
				child.subtreeBest = subBest
				parent.Children = append(parent.Children, child)
				count += subCount
				if subBest < best {
					best = subBest
				}
				if leg := nd - curDist; leg > t.maxLeg {
					t.maxLeg = leg
				}
			}
		}
		if undoPick {
			sc.picked[ri] = false
		}
	}
	return best, count
}

// quoteScratch is the tree-owned workspace of QuoteAppend, reused
// across quotes. Quotes run under the vehicle's lock, so one workspace
// per tree suffices; only the candidate schedules that survive the
// per-vehicle skyline escape to the heap.
type quoteScratch struct {
	sc     dfsScratch
	reqs   []*reqState
	pts    []Point
	reqIdx []int
	newReq reqState

	// sky holds candidate schedules as permutation words — 4-bit point
	// indices packed little-endian by schedule position — so inserting
	// (and evicting) a candidate never allocates; the []Point sequences
	// are materialised only for the survivors.
	sky skyline.Skyline[uint64]

	// Per-walk constants, hoisted into the scratch so the recursive
	// enumeration is a method rather than an allocating closure.
	pickupPos int
	full      int
	baseline  float64
}

// QuoteSeed carries exact distances precomputed by a caller's
// multi-target pass, fanned directly into the enumeration's distance
// matrix: Locs must be exactly the sequence AppendPointLocs returned
// for the tree state being quoted (the root location followed by the
// pending points' locations, in order), SDist[i] = dist(Locs[i],
// req.S) and DDist[i] = dist(Locs[i], req.D). A seed whose Locs no
// longer match the tree (the vehicle moved or committed between the
// snapshot and the quote) is ignored and the quote falls back to lazy
// computation, so a stale seed can never misattribute a distance.
type QuoteSeed struct {
	Locs         []roadnet.VertexID
	SDist, DDist []float64
}

// matches reports whether the seed still describes the tree's point
// set.
func (s *QuoteSeed) matches(t *Tree) bool {
	if len(s.Locs) != len(t.pts)+1 || len(s.SDist) != len(s.Locs) || len(s.DDist) != len(s.Locs) {
		return false
	}
	if s.Locs[0] != t.rootLoc {
		return false
	}
	for i, p := range t.pts {
		if s.Locs[i+1] != p.Loc {
			return false
		}
	}
	return true
}

// AppendPointLocs appends the tree's root location followed by each
// pending point's location, in point order — the alignment contract of
// QuoteSeed.
func (t *Tree) AppendPointLocs(dst []roadnet.VertexID) []roadnet.VertexID {
	dst = append(dst, t.rootLoc)
	for _, p := range t.pts {
		dst = append(dst, p.Loc)
	}
	return dst
}

// Quote enumerates every valid schedule that additionally serves req and
// returns the vehicle's non-dominated candidates over (pick-up distance,
// detour delta). It returns nil when the vehicle cannot serve the
// request at all (capacity, budgets, or the pending-point cap). The
// tree itself is not modified.
func (t *Tree) Quote(req Request) []Candidate {
	return t.QuoteAppend(req, nil)
}

// QuoteAppend is Quote appending into dst, the allocation-lean probe of
// the matching hot path: the enumeration runs entirely in the tree's
// reused workspace, and only the returned candidates' schedules are
// freshly allocated (they outlive the call by design — skylines and
// request records retain them). dst is returned unchanged when the
// vehicle cannot serve the request.
func (t *Tree) QuoteAppend(req Request, dst []Candidate) []Candidate {
	return t.QuoteAppendSeeded(req, dst, nil)
}

// PackedCandidate is a feasible schedule whose stop sequence is still
// permutation-encoded (4-bit point indices over the quoted point set):
// the allocation-free probe result. Callers that filter candidates —
// the matchers' skylines reject most — materialise []Point schedules
// only for the survivors via UnpackSeq.
type PackedCandidate struct {
	Perm       uint64
	PickupDist float64
	TotalDist  float64
	Delta      float64
}

// UnpackSeq materialises the stop sequence of a packed candidate over
// the point set returned by QuotePacked. The result is freshly
// allocated and safe to retain.
func UnpackSeq(perm uint64, pts []Point) []Point {
	seq := make([]Point, len(pts))
	for j := range seq {
		seq[j] = pts[(perm>>(4*uint(j)))&0xF]
	}
	return seq
}

// QuoteAppendSeeded is QuoteAppend with the request-specific rows of
// the enumeration's distance matrix pre-filled from seed (when it still
// matches the tree state): every dist(x, s) and dist(x, d) the
// enumeration would compute lazily — one point search each through the
// metric — is answered from the caller's shared multi-target pass
// instead. The batched matchers use this to replace per-pair point
// queries with two passes per probe batch.
func (t *Tree) QuoteAppendSeeded(req Request, dst []Candidate, seed *QuoteSeed) []Candidate {
	entries := t.quotePacked(req, seed)
	for _, e := range entries {
		dst = append(dst, Candidate{
			Seq:        UnpackSeq(e.Payload, t.quote.pts),
			PickupDist: e.Time,
			TotalDist:  e.Price + t.quote.baseline,
			Delta:      e.Price,
		})
	}
	return dst
}

// QuotePacked is the allocation-free probe: candidates come back
// permutation-encoded (appended to dst) together with the quoted point
// set (appended to ptsBuf, which the permutations index). Both buffers
// are caller-owned; nothing else escapes. The point set is only valid
// for this quote — materialise surviving schedules with UnpackSeq
// before the next probe reuses the buffers.
func (t *Tree) QuotePacked(req Request, dst []PackedCandidate, ptsBuf []Point, seed *QuoteSeed) ([]PackedCandidate, []Point) {
	entries := t.quotePacked(req, seed)
	if len(entries) == 0 {
		return dst, ptsBuf
	}
	for _, e := range entries {
		dst = append(dst, PackedCandidate{
			Perm:       e.Payload,
			PickupDist: e.Time,
			TotalDist:  e.Price + t.quote.baseline,
			Delta:      e.Price,
		})
	}
	return dst, append(ptsBuf, t.quote.pts...)
}

// quotePacked runs the seeded enumeration and returns the non-dominated
// candidates as sorted skyline entries over (pick-up distance, detour
// delta), permutation-encoded. The entries alias the tree's quote
// workspace and are valid until the next quote on this tree (callers
// hold the vehicle lock for the duration).
func (t *Tree) quotePacked(req Request, seed *QuoteSeed) []skyline.Entry[uint64] {
	if req.Riders > t.capacity || len(t.pts)+2 > t.maxPoints {
		return nil
	}
	t.ensureFresh()
	if len(t.pts) > 0 && t.branches == 0 {
		// No valid schedule even without the new request; the vehicle
		// is in violation (should not happen) — refuse new work.
		return nil
	}
	baseline := t.bestDist
	if math.IsInf(baseline, 1) {
		return nil
	}

	// Temporary point and request sets including the quoted request.
	qs := &t.quote
	qs.newReq = reqState{Request: req, pickupDeadline: math.Inf(1)}
	qs.reqs = append(qs.reqs[:0], t.reqs...)
	qs.reqs = append(qs.reqs, &qs.newReq)
	newReqIdx := len(qs.reqs) - 1
	qs.pts = append(qs.pts[:0], t.pts...)
	qs.pts = append(qs.pts,
		Point{Loc: req.S, Kind: Pickup, Req: req.ID},
		Point{Loc: req.D, Kind: Dropoff, Req: req.ID},
	)
	qs.reqIdx = append(qs.reqIdx[:0], t.reqIdx...)
	qs.reqIdx = append(qs.reqIdx, newReqIdx, newReqIdx)
	qs.pickupPos = len(qs.pts) - 2
	qs.full = (1 << len(qs.pts)) - 1
	qs.baseline = baseline

	qs.sc.init(t.rootLoc, qs.pts, len(qs.reqs))
	if seed != nil && seed.matches(t) {
		m := len(t.pts)
		n := qs.sc.n
		sIdx, dIdx := m+1, m+2
		for i := 0; i <= m; i++ {
			qs.sc.exact[i*n+sIdx] = seed.SDist[i]
			qs.sc.exact[sIdx*n+i] = seed.SDist[i]
			qs.sc.exact[i*n+dIdx] = seed.DDist[i]
			qs.sc.exact[dIdx*n+i] = seed.DDist[i]
		}
		qs.sc.exact[sIdx*n+dIdx] = req.SD
		qs.sc.exact[dIdx*n+sIdx] = req.SD
	}
	qs.sky.Reset()
	t.quoteWalk(qs, 0, 0, 0, t.startOccupancy(), math.NaN(), 0, 0)
	return qs.sky.Sorted()
}

// quoteWalk extends the current partial schedule with every feasible
// unused point, recursing to complete schedules and folding them into
// the per-vehicle skyline. The partial schedule is carried as a
// permutation word (perm, with depth points placed), so the recursion
// allocates nothing.
func (t *Tree) quoteWalk(qs *quoteScratch, used, cur int, curDist float64, occ int, newPickDist float64, perm uint64, depth uint) {
	for pi := range qs.pts {
		bit := 1 << pi
		if used&bit != 0 {
			continue
		}
		p := qs.pts[pi]
		ri := qs.reqIdx[pi]
		r := qs.reqs[ri]
		budget, ok := t.stepBudgetFor(&qs.sc, qs.pts, qs.reqIdx, qs.reqs, pi)
		if !ok {
			continue
		}
		if p.Kind == Pickup && occ+r.Riders > t.capacity {
			continue
		}
		if curDist+t.lbDist(&qs.sc, cur, pi+1) > budget+budgetEps {
			continue
		}
		nd := curDist + t.exactDist(&qs.sc, cur, pi+1)
		if nd > budget+budgetEps {
			continue
		}

		nocc := occ
		npd := newPickDist
		var undoPick bool
		if p.Kind == Pickup {
			nocc += r.Riders
			qs.sc.picked[ri] = true
			qs.sc.pickDist[ri] = nd
			undoPick = true
			if pi == qs.pickupPos {
				npd = nd
			}
		} else {
			nocc -= r.Riders
		}

		nperm := perm | uint64(pi)<<(4*depth)
		if used|bit == qs.full {
			if !qs.sky.IsDominated(npd, nd-qs.baseline) && !qs.sky.ContainsPoint(npd, nd-qs.baseline) {
				qs.sky.Add(npd, nd-qs.baseline, nperm)
			}
		} else {
			t.quoteWalk(qs, used|bit, pi+1, nd, nocc, npd, nperm, depth+1)
		}
		if undoPick {
			qs.sc.picked[ri] = false
		}
	}
}

// stepBudgetFor is stepBudget over caller-supplied point/request sets
// (used by Quote, whose sets include the uncommitted request).
func (t *Tree) stepBudgetFor(sc *dfsScratch, pts []Point, reqIdx []int, reqs []*reqState, pi int) (float64, bool) {
	p := pts[pi]
	r := reqs[reqIdx[pi]]
	if p.Kind == Pickup {
		return r.pickupDeadline - t.odo, true
	}
	if r.onboard {
		return r.dropoffDeadline - t.odo, true
	}
	if !sc.picked[reqIdx[pi]] {
		return 0, false
	}
	return sc.pickDist[reqIdx[pi]] + r.ServiceLimit, true
}

// Commit adds req to the vehicle with the planned schedule of cand (a
// candidate previously returned by Quote with no intervening root
// movement). The waiting-time constraint is anchored here: the pickup's
// odometer deadline becomes odo + cand.PickupDist + req.WaitBudget.
func (t *Tree) Commit(req Request, cand Candidate) error {
	for _, r := range t.reqs {
		if r.ID == req.ID {
			return fmt.Errorf("kinetic: request %d already assigned", req.ID)
		}
	}
	if len(t.pts)+2 > t.maxPoints {
		return fmt.Errorf("kinetic: vehicle is at its pending-point cap")
	}
	st := &reqState{
		Request:          req,
		pickupDeadline:   t.odo + cand.PickupDist + req.WaitBudget,
		plannedPickupOdo: t.odo + cand.PickupDist,
	}
	t.reqs = append(t.reqs, st)
	ri := len(t.reqs) - 1
	t.pts = append(t.pts,
		Point{Loc: req.S, Kind: Pickup, Req: req.ID},
		Point{Loc: req.D, Kind: Dropoff, Req: req.ID},
	)
	t.reqIdx = append(t.reqIdx, ri, ri)
	t.dirty = true
	t.ensureFresh()
	if t.branches == 0 {
		// Roll back: the candidate was stale (root moved since Quote).
		t.removeRequestAt(ri)
		t.dirty = true
		return fmt.Errorf("kinetic: committing request %d leaves no valid schedule (stale candidate)", req.ID)
	}
	return nil
}

// Pickup marks request id as picked up. The vehicle must be located at
// the request's start vertex. The in-vehicle service budget is anchored
// to the current odometer.
func (t *Tree) Pickup(id RequestID) error {
	ri := t.findReq(id)
	if ri < 0 {
		return fmt.Errorf("kinetic: pickup of unknown request %d", id)
	}
	r := t.reqs[ri]
	if r.onboard {
		return fmt.Errorf("kinetic: request %d already onboard", id)
	}
	if t.rootLoc != r.S {
		return fmt.Errorf("kinetic: pickup of request %d at vertex %d, vehicle is at %d", id, r.S, t.rootLoc)
	}
	if t.odo > r.pickupDeadline+budgetEps {
		return fmt.Errorf("kinetic: request %d picked up past its waiting deadline (odo %v > %v)", id, t.odo, r.pickupDeadline)
	}
	r.onboard = true
	r.dropoffDeadline = t.odo + r.ServiceLimit
	t.removePoint(func(p Point) bool { return p.Req == id && p.Kind == Pickup })
	t.dirty = true
	t.ensureFresh() // keep MaxLegUpper sound: rebuild on structural change
	return nil
}

// Dropoff completes request id. The vehicle must be located at the
// request's destination vertex.
func (t *Tree) Dropoff(id RequestID) error {
	ri := t.findReq(id)
	if ri < 0 {
		return fmt.Errorf("kinetic: dropoff of unknown request %d", id)
	}
	r := t.reqs[ri]
	if !r.onboard {
		return fmt.Errorf("kinetic: dropoff of request %d before pickup", id)
	}
	if t.rootLoc != r.D {
		return fmt.Errorf("kinetic: dropoff of request %d at vertex %d, vehicle is at %d", id, r.D, t.rootLoc)
	}
	if t.odo > r.dropoffDeadline+budgetEps {
		return fmt.Errorf("kinetic: request %d dropped off past its service deadline (odo %v > %v)", id, t.odo, r.dropoffDeadline)
	}
	t.removeRequestAt(ri)
	t.dirty = true
	t.ensureFresh()
	return nil
}

// Cancel removes request id from the vehicle regardless of state (rider
// cancellation / failure injection). Riders onboard are treated as
// dropped at the current location.
func (t *Tree) Cancel(id RequestID) error {
	ri := t.findReq(id)
	if ri < 0 {
		return fmt.Errorf("kinetic: cancel of unknown request %d", id)
	}
	t.removeRequestAt(ri)
	t.dirty = true
	t.ensureFresh()
	return nil
}

// PlannedPickupOdo returns the odometer reading at which request id was
// promised to be picked up, for waiting-time statistics.
func (t *Tree) PlannedPickupOdo(id RequestID) (float64, bool) {
	ri := t.findReq(id)
	if ri < 0 {
		return 0, false
	}
	return t.reqs[ri].plannedPickupOdo, true
}

func (t *Tree) findReq(id RequestID) int {
	for i, r := range t.reqs {
		if r.ID == id {
			return i
		}
	}
	return -1
}

func (t *Tree) removePoint(match func(Point) bool) {
	for i := 0; i < len(t.pts); i++ {
		if match(t.pts[i]) {
			t.pts = append(t.pts[:i], t.pts[i+1:]...)
			t.reqIdx = append(t.reqIdx[:i], t.reqIdx[i+1:]...)
			i--
		}
	}
}

// removeRequestAt removes request index ri, its points, and re-indexes
// reqIdx.
func (t *Tree) removeRequestAt(ri int) {
	id := t.reqs[ri].ID
	t.removePoint(func(p Point) bool { return p.Req == id })
	t.reqs = append(t.reqs[:ri], t.reqs[ri+1:]...)
	for i := range t.reqIdx {
		if t.reqIdx[i] > ri {
			t.reqIdx[i]--
		}
	}
}
