package kinetic_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/skyline"
	"ptrider/internal/testnet"
)

// oracleMetric backs the tree with Floyd–Warshall distances; LB returns
// lbFrac·dist, exercising the lower-bound pruning path without changing
// results.
type oracleMetric struct {
	o      *roadnet.Oracle
	lbFrac float64
}

func (m oracleMetric) Dist(u, v roadnet.VertexID) float64 { return m.o.Dist(u, v) }
func (m oracleMetric) LB(u, v roadnet.VertexID) float64   { return m.lbFrac * m.o.Dist(u, v) }

// ---------------------------------------------------------------------------
// Brute-force reference model: an independent re-implementation of
// Definition 2's validity conditions by naive permutation enumeration.

type bfReq struct {
	req             kinetic.Request
	pickupDeadline  float64 // absolute odometer
	dropoffDeadline float64 // absolute odometer; meaningful when onboard
	onboard         bool
}

type bfVehicle struct {
	cap  int
	loc  roadnet.VertexID
	odo  float64
	dist func(u, v roadnet.VertexID) float64
	reqs []*bfReq
}

const eps = 1e-6

// validSequences enumerates every permutation of the pending points and
// keeps the valid ones.
func (b *bfVehicle) validSequences(extra ...*bfReq) [][]kinetic.Point {
	all := append(append([]*bfReq(nil), b.reqs...), extra...)
	var pts []kinetic.Point
	reqOf := map[int]*bfReq{}
	for _, r := range all {
		if !r.onboard {
			reqOf[len(pts)] = r
			pts = append(pts, kinetic.Point{Loc: r.req.S, Kind: kinetic.Pickup, Req: r.req.ID})
		}
		reqOf[len(pts)] = r
		pts = append(pts, kinetic.Point{Loc: r.req.D, Kind: kinetic.Dropoff, Req: r.req.ID})
	}
	var out [][]kinetic.Point
	perm := make([]int, len(pts))
	for i := range perm {
		perm[i] = i
	}
	var permute func(k int)
	permute = func(k int) {
		if k == len(perm) {
			if seq := b.checkSeq(pts, reqOf, perm); seq != nil {
				out = append(out, seq)
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	return out
}

func (b *bfVehicle) checkSeq(pts []kinetic.Point, reqOf map[int]*bfReq, perm []int) []kinetic.Point {
	occ := 0
	for _, r := range b.reqs {
		if r.onboard {
			occ += r.req.Riders
		}
	}
	cur := b.loc
	dist := 0.0
	picked := map[kinetic.RequestID]float64{}
	var seq []kinetic.Point
	for _, pi := range perm {
		p := pts[pi]
		r := reqOf[pi]
		dist += b.dist(cur, p.Loc)
		cur = p.Loc
		if p.Kind == kinetic.Pickup {
			occ += r.req.Riders
			if occ > b.cap {
				return nil
			}
			if dist > r.pickupDeadline-b.odo+eps {
				return nil
			}
			picked[r.req.ID] = dist
		} else {
			if r.onboard {
				if dist > r.dropoffDeadline-b.odo+eps {
					return nil
				}
			} else {
				pd, ok := picked[r.req.ID]
				if !ok {
					return nil
				}
				if dist-pd > r.req.ServiceLimit+eps {
					return nil
				}
			}
			occ -= r.req.Riders
		}
		seq = append(seq, p)
	}
	return seq
}

func (b *bfVehicle) bestDist() float64 {
	best := math.Inf(1)
	for _, seq := range b.validSequences() {
		if d := b.seqDist(seq); d < best {
			best = d
		}
	}
	if len(b.reqs) == 0 {
		return 0
	}
	return best
}

func (b *bfVehicle) seqDist(seq []kinetic.Point) float64 {
	cur, d := b.loc, 0.0
	for _, p := range seq {
		d += b.dist(cur, p.Loc)
		cur = p.Loc
	}
	return d
}

// quote mirrors Tree.Quote: skyline over (pickup distance, delta).
func (b *bfVehicle) quote(req kinetic.Request) map[[2]float64]bool {
	base := b.bestDist()
	nr := &bfReq{req: req, pickupDeadline: math.Inf(1)}
	var sky skyline.Skyline[struct{}]
	for _, seq := range b.validSequences(nr) {
		cur, d := b.loc, 0.0
		pickup := math.NaN()
		for _, p := range seq {
			d += b.dist(cur, p.Loc)
			cur = p.Loc
			if p.Req == req.ID && p.Kind == kinetic.Pickup {
				pickup = d
			}
		}
		sky.Add(pickup, d-base, struct{}{})
	}
	out := map[[2]float64]bool{}
	for _, e := range sky.Entries() {
		out[[2]float64{e.Time, e.Price}] = true
	}
	return out
}

func seqKey(seq []kinetic.Point) string {
	s := ""
	for _, p := range seq {
		s += fmt.Sprintf("%d%s@%d;", p.Req, p.Kind, p.Loc)
	}
	return s
}

func sortedKeys(seqs [][]kinetic.Point) []string {
	out := make([]string, len(seqs))
	for i, s := range seqs {
		out[i] = seqKey(s)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------

func paperSetup(t *testing.T, lbFrac float64) (oracleMetric, func(k int) roadnet.VertexID) {
	t.Helper()
	g := testnet.PaperNetwork()
	return oracleMetric{o: roadnet.NewOracle(g), lbFrac: lbFrac},
		func(k int) roadnet.VertexID { return roadnet.VertexID(k - 1) }
}

func TestEmptyTree(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 4, 8, v(1), 0)
	if !tr.Empty() || tr.BestDist() != 0 || tr.NumBranches() != 1 {
		t.Fatalf("empty tree state: empty=%v best=%v branches=%d", tr.Empty(), tr.BestDist(), tr.NumBranches())
	}
	if tr.BestBranch() != nil || tr.Branches() != nil {
		t.Fatal("empty tree should have no stops")
	}
	if tr.Onboard() != 0 {
		t.Fatal("empty tree has riders")
	}
}

func TestQuoteEmptyVehicle(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 4, 8, v(13), 0)
	r2 := kinetic.Request{ID: 2, S: v(12), D: v(17), Riders: 2, SD: 7, ServiceLimit: 8.4, WaitBudget: 5}
	cands := tr.Quote(r2)
	if len(cands) != 1 {
		t.Fatalf("empty-vehicle quote returned %d candidates, want 1", len(cands))
	}
	c := cands[0]
	if c.PickupDist != 8 || c.Delta != 15 || c.TotalDist != 15 {
		t.Fatalf("candidate = %+v, want pickup 8, delta 15", c)
	}
	if len(c.Seq) != 2 || c.Seq[0].Kind != kinetic.Pickup || c.Seq[1].Kind != kinetic.Dropoff {
		t.Fatalf("candidate sequence = %+v", c.Seq)
	}
}

// TestPaperExampleC1 reproduces the §2.4/§2.5 worked example on the c1
// side: after committing R1 = ⟨v2, v16, 2, 5, 0.2⟩, quoting
// R2 = ⟨v12, v17, 2, 5, 0.2⟩ must yield exactly the non-dominated
// candidate with pick-up distance 14 and detour delta 3.
func TestPaperExampleC1(t *testing.T) {
	for _, lbFrac := range []float64{0, 0.9, 1} {
		m, v := paperSetup(t, lbFrac)
		tr := kinetic.New(m, 4, 8, v(1), 0)
		r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 5}
		c1 := tr.Quote(r1)
		if len(c1) != 1 || c1[0].PickupDist != 6 || c1[0].TotalDist != 18 {
			t.Fatalf("lbFrac=%v: R1 quote = %+v, want pickup 6 total 18", lbFrac, c1)
		}
		if err := tr.Commit(r1, c1[0]); err != nil {
			t.Fatalf("commit R1: %v", err)
		}
		if tr.BestDist() != 18 || tr.NumBranches() != 1 {
			t.Fatalf("after R1: best=%v branches=%d", tr.BestDist(), tr.NumBranches())
		}

		r2 := kinetic.Request{ID: 2, S: v(12), D: v(17), Riders: 2, SD: 7, ServiceLimit: 8.4, WaitBudget: 5}
		c2 := tr.Quote(r2)
		if len(c2) != 1 {
			t.Fatalf("lbFrac=%v: R2 quote = %+v, want exactly one non-dominated candidate", lbFrac, c2)
		}
		if c2[0].PickupDist != 14 || c2[0].Delta != 3 {
			t.Fatalf("lbFrac=%v: R2 candidate = %+v, want pickup 14 delta 3", lbFrac, c2[0])
		}
		wantSeq := []roadnet.VertexID{v(2), v(12), v(16), v(17)}
		for i, p := range c2[0].Seq {
			if p.Loc != wantSeq[i] {
				t.Fatalf("R2 planned schedule = %+v, want stops %v", c2[0].Seq, wantSeq)
			}
		}
	}
}

func TestCommitAndLifecycle(t *testing.T) {
	m, v := paperSetup(t, 0.9)
	tr := kinetic.New(m, 4, 8, v(1), 0)
	r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 5}
	cands := tr.Quote(r1)
	if err := tr.Commit(r1, cands[0]); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if tr.Empty() || tr.NumRequests() != 1 || tr.Onboard() != 0 {
		t.Fatal("post-commit state wrong")
	}
	if onboard, pending := tr.IsOnboard(1); onboard || !pending {
		t.Fatal("IsOnboard before pickup wrong")
	}
	if planned, ok := tr.PlannedPickupOdo(1); !ok || planned != 6 {
		t.Fatalf("PlannedPickupOdo = %v, %v", planned, ok)
	}

	// Drive to the pickup: v1 → v2 is distance 6.
	tr.SetRoot(v(2), 6)
	if err := tr.Pickup(1); err != nil {
		t.Fatalf("pickup: %v", err)
	}
	if onboard, _ := tr.IsOnboard(1); !onboard {
		t.Fatal("rider should be onboard")
	}
	if tr.Onboard() != 2 {
		t.Fatalf("Onboard = %d, want 2", tr.Onboard())
	}
	// One pending point remains: the dropoff.
	if bb := tr.BestBranch(); len(bb) != 1 || bb[0].Kind != kinetic.Dropoff {
		t.Fatalf("BestBranch = %+v", bb)
	}

	// Drive to the dropoff: v2 → v16 is distance 12.
	tr.SetRoot(v(16), 18)
	if err := tr.Dropoff(1); err != nil {
		t.Fatalf("dropoff: %v", err)
	}
	if !tr.Empty() || tr.Onboard() != 0 {
		t.Fatal("tree should be empty after dropoff")
	}
}

func TestPickupErrors(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 4, 8, v(1), 0)
	r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 5}
	tr.Commit(r1, tr.Quote(r1)[0])

	if err := tr.Pickup(99); err == nil {
		t.Error("pickup of unknown request should fail")
	}
	if err := tr.Pickup(1); err == nil {
		t.Error("pickup away from the start vertex should fail")
	}
	if err := tr.Dropoff(1); err == nil {
		t.Error("dropoff before pickup should fail")
	}
	// Arrive past the waiting deadline: planned 6 + wait 5 = 11.
	tr.SetRoot(v(2), 30)
	if err := tr.Pickup(1); err == nil {
		t.Error("pickup past the waiting deadline should fail")
	}
}

func TestWaitingDeadlinePrunesBranches(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 4, 8, v(1), 0)
	r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 5}
	tr.Commit(r1, tr.Quote(r1)[0])
	// Move without approaching the pickup: odometer 20 > deadline 11,
	// so no valid schedule can reach v2 in time.
	tr.SetRoot(v(13), 20)
	if tr.NumBranches() != 0 {
		t.Fatalf("branches = %d, want 0 after blowing the deadline", tr.NumBranches())
	}
	if tr.Quote(kinetic.Request{ID: 2, S: v(12), D: v(17), Riders: 1, SD: 7, ServiceLimit: 8.4}) != nil {
		t.Fatal("quote should refuse a vehicle with no valid schedule")
	}
}

func TestCapacityBlocksOverlap(t *testing.T) {
	g := testnet.Line(10, 1) // vertices 0..9, unit edges
	m := oracleMetric{o: roadnet.NewOracle(g), lbFrac: 1}
	tr := kinetic.New(m, 2, 8, 0, 0)
	// Two 2-rider requests with generous budgets travelling 1→8 and 2→7:
	// with capacity 2 they can never be onboard together.
	r1 := kinetic.Request{ID: 1, S: 1, D: 8, Riders: 2, SD: 7, ServiceLimit: 70, WaitBudget: 100}
	tr.Commit(r1, tr.Quote(r1)[0])
	cands := tr.Quote(kinetic.Request{ID: 2, S: 2, D: 7, Riders: 2, SD: 5, ServiceLimit: 50, WaitBudget: 100})
	for _, c := range cands {
		picked := false
		for _, p := range c.Seq {
			if p.Req == 1 && p.Kind == kinetic.Pickup {
				picked = true
			}
			if p.Req == 1 && p.Kind == kinetic.Dropoff {
				picked = false
			}
			if p.Req == 2 && p.Kind == kinetic.Pickup && picked {
				t.Fatalf("capacity violated in candidate %+v", c.Seq)
			}
		}
	}
	if len(cands) == 0 {
		t.Fatal("sequential service should still be possible")
	}
}

func TestQuoteRespectsPointCap(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 8, 4, v(1), 0) // max 4 points = 2 requests
	r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 1, SD: 12, ServiceLimit: 100, WaitBudget: 100}
	tr.Commit(r1, tr.Quote(r1)[0])
	r2 := kinetic.Request{ID: 2, S: v(12), D: v(17), Riders: 1, SD: 7, ServiceLimit: 100, WaitBudget: 100}
	if tr.Quote(r2) == nil {
		t.Fatal("second request should fit")
	}
	tr.Commit(r2, tr.Quote(r2)[0])
	r3 := kinetic.Request{ID: 3, S: v(13), D: v(12), Riders: 1, SD: 8, ServiceLimit: 100, WaitBudget: 100}
	if tr.Quote(r3) != nil {
		t.Fatal("third request should be refused by the point cap")
	}
}

func TestCommitDuplicateAndStale(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 4, 8, v(1), 0)
	r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 5}
	c := tr.Quote(r1)[0]
	if err := tr.Commit(r1, c); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := tr.Commit(r1, c); err == nil {
		t.Fatal("duplicate commit should fail")
	}

	// Stale candidate: quote, then move the vehicle far away before
	// committing. The pickup deadline anchored at the *new* odometer
	// cannot be met because the planned pickup distance is stale.
	tr2 := kinetic.New(m, 4, 8, v(1), 0)
	r2 := kinetic.Request{ID: 2, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 0}
	cand := tr2.Quote(r2)[0]
	tr2.SetRoot(v(17), 50) // now dist(v17,v2) = 15 > planned 6 + wait 0
	if err := tr2.Commit(r2, cand); err == nil {
		t.Fatal("stale candidate should be rejected")
	}
	if !tr2.Empty() {
		t.Fatal("failed commit must roll back")
	}
}

func TestCancel(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 4, 8, v(1), 0)
	r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 5}
	tr.Commit(r1, tr.Quote(r1)[0])
	if err := tr.Cancel(1); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if !tr.Empty() {
		t.Fatal("cancel should empty the tree")
	}
	if err := tr.Cancel(1); err == nil {
		t.Fatal("double cancel should fail")
	}
}

func TestSetRootMonotonicOdometer(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 4, 8, v(1), 10)
	defer func() {
		if recover() == nil {
			t.Fatal("odometer regression should panic")
		}
	}()
	tr.SetRoot(v(2), 5)
}

func TestLocations(t *testing.T) {
	m, v := paperSetup(t, 0)
	tr := kinetic.New(m, 4, 8, v(1), 0)
	r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 5}
	tr.Commit(r1, tr.Quote(r1)[0])
	locs := tr.Locations()
	want := map[roadnet.VertexID]bool{v(1): true, v(2): true, v(16): true}
	if len(locs) != len(want) {
		t.Fatalf("Locations = %v", locs)
	}
	for _, l := range locs {
		if !want[l] {
			t.Fatalf("unexpected location %d", l)
		}
	}
}

// TestRandomisedAgainstBruteForce drives a tree through random
// commit/move/pickup/dropoff operations and checks the full branch set
// and quote skyline against the naive permutation model after each
// step.
func TestRandomisedAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := testnet.Lattice(rng, 6, 6, 100)
			oracle := roadnet.NewOracle(g)
			m := oracleMetric{o: oracle, lbFrac: 0.9}
			s := roadnet.NewSearcher(g)

			const cap = 3
			start := roadnet.VertexID(rng.Intn(g.NumVertices()))
			tr := kinetic.New(m, cap, 6, start, 0)
			bf := &bfVehicle{cap: cap, loc: start, dist: oracle.Dist}
			nextID := kinetic.RequestID(1)

			check := func(step string) {
				t.Helper()
				got := sortedKeys(tr.Branches())
				want := sortedKeys(bf.validSequences())
				if len(got) != len(want) {
					t.Fatalf("%s: %d branches, brute force %d\n got: %v\nwant: %v", step, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: branch mismatch\n got: %v\nwant: %v", step, got, want)
					}
				}
				if len(want) > 0 {
					if bd := bf.bestDist(); math.Abs(tr.BestDist()-bd) > 1e-6 {
						t.Fatalf("%s: BestDist %v, brute force %v", step, tr.BestDist(), bd)
					}
				}
			}

			for step := 0; step < 40; step++ {
				switch op := rng.Intn(3); {
				case op == 0 && tr.NumRequests() < 3:
					// New request.
					sv := roadnet.VertexID(rng.Intn(g.NumVertices()))
					dv := roadnet.VertexID(rng.Intn(g.NumVertices()))
					if sv == dv {
						continue
					}
					sd := oracle.Dist(sv, dv)
					req := kinetic.Request{
						ID: nextID, S: sv, D: dv,
						Riders:       1 + rng.Intn(2),
						SD:           sd,
						ServiceLimit: (1 + 0.2 + rng.Float64()) * sd,
						WaitBudget:   100 + rng.Float64()*400,
					}
					cands := tr.Quote(req)
					wantQuote := bf.quote(req)
					if len(cands) != len(wantQuote) {
						t.Fatalf("step %d: quote size %d, brute force %d: %+v vs %v", step, len(cands), len(wantQuote), cands, wantQuote)
					}
					for _, c := range cands {
						if !wantQuote[[2]float64{c.PickupDist, c.Delta}] {
							t.Fatalf("step %d: quote candidate (%v,%v) not in brute force set %v", step, c.PickupDist, c.Delta, wantQuote)
						}
					}
					if len(cands) == 0 {
						continue
					}
					chosen := cands[rng.Intn(len(cands))]
					if err := tr.Commit(req, chosen); err != nil {
						t.Fatalf("step %d: commit: %v", step, err)
					}
					bf.reqs = append(bf.reqs, &bfReq{
						req:            req,
						pickupDeadline: bf.odo + chosen.PickupDist + req.WaitBudget,
					})
					nextID++
					check("commit")

				case op == 1:
					// Drive one hop along the best branch's shortest path,
					// or wander randomly when idle.
					var target roadnet.VertexID
					if bb := tr.BestBranch(); len(bb) > 0 {
						target = bb[0].Loc
					} else {
						target = roadnet.VertexID(rng.Intn(g.NumVertices()))
					}
					if target == tr.Root() {
						continue
					}
					path, _ := s.Path(tr.Root(), target)
					if len(path) < 2 {
						continue
					}
					w, _ := g.EdgeWeight(path[0], path[1])
					tr.SetRoot(path[1], tr.Odometer()+w)
					bf.loc = path[1]
					bf.odo += w
					check("move")

				case op == 2:
					// Arrive at the next stop of the best branch and serve it.
					bb := tr.BestBranch()
					if len(bb) == 0 {
						continue
					}
					next := bb[0]
					d := oracle.Dist(tr.Root(), next.Loc)
					tr.SetRoot(next.Loc, tr.Odometer()+d)
					bf.loc = next.Loc
					bf.odo += d
					if next.Kind == kinetic.Pickup {
						if err := tr.Pickup(next.Req); err != nil {
							t.Fatalf("step %d: pickup: %v", step, err)
						}
						for _, r := range bf.reqs {
							if r.req.ID == next.Req {
								r.onboard = true
								r.dropoffDeadline = bf.odo + r.req.ServiceLimit
							}
						}
					} else {
						if err := tr.Dropoff(next.Req); err != nil {
							t.Fatalf("step %d: dropoff: %v", step, err)
						}
						for i, r := range bf.reqs {
							if r.req.ID == next.Req {
								bf.reqs = append(bf.reqs[:i], bf.reqs[i+1:]...)
								break
							}
						}
					}
					check("serve")
				}
			}
		})
	}
}

// TestLBFracInvariance checks the ablation property: pruning with any
// valid lower bound must not change quote results.
func TestLBFracInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := testnet.Lattice(rng, 5, 5, 100)
	oracle := roadnet.NewOracle(g)
	for trial := 0; trial < 20; trial++ {
		s := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if s == d {
			continue
		}
		root := roadnet.VertexID(rng.Intn(g.NumVertices()))
		req := kinetic.Request{ID: 1, S: s, D: d, Riders: 1, SD: oracle.Dist(s, d),
			ServiceLimit: 1.4 * oracle.Dist(s, d), WaitBudget: 300}
		var ref []kinetic.Candidate
		for i, frac := range []float64{0, 0.5, 1} {
			tr := kinetic.New(oracleMetric{o: oracle, lbFrac: frac}, 4, 8, root, 0)
			got := tr.Quote(req)
			if i == 0 {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("lbFrac %v changed candidate count: %d vs %d", frac, len(got), len(ref))
			}
			for j := range got {
				if got[j].PickupDist != ref[j].PickupDist || got[j].Delta != ref[j].Delta {
					t.Fatalf("lbFrac %v changed candidates: %+v vs %+v", frac, got[j], ref[j])
				}
			}
		}
	}
}

// TestQuoteCandidatesMutuallyNonDominated verifies Definition 4's
// dominance over every returned candidate pair.
func TestQuoteCandidatesMutuallyNonDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := testnet.Lattice(rng, 5, 5, 100)
	oracle := roadnet.NewOracle(g)
	m := oracleMetric{o: oracle, lbFrac: 1}
	tr := kinetic.New(m, 4, 8, 0, 0)
	r1 := kinetic.Request{ID: 1, S: 5, D: 20, Riders: 1, SD: oracle.Dist(5, 20),
		ServiceLimit: 2 * oracle.Dist(5, 20), WaitBudget: 1e6}
	tr.Commit(r1, tr.Quote(r1)[0])
	cands := tr.Quote(kinetic.Request{ID: 2, S: 7, D: 18, Riders: 1, SD: oracle.Dist(7, 18),
		ServiceLimit: 2 * oracle.Dist(7, 18), WaitBudget: 1e6})
	for i := range cands {
		for j := range cands {
			if i != j && skyline.Dominates(cands[i].PickupDist, cands[i].Delta, cands[j].PickupDist, cands[j].Delta) {
				t.Fatalf("candidate %d dominates %d: %+v vs %+v", i, j, cands[i], cands[j])
			}
		}
	}
}
