// Package kinetic implements the kinetic tree of valid vehicle trip
// schedules (paper §3.2.2, after Huang et al.'s Noah [7]): for one
// vehicle, the set c.Str of all trip schedules that satisfy the four
// validity conditions of Definition 2 — capacity, point order, waiting
// time, and service constraint — stored as a trie whose branches share
// common prefixes. Each node is augmented with the occupancy after
// serving it and dist_tr, the travel distance from the vehicle's
// current location, as the paper prescribes.
//
// Distances are metres; time is distance via the system's constant
// speed, so waiting-time budgets arrive here already converted to
// distance. Budgets are stored as absolute odometer deadlines: the
// waiting-time constraint "actual pickup at most w after planned
// pickup" becomes "odometer at pickup ≤ odometer at assignment +
// planned pickup distance + w·speed", which stays meaningful as the
// vehicle moves and re-plans.
//
// The tree is rebuilt lazily by enumerating, with budget- and
// bound-based pruning, every valid ordering of the pending points. The
// enumeration consults the exact distance only after a cheap lower
// bound fails to prune the extension — the paper's improvement (ii)
// over Noah, which computes all distances up front.
package kinetic

import (
	"fmt"

	"ptrider/internal/roadnet"
)

// RequestID identifies a ridesharing request across the system.
type RequestID int64

// Metric supplies network distances to the tree: Dist is the exact
// shortest-path distance and LB a cheap lower bound of it (from the
// grid index; zero is always sound). Implementations should memoise
// Dist — the tree calls it repeatedly with the same arguments during
// enumeration.
type Metric interface {
	Dist(u, v roadnet.VertexID) float64
	LB(u, v roadnet.VertexID) float64
}

// PointKind distinguishes pickup from dropoff points.
type PointKind uint8

// Point kinds.
const (
	Pickup PointKind = iota
	Dropoff
)

func (k PointKind) String() string {
	if k == Pickup {
		return "pickup"
	}
	return "dropoff"
}

// Point is one stop of a trip schedule.
type Point struct {
	Loc  roadnet.VertexID
	Kind PointKind
	Req  RequestID
}

// Request is the kinetic-level view of a ridesharing request
// R = ⟨s, d, n, w, σ⟩, with the time-dependent fields pre-converted to
// distances by the caller.
type Request struct {
	ID     RequestID
	S, D   roadnet.VertexID
	Riders int
	// SD is dist(S, D), computed once by the caller.
	SD float64
	// ServiceLimit is (1+σ)·dist(S,D): the maximal in-vehicle distance
	// from pickup to dropoff.
	ServiceLimit float64
	// WaitBudget is w·speed: the maximal extra distance the vehicle may
	// drive before the pickup compared with the plan quoted at
	// assignment time.
	WaitBudget float64
}

// reqState is a Request plus its commitment state inside one tree.
type reqState struct {
	Request
	pickupDeadline   float64 // odometer bound for the pickup; +Inf before commit finalises it
	dropoffDeadline  float64 // odometer bound for the dropoff; set at pickup
	plannedPickupOdo float64
	onboard          bool
}

// Node is a trie node of the kinetic tree. Children are the feasible
// next stops. DistTr and Occupancy are the paper's per-node
// augmentations (the third, minimal allowed detour, is derivable from
// the deadlines and is checked during enumeration instead of stored).
type Node struct {
	Point     Point
	DistTr    float64
	Occupancy int
	Children  []*Node

	// subtreeBest is the smallest complete-schedule distance below this
	// node, maintained so BestBranch can descend greedily.
	subtreeBest float64
}

// Candidate is one feasible way to serve a quoted request: the complete
// planned schedule and its derived quantities.
type Candidate struct {
	// Seq is the full planned stop sequence including the quoted
	// request's pickup and dropoff.
	Seq []Point
	// PickupDist is dist_tr of the quoted request's pickup: the planned
	// pick-up distance (time × speed) offered to the rider.
	PickupDist float64
	// TotalDist is dist_tr of the whole schedule.
	TotalDist float64
	// Delta is TotalDist − (the best current schedule's total), the
	// detour delta priced by the model.
	Delta float64
}

// Tree is the kinetic tree of one vehicle. Not safe for concurrent use.
type Tree struct {
	metric    Metric
	capacity  int
	maxPoints int

	rootLoc roadnet.VertexID
	odo     float64

	reqs   []*reqState
	pts    []Point // pending points; index into reqs via reqIdx
	reqIdx []int   // parallel to pts

	root       *Node // synthetic root at rootLoc; nil children == no pending points
	bestDist   float64
	branches   int
	maxLeg     float64
	odoAtBuild float64
	dirty      bool

	// enumeration scratch: rebuild's workspace plus the quote
	// workspace (separate, since Quote must not disturb a rebuild
	// triggered by ensureFresh inside the same call).
	scratch dfsScratch
	quote   quoteScratch
}

// New returns an empty kinetic tree for a vehicle with the given
// capacity, a cap on pending points (pickups+dropoffs; ≤ 2·requests),
// current location and odometer reading.
func New(m Metric, capacity, maxPoints int, loc roadnet.VertexID, odo float64) *Tree {
	if maxPoints <= 0 {
		maxPoints = 8
	}
	if maxPoints > 16 {
		// Quote encodes candidate schedules as permutation words of
		// 4-bit point indices, which caps enumerable points at 16 — far
		// beyond what factorial enumeration can visit anyway (16! ≈
		// 2·10¹³ orderings), so the clamp costs nothing real.
		maxPoints = 16
	}
	return &Tree{
		metric:    m,
		capacity:  capacity,
		maxPoints: maxPoints,
		rootLoc:   loc,
		odo:       odo,
		bestDist:  0,
		branches:  1,
	}
}

// Capacity returns the vehicle capacity the tree enforces.
func (t *Tree) Capacity() int { return t.capacity }

// Root returns the vehicle location the tree is rooted at.
func (t *Tree) Root() roadnet.VertexID { return t.rootLoc }

// Odometer returns the odometer reading of the last SetRoot.
func (t *Tree) Odometer() float64 { return t.odo }

// Empty reports whether the tree has no pending requests.
func (t *Tree) Empty() bool { return len(t.reqs) == 0 }

// NumRequests returns the number of pending (unfinished) requests.
func (t *Tree) NumRequests() int { return len(t.reqs) }

// Onboard returns the total riders currently in the vehicle.
func (t *Tree) Onboard() int {
	n := 0
	for _, r := range t.reqs {
		if r.onboard {
			n += r.Riders
		}
	}
	return n
}

// Requests returns the pending requests' public views.
func (t *Tree) Requests() []Request {
	out := make([]Request, len(t.reqs))
	for i, r := range t.reqs {
		out[i] = r.Request
	}
	return out
}

// IsOnboard reports whether request id has been picked up (and whether
// it is pending at all).
func (t *Tree) IsOnboard(id RequestID) (onboard, pending bool) {
	for _, r := range t.reqs {
		if r.ID == id {
			return r.onboard, true
		}
	}
	return false, false
}

// SetRoot advances the vehicle to a new location and odometer reading.
// The odometer must be non-decreasing. The trie is rebuilt lazily on the
// next read.
func (t *Tree) SetRoot(loc roadnet.VertexID, odo float64) {
	if odo < t.odo {
		panic(fmt.Sprintf("kinetic: odometer moved backwards (%v < %v)", odo, t.odo))
	}
	if loc == t.rootLoc && odo == t.odo {
		return
	}
	t.rootLoc = loc
	t.odo = odo
	t.dirty = true
}

// ensureFresh rebuilds the trie if the root moved since the last build.
func (t *Tree) ensureFresh() {
	if t.dirty || (t.root == nil && len(t.pts) > 0) {
		t.rebuild()
	}
}

// BestDist returns the total distance of the shortest valid schedule
// (zero when the tree is empty). The vehicle drives this branch.
func (t *Tree) BestDist() float64 {
	t.ensureFresh()
	return t.bestDist
}

// NumBranches returns the number of valid schedules.
func (t *Tree) NumBranches() int {
	t.ensureFresh()
	return t.branches
}

// MaxLeg returns the longest single leg (consecutive-stop distance,
// including root legs) across all valid schedules, and zero for an
// empty tree. Dual-side search uses it to lower-bound the detour of
// inserting a destination: any insertion gap spans at most MaxLeg.
func (t *Tree) MaxLeg() float64 {
	t.ensureFresh()
	return t.maxLeg
}

// MaxLegUpper returns an upper bound on MaxLeg without rebuilding a
// stale tree. Structural changes (commit, pickup, dropoff, cancel)
// rebuild eagerly, so the only staleness is root movement, and any root
// leg can have grown by at most the distance driven since the last
// build: dist(newRoot, p) ≤ dist(oldRoot, p) + driven.
func (t *Tree) MaxLegUpper() float64 {
	if len(t.pts) == 0 {
		return 0
	}
	if !t.dirty {
		return t.maxLeg
	}
	return t.maxLeg + (t.odo - t.odoAtBuild)
}

// BestBranch returns the stop sequence of the shortest valid schedule,
// or nil when the tree is empty.
func (t *Tree) BestBranch() []Point {
	t.ensureFresh()
	if t.root == nil || len(t.root.Children) == 0 {
		return nil
	}
	var seq []Point
	n := t.root
	for len(n.Children) > 0 {
		best := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.subtreeBest < best.subtreeBest {
				best = c
			}
		}
		seq = append(seq, best.Point)
		n = best
	}
	return seq
}

// Branches returns every valid schedule as a stop sequence. Intended
// for the demo's website view and for tests; matching never materialises
// this.
func (t *Tree) Branches() [][]Point {
	t.ensureFresh()
	if t.root == nil {
		return nil
	}
	var out [][]Point
	var walk func(n *Node, prefix []Point)
	walk = func(n *Node, prefix []Point) {
		if len(n.Children) == 0 {
			out = append(out, append([]Point(nil), prefix...))
			return
		}
		for _, c := range n.Children {
			walk(c, append(prefix, c.Point))
		}
	}
	if len(t.root.Children) == 0 {
		return nil
	}
	walk(t.root, nil)
	return out
}

// TrieRoot returns the trie root for read-only traversal (the demo
// server renders tree edges from it). It is nil for an empty tree.
func (t *Tree) TrieRoot() *Node {
	t.ensureFresh()
	return t.root
}

// Locations returns the root location plus every pending point
// location, deduplicated — the location set whose pairwise paths define
// the cells a non-empty vehicle registers in.
func (t *Tree) Locations() []roadnet.VertexID {
	seen := map[roadnet.VertexID]bool{t.rootLoc: true}
	out := []roadnet.VertexID{t.rootLoc}
	for _, p := range t.pts {
		if !seen[p.Loc] {
			seen[p.Loc] = true
			out = append(out, p.Loc)
		}
	}
	return out
}
