package kinetic_test

import (
	"math/rand"
	"testing"

	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// TestBudgetBoundaryExact: a schedule that consumes the waiting budget
// to the last metre stays valid; one metre more kills it. Pins the
// epsilon handling of the budget comparisons.
func TestBudgetBoundaryExact(t *testing.T) {
	g := testnet.Line(20, 100) // unit edges of 100 m
	m := oracleMetric{o: roadnet.NewOracle(g), lbFrac: 1}
	tr := kinetic.New(m, 4, 8, 0, 0)
	// Pickup at vertex 5 (500 m), dropoff at 10; waiting budget 0: the
	// vehicle must drive straight there.
	req := kinetic.Request{ID: 1, S: 5, D: 10, Riders: 1, SD: 500, ServiceLimit: 500, WaitBudget: 0}
	cands := tr.Quote(req)
	if len(cands) != 1 || cands[0].PickupDist != 500 {
		t.Fatalf("quote = %+v", cands)
	}
	if err := tr.Commit(req, cands[0]); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// Move along the planned path: still exactly on budget.
	tr.SetRoot(3, 300)
	if tr.NumBranches() != 1 {
		t.Fatalf("branches after on-path move = %d", tr.NumBranches())
	}
	// One step off-path burns 100 m that the zero budget does not have.
	tr.SetRoot(2, 400)
	if tr.NumBranches() != 0 {
		t.Fatalf("branches after off-path move = %d, want 0", tr.NumBranches())
	}
}

// TestTriePrefixSharing: with two requests along one corridor the trie
// must share the common prefix rather than duplicate whole branches.
func TestTriePrefixSharing(t *testing.T) {
	g := testnet.Line(30, 100)
	m := oracleMetric{o: roadnet.NewOracle(g), lbFrac: 1}
	tr := kinetic.New(m, 4, 8, 0, 0)
	r1 := kinetic.Request{ID: 1, S: 2, D: 20, Riders: 1, SD: 1800, ServiceLimit: 3600, WaitBudget: 1e6}
	if err := tr.Commit(r1, tr.Quote(r1)[0]); err != nil {
		t.Fatalf("commit r1: %v", err)
	}
	r2 := kinetic.Request{ID: 2, S: 2, D: 25, Riders: 1, SD: 2300, ServiceLimit: 4600, WaitBudget: 1e6}
	if err := tr.Commit(r2, tr.Quote(r2)[0]); err != nil {
		t.Fatalf("commit r2: %v", err)
	}

	root := tr.TrieRoot()
	if root == nil {
		t.Fatal("no trie")
	}
	// Both requests pick up at vertex 2; the two pickup orderings exist
	// as branches, but each first-level child is unique by (loc, kind,
	// req) — duplicates would mean the prefix-merge is broken.
	seen := map[string]bool{}
	for _, c := range root.Children {
		key := c.Point.Kind.String() + string(rune(c.Point.Loc)) + string(rune(c.Point.Req))
		if seen[key] {
			t.Fatalf("duplicate first-level child %+v", c.Point)
		}
		seen[key] = true
	}
	if tr.NumBranches() < 2 {
		t.Fatalf("expected multiple orderings, got %d", tr.NumBranches())
	}
	// DistTr must be monotone along every branch.
	var walk func(n *kinetic.Node, d float64)
	walk = func(n *kinetic.Node, d float64) {
		for _, c := range n.Children {
			if c.DistTr < d-1e-9 {
				t.Fatalf("DistTr not monotone: %v after %v", c.DistTr, d)
			}
			walk(c, c.DistTr)
		}
	}
	walk(root, 0)
}

// TestMaxLegUpperIsSound: after arbitrary on-graph movement without
// rebuild, MaxLegUpper must bound the freshly rebuilt MaxLeg.
func TestMaxLegUpperIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := testnet.Lattice(rng, 6, 6, 100)
	oracle := roadnet.NewOracle(g)
	m := oracleMetric{o: oracle, lbFrac: 1}
	s := roadnet.NewSearcher(g)

	for trial := 0; trial < 30; trial++ {
		start := roadnet.VertexID(rng.Intn(g.NumVertices()))
		tr := kinetic.New(m, 4, 8, start, 0)
		for added := 0; added < 2; {
			sv := roadnet.VertexID(rng.Intn(g.NumVertices()))
			dv := roadnet.VertexID(rng.Intn(g.NumVertices()))
			if sv == dv {
				continue
			}
			sd := oracle.Dist(sv, dv)
			req := kinetic.Request{ID: kinetic.RequestID(added + 1), S: sv, D: dv,
				Riders: 1, SD: sd, ServiceLimit: 2 * sd, WaitBudget: 1e6}
			cands := tr.Quote(req)
			if len(cands) == 0 {
				continue
			}
			if err := tr.Commit(req, cands[0]); err != nil {
				t.Fatalf("commit: %v", err)
			}
			added++
		}
		// Drift a few random edges (marking the tree dirty each time).
		loc := tr.Root()
		for hop := 0; hop < 4; hop++ {
			out := g.Out(loc)
			e := out[rng.Intn(len(out))]
			// Move along real edges so the odometer equals driven
			// distance, as the fleet guarantees.
			tr.SetRoot(e.To, tr.Odometer()+e.Weight)
			loc = e.To
			upper := tr.MaxLegUpper() // while dirty
			fresh := tr.MaxLeg()      // forces rebuild
			if fresh > upper+1e-9 {
				t.Fatalf("MaxLegUpper %v below true MaxLeg %v after movement", upper, fresh)
			}
		}
		_ = s
	}
}

// TestQuoteDoesNotMutate: quoting must leave the tree unchanged even
// when the candidate set is large.
func TestQuoteDoesNotMutate(t *testing.T) {
	m, v := paperSetup(t, 0.5)
	tr := kinetic.New(m, 4, 8, v(1), 0)
	r1 := kinetic.Request{ID: 1, S: v(2), D: v(16), Riders: 2, SD: 12, ServiceLimit: 14.4, WaitBudget: 5}
	tr.Commit(r1, tr.Quote(r1)[0])
	before := sortedKeys(tr.Branches())
	bestBefore := tr.BestDist()
	for i := 0; i < 5; i++ {
		tr.Quote(kinetic.Request{ID: 99, S: v(12), D: v(17), Riders: 2, SD: 7, ServiceLimit: 8.4, WaitBudget: 5})
	}
	after := sortedKeys(tr.Branches())
	if len(before) != len(after) {
		t.Fatalf("quote mutated branch count: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("quote mutated branches")
		}
	}
	if tr.BestDist() != bestBefore {
		t.Fatal("quote mutated best distance")
	}
}

// TestOnboardDropoffOnlyTree: once all pickups happen, the tree holds
// only dropoffs and the service deadlines drive feasibility.
func TestOnboardDropoffOnlyTree(t *testing.T) {
	g := testnet.Line(20, 100)
	m := oracleMetric{o: roadnet.NewOracle(g), lbFrac: 1}
	tr := kinetic.New(m, 4, 8, 5, 0)
	r := kinetic.Request{ID: 1, S: 5, D: 15, Riders: 2, SD: 1000, ServiceLimit: 1200, WaitBudget: 0}
	if err := tr.Commit(r, tr.Quote(r)[0]); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := tr.Pickup(1); err != nil {
		t.Fatalf("pickup: %v", err)
	}
	if tr.Onboard() != 2 || tr.NumBranches() != 1 {
		t.Fatalf("state after pickup: onboard=%d branches=%d", tr.Onboard(), tr.NumBranches())
	}
	// Drive 2 edges off-route and back: 400 m of the 200 m slack burnt.
	tr.SetRoot(4, 100)
	tr.SetRoot(3, 200)
	if tr.NumBranches() != 0 {
		t.Fatal("service deadline should be violated after wasting 400 m")
	}
	// Dropoff attempts past the deadline fail loudly.
	tr.SetRoot(15, 200+1200)
	if err := tr.Dropoff(1); err == nil {
		t.Fatal("dropoff past service deadline accepted")
	}
}
