package fleet_test

import "ptrider/internal/geo"

func geoPoint(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }
