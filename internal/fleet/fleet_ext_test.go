package fleet_test

import (
	"math/rand"
	"testing"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
)

// TestZeroWeightEdgeSafety: a zero-weight edge must not stall movement
// (the fleet assigns it a tiny physical length).
func TestZeroWeightEdgeSafety(t *testing.T) {
	b := roadnet.NewBuilder(3, 6)
	b.AddVertex(geoPoint(0, 0))
	b.AddVertex(geoPoint(0, 0)) // coincident: zero-weight edge is metric
	b.AddVertex(geoPoint(100, 0))
	b.AddUndirectedEdge(0, 1, 0)
	b.AddUndirectedEdge(1, 2, 100)
	g := b.MustBuild()
	grid, err := gridindex.Build(g, gridindex.Config{Cols: 1, Rows: 1})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	lists := gridindex.NewVehicleLists(grid.NumCells())
	m := &gridMetric{s: roadnet.NewSearcher(g), grid: grid}
	fl, err := fleet.New(grid, lists, m, fleet.Config{Capacity: 2, Seed: 1})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	fl.AddVehicle(0)
	// 200 random-walk steps across the zero-weight edge must terminate.
	for i := 0; i < 200; i++ {
		if _, err := fl.Step(50); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestStepVehicleSingle: StepVehicle moves only the addressed vehicle.
func TestStepVehicleSingle(t *testing.T) {
	w := newWorld(t, 40, 4)
	a := w.fl.AddVehicle(0)
	b := w.fl.AddVehicle(10)
	if _, err := w.fl.StepVehicle(a.ID, 500); err != nil {
		t.Fatalf("StepVehicle: %v", err)
	}
	if a.Odometer() == 0 {
		t.Fatal("addressed vehicle did not move")
	}
	if b.Odometer() != 0 {
		t.Fatal("other vehicle moved")
	}
	if _, err := w.fl.StepVehicle(99, 1); err == nil {
		t.Fatal("unknown vehicle accepted")
	}
}

// TestCommitQuoteCandidateFromOtherVehicleFails: committing a candidate
// quoted against a different tree state must be rejected, not corrupt
// the schedule.
func TestCommitForeignCandidateFails(t *testing.T) {
	w := newWorld(t, 41, 4)
	a := w.fl.AddVehicle(0)
	b := w.fl.AddVehicle(63)
	req := w.request(t, 1, 27, 45, 1, 0.3, 10)
	candsA := a.Tree.Quote(req)
	if len(candsA) == 0 {
		t.Skip("no candidate from a on this seed")
	}
	// b is far away: a's planned pickup distance is unreachable within
	// the tiny waiting budget, so the stale-candidate guard fires.
	if _, err := w.fl.Commit(b.ID, req, candsA[0], 0); err == nil {
		t.Fatal("foreign candidate accepted")
	}
	if !b.Tree.Empty() {
		t.Fatal("failed commit left state behind")
	}
}

// TestRegistrationConsistencyUnderChurn: after arbitrary operations
// every active vehicle is registered exactly once, in empty XOR
// non-empty lists, consistent with its schedule state.
func TestRegistrationConsistencyUnderChurn(t *testing.T) {
	w := newWorld(t, 42, 3)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10; i++ {
		w.fl.AddVehicle(roadnet.VertexID(rng.Intn(w.g.NumVertices())))
	}
	next := kinetic.RequestID(1)
	for step := 0; step < 300; step++ {
		if rng.Intn(3) == 0 {
			vid := fleet.VehicleID(rng.Intn(w.fl.NumVehicles()))
			v, _ := w.fl.Vehicle(vid)
			if v.Removed() {
				continue
			}
			s := roadnet.VertexID(rng.Intn(w.g.NumVertices()))
			d := roadnet.VertexID(rng.Intn(w.g.NumVertices()))
			if s == d {
				continue
			}
			req := w.request(t, next, s, d, 1, 0.6, 500)
			if cands := v.Tree.Quote(req); len(cands) > 0 {
				if _, err := w.fl.Commit(vid, req, cands[0], 0); err != nil {
					t.Fatalf("commit: %v", err)
				}
				next++
			}
		}
		if _, err := w.fl.Step(80); err != nil {
			t.Fatalf("step: %v", err)
		}

		w.fl.Vehicles(func(v *fleet.Vehicle) {
			empty, registered := w.lists.IsEmptyVehicle(v.ID)
			if !registered {
				t.Fatalf("step %d: vehicle %d unregistered", step, v.ID)
			}
			if empty != v.Tree.Empty() {
				t.Fatalf("step %d: vehicle %d empty=%v but tree empty=%v",
					step, v.ID, empty, v.Tree.Empty())
			}
			cells := w.lists.Cells(v.ID)
			if len(cells) == 0 {
				t.Fatalf("step %d: vehicle %d has no cells", step, v.ID)
			}
			if v.Tree.Empty() {
				if len(cells) != 1 || cells[0] != w.grid.CellOf(v.Loc()) {
					t.Fatalf("step %d: empty vehicle %d cells %v, loc cell %d",
						step, v.ID, cells, w.grid.CellOf(v.Loc()))
				}
				return
			}
			// Non-empty: every stop location's cell must be registered.
			reg := map[gridindex.CellID]bool{}
			for _, c := range cells {
				reg[c] = true
			}
			for _, loc := range v.Tree.Locations() {
				if !reg[w.grid.CellOf(loc)] {
					t.Fatalf("step %d: vehicle %d stop cell %d unregistered (%v)",
						step, v.ID, w.grid.CellOf(loc), cells)
				}
			}
		})
	}
}
