// Package fleet manages PTRider's vehicles (paper §3.2.2 and §4): per
// vehicle the identifier, current location, the set of unfinished
// requests and the kinetic tree of valid trip schedules, plus the two
// behaviours the demo describes — vehicles follow their planned
// schedule while serving riders and roam the road network randomly
// (choosing a random segment at every intersection) when empty.
//
// The fleet also keeps the grid index's dynamic vehicle lists current:
// empty vehicles are listed in the cell of their current location;
// non-empty vehicles are listed in every cell their planned schedule
// touches (their stop locations plus the driven branch's path cells).
// Registering stop cells is what single-/dual-side search correctness
// relies on — a vehicle undiscovered at ring radius L is guaranteed to
// have every schedule point at distance ≥ L (see DESIGN.md §3.3); the
// driven path's cells are registered additionally so vehicles are
// discovered earlier. (The paper registers every kinetic-tree edge; the
// stop-set registration is the subset that carries the correctness
// argument.)
//
// Movement model: a vehicle is always driving toward (or standing at)
// its tree root vertex, with RemainToRoot metres left on the current
// edge. Once an edge is entered it is always completed; plans change
// only at vertices. The odometer stored in the kinetic tree is the
// reading at arrival at the root vertex, so every budget the tree
// checks is consistent with the distance actually driven.
//
// # Locking discipline
//
// The fleet is safe for concurrent use. Mutable state is split into
// fine-grained locks so candidate evaluation parallelises:
//
//   - Each Vehicle owns a mutex guarding its kinetic tree and movement
//     state. Quote (the side-effect-free matching probe), Commit (the
//     validate-then-commit of a rider choice) and stepping all run
//     under the vehicle's own lock, so distinct vehicles are probed
//     and mutated fully in parallel.
//   - The vehicles slice and the active count sit behind a fleet-level
//     RWMutex taken only on AddVehicle/RemoveVehicle and snapshots.
//   - Shortest-path searchers for grid registration and drive planning
//     come from a pool (one per concurrent caller); the path-cell
//     cache is internally striped (the distance-memo pattern), so
//     concurrent commits no longer serialise on a single path lock.
//   - Each vehicle owns its roaming RNG (guarded by the vehicle's own
//     mutex), deterministically seeded from the fleet seed and the
//     vehicle id — so a vehicle's roaming draws depend only on its own
//     step history, never on the order vehicles are stepped in. That
//     independence is what makes the sharded Step (see below)
//     bit-identical to the serial one at every shard width.
//   - The grid vehicle lists are internally synchronised.
//
// Lock order: Vehicle.mu → (pathCellCache stripes | lists). Fleet-level and
// vehicle-level locks are never held together except the read lock
// during snapshots. Exported Vehicle accessors acquire the vehicle
// lock; fleet internals that already hold it use the unexported
// *Locked variants.
//
// # Sharded time advancement
//
// Step partitions the vehicle population into per-worker shards with a
// stable assignment (vehicle id modulo the configured Workers width)
// and steps the shards concurrently; per-vehicle event slices are then
// merged into the canonical deterministic order — vehicle id
// ascending, odometer ascending within a vehicle — and per-vehicle
// errors are aggregated with errors.Join instead of aborting the
// remaining fleet. With Workers > 1 the metric must be safe for
// concurrent use (serving a stop re-enumerates the kinetic tree, which
// reads distances).
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/telemetry"
)

// VehicleID identifies a vehicle. IDs are dense indices assigned by
// AddVehicle.
type VehicleID = gridindex.VehicleID

// EventKind classifies fleet events.
type EventKind uint8

// Event kinds.
const (
	EventPickup EventKind = iota
	EventDropoff
)

func (k EventKind) String() string {
	if k == EventPickup {
		return "pickup"
	}
	return "dropoff"
}

// Event records a pickup or dropoff that happened during Step.
type Event struct {
	Kind    EventKind
	Vehicle VehicleID
	Request kinetic.RequestID
	// Odo is the vehicle's odometer at the event.
	Odo float64
}

// Vehicle is one taxi: its schedule tree plus movement state.
type Vehicle struct {
	ID VehicleID

	// mu guards Tree, remainToRoot and removed. Exported methods
	// acquire it; code that already holds it uses the tree directly.
	mu   sync.Mutex
	Tree *kinetic.Tree

	// remainToRoot is the distance left on the current edge before the
	// vehicle reaches its tree root vertex; zero when standing there.
	remainToRoot float64
	// removed marks vehicles taken out of service.
	removed bool

	// rng drives this vehicle's empty roaming. It is seeded
	// deterministically from the fleet seed and the vehicle id, so the
	// walk is a function of the vehicle's own step history alone —
	// independent of the order (or shard) other vehicles step in.
	// Guarded by mu like the rest of the movement state. src is the
	// underlying counted source: snapshots record its stream position
	// so a restored vehicle resumes the identical walk (see restore.go).
	rng *rand.Rand
	src *CountedSource
}

// Loc returns the vertex the vehicle is at or driving toward — the
// position all matching is computed from.
func (v *Vehicle) Loc() roadnet.VertexID {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Tree.Root()
}

// Odometer returns the odometer reading at arrival at Loc.
func (v *Vehicle) Odometer() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Tree.Odometer()
}

// RemainToRoot returns the metres left before the vehicle reaches Loc.
// The engine adds it to every quoted pick-up distance when converting
// to time, since matching measures from Loc.
func (v *Vehicle) RemainToRoot() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.remainToRoot
}

// Removed reports whether the vehicle has been taken out of service.
func (v *Vehicle) Removed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.removed
}

// ActiveLoc returns the vehicle's location and whether it is still in
// service, in one consistent read.
func (v *Vehicle) ActiveLoc() (roadnet.VertexID, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Tree.Root(), !v.removed
}

// ProbeState returns the pruning inputs of the ring scan — location,
// max-leg upper bound and service status — in one critical section,
// so a match's bound checks see a mutually consistent view and each
// candidate vehicle costs one lock acquisition instead of three.
func (v *Vehicle) ProbeState() (loc roadnet.VertexID, maxLegUpper float64, active bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Tree.Root(), v.Tree.MaxLegUpper(), !v.removed
}

// Quote is the side-effect-free matching probe: it enumerates, under
// the vehicle's lock, every valid schedule additionally serving req and
// returns the non-dominated candidates. The schedule state is not
// modified, so any number of vehicles can be probed concurrently.
// Removed vehicles refuse all requests.
func (v *Vehicle) Quote(req kinetic.Request) []kinetic.Candidate {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.removed {
		return nil
	}
	return v.Tree.Quote(req)
}

// AppendProbeLocs appends the vehicle's root location followed by its
// pending points' locations, in order, under the vehicle's lock —
// the snapshot a coalesced matcher feeds to its shared multi-target
// distance pass (see kinetic.QuoteSeed). Removed vehicles append
// nothing.
func (v *Vehicle) AppendProbeLocs(dst []roadnet.VertexID) []roadnet.VertexID {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.removed {
		return dst
	}
	return v.Tree.AppendPointLocs(dst)
}

// QuotePacked is the allocation-free seeded probe: candidates come back
// permutation-encoded with the quoted point set, both appended to
// caller-owned buffers (see kinetic.Tree.QuotePacked). The matchers
// materialise schedules only for candidates their skylines accept.
func (v *Vehicle) QuotePacked(req kinetic.Request, dst []kinetic.PackedCandidate, ptsBuf []kinetic.Point, seed *kinetic.QuoteSeed) ([]kinetic.PackedCandidate, []kinetic.Point) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.removed {
		return dst, ptsBuf
	}
	return v.Tree.QuotePacked(req, dst, ptsBuf, seed)
}

// MaxLegUpper returns an upper bound on the longest single leg across
// the vehicle's valid schedules (see kinetic.Tree.MaxLegUpper), read
// under the vehicle's lock.
func (v *Vehicle) MaxLegUpper() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Tree.MaxLegUpper()
}

// View reports the vehicle's location and load in one consistent read
// (the website's map row).
func (v *Vehicle) View() (loc roadnet.VertexID, onboard, pending int, removed bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Tree.Root(), v.Tree.Onboard(), v.Tree.NumRequests(), v.removed
}

// Schedules returns the vehicle's location and every valid trip
// schedule (the website's red lines) in one consistent read.
func (v *Vehicle) Schedules() (roadnet.VertexID, [][]kinetic.Point) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Tree.Root(), v.Tree.Branches()
}

// Fleet owns all vehicles and their grid registration.
type Fleet struct {
	g      *roadnet.Graph
	grid   *gridindex.Grid
	lists  *gridindex.VehicleLists
	metric kinetic.Metric

	capacity  int
	maxPoints int
	workers   int                    // Step's shard width (resolved, ≥ 1)
	shardHist *telemetry.LatencyHist // per-shard Step wall times (nil = off)
	seed      int64                  // base seed the per-vehicle roaming RNGs derive from

	mu       sync.RWMutex // guards vehicles, active and stepFault
	vehicles []*Vehicle
	active   int

	// stepFault, when non-nil, is consulted at the start of every
	// vehicle's step (test seam; see SetStepFault).
	stepFault func(VehicleID) error

	// stepStatsMu guards lastStep, the most recent Step's execution
	// profile (see StepStats).
	stepStatsMu sync.Mutex
	lastStep    StepStats

	// searchers pools private shortest-path searchers for schedule
	// registration and drive planning; pathCells is internally striped.
	// Neither serialises concurrent commits (the old single pathMu
	// did), so commits on distinct vehicles proceed fully in parallel.
	searchers sync.Pool // *roadnet.Searcher
	pathCells *pathCellCache

	// Commit-protocol effectiveness counters (see CommitStats): how
	// often the validate-then-commit found the quoted candidate stale,
	// how often CommitSlack triggered a re-probe, and how many commits
	// the re-probe salvaged.
	commitStale    atomic.Int64
	reprobes       atomic.Int64
	reprobeCommits atomic.Int64
}

// Config parameterises a Fleet.
type Config struct {
	// Capacity is the per-vehicle rider capacity (the demo's global
	// "taxi capacity" setting). Must be ≥ 1.
	Capacity int
	// MaxSchedulePoints caps pending stops per vehicle (≤ 2 requests per
	// point pair). Zero means 8.
	MaxSchedulePoints int
	// Seed drives the empty-vehicle random walk (each vehicle's roaming
	// RNG is derived from Seed and the vehicle id).
	Seed int64
	// Workers is Step's shard width: vehicles are partitioned into this
	// many stable shards (vehicle id modulo width) whose movement steps
	// run concurrently. ≤ 1 (and 0, the default) is the fully serial
	// reference step; the engine passes its resolved TickWorkers down.
	// The merged events are identical at every width, but widths > 1
	// require the metric to be safe for concurrent use.
	Workers int
	// ShardHist, when non-nil, observes each shard's per-Step wall time
	// in seconds (nil = telemetry off, no cost).
	ShardHist *telemetry.LatencyHist
}

// New returns an empty fleet over the given grid index. The metric is
// shared with the matching engine so kinetic trees and matchers see
// identical distances; it must be safe for concurrent use.
func New(grid *gridindex.Grid, lists *gridindex.VehicleLists, metric kinetic.Metric, cfg Config) (*Fleet, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("fleet: capacity %d < 1", cfg.Capacity)
	}
	mp := cfg.MaxSchedulePoints
	if mp == 0 {
		mp = 8
	}
	if mp < 2 {
		return nil, fmt.Errorf("fleet: MaxSchedulePoints %d < 2", mp)
	}
	if mp > 16 {
		// The kinetic quote encodes schedules as permutation words of
		// 4-bit point indices, and enumerating more than 16 points is
		// factorially infeasible anyway; reject rather than silently
		// narrow the configured capacity (kinetic.New would clamp).
		return nil, fmt.Errorf("fleet: MaxSchedulePoints %d > 16 (kinetic enumeration limit)", mp)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	f := &Fleet{
		g:         grid.Graph(),
		grid:      grid,
		lists:     lists,
		metric:    metric,
		capacity:  cfg.Capacity,
		maxPoints: mp,
		workers:   workers,
		shardHist: cfg.ShardHist,
		seed:      cfg.Seed,
		pathCells: newPathCellCache(1 << 16),
	}
	f.searchers.New = func() any { return roadnet.NewSearcher(grid.Graph()) }
	return f, nil
}

// AddVehicle places a new empty vehicle at loc and returns it. The
// grid registration happens before the vehicle becomes visible to
// snapshots, so a racing commit cannot have its PlaceNonEmpty
// registration overwritten by this initial PlaceEmpty.
func (f *Fleet) AddVehicle(loc roadnet.VertexID) *Vehicle {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := VehicleID(len(f.vehicles))
	src := NewCountedSource(vehicleSeed(f.seed, id))
	v := &Vehicle{
		ID:   id,
		Tree: kinetic.New(f.metric, f.capacity, f.maxPoints, loc, 0),
		rng:  rand.New(src),
		src:  src,
	}
	f.lists.PlaceEmpty(v.ID, f.grid.CellOf(loc))
	f.vehicles = append(f.vehicles, v)
	f.active++
	return v
}

// RemoveVehicle takes a vehicle out of service (failure injection). Its
// pending requests are cancelled and reported so the caller can re-issue
// them. Removing twice is an error.
func (f *Fleet) RemoveVehicle(id VehicleID) ([]kinetic.Request, error) {
	v, err := f.Vehicle(id)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	if v.removed {
		v.mu.Unlock()
		return nil, fmt.Errorf("fleet: vehicle %d already removed", id)
	}
	orphans := v.Tree.Requests()
	for _, r := range orphans {
		if err := v.Tree.Cancel(r.ID); err != nil {
			v.mu.Unlock()
			return nil, err
		}
	}
	v.removed = true
	v.mu.Unlock()
	f.mu.Lock()
	f.active--
	f.mu.Unlock()
	f.lists.Remove(id)
	return orphans, nil
}

// Vehicle returns vehicle id.
func (f *Fleet) Vehicle(id VehicleID) (*Vehicle, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if id < 0 || int(id) >= len(f.vehicles) {
		return nil, fmt.Errorf("fleet: unknown vehicle %d", id)
	}
	return f.vehicles[id], nil
}

// NumVehicles returns the number of vehicles ever added.
func (f *Fleet) NumVehicles() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.vehicles)
}

// Capacity returns the per-vehicle rider capacity.
func (f *Fleet) Capacity() int { return f.capacity }

// NumActive returns the number of in-service vehicles.
func (f *Fleet) NumActive() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.active
}

// Snapshot returns a copy of the vehicle slice in id order. Vehicles
// themselves are shared; use their locked accessors.
func (f *Fleet) Snapshot() []*Vehicle {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]*Vehicle(nil), f.vehicles...)
}

// Vehicles calls fn for every in-service vehicle, in id order.
func (f *Fleet) Vehicles(fn func(*Vehicle)) {
	for _, v := range f.Snapshot() {
		if !v.Removed() {
			fn(v)
		}
	}
}

// CheckInvariants verifies, under each vehicle's lock, that every
// in-service vehicle's schedule state is valid: onboard riders within
// capacity and at least one valid schedule whenever requests are
// pending (the kinetic tree stores only schedules meeting the
// capacity, order, waiting-time and service constraints, so a
// non-empty branch set certifies them all). Intended for tests after
// concurrent commit storms.
func (f *Fleet) CheckInvariants() error {
	for _, v := range f.Snapshot() {
		v.mu.Lock()
		removed := v.removed
		onboard := v.Tree.Onboard()
		pending := v.Tree.NumRequests()
		branches := v.Tree.NumBranches()
		v.mu.Unlock()
		if removed {
			continue
		}
		if onboard > f.capacity {
			return fmt.Errorf("fleet: vehicle %d carries %d riders, capacity %d", v.ID, onboard, f.capacity)
		}
		if pending > 0 && branches == 0 {
			return fmt.Errorf("fleet: vehicle %d has %d pending requests but no valid schedule", v.ID, pending)
		}
	}
	return nil
}

// CommitResult reports how a rider choice was committed.
type CommitResult struct {
	// Candidate is the schedule actually committed. It equals the
	// quoted candidate unless a re-probe replaced it.
	Candidate kinetic.Candidate
	// PlannedPickupOdo is the odometer reading promised for the pickup.
	PlannedPickupOdo float64
	// Reprobed reports that the quoted candidate had gone stale and an
	// equivalent fresh candidate within the slack was committed instead.
	Reprobed bool
}

// Commit assigns req to vehicle id with the planned schedule cand (from
// a quote against the same tree state) and refreshes the vehicle's grid
// registration. It is the commit half of the probe/commit protocol:
// under the vehicle's lock the candidate is validated against the
// current tree state; if it has gone stale (the vehicle moved or
// accepted other riders since the quote) and slack > 0, the request is
// re-probed and a fresh candidate within slack·SD metres of the quoted
// pick-up distance and detour is committed instead. slack ≤ 0 is
// strict: a stale candidate fails.
func (f *Fleet) Commit(id VehicleID, req kinetic.Request, cand kinetic.Candidate, slack float64) (CommitResult, error) {
	v, err := f.Vehicle(id)
	if err != nil {
		return CommitResult{}, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.removed {
		return CommitResult{}, fmt.Errorf("fleet: vehicle %d is out of service", id)
	}
	res := CommitResult{Candidate: cand}
	err = v.Tree.Commit(req, cand)
	if err != nil {
		f.commitStale.Add(1)
		if slack > 0 {
			f.reprobes.Add(1)
			if fresh := f.reprobe(v, req, cand, slack); fresh != nil {
				if err2 := v.Tree.Commit(req, *fresh); err2 == nil {
					res.Candidate = *fresh
					res.Reprobed = true
					f.reprobeCommits.Add(1)
					err = nil
				}
			}
		}
	}
	if err != nil {
		return CommitResult{}, err
	}
	if odo, ok := v.Tree.PlannedPickupOdo(req.ID); ok {
		res.PlannedPickupOdo = odo
	}
	f.registerLocked(v)
	return res, nil
}

// reprobe re-quotes req against the vehicle's current tree state (lock
// held) and returns the fresh candidate closest to the stale quote, or
// nil when none stays within the allowed slack on both the pick-up
// distance and the detour delta — the quoted terms must not silently
// degrade.
func (f *Fleet) reprobe(v *Vehicle, req kinetic.Request, cand kinetic.Candidate, slack float64) *kinetic.Candidate {
	allow := slack * req.SD
	var best *kinetic.Candidate
	for _, c := range v.Tree.Quote(req) {
		if c.PickupDist > cand.PickupDist+allow || c.Delta > cand.Delta+allow {
			continue
		}
		if best == nil || c.Delta < best.Delta ||
			(c.Delta == best.Delta && c.PickupDist < best.PickupDist) {
			cc := c
			best = &cc
		}
	}
	return best
}

// CommitStats reports the commit protocol's effectiveness counters:
// stale counts first commit attempts that found the quoted candidate
// invalidated (the probe-decline rate the ROADMAP's CommitSlack study
// needs), reprobes counts the re-probe attempts CommitSlack allowed,
// and salvaged counts the commits a re-probed candidate rescued. With
// slack 0, every stale commit is a decline; salvaged/stale is the
// fraction the slack converts into assignments.
func (f *Fleet) CommitStats() (stale, reprobes, salvaged int64) {
	return f.commitStale.Load(), f.reprobes.Load(), f.reprobeCommits.Load()
}

// Cancel releases a committed-but-not-yet-picked-up request from its
// vehicle and refreshes the grid registration — the compensation half
// of a two-phase relay commit (and the rider-cancellation primitive).
// A rider already onboard cannot be cancelled: the vehicle is
// physically carrying them, so the caller must let the trip complete.
func (f *Fleet) Cancel(id VehicleID, req kinetic.RequestID) error {
	v, err := f.Vehicle(id)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.removed {
		// RemoveVehicle already cancelled every pending request.
		return fmt.Errorf("fleet: vehicle %d is out of service", id)
	}
	onboard, pending := v.Tree.IsOnboard(req)
	if !pending {
		return fmt.Errorf("fleet: vehicle %d has no pending request %d", id, req)
	}
	if onboard {
		return fmt.Errorf("fleet: request %d is onboard vehicle %d, cannot cancel", req, id)
	}
	if err := v.Tree.Cancel(req); err != nil {
		return err
	}
	f.registerLocked(v)
	return nil
}

// registerLocked refreshes the vehicle's entry in the grid's vehicle
// lists. The caller holds v.mu.
func (f *Fleet) registerLocked(v *Vehicle) {
	if v.removed {
		return
	}
	if v.Tree.Empty() {
		f.lists.PlaceEmpty(v.ID, f.grid.CellOf(v.Tree.Root()))
		return
	}
	cells := make([]gridindex.CellID, 0, 8)
	for _, loc := range v.Tree.Locations() {
		cells = append(cells, f.grid.CellOf(loc))
	}
	// Cells along the driven branch's legs, so ring search discovers the
	// vehicle as early as the paper's all-edge registration would.
	prev := v.Tree.Root()
	for _, p := range v.Tree.BestBranch() {
		cells = append(cells, f.cellsAlong(prev, p.Loc)...)
		prev = p.Loc
	}
	f.lists.PlaceNonEmpty(v.ID, cells)
}

// cellsAlong returns the grid cells touched by the shortest path
// between two vertices, via the striped memoising cache.
func (f *Fleet) cellsAlong(u, v roadnet.VertexID) []gridindex.CellID {
	return f.pathCells.get(f, u, v)
}

// StepStats describes the most recent Step's sharded execution — the
// raw inputs of the engine's TickStats panel.
type StepStats struct {
	// Workers is the shard width the step actually ran with (the
	// configured width, clamped to the vehicle count).
	Workers int
	// Vehicles is the snapshot size stepped (removed vehicles cost one
	// lock acquisition and nothing else).
	Vehicles int
	// Events counts the pickups and dropoffs the step produced.
	Events int
	// WallNanos is the whole step's wall time; MaxShardNanos and
	// MinShardNanos bound the per-shard wall times, so their gap is the
	// step's shard skew (load imbalance across shards).
	WallNanos     int64
	MaxShardNanos int64
	MinShardNanos int64
}

// Step advances every in-service vehicle by the given distance budget
// (metres = speed × Δt), serving pickups and dropoffs en route. The
// vehicle population is partitioned into per-worker shards with a
// stable assignment — vehicle id modulo the configured Workers width —
// and the shards step concurrently; each vehicle is mutated under its
// own lock, so the probe/commit protocol is unchanged. The per-vehicle
// event slices are merged into the canonical deterministic order,
// vehicle id ascending then odometer ascending, which makes the serial
// (Workers 1) and parallel steps return identical events: roaming
// draws come from per-vehicle RNG streams, so no vehicle's trajectory
// depends on stepping order.
//
// A failing vehicle no longer aborts the remaining fleet mid-step:
// every other vehicle still moves, and the per-vehicle errors are
// aggregated with errors.Join in id order (deterministic message,
// errors.Is still reaches each cause). Concurrent Step calls are not
// serialised here; the engine's tick loop owns that.
func (f *Fleet) Step(budget float64) ([]Event, error) {
	f.mu.RLock()
	snap := append([]*Vehicle(nil), f.vehicles...)
	fault := f.stepFault
	f.mu.RUnlock()

	workers := f.workers
	if workers > len(snap) {
		workers = len(snap)
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now()
	perVehicle := make([][]Event, len(snap))
	perErr := make([]error, len(snap))
	shardNs := make([]int64, workers)
	stepOne := func(i int) {
		v := snap[i]
		if fault != nil {
			if err := fault(v.ID); err != nil {
				perErr[i] = fmt.Errorf("fleet: vehicle %d: %w", v.ID, err)
				return
			}
		}
		perVehicle[i], perErr[i] = f.stepVehicle(v, budget)
	}
	if workers == 1 {
		for i := range snap {
			stepOne(i)
		}
		shardNs[0] = time.Since(start).Nanoseconds()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				t0 := time.Now()
				for i := range snap {
					if int(snap[i].ID)%workers == w {
						stepOne(i)
					}
				}
				shardNs[w] = time.Since(t0).Nanoseconds()
			}(w)
		}
		wg.Wait()
	}

	// Canonical merge: the snapshot is id-ordered and each vehicle's
	// slice is odometer-ordered by construction, so concatenation in
	// snapshot order is the (vehicle id, odometer) order — the same
	// bytes the serial loop produces.
	total := 0
	for _, evs := range perVehicle {
		total += len(evs)
	}
	var events []Event
	if total > 0 {
		events = make([]Event, 0, total)
		for _, evs := range perVehicle {
			events = append(events, evs...)
		}
	}

	if f.shardHist != nil {
		for _, ns := range shardNs {
			f.shardHist.Observe(float64(ns) / 1e9)
		}
	}
	minNs, maxNs := shardNs[0], shardNs[0]
	for _, ns := range shardNs[1:] {
		if ns < minNs {
			minNs = ns
		}
		if ns > maxNs {
			maxNs = ns
		}
	}
	f.stepStatsMu.Lock()
	f.lastStep = StepStats{
		Workers:       workers,
		Vehicles:      len(snap),
		Events:        total,
		WallNanos:     time.Since(start).Nanoseconds(),
		MaxShardNanos: maxNs,
		MinShardNanos: minNs,
	}
	f.stepStatsMu.Unlock()
	return events, errors.Join(perErr...)
}

// StepStats returns the most recent Step's execution profile. A fleet
// that never stepped returns the zero value.
func (f *Fleet) StepStats() StepStats {
	f.stepStatsMu.Lock()
	defer f.stepStatsMu.Unlock()
	return f.lastStep
}

// Workers returns Step's resolved shard width.
func (f *Fleet) Workers() int { return f.workers }

// SetStepFault installs a per-vehicle fault injector consulted at the
// start of every vehicle's step: a non-nil return is recorded as that
// vehicle's step error and the vehicle does not move that step. A step
// failure is not reachable through the public API on a consistent
// fleet, so tests pinning Step's error-aggregation semantics inject
// one here. Passing nil restores normal stepping. Not part of the
// supported surface.
func (f *Fleet) SetStepFault(fn func(VehicleID) error) {
	f.mu.Lock()
	f.stepFault = fn
	f.mu.Unlock()
}

// StepVehicle advances a single vehicle (exposed for tests and for the
// simulator's failure injection).
func (f *Fleet) StepVehicle(id VehicleID, budget float64) ([]Event, error) {
	v, err := f.Vehicle(id)
	if err != nil {
		return nil, err
	}
	return f.stepVehicle(v, budget)
}

// stepVehicle holds the vehicle's lock for the whole step so the
// serve/drive loop sees a consistent tree; commits on this vehicle wait
// until the step completes.
func (f *Fleet) stepVehicle(v *Vehicle, budget float64) ([]Event, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.removed {
		return nil, nil
	}
	var events []Event
	for budget > 0 {
		if v.remainToRoot > 0 {
			if budget < v.remainToRoot {
				v.remainToRoot -= budget
				return events, nil
			}
			budget -= v.remainToRoot
			v.remainToRoot = 0
		}

		// Standing at the root vertex: serve every due stop here.
		served, evs, err := f.serveHereLocked(v)
		if err != nil {
			return events, err
		}
		events = append(events, evs...)
		if served {
			continue // tree changed; re-evaluate from the same vertex
		}

		// Choose the next edge.
		if v.Tree.Empty() {
			if !f.randomWalkStepLocked(v) {
				return events, nil // dead-end vertex; stay put
			}
			continue
		}
		bb := v.Tree.BestBranch()
		if len(bb) == 0 {
			return events, fmt.Errorf("fleet: vehicle %d has pending requests but no valid schedule", v.ID)
		}
		if err := f.driveTowardLocked(v, bb[0].Loc); err != nil {
			return events, err
		}
	}
	return events, nil
}

// serveHereLocked performs every pickup/dropoff whose turn has come at
// the vehicle's current vertex. It reports whether anything was served.
// The caller holds v.mu.
func (f *Fleet) serveHereLocked(v *Vehicle) (bool, []Event, error) {
	var events []Event
	served := false
	for !v.Tree.Empty() {
		bb := v.Tree.BestBranch()
		if len(bb) == 0 {
			return served, events, fmt.Errorf("fleet: vehicle %d has pending requests but no valid schedule", v.ID)
		}
		next := bb[0]
		if next.Loc != v.Tree.Root() {
			break
		}
		var err error
		var kind EventKind
		if next.Kind == kinetic.Pickup {
			err = v.Tree.Pickup(next.Req)
			kind = EventPickup
		} else {
			err = v.Tree.Dropoff(next.Req)
			kind = EventDropoff
		}
		if err != nil {
			return served, events, err
		}
		events = append(events, Event{Kind: kind, Vehicle: v.ID, Request: next.Req, Odo: v.Tree.Odometer()})
		served = true
	}
	if served {
		f.registerLocked(v)
	}
	return served, events, nil
}

// driveTowardLocked enters the first edge of the shortest path from the
// vehicle's vertex to target. The caller holds v.mu.
func (f *Fleet) driveTowardLocked(v *Vehicle, target roadnet.VertexID) error {
	if target == v.Tree.Root() {
		return fmt.Errorf("fleet: vehicle %d asked to drive to its own location", v.ID)
	}
	s := f.searchers.Get().(*roadnet.Searcher)
	path, _ := s.Path(v.Tree.Root(), target)
	f.searchers.Put(s)
	if path == nil {
		return fmt.Errorf("fleet: no path from %d to %d", v.Tree.Root(), target)
	}
	w, ok := f.g.EdgeWeight(path[0], path[1])
	if !ok {
		return fmt.Errorf("fleet: path step %d→%d is not an edge", path[0], path[1])
	}
	f.enterEdgeLocked(v, path[1], w)
	return nil
}

// randomWalkStepLocked makes an empty vehicle enter a uniformly random
// outgoing edge (the demo's roaming behaviour). It returns false at
// dead-end vertices. The draw comes from the vehicle's own RNG stream,
// so the walk is identical whatever order (or shard) the fleet steps
// vehicles in. The caller holds v.mu.
func (f *Fleet) randomWalkStepLocked(v *Vehicle) bool {
	out := f.g.Out(v.Tree.Root())
	if len(out) == 0 {
		return false
	}
	e := out[v.rng.Intn(len(out))]
	f.enterEdgeLocked(v, e.To, e.Weight)
	return true
}

// enterEdgeLocked commits the vehicle to traversing one edge: the tree
// root moves to the edge head (odometer pre-advanced by the edge
// weight) and the physical remainder is tracked in remainToRoot. The
// caller holds v.mu.
func (f *Fleet) enterEdgeLocked(v *Vehicle, head roadnet.VertexID, weight float64) {
	fromCell := f.grid.CellOf(v.Tree.Root())
	v.Tree.SetRoot(head, v.Tree.Odometer()+weight)
	// Zero-weight edges are legal in the graph model; give them a tiny
	// physical length so movement always consumes budget and cannot
	// spin on a zero-weight cycle.
	if weight <= 0 {
		weight = 1e-9
	}
	v.remainToRoot = weight
	if f.grid.CellOf(head) != fromCell {
		f.registerLocked(v) // crossed a cell boundary: refresh lists
	}
}

// pathCellStripes is the stripe count of the path-cell cache. Commits
// from many vehicles register schedules at once; 16 RWMutex-guarded
// stripes follow the distance memo's pattern and keep the cache off the
// commit path's critical section.
const pathCellStripes = 16

// pathCellCache memoises the grid cells touched by the shortest path
// between two vertices, striped by vertex pair so concurrent schedule
// registrations do not serialise. Each stripe is bounded: wholesale
// per-stripe reset once full, as in the distance memo. Cache-missing
// path computations run outside any stripe lock on a pooled searcher;
// two goroutines racing on the same cold pair both compute the same
// cells, so the second store is idempotent.
type pathCellCache struct {
	maxPerStripe int
	stripes      [pathCellStripes]pathCellStripe
}

type pathCellStripe struct {
	mu    sync.RWMutex
	cells map[[2]roadnet.VertexID][]gridindex.CellID
}

func newPathCellCache(max int) *pathCellCache {
	c := &pathCellCache{maxPerStripe: max / pathCellStripes}
	if c.maxPerStripe < 1 {
		c.maxPerStripe = 1
	}
	for i := range c.stripes {
		c.stripes[i].cells = make(map[[2]roadnet.VertexID][]gridindex.CellID, 1<<6)
	}
	return c
}

func (c *pathCellCache) stripe(u, v roadnet.VertexID) *pathCellStripe {
	h := uint64(uint32(u))*0x9e3779b1 ^ uint64(uint32(v))*0x85ebca77
	return &c.stripes[h%pathCellStripes]
}

func (c *pathCellCache) get(f *Fleet, u, v roadnet.VertexID) []gridindex.CellID {
	key := [2]roadnet.VertexID{u, v}
	st := c.stripe(u, v)
	st.mu.RLock()
	cs, ok := st.cells[key]
	st.mu.RUnlock()
	if ok {
		return cs
	}
	s := f.searchers.Get().(*roadnet.Searcher)
	path, _ := s.Path(u, v)
	f.searchers.Put(s)
	var out []gridindex.CellID
	var last gridindex.CellID = gridindex.NoCell
	for _, x := range path {
		if cl := f.grid.CellOf(x); cl != last {
			out = append(out, cl)
			last = cl
		}
	}
	st.mu.Lock()
	if len(st.cells) >= c.maxPerStripe {
		st.cells = make(map[[2]roadnet.VertexID][]gridindex.CellID, 1<<6)
	}
	st.cells[key] = out
	st.mu.Unlock()
	return out
}
