// Package fleet manages PTRider's vehicles (paper §3.2.2 and §4): per
// vehicle the identifier, current location, the set of unfinished
// requests and the kinetic tree of valid trip schedules, plus the two
// behaviours the demo describes — vehicles follow their planned
// schedule while serving riders and roam the road network randomly
// (choosing a random segment at every intersection) when empty.
//
// The fleet also keeps the grid index's dynamic vehicle lists current:
// empty vehicles are listed in the cell of their current location;
// non-empty vehicles are listed in every cell their planned schedule
// touches (their stop locations plus the driven branch's path cells).
// Registering stop cells is what single-/dual-side search correctness
// relies on — a vehicle undiscovered at ring radius L is guaranteed to
// have every schedule point at distance ≥ L (see DESIGN.md §3.3); the
// driven path's cells are registered additionally so vehicles are
// discovered earlier. (The paper registers every kinetic-tree edge; the
// stop-set registration is the subset that carries the correctness
// argument.)
//
// Movement model: a vehicle is always driving toward (or standing at)
// its tree root vertex, with RemainToRoot metres left on the current
// edge. Once an edge is entered it is always completed; plans change
// only at vertices. The odometer stored in the kinetic tree is the
// reading at arrival at the root vertex, so every budget the tree
// checks is consistent with the distance actually driven.
//
// Fleet is not safe for concurrent use; the engine serialises access.
package fleet

import (
	"fmt"
	"math/rand"

	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
)

// VehicleID identifies a vehicle. IDs are dense indices assigned by
// AddVehicle.
type VehicleID = gridindex.VehicleID

// EventKind classifies fleet events.
type EventKind uint8

// Event kinds.
const (
	EventPickup EventKind = iota
	EventDropoff
)

func (k EventKind) String() string {
	if k == EventPickup {
		return "pickup"
	}
	return "dropoff"
}

// Event records a pickup or dropoff that happened during Step.
type Event struct {
	Kind    EventKind
	Vehicle VehicleID
	Request kinetic.RequestID
	// Odo is the vehicle's odometer at the event.
	Odo float64
}

// Vehicle is one taxi: its schedule tree plus movement state.
type Vehicle struct {
	ID   VehicleID
	Tree *kinetic.Tree

	// remainToRoot is the distance left on the current edge before the
	// vehicle reaches its tree root vertex; zero when standing there.
	remainToRoot float64
	// removed marks vehicles taken out of service.
	removed bool
}

// Loc returns the vertex the vehicle is at or driving toward — the
// position all matching is computed from.
func (v *Vehicle) Loc() roadnet.VertexID { return v.Tree.Root() }

// Odometer returns the odometer reading at arrival at Loc.
func (v *Vehicle) Odometer() float64 { return v.Tree.Odometer() }

// RemainToRoot returns the metres left before the vehicle reaches Loc.
// The engine adds it to every quoted pick-up distance when converting
// to time, since matching measures from Loc.
func (v *Vehicle) RemainToRoot() float64 { return v.remainToRoot }

// Removed reports whether the vehicle has been taken out of service.
func (v *Vehicle) Removed() bool { return v.removed }

// Fleet owns all vehicles and their grid registration.
type Fleet struct {
	g      *roadnet.Graph
	grid   *gridindex.Grid
	lists  *gridindex.VehicleLists
	metric kinetic.Metric

	capacity  int
	maxPoints int

	vehicles []*Vehicle
	active   int

	searcher *roadnet.Searcher
	rng      *rand.Rand

	pathCells *pathCellCache
}

// Config parameterises a Fleet.
type Config struct {
	// Capacity is the per-vehicle rider capacity (the demo's global
	// "taxi capacity" setting). Must be ≥ 1.
	Capacity int
	// MaxSchedulePoints caps pending stops per vehicle (≤ 2 requests per
	// point pair). Zero means 8.
	MaxSchedulePoints int
	// Seed drives the empty-vehicle random walk.
	Seed int64
}

// New returns an empty fleet over the given grid index. The metric is
// shared with the matching engine so kinetic trees and matchers see
// identical distances.
func New(grid *gridindex.Grid, lists *gridindex.VehicleLists, metric kinetic.Metric, cfg Config) (*Fleet, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("fleet: capacity %d < 1", cfg.Capacity)
	}
	mp := cfg.MaxSchedulePoints
	if mp == 0 {
		mp = 8
	}
	if mp < 2 {
		return nil, fmt.Errorf("fleet: MaxSchedulePoints %d < 2", mp)
	}
	return &Fleet{
		g:         grid.Graph(),
		grid:      grid,
		lists:     lists,
		metric:    metric,
		capacity:  cfg.Capacity,
		maxPoints: mp,
		searcher:  roadnet.NewSearcher(grid.Graph()),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		pathCells: newPathCellCache(1 << 16),
	}, nil
}

// AddVehicle places a new empty vehicle at loc and returns it.
func (f *Fleet) AddVehicle(loc roadnet.VertexID) *Vehicle {
	v := &Vehicle{
		ID:   VehicleID(len(f.vehicles)),
		Tree: kinetic.New(f.metric, f.capacity, f.maxPoints, loc, 0),
	}
	f.vehicles = append(f.vehicles, v)
	f.active++
	f.lists.PlaceEmpty(v.ID, f.grid.CellOf(loc))
	return v
}

// RemoveVehicle takes a vehicle out of service (failure injection). Its
// pending requests are cancelled and reported so the caller can re-issue
// them. Removing twice is an error.
func (f *Fleet) RemoveVehicle(id VehicleID) ([]kinetic.Request, error) {
	v, err := f.Vehicle(id)
	if err != nil {
		return nil, err
	}
	if v.removed {
		return nil, fmt.Errorf("fleet: vehicle %d already removed", id)
	}
	orphans := v.Tree.Requests()
	for _, r := range orphans {
		if err := v.Tree.Cancel(r.ID); err != nil {
			return nil, err
		}
	}
	v.removed = true
	f.active--
	f.lists.Remove(id)
	return orphans, nil
}

// Vehicle returns vehicle id.
func (f *Fleet) Vehicle(id VehicleID) (*Vehicle, error) {
	if id < 0 || int(id) >= len(f.vehicles) {
		return nil, fmt.Errorf("fleet: unknown vehicle %d", id)
	}
	return f.vehicles[id], nil
}

// NumVehicles returns the number of vehicles ever added.
func (f *Fleet) NumVehicles() int { return len(f.vehicles) }

// Capacity returns the per-vehicle rider capacity.
func (f *Fleet) Capacity() int { return f.capacity }

// NumActive returns the number of in-service vehicles.
func (f *Fleet) NumActive() int { return f.active }

// Vehicles calls fn for every in-service vehicle.
func (f *Fleet) Vehicles(fn func(*Vehicle)) {
	for _, v := range f.vehicles {
		if !v.removed {
			fn(v)
		}
	}
}

// Commit assigns req to vehicle id with the planned schedule cand (from
// a quote against the same tree state) and refreshes the vehicle's grid
// registration.
func (f *Fleet) Commit(id VehicleID, req kinetic.Request, cand kinetic.Candidate) error {
	v, err := f.Vehicle(id)
	if err != nil {
		return err
	}
	if v.removed {
		return fmt.Errorf("fleet: vehicle %d is out of service", id)
	}
	if err := v.Tree.Commit(req, cand); err != nil {
		return err
	}
	f.register(v)
	return nil
}

// register refreshes the vehicle's entry in the grid's vehicle lists.
func (f *Fleet) register(v *Vehicle) {
	if v.removed {
		return
	}
	if v.Tree.Empty() {
		f.lists.PlaceEmpty(v.ID, f.grid.CellOf(v.Loc()))
		return
	}
	cells := make([]gridindex.CellID, 0, 8)
	for _, loc := range v.Tree.Locations() {
		cells = append(cells, f.grid.CellOf(loc))
	}
	// Cells along the driven branch's legs, so ring search discovers the
	// vehicle as early as the paper's all-edge registration would.
	prev := v.Loc()
	for _, p := range v.Tree.BestBranch() {
		cells = append(cells, f.pathCells.get(f, prev, p.Loc)...)
		prev = p.Loc
	}
	f.lists.PlaceNonEmpty(v.ID, cells)
}

// Step advances every in-service vehicle by the given distance budget
// (metres = speed × Δt), serving pickups and dropoffs en route, and
// returns the events in execution order.
func (f *Fleet) Step(budget float64) ([]Event, error) {
	var events []Event
	for _, v := range f.vehicles {
		if v.removed {
			continue
		}
		ev, err := f.stepVehicle(v, budget)
		if err != nil {
			return events, err
		}
		events = append(events, ev...)
	}
	return events, nil
}

// StepVehicle advances a single vehicle (exposed for tests and for the
// simulator's failure injection).
func (f *Fleet) StepVehicle(id VehicleID, budget float64) ([]Event, error) {
	v, err := f.Vehicle(id)
	if err != nil {
		return nil, err
	}
	return f.stepVehicle(v, budget)
}

func (f *Fleet) stepVehicle(v *Vehicle, budget float64) ([]Event, error) {
	var events []Event
	for budget > 0 {
		if v.remainToRoot > 0 {
			if budget < v.remainToRoot {
				v.remainToRoot -= budget
				return events, nil
			}
			budget -= v.remainToRoot
			v.remainToRoot = 0
		}

		// Standing at the root vertex: serve every due stop here.
		served, evs, err := f.serveHere(v)
		if err != nil {
			return events, err
		}
		events = append(events, evs...)
		if served {
			continue // tree changed; re-evaluate from the same vertex
		}

		// Choose the next edge.
		if v.Tree.Empty() {
			if !f.randomWalkStep(v) {
				return events, nil // dead-end vertex; stay put
			}
			continue
		}
		bb := v.Tree.BestBranch()
		if len(bb) == 0 {
			return events, fmt.Errorf("fleet: vehicle %d has pending requests but no valid schedule", v.ID)
		}
		if err := f.driveToward(v, bb[0].Loc); err != nil {
			return events, err
		}
	}
	return events, nil
}

// serveHere performs every pickup/dropoff whose turn has come at the
// vehicle's current vertex. It reports whether anything was served.
func (f *Fleet) serveHere(v *Vehicle) (bool, []Event, error) {
	var events []Event
	served := false
	for !v.Tree.Empty() {
		bb := v.Tree.BestBranch()
		if len(bb) == 0 {
			return served, events, fmt.Errorf("fleet: vehicle %d has pending requests but no valid schedule", v.ID)
		}
		next := bb[0]
		if next.Loc != v.Loc() {
			break
		}
		var err error
		var kind EventKind
		if next.Kind == kinetic.Pickup {
			err = v.Tree.Pickup(next.Req)
			kind = EventPickup
		} else {
			err = v.Tree.Dropoff(next.Req)
			kind = EventDropoff
		}
		if err != nil {
			return served, events, err
		}
		events = append(events, Event{Kind: kind, Vehicle: v.ID, Request: next.Req, Odo: v.Odometer()})
		served = true
	}
	if served {
		f.register(v)
	}
	return served, events, nil
}

// driveToward enters the first edge of the shortest path from the
// vehicle's vertex to target.
func (f *Fleet) driveToward(v *Vehicle, target roadnet.VertexID) error {
	if target == v.Loc() {
		return fmt.Errorf("fleet: vehicle %d asked to drive to its own location", v.ID)
	}
	path, _ := f.searcher.Path(v.Loc(), target)
	if path == nil {
		return fmt.Errorf("fleet: no path from %d to %d", v.Loc(), target)
	}
	w, ok := f.g.EdgeWeight(path[0], path[1])
	if !ok {
		return fmt.Errorf("fleet: path step %d→%d is not an edge", path[0], path[1])
	}
	f.enterEdge(v, path[1], w)
	return nil
}

// randomWalkStep makes an empty vehicle enter a uniformly random
// outgoing edge (the demo's roaming behaviour). It returns false at
// dead-end vertices.
func (f *Fleet) randomWalkStep(v *Vehicle) bool {
	out := f.g.Out(v.Loc())
	if len(out) == 0 {
		return false
	}
	e := out[f.rng.Intn(len(out))]
	f.enterEdge(v, e.To, e.Weight)
	return true
}

// enterEdge commits the vehicle to traversing one edge: the tree root
// moves to the edge head (odometer pre-advanced by the edge weight) and
// the physical remainder is tracked in remainToRoot.
func (f *Fleet) enterEdge(v *Vehicle, head roadnet.VertexID, weight float64) {
	fromCell := f.grid.CellOf(v.Loc())
	v.Tree.SetRoot(head, v.Odometer()+weight)
	// Zero-weight edges are legal in the graph model; give them a tiny
	// physical length so movement always consumes budget and cannot
	// spin on a zero-weight cycle.
	if weight <= 0 {
		weight = 1e-9
	}
	v.remainToRoot = weight
	if f.grid.CellOf(head) != fromCell {
		f.register(v) // crossed a cell boundary: refresh lists
	}
}

// pathCellCache memoises the grid cells touched by the shortest path
// between two vertices. Bounded: wholesale reset once full.
type pathCellCache struct {
	max   int
	cells map[[2]roadnet.VertexID][]gridindex.CellID
}

func newPathCellCache(max int) *pathCellCache {
	return &pathCellCache{max: max, cells: make(map[[2]roadnet.VertexID][]gridindex.CellID)}
}

func (c *pathCellCache) get(f *Fleet, u, v roadnet.VertexID) []gridindex.CellID {
	key := [2]roadnet.VertexID{u, v}
	if cs, ok := c.cells[key]; ok {
		return cs
	}
	path, _ := f.searcher.Path(u, v)
	var out []gridindex.CellID
	var last gridindex.CellID = gridindex.NoCell
	for _, x := range path {
		if cl := f.grid.CellOf(x); cl != last {
			out = append(out, cl)
			last = cl
		}
	}
	if len(c.cells) >= c.max {
		c.cells = make(map[[2]roadnet.VertexID][]gridindex.CellID)
	}
	c.cells[key] = out
	return out
}
