package fleet

import (
	"fmt"
	"math/rand"

	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
)

// This file is the durability surface of the fleet: exporting vehicle
// state for snapshots and rebuilding an identical fleet on recovery.
//
// The subtle part is the roaming RNG. Go's rand.Rand derives bounded
// draws (Intn) by rejection sampling, so the number of *calls* a walk
// makes is not the number of *state steps* the underlying source takes
// — replaying calls would desynchronise the stream. CountedSource
// therefore counts at the rand.Source64 level, where every Int63 or
// Uint64 is exactly one generator state step, and restore re-seeds the
// source and burns that many raw steps. The wrapper is a pure
// pass-through, so a wrapped source draws the identical sequence an
// unwrapped one would — existing trajectories and goldens are
// unaffected.

// CountedSource is a rand.Source64 that counts generator state steps,
// so a snapshot can record the stream position and a restore can
// fast-forward a freshly seeded source to it.
type CountedSource struct {
	src  rand.Source64
	seed int64
	n    uint64
}

// NewCountedSource returns a counted source over the standard
// generator seeded with seed.
func NewCountedSource(seed int64) *CountedSource {
	return &CountedSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source: one generator state step.
func (s *CountedSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64: one generator state step.
func (s *CountedSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the step count.
func (s *CountedSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.n = 0
}

// Draws returns the number of state steps taken since seeding.
func (s *CountedSource) Draws() uint64 { return s.n }

// Burn advances the source by n raw state steps — the restore-side
// inverse of Draws.
func (s *CountedSource) Burn(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.n += n
}

// vehicleSeed derives vehicle id's roaming seed from the fleet seed.
// Golden-ratio mixing keeps neighbouring ids' streams apart; the
// derivation is a pure function of (fleet seed, id) so a rebuilt fleet
// roams identically.
func vehicleSeed(fleetSeed int64, id VehicleID) int64 {
	return int64(uint64(fleetSeed) ^ (uint64(id)+1)*0x9E3779B97F4A7C15)
}

// VehicleState is the serialisable state of one vehicle: movement,
// roaming-stream position, and the kinetic tree's commitments.
type VehicleState struct {
	ID           VehicleID             `json:"id"`
	Loc          roadnet.VertexID      `json:"loc"`
	Odo          float64               `json:"odo"`
	RemainToRoot float64               `json:"remain_to_root"`
	Removed      bool                  `json:"removed,omitempty"`
	RandDraws    uint64                `json:"rand_draws"`
	Reqs         []kinetic.ReqSnapshot `json:"reqs,omitempty"`
}

// SnapshotState exports every vehicle's state in id order, each read
// under its own lock. Vehicles keep moving between two vehicles'
// reads; the engine serialises snapshots against ticks, which is the
// consistency the WAL contract needs.
func (f *Fleet) SnapshotState() []VehicleState {
	snap := f.Snapshot()
	out := make([]VehicleState, len(snap))
	for i, v := range snap {
		v.mu.Lock()
		out[i] = VehicleState{
			ID:           v.ID,
			Loc:          v.Tree.Root(),
			Odo:          v.Tree.Odometer(),
			RemainToRoot: v.remainToRoot,
			Removed:      v.removed,
			RandDraws:    v.src.Draws(),
			Reqs:         v.Tree.SnapshotReqs(),
		}
		v.mu.Unlock()
	}
	return out
}

// RestoreState rebuilds the vehicle population from a snapshot. The
// fleet must be freshly constructed (no vehicles). States must be in
// dense id order — the order SnapshotState produces — because vehicle
// ids are slice indices. Roaming streams are re-seeded from the fleet
// seed and fast-forwarded to their snapshot positions, so the restored
// walk continues exactly where the crashed one left off.
func (f *Fleet) RestoreState(states []VehicleState) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.vehicles) != 0 {
		return fmt.Errorf("fleet: restore into non-empty fleet (%d vehicles)", len(f.vehicles))
	}
	for i, st := range states {
		if st.ID != VehicleID(i) {
			return fmt.Errorf("fleet: restore state %d has id %d (states must be dense and ordered)", i, st.ID)
		}
		src := NewCountedSource(vehicleSeed(f.seed, st.ID))
		src.Burn(st.RandDraws)
		v := &Vehicle{
			ID:           st.ID,
			Tree:         kinetic.Restore(f.metric, f.capacity, f.maxPoints, st.Loc, st.Odo, st.Reqs),
			remainToRoot: st.RemainToRoot,
			removed:      st.Removed,
			src:          src,
			rng:          rand.New(src),
		}
		if !st.Removed {
			f.active++
			f.registerLocked(v)
		}
		f.vehicles = append(f.vehicles, v)
	}
	return nil
}

// RestoreCommit re-applies a journaled commit during replay: the
// candidate and waiting-time anchor come from the journal, bypassing
// the stale-candidate validation (the journal only holds commits that
// succeeded live). The grid registration is refreshed like Commit's.
func (f *Fleet) RestoreCommit(id VehicleID, req kinetic.Request, plannedPickupOdo float64) error {
	v, err := f.Vehicle(id)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.removed {
		return fmt.Errorf("fleet: vehicle %d is out of service", id)
	}
	if err := v.Tree.RestoreCommit(req, plannedPickupOdo); err != nil {
		return err
	}
	f.registerLocked(v)
	return nil
}
