package fleet_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// gridMetric is the searcher+grid metric the engine uses, reimplemented
// minimally for fleet tests.
type gridMetric struct {
	s    *roadnet.Searcher
	grid *gridindex.Grid
}

func (m *gridMetric) Dist(u, v roadnet.VertexID) float64 { return m.s.Dist(u, v) }
func (m *gridMetric) LB(u, v roadnet.VertexID) float64   { return m.grid.LB(u, v) }

type world struct {
	g     *roadnet.Graph
	grid  *gridindex.Grid
	lists *gridindex.VehicleLists
	fl    *fleet.Fleet
	s     *roadnet.Searcher
}

func newWorld(t *testing.T, seed int64, capacity int) *world {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(seed)), 8, 8, 100)
	grid, err := gridindex.Build(g, gridindex.Config{Cols: 4, Rows: 4})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	lists := gridindex.NewVehicleLists(grid.NumCells())
	m := &gridMetric{s: roadnet.NewSearcher(g), grid: grid}
	fl, err := fleet.New(grid, lists, m, fleet.Config{Capacity: capacity, Seed: seed})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	return &world{g: g, grid: grid, lists: lists, fl: fl, s: roadnet.NewSearcher(g)}
}

func (w *world) request(t *testing.T, id kinetic.RequestID, s, d roadnet.VertexID, riders int, sigma, wait float64) kinetic.Request {
	t.Helper()
	sd := w.s.Dist(s, d)
	if math.IsInf(sd, 1) {
		t.Fatalf("request %d endpoints disconnected", id)
	}
	return kinetic.Request{
		ID: id, S: s, D: d, Riders: riders,
		SD: sd, ServiceLimit: (1 + sigma) * sd, WaitBudget: wait,
	}
}

func TestConfigValidation(t *testing.T) {
	w := newWorld(t, 1, 4)
	if _, err := fleet.New(w.grid, w.lists, &gridMetric{s: w.s, grid: w.grid}, fleet.Config{Capacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := fleet.New(w.grid, w.lists, &gridMetric{s: w.s, grid: w.grid}, fleet.Config{Capacity: 2, MaxSchedulePoints: 1}); err == nil {
		t.Error("MaxSchedulePoints 1 accepted")
	}
}

func TestAddVehicleRegistersEmpty(t *testing.T) {
	w := newWorld(t, 2, 4)
	v := w.fl.AddVehicle(10)
	if v.Loc() != 10 || v.Odometer() != 0 || v.RemainToRoot() != 0 {
		t.Fatalf("fresh vehicle state: loc=%d odo=%v remain=%v", v.Loc(), v.Odometer(), v.RemainToRoot())
	}
	cell := w.grid.CellOf(10)
	found := false
	for _, id := range w.lists.Empty(cell) {
		if id == v.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("vehicle not in its cell's empty list")
	}
	if w.fl.NumVehicles() != 1 || w.fl.NumActive() != 1 {
		t.Fatal("fleet counters wrong")
	}
}

func TestRandomWalkMovesAndKeepsRegistration(t *testing.T) {
	w := newWorld(t, 3, 4)
	v := w.fl.AddVehicle(0)
	for i := 0; i < 50; i++ {
		if _, err := w.fl.Step(150); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// The empty vehicle must always be registered exactly in the
		// cell of its current target vertex.
		empty, reg := w.lists.IsEmptyVehicle(v.ID)
		if !empty || !reg {
			t.Fatalf("step %d: vehicle not registered empty", i)
		}
		cells := w.lists.Cells(v.ID)
		if len(cells) != 1 || cells[0] != w.grid.CellOf(v.Loc()) {
			t.Fatalf("step %d: registered in %v, located in %d", i, cells, w.grid.CellOf(v.Loc()))
		}
	}
	if v.Odometer() == 0 {
		t.Fatal("random walk never moved the vehicle")
	}
}

func TestCommitDriveServeLifecycle(t *testing.T) {
	w := newWorld(t, 4, 4)
	v := w.fl.AddVehicle(0)
	req := w.request(t, 1, 27, 45, 2, 0.5, 1e6)
	cands := v.Tree.Quote(req)
	if len(cands) == 0 {
		t.Fatal("no candidates for a fresh vehicle")
	}
	if _, err := w.fl.Commit(v.ID, req, cands[0], 0); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if e, _ := w.lists.IsEmptyVehicle(v.ID); e {
		t.Fatal("committed vehicle still in empty lists")
	}
	// Stop cells must be registered.
	regged := map[gridindex.CellID]bool{}
	for _, c := range w.lists.Cells(v.ID) {
		regged[c] = true
	}
	for _, loc := range []roadnet.VertexID{v.Loc(), 27, 45} {
		if !regged[w.grid.CellOf(loc)] {
			t.Fatalf("stop cell %d not registered (cells %v)", w.grid.CellOf(loc), w.lists.Cells(v.ID))
		}
	}

	// Drive until both events fire.
	var events []fleet.Event
	for i := 0; i < 200 && len(events) < 2; i++ {
		evs, err := w.fl.Step(100)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		events = append(events, evs...)
	}
	if len(events) != 2 {
		t.Fatalf("events = %+v, want pickup then dropoff", events)
	}
	if events[0].Kind != fleet.EventPickup || events[0].Request != 1 {
		t.Fatalf("first event %+v", events[0])
	}
	if events[1].Kind != fleet.EventDropoff || events[1].Request != 1 {
		t.Fatalf("second event %+v", events[1])
	}
	if events[1].Odo < events[0].Odo {
		t.Fatal("dropoff odometer before pickup")
	}
	if !v.Tree.Empty() {
		t.Fatal("vehicle should be empty after dropoff")
	}
	if e, reg := w.lists.IsEmptyVehicle(v.ID); !e || !reg {
		t.Fatal("vehicle should be back in the empty lists")
	}
}

// TestServiceConstraintHolds drives a two-request schedule to completion
// and asserts Definition 2's waiting and service constraints from the
// recorded events.
func TestServiceConstraintHolds(t *testing.T) {
	w := newWorld(t, 5, 4)
	v := w.fl.AddVehicle(0)
	r1 := w.request(t, 1, 18, 60, 1, 0.6, 1e6)
	c1 := v.Tree.Quote(r1)
	if _, err := w.fl.Commit(v.ID, r1, c1[0], 0); err != nil {
		t.Fatalf("commit r1: %v", err)
	}
	r2 := w.request(t, 2, 19, 61, 1, 0.6, 1e6)
	c2 := v.Tree.Quote(r2)
	if len(c2) == 0 {
		t.Skip("no shared schedule on this topology/seed")
	}
	if _, err := w.fl.Commit(v.ID, r2, c2[0], 0); err != nil {
		t.Fatalf("commit r2: %v", err)
	}

	pickOdo := map[kinetic.RequestID]float64{}
	dropOdo := map[kinetic.RequestID]float64{}
	for i := 0; i < 500 && len(dropOdo) < 2; i++ {
		evs, err := w.fl.Step(100)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		for _, e := range evs {
			if e.Kind == fleet.EventPickup {
				pickOdo[e.Request] = e.Odo
			} else {
				dropOdo[e.Request] = e.Odo
			}
		}
	}
	if len(dropOdo) != 2 {
		t.Fatalf("not all requests completed: picks=%v drops=%v", pickOdo, dropOdo)
	}
	for _, r := range []kinetic.Request{r1, r2} {
		inVehicle := dropOdo[r.ID] - pickOdo[r.ID]
		if inVehicle > r.ServiceLimit+1e-6 {
			t.Errorf("request %d in-vehicle distance %v exceeds limit %v", r.ID, inVehicle, r.ServiceLimit)
		}
		if inVehicle < r.SD-1e-6 {
			t.Errorf("request %d in-vehicle distance %v below direct distance %v", r.ID, inVehicle, r.SD)
		}
	}
}

func TestWaitingConstraintHolds(t *testing.T) {
	w := newWorld(t, 6, 4)
	v := w.fl.AddVehicle(0)
	req := w.request(t, 1, 36, 50, 1, 0.4, 200)
	cands := v.Tree.Quote(req)
	if _, err := w.fl.Commit(v.ID, req, cands[0], 0); err != nil {
		t.Fatalf("commit: %v", err)
	}
	planned := cands[0].PickupDist
	var pickup *fleet.Event
	for i := 0; i < 300 && pickup == nil; i++ {
		evs, err := w.fl.Step(100)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		for i := range evs {
			if evs[i].Kind == fleet.EventPickup {
				pickup = &evs[i]
			}
		}
	}
	if pickup == nil {
		t.Fatal("pickup never happened")
	}
	if pickup.Odo > planned+200+1e-6 {
		t.Fatalf("actual pickup odometer %v exceeds planned %v + wait budget 200", pickup.Odo, planned)
	}
}

func TestRemoveVehicle(t *testing.T) {
	w := newWorld(t, 7, 4)
	v := w.fl.AddVehicle(0)
	req := w.request(t, 1, 27, 45, 1, 0.5, 1e6)
	w.fl.Commit(v.ID, req, v.Tree.Quote(req)[0], 0)

	orphans, err := w.fl.RemoveVehicle(v.ID)
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	if len(orphans) != 1 || orphans[0].ID != 1 {
		t.Fatalf("orphans = %+v", orphans)
	}
	if w.fl.NumActive() != 0 {
		t.Fatal("active count not decremented")
	}
	if _, reg := w.lists.IsEmptyVehicle(v.ID); reg {
		t.Fatal("removed vehicle still registered")
	}
	if _, err := w.fl.RemoveVehicle(v.ID); err == nil {
		t.Fatal("double removal should fail")
	}
	if _, err := w.fl.Commit(v.ID, req, kinetic.Candidate{}, 0); err == nil {
		t.Fatal("commit to removed vehicle should fail")
	}
	// Stepping must skip it.
	if _, err := w.fl.Step(100); err != nil {
		t.Fatalf("step after removal: %v", err)
	}
}

func TestStepConsumesExactBudget(t *testing.T) {
	w := newWorld(t, 8, 4)
	v := w.fl.AddVehicle(0)
	req := w.request(t, 1, 27, 45, 1, 0.5, 1e6)
	w.fl.Commit(v.ID, req, v.Tree.Quote(req)[0], 0)

	// Odometer-at-root minus remainToRoot equals true distance driven;
	// it must advance by exactly the budget while en route.
	driven := func() float64 { return v.Odometer() - v.RemainToRoot() }
	before := driven()
	if _, err := w.fl.Step(75); err != nil {
		t.Fatalf("step: %v", err)
	}
	after := driven()
	if math.Abs((after-before)-75) > 1e-6 {
		t.Fatalf("driven %v metres, want 75", after-before)
	}
}

func TestManyVehiclesManyRequestsInvariant(t *testing.T) {
	w := newWorld(t, 9, 3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 12; i++ {
		w.fl.AddVehicle(roadnet.VertexID(rng.Intn(w.g.NumVertices())))
	}
	nextID := kinetic.RequestID(1)
	picked := map[kinetic.RequestID]float64{}
	completed := 0
	for tick := 0; tick < 400; tick++ {
		// Occasionally add a request to a random vehicle that can take it.
		if rng.Intn(4) == 0 {
			s := roadnet.VertexID(rng.Intn(w.g.NumVertices()))
			d := roadnet.VertexID(rng.Intn(w.g.NumVertices()))
			if s != d {
				req := w.request(t, nextID, s, d, 1+rng.Intn(2), 0.5, 400)
				vid := fleet.VehicleID(rng.Intn(w.fl.NumVehicles()))
				veh, _ := w.fl.Vehicle(vid)
				if cands := veh.Tree.Quote(req); len(cands) > 0 {
					if _, err := w.fl.Commit(vid, req, cands[rng.Intn(len(cands))], 0); err != nil {
						t.Fatalf("tick %d: commit: %v", tick, err)
					}
					nextID++
				}
			}
		}
		evs, err := w.fl.Step(60)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		for _, e := range evs {
			switch e.Kind {
			case fleet.EventPickup:
				picked[e.Request] = e.Odo
			case fleet.EventDropoff:
				if _, ok := picked[e.Request]; !ok {
					t.Fatalf("dropoff before pickup for request %d", e.Request)
				}
				completed++
			}
		}
		// Capacity invariant across the fleet.
		w.fl.Vehicles(func(v *fleet.Vehicle) {
			if v.Tree.Onboard() > 3 {
				t.Fatalf("tick %d: vehicle %d over capacity: %d riders", tick, v.ID, v.Tree.Onboard())
			}
		})
	}
	if completed == 0 {
		t.Fatal("no request completed in 400 ticks")
	}
}

// TestStepAggregatesVehicleErrors pins the error-join semantics of the
// sharded step: a failing vehicle must not abort the remaining fleet
// mid-step (the old behavior returned on the first error, silently
// freezing every later vehicle for the tick), and every failure must
// surface through the joined error.
func TestStepAggregatesVehicleErrors(t *testing.T) {
	w := newWorld(t, 7, 2)
	for i := 0; i < 4; i++ {
		w.fl.AddVehicle(roadnet.VertexID(i))
	}

	bad1 := errors.New("fault one")
	bad2 := errors.New("fault two")
	w.fl.SetStepFault(func(id fleet.VehicleID) error {
		switch id {
		case 1:
			return bad1
		case 2:
			return bad2
		}
		return nil
	})

	odoBefore := make(map[fleet.VehicleID]float64)
	w.fl.Vehicles(func(v *fleet.Vehicle) { odoBefore[v.ID] = v.Odometer() })

	_, err := w.fl.Step(300)
	if err == nil {
		t.Fatal("Step with two faulted vehicles returned nil error")
	}
	if !errors.Is(err, bad1) || !errors.Is(err, bad2) {
		t.Fatalf("joined error %v does not contain both faults", err)
	}
	for _, want := range []string{"vehicle 1", "vehicle 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}

	w.fl.Vehicles(func(v *fleet.Vehicle) {
		moved := v.Odometer() > odoBefore[v.ID]
		faulted := v.ID == 1 || v.ID == 2
		if faulted && moved {
			t.Fatalf("faulted vehicle %d advanced its odometer", v.ID)
		}
		if !faulted && !moved {
			t.Fatalf("healthy vehicle %d frozen by other vehicles' faults", v.ID)
		}
	})

	// With the fault cleared the whole fleet steps cleanly again.
	w.fl.SetStepFault(nil)
	if _, err := w.fl.Step(300); err != nil {
		t.Fatalf("Step after clearing fault: %v", err)
	}
}
