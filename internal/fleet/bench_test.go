package fleet_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// lockedMetric guards a single Searcher behind a mutex so parallel
// tick shards can share it: serving a stop re-enumerates the kinetic
// tree, which reads distances, so with Workers > 1 the fleet calls the
// metric concurrently. The engine uses its internally-sharded distance
// memo for this; the fleet benches pay one mutex instead. Grid lower
// bounds are immutable and need no lock.
type lockedMetric struct {
	mu   sync.Mutex
	s    *roadnet.Searcher
	grid *gridindex.Grid
}

func (m *lockedMetric) Dist(u, v roadnet.VertexID) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.s.Dist(u, v)
}

func (m *lockedMetric) LB(u, v roadnet.VertexID) float64 { return m.grid.LB(u, v) }

// benchFleet builds a fleet of nv vehicles on a 48x48 lattice with the
// given shard width and commits one request onto every 5th vehicle so
// the step mixes schedule-driven driving (with pickup/dropoff events)
// into the roaming baseline.
func benchFleet(b *testing.B, nv, workers int) *fleet.Fleet {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	g := testnet.Lattice(rng, 48, 48, 100)
	grid, err := gridindex.Build(g, gridindex.Config{Cols: 8, Rows: 8})
	if err != nil {
		b.Fatalf("grid: %v", err)
	}
	lists := gridindex.NewVehicleLists(grid.NumCells())
	m := &lockedMetric{s: roadnet.NewSearcher(g), grid: grid}
	fl, err := fleet.New(grid, lists, m, fleet.Config{Capacity: 4, Seed: 9, Workers: workers})
	if err != nil {
		b.Fatalf("fleet: %v", err)
	}
	n := g.NumVertices()
	searcher := roadnet.NewSearcher(g)
	for i := 0; i < nv; i++ {
		v := fl.AddVehicle(roadnet.VertexID(rng.Intn(n)))
		if i%5 != 0 {
			continue
		}
		s := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		sd := searcher.Dist(s, d)
		if s == d || sd == 0 {
			continue
		}
		req := kinetic.Request{
			ID: kinetic.RequestID(i), S: s, D: d, Riders: 1,
			SD: sd, ServiceLimit: 2 * sd, WaitBudget: 1e9,
		}
		cands := v.Tree.Quote(req)
		if len(cands) == 0 {
			continue
		}
		if _, err := fl.Commit(v.ID, req, cands[0], 0); err != nil {
			b.Fatalf("commit on vehicle %d: %v", v.ID, err)
		}
	}
	return fl
}

// BenchmarkFleetTickParallel measures the sharded fleet step across
// worker widths and fleet sizes. events_per_op reports the merged
// pickup/dropoff volume per step and ns_per_vehicle the per-vehicle
// cost — the number that must fall as workers rise on a multi-core
// host (the 1-core CI container shows parity).
func BenchmarkFleetTickParallel(b *testing.B) {
	for _, nv := range []int{1000, 10000} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("vehicles=%d/workers=%d", nv, workers), func(b *testing.B) {
				fl := benchFleet(b, nv, workers)
				b.ResetTimer()
				start := time.Now()
				var events int
				for i := 0; i < b.N; i++ {
					evs, err := fl.Step(100)
					if err != nil {
						b.Fatalf("step: %v", err)
					}
					events += len(evs)
				}
				elapsed := time.Since(start)
				b.ReportMetric(float64(events)/float64(b.N), "events_per_op")
				b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N)/float64(nv), "ns_per_vehicle")
			})
		}
	}
}
