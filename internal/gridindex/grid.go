// Package gridindex implements PTRider's road-network index (paper
// §3.2.1): a grid partition of the embedded road network in which every
// cell maintains
//
//	(i)   its border vertices (endpoints of edges that span two cells),
//	(ii)  its vertex list, with each vertex's exact distances to the
//	      cell's border vertices and the minimum of those (v.min),
//	(iii) a list of the other cells sorted by lower-bound distance
//	      (the "ring" that drives single- and dual-side search),
//	(iv)  an empty-vehicle list, and
//	(v)   a non-empty-vehicle list
//
// plus the cell-pair lower-bound matrix. Each matrix entry stores the
// exact shortest distance between the closest pair of border vertices of
// the two cells together with that witness pair, which yields both a
// lower bound LB(u,v) and an upper bound UB(u,v) for arbitrary vertex
// pairs without running a shortest-path search.
//
// The static part of the index (Grid) is immutable after Build and safe
// for concurrent reads. The dynamic vehicle lists (iv)–(v) live in
// VehicleLists, whose callers synchronise externally.
package gridindex

import (
	"fmt"
	"math"
	"sort"

	"ptrider/internal/geo"
	"ptrider/internal/roadnet"
)

// CellID identifies a grid cell, in row-major order: cell (cx, cy) has
// id cy*cols+cx.
type CellID = int32

// NoCell is the sentinel "no cell" value.
const NoCell CellID = -1

// RingEntry is one element of a cell's sorted cell list: a target cell
// and the lower bound on the network distance from the owning cell.
type RingEntry struct {
	Cell CellID
	LB   float64
}

// Cell is the static per-cell data of the index.
type Cell struct {
	ID       CellID
	Rect     geo.Rect
	Vertices []roadnet.VertexID // vertices whose coordinates fall in Rect
	Borders  []roadnet.VertexID // endpoints of cell-spanning edges
	Ring     []RingEntry        // all non-empty cells, ascending by LB; Ring[0] is the cell itself
}

type pairBound struct {
	lb     float64 // exact distance between the witness border pair; math.Inf(1) when disconnected
	wi, wj int32   // witness indices into the two cells' Borders; -1 when unavailable
}

// Grid is the static road-network index. Build once, read from any
// goroutine.
type Grid struct {
	g          *roadnet.Graph
	cols, rows int
	bounds     geo.Rect
	cellW      float64
	cellH      float64

	cellOf []CellID // per vertex
	cells  []Cell

	vmin        []float64   // per vertex: distance to the nearest border of its own cell
	borderDists [][]float64 // per vertex: distances to its own cell's Borders (aligned with Cell.Borders)

	pairs []pairBound // row-major numCells×numCells
}

// Config controls Build.
type Config struct {
	// Cols and Rows give the grid resolution. Both must be ≥ 1.
	Cols, Rows int
	// MaxBoundRadius truncates the border-to-border searches that fill
	// the lower-bound matrix: cell pairs farther apart than this get a
	// (still valid) lower bound equal to MaxBoundRadius and no upper
	// bound. Zero means unbounded. Truncation trades index build time
	// for looser bounds on far pairs, which matching rarely consults.
	MaxBoundRadius float64
}

// Build constructs the index for g, which must be embedded.
func Build(g *roadnet.Graph, cfg Config) (*Grid, error) {
	if !g.Embedded() {
		return nil, fmt.Errorf("gridindex: graph is not embedded")
	}
	if cfg.Cols < 1 || cfg.Rows < 1 {
		return nil, fmt.Errorf("gridindex: invalid resolution %dx%d", cfg.Cols, cfg.Rows)
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("gridindex: empty graph")
	}
	maxRadius := cfg.MaxBoundRadius
	if maxRadius <= 0 {
		maxRadius = math.Inf(1)
	}

	gr := &Grid{
		g:      g,
		cols:   cfg.Cols,
		rows:   cfg.Rows,
		bounds: g.Bounds().Expand(1e-9),
	}
	gr.cellW = gr.bounds.Width() / float64(cfg.Cols)
	gr.cellH = gr.bounds.Height() / float64(cfg.Rows)
	if gr.cellW <= 0 {
		gr.cellW = 1
	}
	if gr.cellH <= 0 {
		gr.cellH = 1
	}

	gr.assignVertices()
	gr.findBorders()
	gr.computeBounds(maxRadius)
	gr.computeBorderDists()
	gr.buildRings()
	return gr, nil
}

func (gr *Grid) assignVertices() {
	n := gr.g.NumVertices()
	numCells := gr.cols * gr.rows
	gr.cellOf = make([]CellID, n)
	gr.cells = make([]Cell, numCells)
	for c := 0; c < numCells; c++ {
		cx, cy := c%gr.cols, c/gr.cols
		minPt := geo.Point{
			X: gr.bounds.Min.X + float64(cx)*gr.cellW,
			Y: gr.bounds.Min.Y + float64(cy)*gr.cellH,
		}
		gr.cells[c] = Cell{
			ID:   CellID(c),
			Rect: geo.Rect{Min: minPt, Max: geo.Point{X: minPt.X + gr.cellW, Y: minPt.Y + gr.cellH}},
		}
	}
	for v := 0; v < n; v++ {
		c := gr.cellAt(gr.g.Point(roadnet.VertexID(v)))
		gr.cellOf[v] = c
		gr.cells[c].Vertices = append(gr.cells[c].Vertices, roadnet.VertexID(v))
	}
}

func (gr *Grid) cellAt(p geo.Point) CellID {
	cx := int((p.X - gr.bounds.Min.X) / gr.cellW)
	cy := int((p.Y - gr.bounds.Min.Y) / gr.cellH)
	if cx < 0 {
		cx = 0
	} else if cx >= gr.cols {
		cx = gr.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= gr.rows {
		cy = gr.rows - 1
	}
	return CellID(cy*gr.cols + cx)
}

func (gr *Grid) findBorders() {
	n := gr.g.NumVertices()
	isBorder := make([]bool, n)
	for u := 0; u < n; u++ {
		cu := gr.cellOf[u]
		for _, e := range gr.g.Out(roadnet.VertexID(u)) {
			if gr.cellOf[e.To] != cu {
				isBorder[u] = true
				isBorder[e.To] = true
			}
		}
	}
	for v := 0; v < n; v++ {
		if isBorder[v] {
			c := gr.cellOf[v]
			gr.cells[c].Borders = append(gr.cells[c].Borders, roadnet.VertexID(v))
		}
	}
}

// computeBounds fills vmin and the cell-pair matrix with one labelled
// multi-source Dijkstra per cell, seeded at the cell's border vertices.
func (gr *Grid) computeBounds(maxRadius float64) {
	n := gr.g.NumVertices()
	numCells := len(gr.cells)
	gr.vmin = make([]float64, n)
	for i := range gr.vmin {
		gr.vmin[i] = math.Inf(1)
	}
	gr.pairs = make([]pairBound, numCells*numCells)
	for i := range gr.pairs {
		gr.pairs[i] = pairBound{lb: maxRadius, wi: -1, wj: -1}
	}

	s := roadnet.NewSearcher(gr.g)
	for ci := range gr.cells {
		cell := &gr.cells[ci]
		gr.pairs[ci*numCells+ci] = pairBound{lb: 0, wi: -1, wj: -1}
		if len(cell.Borders) == 0 {
			// A borderless cell's vertices cannot reach other cells;
			// vmin stays +Inf and pair bounds stay at the clamp value
			// (valid: the true distance is +Inf).
			continue
		}
		dist, label := s.MultiSourceLabeled(cell.Borders, maxRadius)
		for _, v := range cell.Vertices {
			gr.vmin[v] = dist[v]
		}
		for cj := range gr.cells {
			if cj == ci {
				continue
			}
			best := math.Inf(1)
			bestI, bestJ := int32(-1), int32(-1)
			for bj, y := range gr.cells[cj].Borders {
				if dist[y] < best {
					best = dist[y]
					bestI, bestJ = label[y], int32(bj)
				}
			}
			if bestJ >= 0 {
				gr.pairs[ci*numCells+cj] = pairBound{lb: best, wi: bestI, wj: bestJ}
			}
		}
	}
}

// computeBorderDists fills, for every vertex, the exact distances to the
// border vertices of its own cell (one target-set Dijkstra per border
// vertex, settling only that cell's vertices).
func (gr *Grid) computeBorderDists() {
	n := gr.g.NumVertices()
	gr.borderDists = make([][]float64, n)
	s := roadnet.NewSearcher(gr.g)
	for ci := range gr.cells {
		cell := &gr.cells[ci]
		nb := len(cell.Borders)
		if nb == 0 || len(cell.Vertices) == 0 {
			continue
		}
		flat := make([]float64, nb*len(cell.Vertices))
		out := make([]float64, len(cell.Vertices))
		for bi, b := range cell.Borders {
			s.DistsTo(b, cell.Vertices, math.Inf(1), out)
			for vi := range cell.Vertices {
				flat[vi*nb+bi] = out[vi]
			}
		}
		for vi, v := range cell.Vertices {
			gr.borderDists[v] = flat[vi*nb : (vi+1)*nb : (vi+1)*nb]
		}
	}
}

func (gr *Grid) buildRings() {
	numCells := len(gr.cells)
	occupied := make([]CellID, 0, numCells)
	for ci := range gr.cells {
		if len(gr.cells[ci].Vertices) > 0 {
			occupied = append(occupied, CellID(ci))
		}
	}
	for ci := range gr.cells {
		if len(gr.cells[ci].Vertices) == 0 {
			continue
		}
		ring := make([]RingEntry, 0, len(occupied))
		for _, cj := range occupied {
			ring = append(ring, RingEntry{Cell: cj, LB: gr.pairs[ci*numCells+int(cj)].lb})
		}
		sort.Slice(ring, func(a, b int) bool {
			if ring[a].LB != ring[b].LB {
				return ring[a].LB < ring[b].LB
			}
			return ring[a].Cell < ring[b].Cell
		})
		gr.cells[ci].Ring = ring
	}
}

// Graph returns the indexed graph.
func (gr *Grid) Graph() *roadnet.Graph { return gr.g }

// NumCells returns the number of grid cells (cols × rows).
func (gr *Grid) NumCells() int { return len(gr.cells) }

// Dims returns the grid resolution.
func (gr *Grid) Dims() (cols, rows int) { return gr.cols, gr.rows }

// CellOf returns the cell containing vertex v.
func (gr *Grid) CellOf(v roadnet.VertexID) CellID { return gr.cellOf[v] }

// CellAt returns the cell containing the planar point p (clamped to the
// grid bounds).
func (gr *Grid) CellAt(p geo.Point) CellID { return gr.cellAt(p) }

// Cell returns the static data of cell id. The result aliases internal
// storage and must not be modified.
func (gr *Grid) Cell(id CellID) *Cell { return &gr.cells[id] }

// VMin returns v.min: the distance from v to the nearest border vertex
// of its own cell (+Inf when the cell has no borders).
func (gr *Grid) VMin(v roadnet.VertexID) float64 { return gr.vmin[v] }

// BorderDists returns v's distances to its own cell's Borders, aligned
// with Cell.Borders. It is nil when the cell has no borders.
func (gr *Grid) BorderDists(v roadnet.VertexID) []float64 { return gr.borderDists[v] }

// CellLB returns the lower bound on the network distance between any
// vertex of cell i and any vertex of cell j. It is zero when i == j.
func (gr *Grid) CellLB(i, j CellID) float64 {
	return gr.pairs[int(i)*len(gr.cells)+int(j)].lb
}

// LB returns a lower bound on dist(u, v), combining the cell-pair bound
// with the Euclidean bound on metric graphs. LB(u, u) is zero and
// LB(u, v) ≤ dist(u, v) always.
func (gr *Grid) LB(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	lb := gr.g.EuclidLB(u, v)
	if ci, cj := gr.cellOf[u], gr.cellOf[v]; ci != cj {
		if pb := gr.pairs[int(ci)*len(gr.cells)+int(cj)].lb; pb > lb {
			lb = pb
		}
	}
	return lb
}

// UB returns an upper bound on dist(u, v) routed through border
// vertices: dist(u,x*) + dist(x*,y*) + dist(y*,v) for the witness pair
// (x*, y*) of the two cells, or the best border detour within one cell.
// It returns +Inf when no witness is available (borderless cells or
// truncated matrix rows); callers fall back to an exact search. UB is
// only valid on symmetric (undirected) graphs, which is what PTRider's
// road networks are.
func (gr *Grid) UB(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	ci, cj := gr.cellOf[u], gr.cellOf[v]
	bu, bv := gr.borderDists[u], gr.borderDists[v]
	if ci == cj {
		if bu == nil {
			return math.Inf(1)
		}
		best := math.Inf(1)
		for bi := range bu {
			if d := bu[bi] + bv[bi]; d < best {
				best = d
			}
		}
		return best
	}
	pb := gr.pairs[int(ci)*len(gr.cells)+int(cj)]
	if pb.wi < 0 || bu == nil || bv == nil {
		return math.Inf(1)
	}
	return bu[pb.wi] + pb.lb + bv[pb.wj]
}
