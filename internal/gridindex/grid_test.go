package gridindex_test

import (
	"math"
	"math/rand"
	"testing"

	"ptrider/internal/geo"
	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

func buildLatticeGrid(t *testing.T, seed int64, w, h int, cols, rows int) (*roadnet.Graph, *gridindex.Grid) {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(seed)), w, h, 100)
	gr, err := gridindex.Build(g, gridindex.Config{Cols: cols, Rows: rows})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, gr
}

func TestBuildValidation(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 3, 3, 100)
	if _, err := gridindex.Build(g, gridindex.Config{Cols: 0, Rows: 2}); err == nil {
		t.Error("Build accepted zero columns")
	}
	plain := testnet.RandomConnected(rand.New(rand.NewSource(1)), 10, 1)
	if _, err := gridindex.Build(plain, gridindex.Config{Cols: 2, Rows: 2}); err == nil {
		t.Error("Build accepted non-embedded graph")
	}
}

func TestEveryVertexAssignedToExactlyOneCell(t *testing.T) {
	g, gr := buildLatticeGrid(t, 2, 10, 10, 4, 4)
	counts := make(map[roadnet.VertexID]int)
	for c := 0; c < gr.NumCells(); c++ {
		cell := gr.Cell(gridindex.CellID(c))
		for _, v := range cell.Vertices {
			counts[v]++
			if gr.CellOf(v) != cell.ID {
				t.Fatalf("vertex %d listed in cell %d but CellOf says %d", v, cell.ID, gr.CellOf(v))
			}
			if !cell.Rect.Contains(g.Point(v)) {
				t.Fatalf("vertex %d at %v outside its cell rect %+v", v, g.Point(v), cell.Rect)
			}
		}
	}
	if len(counts) != g.NumVertices() {
		t.Fatalf("assigned %d vertices, want %d", len(counts), g.NumVertices())
	}
	for v, n := range counts {
		if n != 1 {
			t.Fatalf("vertex %d assigned %d times", v, n)
		}
	}
}

func TestBorderVerticesAreExactlyCellSpanningEndpoints(t *testing.T) {
	g, gr := buildLatticeGrid(t, 3, 8, 8, 3, 3)
	want := make(map[roadnet.VertexID]bool)
	for u := 0; u < g.NumVertices(); u++ {
		for _, e := range g.Out(roadnet.VertexID(u)) {
			if gr.CellOf(roadnet.VertexID(u)) != gr.CellOf(e.To) {
				want[roadnet.VertexID(u)] = true
				want[e.To] = true
			}
		}
	}
	got := make(map[roadnet.VertexID]bool)
	for c := 0; c < gr.NumCells(); c++ {
		for _, b := range gr.Cell(gridindex.CellID(c)).Borders {
			if gr.CellOf(b) != gridindex.CellID(c) {
				t.Fatalf("border %d listed in foreign cell %d", b, c)
			}
			got[b] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("border count %d, want %d", len(got), len(want))
	}
	for v := range want {
		if !got[v] {
			t.Fatalf("missing border vertex %d", v)
		}
	}
}

func TestLBNeverExceedsTrueDistance(t *testing.T) {
	g, gr := buildLatticeGrid(t, 4, 8, 8, 3, 3)
	s := roadnet.NewSearcher(g)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := s.Dist(u, v)
		if lb := gr.LB(u, v); lb > d+1e-9 {
			t.Fatalf("LB(%d,%d) = %v > dist %v", u, v, lb, d)
		}
	}
}

func TestUBNeverBelowTrueDistance(t *testing.T) {
	g, gr := buildLatticeGrid(t, 5, 8, 8, 3, 3)
	s := roadnet.NewSearcher(g)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := s.Dist(u, v)
		ub := gr.UB(u, v)
		if ub < d-1e-9 {
			t.Fatalf("UB(%d,%d) = %v < dist %v", u, v, ub, d)
		}
	}
}

func TestBoundsAreOrderedLBThenUB(t *testing.T) {
	_, gr := buildLatticeGrid(t, 6, 8, 8, 4, 4)
	rng := rand.New(rand.NewSource(6))
	n := gr.Graph().NumVertices()
	for trial := 0; trial < 300; trial++ {
		u := roadnet.VertexID(rng.Intn(n))
		v := roadnet.VertexID(rng.Intn(n))
		if lb, ub := gr.LB(u, v), gr.UB(u, v); lb > ub+1e-9 {
			t.Fatalf("LB(%d,%d) = %v exceeds UB %v", u, v, lb, ub)
		}
	}
}

func TestSelfBoundsAreZero(t *testing.T) {
	_, gr := buildLatticeGrid(t, 7, 6, 6, 3, 3)
	for v := 0; v < gr.Graph().NumVertices(); v++ {
		if lb := gr.LB(roadnet.VertexID(v), roadnet.VertexID(v)); lb != 0 {
			t.Fatalf("LB(v,v) = %v", lb)
		}
		if ub := gr.UB(roadnet.VertexID(v), roadnet.VertexID(v)); ub != 0 {
			t.Fatalf("UB(v,v) = %v", ub)
		}
	}
}

func TestCellLBSymmetricOnUndirectedGraph(t *testing.T) {
	_, gr := buildLatticeGrid(t, 8, 8, 8, 3, 3)
	for i := 0; i < gr.NumCells(); i++ {
		for j := 0; j < gr.NumCells(); j++ {
			a := gr.CellLB(gridindex.CellID(i), gridindex.CellID(j))
			b := gr.CellLB(gridindex.CellID(j), gridindex.CellID(i))
			if math.Abs(a-b) > 1e-9 && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("CellLB(%d,%d)=%v != CellLB(%d,%d)=%v", i, j, a, j, i, b)
			}
		}
	}
}

func TestVMinMatchesNearestBorder(t *testing.T) {
	g, gr := buildLatticeGrid(t, 9, 8, 8, 3, 3)
	s := roadnet.NewSearcher(g)
	for v := 0; v < g.NumVertices(); v++ {
		cell := gr.Cell(gr.CellOf(roadnet.VertexID(v)))
		want := math.Inf(1)
		for _, b := range cell.Borders {
			if d := s.Dist(roadnet.VertexID(v), b); d < want {
				want = d
			}
		}
		if got := gr.VMin(roadnet.VertexID(v)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("VMin(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestBorderDistsExact(t *testing.T) {
	g, gr := buildLatticeGrid(t, 10, 6, 6, 3, 3)
	s := roadnet.NewSearcher(g)
	for v := 0; v < g.NumVertices(); v++ {
		cell := gr.Cell(gr.CellOf(roadnet.VertexID(v)))
		bd := gr.BorderDists(roadnet.VertexID(v))
		if len(cell.Borders) == 0 {
			if bd != nil {
				t.Fatalf("BorderDists(%d) non-nil for borderless cell", v)
			}
			continue
		}
		if len(bd) != len(cell.Borders) {
			t.Fatalf("BorderDists(%d) len %d, want %d", v, len(bd), len(cell.Borders))
		}
		for bi, b := range cell.Borders {
			if want := s.Dist(roadnet.VertexID(v), b); math.Abs(bd[bi]-want) > 1e-9 {
				t.Fatalf("BorderDists(%d)[%d] = %v, want %v", v, bi, bd[bi], want)
			}
		}
	}
}

func TestRingSortedAndComplete(t *testing.T) {
	_, gr := buildLatticeGrid(t, 11, 8, 8, 4, 4)
	occupied := 0
	for c := 0; c < gr.NumCells(); c++ {
		if len(gr.Cell(gridindex.CellID(c)).Vertices) > 0 {
			occupied++
		}
	}
	for c := 0; c < gr.NumCells(); c++ {
		cell := gr.Cell(gridindex.CellID(c))
		if len(cell.Vertices) == 0 {
			if cell.Ring != nil {
				t.Fatalf("empty cell %d has a ring", c)
			}
			continue
		}
		if len(cell.Ring) != occupied {
			t.Fatalf("cell %d ring has %d entries, want %d", c, len(cell.Ring), occupied)
		}
		if cell.Ring[0].Cell != cell.ID || cell.Ring[0].LB != 0 {
			t.Fatalf("cell %d ring does not start with itself: %+v", c, cell.Ring[0])
		}
		for i := 1; i < len(cell.Ring); i++ {
			if cell.Ring[i].LB < cell.Ring[i-1].LB {
				t.Fatalf("cell %d ring unsorted at %d", c, i)
			}
			if cell.Ring[i].LB != gr.CellLB(cell.ID, cell.Ring[i].Cell) {
				t.Fatalf("cell %d ring LB mismatch at %d", c, i)
			}
		}
	}
}

func TestSingleCellGridHasTrivialBounds(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(12)), 4, 4, 100)
	gr, err := gridindex.Build(g, gridindex.Config{Cols: 1, Rows: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// One cell: no borders, LB falls back to Euclidean, UB is +Inf.
	if len(gr.Cell(0).Borders) != 0 {
		t.Error("single-cell grid should have no borders")
	}
	s := roadnet.NewSearcher(g)
	for trial := 0; trial < 50; trial++ {
		u := roadnet.VertexID(trial % g.NumVertices())
		v := roadnet.VertexID((trial * 7) % g.NumVertices())
		if lb := gr.LB(u, v); lb > s.Dist(u, v)+1e-9 {
			t.Fatalf("LB(%d,%d) = %v > dist", u, v, lb)
		}
		if u != v && !math.IsInf(gr.UB(u, v), 1) {
			t.Fatalf("UB should be +Inf in a borderless cell")
		}
	}
}

func TestMaxBoundRadiusTruncationStillLowerBounds(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(13)), 10, 10, 100)
	gr, err := gridindex.Build(g, gridindex.Config{Cols: 5, Rows: 5, MaxBoundRadius: 250})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := roadnet.NewSearcher(g)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := s.Dist(u, v)
		if lb := gr.LB(u, v); lb > d+1e-9 {
			t.Fatalf("truncated LB(%d,%d) = %v > dist %v", u, v, lb, d)
		}
		if ub := gr.UB(u, v); ub < d-1e-9 {
			t.Fatalf("truncated UB(%d,%d) = %v < dist %v", u, v, ub, d)
		}
	}
}

func TestCellAtClampsOutOfBoundsPoints(t *testing.T) {
	g, gr := buildLatticeGrid(t, 15, 5, 5, 2, 2)
	b := g.Bounds()
	far := geo.Point{X: b.Max.X + 1e6, Y: b.Max.Y + 1e6}
	if c := gr.CellAt(far); c != gridindex.CellID(gr.NumCells()-1) {
		t.Errorf("CellAt(far NE) = %d, want last cell", c)
	}
	near := geo.Point{X: b.Min.X - 1e6, Y: b.Min.Y - 1e6}
	if c := gr.CellAt(near); c != 0 {
		t.Errorf("CellAt(far SW) = %d, want cell 0", c)
	}
}

func TestVehicleListsPlacement(t *testing.T) {
	vl := gridindex.NewVehicleLists(4)
	vl.PlaceEmpty(1, 0)
	vl.PlaceEmpty(2, 0)
	vl.PlaceNonEmpty(3, []gridindex.CellID{1, 2, 2, 3})
	if got := vl.Empty(0); len(got) != 2 {
		t.Fatalf("Empty(0) = %v", got)
	}
	for _, c := range []gridindex.CellID{1, 2, 3} {
		if got := vl.NonEmpty(c); len(got) != 1 || got[0] != 3 {
			t.Fatalf("NonEmpty(%d) = %v", c, got)
		}
	}
	if cells := vl.Cells(3); len(cells) != 3 {
		t.Fatalf("Cells(3) = %v, want 3 deduped cells", cells)
	}
	if e, reg := vl.IsEmptyVehicle(1); !e || !reg {
		t.Error("vehicle 1 should be registered empty")
	}
	if e, reg := vl.IsEmptyVehicle(3); e || !reg {
		t.Error("vehicle 3 should be registered non-empty")
	}
	if _, reg := vl.IsEmptyVehicle(99); reg {
		t.Error("vehicle 99 should be unregistered")
	}
}

func TestVehicleListsTransitions(t *testing.T) {
	vl := gridindex.NewVehicleLists(4)
	vl.PlaceEmpty(7, 1)
	vl.PlaceNonEmpty(7, []gridindex.CellID{2, 3}) // empty → non-empty
	if got := vl.Empty(1); len(got) != 0 {
		t.Fatalf("vehicle left in empty list: %v", got)
	}
	if got := vl.NonEmpty(2); len(got) != 1 {
		t.Fatalf("NonEmpty(2) = %v", got)
	}
	vl.PlaceEmpty(7, 0) // non-empty → empty
	if len(vl.NonEmpty(2)) != 0 || len(vl.NonEmpty(3)) != 0 {
		t.Fatal("vehicle left in non-empty lists")
	}
	if got := vl.Empty(0); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Empty(0) = %v", got)
	}
	vl.Remove(7)
	if vl.NumRegistered() != 0 {
		t.Fatalf("NumRegistered = %d after Remove", vl.NumRegistered())
	}
	vl.Remove(7) // idempotent
}

func TestVehicleListsManyVehicles(t *testing.T) {
	vl := gridindex.NewVehicleLists(10)
	rng := rand.New(rand.NewSource(16))
	// Mirror of expected state: vehicle → (empty?, cells).
	type reg struct {
		empty bool
		cells []gridindex.CellID
	}
	mirror := make(map[gridindex.VehicleID]reg)
	for op := 0; op < 5000; op++ {
		id := gridindex.VehicleID(rng.Intn(50))
		switch rng.Intn(3) {
		case 0:
			c := gridindex.CellID(rng.Intn(10))
			vl.PlaceEmpty(id, c)
			mirror[id] = reg{empty: true, cells: []gridindex.CellID{c}}
		case 1:
			n := 1 + rng.Intn(4)
			cells := make([]gridindex.CellID, n)
			seen := map[gridindex.CellID]bool{}
			uniq := cells[:0]
			for i := 0; i < n; i++ {
				cells[i] = gridindex.CellID(rng.Intn(10))
				if !seen[cells[i]] {
					seen[cells[i]] = true
					uniq = append(uniq, cells[i])
				}
			}
			vl.PlaceNonEmpty(id, cells)
			mirror[id] = reg{empty: false, cells: append([]gridindex.CellID(nil), uniq...)}
		case 2:
			vl.Remove(id)
			delete(mirror, id)
		}
	}
	if vl.NumRegistered() != len(mirror) {
		t.Fatalf("NumRegistered = %d, want %d", vl.NumRegistered(), len(mirror))
	}
	// Rebuild per-cell sets from the mirror and compare.
	for c := gridindex.CellID(0); c < 10; c++ {
		wantEmpty := map[gridindex.VehicleID]bool{}
		wantNon := map[gridindex.VehicleID]bool{}
		for id, r := range mirror {
			for _, rc := range r.cells {
				if rc == c {
					if r.empty {
						wantEmpty[id] = true
					} else {
						wantNon[id] = true
					}
				}
			}
		}
		gotEmpty := vl.Empty(c)
		if len(gotEmpty) != len(wantEmpty) {
			t.Fatalf("cell %d empty list len %d, want %d", c, len(gotEmpty), len(wantEmpty))
		}
		for _, id := range gotEmpty {
			if !wantEmpty[id] {
				t.Fatalf("cell %d empty list has unexpected %d", c, id)
			}
		}
		gotNon := vl.NonEmpty(c)
		if len(gotNon) != len(wantNon) {
			t.Fatalf("cell %d non-empty list len %d, want %d", c, len(gotNon), len(wantNon))
		}
		for _, id := range gotNon {
			if !wantNon[id] {
				t.Fatalf("cell %d non-empty list has unexpected %d", c, id)
			}
		}
	}
}
