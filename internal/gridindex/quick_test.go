package gridindex_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// TestQuickBoundsInvariant drives the LB/UB invariants with
// testing/quick over random vertex pairs and grid resolutions: for all
// (u, v), LB(u,v) ≤ dist(u,v) ≤ UB(u,v) and LB(u,v) ≤ LB-symmetric
// within float tolerance on undirected graphs.
func TestQuickBoundsInvariant(t *testing.T) {
	type world struct {
		g      *roadnet.Graph
		grid   *gridindex.Grid
		oracle *roadnet.Oracle
	}
	worlds := make([]world, 0, 3)
	for i, res := range []int{2, 3, 5} {
		g := testnet.Lattice(rand.New(rand.NewSource(int64(i+40))), 7, 7, 100)
		grid, err := gridindex.Build(g, gridindex.Config{Cols: res, Rows: res})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		worlds = append(worlds, world{g: g, grid: grid, oracle: roadnet.NewOracle(g)})
	}

	f := func(wi uint8, a, b uint16) bool {
		w := worlds[int(wi)%len(worlds)]
		n := w.g.NumVertices()
		u := roadnet.VertexID(int(a) % n)
		v := roadnet.VertexID(int(b) % n)
		d := w.oracle.Dist(u, v)
		lb := w.grid.LB(u, v)
		ub := w.grid.UB(u, v)
		if lb > d+1e-9 {
			return false
		}
		if ub < d-1e-9 {
			return false
		}
		// Symmetry of the cell-pair bound on undirected graphs.
		ci, cj := w.grid.CellOf(u), w.grid.CellOf(v)
		if diff := w.grid.CellLB(ci, cj) - w.grid.CellLB(cj, ci); diff > 1e-9 || diff < -1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickVMinInvariant: v.min is never larger than the distance to
// any border vertex of v's cell.
func TestQuickVMinInvariant(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(50)), 8, 8, 100)
	grid, err := gridindex.Build(g, gridindex.Config{Cols: 4, Rows: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	oracle := roadnet.NewOracle(g)
	f := func(a uint16) bool {
		v := roadnet.VertexID(int(a) % g.NumVertices())
		cell := grid.Cell(grid.CellOf(v))
		vmin := grid.VMin(v)
		for _, b := range cell.Borders {
			if vmin > oracle.Dist(v, b)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
