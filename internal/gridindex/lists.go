package gridindex

// VehicleID identifies a vehicle in the vehicle lists. It matches the
// fleet's vehicle identifiers.
type VehicleID = int32

// idSet is a compact set of vehicle ids supporting O(1) add/remove and
// allocation-free iteration over a slice. Removal swaps with the last
// element, so iteration order is unspecified.
type idSet struct {
	items []VehicleID
	pos   map[VehicleID]int
}

func (s *idSet) add(id VehicleID) bool {
	if s.pos == nil {
		s.pos = make(map[VehicleID]int)
	}
	if _, ok := s.pos[id]; ok {
		return false
	}
	s.pos[id] = len(s.items)
	s.items = append(s.items, id)
	return true
}

func (s *idSet) remove(id VehicleID) bool {
	i, ok := s.pos[id]
	if !ok {
		return false
	}
	last := len(s.items) - 1
	moved := s.items[last]
	s.items[i] = moved
	s.pos[moved] = i
	s.items = s.items[:last]
	delete(s.pos, id)
	return true
}

func (s *idSet) contains(id VehicleID) bool {
	_, ok := s.pos[id]
	return ok
}

// VehicleLists is the dynamic layer of the grid index: per cell, the
// empty-vehicle list (vehicles with no assigned requests, listed in the
// cell of their current location) and the non-empty-vehicle list
// (vehicles whose planned trip schedules pass through the cell), as in
// paper §3.2.1 items (iv)–(v).
//
// VehicleLists is not safe for concurrent use; the engine mutates it
// under its own lock.
type VehicleLists struct {
	empty    []idSet
	nonEmpty []idSet
	// cellsOf tracks, per vehicle, the cells the vehicle is currently
	// registered in (one cell when empty, the schedule's cells when
	// non-empty), so that re-registration does not scan the whole grid.
	cellsOf map[VehicleID][]CellID
	isEmpty map[VehicleID]bool
}

// NewVehicleLists returns empty lists for a grid with numCells cells.
func NewVehicleLists(numCells int) *VehicleLists {
	return &VehicleLists{
		empty:    make([]idSet, numCells),
		nonEmpty: make([]idSet, numCells),
		cellsOf:  make(map[VehicleID][]CellID),
		isEmpty:  make(map[VehicleID]bool),
	}
}

// PlaceEmpty registers vehicle id as an empty vehicle located in cell c,
// replacing any previous registration.
func (vl *VehicleLists) PlaceEmpty(id VehicleID, c CellID) {
	vl.Remove(id)
	vl.empty[c].add(id)
	vl.cellsOf[id] = append(vl.cellsOf[id][:0], c)
	vl.isEmpty[id] = true
}

// PlaceNonEmpty registers vehicle id as a non-empty vehicle whose
// schedule passes through cells, replacing any previous registration.
// Duplicate cells are tolerated.
func (vl *VehicleLists) PlaceNonEmpty(id VehicleID, cells []CellID) {
	vl.Remove(id)
	reg := vl.cellsOf[id][:0]
	for _, c := range cells {
		if vl.nonEmpty[c].add(id) {
			reg = append(reg, c)
		}
	}
	vl.cellsOf[id] = reg
	vl.isEmpty[id] = false
}

// Remove deregisters vehicle id from every list. Removing an unknown
// vehicle is a no-op.
func (vl *VehicleLists) Remove(id VehicleID) {
	cells, ok := vl.cellsOf[id]
	if !ok {
		return
	}
	if vl.isEmpty[id] {
		for _, c := range cells {
			vl.empty[c].remove(id)
		}
	} else {
		for _, c := range cells {
			vl.nonEmpty[c].remove(id)
		}
	}
	delete(vl.cellsOf, id)
	delete(vl.isEmpty, id)
}

// Empty returns the empty-vehicle list of cell c. The slice aliases
// internal storage: do not modify, and do not hold across mutations.
func (vl *VehicleLists) Empty(c CellID) []VehicleID { return vl.empty[c].items }

// NonEmpty returns the non-empty-vehicle list of cell c, with the same
// aliasing caveat as Empty.
func (vl *VehicleLists) NonEmpty(c CellID) []VehicleID { return vl.nonEmpty[c].items }

// Cells returns the cells vehicle id is currently registered in, with
// the same aliasing caveat as Empty. It returns nil for unknown ids.
func (vl *VehicleLists) Cells(id VehicleID) []CellID { return vl.cellsOf[id] }

// IsEmptyVehicle reports whether id is registered as an empty vehicle.
// The second result reports whether the vehicle is registered at all.
func (vl *VehicleLists) IsEmptyVehicle(id VehicleID) (empty, registered bool) {
	e, ok := vl.isEmpty[id]
	return e, ok
}

// NumRegistered returns the number of registered vehicles.
func (vl *VehicleLists) NumRegistered() int { return len(vl.cellsOf) }
