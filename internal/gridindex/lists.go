package gridindex

import "sync"

// VehicleID identifies a vehicle in the vehicle lists. It matches the
// fleet's vehicle identifiers.
type VehicleID = int32

// idSet is a compact set of vehicle ids supporting O(1) add/remove and
// allocation-free iteration over a slice. Removal swaps with the last
// element, so iteration order is unspecified.
type idSet struct {
	items []VehicleID
	pos   map[VehicleID]int
}

func (s *idSet) add(id VehicleID) bool {
	if s.pos == nil {
		s.pos = make(map[VehicleID]int)
	}
	if _, ok := s.pos[id]; ok {
		return false
	}
	s.pos[id] = len(s.items)
	s.items = append(s.items, id)
	return true
}

func (s *idSet) remove(id VehicleID) bool {
	i, ok := s.pos[id]
	if !ok {
		return false
	}
	last := len(s.items) - 1
	moved := s.items[last]
	s.items[i] = moved
	s.pos[moved] = i
	s.items = s.items[:last]
	delete(s.pos, id)
	return true
}

func (s *idSet) contains(id VehicleID) bool {
	_, ok := s.pos[id]
	return ok
}

// VehicleLists is the dynamic layer of the grid index: per cell, the
// empty-vehicle list (vehicles with no assigned requests, listed in the
// cell of their current location) and the non-empty-vehicle list
// (vehicles whose planned trip schedules pass through the cell), as in
// paper §3.2.1 items (iv)–(v).
//
// VehicleLists is safe for concurrent use: registrations are serialised
// by an internal read-write lock, and the read methods return snapshot
// copies so callers never observe a list mid-mutation. Matchers on the
// hot path use AppendEmpty/AppendNonEmpty with a reused buffer to keep
// cell scans allocation-free.
type VehicleLists struct {
	mu       sync.RWMutex
	empty    []idSet
	nonEmpty []idSet
	// cellsOf tracks, per vehicle, the cells the vehicle is currently
	// registered in (one cell when empty, the schedule's cells when
	// non-empty), so that re-registration does not scan the whole grid.
	cellsOf map[VehicleID][]CellID
	isEmpty map[VehicleID]bool
}

// NewVehicleLists returns empty lists for a grid with numCells cells.
func NewVehicleLists(numCells int) *VehicleLists {
	return &VehicleLists{
		empty:    make([]idSet, numCells),
		nonEmpty: make([]idSet, numCells),
		cellsOf:  make(map[VehicleID][]CellID),
		isEmpty:  make(map[VehicleID]bool),
	}
}

// PlaceEmpty registers vehicle id as an empty vehicle located in cell c,
// replacing any previous registration.
func (vl *VehicleLists) PlaceEmpty(id VehicleID, c CellID) {
	vl.mu.Lock()
	defer vl.mu.Unlock()
	vl.removeLocked(id)
	vl.empty[c].add(id)
	vl.cellsOf[id] = append(vl.cellsOf[id][:0], c)
	vl.isEmpty[id] = true
}

// PlaceNonEmpty registers vehicle id as a non-empty vehicle whose
// schedule passes through cells, replacing any previous registration.
// Duplicate cells are tolerated.
func (vl *VehicleLists) PlaceNonEmpty(id VehicleID, cells []CellID) {
	vl.mu.Lock()
	defer vl.mu.Unlock()
	vl.removeLocked(id)
	reg := vl.cellsOf[id][:0]
	for _, c := range cells {
		if vl.nonEmpty[c].add(id) {
			reg = append(reg, c)
		}
	}
	vl.cellsOf[id] = reg
	vl.isEmpty[id] = false
}

// Remove deregisters vehicle id from every list. Removing an unknown
// vehicle is a no-op.
func (vl *VehicleLists) Remove(id VehicleID) {
	vl.mu.Lock()
	defer vl.mu.Unlock()
	vl.removeLocked(id)
}

func (vl *VehicleLists) removeLocked(id VehicleID) {
	cells, ok := vl.cellsOf[id]
	if !ok {
		return
	}
	if vl.isEmpty[id] {
		for _, c := range cells {
			vl.empty[c].remove(id)
		}
	} else {
		for _, c := range cells {
			vl.nonEmpty[c].remove(id)
		}
	}
	delete(vl.cellsOf, id)
	delete(vl.isEmpty, id)
}

// Empty returns a snapshot copy of the empty-vehicle list of cell c.
func (vl *VehicleLists) Empty(c CellID) []VehicleID {
	return vl.AppendEmpty(c, nil)
}

// NonEmpty returns a snapshot copy of the non-empty-vehicle list of
// cell c.
func (vl *VehicleLists) NonEmpty(c CellID) []VehicleID {
	return vl.AppendNonEmpty(c, nil)
}

// AppendEmpty appends the empty-vehicle list of cell c to buf and
// returns it — the allocation-free read for hot ring scans.
func (vl *VehicleLists) AppendEmpty(c CellID, buf []VehicleID) []VehicleID {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	return append(buf, vl.empty[c].items...)
}

// AppendNonEmpty appends the non-empty-vehicle list of cell c to buf
// and returns it, with the same contract as AppendEmpty.
func (vl *VehicleLists) AppendNonEmpty(c CellID, buf []VehicleID) []VehicleID {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	return append(buf, vl.nonEmpty[c].items...)
}

// FillSupply writes each cell's vehicle supply into counts under one
// read lock: the empty vehicles located in the cell plus the non-empty
// vehicles whose schedules pass through it (a busy vehicle therefore
// counts in every cell it serves — it is genuinely available for
// pooling in each of them). len(counts) must be the grid's cell count;
// extra entries are zeroed. This is the surge tracker's supply feed.
func (vl *VehicleLists) FillSupply(counts []int) {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	for c := range counts {
		if c < len(vl.empty) {
			counts[c] = len(vl.empty[c].items) + len(vl.nonEmpty[c].items)
		} else {
			counts[c] = 0
		}
	}
}

// Cells returns a snapshot copy of the cells vehicle id is currently
// registered in. It returns nil for unknown ids.
func (vl *VehicleLists) Cells(id VehicleID) []CellID {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	cells, ok := vl.cellsOf[id]
	if !ok {
		return nil
	}
	return append([]CellID(nil), cells...)
}

// IsEmptyVehicle reports whether id is registered as an empty vehicle.
// The second result reports whether the vehicle is registered at all.
func (vl *VehicleLists) IsEmptyVehicle(id VehicleID) (empty, registered bool) {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	e, ok := vl.isEmpty[id]
	return e, ok
}

// NumRegistered returns the number of registered vehicles.
func (vl *VehicleLists) NumRegistered() int {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	return len(vl.cellsOf)
}
