package roadnet_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// TestQuickMetricProperties: on undirected graphs the shortest-path
// distance is a metric — symmetric, zero iff identical (connected
// graph, positive weights), and satisfying the triangle inequality.
func TestQuickMetricProperties(t *testing.T) {
	g := testnet.RandomConnected(rand.New(rand.NewSource(60)), 50, 2)
	oracle := roadnet.NewOracle(g)
	n := g.NumVertices()
	f := func(a, b, c uint16) bool {
		u := roadnet.VertexID(int(a) % n)
		v := roadnet.VertexID(int(b) % n)
		w := roadnet.VertexID(int(c) % n)
		duv, dvu := oracle.Dist(u, v), oracle.Dist(v, u)
		if math.Abs(duv-dvu) > 1e-9 {
			return false
		}
		if (duv == 0) != (u == v) {
			return false
		}
		return oracle.Dist(u, w) <= duv+oracle.Dist(v, w)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSearchersAgree: Dijkstra/A* (Searcher) and bidirectional
// search agree with the oracle on arbitrary pairs.
func TestQuickSearchersAgree(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(61)), 7, 7, 100)
	oracle := roadnet.NewOracle(g)
	s := roadnet.NewSearcher(g)
	bi := roadnet.NewBiSearcher(g)
	n := g.NumVertices()
	f := func(a, b uint16) bool {
		u := roadnet.VertexID(int(a) % n)
		v := roadnet.VertexID(int(b) % n)
		want := oracle.Dist(u, v)
		return math.Abs(s.Dist(u, v)-want) <= 1e-9 &&
			math.Abs(bi.Dist(u, v)-want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundedConsistency: DistBounded returns the true distance
// exactly when it is within the bound, +Inf otherwise.
func TestQuickBoundedConsistency(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(62)), 6, 6, 100)
	oracle := roadnet.NewOracle(g)
	s := roadnet.NewSearcher(g)
	n := g.NumVertices()
	f := func(a, b uint16, frac float64) bool {
		u := roadnet.VertexID(int(a) % n)
		v := roadnet.VertexID(int(b) % n)
		frac = math.Abs(math.Mod(frac, 2)) // bound between 0 and 2x dist
		want := oracle.Dist(u, v)
		bound := want * frac
		got := s.DistBounded(u, v, bound)
		if want <= bound {
			return math.Abs(got-want) <= 1e-9
		}
		return math.IsInf(got, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
