package roadnet_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

func TestLandmarkLBNeverExceedsDistance(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testnet.RandomConnected(rng, 60, 2)
		lm, err := roadnet.SelectLandmarks(g, 4)
		if err != nil {
			t.Fatalf("SelectLandmarks: %v", err)
		}
		oracle := roadnet.NewOracle(g)
		for trial := 0; trial < 400; trial++ {
			u := roadnet.VertexID(rng.Intn(g.NumVertices()))
			v := roadnet.VertexID(rng.Intn(g.NumVertices()))
			if lb, d := lm.LB(u, v), oracle.Dist(u, v); lb > d+1e-9 {
				t.Fatalf("seed %d: landmark LB(%d,%d) = %v > dist %v", seed, u, v, lb, d)
			}
		}
	}
}

func TestLandmarkLBIsUsefullyTight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testnet.Lattice(rng, 10, 10, 100)
	lm, err := roadnet.SelectLandmarks(g, 6)
	if err != nil {
		t.Fatalf("SelectLandmarks: %v", err)
	}
	oracle := roadnet.NewOracle(g)
	ratioSum, n := 0.0, 0
	for trial := 0; trial < 500; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := oracle.Dist(u, v)
		if d == 0 {
			continue
		}
		ratioSum += lm.LB(u, v) / d
		n++
	}
	if avg := ratioSum / float64(n); avg < 0.3 {
		t.Fatalf("landmark bounds too loose on a lattice: avg LB/dist = %v", avg)
	}
}

func TestLandmarkSelection(t *testing.T) {
	g := testnet.Line(10, 5)
	lm, err := roadnet.SelectLandmarks(g, 2)
	if err != nil {
		t.Fatalf("SelectLandmarks: %v", err)
	}
	if lm.K() != 2 {
		t.Fatalf("K = %d", lm.K())
	}
	// On a line with landmarks at the ends, ALT bounds are exact.
	for u := roadnet.VertexID(0); u < 10; u++ {
		for v := roadnet.VertexID(0); v < 10; v++ {
			want := math.Abs(float64(u-v)) * 5
			if got := lm.LB(u, v); math.Abs(got-want) > 1e-9 {
				t.Fatalf("LB(%d,%d) = %v, want exact %v", u, v, got, want)
			}
		}
	}
	if _, err := roadnet.SelectLandmarks(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// Asking for more landmarks than vertices clamps.
	if lm, err := roadnet.SelectLandmarks(g, 50); err != nil || lm.K() > 10 {
		t.Fatalf("over-asked selection: k=%d err=%v", lm.K(), err)
	}
}

func TestGraphCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := testnet.Lattice(rng, 6, 6, 100)
	var buf bytes.Buffer
	if err := roadnet.WriteGraph(&buf, g); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	g2, err := roadnet.ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if !g2.Embedded() || !g2.Metric() {
		t.Fatal("embedding lost in round trip")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Point(roadnet.VertexID(v)) != g2.Point(roadnet.VertexID(v)) {
			t.Fatalf("vertex %d moved", v)
		}
	}
	// Distances agree.
	s1, s2 := roadnet.NewSearcher(g), roadnet.NewSearcher(g2)
	for trial := 0; trial < 50; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if math.Abs(s1.Dist(u, v)-s2.Dist(u, v)) > 1e-9 {
			t.Fatalf("distance changed for (%d,%d)", u, v)
		}
	}
}

func TestGraphCodecRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "not-a-network\n",
		"bad vertex":   "ptrider-network 1\nv x y\n",
		"short vertex": "ptrider-network 1\nv 1\n",
		"bad edge":     "ptrider-network 1\nv 0 0\nv 1 0\ne 0 x 1\n",
		"edge range":   "ptrider-network 1\nv 0 0\ne 0 7 1\n",
		"unknown rec":  "ptrider-network 1\nq 1 2\n",
	}
	for name, input := range cases {
		if _, err := roadnet.ReadGraph(bytes.NewReader([]byte(input))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGraphCodecSkipsCommentsAndBlanks(t *testing.T) {
	input := "ptrider-network 1\n# a comment\nv 0 0\n\nv 1 0\ne 0 1 5\ne 1 0 5\n"
	g, err := roadnet.ReadGraph(bytes.NewReader([]byte(input)))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 2 {
		t.Fatalf("shape = %d/%d", g.NumVertices(), g.NumEdges())
	}
}
