package roadnet

import (
	"math"

	"ptrider/internal/heapx"
)

// Searcher runs shortest-path queries against one Graph. It owns
// epoch-stamped distance/parent arrays so that repeated queries perform
// no per-query allocation, which matters because request matching issues
// thousands of distance queries per second.
//
// A Searcher is not safe for concurrent use; give each goroutine its
// own (they share the immutable Graph).
type Searcher struct {
	g      *Graph
	dist   []float64
	parent []VertexID
	stamp  []uint32
	epoch  uint32
	heap   *heapx.DistHeap

	// Scratch for target-set queries.
	targetStamp []uint32
	targetEpoch uint32
}

// NewSearcher returns a Searcher for g.
func NewSearcher(g *Graph) *Searcher {
	n := g.NumVertices()
	return &Searcher{
		g:           g,
		dist:        make([]float64, n),
		parent:      make([]VertexID, n),
		stamp:       make([]uint32, n),
		heap:        heapx.NewDistHeap(256),
		targetStamp: make([]uint32, n),
	}
}

// Graph returns the graph this Searcher queries.
func (s *Searcher) Graph() *Graph { return s.g }

func (s *Searcher) begin() {
	s.epoch++
	if s.epoch == 0 { // wrapped: clear stamps once per 2^32 queries
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.heap.Reset()
}

func (s *Searcher) seen(v VertexID) bool { return s.stamp[v] == s.epoch }

func (s *Searcher) relax(v VertexID, d float64, parent VertexID) bool {
	if s.seen(v) {
		if d >= s.dist[v] {
			return false
		}
	}
	s.stamp[v] = s.epoch
	s.dist[v] = d
	s.parent[v] = parent
	return true
}

// Dist returns the shortest-path distance from u to v, or Inf when v is
// unreachable. On metric embedded graphs it runs A* with the Euclidean
// heuristic; otherwise plain Dijkstra with early exit at v.
func (s *Searcher) Dist(u, v VertexID) float64 {
	if u == v {
		return 0
	}
	if s.g.metric {
		return s.astar(u, v, Inf)
	}
	return s.dijkstraTo(u, v, Inf)
}

// DistBounded returns the shortest-path distance from u to v when it
// does not exceed maxDist, and Inf otherwise. The search space is pruned
// at maxDist, making "is v within r of u" queries cheap.
func (s *Searcher) DistBounded(u, v VertexID, maxDist float64) float64 {
	if u == v {
		return 0
	}
	if s.g.metric {
		return s.astar(u, v, maxDist)
	}
	return s.dijkstraTo(u, v, maxDist)
}

func (s *Searcher) dijkstraTo(u, v VertexID, maxDist float64) float64 {
	s.begin()
	s.relax(u, 0, NoVertex)
	s.heap.Push(u, 0)
	for s.heap.Len() > 0 {
		it := s.heap.Pop()
		if it.Dist > s.dist[it.Node] { // stale entry
			continue
		}
		if it.Dist > maxDist {
			return Inf
		}
		if it.Node == v {
			return it.Dist
		}
		for _, e := range s.g.Out(it.Node) {
			if nd := it.Dist + e.Weight; nd <= maxDist && s.relax(e.To, nd, it.Node) {
				s.heap.Push(e.To, nd)
			}
		}
	}
	return Inf
}

// astar runs A* from u to v with the Euclidean heuristic. dist[] holds g
// values; heap keys hold f = g + h. Admissible because the graph is
// metric, so results are exact.
func (s *Searcher) astar(u, v VertexID, maxDist float64) float64 {
	s.begin()
	goal := s.g.points[v]
	s.relax(u, 0, NoVertex)
	s.heap.Push(u, s.g.points[u].Dist(goal))
	for s.heap.Len() > 0 {
		it := s.heap.Pop()
		g := s.dist[it.Node]
		if it.Dist > g+s.g.points[it.Node].Dist(goal)+1e-9 { // stale
			continue
		}
		if it.Dist > maxDist {
			return Inf
		}
		if it.Node == v {
			return g
		}
		for _, e := range s.g.Out(it.Node) {
			ng := g + e.Weight
			if ng <= maxDist && s.relax(e.To, ng, it.Node) {
				s.heap.Push(e.To, ng+s.g.points[e.To].Dist(goal))
			}
		}
	}
	return Inf
}

// DistsTo computes shortest-path distances from u to every target,
// filling out (which must have len(targets)); unreachable targets get
// Inf. One Dijkstra runs until all targets are settled or maxDist is
// exceeded — this is the one-to-many primitive used by kinetic-tree
// insertion, which needs distances from one schedule point to a handful
// of candidate positions.
func (s *Searcher) DistsTo(u VertexID, targets []VertexID, maxDist float64, out []float64) {
	if len(out) != len(targets) {
		panic("roadnet: DistsTo out length mismatch")
	}
	s.targetEpoch++
	if s.targetEpoch == 0 {
		for i := range s.targetStamp {
			s.targetStamp[i] = 0
		}
		s.targetEpoch = 1
	}
	remaining := 0
	for i, t := range targets {
		out[i] = Inf
		if t == u {
			out[i] = 0
			continue
		}
		if s.targetStamp[t] != s.targetEpoch {
			s.targetStamp[t] = s.targetEpoch
			remaining++
		}
	}
	if remaining == 0 {
		return
	}

	s.begin()
	s.relax(u, 0, NoVertex)
	s.heap.Push(u, 0)
	for s.heap.Len() > 0 && remaining > 0 {
		it := s.heap.Pop()
		if it.Dist > s.dist[it.Node] {
			continue
		}
		if it.Dist > maxDist {
			break
		}
		if s.targetStamp[it.Node] == s.targetEpoch {
			s.targetStamp[it.Node] = s.targetEpoch - 1 // settle once
			remaining--
		}
		for _, e := range s.g.Out(it.Node) {
			if nd := it.Dist + e.Weight; nd <= maxDist && s.relax(e.To, nd, it.Node) {
				s.heap.Push(e.To, nd)
			}
		}
	}
	for i, t := range targets {
		if out[i] != 0 && s.seen(t) {
			out[i] = s.dist[t]
		}
	}
}

// FillDists runs one Dijkstra from u and writes every vertex's
// shortest-path distance into out (len must equal the vertex count);
// vertices beyond maxDist — or unreachable — get +Inf. It is the
// allocation-free whole-graph variant of DistsTo: one pass answers
// every subsequent "distance from u" lookup by array index, which is
// what lets a coalesced matcher replace its per-cell and per-probe
// passes with a single fill per request side. Values are identical to
// DistsTo's for any target set (the settled distance of a vertex does
// not depend on which targets terminate the search), so mixing the two
// is bit-safe.
func (s *Searcher) FillDists(u VertexID, maxDist float64, out []float64) {
	if len(out) != s.g.NumVertices() {
		panic("roadnet: FillDists out length mismatch")
	}
	s.begin()
	s.relax(u, 0, NoVertex)
	s.heap.Push(u, 0)
	for s.heap.Len() > 0 {
		it := s.heap.Pop()
		if it.Dist > s.dist[it.Node] {
			continue
		}
		if it.Dist > maxDist {
			break
		}
		for _, e := range s.g.Out(it.Node) {
			if nd := it.Dist + e.Weight; nd <= maxDist && s.relax(e.To, nd, it.Node) {
				s.heap.Push(e.To, nd)
			}
		}
	}
	for v := range out {
		if s.stamp[v] == s.epoch {
			out[v] = s.dist[v]
		} else {
			out[v] = Inf
		}
	}
}

// Tree is a shortest-path tree rooted at Source: Dist[v] is the distance
// from Source to v (Inf when unreachable) and Parent[v] the predecessor
// of v on one shortest path (NoVertex for the source and unreachable
// vertices).
type Tree struct {
	Source VertexID
	Dist   []float64
	Parent []VertexID
}

// SPT computes the full shortest-path tree from u, visiting only
// vertices within maxDist (use Inf for the whole graph). The result is
// freshly allocated and safe to retain.
func (s *Searcher) SPT(u VertexID, maxDist float64) *Tree {
	s.begin()
	s.relax(u, 0, NoVertex)
	s.heap.Push(u, 0)
	for s.heap.Len() > 0 {
		it := s.heap.Pop()
		if it.Dist > s.dist[it.Node] {
			continue
		}
		for _, e := range s.g.Out(it.Node) {
			if nd := it.Dist + e.Weight; nd <= maxDist && s.relax(e.To, nd, it.Node) {
				s.heap.Push(e.To, nd)
			}
		}
	}
	n := s.g.NumVertices()
	t := &Tree{Source: u, Dist: make([]float64, n), Parent: make([]VertexID, n)}
	for v := 0; v < n; v++ {
		if s.stamp[v] == s.epoch {
			t.Dist[v] = s.dist[v]
			t.Parent[v] = s.parent[v]
		} else {
			t.Dist[v] = Inf
			t.Parent[v] = NoVertex
		}
	}
	return t
}

// PathTo reconstructs the shortest path from the tree's source to v as a
// vertex sequence (source first, v last). It returns nil when v is
// unreachable.
func (t *Tree) PathTo(v VertexID) []VertexID {
	if math.IsInf(t.Dist[v], 1) {
		return nil
	}
	var rev []VertexID
	for x := v; x != NoVertex; x = t.Parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Path returns one shortest path from u to v (u first, v last) and its
// length. It returns (nil, Inf) when v is unreachable. The path is
// reconstructed from the parent pointers of a fresh goal-directed
// search, so calling Path invalidates nothing and allocates only the
// returned slice.
func (s *Searcher) Path(u, v VertexID) ([]VertexID, float64) {
	var d float64
	if s.g.metric {
		d = s.astar(u, v, Inf)
	} else {
		d = s.dijkstraTo(u, v, Inf)
	}
	if math.IsInf(d, 1) {
		return nil, Inf
	}
	if u == v {
		return []VertexID{u}, 0
	}
	var rev []VertexID
	for x := v; x != NoVertex; x = s.parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, d
}

// MultiSourceLabeled runs one Dijkstra seeded with every source at
// distance zero and returns, freshly allocated, for each vertex the
// distance to its nearest source and the index (into sources) of that
// source; unreachable vertices get (Inf, -1). The grid index uses this
// to compute, per cell, the distance from every vertex to the cell's
// nearest border vertex and the lower-bound matrix rows.
func (s *Searcher) MultiSourceLabeled(sources []VertexID, maxDist float64) ([]float64, []int32) {
	n := s.g.NumVertices()
	label := make([]int32, n)
	s.begin()
	for i, src := range sources {
		if s.relax(src, 0, NoVertex) {
			label[src] = int32(i)
			s.heap.Push(src, 0)
		}
	}
	for s.heap.Len() > 0 {
		it := s.heap.Pop()
		if it.Dist > s.dist[it.Node] {
			continue
		}
		for _, e := range s.g.Out(it.Node) {
			if nd := it.Dist + e.Weight; nd <= maxDist && s.relax(e.To, nd, it.Node) {
				label[e.To] = label[it.Node]
				s.heap.Push(e.To, nd)
			}
		}
	}
	dist := make([]float64, n)
	for v := 0; v < n; v++ {
		if s.stamp[v] == s.epoch {
			dist[v] = s.dist[v]
		} else {
			dist[v] = Inf
			label[v] = -1
		}
	}
	return dist, label
}
