// Package roadnet implements the road-network substrate of PTRider
// (paper §2.1): a weighted graph G = (V, E, W) whose vertices are road
// intersections embedded in the plane and whose edge weights are travel
// costs in metres, together with the shortest-path machinery every other
// module builds on — Dijkstra in several flavours (full, bounded,
// one-to-many, multi-source, target-set), bidirectional Dijkstra, A*
// over the planar embedding, path extraction, and a Floyd–Warshall
// oracle used to cross-check the searches in tests.
//
// Graphs are immutable once built (construct them with a Builder), which
// makes concurrent reads safe without locking; PTRider answers matching
// queries from many goroutines against one shared Graph.
package roadnet

import (
	"fmt"
	"math"

	"ptrider/internal/geo"
)

// VertexID identifies a vertex of a Graph. IDs are dense indices in
// [0, NumVertices).
type VertexID = int32

// NoVertex is the sentinel "no vertex" value.
const NoVertex VertexID = -1

// Inf is the distance reported for unreachable vertex pairs.
var Inf = math.Inf(1)

// HalfEdge is one directed adjacency record: the head vertex of the edge
// and its weight.
type HalfEdge struct {
	To     VertexID
	Weight float64
}

// Graph is an immutable weighted directed graph in compressed sparse row
// form. Undirected road segments are represented as two directed edges.
// All read methods are safe for concurrent use.
type Graph struct {
	points  []geo.Point // vertex embedding; empty when not embedded
	offsets []int32     // len NumVertices+1; adjacency of v is edges[offsets[v]:offsets[v+1]]
	edges   []HalfEdge
	metric  bool // true when every weight ≥ Euclidean length of its edge
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Embedded reports whether the graph carries planar coordinates.
func (g *Graph) Embedded() bool { return len(g.points) > 0 }

// Metric reports whether every edge weight is at least the Euclidean
// length of the edge, making Euclidean distance a valid network
// lower bound. It is false for non-embedded graphs.
func (g *Graph) Metric() bool { return g.metric }

// Point returns the planar coordinates of v. It must only be called on
// embedded graphs.
func (g *Graph) Point(v VertexID) geo.Point { return g.points[v] }

// Out returns the outgoing adjacency of v. The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Graph) Out(v VertexID) []HalfEdge {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// EdgeWeight returns the weight of the directed edge (u, v) and whether
// such an edge exists. With parallel edges the minimum weight is
// returned.
func (g *Graph) EdgeWeight(u, v VertexID) (float64, bool) {
	w, ok := Inf, false
	for _, e := range g.Out(u) {
		if e.To == v && e.Weight < w {
			w, ok = e.Weight, true
		}
	}
	return w, ok
}

// EuclidLB returns a lower bound on dist(u, v): the Euclidean distance
// for metric embedded graphs, zero otherwise.
func (g *Graph) EuclidLB(u, v VertexID) float64 {
	if !g.metric {
		return 0
	}
	return g.points[u].Dist(g.points[v])
}

// Bounds returns the bounding rectangle of the embedding. It returns
// the zero Rect for non-embedded graphs.
func (g *Graph) Bounds() geo.Rect { return geo.BoundingRect(g.points) }

// Builder accumulates vertices and edges and produces an immutable
// Graph. The zero value is ready for use.
type Builder struct {
	points   []geo.Point
	embedded bool
	tails    []VertexID
	heads    []VertexID
	weights  []float64
}

// NewBuilder returns a Builder with storage preallocated for the given
// numbers of vertices and directed edges.
func NewBuilder(vertices, edges int) *Builder {
	return &Builder{
		points:  make([]geo.Point, 0, vertices),
		tails:   make([]VertexID, 0, edges),
		heads:   make([]VertexID, 0, edges),
		weights: make([]float64, 0, edges),
	}
}

// AddVertex adds an embedded vertex and returns its id. Mixing AddVertex
// and AddPlainVertex in one builder is not allowed.
func (b *Builder) AddVertex(p geo.Point) VertexID {
	b.embedded = true
	b.points = append(b.points, p)
	return VertexID(len(b.points) - 1)
}

// AddPlainVertex adds a vertex without coordinates and returns its id.
func (b *Builder) AddPlainVertex() VertexID {
	b.points = append(b.points, geo.Point{})
	return VertexID(len(b.points) - 1)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.points) }

// AddEdge adds the directed edge (u, v) with weight w.
func (b *Builder) AddEdge(u, v VertexID, w float64) {
	b.tails = append(b.tails, u)
	b.heads = append(b.heads, v)
	b.weights = append(b.weights, w)
}

// AddUndirectedEdge adds directed edges (u, v) and (v, u), both with
// weight w.
func (b *Builder) AddUndirectedEdge(u, v VertexID, w float64) {
	b.AddEdge(u, v, w)
	b.AddEdge(v, u, w)
}

// Build validates the accumulated data and returns the immutable Graph.
// It fails when an edge references an unknown vertex, has a negative,
// NaN or infinite weight, or is a self-loop.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.points)
	for i := range b.tails {
		u, v, w := b.tails[i], b.heads[i], b.weights[i]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("roadnet: edge %d (%d->%d) references vertex outside [0,%d)", i, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("roadnet: edge %d is a self-loop at vertex %d", i, u)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("roadnet: edge %d (%d->%d) has invalid weight %v", i, u, v, w)
		}
	}

	g := &Graph{
		offsets: make([]int32, n+1),
		edges:   make([]HalfEdge, len(b.tails)),
	}
	if b.embedded {
		g.points = append([]geo.Point(nil), b.points...)
	} else {
		g.points = make([]geo.Point, n) // keep len(points)==n for Bounds etc.
	}

	// Counting sort by tail vertex into CSR form.
	for _, u := range b.tails {
		g.offsets[u+1]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] += g.offsets[v]
	}
	next := append([]int32(nil), g.offsets[:n]...)
	for i := range b.tails {
		u := b.tails[i]
		g.edges[next[u]] = HalfEdge{To: b.heads[i], Weight: b.weights[i]}
		next[u]++
	}

	g.metric = b.embedded
	if b.embedded {
		for i := range b.tails {
			if b.weights[i] < b.points[b.tails[i]].Dist(b.points[b.heads[i]])-1e-9 {
				g.metric = false
				break
			}
		}
	}
	if !b.embedded {
		g.points = nil
	}
	return g, nil
}

// MustBuild is Build that panics on error; intended for tests and
// generators whose inputs are known valid.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
