package roadnet_test

import (
	"math"
	"math/rand"
	"testing"

	"ptrider/internal/geo"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

func TestBuilderCSRAdjacency(t *testing.T) {
	b := roadnet.NewBuilder(4, 8)
	for i := 0; i < 4; i++ {
		b.AddPlainVertex()
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(1, 3, 4)
	b.AddEdge(0, 3, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got %d vertices %d edges, want 4 and 5", g.NumVertices(), g.NumEdges())
	}
	if got := g.Degree(0); got != 3 {
		t.Errorf("Degree(0) = %d, want 3", got)
	}
	want := map[roadnet.VertexID]float64{1: 1, 2: 2, 3: 5}
	for _, e := range g.Out(0) {
		if want[e.To] != e.Weight {
			t.Errorf("Out(0) contains %v, want weights %v", e, want)
		}
		delete(want, e.To)
	}
	if len(want) != 0 {
		t.Errorf("Out(0) missing edges to %v", want)
	}
	if g.Degree(3) != 0 {
		t.Errorf("Degree(3) = %d, want 0", g.Degree(3))
	}
}

func TestBuilderRejectsInvalidEdges(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *roadnet.Builder)
	}{
		{"out of range head", func(b *roadnet.Builder) { b.AddEdge(0, 9, 1) }},
		{"out of range tail", func(b *roadnet.Builder) { b.AddEdge(-1, 0, 1) }},
		{"self loop", func(b *roadnet.Builder) { b.AddEdge(1, 1, 1) }},
		{"negative weight", func(b *roadnet.Builder) { b.AddEdge(0, 1, -2) }},
		{"NaN weight", func(b *roadnet.Builder) { b.AddEdge(0, 1, math.NaN()) }},
		{"infinite weight", func(b *roadnet.Builder) { b.AddEdge(0, 1, math.Inf(1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := roadnet.NewBuilder(2, 2)
			b.AddPlainVertex()
			b.AddPlainVertex()
			tc.build(b)
			if _, err := b.Build(); err == nil {
				t.Fatal("Build accepted invalid edge")
			}
		})
	}
}

func TestEdgeWeightParallelEdgesTakeMinimum(t *testing.T) {
	b := roadnet.NewBuilder(2, 3)
	b.AddPlainVertex()
	b.AddPlainVertex()
	b.AddEdge(0, 1, 7)
	b.AddEdge(0, 1, 3)
	b.AddEdge(0, 1, 5)
	g := b.MustBuild()
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 3 {
		t.Fatalf("EdgeWeight = (%v, %v), want (3, true)", w, ok)
	}
	if _, ok := g.EdgeWeight(1, 0); ok {
		t.Fatal("EdgeWeight(1,0) reported an edge that does not exist")
	}
}

func TestMetricDetection(t *testing.T) {
	b := roadnet.NewBuilder(2, 2)
	b.AddVertex(geo.Point{X: 0})
	b.AddVertex(geo.Point{X: 100})
	b.AddUndirectedEdge(0, 1, 100)
	if g := b.MustBuild(); !g.Metric() {
		t.Error("graph with weight == Euclidean length should be metric")
	}

	b = roadnet.NewBuilder(2, 2)
	b.AddVertex(geo.Point{X: 0})
	b.AddVertex(geo.Point{X: 100})
	b.AddUndirectedEdge(0, 1, 50) // shorter than the Euclidean length
	if g := b.MustBuild(); g.Metric() {
		t.Error("graph with weight < Euclidean length must not be metric")
	}

	b = roadnet.NewBuilder(2, 2)
	b.AddPlainVertex()
	b.AddPlainVertex()
	b.AddUndirectedEdge(0, 1, 50)
	g := b.MustBuild()
	if g.Metric() || g.Embedded() {
		t.Error("plain graph must be neither metric nor embedded")
	}
	if lb := g.EuclidLB(0, 1); lb != 0 {
		t.Errorf("EuclidLB on plain graph = %v, want 0", lb)
	}
}

func TestConnected(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 5, 5, 100)
	if !roadnet.Connected(g) {
		t.Error("lattice should be connected")
	}
	b := roadnet.NewBuilder(3, 2)
	for i := 0; i < 3; i++ {
		b.AddPlainVertex()
	}
	b.AddUndirectedEdge(0, 1, 1)
	if roadnet.Connected(b.MustBuild()) {
		t.Error("graph with isolated vertex reported connected")
	}
}

func TestIsSymmetric(t *testing.T) {
	if g := testnet.RandomConnected(rand.New(rand.NewSource(2)), 30, 2); !g.IsSymmetric() {
		t.Error("undirected test graph should be symmetric")
	}
	b := roadnet.NewBuilder(2, 1)
	b.AddPlainVertex()
	b.AddPlainVertex()
	b.AddEdge(0, 1, 1)
	if b.MustBuild().IsSymmetric() {
		t.Error("one-way edge graph reported symmetric")
	}
}

func TestDistAgainstOracleRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testnet.RandomConnected(rng, 40, 2)
		oracle := roadnet.NewOracle(g)
		s := roadnet.NewSearcher(g)
		bi := roadnet.NewBiSearcher(g)
		for trial := 0; trial < 50; trial++ {
			u := roadnet.VertexID(rng.Intn(g.NumVertices()))
			v := roadnet.VertexID(rng.Intn(g.NumVertices()))
			want := oracle.Dist(u, v)
			if got := s.Dist(u, v); math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: Dist(%d,%d) = %v, oracle %v", seed, u, v, got, want)
			}
			if got := bi.Dist(u, v); math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: BiSearcher.Dist(%d,%d) = %v, oracle %v", seed, u, v, got, want)
			}
		}
	}
}

func TestAStarMatchesDijkstraOnMetricGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testnet.Lattice(rng, 8, 8, 100)
	if !g.Metric() {
		t.Fatal("lattice should be metric")
	}
	oracle := roadnet.NewOracle(g)
	s := roadnet.NewSearcher(g) // uses A* on metric graphs
	for trial := 0; trial < 100; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if got, want := s.Dist(u, v), oracle.Dist(u, v); math.Abs(got-want) > 1e-9 {
			t.Fatalf("A* Dist(%d,%d) = %v, oracle %v", u, v, got, want)
		}
	}
}

func TestDistBounded(t *testing.T) {
	g := testnet.Line(10, 5) // distances are multiples of 5
	s := roadnet.NewSearcher(g)
	if d := s.DistBounded(0, 4, 20); d != 20 {
		t.Errorf("DistBounded(0,4,20) = %v, want 20", d)
	}
	if d := s.DistBounded(0, 5, 20); !math.IsInf(d, 1) {
		t.Errorf("DistBounded(0,5,20) = %v, want +Inf", d)
	}
	if d := s.DistBounded(3, 3, 0); d != 0 {
		t.Errorf("DistBounded(3,3,0) = %v, want 0", d)
	}
}

func TestUnreachableIsInf(t *testing.T) {
	b := roadnet.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddPlainVertex()
	}
	b.AddUndirectedEdge(0, 1, 1)
	b.AddUndirectedEdge(2, 3, 1)
	g := b.MustBuild()
	s := roadnet.NewSearcher(g)
	if d := s.Dist(0, 3); !math.IsInf(d, 1) {
		t.Errorf("Dist across components = %v, want +Inf", d)
	}
	if p, d := s.Path(0, 3); p != nil || !math.IsInf(d, 1) {
		t.Errorf("Path across components = (%v, %v), want (nil, +Inf)", p, d)
	}
}

func TestDistsToMatchesIndividualQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testnet.RandomConnected(rng, 60, 2)
	oracle := roadnet.NewOracle(g)
	s := roadnet.NewSearcher(g)
	for trial := 0; trial < 20; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		targets := make([]roadnet.VertexID, 8)
		for i := range targets {
			targets[i] = roadnet.VertexID(rng.Intn(g.NumVertices()))
		}
		targets[3] = u          // self target
		targets[5] = targets[4] // duplicate target
		out := make([]float64, len(targets))
		s.DistsTo(u, targets, roadnet.Inf, out)
		for i, v := range targets {
			if want := oracle.Dist(u, v); math.Abs(out[i]-want) > 1e-9 {
				t.Fatalf("DistsTo(%d)[%d→%d] = %v, oracle %v", u, i, v, out[i], want)
			}
		}
	}
}

func TestDistsToBounded(t *testing.T) {
	g := testnet.Line(10, 5)
	s := roadnet.NewSearcher(g)
	targets := []roadnet.VertexID{1, 4, 9}
	out := make([]float64, 3)
	s.DistsTo(0, targets, 20, out)
	if out[0] != 5 || out[1] != 20 {
		t.Errorf("in-bound targets: got %v, want [5 20 ...]", out)
	}
	if !math.IsInf(out[2], 1) {
		t.Errorf("out-of-bound target: got %v, want +Inf", out[2])
	}
}

func TestSPTAndPathTo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testnet.RandomConnected(rng, 50, 2)
	oracle := roadnet.NewOracle(g)
	s := roadnet.NewSearcher(g)
	src := roadnet.VertexID(17)
	tree := s.SPT(src, roadnet.Inf)
	for v := 0; v < g.NumVertices(); v++ {
		if math.Abs(tree.Dist[v]-oracle.Dist(src, roadnet.VertexID(v))) > 1e-9 {
			t.Fatalf("SPT dist to %d = %v, oracle %v", v, tree.Dist[v], oracle.Dist(src, roadnet.VertexID(v)))
		}
		path := tree.PathTo(roadnet.VertexID(v))
		if path == nil {
			t.Fatalf("PathTo(%d) = nil on connected graph", v)
		}
		if path[0] != src || path[len(path)-1] != roadnet.VertexID(v) {
			t.Fatalf("PathTo(%d) endpoints = %v", v, path)
		}
		var sum float64
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeight(path[i-1], path[i])
			if !ok {
				t.Fatalf("PathTo(%d) uses non-edge %d→%d", v, path[i-1], path[i])
			}
			sum += w
		}
		if math.Abs(sum-tree.Dist[v]) > 1e-9 {
			t.Fatalf("PathTo(%d) length %v, want %v", v, sum, tree.Dist[v])
		}
	}
}

func TestSPTBounded(t *testing.T) {
	g := testnet.Line(10, 5)
	s := roadnet.NewSearcher(g)
	tree := s.SPT(0, 12)
	for v := 0; v < 10; v++ {
		want := float64(v) * 5
		if want > 12 {
			want = math.Inf(1)
		}
		if tree.Dist[v] != want {
			t.Errorf("bounded SPT dist[%d] = %v, want %v", v, tree.Dist[v], want)
		}
	}
	if tree.PathTo(9) != nil {
		t.Error("PathTo beyond bound should be nil")
	}
}

func TestPathIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testnet.Lattice(rng, 6, 6, 100)
	oracle := roadnet.NewOracle(g)
	s := roadnet.NewSearcher(g)
	for trial := 0; trial < 50; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		path, d := s.Path(u, v)
		if math.Abs(d-oracle.Dist(u, v)) > 1e-9 {
			t.Fatalf("Path(%d,%d) dist %v, oracle %v", u, v, d, oracle.Dist(u, v))
		}
		var sum float64
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeight(path[i-1], path[i])
			if !ok {
				t.Fatalf("Path(%d,%d) uses non-edge %d→%d", u, v, path[i-1], path[i])
			}
			sum += w
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("Path(%d,%d) edge sum %v != reported %v", u, v, sum, d)
		}
		if u == v && (len(path) != 1 || path[0] != u) {
			t.Fatalf("Path(%d,%d) = %v, want single-vertex path", u, v, path)
		}
	}
}

func TestMultiSourceLabeled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := testnet.RandomConnected(rng, 50, 2)
	oracle := roadnet.NewOracle(g)
	s := roadnet.NewSearcher(g)
	sources := []roadnet.VertexID{3, 19, 42}
	dist, label := s.MultiSourceLabeled(sources, roadnet.Inf)
	for v := 0; v < g.NumVertices(); v++ {
		want := math.Inf(1)
		for _, src := range sources {
			if d := oracle.Dist(src, roadnet.VertexID(v)); d < want {
				want = d
			}
		}
		if math.Abs(dist[v]-want) > 1e-9 {
			t.Fatalf("multi-source dist[%d] = %v, want %v", v, dist[v], want)
		}
		if label[v] < 0 || int(label[v]) >= len(sources) {
			t.Fatalf("label[%d] = %d out of range", v, label[v])
		}
		if got := oracle.Dist(sources[label[v]], roadnet.VertexID(v)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("label[%d] names source at distance %v, nearest is %v", v, got, want)
		}
	}
}

func TestEuclidLBNeverExceedsNetworkDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := testnet.Lattice(rng, 7, 7, 100)
	s := roadnet.NewSearcher(g)
	for trial := 0; trial < 200; trial++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if lb, d := g.EuclidLB(u, v), s.Dist(u, v); lb > d+1e-9 {
			t.Fatalf("EuclidLB(%d,%d) = %v exceeds network distance %v", u, v, lb, d)
		}
	}
}

func TestSearcherReuseAcrossManyQueries(t *testing.T) {
	// The epoch mechanism must isolate consecutive queries.
	g := testnet.Line(5, 1)
	s := roadnet.NewSearcher(g)
	for i := 0; i < 1000; i++ {
		if d := s.Dist(0, 4); d != 4 {
			t.Fatalf("query %d: Dist = %v, want 4", i, d)
		}
		if d := s.Dist(4, 0); d != 4 {
			t.Fatalf("query %d: reverse Dist = %v, want 4", i, d)
		}
	}
}

func TestPaperNetworkDistances(t *testing.T) {
	g := testnet.PaperNetwork()
	s := roadnet.NewSearcher(g)
	v := func(k int) roadnet.VertexID { return roadnet.VertexID(k - 1) }
	checks := []struct {
		a, b int
		want float64
	}{
		{1, 2, 6}, {2, 12, 8}, {2, 16, 12}, {12, 16, 4},
		{16, 17, 3}, {12, 17, 7}, {13, 12, 8},
	}
	for _, c := range checks {
		if got := s.Dist(v(c.a), v(c.b)); got != c.want {
			t.Errorf("dist(v%d,v%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if !roadnet.Connected(g) {
		t.Error("paper network must be connected")
	}
}
