package roadnet

// Oracle is an all-pairs shortest-path table computed with
// Floyd–Warshall. It is O(V³) to build and O(V²) space, so it exists
// for tests and for the small worked examples of the paper, where it
// cross-checks every other search.
type Oracle struct {
	n    int
	dist []float64 // row-major n×n
}

// NewOracle computes all-pairs shortest paths for g.
func NewOracle(g *Graph) *Oracle {
	n := g.NumVertices()
	o := &Oracle{n: n, dist: make([]float64, n*n)}
	for i := range o.dist {
		o.dist[i] = Inf
	}
	for v := 0; v < n; v++ {
		o.dist[v*n+v] = 0
		for _, e := range g.Out(VertexID(v)) {
			if e.Weight < o.dist[v*n+int(e.To)] {
				o.dist[v*n+int(e.To)] = e.Weight
			}
		}
	}
	for k := 0; k < n; k++ {
		rowK := o.dist[k*n : k*n+n]
		for i := 0; i < n; i++ {
			dik := o.dist[i*n+k]
			if dik == Inf {
				continue
			}
			rowI := o.dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if nd := dik + rowK[j]; nd < rowI[j] {
					rowI[j] = nd
				}
			}
		}
	}
	return o
}

// Dist returns the shortest-path distance from u to v.
func (o *Oracle) Dist(u, v VertexID) float64 { return o.dist[int(u)*o.n+int(v)] }

// Connected reports whether every vertex is reachable from vertex 0 —
// the invariant PTRider's generator maintains so that every trip is
// servable.
func Connected(g *Graph) bool {
	n := g.NumVertices()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []VertexID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out(v) {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == n
}
