package roadnet

import "ptrider/internal/heapx"

// BiSearcher runs bidirectional Dijkstra queries. It requires a
// symmetric graph (every directed edge paired with its reverse, which
// holds for all road networks PTRider builds — check with
// Graph.IsSymmetric in tests); forward and backward searches then share
// the out-adjacency.
//
// Bidirectional search settles roughly half the vertices of a
// goal-directed Dijkstra on long queries, and is what PTRider uses for
// point-to-point distances on non-embedded graphs.
//
// A BiSearcher is not safe for concurrent use.
type BiSearcher struct {
	g     *Graph
	fwd   *Searcher
	bwd   *Searcher
	fheap *heapx.DistHeap
	bheap *heapx.DistHeap
}

// NewBiSearcher returns a BiSearcher for g.
func NewBiSearcher(g *Graph) *BiSearcher {
	return &BiSearcher{
		g:     g,
		fwd:   NewSearcher(g),
		bwd:   NewSearcher(g),
		fheap: heapx.NewDistHeap(256),
		bheap: heapx.NewDistHeap(256),
	}
}

// Dist returns the shortest-path distance between u and v, or Inf when
// disconnected.
func (b *BiSearcher) Dist(u, v VertexID) float64 {
	return b.DistBounded(u, v, Inf)
}

// DistBounded returns the distance between u and v when it does not
// exceed maxDist, and Inf otherwise.
func (b *BiSearcher) DistBounded(u, v VertexID, maxDist float64) float64 {
	if u == v {
		return 0
	}
	f, w := b.fwd, b.bwd
	f.begin()
	w.begin()
	b.fheap.Reset()
	b.bheap.Reset()
	f.relax(u, 0, NoVertex)
	w.relax(v, 0, NoVertex)
	b.fheap.Push(u, 0)
	b.bheap.Push(v, 0)

	best := Inf
	for b.fheap.Len() > 0 || b.bheap.Len() > 0 {
		// Alternate by smaller frontier key.
		var side *Searcher
		var heap *heapx.DistHeap
		var other *Searcher
		switch {
		case b.fheap.Len() == 0:
			side, heap, other = w, b.bheap, f
		case b.bheap.Len() == 0:
			side, heap, other = f, b.fheap, w
		case b.fheap.Peek().Dist <= b.bheap.Peek().Dist:
			side, heap, other = f, b.fheap, w
		default:
			side, heap, other = w, b.bheap, f
		}

		it := heap.Pop()
		if it.Dist > side.dist[it.Node] {
			continue
		}
		// Standard stopping criterion: when the top of either queue can
		// no longer improve the best meeting point.
		if it.Dist >= best || it.Dist > maxDist {
			break
		}
		for _, e := range side.g.Out(it.Node) {
			nd := it.Dist + e.Weight
			if nd > maxDist {
				continue
			}
			if side.relax(e.To, nd, it.Node) {
				heap.Push(e.To, nd)
			}
			if other.seen(e.To) {
				if total := nd + other.dist[e.To]; total < best {
					best = total
				}
			}
		}
	}
	if best > maxDist {
		return Inf
	}
	return best
}

// IsSymmetric reports whether for every directed edge (u, v, w) the
// graph also contains (v, u, w). Road networks built by PTRider's
// generator are symmetric; BiSearcher requires it.
func (g *Graph) IsSymmetric() bool {
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, e := range g.Out(u) {
			if !g.hasEdge(e.To, u, e.Weight) {
				return false
			}
		}
	}
	return true
}

func (g *Graph) hasEdge(u, v VertexID, w float64) bool {
	for _, e := range g.Out(u) {
		if e.To == v && e.Weight == w {
			return true
		}
	}
	return false
}
