package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ptrider/internal/geo"
)

// The network text format is line-oriented and self-describing:
//
//	ptrider-network 1
//	v <x> <y>          one line per vertex, id = line order
//	e <u> <v> <w>      one directed edge per line
//
// Undirected roads appear as two e-lines, exactly as in the Graph.
// It exists so generated cities can be saved once and replayed across
// experiment runs (and so external networks can be imported).

const codecHeader = "ptrider-network 1"

// WriteGraph serialises g.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, codecHeader); err != nil {
		return err
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		p := geo.Point{}
		if g.Embedded() {
			p = g.Point(VertexID(v))
		}
		if _, err := fmt.Fprintf(bw, "v %s %s\n",
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64)); err != nil {
			return err
		}
	}
	for v := 0; v < n; v++ {
		for _, e := range g.Out(VertexID(v)) {
			if _, err := fmt.Fprintf(bw, "e %d %d %s\n", v, e.To,
				strconv.FormatFloat(e.Weight, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadGraph parses a network written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("roadnet: empty network file")
	}
	if strings.TrimSpace(sc.Text()) != codecHeader {
		return nil, fmt.Errorf("roadnet: bad header %q", sc.Text())
	}
	b := NewBuilder(0, 0)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "v":
			if len(fields) != 3 {
				return nil, fmt.Errorf("roadnet: line %d: vertex needs 2 coordinates", line)
			}
			x, err1 := strconv.ParseFloat(fields[1], 64)
			y, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad coordinates", line)
			}
			b.AddVertex(geo.Point{X: x, Y: y})
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("roadnet: line %d: edge needs tail, head, weight", line)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad edge", line)
			}
			b.AddEdge(VertexID(u), VertexID(v), w)
		default:
			return nil, fmt.Errorf("roadnet: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
