package roadnet

import (
	"fmt"
	"math"
)

// Landmarks provides ALT-style lower bounds (Goldberg & Harrelson):
// after precomputing exact distances from k landmark vertices to every
// vertex, the triangle inequality gives
//
//	dist(u, v) ≥ |dist(L, v) − dist(L, u)|
//
// for every landmark L. The bound is exact when u or v lies on a
// shortest path through a landmark, and complements the grid index's
// cell bounds — PTRider's metric takes the max of both. On symmetric
// (undirected) graphs one table per landmark suffices.
//
// Landmarks are selected with the standard farthest-point heuristic:
// start from an arbitrary vertex, repeatedly add the vertex maximising
// the distance to the chosen set.
type Landmarks struct {
	dist []float64 // k rows of n entries
	n    int
	k    int
}

// SelectLandmarks builds k landmark tables for g, which must be
// symmetric (undirected). It fails on k < 1 or graphs with no vertices.
func SelectLandmarks(g *Graph, k int) (*Landmarks, error) {
	n := g.NumVertices()
	if k < 1 {
		return nil, fmt.Errorf("roadnet: need at least one landmark")
	}
	if n == 0 {
		return nil, fmt.Errorf("roadnet: empty graph")
	}
	if k > n {
		k = n
	}
	s := NewSearcher(g)
	lm := &Landmarks{dist: make([]float64, 0, k*n), n: n, k: 0}

	// Farthest-point selection, seeded at vertex 0 via a throwaway
	// tree: the first landmark is the vertex farthest from 0, which
	// tends to sit on the periphery.
	seedTree := s.SPT(0, math.Inf(1))
	first := VertexID(0)
	best := -1.0
	for v := 0; v < n; v++ {
		if d := seedTree.Dist[v]; !math.IsInf(d, 1) && d > best {
			best = d
			first = VertexID(v)
		}
	}

	minDist := make([]float64, n) // distance to nearest chosen landmark
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	next := first
	for lm.k < k {
		tree := s.SPT(next, math.Inf(1))
		lm.dist = append(lm.dist, tree.Dist...)
		lm.k++
		farthest, far := next, -1.0
		for v := 0; v < n; v++ {
			if tree.Dist[v] < minDist[v] {
				minDist[v] = tree.Dist[v]
			}
			if !math.IsInf(minDist[v], 1) && minDist[v] > far {
				far = minDist[v]
				farthest = VertexID(v)
			}
		}
		if farthest == next || far <= 0 {
			break // graph exhausted (fewer useful landmarks than asked)
		}
		next = farthest
	}
	return lm, nil
}

// K returns the number of landmark tables built.
func (lm *Landmarks) K() int { return lm.k }

// LB returns the ALT lower bound on dist(u, v): the maximum over
// landmarks of |dist(L, v) − dist(L, u)|. Zero when either vertex is
// unreachable from every landmark.
func (lm *Landmarks) LB(u, v VertexID) float64 {
	if u == v {
		return 0
	}
	best := 0.0
	for i := 0; i < lm.k; i++ {
		row := lm.dist[i*lm.n : (i+1)*lm.n]
		du, dv := row[u], row[v]
		if math.IsInf(du, 1) || math.IsInf(dv, 1) {
			continue
		}
		if d := math.Abs(dv - du); d > best {
			best = d
		}
	}
	return best
}
