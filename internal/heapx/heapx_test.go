package heapx_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ptrider/internal/heapx"
)

func TestDistHeapOrdering(t *testing.T) {
	h := heapx.NewDistHeap(4)
	in := []float64{5, 1, 4, 2, 3, 0, 9, 7, 8, 6}
	for i, d := range in {
		h.Push(int32(i), d)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	prev := -1.0
	for h.Len() > 0 {
		it := h.Pop()
		if it.Dist < prev {
			t.Fatalf("Pop out of order: %v after %v", it.Dist, prev)
		}
		prev = it.Dist
	}
}

func TestDistHeapPeekAndReset(t *testing.T) {
	h := heapx.NewDistHeap(0)
	h.Push(1, 3)
	h.Push(2, 1)
	if p := h.Peek(); p.Node != 2 || p.Dist != 1 {
		t.Errorf("Peek = %+v", p)
	}
	if h.Len() != 2 {
		t.Errorf("Peek must not remove; Len = %d", h.Len())
	}
	h.Reset()
	if h.Len() != 0 {
		t.Errorf("Reset left %d items", h.Len())
	}
	h.Push(7, 42)
	if p := h.Pop(); p.Node != 7 || p.Dist != 42 {
		t.Errorf("heap unusable after Reset: %+v", p)
	}
}

func TestDistHeapRandomisedHeapSort(t *testing.T) {
	f := func(values []float64) bool {
		h := heapx.NewDistHeap(len(values))
		clean := values[:0:0]
		for _, v := range values {
			if v == v { // drop NaNs, which have no total order
				clean = append(clean, v)
			}
		}
		for i, v := range clean {
			h.Push(int32(i), v)
		}
		got := make([]float64, 0, len(clean))
		for h.Len() > 0 {
			got = append(got, h.Pop().Dist)
		}
		want := append([]float64(nil), clean...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistHeapDuplicatesStay(t *testing.T) {
	h := heapx.NewDistHeap(0)
	h.Push(1, 5)
	h.Push(1, 3)
	h.Push(1, 4)
	if h.Len() != 3 {
		t.Fatalf("duplicates must be kept (lazy deletion); Len = %d", h.Len())
	}
	if d := h.Pop().Dist; d != 3 {
		t.Errorf("first Pop = %v, want 3", d)
	}
}

func TestGenericHeapOrdering(t *testing.T) {
	h := heapx.NewHeap[string](0)
	h.Push(2, "b")
	h.Push(1, "a")
	h.Push(3, "c")
	if h.PeekKey() != 1 {
		t.Errorf("PeekKey = %v", h.PeekKey())
	}
	var got []string
	for h.Len() > 0 {
		_, v := h.Pop()
		got = append(got, v)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("order = %v", got)
	}
}

func TestGenericHeapRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := heapx.NewHeap[int](0)
	const n = 2000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64() * 1000
		h.Push(keys[i], i)
	}
	sort.Float64s(keys)
	for i := 0; i < n; i++ {
		k, v := h.Pop()
		if k != keys[i] {
			t.Fatalf("pop %d: key %v, want %v", i, k, keys[i])
		}
		if k != keys[i] || v < 0 || v >= n {
			t.Fatalf("pop %d: bad payload %d", i, v)
		}
	}
}

func TestGenericHeapReset(t *testing.T) {
	h := heapx.NewHeap[int](4)
	h.Push(1, 10)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset should empty the heap")
	}
	h.Push(2, 20)
	if k, v := h.Pop(); k != 2 || v != 20 {
		t.Fatalf("heap unusable after Reset: (%v, %v)", k, v)
	}
}
