// Package heapx provides the typed binary min-heaps that back every
// graph search and ring expansion in PTRider.
//
// The standard library's container/heap forces an interface-based
// element type and allocates on every Push via interface boxing. The
// searches in internal/roadnet and internal/core sit on the hot path of
// request matching, so this package provides two concrete heaps:
//
//   - DistHeap: a (node id, float64 priority) heap used by Dijkstra and
//     A*, with lazy-deletion semantics (duplicates allowed, stale
//     entries skipped by the caller).
//   - Heap[T]: a small generic min-heap ordered by a float64 key, used
//     where the payload is richer than a node id (e.g. cell rings).
//
// Both heaps are zero-value ready and intentionally unsynchronised;
// callers own their synchronisation.
package heapx

// DistItem is an entry of a DistHeap: a node identifier with its
// tentative distance.
type DistItem struct {
	Node int32
	Dist float64
}

// DistHeap is a binary min-heap of DistItems ordered by Dist. The zero
// value is an empty heap ready for use.
type DistHeap struct {
	items []DistItem
}

// NewDistHeap returns a heap with storage preallocated for n items.
func NewDistHeap(n int) *DistHeap {
	return &DistHeap{items: make([]DistItem, 0, n)}
}

// Len returns the number of items in the heap.
func (h *DistHeap) Len() int { return len(h.items) }

// Reset empties the heap while retaining its storage.
func (h *DistHeap) Reset() { h.items = h.items[:0] }

// Push adds node with the given tentative distance.
func (h *DistHeap) Push(node int32, dist float64) {
	h.items = append(h.items, DistItem{Node: node, Dist: dist})
	h.up(len(h.items) - 1)
}

// Pop removes and returns the item with the smallest distance. It must
// not be called on an empty heap.
func (h *DistHeap) Pop() DistItem {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the smallest item without removing it. It must not be
// called on an empty heap.
func (h *DistHeap) Peek() DistItem { return h.items[0] }

func (h *DistHeap) up(i int) {
	item := h.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist <= item.Dist {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = item
}

func (h *DistHeap) down(i int) {
	n := len(h.items)
	item := h.items[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.items[right].Dist < h.items[left].Dist {
			child = right
		}
		if item.Dist <= h.items[child].Dist {
			break
		}
		h.items[i] = h.items[child]
		i = child
	}
	h.items[i] = item
}

// Heap is a generic binary min-heap of values ordered by a float64 key.
// The zero value is an empty heap ready for use.
type Heap[T any] struct {
	keys []float64
	vals []T
}

// NewHeap returns a generic heap with storage preallocated for n items.
func NewHeap[T any](n int) *Heap[T] {
	return &Heap[T]{keys: make([]float64, 0, n), vals: make([]T, 0, n)}
}

// Len returns the number of items in the heap.
func (h *Heap[T]) Len() int { return len(h.keys) }

// Reset empties the heap while retaining its storage.
func (h *Heap[T]) Reset() {
	h.keys = h.keys[:0]
	h.vals = h.vals[:0]
}

// Push adds v with the given key.
func (h *Heap[T]) Push(key float64, v T) {
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, v)
	i := len(h.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			break
		}
		h.keys[parent], h.keys[i] = h.keys[i], h.keys[parent]
		h.vals[parent], h.vals[i] = h.vals[i], h.vals[parent]
		i = parent
	}
}

// Pop removes and returns the value with the smallest key together with
// the key. It must not be called on an empty heap.
func (h *Heap[T]) Pop() (float64, T) {
	key, val := h.keys[0], h.vals[0]
	n := len(h.keys) - 1
	h.keys[0], h.vals[0] = h.keys[n], h.vals[n]
	h.keys, h.vals = h.keys[:n], h.vals[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.keys[right] < h.keys[left] {
			child = right
		}
		if h.keys[i] <= h.keys[child] {
			break
		}
		h.keys[i], h.keys[child] = h.keys[child], h.keys[i]
		h.vals[i], h.vals[child] = h.vals[child], h.vals[i]
		i = child
	}
	return key, val
}

// PeekKey returns the smallest key without removing its item. It must
// not be called on an empty heap.
func (h *Heap[T]) PeekKey() float64 { return h.keys[0] }
