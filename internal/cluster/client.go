// client.go is the gateway's half of the shard RPC surface: a pooled
// HTTP client around one remote city shard. A ShardClient implements
// relay.LegEngine, so the relay scheduler's probe/commit/compensate
// protocol runs over real sockets unchanged.
//
// Failure discipline:
//
//   - Transport failures — dial errors, per-call deadline expiry, a
//     connection dying mid-response, 5xx bodies that are not the error
//     envelope — surface as core.ErrUnavailable.
//   - Idempotent calls (reads, and submits carrying a generated
//     idempotency key) retry with bounded exponential backoff before
//     giving up.
//   - Commit-like calls (choose, decline, cancel) are not blindly
//     retried: a transport failure leaves them ambiguous — the shard
//     may have journaled the mutation before dying. The client
//     resolves the ambiguity by re-reading the record: if the
//     mutation's outcome is visible the call succeeded; if the record
//     is untouched one retry is safe; otherwise the ambiguity is
//     surfaced as ErrUnavailable for the caller (the relay scheduler's
//     deferred compensation) to resolve later.
//   - Advance is never retried: double-ticking a shard would skew its
//     clock against the fleet.
//
// Immutable per-city data — the road graph, the speed and quoting
// limits — is fetched once at dial time; slowly-changing data (params,
// the fleet-size meta) sits behind a small TTL cache.
package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/kinetic"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
	"ptrider/internal/telemetry"
)

// ClientConfig tunes a ShardClient. The zero value means defaults.
type ClientConfig struct {
	// Timeout is the per-call deadline (0 = 5s).
	Timeout time.Duration
	// DialTimeout bounds the startup readiness wait: Dial polls the
	// shard's /v1/readyz until it answers 200 or this elapses (0 = 10s).
	DialTimeout time.Duration
	// Retries is how many times an idempotent call is retried after a
	// transport failure (0 = 3; negative = none).
	Retries int
	// RetryBackoff is the first retry's backoff, doubling per attempt
	// (0 = 50ms).
	RetryBackoff time.Duration
	// CacheTTL bounds the params/meta cache staleness (0 = 2s).
	CacheTTL time.Duration
	// Registry, when non-nil, receives the per-shard RPC telemetry:
	// cluster_rpc_seconds (latency), cluster_rpc_errors_total,
	// cluster_rpc_retries_total, labeled shard=<addr>.
	Registry *telemetry.Registry
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 2 * time.Second
	}
	return c
}

// cached is one TTL cache slot.
type cached[T any] struct {
	val T
	exp time.Time
}

// ShardClient speaks the shard RPC surface for one remote city. It
// implements relay.LegEngine; all methods are safe for concurrent use.
type ShardClient struct {
	addr string // normalised base URL
	hc   *http.Client
	cfg  ClientConfig

	// Dial-time immutable city description.
	meta  metaWire
	graph *roadnet.Graph

	mu          sync.Mutex
	metaCache   cached[metaWire]
	paramsCache cached[core.ServiceParams]

	rpcLat     *telemetry.LatencyHist
	rpcErrs    *telemetry.Counter
	rpcRetries *telemetry.Counter
}

// ShardClient drives relay legs over the wire.
var _ relay.LegEngine = (*ShardClient)(nil)

// Dial connects to a shard at addr ("host:port" or a full URL), waits
// for its readiness probe, and caches the immutable city description
// (meta, road graph).
func Dial(addr string, cfg ClientConfig) (*ShardClient, error) {
	cfg = cfg.withDefaults()
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	c := &ShardClient{
		addr: base,
		hc:   &http.Client{Transport: http.DefaultTransport.(*http.Transport).Clone()},
		cfg:  cfg,
		rpcLat: cfg.Registry.LatencyHist("cluster_rpc_seconds",
			"shard RPC round-trip latency", telemetry.Label{Name: "shard", Value: addr}),
		rpcErrs: cfg.Registry.Counter("cluster_rpc_errors_total",
			"shard RPC calls that failed after retries", telemetry.Label{Name: "shard", Value: addr}),
		rpcRetries: cfg.Registry.Counter("cluster_rpc_retries_total",
			"shard RPC transport retries", telemetry.Label{Name: "shard", Value: addr}),
	}

	// Startup health check: the shard may still be replaying its WAL
	// (or not listening yet); poll readiness until the dial deadline.
	deadline := time.Now().Add(cfg.DialTimeout)
	for {
		err := c.Ready()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: shard %s not ready: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	if err := c.call(http.MethodGet, "/rpc/meta", nil, &c.meta, true); err != nil {
		return nil, fmt.Errorf("cluster: shard %s meta: %w", addr, err)
	}
	body, err := c.fetch("/rpc/graph")
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s graph: %w", addr, err)
	}
	g, err := roadnet.ReadGraph(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s graph decode: %w", addr, err)
	}
	c.graph = g
	return c, nil
}

// Addr returns the shard's base URL.
func (c *ShardClient) Addr() string { return c.addr }

// Close releases the client's pooled connections.
func (c *ShardClient) Close() { c.hc.CloseIdleConnections() }

// unavailable wraps a transport-level failure as core.ErrUnavailable.
func unavailable(format string, args ...any) error {
	return fmt.Errorf("cluster: "+format+": %w", append(args, core.ErrUnavailable)...)
}

// once performs one HTTP round trip and decodes the reply. Failures
// below the envelope are ErrUnavailable; enveloped errors decode to
// their typed core error.
func (c *ShardClient) once(method, path string, body []byte, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.addr+path, rd)
	if err != nil {
		return unavailable("%s %s: %v", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return unavailable("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return unavailable("%s %s: read: %v", method, path, err)
	}
	c.rpcLat.ObserveSince(start)
	if resp.StatusCode != http.StatusOK {
		var env wireEnvelope
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			return decodeWireError(env.Error)
		}
		return unavailable("%s %s: status %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return unavailable("%s %s: decode: %v", method, path, err)
		}
	}
	return nil
}

// call marshals in, performs the round trip, and — when idempotent —
// retries transport failures with exponential backoff.
func (c *ShardClient) call(method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("cluster: %s %s: encode: %w", method, path, err)
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.cfg.Retries
	}
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.rpcRetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		err := c.once(method, path, body, out)
		if err == nil {
			return nil
		}
		if !errors.Is(err, core.ErrUnavailable) {
			return err
		}
		lastErr = err
	}
	c.rpcErrs.Inc()
	return lastErr
}

// fetch GETs a raw (non-JSON) body with idempotent retries.
func (c *ShardClient) fetch(path string) ([]byte, error) {
	var out []byte
	attempts := 1 + c.cfg.Retries
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.rpcRetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.addr+path, nil)
		if err != nil {
			cancel()
			return nil, unavailable("GET %s: %v", path, err)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			cancel()
			lastErr = unavailable("GET %s: %v", path, err)
			continue
		}
		out, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = unavailable("GET %s: read: %v", path, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = unavailable("GET %s: status %d", path, resp.StatusCode)
			continue
		}
		return out, nil
	}
	c.rpcErrs.Inc()
	return nil, lastErr
}

// Ready probes the shard's /v1/readyz once (no retries — readiness
// polling is the caller's loop).
func (c *ShardClient) Ready() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.addr+"/v1/readyz", nil)
	if err != nil {
		return unavailable("readyz: %v", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return unavailable("readyz: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return unavailable("readyz: status %d", resp.StatusCode)
	}
	return nil
}

// newIdemKey mints the idempotency key a submit reuses across its
// transport retries.
func newIdemKey() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return "gw-" + hex.EncodeToString(b[:])
}

// --- relay.LegEngine ---

// Graph returns the dial-time road network snapshot.
func (c *ShardClient) Graph() *roadnet.Graph { return c.graph }

// Speed returns the city's vehicle speed in metres per second.
func (c *ShardClient) Speed() float64 { return c.meta.Speed }

// LegLimits returns the city-global waiting-time and pick-up budgets.
func (c *ShardClient) LegLimits() (maxWait, maxPickup float64) {
	return c.meta.MaxWaitSeconds, c.meta.MaxPickupSeconds
}

// SubmitWithConstraints quotes one request, minting an idempotency key
// so transport retries cannot double-submit.
func (c *ShardClient) SubmitWithConstraints(s, d roadnet.VertexID, riders int, cons core.Constraints) (*core.RequestRecord, error) {
	return c.SubmitIdem(s, d, riders, cons, "")
}

// SubmitIdem quotes one request under the given idempotency key (""
// mints one). The key makes the retried POST safe: a replay answers
// with the original record.
func (c *ShardClient) SubmitIdem(s, d roadnet.VertexID, riders int, cons core.Constraints, idemKey string) (*core.RequestRecord, error) {
	if idemKey == "" {
		idemKey = newIdemKey()
	}
	var rec core.RequestRecord
	err := c.call(http.MethodPost, "/rpc/submit", submitWire{
		S: s, D: d, Riders: riders, Constraints: cons, IdemKey: idemKey,
	}, &rec, idemKey != "")
	if err != nil {
		return nil, err
	}
	return &rec, nil
}

// Request reads one record.
func (c *ShardClient) Request(id core.RequestID) (*core.RequestRecord, error) {
	var rec core.RequestRecord
	if err := c.call(http.MethodGet, fmt.Sprintf("/rpc/requests/%d", id), nil, &rec, true); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Choose commits option optionIndex of request id. A transport failure
// is ambiguous — the shard may have journaled the commit before dying —
// so the record is re-read: a visible commit of the same option counts
// as success, an untouched quote earns one retry, anything else keeps
// the ErrUnavailable for the caller's deferred reconciliation.
func (c *ShardClient) Choose(id core.RequestID, optionIndex int) error {
	err := c.call(http.MethodPost, "/rpc/choose", chooseWire{ID: id, Option: optionIndex}, nil, false)
	if err == nil || !errors.Is(err, core.ErrUnavailable) {
		return err
	}
	rec, rerr := c.Request(id)
	if rerr != nil {
		return err
	}
	switch {
	case rec.Chosen == optionIndex && rec.Status != core.StatusQuoted && rec.Status != core.StatusDeclined:
		return nil // the commit landed before the transport died
	case rec.Status == core.StatusQuoted:
		return c.call(http.MethodPost, "/rpc/choose", chooseWire{ID: id, Option: optionIndex}, nil, false)
	}
	return err
}

// Decline releases a quoted request, resolving transport ambiguity by
// re-reading the record (a visible decline counts as success).
func (c *ShardClient) Decline(id core.RequestID) error {
	err := c.call(http.MethodPost, "/rpc/decline", idWire{ID: id}, nil, false)
	if err == nil || !errors.Is(err, core.ErrUnavailable) {
		return err
	}
	rec, rerr := c.Request(id)
	if rerr != nil {
		return err
	}
	switch rec.Status {
	case core.StatusDeclined:
		return nil
	case core.StatusQuoted:
		return c.call(http.MethodPost, "/rpc/decline", idWire{ID: id}, nil, false)
	}
	return err
}

// CancelAssigned releases an assigned request's vehicle reservation
// (the relay compensation verb), with the same read-back ambiguity
// resolution: a cancelled record reads declined.
func (c *ShardClient) CancelAssigned(id core.RequestID) error {
	err := c.call(http.MethodPost, "/rpc/cancel", idWire{ID: id}, nil, false)
	if err == nil || !errors.Is(err, core.ErrUnavailable) {
		return err
	}
	rec, rerr := c.Request(id)
	if rerr != nil {
		return err
	}
	switch rec.Status {
	case core.StatusDeclined:
		return nil
	case core.StatusAssigned:
		return c.call(http.MethodPost, "/rpc/cancel", idWire{ID: id}, nil, false)
	}
	return err
}

// --- gateway support verbs ---

// SubmitBatchQuote runs one shard-side batch. Items carry no choice
// callbacks (those cannot cross the wire); the gateway commits or
// declines quoted items with follow-up calls. Not retried: without
// per-item idempotency keys a replayed batch would double-quote.
func (c *ShardClient) SubmitBatchQuote(items []submitWire) ([]*core.RequestRecord, error) {
	var out batchReply
	if err := c.call(http.MethodPost, "/rpc/submit-batch", batchWire{Items: items}, &out, false); err != nil {
		return nil, err
	}
	var err error
	if out.Err != nil {
		err = decodeWireError(*out.Err)
	}
	return out.Records, err
}

// Advance ticks the shard by dt seconds. Never retried: a duplicated
// tick would advance this city's clock out of lockstep.
func (c *ShardClient) Advance(dt float64) (clock float64, events []fleet.Event, err error) {
	var out advanceReply
	if err := c.call(http.MethodPost, "/rpc/advance", advanceWire{Seconds: dt}, &out, false); err != nil {
		return 0, nil, err
	}
	return out.Clock, out.Events, nil
}

// Clock reads the shard's simulated clock.
func (c *ShardClient) Clock() (float64, error) {
	var out clockReply
	if err := c.call(http.MethodGet, "/rpc/clock", nil, &out, true); err != nil {
		return 0, err
	}
	return out.Clock, nil
}

// Stats snapshots the shard's engine panel.
func (c *ShardClient) Stats() (core.EngineStats, error) {
	var out core.EngineStats
	err := c.call(http.MethodGet, "/rpc/stats", nil, &out, true)
	return out, err
}

// Requests lists the shard's ledger, id ascending.
func (c *ShardClient) Requests(filter core.RequestFilter, limit int) ([]*core.RequestRecord, error) {
	path := fmt.Sprintf("/rpc/requests?limit=%d", limit)
	if filter.HasStatus {
		path += "&status=" + filter.Status.String()
	}
	var out []*core.RequestRecord
	if err := c.call(http.MethodGet, path, nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Meta returns the city description, refreshed through the TTL cache
// (the fleet size moves; the rest is immutable).
func (c *ShardClient) Meta() metaWire {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Now().Before(c.metaCache.exp) {
		return c.metaCache.val
	}
	var m metaWire
	if err := c.call(http.MethodGet, "/rpc/meta", nil, &m, true); err != nil {
		return c.meta // serve the dial-time copy while the shard is away
	}
	c.metaCache = cached[metaWire]{val: m, exp: time.Now().Add(c.cfg.CacheTTL)}
	return m
}

// Params returns the shard's live settings through the TTL cache.
func (c *ShardClient) Params() (core.ServiceParams, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Now().Before(c.paramsCache.exp) {
		return c.paramsCache.val, nil
	}
	var p core.ServiceParams
	if err := c.call(http.MethodGet, "/rpc/params", nil, &p, true); err != nil {
		return core.ServiceParams{}, err
	}
	c.paramsCache = cached[core.ServiceParams]{val: p, exp: time.Now().Add(c.cfg.CacheTTL)}
	return p, nil
}

// Surge reads the shard's per-cell surge state.
func (c *ShardClient) Surge() (*core.SurgeView, error) {
	var v core.SurgeView
	if err := c.call(http.MethodGet, "/rpc/surge", nil, &v, true); err != nil {
		return nil, err
	}
	return &v, nil
}

// SetAlgorithm switches the shard's matching algorithm (idempotent —
// setting the same algorithm twice is harmless — so retried).
func (c *ShardClient) SetAlgorithm(algo core.Algorithm) error {
	err := c.call(http.MethodPost, "/rpc/algorithm", algoWire{Algorithm: algo.String()}, nil, true)
	if err == nil {
		c.mu.Lock()
		c.paramsCache = cached[core.ServiceParams]{} // params echo the algorithm
		c.mu.Unlock()
	}
	return err
}

// Vehicles lists the shard's vehicle summaries.
func (c *ShardClient) Vehicles(limit int) ([]core.VehicleView, error) {
	var out []core.VehicleView
	if err := c.call(http.MethodGet, fmt.Sprintf("/rpc/vehicles?limit=%d", limit), nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// VehicleSchedules reads one vehicle's location and schedule branches.
func (c *ShardClient) VehicleSchedules(id fleet.VehicleID) (roadnet.VertexID, [][]kinetic.Point, error) {
	var out itineraryWire
	if err := c.call(http.MethodGet, fmt.Sprintf("/rpc/vehicles/%d", id), nil, &out, true); err != nil {
		return 0, nil, err
	}
	return out.Location, out.Branches, nil
}

// Telemetry fetches the shard's gathered metric families.
func (c *ShardClient) Telemetry() ([]telemetry.Family, error) {
	var out []telemetry.Family
	if err := c.call(http.MethodGet, "/rpc/telemetry", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}
