// Package cluster runs the multi-city service over processes: each
// city lives in its own shard process (cmd/ptrider-shard) wrapping one
// WAL-backed core.Engine, and a Gateway — a third core.Service
// implementation next to *core.Engine and *multicity.Router — routes
// requests to shards by city, fans batches, ticks and statistics out
// concurrently, and runs the cross-city relay scheduler over real
// sockets.
//
// wire.go is the shared vocabulary of the shard RPC surface: the
// request/reply payload structs and the error envelope. The envelope
// reuses the /v1 convention ({"error":{"code","message",...}}), and
// the code set is exactly the /v1 classification (see
// internal/server.classify), so the client can decode a shard error
// back into the typed core error the caller would have seen from an
// in-process engine. Anything that fails below HTTP — dial errors,
// timeouts, a shard dying mid-response — decodes to
// core.ErrUnavailable, the signal the relay scheduler answers with
// deferred compensation rather than an abort.
//
// Records crossing the wire are sanitised: core.Option.Candidate (the
// kinetic-tree insertion snapshot) never leaves the shard — commits
// happen shard-side by option index, and remote callers only need the
// vehicle, pick-up distance and price.
package cluster

import (
	"errors"
	"fmt"
	"net/http"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/geo"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
)

// wireError is the error payload of the shard RPC envelope — the same
// shape the /v1 surface emits.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Origin and Dest carry the city pair of a cross_city rejection.
	Origin string `json:"origin,omitempty"`
	Dest   string `json:"dest,omitempty"`
}

// wireEnvelope wraps a wireError for transport.
type wireEnvelope struct {
	Error wireError `json:"error"`
}

// wireErrorOf classifies err into (HTTP status, envelope payload),
// mirroring the /v1 classification exactly so decodeWireError is its
// inverse.
func wireErrorOf(err error) (int, wireError) {
	p := wireError{Message: err.Error()}
	var cce *core.CrossCityError
	switch {
	case errors.As(err, &cce):
		p.Code, p.Origin, p.Dest = "cross_city", cce.Origin, cce.Dest
		return http.StatusUnprocessableEntity, p
	case errors.Is(err, core.ErrCrossCity):
		p.Code = "cross_city"
		return http.StatusUnprocessableEntity, p
	case errors.Is(err, core.ErrAlreadyChosen):
		p.Code = "already_chosen"
		return http.StatusConflict, p
	case errors.Is(err, core.ErrUnknownCity):
		p.Code = "unknown_city"
		return http.StatusNotFound, p
	case errors.Is(err, core.ErrNotFound):
		p.Code = "not_found"
		return http.StatusNotFound, p
	case errors.Is(err, core.ErrNoCity):
		p.Code = "no_city"
		return http.StatusUnprocessableEntity, p
	case errors.Is(err, core.ErrInvalidArgument):
		p.Code = "invalid_argument"
		return http.StatusBadRequest, p
	case errors.Is(err, core.ErrUnavailable):
		p.Code = "unavailable"
		return http.StatusServiceUnavailable, p
	}
	p.Code = "unprocessable"
	return http.StatusUnprocessableEntity, p
}

// decodeWireError maps an envelope back onto the typed core errors, so
// errors.Is works identically against a remote shard and an in-process
// engine.
func decodeWireError(p wireError) error {
	switch p.Code {
	case "cross_city":
		if p.Origin != "" || p.Dest != "" {
			return &core.CrossCityError{Origin: p.Origin, Dest: p.Dest}
		}
		return fmt.Errorf("%s: %w", p.Message, core.ErrCrossCity)
	case "already_chosen":
		return fmt.Errorf("%s: %w", p.Message, core.ErrAlreadyChosen)
	case "unknown_city":
		return fmt.Errorf("%s: %w", p.Message, core.ErrUnknownCity)
	case "not_found":
		return fmt.Errorf("%s: %w", p.Message, core.ErrNotFound)
	case "no_city":
		return fmt.Errorf("%s: %w", p.Message, core.ErrNoCity)
	case "invalid_argument":
		return fmt.Errorf("%s: %w", p.Message, core.ErrInvalidArgument)
	case "unavailable":
		return fmt.Errorf("%s: %w", p.Message, core.ErrUnavailable)
	}
	return errors.New(p.Message)
}

// submitWire is the POST /rpc/submit payload. IdemKey makes retries
// safe: the client generates one key per logical submission and reuses
// it across transport retries, and the shard's idempotent submit path
// (core.Engine.SubmitIdem) answers a replay with the original record.
type submitWire struct {
	S           roadnet.VertexID `json:"s"`
	D           roadnet.VertexID `json:"d"`
	Riders      int              `json:"riders"`
	Constraints core.Constraints `json:"constraints"`
	IdemKey     string           `json:"idem_key,omitempty"`
}

// batchWire is the POST /rpc/submit-batch payload: quote-only — rider
// choice callbacks cannot cross a socket, so the gateway commits or
// declines each quoted item with follow-up choose/decline calls.
type batchWire struct {
	Items []submitWire `json:"items"`
}

// batchReply carries one record per batch item, order-preserving, with
// null entries for failed items and the first error enveloped.
type batchReply struct {
	Records []*core.RequestRecord `json:"records"`
	Err     *wireError            `json:"error,omitempty"`
}

// chooseWire is the POST /rpc/choose payload.
type chooseWire struct {
	ID     core.RequestID `json:"id"`
	Option int            `json:"option"`
}

// idWire addresses one request (decline, cancel).
type idWire struct {
	ID core.RequestID `json:"id"`
}

// advanceWire is the POST /rpc/advance payload.
type advanceWire struct {
	Seconds float64 `json:"seconds"`
}

// advanceReply returns the shard clock after the tick plus the
// city-local movement events.
type advanceReply struct {
	Clock  float64       `json:"clock"`
	Events []fleet.Event `json:"events"`
}

// clockReply is the GET /rpc/clock body.
type clockReply struct {
	Clock float64 `json:"clock"`
}

// metaWire is the GET /rpc/meta body: the immutable city description a
// client caches at dial time (plus the fleet size, which the gateway
// refreshes through its TTL cache for /v1/cities).
type metaWire struct {
	City             string   `json:"city"`
	Vertices         int      `json:"vertices"`
	Vehicles         int      `json:"vehicles"`
	Region           geo.Rect `json:"region"`
	Speed            float64  `json:"speed"`
	MaxWaitSeconds   float64  `json:"max_wait_seconds"`
	MaxPickupSeconds float64  `json:"max_pickup_seconds"`
}

// algoWire is the POST /rpc/algorithm payload.
type algoWire struct {
	Algorithm string `json:"algorithm"`
}

// itineraryWire is the GET /rpc/vehicles/{id} body.
type itineraryWire struct {
	Vehicle  fleet.VehicleID   `json:"vehicle"`
	Location roadnet.VertexID  `json:"location"`
	Branches [][]kinetic.Point `json:"branches"`
}

// sanitizeRecord strips the shard-local kinetic candidates from a
// record's options before it crosses the wire (commits are by option
// index, shard-side; the candidate snapshot is meaningless remotely
// and dominates the payload).
func sanitizeRecord(rec *core.RequestRecord) *core.RequestRecord {
	cp := *rec
	if len(cp.Options) > 0 {
		cp.Options = make([]core.Option, len(rec.Options))
		for i, o := range rec.Options {
			o.Candidate = kinetic.Candidate{}
			cp.Options[i] = o
		}
	}
	return &cp
}
