// cluster_test.go exercises the shard RPC surface end-to-end over real
// HTTP listeners: the wire error taxonomy, the client's retry and
// ambiguity-resolution discipline, gateway routing/aggregation over two
// shards, the cross-city relay over sockets, and the dead-shard
// commit-window compensation the cluster's durability story hangs on.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/geo"
	"ptrider/internal/kinetic"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
	"ptrider/internal/telemetry"
)

// fastClient keeps test retries snappy.
func fastClient() ClientConfig {
	return ClientConfig{
		Timeout:      5 * time.Second,
		DialTimeout:  5 * time.Second,
		RetryBackoff: time.Millisecond,
	}
}

// newCityEngine builds a synthetic city engine offset to originX in the
// shared plane (disjoint origins give the gateway disjoint regions).
func newCityEngine(t testing.TB, w, h int, originX float64, seed int64, vehicles int) *core.Engine {
	t.Helper()
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: w, Height: h, OriginX: originX, Seed: seed})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	eng, err := core.NewEngine(g, core.Config{
		Capacity: 4, Algorithm: core.AlgoDualSide, Seed: seed,
		Telemetry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	eng.AddVehiclesUniform(vehicles)
	return eng
}

// flakyShard wraps a shard handler with a kill switch: while dead, every
// request aborts without a response — the client sees the same dead
// socket a SIGKILLed process leaves behind.
type flakyShard struct {
	h    http.Handler
	dead atomic.Bool
}

func (f *flakyShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	f.h.ServeHTTP(w, r)
}

func startShard(t testing.TB, eng *core.Engine, opts ShardOptions) (*httptest.Server, *flakyShard) {
	t.Helper()
	f := &flakyShard{h: NewShardHandler(eng, opts)}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return ts, f
}

// twinGateway assembles a two-shard cluster (alpha at the origin, beta
// at x=20000) and returns the gateway plus the underlying engines and
// the beta kill switch.
func twinGateway(t testing.TB, reg *telemetry.Registry) (*Gateway, *core.Engine, *core.Engine, *flakyShard) {
	t.Helper()
	engA := newCityEngine(t, 10, 10, 0, 1, 10)
	engB := newCityEngine(t, 8, 8, 20000, 2, 10)
	tsA, _ := startShard(t, engA, ShardOptions{})
	tsB, fB := startShard(t, engB, ShardOptions{})
	gw, err := NewGateway(
		[]string{"alpha=" + tsA.URL, "beta=" + tsB.URL},
		GatewayConfig{
			Client:   fastClient(),
			Relay:    relay.Config{TransferBufferSeconds: 120},
			Registry: reg,
		})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	t.Cleanup(func() { gw.Close() })
	return gw, engA, engB, fB
}

// quotedSpec retries coordinate submissions between the two city
// regions until one quotes a non-empty skyline.
func quotedSpec(t *testing.T, gw *Gateway, from, to string, rng *rand.Rand) *core.ServiceRecord {
	t.Helper()
	gf, err := gw.CityGraph(from)
	if err != nil {
		t.Fatalf("graph %s: %v", from, err)
	}
	gt, err := gw.CityGraph(to)
	if err != nil {
		t.Fatalf("graph %s: %v", to, err)
	}
	for attempt := 0; attempt < 50; attempt++ {
		o := gf.Point(pickVertex(rng, gf.NumVertices()))
		d := gt.Point(pickVertex(rng, gt.NumVertices()))
		rec, err := gw.SubmitRequest(core.SubmitSpec{ByCoords: true, Origin: o, Dest: d, Riders: 1})
		if err != nil {
			t.Fatalf("submit %s->%s: %v", from, to, err)
		}
		if len(rec.Options) > 0 {
			return rec
		}
		_ = gw.Decline(rec.ID)
	}
	t.Fatalf("no %s->%s quote produced options in 50 attempts", from, to)
	return nil
}

func pickVertex(rng *rand.Rand, n int) roadnet.VertexID {
	return roadnet.VertexID(rng.Intn(n))
}

func TestWireErrorRoundTrip(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
		is         error
	}{
		{&core.CrossCityError{Origin: "a", Dest: "b"}, http.StatusUnprocessableEntity, "cross_city", core.ErrCrossCity},
		{fmt.Errorf("x: %w", core.ErrAlreadyChosen), http.StatusConflict, "already_chosen", core.ErrAlreadyChosen},
		{fmt.Errorf("x: %w", core.ErrUnknownCity), http.StatusNotFound, "unknown_city", core.ErrUnknownCity},
		{fmt.Errorf("x: %w", core.ErrNotFound), http.StatusNotFound, "not_found", core.ErrNotFound},
		{fmt.Errorf("x: %w", core.ErrNoCity), http.StatusUnprocessableEntity, "no_city", core.ErrNoCity},
		{fmt.Errorf("x: %w", core.ErrInvalidArgument), http.StatusBadRequest, "invalid_argument", core.ErrInvalidArgument},
		{fmt.Errorf("x: %w", core.ErrUnavailable), http.StatusServiceUnavailable, "unavailable", core.ErrUnavailable},
	}
	for _, c := range cases {
		status, p := wireErrorOf(c.err)
		if status != c.wantStatus || p.Code != c.wantCode {
			t.Errorf("wireErrorOf(%v) = (%d, %q), want (%d, %q)", c.err, status, p.Code, c.wantStatus, c.wantCode)
		}
		back := decodeWireError(p)
		if !errors.Is(back, c.is) {
			t.Errorf("decodeWireError(%+v) = %v, does not match %v", p, back, c.is)
		}
	}

	// The cross-city envelope must reconstruct the typed city pair.
	_, p := wireErrorOf(&core.CrossCityError{Origin: "east", Dest: "west"})
	var cce *core.CrossCityError
	if back := decodeWireError(p); !errors.As(back, &cce) || cce.Origin != "east" || cce.Dest != "west" {
		t.Errorf("cross-city pair lost in round trip: %v", decodeWireError(p))
	}

	// Unrecognised codes stay opaque errors, not typed ones.
	if err := decodeWireError(wireError{Code: "unprocessable", Message: "m"}); errors.Is(err, core.ErrNotFound) || err == nil {
		t.Errorf("generic code decoded to a typed error: %v", err)
	}
}

func TestSanitizeRecordStripsCandidates(t *testing.T) {
	rec := &core.RequestRecord{
		ID: 7,
		Options: []core.Option{
			{Vehicle: 3, Price: 10, Candidate: kinetic.Candidate{PickupDist: 99, TotalDist: 120}},
		},
	}
	out := sanitizeRecord(rec)
	if c := out.Options[0].Candidate; c.PickupDist != 0 || c.TotalDist != 0 || c.Seq != nil {
		t.Fatalf("candidate crossed the wire: %+v", c)
	}
	if out.Options[0].Vehicle != 3 || out.Options[0].Price != 10 {
		t.Fatalf("sanitize mangled the option: %+v", out.Options[0])
	}
	if rec.Options[0].Candidate.PickupDist != 99 {
		t.Fatal("sanitize mutated the engine-owned record")
	}
}

func TestShardClientBasics(t *testing.T) {
	eng := newCityEngine(t, 8, 8, 0, 1, 10)
	ts, _ := startShard(t, eng, ShardOptions{})
	c, err := Dial(ts.URL, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Dial-time immutable city description matches the engine.
	if got, want := c.Graph().NumVertices(), eng.Graph().NumVertices(); got != want {
		t.Fatalf("graph vertices %d, want %d", got, want)
	}
	if c.Speed() != eng.Speed() {
		t.Fatalf("speed %v, want %v", c.Speed(), eng.Speed())
	}
	wantWait, wantPickup := eng.LegLimits()
	if gotWait, gotPickup := c.LegLimits(); gotWait != wantWait || gotPickup != wantPickup {
		t.Fatalf("limits (%v,%v), want (%v,%v)", gotWait, gotPickup, wantWait, wantPickup)
	}

	// Quote, re-submit under the same idempotency key, commit, read.
	rec := submitQuotedRemote(t, c)
	replay, err := c.SubmitIdem(rec.S, rec.D, rec.Riders, core.Constraints{}, "")
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if replay.ID == rec.ID {
		t.Fatalf("distinct keys must quote distinct requests, both got %d", rec.ID)
	}
	_ = c.Decline(replay.ID)
	if err := c.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	got, err := c.Request(rec.ID)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if got.Status != core.StatusAssigned || got.Chosen != 0 {
		t.Fatalf("after choose: status %v chosen %d", got.Status, got.Chosen)
	}
	for _, o := range got.Options {
		if o.Candidate.Seq != nil || o.Candidate.TotalDist != 0 {
			t.Fatalf("candidate leaked over the wire: %+v", o.Candidate)
		}
	}

	// Tick, clock, stats, listings.
	clock, _, err := c.Advance(5)
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	if clock != 5 {
		t.Fatalf("clock after advance %v, want 5", clock)
	}
	if rc, err := c.Clock(); err != nil || rc != 5 {
		t.Fatalf("clock read %v, %v", rc, err)
	}
	st, err := c.Stats()
	if err != nil || st.Requests == 0 {
		t.Fatalf("stats %+v, %v", st, err)
	}
	recs, err := c.Requests(core.RequestFilter{}, 0)
	if err != nil || len(recs) == 0 {
		t.Fatalf("requests listing: %d, %v", len(recs), err)
	}
	assigned, err := c.Requests(core.RequestFilter{HasStatus: true, Status: core.StatusAssigned}, 0)
	if err != nil || len(assigned) != 1 {
		t.Fatalf("assigned listing: %d, %v", len(assigned), err)
	}

	views, err := c.Vehicles(0)
	if err != nil || len(views) != eng.NumVehicles() {
		t.Fatalf("vehicles: %d, %v", len(views), err)
	}
	if _, _, err := c.VehicleSchedules(views[0].ID); err != nil {
		t.Fatalf("vehicle schedules: %v", err)
	}

	// Params/surge/algorithm and the fetched telemetry families.
	if _, err := c.Params(); err != nil {
		t.Fatalf("params: %v", err)
	}
	if _, err := c.Surge(); err != nil {
		t.Fatalf("surge: %v", err)
	}
	if err := c.SetAlgorithm(core.AlgoSingleSide); err != nil {
		t.Fatalf("set algorithm: %v", err)
	}
	fams, err := c.Telemetry()
	if err != nil || len(fams) == 0 {
		t.Fatalf("telemetry: %d families, %v", len(fams), err)
	}
}

// submitQuotedRemote quotes through the client until a vertex pair
// yields options.
func submitQuotedRemote(t *testing.T, c *ShardClient) *core.RequestRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	n := c.Graph().NumVertices()
	for attempt := 0; attempt < 50; attempt++ {
		s, d := pickVertex(rng, n), pickVertex(rng, n)
		if s == d {
			continue
		}
		rec, err := c.SubmitIdem(s, d, 1, core.Constraints{}, "")
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if len(rec.Options) > 0 {
			return rec
		}
		_ = c.Decline(rec.ID)
	}
	t.Fatal("no vertex pair quoted options in 50 attempts")
	return nil
}

func TestShardClientTypedErrors(t *testing.T) {
	eng := newCityEngine(t, 6, 6, 0, 1, 5)
	ts, _ := startShard(t, eng, ShardOptions{})
	c, err := Dial(ts.URL, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Request(9999); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unknown request: %v, want ErrNotFound", err)
	}
	if err := c.Choose(9999, 0); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("choose unknown: %v, want ErrNotFound", err)
	}
	rec := submitQuotedRemote(t, c)
	if err := c.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	if err := c.Choose(rec.ID, 0); !errors.Is(err, core.ErrAlreadyChosen) {
		t.Fatalf("double choose: %v, want ErrAlreadyChosen", err)
	}

	// A dead listener is ErrUnavailable, not a decode error.
	ts.Close()
	if _, err := c.Request(rec.ID); !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("dead shard: %v, want ErrUnavailable", err)
	}
}

// TestSubmitIdempotentAcrossLostResponse proves the retried POST is
// safe: the shard executes the submit, the response is lost, and the
// retry carrying the same generated key replays the original record
// instead of quoting twice.
func TestSubmitIdempotentAcrossLostResponse(t *testing.T) {
	eng := newCityEngine(t, 6, 6, 0, 1, 5)
	inner := NewShardHandler(eng, ShardOptions{})
	var eatReplies atomic.Int32
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/rpc/submit" && eatReplies.Add(-1) >= 0 {
			// Execute the submit for real, then die before replying —
			// the shape of a shard crashing after the journal append.
			inner.ServeHTTP(httptest.NewRecorder(), r)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := fastClient()
	cfg.Retries = 2
	c, err := Dial(ts.URL, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	eatReplies.Store(1)
	rec, err := c.SubmitIdem(2, 20, 1, core.Constraints{}, "")
	if err != nil {
		t.Fatalf("submit through lost response: %v", err)
	}
	recs, err := c.Requests(core.RequestFilter{}, 0)
	if err != nil {
		t.Fatalf("requests: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != rec.ID {
		t.Fatalf("replayed submit duplicated the request: %d records", len(recs))
	}
}

// TestChooseAmbiguityResolvedByReadBack pins the client's commit
// discipline: when the shard commits a choose but dies before replying,
// the client re-reads the record, sees the commit landed, and reports
// success instead of surfacing a spurious failure.
func TestChooseAmbiguityResolvedByReadBack(t *testing.T) {
	eng := newCityEngine(t, 6, 6, 0, 1, 5)
	var abortNext atomic.Bool
	ts, _ := startShard(t, eng, ShardOptions{AfterChoose: func() {
		if abortNext.CompareAndSwap(true, false) {
			panic(http.ErrAbortHandler)
		}
	}})
	c, err := Dial(ts.URL, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rec := submitQuotedRemote(t, c)
	abortNext.Store(true)
	if err := c.Choose(rec.ID, 0); err != nil {
		t.Fatalf("ambiguous choose not resolved: %v", err)
	}
	got, err := c.Request(rec.ID)
	if err != nil || got.Status != core.StatusAssigned {
		t.Fatalf("after resolved choose: %+v, %v", got, err)
	}
}

func TestGatewayRoutingAndAggregation(t *testing.T) {
	reg := telemetry.NewRegistry()
	gw, engA, engB, _ := twinGateway(t, reg)

	if names := gw.CityNames(); len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("city names %v", names)
	}
	cities := gw.Cities()
	if len(cities) != 2 || cities[0].Vertices != engA.Graph().NumVertices() || cities[1].Vertices != engB.Graph().NumVertices() {
		t.Fatalf("cities %+v", cities)
	}
	for _, cr := range gw.ReadyCities() {
		if !cr.Ready {
			t.Fatalf("city %s unready: %s", cr.City, cr.Err)
		}
	}

	// Same-city submissions land on their shard and come back in the
	// striped global namespace.
	rng := rand.New(rand.NewSource(3))
	recA := quotedSpec(t, gw, "alpha", "alpha", rng)
	recB := quotedSpec(t, gw, "beta", "beta", rng)
	if recA.City != "alpha" || recB.City != "beta" {
		t.Fatalf("misrouted: %q and %q", recA.City, recB.City)
	}
	if recA.ID%2 != 0 || recB.ID%2 != 1 {
		t.Fatalf("global ids not striped: alpha %d, beta %d", recA.ID, recB.ID)
	}
	if err := gw.Choose(recA.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	got, err := gw.GetRequest(recA.ID)
	if err != nil || got.Status != core.StatusAssigned || got.City != "alpha" {
		t.Fatalf("get after choose: %+v, %v", got, err)
	}
	if err := gw.Decline(recB.ID); err != nil {
		t.Fatalf("decline: %v", err)
	}

	// Merged listings are globally sorted; city scoping works.
	all, err := gw.Requests("", core.RequestFilter{}, 0)
	if err != nil || len(all) < 2 {
		t.Fatalf("merged listing: %d, %v", len(all), err)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("listing unsorted at %d: %d >= %d", i, all[i-1].ID, all[i].ID)
		}
	}
	onlyBeta, err := gw.Requests("beta", core.RequestFilter{}, 0)
	if err != nil {
		t.Fatalf("scoped listing: %v", err)
	}
	for _, r := range onlyBeta {
		if r.City != "beta" {
			t.Fatalf("beta listing leaked %q", r.City)
		}
	}

	// City-scoped verbs route and rename; bad cities are typed errors.
	if p, err := gw.Params("beta"); err != nil || p.City != "beta" {
		t.Fatalf("params: %+v, %v", p, err)
	}
	if v, err := gw.Surge("alpha"); err != nil || v.City != "alpha" {
		t.Fatalf("surge: %v", err)
	}
	if _, err := gw.Vehicles("nowhere", 0); !errors.Is(err, core.ErrUnknownCity) {
		t.Fatalf("unknown city: %v", err)
	}
	if _, err := gw.Params(""); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("missing city: %v", err)
	}
	if err := gw.SetCityAlgorithm("beta", core.AlgoSingleSide); err != nil {
		t.Fatalf("set algorithm: %v", err)
	}

	// Fan-out tick: both engines move, the clock is the fleet maximum.
	if _, err := gw.Advance(10); err != nil {
		t.Fatalf("advance: %v", err)
	}
	if gw.Clock() != 10 {
		t.Fatalf("clock %v, want 10", gw.Clock())
	}
	if engA.Clock() != 10 || engB.Clock() != 10 {
		t.Fatalf("shard clocks (%v, %v), want lockstep 10", engA.Clock(), engB.Clock())
	}
	if _, err := gw.Advance(-1); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("negative tick: %v", err)
	}

	// Aggregated statistics fold both panels.
	st := gw.ServiceStats()
	if !st.Multi || !st.RelayEnabled || len(st.Cities) != 2 {
		t.Fatalf("stats shape: %+v", st)
	}
	if want := st.Cities["alpha"].Requests + st.Cities["beta"].Requests; st.Total.Requests != want {
		t.Fatalf("total requests %d, want %d", st.Total.Requests, want)
	}

	// Merged telemetry carries the gateway's RPC families and the
	// city-labeled shard families.
	fams := gw.MetricFamilies()
	var sawRPC, sawCityLabel bool
	for _, f := range fams {
		if f.Name == "cluster_rpc_seconds" {
			sawRPC = true
		}
		for _, s := range f.Series {
			for _, l := range s.Labels {
				if l.Name == "city" && (l.Value == "alpha" || l.Value == "beta") {
					sawCityLabel = true
				}
			}
		}
	}
	if !sawRPC || !sawCityLabel {
		t.Fatalf("telemetry merge missing families: rpc=%v cityLabel=%v", sawRPC, sawCityLabel)
	}
}

func TestGatewayBatch(t *testing.T) {
	gw, _, _, _ := twinGateway(t, nil)
	ga, _ := gw.CityGraph("alpha")
	gb, _ := gw.CityGraph("beta")

	// Non-interactive batch: the /v1 shape — one shard-side batch call
	// per city, quotes returned.
	specs := []core.SubmitSpec{
		{ByCoords: true, Origin: ga.Point(2), Dest: ga.Point(40), Riders: 1},
		{ByCoords: true, Origin: gb.Point(3), Dest: gb.Point(30), Riders: 1},
		{ByCoords: true, Origin: ga.Point(5), Dest: ga.Point(50), Riders: 1},
	}
	recs, err := gw.SubmitRequestBatch(specs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(recs) != 3 || recs[0] == nil || recs[1] == nil || recs[2] == nil {
		t.Fatalf("batch records: %+v", recs)
	}
	if recs[0].City != "alpha" || recs[1].City != "beta" || recs[2].City != "alpha" {
		t.Fatalf("batch routing: %q %q %q", recs[0].City, recs[1].City, recs[2].City)
	}

	// Interactive batch: choice callbacks commit gateway-side.
	committed := 0
	ispecs := []core.SubmitSpec{
		{ByCoords: true, Origin: ga.Point(7), Dest: ga.Point(44), Riders: 1,
			Choose: func(options []core.Option) int {
				if len(options) > 0 {
					committed++
					return 0
				}
				return -1
			}},
	}
	irecs, err := gw.SubmitRequestBatch(ispecs)
	if err != nil {
		t.Fatalf("interactive batch: %v", err)
	}
	if irecs[0] == nil {
		t.Fatal("interactive batch returned no record")
	}
	if committed == 1 && irecs[0].Status != core.StatusAssigned {
		t.Fatalf("chosen batch item not assigned: %v", irecs[0].Status)
	}
	if committed == 0 && irecs[0].Status != core.StatusDeclined {
		t.Fatalf("empty-skyline batch item not declined: %v", irecs[0].Status)
	}
}

func TestGatewayCrossCityRelay(t *testing.T) {
	gw, engA, engB, _ := twinGateway(t, nil)
	rng := rand.New(rand.NewSource(21))
	rec := quotedSpec(t, gw, "alpha", "beta", rng)

	if rec.ID >= 0 {
		t.Fatalf("relay trip id %d not in the negative namespace", rec.ID)
	}
	if rec.City != "alpha" || rec.Relay == nil || rec.Relay.Dest != "beta" {
		t.Fatalf("relay record misshapen: city %q relay %+v", rec.City, rec.Relay)
	}

	if err := gw.Choose(rec.ID, 0); err != nil {
		t.Fatalf("relay choose over sockets: %v", err)
	}
	got, err := gw.GetRequest(rec.ID)
	if err != nil || got.Status != core.StatusAssigned {
		t.Fatalf("relay trip after choose: %+v, %v", got, err)
	}
	if _, err := gw.RelayItinerary(rec.ID); err != nil {
		t.Fatalf("relay itinerary: %v", err)
	}
	// The two-phase commit booked real legs on both remote engines.
	if engA.Stats().Assigned == 0 {
		t.Fatal("origin engine holds no assigned leg")
	}
	if engB.Stats().Assigned == 0 {
		t.Fatal("destination engine holds no assigned leg")
	}
	st := gw.ServiceStats()
	if st.Relay.Committed == 0 {
		t.Fatalf("relay stats did not count the commit: %+v", st.Relay)
	}
}

// TestGatewayCompensatesDeadShardCommit drives the acceptance
// scenario in-process: the destination shard dies inside the two-phase
// commit window, the gateway defers compensation, and the next Advance
// after the shard returns releases the leaked leg-1 reservation.
func TestGatewayCompensatesDeadShardCommit(t *testing.T) {
	gw, engA, _, betaSwitch := twinGateway(t, nil)
	rng := rand.New(rand.NewSource(5))
	rec := quotedSpec(t, gw, "alpha", "beta", rng)

	baseAssigned := engA.Stats().Assigned
	sched := gw.RelayScheduler()
	sched.SetCommitOverride(func(leg int, eng relay.LegEngine, id core.RequestID, opt int) error {
		if leg == 2 {
			betaSwitch.dead.Store(true) // the shard dies before leg 2 lands
		}
		return eng.Choose(id, opt)
	})
	err := gw.Choose(rec.ID, 0)
	sched.SetCommitOverride(nil)
	if !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("commit against a dead shard: %v, want ErrUnavailable", err)
	}
	if got := sched.PendingCompensations(); got != 1 {
		t.Fatalf("pending compensations %d, want 1", got)
	}
	if engA.Stats().Assigned != baseAssigned+1 {
		t.Fatalf("leg-1 reservation not held: assigned %d", engA.Stats().Assigned)
	}

	// While the shard is down the tick keeps the trip parked.
	if _, err := gw.Advance(1); !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("advance with a dead shard: %v", err)
	}
	if got := sched.PendingCompensations(); got != 1 {
		t.Fatalf("pending drained against a dead shard: %d", got)
	}

	// Shard returns; the next tick drains the deferred compensation.
	betaSwitch.dead.Store(false)
	if _, err := gw.Advance(1); err != nil {
		t.Fatalf("advance after recovery: %v", err)
	}
	if got := sched.PendingCompensations(); got != 0 {
		t.Fatalf("pending compensations %d after drain, want 0", got)
	}
	if engA.Stats().Assigned != baseAssigned {
		t.Fatalf("leg-1 reservation leaked: assigned %d, want %d", engA.Stats().Assigned, baseAssigned)
	}
	got, err := gw.GetRequest(rec.ID)
	if err != nil || got.Status != core.StatusDeclined {
		t.Fatalf("trip after compensation: %+v, %v", got, err)
	}
}

func TestGatewaySingleShard(t *testing.T) {
	eng := newCityEngine(t, 6, 6, 0, 1, 5)
	ts, _ := startShard(t, eng, ShardOptions{})
	gw, err := NewGateway([]string{"solo=" + ts.URL}, GatewayConfig{Client: fastClient()})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	defer gw.Close()

	if gw.RelayScheduler() != nil {
		t.Fatal("one-shard gateway built a relay scheduler")
	}
	// Coordinates outside the only region are a typed no-city error.
	far := geo.Point{X: 1e7, Y: 1e7}
	if _, err := gw.SubmitRequest(core.SubmitSpec{ByCoords: true, Origin: far, Dest: far}); !errors.Is(err, core.ErrNoCity) {
		t.Fatalf("out-of-region submit: %v", err)
	}
	// Negative ids have no relay to resolve against.
	if _, err := gw.GetRequest(-1); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("negative id without relay: %v", err)
	}
	if err := gw.Choose(-1, 0); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("negative choose without relay: %v", err)
	}
	st := gw.ServiceStats()
	if st.RelayEnabled {
		t.Fatal("one-shard stats claim relay")
	}
}

// TestGatewayDialFailsClosed pins startup behavior: a gateway with an
// unreachable shard refuses to assemble instead of serving a partial
// cluster.
func TestGatewayDialFailsClosed(t *testing.T) {
	eng := newCityEngine(t, 6, 6, 0, 1, 5)
	ts, _ := startShard(t, eng, ShardOptions{})
	cfg := fastClient()
	cfg.DialTimeout = 300 * time.Millisecond
	_, err := NewGateway([]string{"a=" + ts.URL, "b=127.0.0.1:1"}, GatewayConfig{Client: cfg})
	if err == nil {
		t.Fatal("gateway assembled over an unreachable shard")
	}
	if !strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Fatalf("dial error does not name the shard: %v", err)
	}
	// Duplicate names are a configuration error.
	if _, err := NewGateway([]string{"x=" + ts.URL, "x=" + ts.URL}, GatewayConfig{Client: cfg}); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("duplicate names: %v", err)
	}
}
