// gateway.go is the cluster front door: a core.Service implementation
// — the third, next to *core.Engine and *multicity.Router — that
// routes every verb to remote city shards by city, reusing the
// multicity package's global-id striding and statistics fold so the
// remote backend presents exactly the namespace and aggregates the
// in-process router does. Cross-city trips run the relay scheduler
// gateway-side, its probe/commit/compensate legs travelling over the
// shard RPC surface; a shard that dies inside the commit window
// surfaces core.ErrUnavailable, which the scheduler answers with
// deferred compensation retried every Advance until the shard's
// WAL-driven restart acknowledges the release.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/geo"
	"ptrider/internal/multicity"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
	"ptrider/internal/telemetry"
)

// GatewayConfig tunes a Gateway. The zero value means defaults.
type GatewayConfig struct {
	// Client configures every shard client.
	Client ClientConfig
	// Relay configures the gateway-side relay scheduler (transfer
	// buffer, gateway fan-out width). Relay durability is the shards'
	// WALs plus deferred compensation; the gateway itself keeps no
	// journal.
	Relay relay.Config
	// Registry, when non-nil, receives the gateway's own telemetry and
	// is merged with the shards' fetched families (city-labeled) by
	// MetricFamilies.
	Registry *telemetry.Registry
}

// shardRef is one connected city shard.
type shardRef struct {
	name   string
	client *ShardClient
	region geo.Rect
}

// Gateway implements core.Service over remote city shards. All methods
// are safe for concurrent use.
type Gateway struct {
	shards []shardRef
	byName map[string]int
	relay  *relay.Scheduler
	reg    *telemetry.Registry
}

var _ core.Service = (*Gateway)(nil)

// NewGateway connects to one shard per address and assembles the
// cluster service. Addresses are "host:port" or full URLs, optionally
// prefixed "name=" to assign the city name (default "city<i>"). Every
// shard must pass its readiness probe within the client dial timeout.
func NewGateway(addrs []string, cfg GatewayConfig) (*Gateway, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses: %w", core.ErrInvalidArgument)
	}
	if cfg.Client.Registry == nil {
		cfg.Client.Registry = cfg.Registry
	}
	g := &Gateway{
		shards: make([]shardRef, len(addrs)),
		byName: make(map[string]int, len(addrs)),
		reg:    cfg.Registry,
	}
	names := make([]string, len(addrs))
	bare := make([]string, len(addrs))
	for i, a := range addrs {
		names[i] = fmt.Sprintf("city%d", i)
		bare[i] = a
		if eq := indexByte(a, '='); eq > 0 {
			names[i], bare[i] = a[:eq], a[eq+1:]
		}
	}

	// Dial concurrently: every shard health-checks and ships its meta
	// and graph before the gateway serves anything.
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i := range addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(bare[i], cfg.Client)
			if err != nil {
				errs[i] = err
				return
			}
			g.shards[i] = shardRef{name: names[i], client: c, region: c.meta.Region}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("cluster: shard %s: %w", addrs[i], err)
		}
	}
	for i, name := range names {
		if _, dup := g.byName[name]; dup {
			g.Close()
			return nil, fmt.Errorf("cluster: duplicate city name %q: %w", name, core.ErrInvalidArgument)
		}
		g.byName[name] = i
	}

	// The relay scheduler needs a city pair; a one-shard cluster serves
	// cross-city rejections instead (there is no second city anyway).
	if len(g.shards) >= 2 {
		refs := make([]relay.CityRef, len(g.shards))
		for i, sh := range g.shards {
			refs[i] = relay.CityRef{Name: sh.name, Engine: sh.client, Region: sh.region}
		}
		sched, err := relay.New(refs, cfg.Relay)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("cluster: relay: %w", err)
		}
		g.relay = sched
	}
	return g, nil
}

// indexByte avoids importing strings for one call site.
func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Close releases every shard client's connections.
func (g *Gateway) Close() error {
	for i := range g.shards {
		if g.shards[i].client != nil {
			g.shards[i].client.Close()
		}
	}
	return nil
}

// RelayScheduler exposes the gateway-side relay scheduler — a seam for
// crash-window tests, like multicity.Router.RelayScheduler. Not part
// of the supported surface.
func (g *Gateway) RelayScheduler() *relay.Scheduler { return g.relay }

// CityNames lists the gateway's city names in shard order.
func (g *Gateway) CityNames() []string {
	out := make([]string, len(g.shards))
	for i := range g.shards {
		out[i] = g.shards[i].name
	}
	return out
}

func (g *Gateway) globalID(ci int, local core.RequestID) core.RequestID {
	return multicity.GlobalID(len(g.shards), ci, local)
}

func (g *Gateway) splitID(id core.RequestID) (int, core.RequestID, error) {
	return multicity.SplitGlobalID(len(g.shards), id)
}

// locate assigns a coordinate to the first region containing it.
func (g *Gateway) locate(p geo.Point) (int, error) {
	for i := range g.shards {
		if g.shards[i].region.Contains(p) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cluster: no city serves (%.0f, %.0f): %w", p.X, p.Y, core.ErrNoCity)
}

// nearestVertex snaps a coordinate onto a shard's cached road graph by
// linear scan (the gateway keeps no grid index; graphs are fetched
// once at dial time).
func (g *Gateway) nearestVertex(ci int, p geo.Point) roadnet.VertexID {
	gr := g.shards[ci].client.Graph()
	best, bestD := roadnet.VertexID(0), math.Inf(1)
	for v := 0; v < gr.NumVertices(); v++ {
		if d := gr.Point(roadnet.VertexID(v)).DistSq(p); d < bestD {
			best, bestD = roadnet.VertexID(v), d
		}
	}
	return best
}

// cityIndexArg resolves a Service city argument (no "only city" in a
// cluster, so an empty name is a caller error).
func (g *Gateway) cityIndexArg(city string) (int, error) {
	if city == "" {
		return 0, fmt.Errorf("cluster: missing city parameter: %w", core.ErrInvalidArgument)
	}
	ci, ok := g.byName[city]
	if !ok {
		return 0, fmt.Errorf("cluster: %w: %q", core.ErrUnknownCity, city)
	}
	return ci, nil
}

// serviceRecord lifts a shard record into the Service view.
func (g *Gateway) serviceRecord(ci int, rec *core.RequestRecord) *core.ServiceRecord {
	out := &core.ServiceRecord{RequestRecord: *rec, City: g.shards[ci].name, Speed: g.shards[ci].client.Speed()}
	out.ID = g.globalID(ci, rec.ID)
	return out
}

// relayRecord presents a relay trip in the Service view through the
// shared multicity synthesis.
func (g *Gateway) relayRecord(tv *relay.TripView) *core.ServiceRecord {
	out := &core.ServiceRecord{RequestRecord: multicity.RelayRequestRecord(tv), City: tv.Origin}
	if ci, ok := g.byName[tv.Origin]; ok {
		out.Speed = g.shards[ci].client.Speed()
	}
	out.Relay = tv.ServiceView(out.ID)
	return out
}

// resolveSpec maps a SubmitSpec onto (origin city, dest city, origin
// vertex, dest vertex). Same-city specs have oc == dc.
func (g *Gateway) resolveSpec(spec *core.SubmitSpec) (oc, dc int, s, d roadnet.VertexID, err error) {
	if spec.ByCoords {
		if oc, err = g.locate(spec.Origin); err != nil {
			return
		}
		if dc, err = g.locate(spec.Dest); err != nil {
			return
		}
		s = g.nearestVertex(oc, spec.Origin)
		d = g.nearestVertex(dc, spec.Dest)
		return
	}
	if spec.City == "" {
		err = fmt.Errorf("cluster: vertex-addressed requests need a city: %w", core.ErrInvalidArgument)
		return
	}
	var ci int
	if ci, err = g.cityIndexArg(spec.City); err != nil {
		return
	}
	n := roadnet.VertexID(g.shards[ci].client.Graph().NumVertices())
	if spec.S < 0 || spec.S >= n || spec.D < 0 || spec.D >= n {
		err = fmt.Errorf("cluster: %s: request endpoints out of range: %w", spec.City, core.ErrInvalidArgument)
		return
	}
	return ci, ci, spec.S, spec.D, nil
}

// SubmitRequest implements core.Service: same-city specs go to the
// owning shard (carrying an idempotency key so transport retries are
// safe), cross-city specs run the gateway-side relay scheduler.
func (g *Gateway) SubmitRequest(spec core.SubmitSpec) (*core.ServiceRecord, error) {
	oc, dc, s, d, err := g.resolveSpec(&spec)
	if err != nil {
		return nil, err
	}
	if oc != dc {
		if g.relay == nil {
			return nil, &core.CrossCityError{Origin: g.shards[oc].name, Dest: g.shards[dc].name}
		}
		tv, err := g.relay.Quote(oc, dc, s, d, spec.Riders, spec.Constraints)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		return g.relayRecord(tv), nil
	}
	rec, err := g.shards[oc].client.SubmitIdem(s, d, spec.Riders, spec.Constraints, spec.IdemKey)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", g.shards[oc].name, err)
	}
	return g.serviceRecord(oc, rec), nil
}

// SubmitRequestBatch implements core.Service with a concurrent
// per-city fan-out. When no spec carries a choice callback — the HTTP
// batch shape — each city's run is one shard-side batch call with the
// engine's native greedy semantics. Specs with callbacks (programmatic
// drivers) fall back to quote-then-commit: the shard batch is
// quote-only and the gateway commits or declines each item by index,
// since a closure cannot cross the wire. Cross-city items relay.
func (g *Gateway) SubmitRequestBatch(specs []core.SubmitSpec) ([]*core.ServiceRecord, error) {
	out := make([]*core.ServiceRecord, len(specs))
	var firstErr error
	type slot struct {
		specIdx int
		item    submitWire
	}
	type relaySlot struct {
		specIdx int
		oc, dc  int
		s, d    roadnet.VertexID
	}
	perCity := make([][]slot, len(g.shards))
	var relays []relaySlot
	interactive := false
	for i := range specs {
		spec := &specs[i]
		oc, dc, s, d, err := g.resolveSpec(spec)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: batch item %d: %w", i, err)
			}
			continue
		}
		if spec.Choose != nil {
			interactive = true
		}
		if oc != dc {
			relays = append(relays, relaySlot{specIdx: i, oc: oc, dc: dc, s: s, d: d})
			continue
		}
		perCity[oc] = append(perCity[oc], slot{specIdx: i, item: submitWire{
			S: s, D: d, Riders: spec.Riders, Constraints: spec.Constraints,
		}})
	}

	var mu sync.Mutex
	noteErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for ci := range perCity {
		if len(perCity[ci]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int, slots []slot) {
			defer wg.Done()
			items := make([]submitWire, len(slots))
			for k, sl := range slots {
				items[k] = sl.item
			}
			recs, err := g.shards[ci].client.SubmitBatchQuote(items)
			if err != nil {
				noteErr(fmt.Errorf("cluster: %s: %w", g.shards[ci].name, err))
			}
			for k, rec := range recs {
				if k >= len(slots) || rec == nil {
					continue
				}
				spec := &specs[slots[k].specIdx]
				if interactive {
					rec = g.commitBatchItem(ci, rec, spec, noteErr)
				}
				out[slots[k].specIdx] = g.serviceRecord(ci, rec)
			}
		}(ci, perCity[ci])
	}
	wg.Wait()

	// Relay items run sequentially, like the router's batch path: each
	// two-phase commit sees the fleet state its predecessors left.
	for _, rs := range relays {
		rec, err := g.submitRelayItem(&specs[rs.specIdx], rs.oc, rs.dc, rs.s, rs.d)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: batch item %d: %w", rs.specIdx, err)
		}
		out[rs.specIdx] = rec
	}
	return out, firstErr
}

// commitBatchItem applies one spec's choice callback to a quoted batch
// record: commit by index, or decline (mirroring the engine's batch
// semantics, where a nil callback declines the quote).
func (g *Gateway) commitBatchItem(ci int, rec *core.RequestRecord, spec *core.SubmitSpec, noteErr func(error)) *core.RequestRecord {
	if rec.Status != core.StatusQuoted {
		return rec
	}
	idx := -1
	if spec.Choose != nil {
		idx = spec.Choose(rec.Options)
	}
	client := g.shards[ci].client
	var err error
	if idx >= 0 && idx < len(rec.Options) {
		err = client.Choose(rec.ID, idx)
	} else {
		err = client.Decline(rec.ID)
	}
	if err != nil {
		noteErr(fmt.Errorf("cluster: %s: %w", g.shards[ci].name, err))
		return rec
	}
	if refreshed, rerr := client.Request(rec.ID); rerr == nil {
		return refreshed
	}
	return rec
}

// submitRelayItem quotes (and, with a callback, commits) one
// cross-city batch item.
func (g *Gateway) submitRelayItem(spec *core.SubmitSpec, oc, dc int, s, d roadnet.VertexID) (*core.ServiceRecord, error) {
	tv, err := g.relay.Quote(oc, dc, s, d, spec.Riders, spec.Constraints)
	if err != nil {
		return nil, err
	}
	if spec.Choose != nil {
		idx := spec.Choose(tv.CoreOptions)
		if idx >= 0 && idx < len(tv.CoreOptions) {
			err = g.relay.Choose(tv.ID, idx)
		} else {
			err = g.relay.Decline(tv.ID)
		}
		if refreshed, terr := g.relay.Trip(tv.ID); terr == nil {
			tv = refreshed
		}
		if err != nil {
			return g.relayRecord(tv), fmt.Errorf("choose: %w", err)
		}
	}
	return g.relayRecord(tv), nil
}

// Choose implements core.Service: relay trips (negative ids) commit
// through the two-phase scheduler, city requests on their shard.
func (g *Gateway) Choose(id core.RequestID, optionIndex int) error {
	if id < 0 {
		if g.relay == nil {
			return fmt.Errorf("cluster: unknown request %d: %w", id, core.ErrNotFound)
		}
		return g.relay.Choose(relay.TripID(-id), optionIndex)
	}
	ci, local, err := g.splitID(id)
	if err != nil {
		return err
	}
	return g.shards[ci].client.Choose(local, optionIndex)
}

// Decline implements core.Service.
func (g *Gateway) Decline(id core.RequestID) error {
	if id < 0 {
		if g.relay == nil {
			return fmt.Errorf("cluster: unknown request %d: %w", id, core.ErrNotFound)
		}
		return g.relay.Decline(relay.TripID(-id))
	}
	ci, local, err := g.splitID(id)
	if err != nil {
		return err
	}
	return g.shards[ci].client.Decline(local)
}

// GetRequest implements core.Service.
func (g *Gateway) GetRequest(id core.RequestID) (*core.ServiceRecord, error) {
	if id < 0 {
		if g.relay == nil {
			return nil, fmt.Errorf("cluster: unknown request %d: %w", id, core.ErrNotFound)
		}
		tv, err := g.relay.Trip(relay.TripID(-id))
		if err != nil {
			return nil, err
		}
		return g.relayRecord(tv), nil
	}
	ci, local, err := g.splitID(id)
	if err != nil {
		return nil, err
	}
	rec, err := g.shards[ci].client.Request(local)
	if err != nil {
		return nil, err
	}
	return g.serviceRecord(ci, rec), nil
}

// Requests implements core.Service: per-shard listings fetched
// concurrently, ids lifted into the global namespace, merged and
// re-sorted so pagination pages are stable across cities.
func (g *Gateway) Requests(city string, filter core.RequestFilter, limit int) ([]*core.ServiceRecord, error) {
	cities := make([]int, 0, len(g.shards))
	if city != "" {
		ci, err := g.cityIndexArg(city)
		if err != nil {
			return nil, err
		}
		cities = append(cities, ci)
	} else {
		for ci := range g.shards {
			cities = append(cities, ci)
		}
	}
	lists := make([][]*core.ServiceRecord, len(cities))
	errs := make([]error, len(cities))
	var wg sync.WaitGroup
	for k, ci := range cities {
		wg.Add(1)
		go func(k, ci int) {
			defer wg.Done()
			recs, err := g.shards[ci].client.Requests(filter, 0)
			if err != nil {
				errs[k] = fmt.Errorf("cluster: %s: %w", g.shards[ci].name, err)
				return
			}
			lifted := make([]*core.ServiceRecord, len(recs))
			for i, rec := range recs {
				lifted[i] = g.serviceRecord(ci, rec)
			}
			lists[k] = lifted
		}(k, ci)
	}
	wg.Wait()
	var out []*core.ServiceRecord
	for k := range lists {
		if errs[k] != nil {
			return nil, errs[k]
		}
		out = append(out, lists[k]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// RelayItinerary implements core.Service.
func (g *Gateway) RelayItinerary(id core.RequestID) (*core.RelayView, error) {
	if id >= 0 || g.relay == nil {
		return nil, fmt.Errorf("cluster: request %d is not a relay trip: %w", id, core.ErrNotFound)
	}
	tv, err := g.relay.Trip(relay.TripID(-id))
	if err != nil {
		return nil, err
	}
	return tv.ServiceView(id), nil
}

// Advance implements core.Service: every shard ticks concurrently,
// then the relay scheduler observes the post-movement leg states (and
// drains any pending compensations against shards that have come
// back). Ticks are never retried — see ShardClient.Advance.
func (g *Gateway) Advance(dt float64) ([]core.ServiceEvent, error) {
	if dt < 0 {
		return nil, fmt.Errorf("cluster: negative tick %v: %w", dt, core.ErrInvalidArgument)
	}
	perCity := make([][]fleet.Event, len(g.shards))
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for ci := range g.shards {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			_, evs, err := g.shards[ci].client.Advance(dt)
			perCity[ci], errs[ci] = evs, err
		}(ci)
	}
	wg.Wait()
	if g.relay != nil {
		g.relay.Advance()
	}
	var out []core.ServiceEvent
	for ci, evs := range perCity {
		for _, ev := range evs {
			ev.Request = g.globalID(ci, ev.Request)
			out = append(out, core.ServiceEvent{City: g.shards[ci].name, Event: ev})
		}
	}
	for ci, err := range errs {
		if err != nil {
			return out, fmt.Errorf("cluster: %s: %w", g.shards[ci].name, err)
		}
	}
	return out, nil
}

// Clock implements core.Service: the maximum shard clock, best-effort
// over whatever shards answer.
func (g *Gateway) Clock() float64 {
	var clock float64
	for i := range g.shards {
		if c, err := g.shards[i].client.Clock(); err == nil && c > clock {
			clock = c
		}
	}
	return clock
}

// ServiceStats implements core.Service: per-shard panels fetched
// concurrently and folded with the shared multicity aggregation.
// Unreachable shards are omitted from the snapshot (statistics are
// best-effort; readiness is ReadyCities' job).
func (g *Gateway) ServiceStats() core.ServiceStats {
	panels := make([]*core.EngineStats, len(g.shards))
	var wg sync.WaitGroup
	for ci := range g.shards {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			if st, err := g.shards[ci].client.Stats(); err == nil {
				panels[ci] = &st
			}
		}(ci)
	}
	wg.Wait()
	out := core.ServiceStats{
		Cities: make(map[string]core.EngineStats, len(g.shards)),
		Multi:  true,
	}
	if g.relay != nil {
		out.RelayEnabled = true
		out.Relay = g.relay.Stats()
	}
	var agg multicity.StatsAggregator
	for ci, st := range panels {
		if st == nil {
			continue
		}
		out.Cities[g.shards[ci].name] = *st
		agg.Add(*st)
	}
	out.Total = agg.Total()
	return out
}

// Cities implements core.Service, serving each shard's TTL-cached meta
// under its gateway-assigned name.
func (g *Gateway) Cities() []core.CityInfo {
	out := make([]core.CityInfo, len(g.shards))
	for i := range g.shards {
		m := g.shards[i].client.Meta()
		out[i] = core.CityInfo{
			Name: g.shards[i].name, Vertices: m.Vertices,
			Vehicles: m.Vehicles, Region: m.Region,
		}
	}
	return out
}

// Vehicles implements core.Service.
func (g *Gateway) Vehicles(city string, limit int) ([]core.VehicleView, error) {
	ci, err := g.cityIndexArg(city)
	if err != nil {
		return nil, err
	}
	return g.shards[ci].client.Vehicles(limit)
}

// VehicleItinerary implements core.Service.
func (g *Gateway) VehicleItinerary(city string, id fleet.VehicleID) (*core.VehicleItinerary, error) {
	ci, err := g.cityIndexArg(city)
	if err != nil {
		return nil, err
	}
	loc, branches, err := g.shards[ci].client.VehicleSchedules(id)
	if err != nil {
		return nil, err
	}
	return &core.VehicleItinerary{
		City: g.shards[ci].name, Vehicle: id, Location: loc, Branches: branches,
	}, nil
}

// Params implements core.Service.
func (g *Gateway) Params(city string) (core.ServiceParams, error) {
	ci, err := g.cityIndexArg(city)
	if err != nil {
		return core.ServiceParams{}, err
	}
	p, err := g.shards[ci].client.Params()
	if err != nil {
		return core.ServiceParams{}, err
	}
	p.City = g.shards[ci].name
	return p, nil
}

// Surge implements core.Service.
func (g *Gateway) Surge(city string) (*core.SurgeView, error) {
	ci, err := g.cityIndexArg(city)
	if err != nil {
		return nil, err
	}
	v, err := g.shards[ci].client.Surge()
	if err != nil {
		return nil, err
	}
	v.City = g.shards[ci].name
	return v, nil
}

// SetCityAlgorithm implements core.Service.
func (g *Gateway) SetCityAlgorithm(city string, algo core.Algorithm) error {
	ci, err := g.cityIndexArg(city)
	if err != nil {
		return err
	}
	return g.shards[ci].client.SetAlgorithm(algo)
}

// CityGraph implements core.Service from the dial-time graph cache.
func (g *Gateway) CityGraph(city string) (*roadnet.Graph, error) {
	ci, err := g.cityIndexArg(city)
	if err != nil {
		return nil, err
	}
	return g.shards[ci].client.Graph(), nil
}

// ReadyCities reports per-city readiness by probing every shard's
// /v1/readyz concurrently — the /v1/readyz detail body of the gateway
// itself. An unreachable shard reads unready with its transport error.
func (g *Gateway) ReadyCities() []core.CityReadiness {
	out := make([]core.CityReadiness, len(g.shards))
	var wg sync.WaitGroup
	for i := range g.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = core.CityReadiness{City: g.shards[i].name, Ready: true}
			if err := g.shards[i].client.Ready(); err != nil {
				out[i].Ready, out[i].Err = false, err.Error()
			}
		}(i)
	}
	wg.Wait()
	return out
}

// Ready reports whether every shard can serve traffic.
func (g *Gateway) Ready() error {
	for _, cr := range g.ReadyCities() {
		if !cr.Ready {
			return fmt.Errorf("cluster: %s: %s: %w", cr.City, cr.Err, core.ErrUnavailable)
		}
	}
	return nil
}

// MetricFamilies gathers the gateway's telemetry: its own registry
// (shard RPC latency/error/retry families, relay instruments) merged
// with every reachable shard's fetched families labeled city=<name> —
// the same shape the in-process router scrapes.
func (g *Gateway) MetricFamilies() []telemetry.Family {
	if g.reg == nil {
		return nil
	}
	groups := make([][]telemetry.Family, 0, len(g.shards)+1)
	groups = append(groups, g.reg.Gather())
	for i := range g.shards {
		fams, err := g.shards[i].client.Telemetry()
		if err != nil {
			continue
		}
		groups = append(groups, telemetry.WithLabel(fams, "city", g.shards[i].name))
	}
	return telemetry.Merge(groups...)
}
