// e2e_test.go is the cluster's multi-process acceptance harness: it
// builds cmd/ptrider-shard, launches two real shard processes with
// write-ahead journals, routes a cross-city relay trip through a
// gateway over real sockets, SIGKILLs the destination shard inside the
// two-phase commit window (via -test-crash-after-choose), restarts it
// over the same journal, and verifies the deferred compensation
// releases every leg reservation with request-id continuity intact.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/relay"
)

// freePort reserves an ephemeral port and releases it for the shard to
// bind (a small race, tolerated — the test fails loudly on collision).
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("free port: %v", err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// buildShardBinary compiles cmd/ptrider-shard into dir.
func buildShardBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "ptrider-shard")
	cmd := exec.Command("go", "build", "-o", bin, "ptrider/cmd/ptrider-shard")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build ptrider-shard: %v\n%s", err, out)
	}
	return bin
}

// shardProc is one launched shard process. done is closed once the
// process has exited, so any number of waiters can observe it.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
	out  *bytes.Buffer
	done chan struct{}
}

// launchShard starts the shard binary and returns once the process is
// running (readiness is the dialing client's job).
func launchShard(t *testing.T, bin string, port int, extra ...string) *shardProc {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start shard: %v", err)
	}
	p := &shardProc{cmd: cmd, addr: addr, out: &out, done: make(chan struct{})}
	go func() { _ = cmd.Wait(); close(p.done) }()
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		<-p.done
	})
	return p
}

// waitExit blocks until the process exits and returns its exit code.
func (p *shardProc) waitExit(t *testing.T, within time.Duration) int {
	t.Helper()
	select {
	case <-p.done:
		return p.cmd.ProcessState.ExitCode()
	case <-time.After(within):
		t.Fatalf("shard %s did not exit within %v\n%s", p.addr, within, p.out.String())
		return -1
	}
}

// fleetLoad sums assigned work across a shard's fleet through its RPC
// surface.
func fleetLoad(t *testing.T, c *ShardClient) int {
	t.Helper()
	views, err := c.Vehicles(0)
	if err != nil {
		t.Fatalf("vehicles %s: %v", c.Addr(), err)
	}
	load := 0
	for _, v := range views {
		load += v.Pending + v.Onboard
	}
	return load
}

// TestE2EShardCrashInCommitWindow is the PR's acceptance pin: a
// cross-city relay commit whose destination shard is killed after
// journaling its leg but before acknowledging it must be compensated
// idempotently after the shard's WAL-driven restart — no vehicle stays
// reserved for the aborted trip, and the recovered shard quotes new
// requests with its id sequence intact.
func TestE2EShardCrashInCommitWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildShardBinary(t, dir)
	portA, portB := freePort(t), freePort(t)
	walA, walB := filepath.Join(dir, "wal-alpha"), filepath.Join(dir, "wal-beta")

	alphaArgs := []string{"-width", "10", "-height", "10", "-taxis", "10", "-seed", "1", "-wal-dir", walA}
	betaArgs := []string{"-width", "8", "-height", "8", "-origin-x", "20000", "-taxis", "10", "-seed", "2", "-wal-dir", walB}

	launchShard(t, bin, portA, alphaArgs...)
	beta := launchShard(t, bin, portB, append(betaArgs, "-test-crash-after-choose")...)

	cfg := fastClient()
	cfg.DialTimeout = 30 * time.Second
	gw, err := NewGateway(
		[]string{"alpha=" + fmt.Sprintf("127.0.0.1:%d", portA), "beta=" + fmt.Sprintf("127.0.0.1:%d", portB)},
		GatewayConfig{Client: cfg, Relay: relay.Config{TransferBufferSeconds: 120}})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	defer gw.Close()
	sched := gw.RelayScheduler()

	// Quote a cross-city trip over the sockets and note the
	// destination shard's id high-water mark before the crash.
	rng := rand.New(rand.NewSource(11))
	rec := quotedSpec(t, gw, "alpha", "beta", rng)
	betaClient, err := Dial(beta.addr, cfg)
	if err != nil {
		t.Fatalf("beta client: %v", err)
	}
	defer betaClient.Close()
	betaRecs, err := betaClient.Requests(core.RequestFilter{}, 0)
	if err != nil || len(betaRecs) == 0 {
		t.Fatalf("beta ledger before crash: %d, %v", len(betaRecs), err)
	}
	maxBetaID := betaRecs[len(betaRecs)-1].ID

	// Commit: leg 1 books on alpha, then beta journals its leg and
	// exits 137 without replying — the ambiguous commit window.
	err = gw.Choose(rec.ID, 0)
	if !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("choose through the crash: %v, want ErrUnavailable", err)
	}
	if code := beta.waitExit(t, 10*time.Second); code != 137 {
		t.Fatalf("beta exit code %d, want 137\n%s", code, beta.out.String())
	}
	if got := sched.PendingCompensations(); got != 1 {
		t.Fatalf("pending compensations %d, want 1", got)
	}

	// Restart beta over the same journal, without the crash flag. Its
	// WAL replays the orphaned leg-2 booking.
	launchShard(t, bin, portB, betaArgs...)
	deadline := time.Now().Add(30 * time.Second)
	for betaClient.Ready() != nil {
		if time.Now().After(deadline) {
			t.Fatal("restarted beta never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The next tick drains the deferred compensation: both legs are
	// released on their shards, idempotently against the replayed WAL.
	if _, err := gw.Advance(1); err != nil {
		t.Fatalf("advance after restart: %v", err)
	}
	if got := sched.PendingCompensations(); got != 0 {
		t.Fatalf("pending compensations %d after drain, want 0", got)
	}
	tv, err := gw.GetRequest(rec.ID)
	if err != nil || tv.Status != core.StatusDeclined {
		t.Fatalf("trip after compensation: %+v, %v", tv, err)
	}

	// No vehicle on either shard still carries the aborted trip.
	alphaClient, err := Dial(fmt.Sprintf("127.0.0.1:%d", portA), cfg)
	if err != nil {
		t.Fatalf("alpha client: %v", err)
	}
	defer alphaClient.Close()
	for _, c := range []*ShardClient{alphaClient, betaClient} {
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("stats %s: %v", c.Addr(), err)
		}
		if st.Assigned != 0 {
			t.Fatalf("shard %s holds %d assigned legs after compensation", c.Addr(), st.Assigned)
		}
		if load := fleetLoad(t, c); load != 0 {
			t.Fatalf("shard %s fleet still loaded: %d", c.Addr(), load)
		}
	}

	// Id continuity: the recovered shard's next quote continues the
	// journaled sequence instead of reusing ids.
	fresh := quotedSpec(t, gw, "beta", "beta", rng)
	_, local, err := splitGlobal(2, fresh.ID)
	if err != nil {
		t.Fatalf("split %d: %v", fresh.ID, err)
	}
	if local <= maxBetaID {
		t.Fatalf("recovered shard reused ids: new local %d, pre-crash max %d", local, maxBetaID)
	}
	if err := gw.Decline(fresh.ID); err != nil {
		t.Fatalf("decline: %v", err)
	}
}

// splitGlobal mirrors the gateway's id striding for assertions.
func splitGlobal(n int, id core.RequestID) (int, core.RequestID, error) {
	g := &Gateway{shards: make([]shardRef, n)}
	return g.splitID(id)
}
