// bench_test.go prices the cluster transport: one quote-decline cycle
// through the gateway (JSON encode, HTTP round trip over a loopback
// socket, envelope decode, id lift) against the same cycle on an
// in-process engine. The delta is the wire cost a deployment pays for
// horizontal scale-out; see BENCH_pr10.json for reference numbers.
package cluster

import (
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/roadnet"
)

// gatewayBenchProbes are fixed vertex pairs on the 10x10 bench city,
// spread so quotes stay cheap and comparable.
var gatewayBenchProbes = [][2]roadnet.VertexID{
	{3, 40}, {5, 44}, {12, 70}, {21, 88}, {7, 63}, {30, 95},
}

func BenchmarkGatewaySubmit(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		eng := newCityEngine(b, 10, 10, 0, 1, 10)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := gatewayBenchProbes[i%len(gatewayBenchProbes)]
			rec, err := eng.Submit(p[0], p[1], 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Decline(rec.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gateway", func(b *testing.B) {
		eng := newCityEngine(b, 10, 10, 0, 1, 10)
		ts, _ := startShard(b, eng, ShardOptions{})
		gw, err := NewGateway([]string{"solo=" + ts.URL}, GatewayConfig{Client: fastClient()})
		if err != nil {
			b.Fatalf("gateway: %v", err)
		}
		defer gw.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := gatewayBenchProbes[i%len(gatewayBenchProbes)]
			rec, err := gw.SubmitRequest(core.SubmitSpec{City: "solo", S: p[0], D: p[1], Riders: 1})
			if err != nil {
				b.Fatal(err)
			}
			if err := gw.Decline(rec.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}
