// shard.go is the server half of the shard RPC surface: an
// http.Handler wrapping one single-city core.Engine. The handler
// mounts the full /v1 API (so a shard is independently operable and
// debuggable — readyz, metrics, the map, the whole request surface)
// and adds the compact /rpc/* verbs the gateway's ShardClient speaks.
//
// /rpc answers raw core types — engine records (candidate-stripped),
// EngineStats, telemetry families — rather than the /v1 view shapes,
// because its caller is the gateway reassembling a core.Service, not a
// browser. Immutable per-city payloads (the road graph) are rendered
// once and served with an ETag so the client's cache can revalidate
// for free.
package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/roadnet"
	"ptrider/internal/server"
	"ptrider/internal/telemetry"
)

// ShardOptions tunes the shard handler.
type ShardOptions struct {
	// Server configures the embedded /v1 surface (metrics, slow-request
	// logging).
	Server server.Options
	// AfterChoose, when non-nil, runs after every successful engine
	// Choose on the RPC surface, before the HTTP response is written.
	// It exists for crash-window testing: cmd/ptrider-shard's
	// -test-crash-after-choose exits the process here, leaving the
	// commit journaled but unacknowledged — the ambiguity the gateway's
	// deferred compensation has to resolve.
	AfterChoose func()
}

// shardHandler serves one engine over /v1 + /rpc.
type shardHandler struct {
	eng  *core.Engine
	opts ShardOptions

	graphBody []byte // the road graph in the roadnet text codec
	graphETag string
}

// NewShardHandler wraps a single-city engine in the shard HTTP
// surface: the full /v1 API plus the /rpc verbs cluster.ShardClient
// speaks.
func NewShardHandler(eng *core.Engine, opts ShardOptions) http.Handler {
	h := &shardHandler{eng: eng, opts: opts}

	var buf bytes.Buffer
	if err := roadnet.WriteGraph(&buf, eng.Graph()); err == nil {
		h.graphBody = buf.Bytes()
		sum := sha256.Sum256(h.graphBody)
		h.graphETag = `"` + hex.EncodeToString(sum[:8]) + `"`
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /rpc/submit", h.handleSubmit)
	mux.HandleFunc("POST /rpc/submit-batch", h.handleSubmitBatch)
	mux.HandleFunc("POST /rpc/choose", h.handleChoose)
	mux.HandleFunc("POST /rpc/decline", h.handleDecline)
	mux.HandleFunc("POST /rpc/cancel", h.handleCancel)
	mux.HandleFunc("GET /rpc/requests", h.handleRequests)
	mux.HandleFunc("GET /rpc/requests/{id}", h.handleRequestByID)
	mux.HandleFunc("POST /rpc/advance", h.handleAdvance)
	mux.HandleFunc("GET /rpc/clock", h.handleClock)
	mux.HandleFunc("GET /rpc/stats", h.handleStats)
	mux.HandleFunc("GET /rpc/meta", h.handleMeta)
	mux.HandleFunc("GET /rpc/graph", h.handleGraph)
	mux.HandleFunc("GET /rpc/params", h.handleParams)
	mux.HandleFunc("GET /rpc/surge", h.handleSurge)
	mux.HandleFunc("POST /rpc/algorithm", h.handleAlgorithm)
	mux.HandleFunc("GET /rpc/vehicles", h.handleVehicles)
	mux.HandleFunc("GET /rpc/vehicles/{id}", h.handleVehicleByID)
	mux.HandleFunc("GET /rpc/telemetry", h.handleTelemetry)
	// Everything else — /v1, /api, /healthz, /metrics — is the standard
	// single-city server surface.
	mux.Handle("/", server.NewServiceWithOptions(eng, opts.Server).Handler())
	return mux
}

// rpcJSON writes a 200 JSON body.
func rpcJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// rpcErr writes the error envelope with the /v1 classification.
func rpcErr(w http.ResponseWriter, err error) {
	status, p := wireErrorOf(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wireEnvelope{Error: p})
}

// rpcDecode parses a JSON request body, classifying malformed payloads
// as invalid_argument.
func rpcDecode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		rpcErr(w, fmt.Errorf("cluster: bad request body: %v: %w", err, core.ErrInvalidArgument))
		return false
	}
	return true
}

func (h *shardHandler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var in submitWire
	if !rpcDecode(w, r, &in) {
		return
	}
	rec, err := h.eng.SubmitIdem(in.S, in.D, in.Riders, in.Constraints, in.IdemKey)
	if err != nil {
		rpcErr(w, err)
		return
	}
	rpcJSON(w, sanitizeRecord(rec))
}

func (h *shardHandler) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var in batchWire
	if !rpcDecode(w, r, &in) {
		return
	}
	items := make([]core.BatchItem, len(in.Items))
	for i, it := range in.Items {
		items[i] = core.BatchItem{S: it.S, D: it.D, Riders: it.Riders, Constraints: it.Constraints}
	}
	recs, err := h.eng.SubmitBatch(items)
	out := batchReply{Records: make([]*core.RequestRecord, len(recs))}
	for i, rec := range recs {
		if rec != nil {
			out.Records[i] = sanitizeRecord(rec)
		}
	}
	if err != nil {
		_, p := wireErrorOf(err)
		out.Err = &p
	}
	rpcJSON(w, out)
}

func (h *shardHandler) handleChoose(w http.ResponseWriter, r *http.Request) {
	var in chooseWire
	if !rpcDecode(w, r, &in) {
		return
	}
	if err := h.eng.Choose(in.ID, in.Option); err != nil {
		rpcErr(w, err)
		return
	}
	if h.opts.AfterChoose != nil {
		h.opts.AfterChoose()
	}
	rpcJSON(w, struct{}{})
}

func (h *shardHandler) handleDecline(w http.ResponseWriter, r *http.Request) {
	var in idWire
	if !rpcDecode(w, r, &in) {
		return
	}
	if err := h.eng.Decline(in.ID); err != nil {
		rpcErr(w, err)
		return
	}
	rpcJSON(w, struct{}{})
}

func (h *shardHandler) handleCancel(w http.ResponseWriter, r *http.Request) {
	var in idWire
	if !rpcDecode(w, r, &in) {
		return
	}
	if err := h.eng.CancelAssigned(in.ID); err != nil {
		rpcErr(w, err)
		return
	}
	rpcJSON(w, struct{}{})
}

func (h *shardHandler) handleRequests(w http.ResponseWriter, r *http.Request) {
	var filter core.RequestFilter
	if s := r.URL.Query().Get("status"); s != "" {
		st, err := core.ParseRequestStatus(s)
		if err != nil {
			rpcErr(w, err)
			return
		}
		filter.Status, filter.HasStatus = st, true
	}
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			rpcErr(w, fmt.Errorf("cluster: bad limit %q: %w", s, core.ErrInvalidArgument))
			return
		}
		limit = n
	}
	recs, err := h.eng.Requests("", filter, limit)
	if err != nil {
		rpcErr(w, err)
		return
	}
	out := make([]*core.RequestRecord, len(recs))
	for i, rec := range recs {
		out[i] = sanitizeRecord(&rec.RequestRecord)
	}
	rpcJSON(w, out)
}

func (h *shardHandler) handleRequestByID(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		rpcErr(w, fmt.Errorf("cluster: bad request id: %w", core.ErrInvalidArgument))
		return
	}
	rec, err := h.eng.Request(core.RequestID(id))
	if err != nil {
		rpcErr(w, err)
		return
	}
	rpcJSON(w, sanitizeRecord(rec))
}

func (h *shardHandler) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var in advanceWire
	if !rpcDecode(w, r, &in) {
		return
	}
	events, err := h.eng.Tick(in.Seconds)
	if err != nil {
		rpcErr(w, err)
		return
	}
	if events == nil {
		events = []fleet.Event{}
	}
	rpcJSON(w, advanceReply{Clock: h.eng.Clock(), Events: events})
}

func (h *shardHandler) handleClock(w http.ResponseWriter, r *http.Request) {
	rpcJSON(w, clockReply{Clock: h.eng.Clock()})
}

func (h *shardHandler) handleStats(w http.ResponseWriter, r *http.Request) {
	rpcJSON(w, h.eng.Stats())
}

func (h *shardHandler) handleMeta(w http.ResponseWriter, r *http.Request) {
	maxWait, maxPickup := h.eng.LegLimits()
	g := h.eng.Graph()
	rpcJSON(w, metaWire{
		City:             core.DefaultCityName,
		Vertices:         g.NumVertices(),
		Vehicles:         h.eng.NumVehicles(),
		Region:           g.Bounds(),
		Speed:            h.eng.Speed(),
		MaxWaitSeconds:   maxWait,
		MaxPickupSeconds: maxPickup,
	})
}

func (h *shardHandler) handleGraph(w http.ResponseWriter, r *http.Request) {
	if h.graphETag != "" {
		w.Header().Set("ETag", h.graphETag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, h.graphETag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(h.graphBody)
}

// etagMatch implements the weak If-None-Match comparison over a
// comma-separated candidate list.
func etagMatch(header, etag string) bool {
	for _, c := range bytes.Split([]byte(header), []byte(",")) {
		cand := string(bytes.TrimSpace(c))
		cand = trimWeak(cand)
		if cand == "*" || cand == trimWeak(etag) {
			return true
		}
	}
	return false
}

func trimWeak(tag string) string {
	if len(tag) > 2 && tag[0] == 'W' && tag[1] == '/' {
		return tag[2:]
	}
	return tag
}

func (h *shardHandler) handleParams(w http.ResponseWriter, r *http.Request) {
	p, err := h.eng.Params("")
	if err != nil {
		rpcErr(w, err)
		return
	}
	rpcJSON(w, p)
}

func (h *shardHandler) handleSurge(w http.ResponseWriter, r *http.Request) {
	v, err := h.eng.Surge("")
	if err != nil {
		rpcErr(w, err)
		return
	}
	rpcJSON(w, v)
}

func (h *shardHandler) handleAlgorithm(w http.ResponseWriter, r *http.Request) {
	var in algoWire
	if !rpcDecode(w, r, &in) {
		return
	}
	algo, err := core.ParseAlgorithm(in.Algorithm)
	if err != nil {
		rpcErr(w, fmt.Errorf("%v: %w", err, core.ErrInvalidArgument))
		return
	}
	if err := h.eng.SetAlgorithm(algo); err != nil {
		rpcErr(w, err)
		return
	}
	rpcJSON(w, struct{}{})
}

func (h *shardHandler) handleVehicles(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			rpcErr(w, fmt.Errorf("cluster: bad limit %q: %w", s, core.ErrInvalidArgument))
			return
		}
		limit = n
	}
	views := h.eng.VehicleViews(limit)
	if views == nil {
		views = []core.VehicleView{}
	}
	rpcJSON(w, views)
}

func (h *shardHandler) handleVehicleByID(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		rpcErr(w, fmt.Errorf("cluster: bad vehicle id: %w", core.ErrInvalidArgument))
		return
	}
	loc, branches, err := h.eng.VehicleSchedules(fleet.VehicleID(id))
	if err != nil {
		rpcErr(w, fmt.Errorf("cluster: vehicle %d: %w", id, core.ErrNotFound))
		return
	}
	rpcJSON(w, itineraryWire{Vehicle: fleet.VehicleID(id), Location: loc, Branches: branches})
}

func (h *shardHandler) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	fams := h.eng.MetricFamilies()
	if fams == nil {
		fams = []telemetry.Family{}
	}
	rpcJSON(w, fams)
}
