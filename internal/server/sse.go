// sse.go implements GET /v1/events: a Server-Sent Events stream of the
// movement events (pickups and dropoffs) produced by simulated time
// advancing — POST /v1/ticks, the legacy /api/tick alias, and realtime
// drivers calling Server.Tick all feed it.
//
// Each movement event is one SSE message whose event name is the kind:
//
//	event: pickup
//	data: {"city":"east","kind":"pickup","vehicle":3,"request":41,"odo":812.5}
//
// Subscribers are held behind buffered channels; a subscriber that
// stops draining loses events rather than stalling ticks (the stream is
// an observability surface, not a ledger — GET /v1/requests/{id} is the
// source of truth).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"ptrider/internal/core"
)

// sseMsg is one formatted stream message. city carries the producing
// city so per-subscriber ?city= filters can match without re-parsing
// the JSON payload; id is the request's correlation id, emitted as
// the SSE "id:" field so clients can tie events back to requests.
type sseMsg struct {
	event string
	city  string
	id    int64
	data  []byte
}

// subscriberBuffer bounds each subscriber's in-flight events.
const subscriberBuffer = 256

// eventHub fans movement events out to the active /v1/events streams.
// dropped counts events discarded on full subscriber buffers — the
// cost of the drop-don't-stall policy, surfaced through /v1/stats and
// the ptrider_sse_dropped_total counter.
type eventHub struct {
	mu      sync.Mutex
	subs    map[chan sseMsg]struct{}
	dropped atomic.Int64
}

// subscriberCount returns the number of active subscribers.
func (h *eventHub) subscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// droppedCount returns the total events dropped on slow subscribers.
func (h *eventHub) droppedCount() int64 { return h.dropped.Load() }

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[chan sseMsg]struct{})}
}

func (h *eventHub) subscribe() chan sseMsg {
	ch := make(chan sseMsg, subscriberBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *eventHub) unsubscribe(ch chan sseMsg) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// publish delivers one message to every subscriber, dropping it for
// subscribers whose buffer is full.
func (h *eventHub) publish(m sseMsg) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- m:
		default: // slow consumer: drop rather than stall the tick
			h.dropped.Add(1)
		}
	}
}

// publishEvents renders tick movement events onto the stream.
func (s *Server) publishEvents(events []core.ServiceEvent) {
	for _, e := range events {
		view := eventView{
			City: e.City, Kind: e.Kind.String(),
			Vehicle: e.Vehicle, Request: int64(e.Request), Odo: e.Odo,
		}
		data, err := json.Marshal(view)
		if err != nil {
			continue
		}
		s.hub.publish(sseMsg{event: view.Kind, city: e.City, id: view.Request, data: data})
	}
}

// handleEvents serves GET /v1/events as an SSE stream until the client
// disconnects. An optional ?city= parameter narrows the stream to one
// city's events; the filter runs subscriber-side so one hub serves
// every combination of filters.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	cityFilter := r.URL.Query().Get("city")
	fl, ok := w.(http.Flusher)
	if !ok {
		writeCode(w, http.StatusInternalServerError, "internal", "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line lets clients confirm the subscription
	// is live before the first tick fires.
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()

	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-ch:
			if cityFilter != "" && m.city != cityFilter {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", m.id, m.event, m.data)
			fl.Flush()
		}
	}
}
