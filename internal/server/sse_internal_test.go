// sse_internal_test.go forces the hub's drop-on-slow-subscriber path
// (unreachable from the HTTP surface without a stalled client) and
// checks the drop count surfaces on /v1/stats and the telemetry
// counter.
package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/testnet"
)

func TestSSEDropOnSlowSubscriber(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 8, 8, 100)
	eng, err := core.NewEngine(g, core.Config{
		GridCols: 3, GridRows: 3, Capacity: 4,
		Algorithm: core.AlgoDualSide, Seed: 1,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	s := NewService(eng)

	// A subscriber that never drains: the buffer fills, then every
	// further publish drops.
	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)
	const extra = 10
	for i := 0; i < subscriberBuffer+extra; i++ {
		s.hub.publish(sseMsg{event: "pickup", city: "x", data: []byte("{}")})
	}
	if got := s.hub.droppedCount(); got != extra {
		t.Fatalf("droppedCount = %d, want %d", got, extra)
	}

	// The drop total surfaces on /v1/stats...
	rec := httptest.NewRecorder()
	s.handleStatsV1(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var out struct {
		Server struct {
			SSESubscribers int   `json:"sse_subscribers"`
			SSEDropped     int64 `json:"sse_dropped"`
		} `json:"server"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if out.Server.SSEDropped != extra || out.Server.SSESubscribers != 1 {
		t.Fatalf("stats server panel = %+v", out.Server)
	}

	// ...and on the telemetry counter.
	rec = httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "ptrider_sse_dropped_total 10") {
		t.Fatalf("metrics miss the drop counter: %s", rec.Body.String())
	}
}
