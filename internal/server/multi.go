// multi.go exposes a multicity.Router over HTTP: the same two demo
// interfaces as the single-engine server, with a city dimension in
// every view.
//
// Smartphone interface:
//
//	POST /api/request  {"city":"east","s":12,"d":17,"riders":2}
//	POST /api/request  {"ox":100,"oy":900,"dx":3500,"dy":200,"riders":1}
//	POST /api/choose   {"id":41,"option":0}
//	POST /api/decline  {"id":41}
//	GET  /api/request?id=41
//
// A request body either names the city and city-local vertices, or
// gives planar coordinates (ox/oy → dx/dy) and lets the router assign
// the city by origin. A cross-city pair is served as a two-leg relay
// trip when the router enables relay scheduling — the response then
// carries a "relay" section with the gateways, the joint skyline's
// per-leg breakdown and the trip state — and rejected with 422 and a
// typed error message otherwise. Request ids are global across cities
// (relay trips negative).
//
//	GET  /api/relay?id=-3          one relay trip's two-leg status
//
// Website interface:
//
//	GET  /api/cities               city names, regions, fleet sizes
//	GET  /api/stats                per-city panels plus aggregate totals
//	                               (and the relay panel when enabled)
//	GET  /api/vehicles?city=east   one city's fleet positions
//	GET  /api/taxi?city=east&id=3  one taxi's schedules
//	GET  /api/map?city=east        one city's ASCII map
//	GET  /api/params?city=east · POST /api/params {"city":"east","algorithm":"naive"}
//	POST /api/tick {"seconds":5}   advances every city concurrently
//	GET  /healthz
package server

import (
	"fmt"
	"net/http"
	"strconv"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/geo"
	"ptrider/internal/multicity"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
)

// MultiServer wires a multicity.Router to an http.Handler.
type MultiServer struct {
	router *multicity.Router
	mux    *http.ServeMux
}

// NewMulti returns a MultiServer for router.
func NewMulti(router *multicity.Router) *MultiServer {
	s := &MultiServer{router: router, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/cities", s.handleCities)
	s.mux.HandleFunc("/api/request", s.handleRequest)
	s.mux.HandleFunc("/api/relay", s.handleRelay)
	s.mux.HandleFunc("/api/choose", s.handleChoose)
	s.mux.HandleFunc("/api/decline", s.handleDecline)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/taxi", s.handleTaxi)
	s.mux.HandleFunc("/api/params", s.handleParams)
	s.mux.HandleFunc("/api/tick", s.handleTick)
	s.mux.HandleFunc("/api/vehicles", s.handleVehicles)
	s.mux.HandleFunc("/api/map", s.handleMap)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// Handler returns the HTTP handler.
func (s *MultiServer) Handler() http.Handler { return s.mux }

// cityOf resolves the engine behind a record's city for view building.
func (s *MultiServer) cityOf(rec *multicity.Record) (*core.Engine, error) {
	return s.router.Engine(rec.City)
}

// cityRequestView is requestView plus the owning city and, for a
// cross-city trip served by relay, the two-leg breakdown. A relay
// record's plain option rows carry the composed fare as price and the
// composed door-to-destination ETA as pickup time — the relay section
// holds the per-leg truth.
type cityRequestView struct {
	requestView
	City  string         `json:"city"`
	Relay *relayTripView `json:"relay,omitempty"`
}

// relayGatewayView is one hand-off pair of a relay trip.
type relayGatewayView struct {
	From      int32   `json:"from"`
	To        int32   `json:"to"`
	GapMeters float64 `json:"gap_meters"`
}

// relayOptionView is one row of the joint skyline with its per-leg
// breakdown (Fig. 4b lifted to two legs).
type relayOptionView struct {
	Index         int     `json:"index"`
	Gateway       int     `json:"gateway"`
	Fare          float64 `json:"fare"`
	Leg1Price     float64 `json:"leg1_price"`
	Leg2Price     float64 `json:"leg2_price"`
	Leg1Vehicle   int32   `json:"leg1_vehicle"`
	Leg2Vehicle   int32   `json:"leg2_vehicle"`
	PickupSeconds float64 `json:"pickup_seconds"`
	ETASeconds    float64 `json:"eta_seconds"`
}

// relayTripView is a relay trip's status: the state machine stage, the
// gateways, the joint skyline and — once committed — the two leg
// record ids (city-local to origin and destination).
type relayTripView struct {
	RequestID             int64              `json:"request_id"`
	Origin                string             `json:"origin"`
	Dest                  string             `json:"dest"`
	State                 string             `json:"state"`
	TransferBufferSeconds float64            `json:"transfer_buffer_seconds"`
	Gateways              []relayGatewayView `json:"gateways"`
	Options               []relayOptionView  `json:"options"`
	Chosen                int                `json:"chosen"`
	Leg1                  int64              `json:"leg1,omitempty"`
	Leg2                  int64              `json:"leg2,omitempty"`
}

func relayTripViewFor(id core.RequestID, tv *relay.TripView) *relayTripView {
	out := &relayTripView{
		RequestID:             int64(id),
		Origin:                tv.Origin,
		Dest:                  tv.Dest,
		State:                 tv.State.String(),
		TransferBufferSeconds: tv.TransferBufferSeconds,
		Gateways:              make([]relayGatewayView, len(tv.Gateways)),
		Options:               make([]relayOptionView, len(tv.Options)),
		Chosen:                tv.Chosen,
		Leg1:                  int64(tv.Leg1),
		Leg2:                  int64(tv.Leg2),
	}
	for i, g := range tv.Gateways {
		out.Gateways[i] = relayGatewayView{From: g.From, To: g.To, GapMeters: g.GapMeters}
	}
	for i, o := range tv.Options {
		out.Options[i] = relayOptionView{
			Index:         i,
			Gateway:       o.Gateway,
			Fare:          o.Fare,
			Leg1Price:     o.Leg1.Price,
			Leg2Price:     o.Leg2.Price,
			Leg1Vehicle:   o.Leg1.Vehicle,
			Leg2Vehicle:   o.Leg2.Vehicle,
			PickupSeconds: o.PickupSeconds,
			ETASeconds:    o.ETASeconds,
		}
	}
	return out
}

func (s *MultiServer) recordView(rec *multicity.Record) (cityRequestView, error) {
	eng, err := s.cityOf(rec)
	if err != nil {
		return cityRequestView{}, err
	}
	rv := requestViewFor(eng, &rec.RequestRecord)
	out := cityRequestView{requestView: rv, City: rec.City}
	if rec.Relay != nil {
		out.Relay = relayTripViewFor(rec.ID, rec.Relay)
	}
	return out, nil
}

type cityView struct {
	Name     string  `json:"name"`
	Vertices int     `json:"vertices"`
	Vehicles int     `json:"vehicles"`
	MinX     float64 `json:"min_x"`
	MinY     float64 `json:"min_y"`
	MaxX     float64 `json:"max_x"`
	MaxY     float64 `json:"max_y"`
}

func (s *MultiServer) handleCities(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	names := s.router.CityNames()
	out := make([]cityView, 0, len(names))
	for _, name := range names {
		eng, err := s.router.Engine(name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		region, err := s.router.Region(name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, cityView{
			Name:     name,
			Vertices: eng.Graph().NumVertices(),
			Vehicles: eng.NumVehicles(),
			MinX:     region.Min.X, MinY: region.Min.Y,
			MaxX: region.Max.X, MaxY: region.Max.Y,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *MultiServer) handleRequest(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var body struct {
			// City + city-local vertices…
			City string `json:"city,omitempty"`
			S    *int32 `json:"s,omitempty"`
			D    *int32 `json:"d,omitempty"`
			// …or planar coordinates, routed by origin.
			OX *float64 `json:"ox,omitempty"`
			OY *float64 `json:"oy,omitempty"`
			DX *float64 `json:"dx,omitempty"`
			DY *float64 `json:"dy,omitempty"`

			Riders      int      `json:"riders"`
			WaitSeconds float64  `json:"wait_seconds,omitempty"`
			Sigma       *float64 `json:"sigma,omitempty"`
		}
		if err := decode(r, &body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		cons := core.DefaultConstraints()
		cons.WaitSeconds = body.WaitSeconds
		if body.Sigma != nil {
			cons.Sigma = *body.Sigma
		}
		var rec *multicity.Record
		var err error
		switch {
		case body.City != "" && body.S != nil && body.D != nil:
			rec, err = s.router.SubmitIn(body.City, roadnet.VertexID(*body.S), roadnet.VertexID(*body.D), body.Riders, cons)
		case body.OX != nil && body.OY != nil && body.DX != nil && body.DY != nil:
			rec, err = s.router.SubmitWithConstraints(
				geo.Point{X: *body.OX, Y: *body.OY},
				geo.Point{X: *body.DX, Y: *body.DY},
				body.Riders, cons)
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("give either city+s+d or ox/oy/dx/dy"))
			return
		}
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		rv, err := s.recordView(rec)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, rv)
	case http.MethodGet:
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad id"))
			return
		}
		rec, err := s.router.Request(core.RequestID(id))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		rv, err := s.recordView(rec)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, rv)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

// handleRelay answers GET /api/relay?id=-3 with one relay trip's
// two-leg status. The id is the (negative) global request id the
// request endpoint returned; a positive value is accepted as shorthand
// for its negation.
func (s *MultiServer) handleRelay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad id"))
		return
	}
	if id > 0 {
		id = -id
	}
	tv, err := s.router.RelayTrip(core.RequestID(id))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, relayTripViewFor(core.RequestID(id), tv))
}

func (s *MultiServer) handleChoose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var body struct {
		ID     int64 `json:"id"`
		Option int   `json:"option"`
	}
	if err := decode(r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.router.Choose(core.RequestID(body.ID), body.Option); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "assigned"})
}

func (s *MultiServer) handleDecline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var body struct {
		ID int64 `json:"id"`
	}
	if err := decode(r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.router.Decline(core.RequestID(body.ID)); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "declined"})
}

func (s *MultiServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	st := s.router.Stats()
	out := map[string]any{
		"total":  st.Total,
		"cities": st.Cities,
	}
	if st.RelayEnabled {
		out["relay"] = st.Relay
	}
	writeJSON(w, http.StatusOK, out)
}

// cityQuery resolves the mandatory ?city= parameter.
func (s *MultiServer) cityQuery(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.URL.Query().Get("city")
	if name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing city parameter"))
		return "", false
	}
	if _, err := s.router.Engine(name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return "", false
	}
	return name, true
}

func (s *MultiServer) handleTaxi(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	name, ok := s.cityQuery(w, r)
	if !ok {
		return
	}
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad id"))
		return
	}
	eng, _ := s.router.Engine(name)
	out, err := taxiViewFor(eng, fleet.VehicleID(id))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		City string `json:"city"`
		taxiView
	}{City: name, taxiView: out})
}

func (s *MultiServer) handleParams(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		name, ok := s.cityQuery(w, r)
		if !ok {
			return
		}
		eng, _ := s.router.Engine(name)
		cfg := eng.Config()
		writeJSON(w, http.StatusOK, struct {
			City string `json:"city"`
			paramsView
		}{City: name, paramsView: paramsView{
			Algorithm:      eng.Algorithm().String(),
			Capacity:       cfg.Capacity,
			NumTaxis:       eng.NumVehicles(),
			MaxWaitSeconds: cfg.MaxWaitSeconds,
			Sigma:          cfg.Sigma,
			SpeedKmh:       cfg.SpeedKmh,
			MatchWorkers:   cfg.MatchWorkers,
		}})
	case http.MethodPost:
		var body struct {
			City      string `json:"city"`
			Algorithm string `json:"algorithm"`
		}
		if err := decode(r, &body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		eng, err := s.router.Engine(body.City)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		algo, err := core.ParseAlgorithm(body.Algorithm)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		if err := eng.SetAlgorithm(algo); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"city": body.City, "algorithm": algo.String()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

func (s *MultiServer) handleVehicles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	name, ok := s.cityQuery(w, r)
	if !ok {
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		var err error
		limit, err = strconv.Atoi(q)
		if err != nil || limit < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit"))
			return
		}
	}
	views, err := s.router.VehicleViews(name, limit)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"city": name, "vehicles": views})
}

func (s *MultiServer) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	name, ok := s.cityQuery(w, r)
	if !ok {
		return
	}
	eng, _ := s.router.Engine(name)
	writeMapFor(w, r, eng)
}

// cityEventView tags a movement event with its city.
type cityEventView struct {
	City    string  `json:"city"`
	Kind    string  `json:"kind"`
	Vehicle int32   `json:"vehicle"`
	Request int64   `json:"request"`
	Odo     float64 `json:"odo"`
}

func (s *MultiServer) handleTick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var body struct {
		Seconds float64 `json:"seconds"`
	}
	if err := decode(r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	perCity, err := s.router.Tick(body.Seconds)
	if err != nil {
		writeErr(w, tickStatus(err), err)
		return
	}
	out := make([]cityEventView, 0, 8) // non-nil: an empty tick serialises as [], like the single-city handler
	for _, ce := range perCity {
		for _, e := range ce.Events {
			out = append(out, cityEventView{
				City: ce.City, Kind: e.Kind.String(),
				Vehicle: e.Vehicle, Request: int64(e.Request), Odo: e.Odo,
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"clock":  s.router.Stats().Total.Clock,
		"events": out,
	})
}
