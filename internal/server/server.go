// Package server exposes a PTRider backend over HTTP as one
// resource-oriented, versioned JSON API. A single handler set serves
// every backend that implements core.Service — a single-city
// core.Engine or a multi-city (optionally relay-enabled)
// multicity.Router — so single-city, multi-city and cross-city relay
// traffic all speak the same surface.
//
// Versioned API (v1):
//
//	POST /v1/requests                submit one request — {"s":12,"d":17,"riders":2},
//	                                 {"city":"east","s":12,"d":17,...} or
//	                                 {"ox":..,"oy":..,"dx":..,"dy":..,...} — or a
//	                                 batch: {"requests":[{...},{...}]}.
//	                                 An Idempotency-Key header makes single-request
//	                                 submission retry-safe: a repeated key answers
//	                                 with the original record (batches are exempt)
//	GET  /v1/requests                request-ledger listing
//	                                 (?city=east&status=assigned&limit=10&offset=20)
//	GET  /v1/requests/{id}           request record (options, status, relay section)
//	POST /v1/requests/{id}/choice    {"option":0} commit an option
//	POST /v1/requests/{id}/decline   take none of the options
//	GET  /v1/vehicles                fleet summaries   (?city=east&limit=10)
//	GET  /v1/vehicles/{id}           one vehicle's schedules (?city=east)
//	GET  /v1/cities                  city names, regions, fleet sizes
//	GET  /v1/relay/{id}              one relay trip's two-leg itinerary
//	POST /v1/ticks                   {"seconds":5} advance simulated time
//	GET  /v1/stats                   per-city panels + totals (+ relay panel)
//	GET  /v1/params · POST /v1/params  settings (?city= / {"city":...,"algorithm":...})
//	GET  /v1/map                     ASCII fleet map (?city=&width=&height=&taxi=)
//	GET  /v1/events                  SSE stream of tick pickups/dropoffs
//	GET  /v1/healthz                 liveness (also the legacy /healthz)
//	GET  /v1/readyz                  readiness (503 when the backend cannot take traffic)
//	GET  /metrics                    Prometheus text exposition (disable via Options)
//
// Every response carries an X-Request-ID header — echoed from the
// request when the client sent one, minted otherwise — and requests
// slower than Options.SlowRequest log one structured line with the id
// and the backend's per-stage timing breakdown (see middleware.go).
//
// Mutating endpoints accept POST only and answer anything else with
// 405 plus an Allow header. Every error is a structured envelope
//
//	{"error":{"code":"cross_city","message":"...","origin":"east","dest":"west"}}
//
// with typed codes mapped from the core error taxonomy:
// invalid_argument → 400, not_found/unknown_city → 404,
// method_not_allowed → 405, already_chosen → 409 (double-Choose),
// cross_city/no_city/unprocessable → 422, internal → 500.
//
// The demo-era routes (/api/request, /api/choose, /api/decline,
// /api/stats, /api/taxi, /api/params, /api/tick, /api/vehicles,
// /api/map, /api/cities, /api/relay) remain as thin aliases over the
// same handlers, preserving their historical response shapes (bare
// vehicle arrays, flat single-city stats, 422 for choose/decline of
// unknown ids) so existing clients keep working.
//
// Handlers run on net/http's per-connection goroutines and call the
// backend directly: core.Service implementations are internally
// parallel, so concurrent requests do not serialise behind a global
// lock — request throughput scales with cores.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/multicity"
	"ptrider/internal/render"
	"ptrider/internal/roadnet"
	"ptrider/internal/telemetry"
)

// Server wires a core.Service to an http.Handler.
type Server struct {
	svc  core.Service
	mux  *http.ServeMux
	hub  *eventHub
	opts Options

	// reg is the server-owned telemetry registry (HTTP route metrics,
	// SSE stream health); nil when Options.DisableMetrics is set.
	reg *telemetry.Registry
	// idBase + reqSeq mint X-Request-ID values for requests arriving
	// without one.
	idBase string
	reqSeq atomic.Uint64
}

// NewService returns a Server for any core.Service backend with the
// default observability options (metrics on, slow-request logging
// off).
func NewService(svc core.Service) *Server {
	return NewServiceWithOptions(svc, Options{})
}

// NewServiceWithOptions returns a Server with an explicit
// observability configuration.
func NewServiceWithOptions(svc core.Service, opts Options) *Server {
	s := &Server{
		svc: svc, mux: http.NewServeMux(), hub: newEventHub(), opts: opts,
		idBase: fmt.Sprintf("req-%08x", uint32(time.Now().UnixNano())),
	}
	if !opts.DisableMetrics {
		s.reg = telemetry.NewRegistry()
		s.reg.CounterFunc("ptrider_sse_dropped_total",
			"SSE events dropped because a subscriber's buffer was full.",
			func() float64 { return float64(s.hub.droppedCount()) })
		s.reg.GaugeFunc("ptrider_sse_subscribers",
			"Active /v1/events subscribers.",
			func() float64 { return float64(s.hub.subscriberCount()) })
	}

	// The /v1 resource surface.
	s.mux.HandleFunc("/v1/requests", s.handleRequests)
	s.mux.HandleFunc("/v1/requests/{id}", s.handleRequestByID)
	s.mux.HandleFunc("/v1/requests/{id}/choice", s.handleChoice)
	s.mux.HandleFunc("/v1/requests/{id}/decline", s.handleDeclineByID)
	s.mux.HandleFunc("/v1/vehicles", s.handleVehiclesV1)
	s.mux.HandleFunc("/v1/vehicles/{id}", s.handleVehicleByID)
	s.mux.HandleFunc("/v1/cities", s.handleCities)
	s.mux.HandleFunc("/v1/relay", s.handleRelayQuery)
	s.mux.HandleFunc("/v1/relay/{id}", s.handleRelayByID)
	s.mux.HandleFunc("/v1/ticks", s.handleTicks)
	s.mux.HandleFunc("/v1/stats", s.handleStatsV1)
	s.mux.HandleFunc("/v1/params", s.handleParams)
	s.mux.HandleFunc("/v1/surge", s.handleSurgeV1)
	s.mux.HandleFunc("/v1/map", s.handleMap)
	s.mux.HandleFunc("/v1/events", s.handleEvents)

	// Legacy demo aliases over the same handlers.
	s.mux.HandleFunc("/api/request", s.handleLegacyRequest)
	s.mux.HandleFunc("/api/choose", s.handleLegacyChoose)
	s.mux.HandleFunc("/api/decline", s.handleLegacyDecline)
	s.mux.HandleFunc("/api/stats", s.handleLegacyStats)
	s.mux.HandleFunc("/api/taxi", s.handleLegacyTaxi)
	s.mux.HandleFunc("/api/params", s.handleParams)
	s.mux.HandleFunc("/api/tick", s.handleTicks)
	s.mux.HandleFunc("/api/vehicles", s.handleLegacyVehicles)
	s.mux.HandleFunc("/api/map", s.handleMap)
	s.mux.HandleFunc("/api/cities", s.handleCities)
	s.mux.HandleFunc("/api/relay", s.handleRelayQuery)

	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if s.reg != nil {
		s.mux.HandleFunc("/metrics", s.handleMetrics)
	}
	return s
}

// New returns a Server over a single-city engine.
func New(eng *core.Engine) *Server { return NewService(eng) }

// NewMulti returns a Server over a multi-city router.
func NewMulti(router *multicity.Router) *Server { return NewService(router) }

// Handler returns the HTTP handler: the route mux behind the
// observability middleware (request correlation, route metrics,
// slow-request logging).
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// handleHealthz serves GET /v1/healthz (and the legacy /healthz):
// liveness — the process answers, nothing about the backend.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readier is implemented by backends that can report readiness
// (core.Engine answers for its durability layer; multicity.Router
// fans the check across cities).
type readier interface {
	Ready() error
}

// cityReadier is implemented by backends that can break readiness down
// per city — the gateway reports which shards are unreachable or
// unready, the router and engine their cities' durability layers.
type cityReadier interface {
	ReadyCities() []core.CityReadiness
}

// readyzBody is the JSON body of /v1/readyz: overall status plus the
// per-city detail when the backend can provide it.
type readyzBody struct {
	Status string               `json:"status"`
	Cities []core.CityReadiness `json:"cities,omitempty"`
}

// handleReadyz serves GET /v1/readyz: readiness — 503 with a JSON body
// naming each unready city (an unreachable shard, a wedged WAL) when
// the backend cannot take traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	if cr, ok := s.svc.(cityReadier); ok {
		body := readyzBody{Status: "ready", Cities: cr.ReadyCities()}
		status := http.StatusOK
		for _, c := range body.Cities {
			if !c.Ready {
				body.Status = "unready"
				status = http.StatusServiceUnavailable
				break
			}
		}
		writeJSON(w, status, body)
		return
	}
	if rd, ok := s.svc.(readier); ok {
		if err := rd.Ready(); err != nil {
			writeCode(w, http.StatusServiceUnavailable, "unready", err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, readyzBody{Status: "ready"})
}

// Tick advances the backend's simulated time and feeds the movement
// events to the /v1/events stream — the entry point for realtime
// drivers (cmd/ptrider-server -realtime), equivalent to POST /v1/ticks.
func (s *Server) Tick(seconds float64) error {
	_, _, err := s.tick(seconds)
	return err
}

func (s *Server) tick(seconds float64) (clock float64, events []core.ServiceEvent, err error) {
	events, err = s.svc.Advance(seconds)
	if err != nil {
		return 0, nil, err
	}
	s.publishEvents(events)
	return s.svc.Clock(), events, nil
}

// ---------------------------------------------------------------------------
// Envelope and helpers

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// etagOf derives a strong ETag from a rendered response body.
func etagOf(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:8]) + `"`
}

// ifNoneMatchHas reports whether an If-None-Match header names tag
// (weak comparison — a W/ prefix on a listed tag still matches).
func ifNoneMatchHas(header, tag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimPrefix(strings.TrimSpace(part), "W/") == tag {
			return true
		}
	}
	return false
}

// writeCached emits a body with a content-derived ETag and answers
// 304 Not Modified when the request's If-None-Match already names it —
// the revalidation handshake the cluster shard client's TTL cache (and
// any standard HTTP cache) runs against the hot per-city GETs.
func writeCached(w http.ResponseWriter, r *http.Request, contentType string, body []byte) {
	tag := etagOf(body)
	w.Header().Set("ETag", tag)
	if m := r.Header.Get("If-None-Match"); m != "" && ifNoneMatchHas(m, tag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(body)
}

// writeJSONCached renders v once and serves it through writeCached.
func writeJSONCached(w http.ResponseWriter, r *http.Request, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeCode(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeCached(w, r, "application/json", append(body, '\n'))
}

// errorPayload is the structured error envelope's inner object.
type errorPayload struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Origin and Dest carry the city pair of a cross_city rejection.
	Origin string `json:"origin,omitempty"`
	Dest   string `json:"dest,omitempty"`
}

func writeEnvelope(w http.ResponseWriter, status int, p errorPayload) {
	writeJSON(w, status, map[string]errorPayload{"error": p})
}

// writeCode emits an envelope with an explicit status and code.
func writeCode(w http.ResponseWriter, status int, code, message string) {
	writeEnvelope(w, status, errorPayload{Code: code, Message: message})
}

// classify maps a backend error onto (status, payload) via the core
// error taxonomy. Unmatched errors land on the fallback status with
// code "unprocessable" (422) or "internal" (500).
func classify(err error, fallback int) (int, errorPayload) {
	p := errorPayload{Message: err.Error()}
	var cce *core.CrossCityError
	switch {
	case errors.As(err, &cce):
		p.Code, p.Origin, p.Dest = "cross_city", cce.Origin, cce.Dest
		return http.StatusUnprocessableEntity, p
	case errors.Is(err, core.ErrCrossCity):
		p.Code = "cross_city"
		return http.StatusUnprocessableEntity, p
	case errors.Is(err, core.ErrAlreadyChosen):
		p.Code = "already_chosen"
		return http.StatusConflict, p
	case errors.Is(err, core.ErrUnknownCity):
		p.Code = "unknown_city"
		return http.StatusNotFound, p
	case errors.Is(err, core.ErrNotFound):
		p.Code = "not_found"
		return http.StatusNotFound, p
	case errors.Is(err, core.ErrNoCity):
		p.Code = "no_city"
		return http.StatusUnprocessableEntity, p
	case errors.Is(err, core.ErrInvalidArgument):
		p.Code = "invalid_argument"
		return http.StatusBadRequest, p
	case errors.Is(err, core.ErrUnavailable):
		p.Code = "unavailable"
		return http.StatusServiceUnavailable, p
	}
	if fallback == http.StatusInternalServerError {
		p.Code = "internal"
	} else {
		p.Code = "unprocessable"
	}
	return fallback, p
}

// writeErr classifies err with a 422 fallback — the business-rule
// default of the request surface.
func writeErr(w http.ResponseWriter, err error) {
	status, p := classify(err, http.StatusUnprocessableEntity)
	writeEnvelope(w, status, p)
}

// allow enforces strict method checking: a mismatch answers 405 with
// the Allow header naming the supported methods.
func allow(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	writeCode(w, http.StatusMethodNotAllowed, "method_not_allowed",
		fmt.Sprintf("use %s", strings.Join(methods, " or ")))
	return false
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func decodeBytes(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// pathID parses the {id} path segment of a request resource.
func pathID(r *http.Request) (core.RequestID, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad id")
	}
	return core.RequestID(id), nil
}

// ---------------------------------------------------------------------------
// Views

// optionView is one row of the result display interface (Fig. 4b).
type optionView struct {
	Index         int     `json:"index"`
	Vehicle       int32   `json:"vehicle"`
	PickupSeconds float64 `json:"pickup_seconds"`
	PickupMeters  float64 `json:"pickup_meters"`
	Price         float64 `json:"price"`
}

func optionViews(rec *core.ServiceRecord) []optionView {
	out := make([]optionView, len(rec.Options))
	for i, o := range rec.Options {
		out[i] = optionView{
			Index:         i,
			Vehicle:       o.Vehicle,
			PickupSeconds: rec.PickupSecondsOf(o),
			PickupMeters:  o.PickupDist,
			Price:         o.Price,
		}
	}
	return out
}

// requestView is the transport view of a request record. A relay
// record's plain option rows carry the composed fare as price and the
// composed door-to-destination ETA as pickup time — the relay section
// holds the per-leg truth.
type requestView struct {
	ID      core.RequestID `json:"id"`
	City    string         `json:"city"`
	Status  string         `json:"status"`
	S       int32          `json:"s"`
	D       int32          `json:"d"`
	Riders  int            `json:"riders"`
	Options []optionView   `json:"options"`
	Vehicle int32          `json:"vehicle,omitempty"`
	Price   float64        `json:"price,omitempty"`
	Shared  bool           `json:"shared,omitempty"`
	Relay   *relayTripView `json:"relay,omitempty"`
}

func recordView(rec *core.ServiceRecord) requestView {
	rv := requestView{
		ID: rec.ID, City: rec.City, Status: rec.Status.String(),
		S: rec.S, D: rec.D, Riders: rec.Riders,
		Options: optionViews(rec),
		Shared:  rec.Shared,
	}
	if rec.Status != core.StatusQuoted && rec.Status != core.StatusDeclined {
		rv.Vehicle = rec.Vehicle
		rv.Price = rec.Price
	}
	if rec.Relay != nil {
		rv.Relay = relayTripViewOf(rec.Relay)
	}
	return rv
}

// relayGatewayView is one hand-off pair of a relay trip.
type relayGatewayView struct {
	From      int32   `json:"from"`
	To        int32   `json:"to"`
	GapMeters float64 `json:"gap_meters"`
}

// relayOptionView is one row of the joint skyline with its per-leg
// breakdown (Fig. 4b lifted to two legs).
type relayOptionView struct {
	Index         int     `json:"index"`
	Gateway       int     `json:"gateway"`
	Fare          float64 `json:"fare"`
	Leg1Price     float64 `json:"leg1_price"`
	Leg2Price     float64 `json:"leg2_price"`
	Leg1Vehicle   int32   `json:"leg1_vehicle"`
	Leg2Vehicle   int32   `json:"leg2_vehicle"`
	PickupSeconds float64 `json:"pickup_seconds"`
	ETASeconds    float64 `json:"eta_seconds"`
}

// relayTripView is a relay trip's status: the state machine stage, the
// gateways, the joint skyline and — once committed — the two leg
// record ids (city-local to origin and destination).
type relayTripView struct {
	RequestID             int64              `json:"request_id"`
	Origin                string             `json:"origin"`
	Dest                  string             `json:"dest"`
	State                 string             `json:"state"`
	TransferBufferSeconds float64            `json:"transfer_buffer_seconds"`
	Gateways              []relayGatewayView `json:"gateways"`
	Options               []relayOptionView  `json:"options"`
	Chosen                int                `json:"chosen"`
	Leg1                  int64              `json:"leg1,omitempty"`
	Leg2                  int64              `json:"leg2,omitempty"`
}

func relayTripViewOf(rv *core.RelayView) *relayTripView {
	out := &relayTripView{
		RequestID:             int64(rv.RequestID),
		Origin:                rv.Origin,
		Dest:                  rv.Dest,
		State:                 rv.State,
		TransferBufferSeconds: rv.TransferBufferSeconds,
		Gateways:              make([]relayGatewayView, len(rv.Gateways)),
		Options:               make([]relayOptionView, len(rv.Options)),
		Chosen:                rv.Chosen,
		Leg1:                  int64(rv.Leg1),
		Leg2:                  int64(rv.Leg2),
	}
	for i, g := range rv.Gateways {
		out.Gateways[i] = relayGatewayView{From: g.From, To: g.To, GapMeters: g.GapMeters}
	}
	for i, o := range rv.Options {
		out.Options[i] = relayOptionView{
			Index:         i,
			Gateway:       o.Gateway,
			Fare:          o.Fare,
			Leg1Price:     o.Leg1.Price,
			Leg2Price:     o.Leg2.Price,
			Leg1Vehicle:   o.Leg1.Vehicle,
			Leg2Vehicle:   o.Leg2.Vehicle,
			PickupSeconds: o.PickupSeconds,
			ETASeconds:    o.ETASeconds,
		}
	}
	return out
}

type stopView struct {
	Vertex  int32  `json:"vertex"`
	Kind    string `json:"kind"`
	Request int64  `json:"request"`
}

// taxiView is the schedule view of one vehicle (the website's red
// lines).
type taxiView struct {
	City     string       `json:"city"`
	ID       int32        `json:"id"`
	Location int32        `json:"location"`
	Branches [][]stopView `json:"branches"`
}

func taxiViewOf(it *core.VehicleItinerary) taxiView {
	out := taxiView{City: it.City, ID: it.Vehicle, Location: it.Location}
	for _, b := range it.Branches {
		row := make([]stopView, len(b))
		for i, p := range b {
			row[i] = stopView{Vertex: p.Loc, Kind: p.Kind.String(), Request: int64(p.Req)}
		}
		out.Branches = append(out.Branches, row)
	}
	return out
}

type paramsView struct {
	City           string  `json:"city"`
	Algorithm      string  `json:"algorithm"`
	Capacity       int     `json:"capacity"`
	NumTaxis       int     `json:"num_taxis"`
	MaxWaitSeconds float64 `json:"max_wait_seconds"`
	Sigma          float64 `json:"sigma"`
	SpeedKmh       float64 `json:"speed_kmh"`
	MatchWorkers   int     `json:"match_workers"`
	TickWorkers    int     `json:"tick_workers"`

	SurgeEnabled       bool    `json:"surge_enabled"`
	SurgeEpochSeconds  float64 `json:"surge_epoch_seconds,omitempty"`
	SurgeEpoch         uint64  `json:"surge_epoch,omitempty"`
	SurgeActiveCells   int     `json:"surge_active_cells,omitempty"`
	SurgeMaxMultiplier float64 `json:"surge_max_multiplier,omitempty"`
}

func paramsViewOf(p core.ServiceParams) paramsView {
	return paramsView{
		City:           p.City,
		Algorithm:      p.Algorithm.String(),
		Capacity:       p.Capacity,
		NumTaxis:       p.NumTaxis,
		MaxWaitSeconds: p.MaxWaitSeconds,
		Sigma:          p.Sigma,
		SpeedKmh:       p.SpeedKmh,
		MatchWorkers:   p.MatchWorkers,
		TickWorkers:    p.TickWorkers,

		SurgeEnabled:       p.SurgeEnabled,
		SurgeEpochSeconds:  p.SurgeEpochSeconds,
		SurgeEpoch:         p.SurgeEpoch,
		SurgeActiveCells:   p.SurgeActiveCells,
		SurgeMaxMultiplier: p.SurgeMaxMultiplier,
	}
}

type surgeCellView struct {
	Cell       int     `json:"cell"`
	Multiplier float64 `json:"multiplier"`
	Ratio      float64 `json:"ratio"`
}

type surgeView struct {
	City         string          `json:"city"`
	Enabled      bool            `json:"enabled"`
	Epoch        uint64          `json:"epoch"`
	EpochSeconds float64         `json:"epoch_seconds,omitempty"`
	Cols         int             `json:"cols"`
	Rows         int             `json:"rows"`
	Cells        []surgeCellView `json:"cells"`
}

func surgeViewOf(v *core.SurgeView) surgeView {
	out := surgeView{
		City: v.City, Enabled: v.Enabled, Epoch: v.Epoch,
		EpochSeconds: v.EpochSeconds, Cols: v.Cols, Rows: v.Rows,
		Cells: make([]surgeCellView, 0, len(v.Cells)),
	}
	for _, c := range v.Cells {
		out.Cells = append(out.Cells, surgeCellView{Cell: c.Cell, Multiplier: c.Multiplier, Ratio: c.Ratio})
	}
	return out
}

type cityView struct {
	Name     string  `json:"name"`
	Vertices int     `json:"vertices"`
	Vehicles int     `json:"vehicles"`
	MinX     float64 `json:"min_x"`
	MinY     float64 `json:"min_y"`
	MaxX     float64 `json:"max_x"`
	MaxY     float64 `json:"max_y"`
}

// eventView tags a movement event with its city.
type eventView struct {
	City    string  `json:"city"`
	Kind    string  `json:"kind"`
	Vehicle int32   `json:"vehicle"`
	Request int64   `json:"request"`
	Odo     float64 `json:"odo"`
}

func eventViewsOf(events []core.ServiceEvent) []eventView {
	out := make([]eventView, 0, len(events)) // non-nil: an empty tick serialises as []
	for _, e := range events {
		out = append(out, eventView{
			City: e.City, Kind: e.Kind.String(),
			Vehicle: e.Vehicle, Request: int64(e.Request), Odo: e.Odo,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Request submission

// requestBody is the wire form of one request submission, shared by
// /v1/requests and the legacy /api/request: either [city +] s/d
// vertices or ox/oy → dx/dy coordinates, plus the optional per-rider
// constraint overrides.
type requestBody struct {
	City string `json:"city,omitempty"`
	S    *int32 `json:"s,omitempty"`
	D    *int32 `json:"d,omitempty"`

	OX *float64 `json:"ox,omitempty"`
	OY *float64 `json:"oy,omitempty"`
	DX *float64 `json:"dx,omitempty"`
	DY *float64 `json:"dy,omitempty"`

	Riders           int      `json:"riders"`
	WaitSeconds      float64  `json:"wait_seconds,omitempty"`
	Sigma            *float64 `json:"sigma,omitempty"`
	MaxPickupSeconds float64  `json:"max_pickup_seconds,omitempty"`
}

// spec converts the wire form into the Service addressing.
func (b *requestBody) spec() (core.SubmitSpec, error) {
	cons := core.DefaultConstraints()
	cons.WaitSeconds = b.WaitSeconds
	if b.Sigma != nil {
		cons.Sigma = *b.Sigma
	}
	cons.MaxPickupSeconds = b.MaxPickupSeconds
	spec := core.SubmitSpec{City: b.City, Riders: b.Riders, Constraints: cons}
	switch {
	case b.OX != nil && b.OY != nil && b.DX != nil && b.DY != nil:
		spec.ByCoords = true
		spec.Origin.X, spec.Origin.Y = *b.OX, *b.OY
		spec.Dest.X, spec.Dest.Y = *b.DX, *b.DY
	case b.S != nil && b.D != nil:
		spec.S, spec.D = roadnet.VertexID(*b.S), roadnet.VertexID(*b.D)
	default:
		return spec, fmt.Errorf("give either [city+]s+d or ox/oy/dx/dy")
	}
	return spec, nil
}

// submitOne submits a single request. The Idempotency-Key request
// header (may be empty) makes retries of the same submission safe:
// the backend answers a repeat of an already-registered key with the
// original record instead of quoting a second request. The request's
// telemetry span rides along so the backend's stage timings land on
// the slow-request log.
func (s *Server) submitOne(w http.ResponseWriter, r *http.Request, body *requestBody) {
	spec, err := body.spec()
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	spec.IdemKey = r.Header.Get("Idempotency-Key")
	spec.Span = spanFrom(r.Context())
	rec, err := s.svc.SubmitRequest(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, recordView(rec))
}

// handleRequests serves /v1/requests. POST submits one request, or a
// batch under a "requests" key — batch answers carry one view per item
// in order (null for failed items) plus the first error's envelope.
// GET lists the ledger with ?city=, ?status=, ?limit= and ?offset=.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		s.handleRequestList(w, r)
		return
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	var probe struct {
		Requests []json.RawMessage `json:"requests"`
	}
	if json.Unmarshal(raw, &probe) == nil && probe.Requests != nil {
		var batch struct {
			Requests []requestBody `json:"requests"`
		}
		if err := decodeBytes(raw, &batch); err != nil {
			writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
			return
		}
		s.submitBatch(w, batch.Requests)
		return
	}
	var body requestBody
	if err := decodeBytes(raw, &body); err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	s.submitOne(w, r, &body)
}

// handleRequestList serves GET /v1/requests: the request ledger, id
// ascending, with the vehicles-style pagination (the backend takes a
// head limit, so the page is cut handler-side) plus ?status= lifecycle
// and ?city= filters. On multi-city backends an empty city merges
// every city's ledger; relay trips are not listed (GET /v1/relay/{id}
// is their surface).
func (s *Server) handleRequestList(w http.ResponseWriter, r *http.Request) {
	limit, err := limitQuery(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	offset, err := offsetQuery(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	var filter core.RequestFilter
	if q := r.URL.Query().Get("status"); q != "" {
		st, err := core.ParseRequestStatus(q)
		if err != nil {
			writeErr(w, err)
			return
		}
		filter = core.RequestFilter{Status: st, HasStatus: true}
	}
	fetch := 0
	if limit > 0 {
		fetch = offset + limit
	}
	city := r.URL.Query().Get("city")
	recs, err := s.svc.Requests(city, filter, fetch)
	if err != nil {
		writeErr(w, err)
		return
	}
	if offset > len(recs) {
		offset = len(recs)
	}
	recs = recs[offset:]
	views := make([]requestView, len(recs)) // non-nil: empty pages serialise as []
	for i, rec := range recs {
		views[i] = recordView(rec)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"city": city, "offset": offset, "count": len(views), "requests": views,
	})
}

func (s *Server) submitBatch(w http.ResponseWriter, bodies []requestBody) {
	specs := make([]core.SubmitSpec, 0, len(bodies))
	for i := range bodies {
		spec, err := bodies[i].spec()
		if err != nil {
			writeCode(w, http.StatusBadRequest, "invalid_argument",
				fmt.Sprintf("batch item %d: %v", i, err))
			return
		}
		specs = append(specs, spec)
	}
	recs, err := s.svc.SubmitRequestBatch(specs)
	views := make([]*requestView, len(recs))
	for i, rec := range recs {
		if rec != nil {
			rv := recordView(rec)
			views[i] = &rv
		}
	}
	out := map[string]any{"requests": views}
	if err != nil {
		_, p := classify(err, http.StatusUnprocessableEntity)
		out["error"] = p
	}
	writeJSON(w, http.StatusOK, out)
}

// handleRequestByID serves GET /v1/requests/{id}.
func (s *Server) handleRequestByID(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	rec, err := s.svc.GetRequest(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, recordView(rec))
}

// handleChoice serves POST /v1/requests/{id}/choice.
func (s *Server) handleChoice(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	var body struct {
		Option int `json:"option"`
	}
	if err := decode(r, &body); err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	if err := s.svc.Choose(id, body.Option); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": "assigned"})
}

// handleDeclineByID serves POST /v1/requests/{id}/decline (no body).
func (s *Server) handleDeclineByID(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	if err := s.svc.Decline(id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": "declined"})
}

// ---------------------------------------------------------------------------
// Fleet, cities, stats, params, ticks

// limitQuery parses the optional ?limit= parameter.
func limitQuery(r *http.Request) (int, error) {
	q := r.URL.Query().Get("limit")
	if q == "" {
		return 0, nil
	}
	limit, err := strconv.Atoi(q)
	if err != nil || limit < 0 {
		return 0, fmt.Errorf("bad limit")
	}
	return limit, nil
}

// offsetQuery parses the optional ?offset= parameter.
func offsetQuery(r *http.Request) (int, error) {
	q := r.URL.Query().Get("offset")
	if q == "" {
		return 0, nil
	}
	off, err := strconv.Atoi(q)
	if err != nil || off < 0 {
		return 0, fmt.Errorf("bad offset")
	}
	return off, nil
}

// cityOfQuery normalises the ?city= parameter: empty means the
// backend's only city, which is resolved to its name for the views.
func (s *Server) cityOfQuery(r *http.Request) string {
	city := r.URL.Query().Get("city")
	if city == "" {
		if cities := s.svc.Cities(); len(cities) == 1 {
			return cities[0].Name
		}
	}
	return city
}

// handleVehiclesV1 serves GET /v1/vehicles with ?city=, ?limit= and
// ?offset= pagination. The backend's Vehicles verb only takes a head
// limit, so the page is cut handler-side: fetch offset+limit views and
// slice off the skipped prefix.
func (s *Server) handleVehiclesV1(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	limit, err := limitQuery(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	offset, err := offsetQuery(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	fetch := 0
	if limit > 0 {
		fetch = offset + limit
	}
	city := s.cityOfQuery(r)
	views, err := s.svc.Vehicles(city, fetch)
	if err != nil {
		writeErr(w, err)
		return
	}
	if offset > len(views) {
		offset = len(views)
	}
	views = views[offset:]
	writeJSON(w, http.StatusOK, map[string]any{
		"city": city, "offset": offset, "count": len(views), "vehicles": views,
	})
}

// handleVehicleByID serves GET /v1/vehicles/{id}: the vehicle's
// location and kinetic-tree schedule branches.
func (s *Server) handleVehicleByID(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", "bad id")
		return
	}
	it, err := s.svc.VehicleItinerary(s.cityOfQuery(r), fleet.VehicleID(id))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, taxiViewOf(it))
}

// handleCities serves GET /v1/cities and /api/cities.
func (s *Server) handleCities(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	cities := s.svc.Cities()
	out := make([]cityView, len(cities))
	for i, c := range cities {
		out[i] = cityView{
			Name:     c.Name,
			Vertices: c.Vertices,
			Vehicles: c.Vehicles,
			MinX:     c.Region.Min.X, MinY: c.Region.Min.Y,
			MaxX: c.Region.Max.X, MaxY: c.Region.Max.Y,
		}
	}
	writeJSONCached(w, r, out)
}

// relayResponse answers a relay itinerary lookup; positive ids are
// accepted as shorthand for their negation (the router's relay
// namespace).
func (s *Server) relayResponse(w http.ResponseWriter, id core.RequestID) {
	if id > 0 {
		id = -id
	}
	rv, err := s.svc.RelayItinerary(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, relayTripViewOf(rv))
}

// handleRelayByID serves GET /v1/relay/{id}.
func (s *Server) handleRelayByID(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	s.relayResponse(w, id)
}

// handleRelayQuery serves GET /v1/relay?id= and /api/relay?id=.
func (s *Server) handleRelayQuery(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", "bad id")
		return
	}
	s.relayResponse(w, core.RequestID(id))
}

// handleTicks serves POST /v1/ticks and /api/tick: simulated time
// advances, movement events return (and feed the /v1/events stream).
func (s *Server) handleTicks(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	var body struct {
		Seconds float64 `json:"seconds"`
	}
	if err := decode(r, &body); err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	clock, events, err := s.tick(body.Seconds)
	if err != nil {
		// Invalid caller input (a negative duration, say) is the
		// caller's fault; anything else is an internal movement failure.
		status, p := classify(err, http.StatusInternalServerError)
		writeEnvelope(w, status, p)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"clock": clock, "events": eventViewsOf(events)})
}

// handleStatsV1 serves GET /v1/stats: per-city panels plus aggregate
// totals, the relay panel when enabled, and the server's own stream
// health (SSE subscriber count and drop-on-slow-subscriber total).
func (s *Server) handleStatsV1(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	out := statsPayload(s.svc.ServiceStats())
	out["server"] = map[string]any{
		"sse_subscribers": s.hub.subscriberCount(),
		"sse_dropped":     s.hub.droppedCount(),
	}
	writeJSON(w, http.StatusOK, out)
}

func statsPayload(st core.ServiceStats) map[string]any {
	out := map[string]any{"total": st.Total, "cities": st.Cities}
	if st.RelayEnabled {
		out["relay"] = st.Relay
	}
	return out
}

// handleParams serves GET/POST /v1/params and /api/params.
func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		params, err := s.svc.Params(r.URL.Query().Get("city"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSONCached(w, r, paramsViewOf(params))
		return
	}
	var body struct {
		City      string `json:"city,omitempty"`
		Algorithm string `json:"algorithm"`
	}
	if err := decode(r, &body); err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	algo, err := core.ParseAlgorithm(body.Algorithm)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.svc.SetCityAlgorithm(body.City, algo); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"city": body.City, "algorithm": algo.String()})
}

// handleSurgeV1 serves GET /v1/surge: the city's surge epoch plus the
// per-cell multipliers currently above 1× (quiet cells are elided —
// the grid can be large and almost everywhere is at base fare).
func (s *Server) handleSurgeV1(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	v, err := s.svc.Surge(s.cityOfQuery(r))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, surgeViewOf(v))
}

// handleMap renders one city's fleet map as plain text (the website's
// map view, ASCII edition). Optional query parameters: city, width and
// height in characters (default 72×36) and taxi=<id> to overlay one
// vehicle's schedule stops.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	city := s.cityOfQuery(r)
	g, err := s.svc.CityGraph(city)
	if err != nil {
		writeErr(w, err)
		return
	}
	width, height := 72, 36
	if q := r.URL.Query().Get("width"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			width = v
		}
	}
	if q := r.URL.Query().Get("height"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			height = v
		}
	}
	m, err := render.NewMap(g, width, height)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	views, err := s.svc.Vehicles(city, 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	for _, v := range views {
		m.PlotVehicle(v.Location, v.Onboard > 0)
	}
	if q := r.URL.Query().Get("taxi"); q != "" {
		id, err := strconv.ParseInt(q, 10, 32)
		if err != nil {
			writeCode(w, http.StatusBadRequest, "invalid_argument", "bad taxi id")
			return
		}
		it, err := s.svc.VehicleItinerary(city, fleet.VehicleID(id))
		if err != nil {
			writeErr(w, err)
			return
		}
		var pickups, dropoffs []roadnet.VertexID
		for _, b := range it.Branches {
			for _, p := range b {
				if p.Kind.String() == "pickup" {
					pickups = append(pickups, p.Loc)
				} else {
					dropoffs = append(dropoffs, p.Loc)
				}
			}
		}
		m.PlotSchedule(it.Location, pickups, dropoffs)
	}
	var buf bytes.Buffer
	fmt.Fprintln(&buf, m.String())
	fmt.Fprintln(&buf, render.Legend())
	writeCached(w, r, "text/plain; charset=utf-8", buf.Bytes())
}

// ---------------------------------------------------------------------------
// Legacy aliases (historical shapes preserved)

// handleLegacyRequest serves the demo's POST/GET /api/request.
func (s *Server) handleLegacyRequest(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodPost {
		var body requestBody
		if err := decode(r, &body); err != nil {
			writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
			return
		}
		s.submitOne(w, r, &body)
		return
	}
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", "bad id")
		return
	}
	rec, err := s.svc.GetRequest(core.RequestID(id))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, recordView(rec))
}

// legacyLifecycleErr preserves the demo contract: /api/choose and
// /api/decline answered 422 for unknown request ids (the id arrives in
// the body, not the path, so "no such resource" was a business error
// there). Typed conflicts still surface as 409.
func legacyLifecycleErr(w http.ResponseWriter, err error) {
	status, p := classify(err, http.StatusUnprocessableEntity)
	if status == http.StatusNotFound {
		status, p.Code = http.StatusUnprocessableEntity, "unprocessable"
	}
	writeEnvelope(w, status, p)
}

func (s *Server) handleLegacyChoose(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	var body struct {
		ID     int64 `json:"id"`
		Option int   `json:"option"`
	}
	if err := decode(r, &body); err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	if err := s.svc.Choose(core.RequestID(body.ID), body.Option); err != nil {
		legacyLifecycleErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "assigned"})
}

func (s *Server) handleLegacyDecline(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	var body struct {
		ID int64 `json:"id"`
	}
	if err := decode(r, &body); err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	if err := s.svc.Decline(core.RequestID(body.ID)); err != nil {
		legacyLifecycleErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "declined"})
}

// handleLegacyStats serves GET /api/stats: the flat single-city panel
// for one-city backends (the demo's original shape), the per-city
// composite for multi-city ones.
func (s *Server) handleLegacyStats(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	st := s.svc.ServiceStats()
	if !st.Multi {
		writeJSON(w, http.StatusOK, st.Total)
		return
	}
	writeJSON(w, http.StatusOK, statsPayload(st))
}

// handleLegacyTaxi serves GET /api/taxi?id=3 (&city=east on multi-city
// backends).
func (s *Server) handleLegacyTaxi(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 32)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", "bad id")
		return
	}
	it, err := s.svc.VehicleItinerary(r.URL.Query().Get("city"), fleet.VehicleID(id))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, taxiViewOf(it))
}

// handleLegacyVehicles serves GET /api/vehicles: a bare vehicle array
// when no city is named (the single-city demo shape — multi-city
// backends reject the missing parameter), the city-wrapped object
// otherwise.
func (s *Server) handleLegacyVehicles(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	limit, err := limitQuery(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	city := r.URL.Query().Get("city")
	views, err := s.svc.Vehicles(city, limit)
	if err != nil {
		writeErr(w, err)
		return
	}
	if city == "" {
		writeJSON(w, http.StatusOK, views)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"city": city, "vehicles": views})
}
