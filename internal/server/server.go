// Package server exposes PTRider over HTTP with JSON bodies, mirroring
// the demo's two interfaces (paper §4):
//
// Smartphone interface (the rider's three-step protocol, §3.1):
//
//	POST /api/request  {"s":12,"d":17,"riders":2}
//	POST /api/choose   {"id":1,"option":0}
//	POST /api/decline  {"id":1}
//	GET  /api/request?id=1
//
// Website interface (administrator):
//
//	GET  /api/stats          statistics panel (response time, sharing rate, …)
//	GET  /api/taxi?id=3      a taxi's valid trip schedules (the red lines)
//	GET  /api/vehicles       fleet positions and occupancy (the map data)
//	GET  /api/map?taxi=3     the map view rendered as ASCII
//	GET  /api/params         current global settings
//	POST /api/params         {"algorithm":"dual-side"} switch matcher
//	POST /api/tick           {"seconds":5} advance simulated time
//	GET  /healthz
//
// The GUI itself is presentation and intentionally out of scope; every
// piece of information the paper's screenshots show is served here.
//
// Handlers run on net/http's per-connection goroutines and call the
// engine directly: the engine is internally parallel (immutable
// routing substrate, per-vehicle locks, a small coordination core), so
// concurrent requests no longer serialise behind an engine-wide lock —
// request throughput scales with cores.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/render"
	"ptrider/internal/roadnet"
)

// Server wires an Engine to an http.Handler.
type Server struct {
	eng *core.Engine
	mux *http.ServeMux
}

// New returns a Server for eng.
func New(eng *core.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/request", s.handleRequest)
	s.mux.HandleFunc("/api/choose", s.handleChoose)
	s.mux.HandleFunc("/api/decline", s.handleDecline)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/taxi", s.handleTaxi)
	s.mux.HandleFunc("/api/params", s.handleParams)
	s.mux.HandleFunc("/api/tick", s.handleTick)
	s.mux.HandleFunc("/api/vehicles", s.handleVehicles)
	s.mux.HandleFunc("/api/map", s.handleMap)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// optionView is one row of the result display interface (Fig. 4b).
type optionView struct {
	Index         int     `json:"index"`
	Vehicle       int32   `json:"vehicle"`
	PickupSeconds float64 `json:"pickup_seconds"`
	PickupMeters  float64 `json:"pickup_meters"`
	Price         float64 `json:"price"`
}

// optionViewsFor builds option rows against the quoting engine (the
// engine's speed converts pick-up distance to seconds). Shared by the
// single-engine and multi-city servers.
func optionViewsFor(eng *core.Engine, opts []core.Option) []optionView {
	out := make([]optionView, len(opts))
	for i, o := range opts {
		out[i] = optionView{
			Index:         i,
			Vehicle:       o.Vehicle,
			PickupSeconds: eng.PickupSeconds(o),
			PickupMeters:  o.PickupDist,
			Price:         o.Price,
		}
	}
	return out
}

func (s *Server) optionViews(opts []core.Option) []optionView {
	return optionViewsFor(s.eng, opts)
}

type requestView struct {
	ID      core.RequestID `json:"id"`
	Status  string         `json:"status"`
	S       int32          `json:"s"`
	D       int32          `json:"d"`
	Riders  int            `json:"riders"`
	Options []optionView   `json:"options"`
	Vehicle int32          `json:"vehicle,omitempty"`
	Price   float64        `json:"price,omitempty"`
	Shared  bool           `json:"shared,omitempty"`
}

// requestViewFor builds the record view against the owning engine.
// Shared by the single-engine and multi-city servers.
func requestViewFor(eng *core.Engine, rec *core.RequestRecord) requestView {
	rv := requestView{
		ID: rec.ID, Status: rec.Status.String(),
		S: rec.S, D: rec.D, Riders: rec.Riders,
		Options: optionViewsFor(eng, rec.Options),
		Shared:  rec.Shared,
	}
	if rec.Status != core.StatusQuoted && rec.Status != core.StatusDeclined {
		rv.Vehicle = rec.Vehicle
		rv.Price = rec.Price
	}
	return rv
}

func (s *Server) requestView(rec *core.RequestRecord) requestView {
	return requestViewFor(s.eng, rec)
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var body struct {
			S      int32 `json:"s"`
			D      int32 `json:"d"`
			Riders int   `json:"riders"`
			// Optional per-rider overrides of the global constraints.
			WaitSeconds float64  `json:"wait_seconds,omitempty"`
			Sigma       *float64 `json:"sigma,omitempty"`
		}
		if err := decode(r, &body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		cons := core.DefaultConstraints()
		cons.WaitSeconds = body.WaitSeconds
		if body.Sigma != nil {
			cons.Sigma = *body.Sigma
		}
		rec, err := s.eng.SubmitWithConstraints(roadnet.VertexID(body.S), roadnet.VertexID(body.D), body.Riders, cons)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, s.requestView(rec))
	case http.MethodGet:
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad id"))
			return
		}
		rec, err := s.eng.Request(core.RequestID(id))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.requestView(rec))
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

func (s *Server) handleChoose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var body struct {
		ID     int64 `json:"id"`
		Option int   `json:"option"`
	}
	if err := decode(r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.eng.Choose(core.RequestID(body.ID), body.Option); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "assigned"})
}

func (s *Server) handleDecline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var body struct {
		ID int64 `json:"id"`
	}
	if err := decode(r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.eng.Decline(core.RequestID(body.ID)); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "declined"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

type stopView struct {
	Vertex  int32  `json:"vertex"`
	Kind    string `json:"kind"`
	Request int64  `json:"request"`
}

// taxiView is the schedule view of one vehicle (the website's red
// lines).
type taxiView struct {
	Location int32        `json:"location"`
	Branches [][]stopView `json:"branches"`
}

func taxiViewFor(eng *core.Engine, id fleet.VehicleID) (taxiView, error) {
	loc, branches, err := eng.VehicleSchedules(id)
	if err != nil {
		return taxiView{}, err
	}
	out := taxiView{Location: loc}
	for _, b := range branches {
		row := make([]stopView, len(b))
		for i, p := range b {
			row[i] = stopView{Vertex: p.Loc, Kind: p.Kind.String(), Request: int64(p.Req)}
		}
		out.Branches = append(out.Branches, row)
	}
	return out, nil
}

func (s *Server) handleTaxi(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad id"))
		return
	}
	out, err := taxiViewFor(s.eng, fleet.VehicleID(id))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

type paramsView struct {
	Algorithm      string  `json:"algorithm"`
	Capacity       int     `json:"capacity"`
	NumTaxis       int     `json:"num_taxis"`
	MaxWaitSeconds float64 `json:"max_wait_seconds"`
	Sigma          float64 `json:"sigma"`
	SpeedKmh       float64 `json:"speed_kmh"`
	MatchWorkers   int     `json:"match_workers"`
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		cfg := s.eng.Config()
		writeJSON(w, http.StatusOK, paramsView{
			Algorithm:      s.eng.Algorithm().String(),
			Capacity:       cfg.Capacity,
			NumTaxis:       s.eng.NumVehicles(),
			MaxWaitSeconds: cfg.MaxWaitSeconds,
			Sigma:          cfg.Sigma,
			SpeedKmh:       cfg.SpeedKmh,
			MatchWorkers:   cfg.MatchWorkers,
		})
	case http.MethodPost:
		var body struct {
			Algorithm string `json:"algorithm"`
		}
		if err := decode(r, &body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		algo, err := core.ParseAlgorithm(body.Algorithm)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		if err := s.eng.SetAlgorithm(algo); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"algorithm": algo.String()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

func (s *Server) handleVehicles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		var err error
		limit, err = strconv.Atoi(q)
		if err != nil || limit < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit"))
			return
		}
	}
	writeJSON(w, http.StatusOK, s.eng.VehicleViews(limit))
}

// handleMap renders the fleet map as plain text (the website's map
// view, ASCII edition). Optional query parameters: width and height in
// characters (default 72×36) and taxi=<id> to overlay one vehicle's
// schedule stops.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeMapFor(w, r, s.eng)
}

// writeMapFor renders one engine's fleet map as plain text, honouring
// the width/height/taxi query parameters. Shared by the single-engine
// and multi-city servers.
func writeMapFor(w http.ResponseWriter, r *http.Request, eng *core.Engine) {
	width, height := 72, 36
	if q := r.URL.Query().Get("width"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			width = v
		}
	}
	if q := r.URL.Query().Get("height"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			height = v
		}
	}
	m, err := render.NewMap(eng.Graph(), width, height)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	for _, v := range eng.VehicleViews(0) {
		m.PlotVehicle(v.Location, v.Onboard > 0)
	}
	if q := r.URL.Query().Get("taxi"); q != "" {
		id, err := strconv.ParseInt(q, 10, 32)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad taxi id"))
			return
		}
		loc, branches, err := eng.VehicleSchedules(fleet.VehicleID(id))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		var pickups, dropoffs []roadnet.VertexID
		for _, b := range branches {
			for _, p := range b {
				if p.Kind.String() == "pickup" {
					pickups = append(pickups, p.Loc)
				} else {
					dropoffs = append(dropoffs, p.Loc)
				}
			}
		}
		m.PlotSchedule(loc, pickups, dropoffs)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, m.String())
	fmt.Fprintln(w, render.Legend())
}

type eventView struct {
	Kind    string  `json:"kind"`
	Vehicle int32   `json:"vehicle"`
	Request int64   `json:"request"`
	Odo     float64 `json:"odo"`
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var body struct {
		Seconds float64 `json:"seconds"`
	}
	if err := decode(r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	events, err := s.eng.Tick(body.Seconds)
	if err != nil {
		writeErr(w, tickStatus(err), err)
		return
	}
	out := make([]eventView, len(events))
	for i, e := range events {
		out[i] = eventView{Kind: e.Kind.String(), Vehicle: e.Vehicle, Request: int64(e.Request), Odo: e.Odo}
	}
	writeJSON(w, http.StatusOK, map[string]any{"clock": s.eng.Clock(), "events": out})
}

// tickStatus classifies a Tick error: invalid caller input (a negative
// duration, say) is the caller's fault and maps to 400; anything else
// is an internal movement failure and stays 500.
func tickStatus(err error) int {
	if errors.Is(err, core.ErrInvalidArgument) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}
