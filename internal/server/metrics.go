// metrics.go serves GET /metrics: the Prometheus text exposition of
// the server-owned registry (HTTP route latencies, status-code counts,
// SSE stream health) merged with the backend's families when the
// backend carries a telemetry registry — submit-stage timings, tick
// shard wall times, WAL append/fsync latencies, surge gauges. Both
// core.Engine and multicity.Router implement MetricFamilies, so one
// scrape covers single- and multi-city deployments alike.
package server

import (
	"io"
	"net/http"
	"strings"

	"ptrider/internal/telemetry"
)

// metricFamilySource is implemented by backends that expose gathered
// telemetry families (core.Engine, multicity.Router). Backends built
// without a registry return nil and contribute nothing.
type metricFamilySource interface {
	MetricFamilies() []telemetry.Family
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	fams := s.reg.Gather()
	if src, ok := s.svc.(metricFamilySource); ok {
		fams = telemetry.Merge(fams, src.MetricFamilies())
	}
	var b strings.Builder
	telemetry.WriteText(&b, fams)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}
