// middleware.go is the server's observability wrapper: every request
// passes through one handler that assigns (or echoes) an X-Request-ID,
// opens a telemetry span for the backend's stage timings, records
// per-route latency histograms and status-code counters on the
// server-owned registry, and emits one structured log line for
// requests slower than the configured threshold — correlation id and
// per-stage breakdown included, so a slow submit can be attributed to
// quote, WAL wait or probe/commit without reproducing it.
package server

import (
	"context"
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"time"

	"ptrider/internal/telemetry"
)

// Options configures the server's observability surface. The zero
// value matches NewService: metrics on, slow-request logging off.
type Options struct {
	// DisableMetrics turns off the server-owned HTTP/SSE instrumentation
	// and the GET /metrics endpoint (backend families included — the
	// endpoint is the only exposition surface).
	DisableMetrics bool
	// SlowRequest, when positive, logs one structured line for every
	// request whose wall time meets or exceeds it, carrying the request
	// id, route, status and the span's per-stage breakdown.
	SlowRequest time.Duration
	// Logger receives the slow-request lines (nil → log.Default()).
	Logger *log.Logger
}

// ctxKey keys the server's context values.
type ctxKey int

const spanKey ctxKey = iota

// spanFrom returns the request's telemetry span, nil outside the
// instrumented handler chain (a nil span is a no-op everywhere).
func spanFrom(ctx context.Context) *telemetry.Span {
	sp, _ := ctx.Value(spanKey).(*telemetry.Span)
	return sp
}

// nextRequestID mints a process-unique correlation id for requests
// that arrive without an X-Request-ID header.
func (s *Server) nextRequestID() string {
	return s.idBase + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// statusRecorder captures the response status for the route metrics
// and slow-request log. It forwards Flush so the SSE stream keeps
// working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if fl, ok := sr.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sr *statusRecorder) statusCode() int {
	if sr.status == 0 {
		return http.StatusOK
	}
	return sr.status
}

// instrument wraps the mux with the correlation/metrics/slow-log
// middleware. With metrics disabled and no slow threshold the request
// id is still assigned — correlation is unconditional.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = s.nextRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		sp := telemetry.NewSpan(reqID)
		r = r.WithContext(context.WithValue(r.Context(), spanKey, sp))
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r)
		elapsed := time.Since(start)

		// The mux resolves the route pattern without serving, so the
		// label is the registered pattern ("/v1/requests/{id}"), never a
		// high-cardinality concrete path.
		_, route := s.mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		if s.reg != nil {
			s.reg.LatencyHist("ptrider_http_request_duration_seconds",
				"HTTP request wall time by route.",
				telemetry.Label{Name: "route", Value: route}).Observe(elapsed.Seconds())
			s.reg.Counter("ptrider_http_requests_total",
				"HTTP requests by route, method and status code.",
				telemetry.Label{Name: "route", Value: route},
				telemetry.Label{Name: "method", Value: r.Method},
				telemetry.Label{Name: "code", Value: strconv.Itoa(sr.statusCode())}).Inc()
		}
		if s.opts.SlowRequest > 0 && elapsed >= s.opts.SlowRequest {
			s.logSlow(r, reqID, route, sr.statusCode(), elapsed, sp)
		}
	})
}

// slowLogEntry is the slow-request log line's JSON shape.
type slowLogEntry struct {
	Msg        string  `json:"msg"`
	RequestID  string  `json:"request_id"`
	Method     string  `json:"method"`
	Route      string  `json:"route"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
	Stages     string  `json:"stages,omitempty"`
}

func (s *Server) logSlow(r *http.Request, reqID, route string, status int, elapsed time.Duration, sp *telemetry.Span) {
	entry := slowLogEntry{
		Msg: "slow_request", RequestID: reqID,
		Method: r.Method, Route: route, Status: status,
		DurationMS: float64(elapsed.Microseconds()) / 1e3,
		Stages:     sp.Breakdown(),
	}
	b, err := json.Marshal(entry)
	if err != nil {
		return
	}
	logger := s.opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	logger.Println(string(b))
}
