package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/server"
	"ptrider/internal/testnet"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.Engine) {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 8, 8, 100)
	eng, err := core.NewEngine(g, core.Config{
		GridCols: 3, GridRows: 3, Capacity: 4,
		Algorithm: core.AlgoDualSide, Seed: 1,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	eng.AddVehiclesUniform(10)
	ts := httptest.NewServer(server.New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, out)
	}
}

func TestRequestChooseFlow(t *testing.T) {
	ts, eng := newTestServer(t)

	resp, out := postJSON(t, ts.URL+"/api/request", map[string]any{"s": 3, "d": 40, "riders": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request status %d: %v", resp.StatusCode, out)
	}
	var id int64
	json.Unmarshal(out["id"], &id)
	var options []map[string]any
	json.Unmarshal(out["options"], &options)
	if id == 0 || len(options) == 0 {
		t.Fatalf("request response: id=%d options=%v", id, options)
	}
	if _, ok := options[0]["pickup_seconds"]; !ok {
		t.Fatal("option missing pickup_seconds")
	}
	if _, ok := options[0]["price"]; !ok {
		t.Fatal("option missing price")
	}

	resp, _ = postJSON(t, ts.URL+"/api/choose", map[string]any{"id": id, "option": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("choose status %d", resp.StatusCode)
	}

	// GET the record back.
	var rec map[string]any
	getJSON(t, fmt.Sprintf("%s/api/request?id=%d", ts.URL, id), &rec)
	if rec["status"] != "assigned" {
		t.Fatalf("record status = %v", rec["status"])
	}

	// Engine agrees.
	r, err := eng.Request(core.RequestID(id))
	if err != nil || r.Status != core.StatusAssigned {
		t.Fatalf("engine record: %+v, %v", r, err)
	}
}

func TestDecline(t *testing.T) {
	ts, _ := newTestServer(t)
	_, out := postJSON(t, ts.URL+"/api/request", map[string]any{"s": 5, "d": 20, "riders": 1})
	var id int64
	json.Unmarshal(out["id"], &id)
	resp, _ := postJSON(t, ts.URL+"/api/decline", map[string]any{"id": id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decline status %d", resp.StatusCode)
	}
	var rec map[string]any
	getJSON(t, fmt.Sprintf("%s/api/request?id=%d", ts.URL, id), &rec)
	if rec["status"] != "declined" {
		t.Fatalf("status = %v", rec["status"])
	}
}

func TestBadInputs(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/api/request", map[string]any{"s": 1, "d": 1, "riders": 1})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("s==d status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/api/request", map[string]any{"s": 1, "d": 2, "riders": 1, "bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/api/choose", map[string]any{"id": 999, "option": 0})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown request status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/api/request?id=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/api/choose")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET choose status %d", r.StatusCode)
	}
}

func TestStatsAndParams(t *testing.T) {
	ts, _ := newTestServer(t)
	var st map[string]any
	getJSON(t, ts.URL+"/api/stats", &st)
	if _, ok := st["SharingRate"]; !ok {
		t.Fatalf("stats missing SharingRate: %v", st)
	}

	var params map[string]any
	getJSON(t, ts.URL+"/api/params", &params)
	if params["algorithm"] != "dual-side" {
		t.Fatalf("algorithm = %v", params["algorithm"])
	}
	if params["num_taxis"] != float64(10) {
		t.Fatalf("num_taxis = %v", params["num_taxis"])
	}

	resp, _ := postJSON(t, ts.URL+"/api/params", map[string]any{"algorithm": "single-side"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set params status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/api/params", &params)
	if params["algorithm"] != "single-side" {
		t.Fatalf("algorithm after switch = %v", params["algorithm"])
	}
	resp, _ = postJSON(t, ts.URL+"/api/params", map[string]any{"algorithm": "bogus"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bogus algorithm status %d", resp.StatusCode)
	}
}

func TestTaxiSchedules(t *testing.T) {
	ts, eng := newTestServer(t)
	// Assign a request so taxi 0..9 has schedules; find its vehicle.
	_, out := postJSON(t, ts.URL+"/api/request", map[string]any{"s": 3, "d": 40, "riders": 1})
	var id int64
	json.Unmarshal(out["id"], &id)
	postJSON(t, ts.URL+"/api/choose", map[string]any{"id": id, "option": 0})
	rec, _ := eng.Request(core.RequestID(id))

	var taxi struct {
		Location int32 `json:"location"`
		Branches [][]struct {
			Vertex  int32  `json:"vertex"`
			Kind    string `json:"kind"`
			Request int64  `json:"request"`
		} `json:"branches"`
	}
	getJSON(t, fmt.Sprintf("%s/api/taxi?id=%d", ts.URL, rec.Vehicle), &taxi)
	if len(taxi.Branches) == 0 {
		t.Fatal("assigned taxi has no schedule branches")
	}
	foundPickup := false
	for _, b := range taxi.Branches {
		for _, p := range b {
			if p.Request == id && p.Kind == "pickup" {
				foundPickup = true
			}
		}
	}
	if !foundPickup {
		t.Fatal("schedules do not show the committed pickup")
	}

	r, err := http.Get(ts.URL + "/api/taxi?id=999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown taxi status %d", r.StatusCode)
	}
}

func TestTickAdvancesClock(t *testing.T) {
	ts, eng := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/api/tick", map[string]any{"seconds": 7.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d", resp.StatusCode)
	}
	var clock float64
	json.Unmarshal(out["clock"], &clock)
	if clock != 7.5 || eng.Clock() != 7.5 {
		t.Fatalf("clock = %v / %v", clock, eng.Clock())
	}
}

// TestTickNegativeSecondsIs400 pins the handler's error classification:
// a caller error like {"seconds": -1} is a 400, not a 500, and the
// clock does not move.
func TestTickNegativeSecondsIs400(t *testing.T) {
	ts, eng := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/api/tick", map[string]any{"seconds": -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative tick status = %d, want 400 (%v)", resp.StatusCode, out)
	}
	if _, ok := out["error"]; !ok {
		t.Fatal("negative tick response has no error field")
	}
	if eng.Clock() != 0 {
		t.Fatalf("negative tick moved the clock to %v", eng.Clock())
	}
}

// TestTickInternalFailureIs500 pins the other side: an internal fleet
// movement failure keeps answering 500, and a failed step leaves the
// reported clock unchanged.
func TestTickInternalFailureIs500(t *testing.T) {
	ts, eng := newTestServer(t)
	if resp, _ := postJSON(t, ts.URL+"/api/tick", map[string]any{"seconds": 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup tick status %d", resp.StatusCode)
	}
	eng.SetStepOverride(func(float64) ([]fleet.Event, error) {
		return nil, fmt.Errorf("injected fleet failure")
	})
	resp, out := postJSON(t, ts.URL+"/api/tick", map[string]any{"seconds": 3})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("internal failure status = %d, want 500 (%v)", resp.StatusCode, out)
	}
	if eng.Clock() != 2 {
		t.Fatalf("failed step moved the clock to %v, want 2", eng.Clock())
	}
	eng.SetStepOverride(nil)
	if resp, _ := postJSON(t, ts.URL+"/api/tick", map[string]any{"seconds": 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery tick status %d", resp.StatusCode)
	}
	if eng.Clock() != 3 {
		t.Fatalf("clock after recovery = %v, want 3", eng.Clock())
	}
}
