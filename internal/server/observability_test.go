// observability_test.go pins PR 9's telemetry surface over both
// backends: the /metrics exposition shape (HTTP route histograms plus
// the backend's submit-stage, tick-shard, WAL and surge families),
// X-Request-ID echo and generation, the GET /v1/requests listing, and
// the slow-request structured log line.
package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/multicity"
	"ptrider/internal/server"
	"ptrider/internal/telemetry"
	"ptrider/internal/testnet"
	"ptrider/internal/wal"
)

// obsSingle builds a telemetry- and WAL-enabled single-city backend so
// every metric family the acceptance list names is registered.
func obsSingle(t *testing.T) v1Backend {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 8, 8, 100)
	eng, err := core.NewEngine(g, core.Config{
		GridCols: 3, GridRows: 3, Capacity: 4,
		Algorithm: core.AlgoDualSide, Seed: 1,
		Durability: wal.ModeAsync, WALDir: t.TempDir(),
		Telemetry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	eng.AddVehiclesUniform(10)
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(server.NewService(eng).Handler())
	t.Cleanup(ts.Close)
	return v1Backend{name: "single-city", ts: ts, city: core.DefaultCityName, numCities: 1}
}

// obsMulti builds the telemetry- and WAL-enabled two-city backend.
func obsMulti(t *testing.T) v1Backend {
	t.Helper()
	router, err := multicity.BuildFromSpecWithConfig("east:10x10:10,west:8x8:8",
		core.Config{Capacity: 4, Algorithm: core.AlgoDualSide}, 5,
		multicity.RouterConfig{
			EnableRelay: true,
			Durability:  wal.ModeAsync, WALDir: t.TempDir(),
			Telemetry: telemetry.NewRegistry(),
		})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	t.Cleanup(func() { router.Close() })
	ts := httptest.NewServer(server.NewMulti(router).Handler())
	t.Cleanup(ts.Close)
	return v1Backend{name: "two-city-relay", ts: ts, city: "east", numCities: 2, relay: true}
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, b v1Backend) string {
	t.Helper()
	resp, err := http.Get(b.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestV1MetricsExposition drives traffic (submit, choice, tick) and
// checks every acceptance-list family shows up in the scrape on both
// backends — with city labels on the multi-city one.
func TestV1MetricsExposition(t *testing.T) {
	for _, b := range []v1Backend{obsSingle(t), obsMulti(t)} {
		b := b
		t.Run(b.name, func(t *testing.T) {
			id := submitQuoted(t, b)
			if resp, out := do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/choice", b.ts.URL, id),
				map[string]any{"option": 0}); resp.StatusCode != http.StatusOK {
				t.Fatalf("choice status %d: %v", resp.StatusCode, out)
			}
			if resp, _ := do(t, http.MethodPost, b.ts.URL+"/v1/ticks",
				map[string]any{"seconds": 1}); resp.StatusCode != http.StatusOK {
				t.Fatalf("tick status %d", resp.StatusCode)
			}

			body := scrape(t, b)
			for _, want := range []string{
				// Server-owned HTTP metrics.
				"# TYPE ptrider_http_request_duration_seconds histogram",
				`ptrider_http_requests_total{route="/v1/requests",method="POST",code="200"}`,
				"ptrider_sse_dropped_total 0",
				"ptrider_sse_subscribers 0",
				// Submit-stage timings (quote recorded on every submit,
				// probe/commit on the choice we just drove).
				"# TYPE ptrider_submit_stage_duration_seconds histogram",
				`stage="quote"`,
				`stage="probe_commit"`,
				// P² summaries ride along with every histogram family.
				"# TYPE ptrider_submit_stage_duration_seconds_summary summary",
				// Tick wall time, per-shard and whole-tick.
				"# TYPE ptrider_tick_duration_seconds histogram",
				"# TYPE ptrider_tick_shard_duration_seconds histogram",
				// WAL group-commit latencies (durability is on here).
				"# TYPE ptrider_wal_append_duration_seconds histogram",
				"# TYPE ptrider_wal_fsync_duration_seconds histogram",
				// Ledger counters and surge gauges (surge families are
				// registered even with surge pricing off).
				"# TYPE ptrider_requests_total counter",
				"# TYPE ptrider_surge_epoch gauge",
				"# TYPE ptrider_surge_active_cells gauge",
				"ptrider_clock_seconds",
				"ptrider_vehicles",
			} {
				if !strings.Contains(body, want) {
					t.Errorf("exposition misses %q", want)
				}
			}
			if b.numCities > 1 {
				for _, want := range []string{`city="east"`, `city="west"`,
					"# TYPE ptrider_relay_leg_quote_duration_seconds histogram"} {
					if !strings.Contains(body, want) {
						t.Errorf("multi-city exposition misses %q", want)
					}
				}
			}
			// The quote stage saw at least the submits we drove: its
			// +Inf bucket must be non-zero.
			if !quoteStageObserved(body) {
				t.Error("quote stage has no observations")
			}
		})
	}
}

// quoteStageObserved reports whether any quote-stage +Inf bucket
// carries a non-zero count.
func quoteStageObserved(body string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "ptrider_submit_stage_duration_seconds_bucket") &&
			strings.Contains(line, `stage="quote"`) &&
			strings.Contains(line, `le="+Inf"`) &&
			!strings.HasSuffix(line, " 0") {
			return true
		}
	}
	return false
}

// TestV1RequestIDCorrelation pins the X-Request-ID contract: a
// client-sent id echoes back verbatim; absent one, the server mints a
// non-empty id — on both backends.
func TestV1RequestIDCorrelation(t *testing.T) {
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodGet, b.ts.URL+"/v1/stats", nil)
			req.Header.Set("X-Request-ID", "corr-42")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if got := resp.Header.Get("X-Request-ID"); got != "corr-42" {
				t.Fatalf("echoed id = %q, want corr-42", got)
			}

			resp, err = http.Get(b.ts.URL + "/v1/stats")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if got := resp.Header.Get("X-Request-ID"); got == "" {
				t.Fatal("no generated X-Request-ID")
			}
		})
	}
}

// listRequests fetches GET /v1/requests with the given query string.
func listRequests(t *testing.T, b v1Backend, query string) (int, []map[string]any) {
	t.Helper()
	resp, out := do(t, http.MethodGet, b.ts.URL+"/v1/requests"+query, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("listing %q status %d: %v", query, resp.StatusCode, out)
	}
	var count int
	json.Unmarshal(out["count"], &count)
	var views []map[string]any
	json.Unmarshal(out["requests"], &views)
	if count != len(views) {
		t.Fatalf("listing %q count %d != len %d", query, count, len(views))
	}
	return count, views
}

// TestV1RequestListing pins GET /v1/requests: id-ascending order, the
// vehicles-style limit/offset pagination, the status filter, and the
// city filter on the multi-city backend.
func TestV1RequestListing(t *testing.T) {
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			ids := []int64{submitQuoted(t, b), submitQuoted(t, b), submitQuoted(t, b)}
			if resp, _ := do(t, http.MethodPost,
				fmt.Sprintf("%s/v1/requests/%d/decline", b.ts.URL, ids[2]), nil); resp.StatusCode != http.StatusOK {
				t.Fatal("decline failed")
			}

			_, all := listRequests(t, b, "")
			if len(all) < 3 {
				t.Fatalf("full listing has %d records, want >= 3", len(all))
			}
			for i := 1; i < len(all); i++ {
				if all[i]["id"].(float64) <= all[i-1]["id"].(float64) {
					t.Fatalf("listing not id-ascending at %d: %v", i, all)
				}
			}

			// Pagination: page 2 of size 1 is the full listing's second row.
			count, page := listRequests(t, b, "?limit=1&offset=1")
			if count != 1 || page[0]["id"] != all[1]["id"] {
				t.Fatalf("page(1,1) = %v, want id %v", page, all[1]["id"])
			}
			// An offset past the end clamps to an empty page.
			if count, _ := listRequests(t, b, "?limit=5&offset=10000"); count != 0 {
				t.Fatalf("past-the-end page count = %d", count)
			}

			// Status filter: the declined request, and only declined ones.
			_, declined := listRequests(t, b, "?status=declined")
			found := false
			for _, v := range declined {
				if v["status"] != "declined" {
					t.Fatalf("status filter leaked %v", v)
				}
				if int64(v["id"].(float64)) == ids[2] {
					found = true
				}
			}
			if !found {
				t.Fatalf("declined listing misses id %d: %v", ids[2], declined)
			}

			// City filter: every row carries the requested city.
			_, scoped := listRequests(t, b, "?city="+b.city)
			if len(scoped) < 3 {
				t.Fatalf("city listing has %d records, want >= 3", len(scoped))
			}
			for _, v := range scoped {
				if v["city"] != b.city {
					t.Fatalf("city filter leaked %v", v)
				}
			}
		})
	}
}

// syncBuf is a concurrency-safe log sink.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestV1SlowRequestLog pins the slow-request line: with a threshold
// every request beats, a submit logs one structured line carrying the
// correlation id and the backend's per-stage breakdown.
func TestV1SlowRequestLog(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 8, 8, 100)
	eng, err := core.NewEngine(g, core.Config{
		GridCols: 3, GridRows: 3, Capacity: 4,
		Algorithm: core.AlgoDualSide, Seed: 1,
		Telemetry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	eng.AddVehiclesUniform(10)
	var buf syncBuf
	srv := server.NewServiceWithOptions(eng, server.Options{
		SlowRequest: time.Nanosecond,
		Logger:      log.New(&buf, "", 0),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/requests",
		strings.NewReader(`{"s":3,"d":40,"riders":1}`))
	req.Header.Set("X-Request-ID", "slow-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// The line lands after the response body; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for time.Now().Before(deadline) {
		if s := buf.String(); strings.Contains(s, "slow_probe") || strings.Contains(s, "slow-probe-1") {
			line = s
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		`"msg":"slow_request"`,
		`"request_id":"slow-probe-1"`,
		`"route":"/v1/requests"`,
		"quote=",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow log %q misses %q", line, want)
		}
	}
}
