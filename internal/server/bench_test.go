package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/server"
	"ptrider/internal/testnet"
)

// BenchmarkHTTPSubmit measures the full /v1 request→choose round trip —
// JSON decode, Service submission, view rendering, JSON encode, then
// the choice commit — against a single-city backend. It prices the
// transport layer the API redesign added on top of the engine's
// in-process Submit (BenchmarkSubmitParallel in the root package).
func BenchmarkHTTPSubmit(b *testing.B) {
	g := testnet.Lattice(rand.New(rand.NewSource(7)), 24, 24, 150)
	eng, err := core.NewEngine(g, core.Config{
		Capacity: 4, Algorithm: core.AlgoDualSide, Seed: 7,
	})
	if err != nil {
		b.Fatalf("engine: %v", err)
	}
	eng.AddVehiclesUniform(200)
	ts := httptest.NewServer(server.NewService(eng).Handler())
	defer ts.Close()
	client := ts.Client()

	rng := rand.New(rand.NewSource(42))
	n := int32(g.NumVertices())
	type pair struct{ s, d int32 }
	pairs := make([]pair, 4096)
	for i := range pairs {
		s := rng.Int31n(n)
		d := rng.Int31n(n)
		for d == s {
			d = rng.Int31n(n)
		}
		pairs[i] = pair{s, d}
	}

	post := func(url string, body any) (map[string]json.RawMessage, int) {
		buf, _ := json.Marshal(body)
		resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
		if err != nil {
			b.Fatalf("POST %s: %v", url, err)
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		json.NewDecoder(resp.Body).Decode(&out)
		return out, resp.StatusCode
	}

	chosen := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		out, code := post(ts.URL+"/v1/requests", map[string]any{"s": p.s, "d": p.d, "riders": 1})
		if code != http.StatusOK {
			b.Fatalf("submit status %d: %v", code, out)
		}
		var id int64
		json.Unmarshal(out["id"], &id)
		var options []json.RawMessage
		json.Unmarshal(out["options"], &options)
		if len(options) == 0 {
			continue
		}
		if _, code := post(fmt.Sprintf("%s/v1/requests/%d/choice", ts.URL, id), map[string]any{"option": 0}); code == http.StatusOK {
			chosen++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(chosen)/float64(b.N), "chosen/op")
}
