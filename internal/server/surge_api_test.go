// surge_api_test.go pins the PR-8 /v1 additions: vehicle pagination
// (?limit=&offset=), the per-city SSE filter on /v1/events, the
// /v1/surge cell view and the surge fields on /v1/params.
package server_test

import (
	"bufio"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/pricing/surge"
	"ptrider/internal/server"
	"ptrider/internal/testnet"
)

// surgeBackend is a single-city backend with hair-trigger surge tiers:
// any demand doubles a cell's fares after the next 10 s epoch.
func surgeBackend(t *testing.T) (v1Backend, *core.Engine) {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 8, 8, 100)
	eng, err := core.NewEngine(g, core.Config{
		GridCols: 3, GridRows: 3, Capacity: 4,
		Algorithm: core.AlgoDualSide, Seed: 1,
		SurgeEnabled: true, SurgeEpochSeconds: 10, SurgeAlpha: 1,
		SurgeTiers: []surge.Tier{{MinRatio: 0.0001, Multiplier: 2}},
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	eng.AddVehiclesUniform(10)
	ts := httptest.NewServer(server.NewService(eng).Handler())
	t.Cleanup(ts.Close)
	return v1Backend{name: "single-city-surge", ts: ts, city: core.DefaultCityName, numCities: 1}, eng
}

// TestV1VehiclesPagination walks the fleet page by page and checks the
// pages tile the full listing without overlap.
func TestV1VehiclesPagination(t *testing.T) {
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			type page struct {
				City     string `json:"city"`
				Offset   int    `json:"offset"`
				Count    int    `json:"count"`
				Vehicles []struct {
					ID int32 `json:"id"`
				} `json:"vehicles"`
			}
			var full page
			getJSON(t, b.ts.URL+"/v1/vehicles?city="+b.city, &full)
			if full.Count == 0 || full.Count != len(full.Vehicles) {
				t.Fatalf("full listing count %d over %d vehicles", full.Count, len(full.Vehicles))
			}

			var paged []int32
			pageSize := 4
			for off := 0; off < full.Count; off += pageSize {
				var p page
				url := fmt.Sprintf("%s/v1/vehicles?city=%s&limit=%d&offset=%d", b.ts.URL, b.city, pageSize, off)
				if resp := getJSON(t, url, &p); resp.StatusCode != http.StatusOK {
					t.Fatalf("page at %d: status %d", off, resp.StatusCode)
				}
				if p.Offset != off || p.Count != len(p.Vehicles) {
					t.Fatalf("page at %d: offset %d count %d over %d vehicles", off, p.Offset, p.Count, len(p.Vehicles))
				}
				if p.Count > pageSize {
					t.Fatalf("page at %d overflows the limit: %d", off, p.Count)
				}
				for _, v := range p.Vehicles {
					paged = append(paged, v.ID)
				}
			}
			if len(paged) != full.Count {
				t.Fatalf("pages tiled %d vehicles, full listing has %d", len(paged), full.Count)
			}
			for i, v := range full.Vehicles {
				if paged[i] != v.ID {
					t.Fatalf("page order diverges at %d: %d != %d", i, paged[i], v.ID)
				}
			}

			// Past-the-end offsets produce an empty page, not an error —
			// and the vehicles field stays a JSON array.
			resp, out := do(t, http.MethodGet,
				fmt.Sprintf("%s/v1/vehicles?city=%s&offset=%d", b.ts.URL, b.city, full.Count+50), nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("past-the-end offset: status %d", resp.StatusCode)
			}
			if string(out["vehicles"]) != "[]" {
				t.Fatalf("past-the-end vehicles = %s, want []", out["vehicles"])
			}

			// Negative offsets are rejected like negative limits.
			resp, out = do(t, http.MethodGet, b.ts.URL+"/v1/vehicles?city="+b.city+"&offset=-1", nil)
			if resp.StatusCode != http.StatusBadRequest || errCode(t, out) != "invalid_argument" {
				t.Fatalf("negative offset: status %d code %q", resp.StatusCode, errCode(t, out))
			}
		})
	}
}

// TestV1SurgeEndpoint drives demand over HTTP, crosses an epoch via
// /v1/ticks, and reads the surge state back through /v1/surge and
// /v1/params.
func TestV1SurgeEndpoint(t *testing.T) {
	b, eng := surgeBackend(t)

	// Demand out of vertex 0's cell.
	for i := 0; i < 6; i++ {
		resp, out := do(t, http.MethodPost, b.ts.URL+"/v1/requests",
			map[string]any{"s": 0, "d": 60, "riders": 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit status %d: %v", resp.StatusCode, out)
		}
	}
	if resp, _ := do(t, http.MethodPost, b.ts.URL+"/v1/ticks", map[string]any{"seconds": 10}); resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d", resp.StatusCode)
	}

	var sv struct {
		City         string  `json:"city"`
		Enabled      bool    `json:"enabled"`
		Epoch        uint64  `json:"epoch"`
		EpochSeconds float64 `json:"epoch_seconds"`
		Cols         int     `json:"cols"`
		Rows         int     `json:"rows"`
		Cells        []struct {
			Cell       int     `json:"cell"`
			Multiplier float64 `json:"multiplier"`
			Ratio      float64 `json:"ratio"`
		} `json:"cells"`
	}
	if resp := getJSON(t, b.ts.URL+"/v1/surge", &sv); resp.StatusCode != http.StatusOK {
		t.Fatalf("surge status %d", resp.StatusCode)
	}
	if !sv.Enabled || sv.Epoch != 1 || sv.Cols != 3 || sv.Rows != 3 || sv.EpochSeconds != 10 {
		t.Fatalf("surge view = %+v", sv)
	}
	hotCell := int(eng.Grid().CellOf(0))
	found := false
	for _, c := range sv.Cells {
		if c.Cell == hotCell {
			found = true
			if c.Multiplier != 2 || c.Ratio <= 0 {
				t.Fatalf("hot cell view = %+v", c)
			}
		}
	}
	if !found {
		t.Fatalf("hot cell %d missing from %d surge cells", hotCell, len(sv.Cells))
	}

	var pv struct {
		SurgeEnabled       bool    `json:"surge_enabled"`
		SurgeEpochSeconds  float64 `json:"surge_epoch_seconds"`
		SurgeEpoch         uint64  `json:"surge_epoch"`
		SurgeActiveCells   int     `json:"surge_active_cells"`
		SurgeMaxMultiplier float64 `json:"surge_max_multiplier"`
	}
	getJSON(t, b.ts.URL+"/v1/params", &pv)
	if !pv.SurgeEnabled || pv.SurgeEpoch != 1 || pv.SurgeActiveCells < 1 || pv.SurgeMaxMultiplier != 2 {
		t.Fatalf("params surge fields = %+v", pv)
	}

	// A surge-off backend reports disabled — and /v1/surge still
	// answers rather than 404ing.
	off := singleBackend(t)
	var offView struct {
		Enabled bool `json:"enabled"`
	}
	if resp := getJSON(t, off.ts.URL+"/v1/surge", &offView); resp.StatusCode != http.StatusOK || offView.Enabled {
		t.Fatalf("surge-off backend: status %d view %+v", resp.StatusCode, offView)
	}

	// Wrong method keeps the conformance envelope.
	resp, out := do(t, http.MethodPost, b.ts.URL+"/v1/surge", map[string]any{})
	if resp.StatusCode != http.StatusMethodNotAllowed || errCode(t, out) != "method_not_allowed" {
		t.Fatalf("POST surge: status %d code %q", resp.StatusCode, errCode(t, out))
	}
}

// TestV1EventsCityFilter subscribes two filtered streams to a two-city
// backend, commits a ride in one city, and checks the event reaches
// only that city's stream.
func TestV1EventsCityFilter(t *testing.T) {
	b := multiBackend(t)
	id := submitQuoted(t, b) // quoted in b.city ("east")
	if resp, out := do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/choice", b.ts.URL, id),
		map[string]any{"option": 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("choice status %d: %v", resp.StatusCode, out)
	}

	subscribe := func(city string) (chan string, *http.Response) {
		stream, err := http.Get(b.ts.URL + "/v1/events?city=" + city)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { stream.Body.Close() })
		lines := make(chan string, 256)
		go func() {
			sc := bufio.NewScanner(stream.Body)
			for sc.Scan() {
				lines <- sc.Text()
			}
			close(lines)
		}()
		// Wait out the open comment so the subscription is live before
		// any tick fires.
		select {
		case l := <-lines:
			if !strings.HasPrefix(l, ":") {
				t.Fatalf("first %s stream line %q is not the open comment", city, l)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no %s stream preamble", city)
		}
		return lines, stream
	}
	east, _ := subscribe("east")
	west, _ := subscribe("west")

	// Tick until east's committed pickup lands on the east stream.
	deadline := time.After(20 * time.Second)
	sawEast := false
	for !sawEast {
		if resp, _ := do(t, http.MethodPost, b.ts.URL+"/v1/ticks", map[string]any{"seconds": 5}); resp.StatusCode != http.StatusOK {
			t.Fatalf("tick status %d", resp.StatusCode)
		}
	drain:
		for {
			select {
			case l, ok := <-east:
				if !ok {
					t.Fatal("east stream closed early")
				}
				if strings.HasPrefix(l, "data: ") && strings.Contains(l, `"city":"east"`) {
					sawEast = true
				}
				if strings.HasPrefix(l, "data: ") && strings.Contains(l, `"city":"west"`) {
					t.Fatalf("west event leaked onto the east stream: %q", l)
				}
			case <-deadline:
				t.Fatal("no east pickup on the filtered stream")
			default:
				break drain
			}
		}
	}

	// The west stream must have seen nothing but keepalive comments: no
	// ride exists in west, and east's events are filtered out.
	for {
		select {
		case l := <-west:
			if strings.HasPrefix(l, "event: ") || strings.HasPrefix(l, "data: ") {
				t.Fatalf("event leaked onto the west stream: %q", l)
			}
		default:
			return
		}
	}
}
