package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"ptrider/internal/core"
)

func getText(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMapEndpoint(t *testing.T) {
	ts, eng := newTestServer(t)
	code, body := getText(t, ts.URL+"/api/map?width=40&height=20")
	if code != http.StatusOK {
		t.Fatalf("map status %d", code)
	}
	if !strings.Contains(body, "legend:") {
		t.Fatal("map missing legend")
	}
	if !strings.Contains(body, "v") {
		t.Fatal("map missing idle vehicles")
	}
	lines := strings.Split(body, "\n")
	if !strings.HasPrefix(lines[0], "+") {
		t.Fatalf("map not bordered: %q", lines[0])
	}

	// Assign a request, then overlay that taxi's schedule.
	_, out := postJSON(t, ts.URL+"/api/request", map[string]any{"s": 3, "d": 40, "riders": 1})
	var id int64
	json.Unmarshal(out["id"], &id)
	postJSON(t, ts.URL+"/api/choose", map[string]any{"id": id, "option": 0})
	rec, _ := eng.Request(core.RequestID(id))

	code, body = getText(t, fmt.Sprintf("%s/api/map?taxi=%d", ts.URL, rec.Vehicle))
	if code != http.StatusOK {
		t.Fatalf("taxi map status %d", code)
	}
	for _, glyph := range []string{"*", "P", "D"} {
		if !strings.Contains(body, glyph) {
			t.Fatalf("taxi overlay missing %q:\n%s", glyph, body)
		}
	}

	if code, _ := getText(t, ts.URL+"/api/map?taxi=999"); code != http.StatusNotFound {
		t.Fatalf("unknown taxi map status %d", code)
	}
	if code, _ := getText(t, ts.URL+"/api/map?taxi=abc"); code != http.StatusBadRequest {
		t.Fatalf("bad taxi id status %d", code)
	}
	if code, _ := getText(t, ts.URL+"/api/map?width=1"); code != http.StatusBadRequest {
		t.Fatalf("bad width status %d", code)
	}
}
