// conformance_test.go pins the /v1 surface — routes, methods, status
// codes and error envelope codes — with one backend-agnostic table
// executed twice: over a single-city core.Engine and over a 2-city
// relay-enabled multicity.Router. The Service interface is the whole
// point of PR 5: the same handler set must behave identically wherever
// the backend allows, and the table is the proof.
package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ptrider/internal/cluster"
	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/multicity"
	"ptrider/internal/relay"
	"ptrider/internal/server"
	"ptrider/internal/telemetry"
	"ptrider/internal/testnet"
)

// v1Backend is one backend under conformance test.
type v1Backend struct {
	name      string
	ts        *httptest.Server
	city      string // a valid city name for scoped endpoints
	numCities int
	relay     bool
}

func singleBackend(t *testing.T) v1Backend {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(1)), 8, 8, 100)
	eng, err := core.NewEngine(g, core.Config{
		GridCols: 3, GridRows: 3, Capacity: 4,
		Algorithm: core.AlgoDualSide, Seed: 1,
		Telemetry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	eng.AddVehiclesUniform(10)
	ts := httptest.NewServer(server.NewService(eng).Handler())
	t.Cleanup(ts.Close)
	return v1Backend{name: "single-city", ts: ts, city: core.DefaultCityName, numCities: 1}
}

func multiBackend(t *testing.T) v1Backend {
	t.Helper()
	router, err := multicity.BuildFromSpecWithConfig("east:10x10:10,west:8x8:8",
		core.Config{Capacity: 4, Algorithm: core.AlgoDualSide}, 5,
		multicity.RouterConfig{EnableRelay: true, Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	ts := httptest.NewServer(server.NewMulti(router).Handler())
	t.Cleanup(ts.Close)
	return v1Backend{name: "two-city-relay", ts: ts, city: "east", numCities: 2, relay: true}
}

// remoteBackend assembles the cluster transport: two single-city
// engines behind shard handlers on real listeners, a gateway dialed
// over those sockets, and the /v1 surface served by the gateway — the
// same conformance table must hold when every backend verb crosses a
// wire.
func remoteBackend(t *testing.T) v1Backend {
	t.Helper()
	newShard := func(w, h int, originX float64, seed int64) *httptest.Server {
		g, err := gen.GenerateNetwork(gen.CityConfig{Width: w, Height: h, OriginX: originX, Seed: seed})
		if err != nil {
			t.Fatalf("gen: %v", err)
		}
		eng, err := core.NewEngine(g, core.Config{
			Capacity: 4, Algorithm: core.AlgoDualSide, Seed: seed,
			Telemetry: telemetry.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		eng.AddVehiclesUniform(5)
		shard := httptest.NewServer(cluster.NewShardHandler(eng, cluster.ShardOptions{}))
		t.Cleanup(shard.Close)
		return shard
	}
	east := newShard(10, 10, 0, 1)
	west := newShard(8, 8, 20000, 2)
	gw, err := cluster.NewGateway(
		[]string{"east=" + east.URL, "west=" + west.URL},
		cluster.GatewayConfig{
			Client:   cluster.ClientConfig{RetryBackoff: time.Millisecond},
			Relay:    relay.Config{TransferBufferSeconds: 120},
			Registry: telemetry.NewRegistry(),
		})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	t.Cleanup(func() { gw.Close() })
	ts := httptest.NewServer(server.NewService(gw).Handler())
	t.Cleanup(ts.Close)
	return v1Backend{name: "remote-gateway", ts: ts, city: "east", numCities: 2, relay: true}
}

func conformanceBackends(t *testing.T) []v1Backend {
	return []v1Backend{singleBackend(t), multiBackend(t), remoteBackend(t)}
}

// errCode extracts the envelope's error code from a decoded body.
func errCode(t *testing.T, body map[string]json.RawMessage) string {
	t.Helper()
	var e struct {
		Code string `json:"code"`
	}
	if raw, ok := body["error"]; ok {
		json.Unmarshal(raw, &e)
	}
	return e.Code
}

// do issues a request with an explicit method and optional JSON body.
func do(t *testing.T, method, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	var reader *strings.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		reader = strings.NewReader(string(b))
	} else {
		reader = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out := map[string]json.RawMessage{}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// submitQuoted posts vertex-addressed requests until one quotes a
// non-empty skyline and returns its id.
func submitQuoted(t *testing.T, b v1Backend) int64 {
	t.Helper()
	pairs := [][2]int{{3, 40}, {5, 44}, {1, 50}, {2, 30}, {7, 42}, {10, 55}}
	for _, p := range pairs {
		resp, out := do(t, http.MethodPost, b.ts.URL+"/v1/requests",
			map[string]any{"city": b.city, "s": p[0], "d": p[1], "riders": 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("[%s] submit status %d: %v", b.name, resp.StatusCode, out)
		}
		var id int64
		json.Unmarshal(out["id"], &id)
		var options []json.RawMessage
		json.Unmarshal(out["options"], &options)
		if len(options) > 0 {
			return id
		}
	}
	t.Fatalf("[%s] no vertex pair quoted options", b.name)
	return 0
}

// TestV1Conformance runs the route/method/status/error-code table over
// both backends.
func TestV1Conformance(t *testing.T) {
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			cases := []struct {
				name       string
				method     string
				path       string
				body       any
				wantStatus int
				wantCode   string // envelope code ("" = success, no envelope)
				wantAllow  string // non-empty: the Allow header must carry it
			}{
				// Strict method checking: 405 + Allow on every endpoint.
				{"requests wrong method", http.MethodDelete, "/v1/requests", nil, 405, "method_not_allowed", "GET, POST"},
				{"request-by-id wrong method", http.MethodPost, "/v1/requests/1", map[string]any{}, 405, "method_not_allowed", "GET"},
				{"choice wrong method", http.MethodGet, "/v1/requests/1/choice", nil, 405, "method_not_allowed", "POST"},
				{"decline wrong method", http.MethodGet, "/v1/requests/1/decline", nil, 405, "method_not_allowed", "POST"},
				{"ticks wrong method", http.MethodGet, "/v1/ticks", nil, 405, "method_not_allowed", "POST"},
				{"stats wrong method", http.MethodPost, "/v1/stats", map[string]any{}, 405, "method_not_allowed", "GET"},
				{"cities wrong method", http.MethodDelete, "/v1/cities", nil, 405, "method_not_allowed", "GET"},
				{"vehicles wrong method", http.MethodPost, "/v1/vehicles", map[string]any{}, 405, "method_not_allowed", "GET"},
				{"relay wrong method", http.MethodPost, "/v1/relay/1", map[string]any{}, 405, "method_not_allowed", "GET"},
				{"events wrong method", http.MethodPost, "/v1/events", map[string]any{}, 405, "method_not_allowed", "GET"},
				{"params wrong method", http.MethodDelete, "/v1/params", nil, 405, "method_not_allowed", "GET, POST"},
				{"healthz wrong method", http.MethodPost, "/v1/healthz", map[string]any{}, 405, "method_not_allowed", "GET"},
				{"readyz wrong method", http.MethodPost, "/v1/readyz", map[string]any{}, 405, "method_not_allowed", "GET"},
				{"metrics wrong method", http.MethodPost, "/metrics", map[string]any{}, 405, "method_not_allowed", "GET"},

				// Malformed input: 400 invalid_argument.
				{"request unknown field", http.MethodPost, "/v1/requests",
					map[string]any{"s": 1, "d": 2, "riders": 1, "bogus": true}, 400, "invalid_argument", ""},
				{"request no addressing", http.MethodPost, "/v1/requests",
					map[string]any{"riders": 1}, 400, "invalid_argument", ""},
				{"request bad path id", http.MethodGet, "/v1/requests/notanumber", nil, 400, "invalid_argument", ""},
				{"vehicles bad limit", http.MethodGet, "/v1/vehicles?city=" + b.city + "&limit=-1", nil, 400, "invalid_argument", ""},
				{"requests bad limit", http.MethodGet, "/v1/requests?limit=-1", nil, 400, "invalid_argument", ""},
				{"requests bad offset", http.MethodGet, "/v1/requests?offset=-2", nil, 400, "invalid_argument", ""},
				{"requests bad status filter", http.MethodGet, "/v1/requests?status=bogus", nil, 400, "invalid_argument", ""},
				{"tick negative", http.MethodPost, "/v1/ticks",
					map[string]any{"seconds": -1}, 400, "invalid_argument", ""},

				// Unknown resources: 404 with typed codes.
				{"unknown request", http.MethodGet, "/v1/requests/999999", nil, 404, "not_found", ""},
				{"unknown vehicle", http.MethodGet, "/v1/vehicles/999?city=" + b.city, nil, 404, "not_found", ""},
				{"unknown city vehicles", http.MethodGet, "/v1/vehicles?city=atlantis", nil, 404, "unknown_city", ""},
				{"unknown city params", http.MethodGet, "/v1/params?city=atlantis", nil, 404, "unknown_city", ""},
				{"unknown city listing", http.MethodGet, "/v1/requests?city=atlantis", nil, 404, "unknown_city", ""},
				{"unknown relay trip", http.MethodGet, "/v1/relay/999999", nil, 404, "not_found", ""},

				// Business rules: 422.
				{"degenerate endpoints", http.MethodPost, "/v1/requests",
					map[string]any{"city": b.city, "s": 1, "d": 1, "riders": 1}, 422, "unprocessable", ""},
				{"bogus algorithm", http.MethodPost, "/v1/params",
					map[string]any{"city": b.city, "algorithm": "bogus"}, 422, "unprocessable", ""},

				// Happy paths.
				{"cities", http.MethodGet, "/v1/cities", nil, 200, "", ""},
				{"stats", http.MethodGet, "/v1/stats", nil, 200, "", ""},
				{"vehicles", http.MethodGet, "/v1/vehicles?city=" + b.city, nil, 200, "", ""},
				{"vehicle itinerary", http.MethodGet, "/v1/vehicles/0?city=" + b.city, nil, 200, "", ""},
				{"params", http.MethodGet, "/v1/params?city=" + b.city, nil, 200, "", ""},
				{"tick", http.MethodPost, "/v1/ticks", map[string]any{"seconds": 0.5}, 200, "", ""},
				{"request listing", http.MethodGet, "/v1/requests", nil, 200, "", ""},
				{"healthz", http.MethodGet, "/v1/healthz", nil, 200, "", ""},
				{"readyz", http.MethodGet, "/v1/readyz", nil, 200, "", ""},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					resp, out := do(t, tc.method, b.ts.URL+tc.path, tc.body)
					if resp.StatusCode != tc.wantStatus {
						t.Fatalf("status = %d, want %d (%v)", resp.StatusCode, tc.wantStatus, out)
					}
					if got := errCode(t, out); got != tc.wantCode {
						t.Fatalf("error code = %q, want %q (%v)", got, tc.wantCode, out)
					}
					if tc.wantAllow != "" {
						if got := resp.Header.Get("Allow"); got != tc.wantAllow {
							t.Fatalf("Allow = %q, want %q", got, tc.wantAllow)
						}
					}
				})
			}
		})
	}
}

// TestV1RequestLifecycle pins the resource flow — submit, fetch,
// choose, 409 on double-choose, decline — over both backends.
func TestV1RequestLifecycle(t *testing.T) {
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			id := submitQuoted(t, b)

			// The record is addressable and city-tagged.
			resp, out := do(t, http.MethodGet, fmt.Sprintf("%s/v1/requests/%d", b.ts.URL, id), nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("get status %d", resp.StatusCode)
			}
			var city, status string
			json.Unmarshal(out["city"], &city)
			json.Unmarshal(out["status"], &status)
			if city != b.city || status != "quoted" {
				t.Fatalf("record city/status = %q/%q", city, status)
			}

			// Commit, then double-commit: 200 then 409 already_chosen.
			resp, out = do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/choice", b.ts.URL, id),
				map[string]any{"option": 0})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("choice status %d: %v", resp.StatusCode, out)
			}
			resp, out = do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/choice", b.ts.URL, id),
				map[string]any{"option": 0})
			if resp.StatusCode != http.StatusConflict || errCode(t, out) != "already_chosen" {
				t.Fatalf("double choice = %d %q, want 409 already_chosen", resp.StatusCode, errCode(t, out))
			}

			// Declining a committed request is a business error, not 404.
			resp, _ = do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/decline", b.ts.URL, id), nil)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("decline after choice status %d, want 422", resp.StatusCode)
			}

			// A fresh request declines cleanly.
			id2 := submitQuoted(t, b)
			resp, _ = do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/decline", b.ts.URL, id2), nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("decline status %d", resp.StatusCode)
			}
			if st, err := requestStatus(b, id2); err != nil || st != "declined" {
				t.Fatalf("declined record = %q, %v", st, err)
			}
		})
	}
}

func requestStatus(b v1Backend, id int64) (string, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/requests/%d", b.ts.URL, id))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Status, nil
}

// TestV1BatchSubmit pins the batch form of POST /v1/requests on both
// backends: one view per item, in order.
func TestV1BatchSubmit(t *testing.T) {
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			resp, out := do(t, http.MethodPost, b.ts.URL+"/v1/requests", map[string]any{
				"requests": []map[string]any{
					{"city": b.city, "s": 3, "d": 40, "riders": 1},
					{"city": b.city, "s": 5, "d": 44, "riders": 2},
				},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("batch status %d: %v", resp.StatusCode, out)
			}
			var views []map[string]any
			json.Unmarshal(out["requests"], &views)
			if len(views) != 2 {
				t.Fatalf("batch answered %d views, want 2", len(views))
			}
			ids := map[float64]bool{}
			for i, v := range views {
				if v == nil {
					t.Fatalf("batch item %d failed", i)
				}
				if v["city"] != b.city {
					t.Fatalf("batch item %d city = %v", i, v["city"])
				}
				ids[v["id"].(float64)] = true
			}
			if len(ids) != 2 {
				t.Fatalf("batch ids not distinct: %v", ids)
			}
			// A batch with one bad item still answers the good ones and
			// carries the first error.
			resp, out = do(t, http.MethodPost, b.ts.URL+"/v1/requests", map[string]any{
				"requests": []map[string]any{
					{"city": b.city, "s": 3, "d": 40, "riders": 1},
					{"city": b.city, "s": 2, "d": 2, "riders": 1},
				},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mixed batch status %d", resp.StatusCode)
			}
			json.Unmarshal(out["requests"], &views)
			if views[0] == nil || views[1] != nil {
				t.Fatalf("mixed batch views = %v", views)
			}
			if _, ok := out["error"]; !ok {
				t.Fatal("mixed batch carries no error envelope")
			}
		})
	}
}

// TestV1StatsShape pins the uniform composite stats payload (total +
// per-city panels with their sharded-tick TickStats sub-panels, relay
// only when enabled).
func TestV1StatsShape(t *testing.T) {
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			// Tick once so the TickStats panel has something to report.
			if resp, out := do(t, http.MethodPost, b.ts.URL+"/v1/ticks",
				map[string]any{"seconds": 1}); resp.StatusCode != http.StatusOK {
				t.Fatalf("tick status %d: %v", resp.StatusCode, out)
			}

			_, out := do(t, http.MethodGet, b.ts.URL+"/v1/stats", nil)
			var cities map[string]core.EngineStats
			if err := json.Unmarshal(out["cities"], &cities); err != nil {
				t.Fatalf("no cities panel: %v", err)
			}
			if len(cities) != b.numCities {
				t.Fatalf("cities panel has %d entries, want %d", len(cities), b.numCities)
			}
			if _, ok := cities[b.city]; !ok {
				t.Fatalf("cities panel misses %q: %v", b.city, cities)
			}
			if _, ok := out["total"]; !ok {
				t.Fatal("no total panel")
			}
			if _, hasRelay := out["relay"]; hasRelay != b.relay {
				t.Fatalf("relay panel presence = %v, want %v", hasRelay, b.relay)
			}

			// The sharded-tick panel: every city reports a resolved
			// shard width and the tick we just drove; the total carries
			// the cross-city aggregate (worker widths sum).
			var total core.EngineStats
			if err := json.Unmarshal(out["total"], &total); err != nil {
				t.Fatalf("total panel: %v", err)
			}
			workerSum := 0
			for name, st := range cities {
				if st.Tick.Workers < 1 {
					t.Fatalf("city %q Tick.Workers = %d, want >= 1", name, st.Tick.Workers)
				}
				if st.Tick.Ticks < 1 {
					t.Fatalf("city %q Tick.Ticks = %d after a tick", name, st.Tick.Ticks)
				}
				workerSum += st.Tick.Workers
			}
			if total.Tick.Workers != workerSum {
				t.Fatalf("total Tick.Workers = %d, want city sum %d", total.Tick.Workers, workerSum)
			}
			if total.Tick.Ticks < 1 {
				t.Fatalf("total Tick.Ticks = %d after a tick", total.Tick.Ticks)
			}

			var citiesList []map[string]any
			resp, err := http.Get(b.ts.URL + "/v1/cities")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&citiesList); err != nil {
				t.Fatalf("cities decode: %v", err)
			}
			if len(citiesList) != b.numCities || citiesList[0]["name"] == "" {
				t.Fatalf("cities list = %v", citiesList)
			}
		})
	}
}

// TestV1RelayFlow drives a cross-city trip through /v1 on the relay
// backend: coordinate submission, the relay section, the itinerary
// resource, two-phase choice and the 409 on a double-choice.
func TestV1RelayFlow(t *testing.T) {
	router, err := multicity.BuildFromSpecWithConfig("east:10x10:10,west:8x8:8",
		core.Config{Capacity: 4, Algorithm: core.AlgoDualSide}, 5,
		multicity.RouterConfig{EnableRelay: true})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	ts := httptest.NewServer(server.NewService(router).Handler())
	t.Cleanup(ts.Close)

	engE, _ := router.Engine("east")
	engW, _ := router.Engine("west")
	var id int64
	var out map[string]json.RawMessage
	for attempt := 0; attempt < 50; attempt++ {
		o := engE.Graph().Point(engE.RandomVertex())
		d := engW.Graph().Point(engW.RandomVertex())
		var resp *http.Response
		resp, out = do(t, http.MethodPost, ts.URL+"/v1/requests", map[string]any{
			"ox": o.X, "oy": o.Y, "dx": d.X, "dy": d.Y, "riders": 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("relay submit status %d: %v", resp.StatusCode, out)
		}
		var options []json.RawMessage
		json.Unmarshal(out["options"], &options)
		json.Unmarshal(out["id"], &id)
		if len(options) > 0 {
			break
		}
		do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/decline", ts.URL, id), nil)
		id = 0
	}
	if id >= 0 {
		t.Fatalf("no relay quote produced options (last id %d)", id)
	}
	var rv struct {
		Origin string `json:"origin"`
		Dest   string `json:"dest"`
		State  string `json:"state"`
	}
	if err := json.Unmarshal(out["relay"], &rv); err != nil {
		t.Fatalf("no relay section: %v", err)
	}
	if rv.Origin != "east" || rv.Dest != "west" || rv.State != "quoted" {
		t.Fatalf("relay section = %+v", rv)
	}

	// The itinerary is a /v1 resource of its own.
	resp, out := do(t, http.MethodGet, fmt.Sprintf("%s/v1/relay/%d", ts.URL, id), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relay resource status %d", resp.StatusCode)
	}

	// Two-phase commit through the ordinary choice verb, then 409.
	resp, out = do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/choice", ts.URL, id),
		map[string]any{"option": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relay choice status %d: %v", resp.StatusCode, out)
	}
	resp, out = do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/choice", ts.URL, id),
		map[string]any{"option": 0})
	if resp.StatusCode != http.StatusConflict || errCode(t, out) != "already_chosen" {
		t.Fatalf("relay double choice = %d %q, want 409 already_chosen", resp.StatusCode, errCode(t, out))
	}
	resp, out = do(t, http.MethodGet, fmt.Sprintf("%s/v1/relay/%d", ts.URL, id), nil)
	var st struct {
		State string `json:"state"`
		Leg1  int64  `json:"leg1"`
		Leg2  int64  `json:"leg2"`
	}
	raw, _ := json.Marshal(out)
	json.Unmarshal(raw, &st)
	if st.State != "leg1-committed" || st.Leg1 == 0 || st.Leg2 == 0 {
		t.Fatalf("relay trip after commit = %+v", st)
	}
}

// TestV1EventsStream pins GET /v1/events: a subscriber receives the
// pickups produced by POST /v1/ticks as typed SSE messages.
func TestV1EventsStream(t *testing.T) {
	b := singleBackend(t)
	id := submitQuoted(t, b)
	resp, out := do(t, http.MethodPost, fmt.Sprintf("%s/v1/requests/%d/choice", b.ts.URL, id),
		map[string]any{"option": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("choice status %d: %v", resp.StatusCode, out)
	}

	stream, err := http.Get(b.ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream content type %q", ct)
	}
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	// The opening comment confirms the subscription is live before any
	// tick fires.
	select {
	case l := <-lines:
		if !strings.HasPrefix(l, ":") {
			t.Fatalf("first stream line %q is not the open comment", l)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no stream preamble")
	}

	// Tick until the committed pickup fires, watching the stream.
	done := make(chan error, 1)
	go func() {
		deadline := time.After(20 * time.Second)
		var sawEvent, sawData bool
		for {
			select {
			case l, ok := <-lines:
				if !ok {
					done <- fmt.Errorf("stream closed early")
					return
				}
				if l == "event: pickup" {
					sawEvent = true
				}
				if sawEvent && strings.HasPrefix(l, "data: ") && strings.Contains(l, `"kind":"pickup"`) {
					sawData = true
				}
				if sawEvent && sawData {
					done <- nil
					return
				}
			case <-deadline:
				done <- fmt.Errorf("no pickup event on the stream")
				return
			}
		}
	}()
	for i := 0; i < 600; i++ {
		if resp, _ := do(t, http.MethodPost, b.ts.URL+"/v1/ticks", map[string]any{"seconds": 5}); resp.StatusCode != http.StatusOK {
			t.Fatalf("tick status %d", resp.StatusCode)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return
		default:
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
