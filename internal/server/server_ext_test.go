package server_test

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestVehiclesEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var vehicles []struct {
		ID       int32   `json:"id"`
		Location int32   `json:"location"`
		X        float64 `json:"x"`
		Y        float64 `json:"y"`
		Onboard  int     `json:"onboard"`
		Pending  int     `json:"pending_requests"`
	}
	getJSON(t, ts.URL+"/api/vehicles", &vehicles)
	if len(vehicles) != 10 {
		t.Fatalf("vehicles = %d, want 10", len(vehicles))
	}
	for _, v := range vehicles {
		if v.Onboard != 0 || v.Pending != 0 {
			t.Fatalf("fresh vehicle with load: %+v", v)
		}
	}
	getJSON(t, ts.URL+"/api/vehicles?limit=3", &vehicles)
	if len(vehicles) != 3 {
		t.Fatalf("limited vehicles = %d, want 3", len(vehicles))
	}
	r, err := http.Get(ts.URL + "/api/vehicles?limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative limit status %d", r.StatusCode)
	}
}

func TestRequestWithConstraintOverrides(t *testing.T) {
	ts, eng := newTestServer(t)
	// σ = 0: no detour allowed for this rider.
	zero := 0.0
	_, out := postJSON(t, ts.URL+"/api/request", map[string]any{
		"s": 3, "d": 40, "riders": 1, "wait_seconds": 60, "sigma": zero,
	})
	var id int64
	json.Unmarshal(out["id"], &id)
	if id == 0 {
		t.Fatalf("no id in %v", out)
	}
	rec, err := eng.Request(1)
	if err != nil {
		t.Fatalf("engine record: %v", err)
	}
	if rec.WaitSeconds != 60 || rec.Sigma != 0 {
		t.Fatalf("constraints not applied: wait=%v sigma=%v", rec.WaitSeconds, rec.Sigma)
	}

	// Omitted sigma keeps the global.
	_, out = postJSON(t, ts.URL+"/api/request", map[string]any{
		"s": 5, "d": 44, "riders": 1,
	})
	json.Unmarshal(out["id"], &id)
	rec, err = eng.Request(2)
	if err != nil {
		t.Fatalf("engine record 2: %v", err)
	}
	if rec.Sigma != eng.Config().Sigma {
		t.Fatalf("global sigma not applied: %v", rec.Sigma)
	}
}
