package server_test

// HTTP-level contract of the Idempotency-Key request header on
// POST /v1/requests (and the legacy /api/request alias): a retried
// submission with the same key answers with the original record
// instead of quoting a second request.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

func postWithKey(t *testing.T, url, key string, body any) map[string]json.RawMessage {
	t.Helper()
	b, _ := json.Marshal(body)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func idOf(t *testing.T, view map[string]json.RawMessage) int64 {
	t.Helper()
	var id int64
	if err := json.Unmarshal(view["id"], &id); err != nil {
		t.Fatalf("id field: %v", err)
	}
	return id
}

func TestIdempotencyKeyHeader(t *testing.T) {
	ts, eng := newTestServer(t)
	body := map[string]any{"s": 3, "d": 40, "riders": 1}

	first := postWithKey(t, ts.URL+"/v1/requests", "retry-1", body)
	before := eng.Stats().Requests

	// Same key, even with different endpoints: the original answers.
	second := postWithKey(t, ts.URL+"/v1/requests", "retry-1", map[string]any{"s": 7, "d": 12, "riders": 1})
	if idOf(t, first) != idOf(t, second) {
		t.Fatalf("retried submission forked: id %d then %d", idOf(t, first), idOf(t, second))
	}
	if after := eng.Stats().Requests; after != before {
		t.Fatalf("retry registered a new request: %d → %d", before, after)
	}

	// A different key is a different submission.
	third := postWithKey(t, ts.URL+"/v1/requests", "retry-2", body)
	if idOf(t, third) == idOf(t, first) {
		t.Fatalf("distinct keys collapsed onto id %d", idOf(t, first))
	}

	// No key: every submission is fresh.
	a := postWithKey(t, ts.URL+"/v1/requests", "", body)
	b := postWithKey(t, ts.URL+"/v1/requests", "", body)
	if idOf(t, a) == idOf(t, b) {
		t.Fatalf("keyless submissions deduplicated onto id %d", idOf(t, a))
	}

	// The legacy alias honours the header too.
	l1 := postWithKey(t, ts.URL+"/api/request", "legacy-1", body)
	l2 := postWithKey(t, ts.URL+"/api/request", "legacy-1", body)
	if idOf(t, l1) != idOf(t, l2) {
		t.Fatalf("legacy alias forked: id %d then %d", idOf(t, l1), idOf(t, l2))
	}
}

// TestStatsDurabilityPanel verifies the /v1/stats payload carries the
// engine's durability panel (mode "off" on a journal-free backend —
// the field must be present either way).
func TestStatsDurabilityPanel(t *testing.T) {
	ts, _ := newTestServer(t)
	var out struct {
		Total struct {
			Durability struct {
				Mode string `json:"Mode"`
			} `json:"Durability"`
		} `json:"total"`
	}
	resp := getJSON(t, ts.URL+"/v1/stats", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if out.Total.Durability.Mode != "off" {
		t.Fatalf("durability panel mode %q, want \"off\"", out.Total.Durability.Mode)
	}
}
