package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/multicity"
	"ptrider/internal/server"
)

// newMultiServer spins up a two-city router behind the multi-city HTTP
// layer.
func newMultiServer(t *testing.T) (*httptest.Server, *multicity.Router) {
	t.Helper()
	router, err := multicity.BuildFromSpec("east:8x8:6,west:6x6:4",
		core.Config{GridCols: 4, GridRows: 4, Capacity: 4, Algorithm: core.AlgoDualSide}, 5)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	ts := httptest.NewServer(server.NewMulti(router).Handler())
	t.Cleanup(ts.Close)
	return ts, router
}

func TestMultiCitiesEndpoint(t *testing.T) {
	ts, _ := newMultiServer(t)
	var cities []map[string]any
	resp := getJSON(t, ts.URL+"/api/cities", &cities)
	if resp.StatusCode != http.StatusOK || len(cities) != 2 {
		t.Fatalf("cities = %d: %v", resp.StatusCode, cities)
	}
	if cities[0]["name"] != "east" || cities[1]["name"] != "west" {
		t.Fatalf("city names = %v", cities)
	}
	if cities[0]["vehicles"].(float64) != 6 || cities[1]["vehicles"].(float64) != 4 {
		t.Fatalf("city fleets = %v", cities)
	}
}

func TestMultiRequestByCityAndVertex(t *testing.T) {
	ts, router := newMultiServer(t)
	resp, out := postJSON(t, ts.URL+"/api/request", map[string]any{
		"city": "west", "s": 3, "d": 30, "riders": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request status %d: %v", resp.StatusCode, out)
	}
	var city string
	json.Unmarshal(out["city"], &city)
	if city != "west" {
		t.Fatalf("record city = %q", city)
	}
	var id int64
	json.Unmarshal(out["id"], &id)
	if id == 0 {
		t.Fatal("no id in response")
	}

	// The id is global: the router resolves it back to west's record.
	rec, err := router.Request(core.RequestID(id))
	if err != nil || rec.City != "west" {
		t.Fatalf("router record: %+v, %v", rec, err)
	}

	// GET the record back over HTTP, choose or decline.
	var got map[string]json.RawMessage
	getJSON(t, fmt.Sprintf("%s/api/request?id=%d", ts.URL, id), &got)
	var options []map[string]any
	json.Unmarshal(got["options"], &options)
	if len(options) > 0 {
		resp, _ := postJSON(t, ts.URL+"/api/choose", map[string]any{"id": id, "option": 0})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("choose status %d", resp.StatusCode)
		}
	} else {
		resp, _ := postJSON(t, ts.URL+"/api/decline", map[string]any{"id": id})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decline status %d", resp.StatusCode)
		}
	}
}

func TestMultiRequestByCoordinatesAndCrossCity(t *testing.T) {
	ts, router := newMultiServer(t)
	east, _ := router.Engine("east")
	west, _ := router.Engine("west")
	eo := east.Graph().Point(2)
	ed := east.Graph().Point(50)
	wo := west.Graph().Point(1)

	resp, out := postJSON(t, ts.URL+"/api/request", map[string]any{
		"ox": eo.X, "oy": eo.Y, "dx": ed.X, "dy": ed.Y, "riders": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coord request status %d: %v", resp.StatusCode, out)
	}
	var city string
	json.Unmarshal(out["city"], &city)
	if city != "east" {
		t.Fatalf("coord request city = %q, want east", city)
	}

	// Cross-city pair: typed rejection surfaces as 422 with the city
	// pair in the structured error envelope.
	resp, out = postJSON(t, ts.URL+"/api/request", map[string]any{
		"ox": eo.X, "oy": eo.Y, "dx": wo.X, "dy": wo.Y, "riders": 1,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("cross-city status = %d, want 422", resp.StatusCode)
	}
	var envelope struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Origin  string `json:"origin"`
		Dest    string `json:"dest"`
	}
	json.Unmarshal(out["error"], &envelope)
	if envelope.Code != "cross_city" || envelope.Origin != "east" || envelope.Dest != "west" {
		t.Fatalf("cross-city envelope %+v lacks detail", envelope)
	}
	if !strings.Contains(envelope.Message, "cross-city") {
		t.Fatalf("cross-city message %q lacks detail", envelope.Message)
	}

	// Underspecified body: neither addressing mode.
	resp, _ = postJSON(t, ts.URL+"/api/request", map[string]any{"riders": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("underspecified request status = %d, want 400", resp.StatusCode)
	}
}

func TestMultiStatsHasCityDimension(t *testing.T) {
	ts, router := newMultiServer(t)
	// Traffic in east only: the west panel must stay clean.
	if _, err := router.SubmitIn("east", 1, 40, 1, core.DefaultConstraints()); err != nil {
		t.Fatalf("submit east: %v", err)
	}

	var out map[string]json.RawMessage
	getJSON(t, ts.URL+"/api/stats", &out)
	var total core.EngineStats
	var cities map[string]core.EngineStats
	json.Unmarshal(out["total"], &total)
	json.Unmarshal(out["cities"], &cities)
	if cities["east"].Requests != 1 || cities["west"].Requests != 0 {
		t.Fatalf("per-city requests = %d/%d", cities["east"].Requests, cities["west"].Requests)
	}
	if total.Requests != 1 {
		t.Fatalf("total requests = %d", total.Requests)
	}
	if total.ActiveVehicles != 10 {
		t.Fatalf("total vehicles = %d, want 10", total.ActiveVehicles)
	}
}

func TestMultiTickAdvancesAllCities(t *testing.T) {
	ts, router := newMultiServer(t)
	resp, out := postJSON(t, ts.URL+"/api/tick", map[string]any{"seconds": 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %v", resp.StatusCode, out)
	}
	var clock float64
	json.Unmarshal(out["clock"], &clock)
	if clock != 4 {
		t.Fatalf("clock = %v", clock)
	}
	st := router.Stats()
	if st.Cities["east"].Clock != 4 || st.Cities["west"].Clock != 4 {
		t.Fatalf("city clocks = %v / %v", st.Cities["east"].Clock, st.Cities["west"].Clock)
	}

	// Caller error classification carries over: negative seconds is 400.
	resp, _ = postJSON(t, ts.URL+"/api/tick", map[string]any{"seconds": -2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative tick status = %d, want 400", resp.StatusCode)
	}
	if st := router.Stats(); st.Total.Clock != 4 {
		t.Fatalf("negative tick moved clock to %v", st.Total.Clock)
	}
}

func TestMultiCityScopedViews(t *testing.T) {
	ts, _ := newMultiServer(t)

	// vehicles needs a city.
	r, err := http.Get(ts.URL + "/api/vehicles")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing city status = %d, want 400", r.StatusCode)
	}

	var out map[string]json.RawMessage
	resp := getJSON(t, ts.URL+"/api/vehicles?city=east", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vehicles status %d", resp.StatusCode)
	}
	var vehicles []map[string]any
	json.Unmarshal(out["vehicles"], &vehicles)
	if len(vehicles) != 6 {
		t.Fatalf("east vehicles = %d, want 6", len(vehicles))
	}

	// Unknown city is 404.
	r, err = http.Get(ts.URL + "/api/vehicles?city=atlantis")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown city status = %d, want 404", r.StatusCode)
	}

	// taxi and params are city-scoped too.
	var taxi map[string]any
	resp = getJSON(t, ts.URL+"/api/taxi?city=west&id=0", &taxi)
	if resp.StatusCode != http.StatusOK || taxi["city"] != "west" {
		t.Fatalf("taxi view = %d %v", resp.StatusCode, taxi)
	}
	var params map[string]any
	resp = getJSON(t, ts.URL+"/api/params?city=west", &params)
	if resp.StatusCode != http.StatusOK || params["city"] != "west" {
		t.Fatalf("params view = %d %v", resp.StatusCode, params)
	}

	// Per-city algorithm switch touches only that city.
	resp, _ = postJSON(t, ts.URL+"/api/params", map[string]any{"city": "west", "algorithm": "naive"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("params post status %d", resp.StatusCode)
	}
	var eastParams map[string]any
	getJSON(t, ts.URL+"/api/params?city=east", &eastParams)
	if eastParams["algorithm"] != "dual-side" {
		t.Fatalf("east algorithm changed to %v", eastParams["algorithm"])
	}

	// The map renders per city.
	r, err = http.Get(ts.URL + "/api/map?city=east&width=40&height=20")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("map status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("map content type %q", ct)
	}
}

// newRelayMultiServer spins a relay-enabled two-city router behind the
// multi-city HTTP layer.
func newRelayMultiServer(t *testing.T) (*httptest.Server, *multicity.Router) {
	t.Helper()
	router, err := multicity.BuildFromSpecWithConfig("east:10x10:10,west:8x8:8",
		core.Config{Capacity: 4, Algorithm: core.AlgoDualSide}, 5,
		multicity.RouterConfig{EnableRelay: true})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	ts := httptest.NewServer(server.NewMulti(router).Handler())
	t.Cleanup(ts.Close)
	return ts, router
}

// relayRequestHTTP posts cross-city coordinate requests until one
// quotes a non-empty joint skyline, returning its decoded body.
func relayRequestHTTP(t *testing.T, ts *httptest.Server, router *multicity.Router) map[string]json.RawMessage {
	t.Helper()
	engE, _ := router.Engine("east")
	engW, _ := router.Engine("west")
	ge, gw := engE.Graph(), engW.Graph()
	for attempt := 0; attempt < 50; attempt++ {
		o := ge.Point(engE.RandomVertex())
		d := gw.Point(engW.RandomVertex())
		resp, out := postJSON(t, ts.URL+"/api/request", map[string]any{
			"ox": o.X, "oy": o.Y, "dx": d.X, "dy": d.Y, "riders": 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("relay request status %d: %v", resp.StatusCode, out)
		}
		var options []map[string]any
		json.Unmarshal(out["options"], &options)
		if len(options) > 0 {
			return out
		}
		var id int64
		json.Unmarshal(out["id"], &id)
		postJSON(t, ts.URL+"/api/decline", map[string]any{"id": id})
	}
	t.Fatal("no relay quote produced options in 50 attempts")
	return nil
}

func TestMultiRelayRequestChooseAndStatus(t *testing.T) {
	ts, router := newRelayMultiServer(t)
	out := relayRequestHTTP(t, ts, router)

	var id int64
	json.Unmarshal(out["id"], &id)
	if id >= 0 {
		t.Fatalf("relay record id %d not negative", id)
	}
	var rv struct {
		Origin  string `json:"origin"`
		Dest    string `json:"dest"`
		State   string `json:"state"`
		Options []struct {
			Fare      float64 `json:"fare"`
			Leg1Price float64 `json:"leg1_price"`
			Leg2Price float64 `json:"leg2_price"`
		} `json:"options"`
	}
	if err := json.Unmarshal(out["relay"], &rv); err != nil {
		t.Fatalf("no relay section: %v (%s)", err, out["relay"])
	}
	if rv.Origin != "east" || rv.Dest != "west" || rv.State != "quoted" {
		t.Fatalf("relay section = %+v", rv)
	}
	for i, o := range rv.Options {
		if o.Fare != o.Leg1Price+o.Leg2Price {
			t.Fatalf("option %d fare %v != leg sum", i, o.Fare)
		}
	}

	// Choose commits both legs through the ordinary choose endpoint.
	resp, body := postJSON(t, ts.URL+"/api/choose", map[string]any{"id": id, "option": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("choose status %d: %v", resp.StatusCode, body)
	}

	// The relay status endpoint reports the committed trip.
	var st struct {
		State string `json:"state"`
		Leg1  int64  `json:"leg1"`
		Leg2  int64  `json:"leg2"`
	}
	resp = getJSON(t, fmt.Sprintf("%s/api/relay?id=%d", ts.URL, id), &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relay status %d", resp.StatusCode)
	}
	if st.State != "leg1-committed" || st.Leg1 == 0 || st.Leg2 == 0 {
		t.Fatalf("relay trip status = %+v", st)
	}

	// The stats panel carries the relay section.
	var stats map[string]json.RawMessage
	getJSON(t, ts.URL+"/api/stats", &stats)
	var rstats struct {
		Quoted    int64 `json:"Quoted"`
		Committed int64 `json:"Committed"`
	}
	if err := json.Unmarshal(stats["relay"], &rstats); err != nil {
		t.Fatalf("stats relay section: %v", err)
	}
	if rstats.Quoted == 0 || rstats.Committed != 1 {
		t.Fatalf("relay stats = %+v", rstats)
	}

	// Ticking advances the trip's ledger alongside the fleets.
	resp, body = postJSON(t, ts.URL+"/api/tick", map[string]any{"seconds": 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %v", resp.StatusCode, body)
	}
}

func TestMultiRelayDisabled(t *testing.T) {
	ts, _ := newMultiServer(t)
	r, err := http.Get(ts.URL + "/api/relay?id=-1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("relay endpoint without relay = %d, want 404", r.StatusCode)
	}
}
