// Package wal is PTRider's write-ahead event journal: a length-prefixed,
// CRC32-checksummed append-only log of engine state mutations, plus
// atomically-written snapshot files, so a city shard can crash and
// restart without losing its ledger (ROADMAP: horizontal scale-out).
//
// # Layout
//
// A journal directory holds numbered segments and snapshots:
//
//	journal-00000001.wal   records appended since snapshot 1 (or genesis)
//	snapshot-00000003.snap engine state before segment 3's first record
//	journal-00000003.wal   the live tail
//
// Each segment starts with an 8-byte magic and then holds records of
// the form ⟨uint32 length | uint32 CRC32C(payload) | payload⟩, both
// little-endian (CRC32C — the Castagnoli polynomial — is hardware-
// accelerated on the platforms this runs on). The payload is opaque to
// this package — the engine journals operation outcomes in its own
// binary record codec. A snapshot named K captures
// the state with every record of segments < K applied; recovery loads
// the newest valid snapshot and replays the segments ≥ K in order.
//
// # Group commit
//
// Append never performs I/O itself: it encodes the record into the
// current in-memory batch under a short lock and signals the single
// flusher goroutine, which writes and fsyncs whole batches. In Sync
// mode the returned Commit waits for the batch's fsync (many concurrent
// appenders share one fsync — the group commit); in Async mode the
// caller proceeds immediately and the tail since the last flush is the
// crash-loss window. Async batches are still written promptly, but
// their fsyncs are paced to one per asyncSyncInterval — the loss
// window is time-bounded anyway, so per-batch device syncs would buy
// nothing and cost a core.
//
// Appends are not internally ordered against each other: the caller
// must serialise Append calls that need a defined journal order (the
// engine appends under its ledger lock, which is also what makes the
// journal order the ledger linearisation). Rotate and Snapshot assume
// no concurrent appends for the same reason.
//
// # Crash simulation
//
// The package doubles as its own fault-injection harness: an Injector
// arms named crash points (consulted by the engine around appends and
// by this package inside snapshot writes) and torn-write faults
// (consulted by the flusher). A fired fault kills the journal — every
// later operation fails with ErrCrashed, simulating process death with
// whatever bytes made it to disk — and tests then recover the directory
// into a fresh engine and verify equivalence.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ptrider/internal/telemetry"
)

// crcTable is the record checksum polynomial (CRC32C / Castagnoli,
// hardware-accelerated where the CPU supports it).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Mode selects the append durability contract.
type Mode int

// Durability modes. Off exists so callers can thread one knob through;
// a journal is only ever created in Async or Sync mode.
const (
	// ModeOff disables journaling entirely (no Journal is created).
	ModeOff Mode = iota
	// ModeAsync acknowledges appends before they are on disk; the tail
	// since the last flushed batch is the crash-loss window.
	ModeAsync
	// ModeSync makes Commit.Wait block until the record's batch is
	// fsynced — group commit amortises the fsync across concurrent
	// appenders.
	ModeSync
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAsync:
		return "async"
	case ModeSync:
		return "sync"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode maps a flag value to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return ModeOff, nil
	case "async":
		return ModeAsync, nil
	case "sync":
		return ModeSync, nil
	}
	return 0, fmt.Errorf("wal: unknown durability mode %q", s)
}

// Errors of the journal lifecycle.
var (
	// ErrCrashed reports that the journal was killed by an injected
	// fault (or Kill): the simulated process is dead and the caller
	// should recover from disk into a fresh instance.
	ErrCrashed = errors.New("wal: journal crashed (simulated process death)")
	// ErrClosed reports an operation on a cleanly closed journal.
	ErrClosed = errors.New("wal: journal closed")
)

const (
	segMagic  = "PTWALSG1"
	snapMagic = "PTWALSN1"
	// maxRecord bounds a single record payload; a longer length prefix
	// is treated as corruption.
	maxRecord = 1 << 28
)

// segName/snapName build the numbered file names.
func segName(seg uint64) string  { return fmt.Sprintf("journal-%08d.wal", seg) }
func snapName(seg uint64) string { return fmt.Sprintf("snapshot-%08d.snap", seg) }

// Options parameterises Open.
type Options struct {
	// Mode must be ModeAsync or ModeSync.
	Mode Mode
	// Injector, when non-nil, arms simulated crashes (tests).
	Injector *Injector
	// NoFsync skips fsync calls (benchmark baseline; crash-unsafe).
	NoFsync bool
	// AppendHist / FsyncHist, when non-nil, observe batch-write and
	// fsync wall times (seconds). Nil histograms are no-ops, so the
	// flusher records unconditionally.
	AppendHist *telemetry.LatencyHist
	FsyncHist  *telemetry.LatencyHist
}

// batch is one group-commit unit: records accumulated since the last
// flush, plus the completion signal its Sync-mode appenders wait on.
type batch struct {
	buf  []byte
	n    int
	done chan struct{}
	err  error
}

func newBatch() *batch { return &batch{done: make(chan struct{})} }

// spareCap bounds the recycled batch buffer: a rare huge batch should
// not pin its allocation for the journal's lifetime.
const spareCap = 1 << 20

// asyncSyncInterval paces fsyncs in Async mode: batches are written as
// they fill, but the device sync happens at most this often. Async's
// contract is already "the unflushed tail may be lost", so the pacing
// only time-bounds that window; Sync() and Close still force a real
// fsync at durability boundaries (rotation, snapshots, shutdown).
const asyncSyncInterval = 50 * time.Millisecond

// newBatchLocked builds the next accumulating batch, reusing the last
// flushed batch's buffer when one is parked. Caller holds j.mu.
func (j *Journal) newBatchLocked() *batch {
	b := newBatch()
	if j.spare != nil {
		b.buf, j.spare = j.spare, nil
	}
	return b
}

// Journal is an append-only segmented record log with group commit.
// Append may be called concurrently; Rotate, Sync and Close require
// that no appends are in flight (the engine guarantees this by
// appending only under its ledger lock).
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cur      *batch // accumulating batch
	flushing *batch // batch being written, nil between flushes
	spare    []byte // recycled batch buffer (appends run at disk rate)
	f        *os.File
	seg      uint64
	dead     bool
	closed   bool

	kick chan struct{}
	stop chan struct{}
	exit chan struct{}

	// lastSync is the flusher's async fsync pacing clock (flusher-only;
	// read by nothing else, so it needs no lock).
	lastSync time.Time

	records atomic.Int64
	bytes   atomic.Int64
	batches atomic.Int64
	fsyncs  atomic.Int64
	fsyncNs atomic.Int64
	maxN    atomic.Int64
}

// Open opens (or creates) the journal directory for appending into
// segment seg — pass Recovered.NextSeg after Recover, or 1 for a fresh
// directory (0 is treated as 1).
func Open(dir string, seg uint64, opts Options) (*Journal, error) {
	if opts.Mode != ModeAsync && opts.Mode != ModeSync {
		return nil, fmt.Errorf("wal: open with mode %v", opts.Mode)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if seg == 0 {
		seg = 1
	}
	f, err := openSegment(dir, seg)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:      dir,
		opts:     opts,
		cur:      newBatch(),
		f:        f,
		seg:      seg,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		exit:     make(chan struct{}),
		lastSync: time.Now(),
	}
	go j.flusher()
	return j, nil
}

// openSegment opens segment seg for appending, stamping the magic into
// a fresh file.
func openSegment(dir string, seg uint64) (*os.File, error) {
	path := filepath.Join(dir, segName(seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		syncDir(dir)
	}
	return f, nil
}

// syncDir fsyncs a directory so renames and creations are durable.
// Best-effort: some platforms refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Commit is an Append's durability handle: Wait blocks until the
// record's batch is on disk (Sync mode) or returns immediately (Async
// mode, or the zero Commit).
type Commit struct{ b *batch }

// Wait blocks until the record's group-commit batch completed and
// returns its flush error. Safe to call on the zero value.
func (c Commit) Wait() error {
	if c.b == nil {
		return nil
	}
	<-c.b.done
	return c.b.err
}

// Append encodes one record into the current group-commit batch and
// signals the flusher. It never blocks on I/O; in Sync mode the caller
// waits on the returned Commit after releasing its own locks.
func (j *Journal) Append(payload []byte) (Commit, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	j.mu.Lock()
	if j.dead {
		j.mu.Unlock()
		return Commit{}, ErrCrashed
	}
	if j.closed {
		j.mu.Unlock()
		return Commit{}, ErrClosed
	}
	b := j.cur
	b.buf = append(b.buf, hdr[:]...)
	b.buf = append(b.buf, payload...)
	b.n++
	j.mu.Unlock()

	j.records.Add(1)
	j.bytes.Add(int64(len(payload) + 8))
	select {
	case j.kick <- struct{}{}:
	default:
	}
	if j.opts.Mode == ModeSync {
		return Commit{b: b}, nil
	}
	return Commit{}, nil
}

// flusher is the single group-commit goroutine: it swaps the
// accumulating batch out under the lock, writes and fsyncs it, and
// completes its waiters.
func (j *Journal) flusher() {
	defer close(j.exit)
	for {
		select {
		case <-j.kick:
			j.flushOnce()
		case <-j.stop:
			j.flushOnce()
			return
		}
	}
}

// flushOnce writes the accumulated batch, if any.
func (j *Journal) flushOnce() {
	j.mu.Lock()
	b := j.cur
	if len(b.buf) == 0 || j.dead {
		j.mu.Unlock()
		return
	}
	j.cur = j.newBatchLocked()
	j.flushing = b
	f := j.f
	j.mu.Unlock()

	if keep, torn := j.opts.Injector.tornWrite(len(b.buf)); torn {
		// Simulated crash mid-write: a prefix of the batch lands, no
		// fsync, and the journal dies with the partial record on disk.
		_, _ = f.Write(b.buf[:keep])
		j.mu.Lock()
		j.dead = true
		j.flushing = nil
		dying := j.cur
		j.cur = newBatch()
		j.mu.Unlock()
		b.err = ErrCrashed
		close(b.done)
		if dying.n > 0 {
			dying.err = ErrCrashed
			close(dying.done)
		}
		return
	}

	w0 := time.Now()
	_, err := f.Write(b.buf)
	j.opts.AppendHist.ObserveSince(w0)
	if err == nil && !j.opts.NoFsync &&
		(j.opts.Mode == ModeSync || time.Since(j.lastSync) >= asyncSyncInterval) {
		t0 := time.Now()
		err = f.Sync()
		j.lastSync = time.Now()
		j.fsyncNs.Add(time.Since(t0).Nanoseconds())
		j.fsyncs.Add(1)
		j.opts.FsyncHist.ObserveSince(t0)
	}
	j.batches.Add(1)
	if n := int64(b.n); n > j.maxN.Load() {
		j.maxN.Store(n) // single flusher: load/store does not race
	}
	j.mu.Lock()
	j.flushing = nil
	if cap(b.buf) <= spareCap {
		j.spare = b.buf[:0] // written out; recycle for the next batch
	}
	j.mu.Unlock()
	b.err = err
	close(b.done)
}

// Sync flushes every appended record and waits for its fsync.
func (j *Journal) Sync() error {
	j.mu.Lock()
	if j.dead {
		j.mu.Unlock()
		return ErrCrashed
	}
	var b *batch
	if len(j.cur.buf) > 0 {
		b = j.cur
	} else {
		b = j.flushing
	}
	j.mu.Unlock()
	if b != nil {
		select {
		case j.kick <- struct{}{}:
		default:
		}
		<-b.done
		if b.err != nil {
			return b.err
		}
	}
	// Async pacing may have skipped the last batches' device sync, but
	// Sync promises a real fsync in every mode (rotation and snapshot
	// boundaries depend on it).
	if j.opts.Mode == ModeAsync && !j.opts.NoFsync {
		j.mu.Lock()
		if j.dead {
			j.mu.Unlock()
			return ErrCrashed
		}
		f := j.f
		j.mu.Unlock()
		if f != nil {
			if err := f.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Segment returns the segment currently being appended to.
func (j *Journal) Segment() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seg
}

// Rotate flushes the current segment and starts the next one, returning
// its number. The caller must guarantee no concurrent appends (the
// engine holds its ledger lock); a snapshot named with the returned
// number captures the state with everything before it applied.
func (j *Journal) Rotate() (uint64, error) {
	if err := j.Sync(); err != nil {
		return 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return 0, ErrCrashed
	}
	if j.closed {
		return 0, ErrClosed
	}
	seg := j.seg + 1
	f, err := openSegment(j.dir, seg)
	if err != nil {
		return 0, err
	}
	_ = j.f.Sync()
	_ = j.f.Close()
	j.f = f
	j.seg = seg
	return seg, nil
}

// Kill marks the journal dead without flushing — the simulated process
// death used by the crash harness. Waiters of the accumulating batch
// fail with ErrCrashed; a batch already being flushed completes
// normally (a real crash can land just after an fsync too).
func (j *Journal) Kill() {
	j.mu.Lock()
	if j.dead || j.closed {
		j.mu.Unlock()
		return
	}
	j.dead = true
	b := j.cur
	j.cur = newBatch()
	j.mu.Unlock()
	if b.n > 0 {
		b.err = ErrCrashed
		close(b.done)
	}
}

// Dead reports whether the journal was killed.
func (j *Journal) Dead() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dead
}

// Close flushes, fsyncs and closes the journal. A killed journal
// closes its file without flushing.
func (j *Journal) Close() error {
	serr := j.Sync()
	if serr == ErrCrashed {
		serr = nil // dead journals close silently; the crash already surfaced
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	f := j.f
	j.mu.Unlock()
	close(j.stop)
	<-j.exit
	if f != nil {
		if !j.opts.NoFsync {
			_ = f.Sync()
		}
		if err := f.Close(); err != nil && serr == nil {
			serr = err
		}
	}
	return serr
}

// Stats is the journal's observability panel.
type Stats struct {
	// Records and Bytes count everything appended (headers included in
	// Bytes).
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Batches and Fsyncs count group-commit flushes; MaxBatch is the
	// largest record count one flush carried (the group-commit win).
	Batches  int64 `json:"batches"`
	Fsyncs   int64 `json:"fsyncs"`
	MaxBatch int64 `json:"max_batch"`
	// AvgFsyncMicros is the mean fsync latency.
	AvgFsyncMicros float64 `json:"avg_fsync_micros"`
	// Segment is the live tail segment number.
	Segment uint64 `json:"segment"`
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() Stats {
	s := Stats{
		Records:  j.records.Load(),
		Bytes:    j.bytes.Load(),
		Batches:  j.batches.Load(),
		Fsyncs:   j.fsyncs.Load(),
		MaxBatch: j.maxN.Load(),
		Segment:  j.Segment(),
	}
	if s.Fsyncs > 0 {
		s.AvgFsyncMicros = float64(j.fsyncNs.Load()) / float64(s.Fsyncs) / 1e3
	}
	return s
}
