package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Recovered is the outcome of scanning a journal directory: the newest
// valid snapshot (if any) plus every intact record appended after it,
// in order, ready to be replayed into a fresh engine.
type Recovered struct {
	// SnapshotSeg names the snapshot that Snapshot holds (0 = none;
	// replay starts from genesis).
	SnapshotSeg uint64
	// Snapshot is the validated snapshot payload, nil when none.
	Snapshot []byte
	// Records are the surviving record payloads of segments ≥
	// SnapshotSeg, in append order.
	Records [][]byte
	// NextSeg is the segment number a reopened journal should append
	// to — one past the newest segment seen (or SnapshotSeg/1).
	NextSeg uint64

	// TruncatedBytes counts bytes chopped off a torn or corrupt tail.
	TruncatedBytes int64
	// DroppedSegments counts segments discarded because an earlier
	// segment was truncated (records after a tear are unordered noise).
	DroppedSegments int
	// CorruptSnapshots counts snapshot files that failed validation
	// and were skipped in favour of an older one.
	CorruptSnapshots int
}

// Recover scans dir and returns the newest consistent state: the best
// valid snapshot plus the intact journal tail. Corruption handling:
//
//   - A snapshot that fails validation is skipped (counted) and the
//     next-older one is tried; *.tmp leftovers are removed.
//   - A record with a bad length or checksum, or a partial header,
//     tears the segment: the file is truncated back to the last intact
//     record and all later segments are dropped (counted) — bytes
//     after a tear have no defined order.
//
// A missing or empty directory recovers to the zero state (NextSeg 1).
func Recover(dir string) (*Recovered, error) {
	rec := &Recovered{NextSeg: 1}
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}

	var segs, snaps []uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash mid-snapshot (or mid-anything) leaves temp files;
			// they were never visible state.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		var n uint64
		switch {
		case parseName(name, "journal-", ".wal", &n):
			segs = append(segs, n)
		case parseName(name, "snapshot-", ".snap", &n):
			snaps = append(snaps, n)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })

	// Newest valid snapshot wins; invalid ones fall back older.
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, err := ReadSnapshot(dir, snaps[i])
		if err != nil {
			rec.CorruptSnapshots++
			continue
		}
		rec.SnapshotSeg = snaps[i]
		rec.Snapshot = payload
		break
	}

	torn := false
	for _, seg := range segs {
		if seg < rec.SnapshotSeg {
			continue // covered by the snapshot
		}
		if torn {
			// A tear in an earlier segment makes later segments
			// unreachable state — a correct writer never starts
			// segment K+1 before K is complete.
			rec.DroppedSegments++
			_ = os.Remove(filepath.Join(dir, segName(seg)))
			continue
		}
		records, trunc, err := scanSegment(filepath.Join(dir, segName(seg)))
		if err != nil {
			return nil, err
		}
		rec.Records = append(rec.Records, records...)
		if trunc > 0 {
			rec.TruncatedBytes += trunc
			torn = true
		}
		if seg+1 > rec.NextSeg {
			rec.NextSeg = seg + 1
		}
	}
	if rec.SnapshotSeg+1 > rec.NextSeg {
		rec.NextSeg = rec.SnapshotSeg + 1
	}
	return rec, nil
}

// scanSegment reads every intact record of one segment file. On a torn
// or corrupt suffix it truncates the file back to the last intact
// record and reports how many bytes were dropped.
func scanSegment(path string) (records [][]byte, truncated int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if len(raw) < len(segMagic) || string(raw[:len(segMagic)]) != segMagic {
		// Unrecognisable segment: treat the whole file as torn.
		if err := truncateTo(path, 0); err != nil {
			return nil, 0, err
		}
		return nil, int64(len(raw)), nil
	}
	off := len(segMagic)
	good := off
	for off < len(raw) {
		if off+8 > len(raw) {
			break // partial header
		}
		n := binary.LittleEndian.Uint32(raw[off : off+4])
		sum := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if n > maxRecord || off+8+int(n) > len(raw) {
			break // insane length or partial payload
		}
		payload := raw[off+8 : off+8+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit rot or a torn rewrite
		}
		records = append(records, payload)
		off += 8 + int(n)
		good = off
	}
	if good < len(raw) {
		truncated = int64(len(raw) - good)
		if err := truncateTo(path, int64(good)); err != nil {
			return nil, 0, err
		}
	}
	return records, truncated, nil
}

func truncateTo(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// newestSegment finds the highest-numbered segment in dir (0 when
// none) — used by the corruption helpers.
func newestSegment(dir string) (uint64, string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, "", fmt.Errorf("wal: %w", err)
	}
	var best uint64
	var path string
	for _, e := range ents {
		var n uint64
		if parseName(e.Name(), "journal-", ".wal", &n) && n >= best {
			best = n
			path = filepath.Join(dir, e.Name())
		}
	}
	return best, path, nil
}
