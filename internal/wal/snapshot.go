package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file format: 8-byte magic, then uint32 LE payload length,
// uint32 LE CRC32C(payload), payload. Written to a temp file, fsynced,
// and renamed into place so a crash mid-write never clobbers an older
// valid snapshot.

// WriteSnapshot durably writes payload as the snapshot named seg —
// the engine state with every record of segments < seg applied. The
// injector's mid-snapshot crash point fires after roughly half the
// payload reaches the temp file (no rename: the snapshot must not
// become visible), returning ErrCrashed.
func WriteSnapshot(dir string, seg uint64, payload []byte, inj *Injector) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	final := filepath.Join(dir, snapName(seg))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if inj.Fire(CrashMidSnapshot) {
		// Simulated death mid-write: half the payload lands in the temp
		// file and the process is gone — no fsync, no rename.
		_, _ = f.Write(payload[:len(payload)/2])
		_ = f.Close()
		return ErrCrashed
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(dir)
	return nil
}

// ReadSnapshot loads and validates the snapshot named seg.
func ReadSnapshot(dir string, seg uint64) ([]byte, error) {
	return readSnapshotFile(filepath.Join(dir, snapName(seg)))
}

func readSnapshotFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16 || string(raw[:8]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: bad snapshot header", filepath.Base(path))
	}
	n := binary.LittleEndian.Uint32(raw[8:12])
	sum := binary.LittleEndian.Uint32(raw[12:16])
	if int(n) != len(raw)-16 {
		return nil, fmt.Errorf("wal: %s: snapshot length %d, want %d", filepath.Base(path), len(raw)-16, n)
	}
	payload := raw[16:]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("wal: %s: snapshot checksum mismatch", filepath.Base(path))
	}
	return payload, nil
}

// PruneBefore removes segments and snapshots older than seg — called
// after a snapshot named seg lands, since everything it covers is
// redundant. Best-effort: removal failures are ignored (recovery
// tolerates stale files).
func PruneBefore(dir string, seg uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		var n uint64
		name := e.Name()
		switch {
		case parseName(name, "journal-", ".wal", &n) && n < seg:
			_ = os.Remove(filepath.Join(dir, name))
		case parseName(name, "snapshot-", ".snap", &n) && n < seg:
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// parseName matches prefix+digits+suffix, extracting the number.
func parseName(name, prefix, suffix string, out *uint64) bool {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var n uint64
	for i := 0; i < len(mid); i++ {
		c := mid[i]
		if c < '0' || c > '9' {
			return false
		}
		n = n*10 + uint64(c-'0')
	}
	*out = n
	return true
}
