package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, seg uint64, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, seg, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func appendAll(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		c, err := j.Append([]byte(p))
		if err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("Wait(%q): %v", p, err)
		}
	}
}

func recovered(t *testing.T, dir string) *Recovered {
	t.Helper()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return rec
}

func recordStrings(rec *Recovered) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r)
	}
	return out
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, 0, Options{Mode: ModeSync})
	appendAll(t, j, "alpha", "beta", "gamma")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec := recovered(t, dir)
	want := []string{"alpha", "beta", "gamma"}
	got := recordStrings(rec)
	if len(got) != len(want) {
		t.Fatalf("records = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("records = %v, want %v", got, want)
		}
	}
	if rec.NextSeg != 2 {
		t.Fatalf("NextSeg = %d, want 2", rec.NextSeg)
	}
	if rec.TruncatedBytes != 0 || rec.CorruptSnapshots != 0 || rec.DroppedSegments != 0 {
		t.Fatalf("clean recovery reported damage: %+v", rec)
	}

	// Reopen at NextSeg and keep appending.
	j2 := mustOpen(t, dir, rec.NextSeg, Options{Mode: ModeSync})
	appendAll(t, j2, "delta")
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec2 := recovered(t, dir)
	if got := recordStrings(rec2); len(got) != 4 || got[3] != "delta" {
		t.Fatalf("records after reopen = %v", got)
	}
}

func TestGroupCommitConcurrentAppenders(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, 0, Options{Mode: ModeSync})
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := j.Append([]byte(fmt.Sprintf("rec-%02d", i)))
			if err != nil {
				t.Errorf("Append: %v", err)
				return
			}
			if err := c.Wait(); err != nil {
				t.Errorf("Wait: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st.Records != n {
		t.Fatalf("Records = %d, want %d", st.Records, n)
	}
	// Group commit must have amortised: strictly fewer fsyncs than
	// records would be flaky on a fast disk, but the batching machinery
	// at least must report its flushes.
	if st.Batches == 0 || st.Batches > st.Records {
		t.Fatalf("Batches = %d (records %d)", st.Batches, st.Records)
	}
	rec := recovered(t, dir)
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
	seen := map[string]bool{}
	for _, r := range rec.Records {
		seen[string(r)] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d distinct records, want %d", len(seen), n)
	}
}

func TestRotateSnapshotPrune(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, 0, Options{Mode: ModeSync})
	appendAll(t, j, "old-1", "old-2")
	seg, err := j.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if seg != 2 {
		t.Fatalf("Rotate → %d, want 2", seg)
	}
	if err := WriteSnapshot(dir, seg, []byte("STATE-AFTER-OLD"), nil); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, j, "new-1")
	PruneBefore(dir, seg)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 not pruned: %v", err)
	}
	rec := recovered(t, dir)
	if rec.SnapshotSeg != 2 || string(rec.Snapshot) != "STATE-AFTER-OLD" {
		t.Fatalf("snapshot = seg %d %q", rec.SnapshotSeg, rec.Snapshot)
	}
	if got := recordStrings(rec); len(got) != 1 || got[0] != "new-1" {
		t.Fatalf("tail records = %v, want [new-1]", got)
	}
	if rec.NextSeg != 3 {
		t.Fatalf("NextSeg = %d, want 3", rec.NextSeg)
	}
}

func TestTornWriteInjection(t *testing.T) {
	dir := t.TempDir()
	inj := &Injector{}
	j := mustOpen(t, dir, 0, Options{Mode: ModeSync, Injector: inj})
	appendAll(t, j, "solid-1", "solid-2")

	// Tear the next batch: keep the full first record plus 3 bytes of
	// the second record's header.
	inj.ArmTornWrite(8 + len("torn-a") + 3)
	c1, err := j.Append([]byte("torn-a"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	c2, err := j.Append([]byte("torn-b"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := c1.Wait(); err != ErrCrashed {
		t.Fatalf("torn batch Wait = %v, want ErrCrashed", err)
	}
	if err := c2.Wait(); err != ErrCrashed {
		t.Fatalf("torn batch Wait = %v, want ErrCrashed", err)
	}
	if !j.Dead() {
		t.Fatal("journal should be dead after torn write")
	}
	if _, err := j.Append([]byte("after-death")); err != ErrCrashed {
		t.Fatalf("Append after death = %v, want ErrCrashed", err)
	}
	_ = j.Close()

	rec := recovered(t, dir)
	got := recordStrings(rec)
	want := []string{"solid-1", "solid-2", "torn-a"}
	if len(got) != len(want) {
		t.Fatalf("records = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("records = %v, want %v", got, want)
		}
	}
	if rec.TruncatedBytes != 3 {
		t.Fatalf("TruncatedBytes = %d, want 3", rec.TruncatedBytes)
	}
	// Recovery truncated the tear: a second recovery is clean.
	rec2 := recovered(t, dir)
	if rec2.TruncatedBytes != 0 || len(rec2.Records) != 3 {
		t.Fatalf("second recovery: %+v", rec2)
	}
}

func TestTruncatedTailAndFlippedByte(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, 0, Options{Mode: ModeSync})
	appendAll(t, j, "keep-1", "keep-2", "victim")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if err := TruncateTail(dir, 2); err != nil {
		t.Fatalf("TruncateTail: %v", err)
	}
	rec := recovered(t, dir)
	if got := recordStrings(rec); len(got) != 2 || got[1] != "keep-2" {
		t.Fatalf("after truncate: records = %v", got)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("truncation not reported")
	}

	// Now flip a byte inside keep-2's payload: it and everything after
	// must vanish, keep-1 survives.
	if err := FlipByte(dir, -1); err != nil {
		t.Fatalf("FlipByte: %v", err)
	}
	rec2 := recovered(t, dir)
	if got := recordStrings(rec2); len(got) != 1 || got[0] != "keep-1" {
		t.Fatalf("after flip: records = %v", got)
	}
}

func TestCorruptSnapshotFallsBackOlder(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, 0, Options{Mode: ModeSync})
	appendAll(t, j, "epoch-1")
	seg2, err := j.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := WriteSnapshot(dir, seg2, []byte("SNAP-2"), nil); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, j, "epoch-2")
	seg3, err := j.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := WriteSnapshot(dir, seg3, []byte("SNAP-3"), nil); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, j, "epoch-3")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corrupt the newest snapshot's payload byte.
	path := filepath.Join(dir, snapName(seg3))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := recovered(t, dir)
	if rec.SnapshotSeg != seg2 || string(rec.Snapshot) != "SNAP-2" {
		t.Fatalf("fallback snapshot = seg %d %q, want seg %d SNAP-2", rec.SnapshotSeg, rec.Snapshot, seg2)
	}
	if rec.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1", rec.CorruptSnapshots)
	}
	// Tail must replay from seg2: epoch-2 then epoch-3.
	if got := recordStrings(rec); len(got) != 2 || got[0] != "epoch-2" || got[1] != "epoch-3" {
		t.Fatalf("records = %v, want [epoch-2 epoch-3]", got)
	}
}

func TestMidSnapshotCrashLeavesOldSnapshotAuthoritative(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 2, []byte("SNAP-OLD"), nil); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	inj := &Injector{}
	inj.Arm(CrashMidSnapshot, 0)
	err := WriteSnapshot(dir, 3, []byte("SNAP-NEW-NEVER-LANDS"), inj)
	if err != ErrCrashed {
		t.Fatalf("WriteSnapshot with armed crash = %v, want ErrCrashed", err)
	}
	if !inj.Fired() {
		t.Fatal("injector did not fire")
	}
	rec := recovered(t, dir)
	if rec.SnapshotSeg != 2 || string(rec.Snapshot) != "SNAP-OLD" {
		t.Fatalf("snapshot = seg %d %q, want seg 2 SNAP-OLD", rec.SnapshotSeg, rec.Snapshot)
	}
	// Recovery must have swept the temp file.
	if _, err := os.Stat(filepath.Join(dir, snapName(3)+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp snapshot not cleaned: %v", err)
	}
}

func TestInjectorArmAfterN(t *testing.T) {
	inj := &Injector{}
	inj.Arm(CrashPreAppend, 2)
	if inj.Fire(CrashPreAppend) || inj.Fire(CrashPreAppend) {
		t.Fatal("fired too early")
	}
	if inj.Fire(CrashPostAppend) {
		t.Fatal("fired at wrong point")
	}
	if !inj.Fire(CrashPreAppend) {
		t.Fatal("did not fire on third consultation")
	}
	if inj.Fire(CrashPreAppend) {
		t.Fatal("fired twice")
	}
	var nilInj *Injector
	if nilInj.Fire(CrashPreAppend) || nilInj.Fired() {
		t.Fatal("nil injector fired")
	}
}

func TestKillFailsPendingAndFutureAppends(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, 0, Options{Mode: ModeSync})
	appendAll(t, j, "before")
	j.Kill()
	if _, err := j.Append([]byte("after")); err != ErrCrashed {
		t.Fatalf("Append after Kill = %v, want ErrCrashed", err)
	}
	if err := j.Sync(); err != ErrCrashed {
		t.Fatalf("Sync after Kill = %v, want ErrCrashed", err)
	}
	if _, err := j.Rotate(); err != ErrCrashed {
		t.Fatalf("Rotate after Kill = %v, want ErrCrashed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close after Kill: %v", err)
	}
	rec := recovered(t, dir)
	if got := recordStrings(rec); len(got) != 1 || got[0] != "before" {
		t.Fatalf("records = %v, want [before]", got)
	}
}

func TestAsyncModeLosesOnlyUnflushedSuffix(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, 0, Options{Mode: ModeAsync})
	for i := 0; i < 10; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("a-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// These may or may not reach disk before the kill.
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("b-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Kill()
	_ = j.Close()
	rec := recovered(t, dir)
	got := recordStrings(rec)
	if len(got) < 10 || len(got) > 15 {
		t.Fatalf("recovered %d records, want 10..15", len(got))
	}
	// Whatever survived must be a strict prefix of the append order.
	for i, r := range got {
		var want string
		if i < 10 {
			want = fmt.Sprintf("a-%d", i)
		} else {
			want = fmt.Sprintf("b-%d", i-10)
		}
		if r != want {
			t.Fatalf("record %d = %q, want %q (prefix violated)", i, r, want)
		}
	}
}

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"off", ModeOff, false}, {"", ModeOff, false},
		{"async", ModeAsync, false}, {"sync", ModeSync, false},
		{"bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Fatalf("ParseMode(%q) = %v, %v", c.in, got, err)
		}
	}
	if ModeSync.String() != "sync" || ModeOff.String() != "off" || ModeAsync.String() != "async" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	rec := recovered(t, filepath.Join(t.TempDir(), "missing"))
	if rec.SnapshotSeg != 0 || rec.Snapshot != nil || len(rec.Records) != 0 || rec.NextSeg != 1 {
		t.Fatalf("zero recovery: %+v", rec)
	}
}
