package wal

import (
	"fmt"
	"os"
	"sync"
)

// CrashPoint names a place in the durability pipeline where the
// fault-injection harness can simulate process death. The engine (and
// this package, for mid-snapshot) consults the armed Injector at each
// point; a fired point kills the journal so every later operation
// returns ErrCrashed, and the test then recovers the directory into a
// fresh engine.
type CrashPoint string

// The named crash points of the kill-restart-verify suite.
const (
	// CrashPreAppend fires before the operation's record is handed to
	// the journal: the op must be absent after recovery.
	CrashPreAppend CrashPoint = "pre-append"
	// CrashPostAppend fires after the record is in the journal's batch
	// but before the in-memory ledger applies it: recovery must replay
	// the record (if its batch reached disk) exactly once.
	CrashPostAppend CrashPoint = "post-append-pre-apply"
	// CrashMidSnapshot fires inside WriteSnapshot after a partial
	// payload is written to the temp file: recovery must fall back to
	// the previous snapshot and the longer tail.
	CrashMidSnapshot CrashPoint = "mid-snapshot"
	// CrashMidCompensate fires inside relay recovery between
	// compensating one in-doubt trip and the next: a second recovery
	// must finish the job without double-cancelling.
	CrashMidCompensate CrashPoint = "mid-compensate"
)

// CrashPoints lists every named point, for harness loops.
var CrashPoints = []CrashPoint{CrashPreAppend, CrashPostAppend, CrashMidSnapshot, CrashMidCompensate}

// Injector arms simulated crashes. The zero value (and a nil pointer)
// is inert; production code paths pay one nil check per consultation.
// An injector is shared across the engines/journals of one simulated
// process, so one armed fault kills everything at once.
type Injector struct {
	mu       sync.Mutex
	point    CrashPoint
	after    int // fire on the (after+1)-th Fire of point
	armed    bool
	tornKeep int
	tornArm  bool
	fired    bool

	// onFire, when set, is invoked once when any fault fires — the
	// engine hooks this to kill its journal(s).
	onFire func()
}

// Arm schedules the injector to fire at the (after+1)-th consultation
// of point (after=0 → first). Re-arming resets any previous fault.
func (i *Injector) Arm(point CrashPoint, after int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.point, i.after, i.armed, i.fired = point, after, true, false
	i.tornArm = false
}

// ArmTornWrite schedules the next journal flush to crash after writing
// only keepBytes of the batch (clamped to the batch size), leaving a
// torn record on disk.
func (i *Injector) ArmTornWrite(keepBytes int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.tornKeep, i.tornArm, i.fired = keepBytes, true, false
	i.armed = false
}

// OnFire registers a hook invoked (once, outside the injector lock)
// when any fault fires.
func (i *Injector) OnFire(f func()) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.onFire = f
}

// Fire consults the injector at a crash point, returning true when the
// armed fault fires. Nil-safe.
func (i *Injector) Fire(point CrashPoint) bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	if !i.armed || i.point != point {
		i.mu.Unlock()
		return false
	}
	if i.after > 0 {
		i.after--
		i.mu.Unlock()
		return false
	}
	i.armed = false
	i.fired = true
	hook := i.onFire
	i.mu.Unlock()
	if hook != nil {
		hook()
	}
	return true
}

// tornWrite is the flusher's consultation: (keepBytes, true) when a
// torn-write fault is armed. Nil-safe.
func (i *Injector) tornWrite(batchLen int) (int, bool) {
	if i == nil {
		return 0, false
	}
	i.mu.Lock()
	if !i.tornArm {
		i.mu.Unlock()
		return 0, false
	}
	i.tornArm = false
	i.fired = true
	keep := i.tornKeep
	if keep > batchLen {
		keep = batchLen
	}
	hook := i.onFire
	i.mu.Unlock()
	if hook != nil {
		hook()
	}
	return keep, true
}

// Fired reports whether any armed fault has fired since the last Arm.
func (i *Injector) Fired() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired
}

// TruncateTail chops n bytes off the end of the newest journal segment
// in dir — post-hoc corruption for recovery tests.
func TruncateTail(dir string, n int64) error {
	seg, path, err := newestSegment(dir)
	if err != nil {
		return err
	}
	if seg == 0 {
		return fmt.Errorf("wal: no segments in %s", dir)
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := st.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte XOR-flips the byte at offset (negative → from the end) of
// the newest journal segment in dir — checksum-corruption for recovery
// tests.
func FlipByte(dir string, offset int64) error {
	seg, path, err := newestSegment(dir)
	if err != nil {
		return err
	}
	if seg == 0 {
		return fmt.Errorf("wal: no segments in %s", dir)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += st.Size()
	}
	if offset < 0 || offset >= st.Size() {
		return fmt.Errorf("wal: flip offset %d out of range [0,%d)", offset, st.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b[:], offset)
	return err
}
