// Package gen synthesises the demonstration workload (paper §4). The
// original demo uses 432,327 trips extracted from 17,000 Shanghai taxis
// on May 29 2009; that dataset is proprietary, so this package builds
// the closest synthetic equivalent (see DESIGN.md §5 for the
// substitution argument):
//
//   - a city road network: a perturbed lattice with arterial avenues
//     (lower travel cost) and randomly removed minor segments, metric
//     in the plane and guaranteed connected via a random spanning tree;
//   - a one-day trip workload: spatial demand from a Gaussian-mixture
//     of hotspots (CBD plus sub-centres), a double-peak diurnal arrival
//     profile, morning flows toward the hotspots and evening flows away
//     from them, and a realistic rider-count distribution.
//
// Everything is deterministic under a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ptrider/internal/geo"
	"ptrider/internal/roadnet"
	"ptrider/internal/trace"
)

// CityConfig parameterises the synthetic road network.
type CityConfig struct {
	// Width and Height count intersections per side. Both ≥ 2.
	Width, Height int
	// Spacing is the distance between adjacent intersections in metres
	// (0 = 250).
	Spacing float64
	// ArterialEvery makes every k-th row/column an arterial whose edges
	// carry no congestion surcharge (0 = 5; negative = none).
	ArterialEvery int
	// RemoveFrac removes this fraction of non-spanning-tree minor edges
	// to break the lattice regularity. Must be in [0, 1).
	RemoveFrac float64
	// OriginX and OriginY translate the whole city in the plane, so
	// several generated cities can occupy disjoint regions (the
	// multi-city router assigns requests to cities by coordinate).
	OriginX, OriginY float64
	// Seed drives all randomness.
	Seed int64
}

func (c *CityConfig) withDefaults() CityConfig {
	out := *c
	if out.Spacing == 0 {
		out.Spacing = 250
	}
	if out.ArterialEvery == 0 {
		out.ArterialEvery = 5
	}
	return out
}

// GenerateNetwork builds the synthetic city road network.
func GenerateNetwork(cfg CityConfig) (*roadnet.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Width < 2 || cfg.Height < 2 {
		return nil, fmt.Errorf("gen: city must be at least 2x2 intersections")
	}
	if cfg.RemoveFrac < 0 || cfg.RemoveFrac >= 1 {
		return nil, fmt.Errorf("gen: RemoveFrac %v outside [0,1)", cfg.RemoveFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w, h := cfg.Width, cfg.Height
	n := w * h

	pts := make([]geo.Point, n)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			jitterX := (rng.Float64() - 0.5) * 0.2 * cfg.Spacing
			jitterY := (rng.Float64() - 0.5) * 0.2 * cfg.Spacing
			pts[j*w+i] = geo.Point{
				X: cfg.OriginX + float64(i)*cfg.Spacing + jitterX,
				Y: cfg.OriginY + float64(j)*cfg.Spacing + jitterY,
			}
		}
	}

	type latEdge struct {
		u, v     roadnet.VertexID
		arterial bool
	}
	var edges []latEdge
	isArterial := func(row, col int, horizontal bool) bool {
		if cfg.ArterialEvery < 0 {
			return false
		}
		if horizontal {
			return row%cfg.ArterialEvery == 0
		}
		return col%cfg.ArterialEvery == 0
	}
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			id := roadnet.VertexID(j*w + i)
			if i+1 < w {
				edges = append(edges, latEdge{id, id + 1, isArterial(j, i, true)})
			}
			if j+1 < h {
				edges = append(edges, latEdge{id, id + roadnet.VertexID(w), isArterial(j, i, false)})
			}
		}
	}

	// Random spanning tree via randomised union-find pass: shuffle the
	// edges, keep the first ones that connect new components. Tree
	// edges are never removed, so the network stays connected.
	perm := rng.Perm(len(edges))
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	inTree := make([]bool, len(edges))
	for _, ei := range perm {
		ru, rv := find(int32(edges[ei].u)), find(int32(edges[ei].v))
		if ru != rv {
			parent[ru] = rv
			inTree[ei] = true
		}
	}

	b := roadnet.NewBuilder(n, 4*len(edges))
	for _, p := range pts {
		b.AddVertex(p)
	}
	kept := 0
	for ei, e := range edges {
		if !inTree[ei] && !e.arterial && rng.Float64() < cfg.RemoveFrac {
			continue
		}
		euclid := pts[e.u].Dist(pts[e.v])
		factor := 1.3 + 0.5*rng.Float64() // minor street surcharge
		if e.arterial {
			factor = 1.25 // fast avenue (still above max jitter stretch)
		}
		b.AddUndirectedEdge(e.u, e.v, euclid*factor)
		kept++
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if !roadnet.Connected(g) {
		return nil, fmt.Errorf("gen: internal error: generated network disconnected")
	}
	return g, nil
}

// Hotspot is one Gaussian demand centre.
type Hotspot struct {
	Center geo.Point
	Sigma  float64 // metres
	Weight float64
}

// TripConfig parameterises the one-day workload.
type TripConfig struct {
	// NumTrips scales the workload; the demo's day has 432,327.
	NumTrips int
	// DaySeconds is the workload horizon (0 = 86400).
	DaySeconds float64
	// Hotspots override the default CBD + two sub-centres (relative to
	// the network bounds) when non-nil.
	Hotspots []Hotspot
	// HourlyWeights override the default double-peak diurnal profile
	// when non-nil; must have 24 entries.
	HourlyWeights []float64
	// MinTripMeters drops trips shorter than this Euclidean distance
	// (0 = 2 grid spacings' worth, approximated as 500 m).
	MinTripMeters float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultHourlyWeights is the double-peak diurnal arrival profile
// (morning and evening rush), normalised by Sample.
var DefaultHourlyWeights = []float64{
	0.20, 0.12, 0.08, 0.06, 0.08, 0.18, // 00-05
	0.45, 0.95, 1.30, 1.10, 0.80, 0.75, // 06-11
	0.85, 0.80, 0.70, 0.75, 0.90, 1.20, // 12-17
	1.40, 1.15, 0.90, 0.70, 0.50, 0.35, // 18-23
}

// PeakHourlyWeights is an arrival profile that concentrates almost all
// demand into the two rush windows (07–09 and 17–19), with a near-dead
// rest of the day. Against a fixed fleet the peaks overload hot cells,
// which is the workload the surge tracker is meant to answer — use it
// with surge-enabled engines to exercise demand-shedding.
func PeakHourlyWeights() []float64 {
	return []float64{
		0.02, 0.02, 0.02, 0.02, 0.02, 0.05, // 00-05
		0.40, 2.60, 2.80, 0.60, 0.10, 0.10, // 06-11
		0.10, 0.10, 0.10, 0.20, 0.60, 2.60, // 12-17
		2.80, 0.80, 0.20, 0.10, 0.05, 0.02, // 18-23
	}
}

func defaultHotspots(bounds geo.Rect) []Hotspot {
	c := bounds.Center()
	w, h := bounds.Width(), bounds.Height()
	return []Hotspot{
		{Center: c, Sigma: 0.12 * math.Min(w, h), Weight: 1.0},                                                // CBD
		{Center: geo.Point{X: bounds.Min.X + 0.25*w, Y: bounds.Min.Y + 0.70*h}, Sigma: 0.08 * w, Weight: 0.5}, // north-west centre
		{Center: geo.Point{X: bounds.Min.X + 0.75*w, Y: bounds.Min.Y + 0.30*h}, Sigma: 0.08 * w, Weight: 0.5}, // south-east centre
	}
}

// TripGen samples trips over one network. Construct with NewTripGen;
// it precomputes the spatial sampling tables once.
type TripGen struct {
	g       *roadnet.Graph
	cfg     TripConfig
	rng     *rand.Rand
	hotCum  []float64 // cumulative hotspot-mixture weights per vertex
	uniCum  []float64 // cumulative near-uniform weights per vertex
	hourCum []float64
	minDist float64
}

// NewTripGen prepares a generator for g.
func NewTripGen(g *roadnet.Graph, cfg TripConfig) (*TripGen, error) {
	if !g.Embedded() {
		return nil, fmt.Errorf("gen: network must be embedded")
	}
	if cfg.NumTrips < 0 {
		return nil, fmt.Errorf("gen: negative NumTrips")
	}
	if cfg.DaySeconds == 0 {
		cfg.DaySeconds = 86400
	}
	if cfg.MinTripMeters == 0 {
		cfg.MinTripMeters = 500
	}
	hours := cfg.HourlyWeights
	if hours == nil {
		hours = DefaultHourlyWeights
	}
	if len(hours) != 24 {
		return nil, fmt.Errorf("gen: HourlyWeights must have 24 entries, got %d", len(hours))
	}
	hot := cfg.Hotspots
	if hot == nil {
		hot = defaultHotspots(g.Bounds())
	}

	tg := &TripGen{
		g:       g,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		minDist: cfg.MinTripMeters,
	}

	n := g.NumVertices()
	tg.hotCum = make([]float64, n)
	tg.uniCum = make([]float64, n)
	sumHot, sumUni := 0.0, 0.0
	for v := 0; v < n; v++ {
		p := g.Point(roadnet.VertexID(v))
		wHot := 0.05 // base demand everywhere
		for _, hs := range hot {
			d2 := p.DistSq(hs.Center)
			wHot += hs.Weight * math.Exp(-d2/(2*hs.Sigma*hs.Sigma))
		}
		sumHot += wHot
		tg.hotCum[v] = sumHot
		sumUni += 1.0
		tg.uniCum[v] = sumUni
	}

	tg.hourCum = make([]float64, 24)
	total := 0.0
	for i, w := range hours {
		if w < 0 {
			return nil, fmt.Errorf("gen: negative hourly weight at %d", i)
		}
		total += w
		tg.hourCum[i] = total
	}
	if total == 0 {
		return nil, fmt.Errorf("gen: all hourly weights are zero")
	}
	return tg, nil
}

func sampleCum(rng *rand.Rand, cum []float64) int {
	x := rng.Float64() * cum[len(cum)-1]
	return sort.SearchFloat64s(cum, x)
}

// sampleTime draws a trip submission time from the diurnal profile,
// scaled to the configured day length.
func (tg *TripGen) sampleTime() float64 {
	hour := sampleCum(tg.rng, tg.hourCum)
	frac := (float64(hour) + tg.rng.Float64()) / 24
	return frac * tg.cfg.DaySeconds
}

// sampleEndpoints draws origin and destination: before 12:00 demand
// flows toward the hotspots (residential → centre), afterwards away
// from them, mirroring commuter flows.
func (tg *TripGen) sampleEndpoints(t float64) (roadnet.VertexID, roadnet.VertexID) {
	morning := t < tg.cfg.DaySeconds/2
	for attempt := 0; attempt < 64; attempt++ {
		var s, d int
		if morning {
			s = sampleCum(tg.rng, tg.uniCum)
			d = sampleCum(tg.rng, tg.hotCum)
		} else {
			s = sampleCum(tg.rng, tg.hotCum)
			d = sampleCum(tg.rng, tg.uniCum)
		}
		if s == d {
			continue
		}
		su, dv := roadnet.VertexID(s), roadnet.VertexID(d)
		if tg.g.Point(su).Dist(tg.g.Point(dv)) < tg.minDist {
			continue
		}
		return su, dv
	}
	// Degenerate configuration: fall back to any distinct pair.
	s := tg.rng.Intn(tg.g.NumVertices())
	d := (s + 1 + tg.rng.Intn(tg.g.NumVertices()-1)) % tg.g.NumVertices()
	return roadnet.VertexID(s), roadnet.VertexID(d)
}

func (tg *TripGen) sampleRiders() int {
	switch x := tg.rng.Float64(); {
	case x < 0.75:
		return 1
	case x < 0.93:
		return 2
	case x < 0.98:
		return 3
	default:
		return 4
	}
}

// Generate produces the full workload sorted by submission time.
func (tg *TripGen) Generate() []trace.Trip {
	trips := make([]trace.Trip, tg.cfg.NumTrips)
	for i := range trips {
		t := tg.sampleTime()
		s, d := tg.sampleEndpoints(t)
		trips[i] = trace.Trip{
			ID:     int64(i + 1),
			Time:   t,
			S:      s,
			D:      d,
			Riders: tg.sampleRiders(),
		}
	}
	sort.Slice(trips, func(a, b int) bool { return trips[a].Time < trips[b].Time })
	for i := range trips {
		trips[i].ID = int64(i + 1) // re-number in time order
	}
	return trips
}

// GenerateTrips is the one-call convenience wrapper.
func GenerateTrips(g *roadnet.Graph, cfg TripConfig) ([]trace.Trip, error) {
	tg, err := NewTripGen(g, cfg)
	if err != nil {
		return nil, err
	}
	return tg.Generate(), nil
}
