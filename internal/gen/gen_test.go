package gen_test

import (
	"math"
	"testing"

	"ptrider/internal/gen"
	"ptrider/internal/roadnet"
	"ptrider/internal/trace"
)

func TestGenerateNetworkValidation(t *testing.T) {
	if _, err := gen.GenerateNetwork(gen.CityConfig{Width: 1, Height: 5}); err == nil {
		t.Error("1-wide city accepted")
	}
	if _, err := gen.GenerateNetwork(gen.CityConfig{Width: 5, Height: 5, RemoveFrac: 1.0}); err == nil {
		t.Error("RemoveFrac 1.0 accepted")
	}
}

func TestGenerateNetworkProperties(t *testing.T) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 20, Height: 20, RemoveFrac: 0.25, Seed: 7})
	if err != nil {
		t.Fatalf("GenerateNetwork: %v", err)
	}
	if g.NumVertices() != 400 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if !g.Embedded() || !g.Metric() {
		t.Fatal("network must be embedded and metric")
	}
	if !roadnet.Connected(g) {
		t.Fatal("network must be connected")
	}
	if !g.IsSymmetric() {
		t.Fatal("network must be symmetric (two-way streets)")
	}
	// Removal actually removed something: a full 20x20 lattice has
	// 2*20*19 = 760 undirected edges.
	if got := g.NumEdges() / 2; got >= 760 {
		t.Fatalf("no edges removed: %d", got)
	}
}

func TestGenerateNetworkDeterministic(t *testing.T) {
	a, _ := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, RemoveFrac: 0.2, Seed: 3})
	b, _ := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, RemoveFrac: 0.2, Seed: 3})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Point(roadnet.VertexID(v)) != b.Point(roadnet.VertexID(v)) {
			t.Fatal("same seed produced different embeddings")
		}
	}
	c, _ := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, RemoveFrac: 0.2, Seed: 4})
	same := true
	for v := 0; v < a.NumVertices() && same; v++ {
		same = a.Point(roadnet.VertexID(v)) == c.Point(roadnet.VertexID(v))
	}
	if same {
		t.Fatal("different seeds produced identical embeddings")
	}
}

func TestArterialsAreCheaper(t *testing.T) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 11, Height: 11, ArterialEvery: 5, Seed: 1})
	if err != nil {
		t.Fatalf("GenerateNetwork: %v", err)
	}
	// Compare cost-per-metre on arterial rows (j = 0, 5, 10) vs others.
	var artSum, artN, minorSum, minorN float64
	for u := 0; u < g.NumVertices(); u++ {
		for _, e := range g.Out(roadnet.VertexID(u)) {
			if e.To < roadnet.VertexID(u) {
				continue
			}
			euclid := g.Point(roadnet.VertexID(u)).Dist(g.Point(e.To))
			ratio := e.Weight / euclid
			ju, jv := u/11, int(e.To)/11
			iu, iv := u%11, int(e.To)%11
			horizontal := ju == jv
			arterial := (horizontal && ju%5 == 0) || (!horizontal && iu == iv && iu%5 == 0)
			if arterial {
				artSum += ratio
				artN++
			} else {
				minorSum += ratio
				minorN++
			}
		}
	}
	if artN == 0 || minorN == 0 {
		t.Fatal("no edges classified")
	}
	if artSum/artN >= minorSum/minorN {
		t.Fatalf("arterials (%v) not cheaper than minor streets (%v)", artSum/artN, minorSum/minorN)
	}
}

func TestGenerateTripsValidAndSorted(t *testing.T) {
	g, _ := gen.GenerateNetwork(gen.CityConfig{Width: 15, Height: 15, Seed: 2})
	trips, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 5000, Seed: 2})
	if err != nil {
		t.Fatalf("GenerateTrips: %v", err)
	}
	if len(trips) != 5000 {
		t.Fatalf("got %d trips", len(trips))
	}
	for i, tr := range trips {
		if err := tr.Validate(g.NumVertices()); err != nil {
			t.Fatalf("trip %d invalid: %v", i, err)
		}
		if tr.Time < 0 || tr.Time > 86400 {
			t.Fatalf("trip %d time %v outside the day", i, tr.Time)
		}
		if i > 0 && tr.Time < trips[i-1].Time {
			t.Fatalf("trips unsorted at %d", i)
		}
		if tr.ID != int64(i+1) {
			t.Fatalf("trip ids not sequential at %d", i)
		}
	}
}

func TestTripsFollowDiurnalProfile(t *testing.T) {
	g, _ := gen.GenerateNetwork(gen.CityConfig{Width: 15, Height: 15, Seed: 3})
	trips, _ := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 30000, Seed: 3})
	sum := trace.Summarise(trips, 86400)
	// Rush hours (08, 18) must clearly out-draw the small hours (03).
	if sum.ByHour[8] <= 2*sum.ByHour[3] {
		t.Errorf("hour 8 (%d) not busier than 2x hour 3 (%d)", sum.ByHour[8], sum.ByHour[3])
	}
	if sum.ByHour[18] <= 2*sum.ByHour[3] {
		t.Errorf("hour 18 (%d) not busier than 2x hour 3 (%d)", sum.ByHour[18], sum.ByHour[3])
	}
	// Rider distribution: singles dominate, 4-rider groups rare.
	if sum.ByRiders[1] < sum.ByRiders[2] || sum.ByRiders[2] < sum.ByRiders[4] {
		t.Errorf("rider distribution implausible: %v", sum.ByRiders)
	}
}

func TestTripsConcentrateAtHotspots(t *testing.T) {
	g, _ := gen.GenerateNetwork(gen.CityConfig{Width: 21, Height: 21, Seed: 4})
	trips, _ := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 20000, Seed: 4})
	// Afternoon origins are hotspot-weighted; compare origin density in
	// the central ninth of the map vs a corner ninth.
	bounds := g.Bounds()
	third := bounds.Width() / 3
	central, corner := 0, 0
	for _, tr := range trips {
		if tr.Time < 43200 {
			continue // afternoon only
		}
		p := g.Point(tr.S)
		dx, dy := p.X-bounds.Min.X, p.Y-bounds.Min.Y
		if dx > third && dx < 2*third && dy > third && dy < 2*third {
			central++
		}
		if dx < third && dy < third {
			corner++
		}
	}
	if central <= corner {
		t.Fatalf("central origins (%d) not denser than corner (%d)", central, corner)
	}
}

func TestMinTripDistanceRespected(t *testing.T) {
	g, _ := gen.GenerateNetwork(gen.CityConfig{Width: 15, Height: 15, Seed: 5})
	trips, _ := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 2000, MinTripMeters: 1000, Seed: 5})
	short := 0
	for _, tr := range trips {
		if g.Point(tr.S).Dist(g.Point(tr.D)) < 1000 {
			short++
		}
	}
	// The fallback path may admit a handful; the bulk must respect it.
	if float64(short) > 0.01*float64(len(trips)) {
		t.Fatalf("%d of %d trips below the minimum distance", short, len(trips))
	}
}

func TestTripGenConfigValidation(t *testing.T) {
	g, _ := gen.GenerateNetwork(gen.CityConfig{Width: 5, Height: 5, Seed: 1})
	if _, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: -1}); err == nil {
		t.Error("negative NumTrips accepted")
	}
	if _, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 1, HourlyWeights: []float64{1, 2}}); err == nil {
		t.Error("short hourly profile accepted")
	}
	if _, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 1, HourlyWeights: make([]float64, 24)}); err == nil {
		t.Error("all-zero hourly profile accepted")
	}
	neg := make([]float64, 24)
	neg[3] = -1
	if _, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 1, HourlyWeights: neg}); err == nil {
		t.Error("negative hourly weight accepted")
	}
}

func TestTripTimesSpanConfiguredDay(t *testing.T) {
	g, _ := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, Seed: 6})
	trips, _ := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 3000, DaySeconds: 3600, Seed: 6})
	maxT := 0.0
	for _, tr := range trips {
		maxT = math.Max(maxT, tr.Time)
	}
	if maxT > 3600 {
		t.Fatalf("trip at %v exceeds the 3600s day", maxT)
	}
}
