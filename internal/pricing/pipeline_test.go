package pricing

import (
	"math"
	"testing"
)

// stubSource surges one cell at a fixed multiplier and epoch.
type stubSource struct {
	cell  int32
	mult  float64
	epoch uint64
}

func (s stubSource) Multiplier(cell int32) (float64, uint64) {
	if cell == s.cell {
		return s.mult, s.epoch
	}
	return 1, s.epoch
}

// TestBaseOnlyPipelineBitIdentical pins the golden-equivalence
// contract: a pipeline with only the base stage must produce the exact
// float64 values of the static model — same Ratio, same Price, same
// MinPrice, bit for bit.
func TestBaseOnlyPipelineBitIdentical(t *testing.T) {
	m := NewModel(nil)
	p := NewPipeline(Base(m))
	for riders := 1; riders <= 4; riders++ {
		for _, sd := range []float64{1, 333.33, 5000, 123456.789} {
			fc := p.Resolve(riders, sd, -1)
			if fc.Ratio != m.Ratio(riders) {
				t.Fatalf("riders=%d: ratio %v != model %v", riders, fc.Ratio, m.Ratio(riders))
			}
			if got, want := fc.MinPrice(sd), m.MinPrice(riders, sd); got != want {
				t.Fatalf("riders=%d sd=%v: MinPrice %v != %v", riders, sd, got, want)
			}
			for _, delta := range []float64{0, 17.5, 912.0} {
				if got, want := fc.Price(delta, sd), m.Price(riders, delta, sd); got != want {
					t.Fatalf("riders=%d sd=%v delta=%v: Price %v != %v", riders, sd, delta, got, want)
				}
			}
			if fc.Surged() {
				t.Fatalf("base-only context reports surged")
			}
		}
	}
}

// TestSurgeStageScalesRatio checks the surge stage multiplies the
// effective ratio for the surged cell only, and stamps the epoch.
func TestSurgeStageScalesRatio(t *testing.T) {
	m := NewModel(nil)
	src := stubSource{cell: 7, mult: 1.5, epoch: 3}
	p := NewPipeline(Base(m), Surge(src))

	hot := p.Resolve(2, 1000, 7)
	if !hot.Surged() || hot.Multiplier != 1.5 || hot.Epoch != 3 {
		t.Fatalf("hot cell context = %+v", hot)
	}
	if want := m.Ratio(2) * 1.5; hot.Ratio != want {
		t.Fatalf("hot ratio %v, want %v", hot.Ratio, want)
	}

	cold := p.Resolve(2, 1000, 8)
	if cold.Surged() || cold.Ratio != m.Ratio(2) {
		t.Fatalf("cold cell context = %+v", cold)
	}
	if cold.Epoch != 3 {
		t.Fatalf("cold cell should still stamp the epoch, got %d", cold.Epoch)
	}

	// Cell-less quotes skip the surge stage entirely.
	none := p.Resolve(2, 1000, -1)
	if none.Surged() || none.Epoch != 0 || none.Ratio != m.Ratio(2) {
		t.Fatalf("cell-less context = %+v", none)
	}
}

// TestPriceMonotoneInDetour pins the property skyline pruning relies
// on: under any fixed context, price is strictly increasing in the
// detour delta, surged or not.
func TestPriceMonotoneInDetour(t *testing.T) {
	for _, mult := range []float64{1, 1.2, 1.5} {
		fc := FareContext{BaseRatio: 0.4, Multiplier: mult, Ratio: 0.4 * mult}
		prev := math.Inf(-1)
		for delta := 0.0; delta <= 5000; delta += 250 {
			pr := fc.Price(delta, 2000)
			if pr <= prev {
				t.Fatalf("mult=%v: price not increasing at delta=%v", mult, delta)
			}
			prev = pr
		}
		if fc.MinPrice(2000) != fc.Price(0, 2000) {
			t.Fatalf("mult=%v: MinPrice != zero-detour price", mult)
		}
	}
}

// TestAdjustStage checks the extension stage composes with the rest.
func TestAdjustStage(t *testing.T) {
	m := NewModel(nil)
	p := NewPipeline(Base(m), Adjust("promo", func(q *Quote) { q.Multiplier *= 0.9 }))
	fc := p.Resolve(1, 1000, -1)
	if want := m.Ratio(1) * 0.9; fc.Ratio != want {
		t.Fatalf("promo ratio %v, want %v", fc.Ratio, want)
	}
	names := p.StageNames()
	if len(names) != 2 || names[0] != "base" || names[1] != "promo" {
		t.Fatalf("stage names = %v", names)
	}
}

// TestStaticContext checks the pipeline-less constructor.
func TestStaticContext(t *testing.T) {
	fc := StaticContext(0.3)
	if fc.Ratio != 0.3 || fc.Surged() || fc.Cell != -1 {
		t.Fatalf("static context = %+v", fc)
	}
}
