// pipeline.go composes the price model into quote-time stages. The
// static paper model (pricing.go) stays the base of every fare; a
// Pipeline runs it through an ordered stage list — base ratio, surge
// multiplier, optional per-request adjustments — and resolves the
// result into an immutable FareContext that is snapshotted into the
// request at submit time. Everything downstream of a quote (skyline
// pruning floors, option prices, re-probe repricing, WAL replay)
// prices through that one context instead of reaching back into the
// model, so the fare of a request can never drift between the quote
// and its lifecycle.
package pricing

// Quote is the in-flight pricing state a Pipeline threads through its
// stages. Stages mutate it; Resolve freezes the outcome into a
// FareContext.
type Quote struct {
	// Riders is the request's rider count n.
	Riders int
	// TripDist is the direct trip distance dist(s,d) in metres.
	TripDist float64
	// Cell is the origin grid cell, or -1 when the caller has no cell
	// (surge disabled, or cell-less entry points).
	Cell int32
	// BaseRatio is the paper ratio f_n; set by the base stage.
	BaseRatio float64
	// Multiplier is the combined stage multiplier (1 = no adjustment).
	Multiplier float64
	// Epoch is the surge epoch the multiplier was read at (0 = none).
	Epoch uint64
}

// FareContext is the immutable per-quote pricing snapshot: the
// resolved effective ratio plus the provenance needed to audit it
// (which cell's multiplier, at which surge epoch). It is fixed for
// the lifetime of the quote — a surge epoch rolling over mid-match
// cannot change a price already being searched under, which is what
// keeps skyline pruning sound.
type FareContext struct {
	// BaseRatio is the paper's f_n for the rider count.
	BaseRatio float64
	// Multiplier is the combined quote-time multiplier (1 = static fare).
	Multiplier float64
	// Ratio is the effective ratio all prices use. When Multiplier is
	// exactly 1 it is BaseRatio itself — not BaseRatio×1 — so a
	// surge-disabled pipeline is bit-identical to the static model.
	Ratio float64
	// Cell is the origin cell the multiplier was read from (-1 = none).
	Cell int32
	// Epoch is the surge epoch the multiplier was read at (0 = none).
	Epoch uint64
}

// StaticContext wraps a bare ratio in a FareContext, for callers that
// price outside any pipeline (recovered pre-pipeline records, tests).
func StaticContext(ratio float64) FareContext {
	return FareContext{BaseRatio: ratio, Multiplier: 1, Ratio: ratio, Cell: -1}
}

// Price returns the fare f·(detourDelta + tripDist) under the context.
func (fc FareContext) Price(detourDelta, tripDist float64) float64 {
	return fc.Ratio * (detourDelta + tripDist)
}

// MinPrice returns the zero-detour floor f·tripDist — the pruning
// floor the matchers terminate on.
func (fc FareContext) MinPrice(tripDist float64) float64 {
	return fc.Ratio * tripDist
}

// Surged reports whether the context carries a non-unit multiplier.
func (fc FareContext) Surged() bool { return fc.Multiplier != 1 }

// Stage is one quote-time pricing step. Stages run in pipeline order
// and mutate the Quote in place.
type Stage interface {
	// Name identifies the stage ("base", "surge", ...).
	Name() string
	// Apply folds the stage into the quote.
	Apply(q *Quote)
}

// Pipeline is an ordered stage list resolved per quote. A Pipeline is
// immutable after construction and safe for concurrent Resolve calls
// (stages must be too; the built-in ones are).
type Pipeline struct {
	stages []Stage
}

// NewPipeline builds a pipeline running the given stages in order.
func NewPipeline(stages ...Stage) *Pipeline {
	return &Pipeline{stages: stages}
}

// StageNames lists the pipeline's stages in execution order.
func (p *Pipeline) StageNames() []string {
	out := make([]string, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.Name()
	}
	return out
}

// Resolve runs the stages over one quote and freezes the result. cell
// is the request's origin grid cell (-1 when unknown); tripDist is
// dist(s,d).
func (p *Pipeline) Resolve(riders int, tripDist float64, cell int32) FareContext {
	q := Quote{Riders: riders, TripDist: tripDist, Cell: cell, Multiplier: 1}
	for _, st := range p.stages {
		st.Apply(&q)
	}
	ratio := q.BaseRatio
	if q.Multiplier != 1 {
		ratio = q.BaseRatio * q.Multiplier
	}
	return FareContext{
		BaseRatio:  q.BaseRatio,
		Multiplier: q.Multiplier,
		Ratio:      ratio,
		Cell:       q.Cell,
		Epoch:      q.Epoch,
	}
}

// baseStage seeds the quote with the static model's ratio.
type baseStage struct{ m Model }

func (b baseStage) Name() string   { return "base" }
func (b baseStage) Apply(q *Quote) { q.BaseRatio = b.m.Ratio(q.Riders) }

// Base returns the stage computing the paper ratio f_n from the model.
// Every pipeline starts with it.
func Base(m Model) Stage { return baseStage{m: m} }

// MultiplierSource yields a per-cell surge multiplier and the epoch it
// was computed at. Implemented by surge.Tracker; an interface here
// keeps the pricing package free of the tracker's dependencies.
type MultiplierSource interface {
	Multiplier(cell int32) (mult float64, epoch uint64)
}

// surgeStage scales the quote by the origin cell's surge multiplier.
type surgeStage struct{ src MultiplierSource }

func (s surgeStage) Name() string { return "surge" }

func (s surgeStage) Apply(q *Quote) {
	if q.Cell < 0 {
		return
	}
	mult, epoch := s.src.Multiplier(q.Cell)
	q.Epoch = epoch
	if mult != 1 {
		q.Multiplier *= mult
	}
}

// Surge returns the stage applying src's per-cell multiplier to the
// quote. Cells the source does not surge leave the quote untouched.
func Surge(src MultiplierSource) Stage { return surgeStage{src: src} }

// adjustStage wraps an arbitrary per-request adjustment.
type adjustStage struct {
	name string
	fn   func(*Quote)
}

func (a adjustStage) Name() string   { return a.name }
func (a adjustStage) Apply(q *Quote) { a.fn(q) }

// Adjust wraps fn as a named pipeline stage — the extension point for
// per-request adjustments (promotions, personalised fares, driver
// incentives) without changing the pipeline plumbing.
func Adjust(name string, fn func(*Quote)) Stage {
	return adjustStage{name: name, fn: fn}
}
