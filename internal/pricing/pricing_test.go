package pricing_test

import (
	"math"
	"testing"
	"testing/quick"

	"ptrider/internal/pricing"
)

func TestDefaultRatio(t *testing.T) {
	want := []float64{0.3, 0.4, 0.5, 0.6}
	for n := 1; n <= 4; n++ {
		if got := pricing.DefaultRatio(n); math.Abs(got-want[n-1]) > 1e-12 {
			t.Errorf("f_%d = %v, want %v", n, got, want[n-1])
		}
	}
}

// TestPaperWorkedExamplePrices checks the two prices printed in §2.4
// and §2.5: inserting R2 (2 riders) into c1 with detour delta 3 and
// dist(v12,v17)=7 costs f2·(3+7) = 4; the empty vehicle c2 at distance
// 8 costs f2·(8+2·7) = 8.8.
func TestPaperWorkedExamplePrices(t *testing.T) {
	m := pricing.NewModel(nil)
	if got := m.Price(2, 3, 7); math.Abs(got-4) > 1e-12 {
		t.Errorf("c1 price = %v, want 4", got)
	}
	// Empty vehicle: delta = dist(l,s) + dist(s,d), plus dist(s,d) again
	// from the model, i.e. f2·(8+7+7).
	if got := m.Price(2, 8+7, 7); math.Abs(got-8.8) > 1e-12 {
		t.Errorf("c2 price = %v, want 8.8", got)
	}
}

func TestCustomRatio(t *testing.T) {
	m := pricing.NewModel(func(n int) float64 { return 1.0 })
	if got := m.Price(3, 2, 5); got != 7 {
		t.Errorf("custom ratio price = %v, want 7", got)
	}
	if got := m.Ratio(9); got != 1.0 {
		t.Errorf("Ratio = %v", got)
	}
}

func TestMinPriceIsFloor(t *testing.T) {
	m := pricing.NewModel(nil)
	f := func(delta, trip float64) bool {
		delta = math.Abs(math.Mod(delta, 1e6))
		trip = math.Abs(math.Mod(trip, 1e6))
		return m.Price(2, delta, trip) >= m.MinPrice(2, trip)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := pricing.NewModel(nil).Validate(8); err != nil {
		t.Errorf("default ratio should validate: %v", err)
	}
	bad := pricing.NewModel(func(n int) float64 { return float64(2 - n) })
	if err := bad.Validate(4); err == nil {
		t.Error("non-positive ratio should fail validation")
	}
}

func TestPriceMonotoneInDetour(t *testing.T) {
	m := pricing.NewModel(nil)
	prev := -1.0
	for delta := 0.0; delta <= 100; delta += 10 {
		p := m.Price(1, delta, 50)
		if p <= prev {
			t.Fatalf("price not increasing with detour at delta=%v", delta)
		}
		prev = p
	}
}
