package surge

import (
	"math"
	"testing"
)

// advanceWith pushes one epoch with the given demand per cell and a
// uniform supply.
func advanceWith(t *Tracker, demand map[int32]int, supply []int) {
	for cell, n := range demand {
		for i := 0; i < n; i++ {
			t.RecordDemand(cell)
		}
	}
	t.Advance(supply)
}

func TestTiersMapRatioToMultiplier(t *testing.T) {
	// Alpha 1 disables smoothing so the multiplier tracks the raw
	// demand/supply ratio of the latest epoch.
	tr := New(4, Config{Alpha: 1})
	// Cell 0: ratio 1 (≤ 1.5) → 1.0×. Cell 1: ratio 1.6 → 1.2×.
	// Cell 2: ratio 3 → 1.5×. Cell 3: idle → 1.0×.
	advanceWith(tr, map[int32]int{0: 5, 1: 8, 2: 15}, []int{5, 5, 5, 5})
	for cell, want := range map[int32]float64{0: 1, 1: 1.2, 2: 1.5, 3: 1} {
		if m, ep := tr.Multiplier(cell); m != want || ep != 1 {
			t.Fatalf("cell %d: multiplier %v (epoch %d), want %v (epoch 1)", cell, m, ep, want)
		}
	}
}

func TestEMASmoothing(t *testing.T) {
	tr := New(1, Config{Alpha: 0.5})
	// One hot epoch: raw ratio 4, EMA 0.5·4 = 2 → just at the 2.0
	// boundary, which is exclusive, so still 1.2×.
	advanceWith(tr, map[int32]int{0: 4}, []int{1})
	if m, _ := tr.Multiplier(0); m != 1.2 {
		t.Fatalf("after one hot epoch: multiplier %v, want 1.2", m)
	}
	// A second hot epoch pushes the EMA to 0.5·4 + 0.5·2 = 3 → 1.5×.
	advanceWith(tr, map[int32]int{0: 4}, []int{1})
	if m, _ := tr.Multiplier(0); m != 1.5 {
		t.Fatalf("after two hot epochs: multiplier %v, want 1.5", m)
	}
	// Idle epochs decay the EMA back below the tiers.
	for i := 0; i < 6; i++ {
		tr.Advance([]int{1})
	}
	if m, _ := tr.Multiplier(0); m != 1 {
		t.Fatalf("after decay: multiplier %v, want 1", m)
	}
}

func TestSupplyFloorsAtOne(t *testing.T) {
	tr := New(2, Config{Alpha: 1})
	// Cell 0 has zero vehicles: any demand should surge rather than
	// divide by zero. Cell 1 has plenty of supply: same demand, no
	// surge.
	advanceWith(tr, map[int32]int{0: 3, 1: 3}, []int{0, 10})
	if m, _ := tr.Multiplier(0); m != 1.5 {
		t.Fatalf("empty cell multiplier %v, want 1.5", m)
	}
	if m, _ := tr.Multiplier(1); m != 1 {
		t.Fatalf("supplied cell multiplier %v, want 1", m)
	}
}

func TestOutOfRangeCells(t *testing.T) {
	tr := New(2, Config{})
	tr.RecordDemand(-1) // must not panic or count
	tr.RecordDemand(99)
	if m, ep := tr.Multiplier(-1); m != 1 || ep != 0 {
		t.Fatalf("out-of-range multiplier = %v, %d", m, ep)
	}
	tr.Advance([]int{1, 1})
	if m, _ := tr.Multiplier(0); m != 1 {
		t.Fatalf("ignored demand still surged: %v", m)
	}
}

func TestStateRoundTrip(t *testing.T) {
	tr := New(3, Config{Alpha: 0.5})
	advanceWith(tr, map[int32]int{0: 10, 2: 4}, []int{1, 1, 1})
	tr.RecordDemand(1) // pending mid-epoch demand
	st := tr.State()

	clone := New(3, Config{Alpha: 0.5})
	clone.Restore(st)
	if clone.Epoch() != tr.Epoch() {
		t.Fatalf("epoch %d != %d", clone.Epoch(), tr.Epoch())
	}
	_, ema1, mult1 := tr.Cells()
	_, ema2, mult2 := clone.Cells()
	for c := range ema1 {
		if ema1[c] != ema2[c] || mult1[c] != mult2[c] {
			t.Fatalf("cell %d: restored (%v,%v) != (%v,%v)", c, ema2[c], mult2[c], ema1[c], mult1[c])
		}
	}
	// Pending demand must survive too: advancing both produces the
	// same next epoch.
	tr.Advance([]int{1, 1, 1})
	clone.Advance([]int{1, 1, 1})
	_, ema1, _ = tr.Cells()
	_, ema2, _ = clone.Cells()
	for c := range ema1 {
		if math.Abs(ema1[c]-ema2[c]) != 0 {
			t.Fatalf("cell %d: post-advance ema %v != %v", c, ema2[c], ema1[c])
		}
	}
}

func TestRestoreEpochDerivesMultipliers(t *testing.T) {
	tr := New(2, Config{})
	tr.RecordDemand(0)
	tr.RestoreEpoch(7, []float64{2.5, 0.5})
	if ep := tr.Epoch(); ep != 7 {
		t.Fatalf("epoch %d, want 7", ep)
	}
	if m, _ := tr.Multiplier(0); m != 1.5 {
		t.Fatalf("cell 0 multiplier %v, want 1.5", m)
	}
	if m, _ := tr.Multiplier(1); m != 1 {
		t.Fatalf("cell 1 multiplier %v, want 1", m)
	}
	// Demand counters reset, matching the live post-Advance state.
	tr.Advance([]int{1, 1})
	_, ema, _ := tr.Cells()
	if want := 0.5 * 2.5; ema[0] != want {
		t.Fatalf("cell 0 ema %v, want %v (pre-restore demand leaked)", ema[0], want)
	}
}

func TestPanel(t *testing.T) {
	tr := New(4, Config{Alpha: 1})
	advanceWith(tr, map[int32]int{0: 8, 1: 15}, []int{5, 5, 5, 5})
	p := tr.Panel()
	if p.Epoch != 1 || p.Cells != 4 || p.ActiveCells != 2 {
		t.Fatalf("panel = %+v", p)
	}
	if p.MaxMultiplier != 1.5 {
		t.Fatalf("max multiplier %v", p.MaxMultiplier)
	}
	if want := (1.2 + 1.5 + 1 + 1) / 4; math.Abs(p.AvgMultiplier-want) > 1e-15 {
		t.Fatalf("avg multiplier %v, want %v", p.AvgMultiplier, want)
	}
}
