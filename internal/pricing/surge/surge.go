// Package surge tracks per-cell demand/supply pressure and turns it
// into tiered fare multipliers — the dynamic half of the pricing
// pipeline.
//
// The tracker is fed from both sides of the market the engine already
// observes: demand is the count of requests quoted out of each origin
// cell since the last epoch, supply is the grid index's per-cell
// vehicle counts at epoch time. Each epoch the demand/supply ratio is
// folded into an exponential moving average and mapped through a tier
// table (the Hintro FareConfig design: R ≤ 1.5 → 1.0×, R > 1.5 →
// 1.2×, R > 2.0 → 1.5×) to a per-cell multiplier.
//
// Multipliers only change at epoch boundaries, which the engine
// advances deterministically at tick time under its ledger lock — so a
// quote reads one consistent (multiplier, epoch) pair, and the WAL can
// journal each epoch's state for bit-identical recovery.
package surge

import "sync"

// Tier maps a smoothed demand/supply ratio threshold to a fare
// multiplier: a cell whose EMA ratio exceeds MinRatio surges at least
// Multiplier. Tiers are evaluated highest threshold first.
type Tier struct {
	// MinRatio is the exclusive demand/supply threshold.
	MinRatio float64
	// Multiplier is the fare multiplier above the threshold.
	Multiplier float64
}

// DefaultTiers returns the default tier table: ≤1.5 → 1.0×,
// >1.5 → 1.2×, >2.0 → 1.5×.
func DefaultTiers() []Tier {
	return []Tier{{MinRatio: 1.5, Multiplier: 1.2}, {MinRatio: 2.0, Multiplier: 1.5}}
}

// Config parameterises a Tracker.
type Config struct {
	// Tiers is the ratio→multiplier table (nil = DefaultTiers).
	Tiers []Tier
	// Alpha is the EMA weight of the newest epoch's ratio, in (0,1]
	// (0 = 0.5). 1 disables smoothing entirely.
	Alpha float64
}

// Tracker accumulates per-cell demand between epochs and exposes the
// per-cell multipliers of the current epoch. Safe for concurrent use:
// demand recording and multiplier reads are fine-grained, Advance
// serialises against both.
type Tracker struct {
	mu     sync.RWMutex
	tiers  []Tier // sorted by MinRatio ascending
	alpha  float64
	epoch  uint64
	demand []float64 // requests quoted per cell since the last Advance
	ema    []float64 // smoothed demand/supply ratio per cell
	mult   []float64 // current multiplier per cell (derived from ema)
}

// New returns a tracker over numCells grid cells.
func New(numCells int, cfg Config) *Tracker {
	tiers := cfg.Tiers
	if tiers == nil {
		tiers = DefaultTiers()
	}
	// Copy and sort ascending so multiplierFor scans highest-first.
	sorted := append([]Tier(nil), tiers...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].MinRatio < sorted[j-1].MinRatio; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	t := &Tracker{
		tiers:  sorted,
		alpha:  alpha,
		demand: make([]float64, numCells),
		ema:    make([]float64, numCells),
		mult:   make([]float64, numCells),
	}
	for i := range t.mult {
		t.mult[i] = 1
	}
	return t
}

// NumCells returns the tracked cell count.
func (t *Tracker) NumCells() int { return len(t.mult) }

// RecordDemand counts one quoted request out of cell. Out-of-range
// cells (including -1) are ignored.
func (t *Tracker) RecordDemand(cell int32) {
	if cell < 0 || int(cell) >= len(t.demand) {
		return
	}
	t.mu.Lock()
	t.demand[cell]++
	t.mu.Unlock()
}

// Multiplier returns cell's current fare multiplier and the epoch it
// was computed at. Out-of-range cells read 1.
func (t *Tracker) Multiplier(cell int32) (float64, uint64) {
	if cell < 0 || int(cell) >= len(t.mult) {
		return 1, 0
	}
	t.mu.RLock()
	m, ep := t.mult[cell], t.epoch
	t.mu.RUnlock()
	return m, ep
}

// Epoch returns the current epoch number (0 before the first Advance).
func (t *Tracker) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// multiplierFor maps a smoothed ratio through the tier table.
func (t *Tracker) multiplierFor(ema float64) float64 {
	for i := len(t.tiers) - 1; i >= 0; i-- {
		if ema > t.tiers[i].MinRatio {
			return t.tiers[i].Multiplier
		}
	}
	return 1
}

// Advance closes the current epoch: each cell's accumulated demand is
// divided by its supply (floored at one vehicle, so an empty cell
// surges on any demand rather than dividing by zero), folded into the
// EMA, and mapped to the next epoch's multiplier. supply[c] is the
// vehicle count of cell c; len(supply) must equal NumCells. Demand
// counters reset to zero.
func (t *Tracker) Advance(supply []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range t.demand {
		s := 1.0
		if c < len(supply) && supply[c] > 1 {
			s = float64(supply[c])
		}
		r := t.demand[c] / s
		t.ema[c] = t.alpha*r + (1-t.alpha)*t.ema[c]
		t.mult[c] = t.multiplierFor(t.ema[c])
		t.demand[c] = 0
	}
	t.epoch++
}

// State is a serialisable tracker snapshot. Multipliers are derived
// from the EMA on restore, so they are not stored.
type State struct {
	Epoch  uint64
	EMA    []float64 `json:",omitempty"`
	Demand []float64 `json:",omitempty"`
}

// State deep-copies the tracker's persistent state.
func (t *Tracker) State() State {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return State{
		Epoch:  t.epoch,
		EMA:    append([]float64(nil), t.ema...),
		Demand: append([]float64(nil), t.demand...),
	}
}

// Restore replaces the tracker's state with st (a snapshot restore).
// Cells beyond len(st.EMA) reset to idle.
func (t *Tracker) Restore(st State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch = st.Epoch
	for c := range t.ema {
		t.ema[c] = 0
		t.demand[c] = 0
		if c < len(st.EMA) {
			t.ema[c] = st.EMA[c]
		}
		if c < len(st.Demand) {
			t.demand[c] = st.Demand[c]
		}
		t.mult[c] = t.multiplierFor(t.ema[c])
	}
}

// RestoreEpoch replays one journaled epoch advance: the EMA vector and
// epoch number are installed, multipliers re-derived, and the demand
// counters reset — exactly the post-Advance state the live tracker
// had when the record was journaled.
func (t *Tracker) RestoreEpoch(epoch uint64, ema []float64) {
	t.Restore(State{Epoch: epoch, EMA: ema})
}

// Cells returns the epoch plus copies of the per-cell EMA ratios and
// multipliers, for surge introspection endpoints.
func (t *Tracker) Cells() (epoch uint64, ema, mult []float64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, append([]float64(nil), t.ema...), append([]float64(nil), t.mult...)
}

// Panel is the aggregated statistics view of a tracker.
type Panel struct {
	// Epoch is the current epoch number.
	Epoch uint64
	// Cells is the tracked cell count.
	Cells int
	// ActiveCells counts cells currently surged (multiplier > 1).
	ActiveCells int
	// MaxMultiplier is the largest current multiplier (1 when idle).
	MaxMultiplier float64
	// AvgMultiplier is the mean multiplier over all cells.
	AvgMultiplier float64
}

// Panel snapshots the aggregated view.
func (t *Tracker) Panel() Panel {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := Panel{Epoch: t.epoch, Cells: len(t.mult), MaxMultiplier: 1}
	if len(t.mult) == 0 {
		return p
	}
	sum := 0.0
	for _, m := range t.mult {
		sum += m
		if m > 1 {
			p.ActiveCells++
		}
		if m > p.MaxMultiplier {
			p.MaxMultiplier = m
		}
	}
	p.AvgMultiplier = sum / float64(len(t.mult))
	return p
}
