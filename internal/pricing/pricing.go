// Package pricing implements PTRider's price model (paper §2.4): the
// price of serving request R = ⟨s, d, n, w, σ⟩ with vehicle c is
//
//	price = f_n × (dist_trj − dist_tri + dist(s, d))
//
// where tri is c's current trip schedule, trj the schedule after
// inserting R, and f_n a per-rider-count price ratio. The default ratio
// is the paper's f_n = 0.3 + (n−1)·0.1; the demo's website interface
// lets the administrator supply a different "price calculator function",
// which maps here to providing a custom RatioFunc.
package pricing

import "fmt"

// RatioFunc maps the number of riders n (n ≥ 1) to the price ratio f_n.
type RatioFunc func(n int) float64

// DefaultRatio is the paper's ratio: f_n = 0.3 + (n−1)·0.1.
func DefaultRatio(n int) float64 { return 0.3 + float64(n-1)*0.1 }

// Model prices ridesharing requests. The zero value is not usable;
// construct with NewModel.
type Model struct {
	ratio RatioFunc
}

// NewModel returns a Model using the given ratio function, or the
// paper's default when ratio is nil.
func NewModel(ratio RatioFunc) Model {
	if ratio == nil {
		ratio = DefaultRatio
	}
	return Model{ratio: ratio}
}

// Ratio returns f_n for n riders.
func (m Model) Ratio(n int) float64 { return m.ratio(n) }

// Price returns the price for n riders given the detour delta
// (dist_trj − dist_tri) and the direct trip distance dist(s, d).
func (m Model) Price(n int, detourDelta, tripDist float64) float64 {
	return m.ratio(n) * (detourDelta + tripDist)
}

// MinPrice returns the lowest price any vehicle could offer for n
// riders over trip distance dist(s,d): the zero-detour price
// f_n × dist(s,d). Single- and dual-side search use it as the price
// floor in their termination conditions.
func (m Model) MinPrice(n int, tripDist float64) float64 {
	return m.ratio(n) * tripDist
}

// Validate checks that the ratio is positive for rider counts 1..maxN;
// a non-positive ratio would break the search pruning, which assumes
// price grows with detour.
func (m Model) Validate(maxN int) error {
	for n := 1; n <= maxN; n++ {
		if m.ratio(n) <= 0 {
			return fmt.Errorf("pricing: ratio f_%d = %v is not positive", n, m.ratio(n))
		}
	}
	return nil
}
