// Package testnet builds the small deterministic road networks used by
// test suites across PTRider. It is imported only from tests; keeping it
// as a regular package lets every module share the same generators
// without duplicating them in each *_test.go file.
package testnet

import (
	"math/rand"

	"ptrider/internal/geo"
	"ptrider/internal/roadnet"
)

// Lattice builds a connected w×h grid road network embedded in the
// plane with the given spacing in metres. Vertex (i, j) has id j*w+i.
// Edge weights are the Euclidean length scaled by a random factor in
// [1, 1.5) drawn from rng, so the graph is metric. Coordinates are
// jittered by up to 10% of the spacing to avoid degenerate symmetry.
func Lattice(rng *rand.Rand, w, h int, spacing float64) *roadnet.Graph {
	b := roadnet.NewBuilder(w*h, 4*w*h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			jx := (rng.Float64() - 0.5) * 0.2 * spacing
			jy := (rng.Float64() - 0.5) * 0.2 * spacing
			b.AddVertex(geo.Point{X: float64(i)*spacing + jx, Y: float64(j)*spacing + jy})
		}
	}
	id := func(i, j int) roadnet.VertexID { return roadnet.VertexID(j*w + i) }
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			if i+1 < w {
				b.AddUndirectedEdge(id(i, j), id(i+1, j), latticeWeight(rng, spacing))
			}
			if j+1 < h {
				b.AddUndirectedEdge(id(i, j), id(i, j+1), latticeWeight(rng, spacing))
			}
		}
	}
	return b.MustBuild()
}

// latticeWeight returns a weight safely above the maximal possible
// jittered Euclidean edge length for the given spacing.
func latticeWeight(rng *rand.Rand, spacing float64) float64 {
	// Max jitter moves both endpoints 10% toward each other in x and y;
	// 1.3*spacing exceeds the worst-case Euclidean length (~1.22*spacing).
	return spacing * (1.3 + 0.5*rng.Float64())
}

// RandomConnected builds a connected non-embedded undirected graph with
// n vertices. A random spanning chain guarantees connectivity; extra
// random edges are added until the graph has roughly extraPerVertex
// additional undirected edges per vertex. Weights are uniform in
// [1, 100).
func RandomConnected(rng *rand.Rand, n, extraPerVertex int) *roadnet.Graph {
	b := roadnet.NewBuilder(n, 2*(n+n*extraPerVertex))
	for i := 0; i < n; i++ {
		b.AddPlainVertex()
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddUndirectedEdge(roadnet.VertexID(perm[i-1]), roadnet.VertexID(perm[i]), 1+99*rng.Float64())
	}
	for k := 0; k < n*extraPerVertex; k++ {
		u := roadnet.VertexID(rng.Intn(n))
		v := roadnet.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddUndirectedEdge(u, v, 1+99*rng.Float64())
	}
	return b.MustBuild()
}

// Line builds the path graph v0 - v1 - … - v(n-1) with every edge of
// the given weight, embedded on the x-axis with matching spacing.
func Line(n int, weight float64) *roadnet.Graph {
	b := roadnet.NewBuilder(n, 2*(n-1))
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{X: float64(i) * weight})
	}
	for i := 1; i < n; i++ {
		b.AddUndirectedEdge(roadnet.VertexID(i-1), roadnet.VertexID(i), weight)
	}
	return b.MustBuild()
}

// PaperNetwork reconstructs a 17-vertex road network consistent with
// every number printed in the PTRider paper's worked examples
// (§2.4–§2.5, Fig. 1a):
//
//   - dist(v12, v17) = 7
//   - the pick-up distance of c1 (schedule ⟨v1, v2, v16⟩) for request
//     R2 = ⟨v12, v17, 2, …⟩ is dist(v1,v2) + dist(v2,v12) = 14,
//   - inserting R2 into c1 gives the schedule ⟨v1, v2, v12, v16, v17⟩
//     with detour delta 3, hence price f2·(3+7) = 4,
//   - the pick-up distance of the empty vehicle c2 at v13 is
//     dist(v13, v12) = 8, hence price f2·(8+2·7) = 8.8.
//
// The figure's exact edge weights are unreadable in the source PDF, so
// the network below realises those distances on a 17-vertex topology.
// The paper's vertex vK is VertexID K-1. Vertices carry a deliberately
// compact embedding (all within a 0.016-unit strip) so the grid index
// can be built over the network while every Euclidean distance stays
// far below the corresponding network distance — the bounds remain
// valid and the worked-example numbers are pure network distances.
func PaperNetwork() *roadnet.Graph {
	b := roadnet.NewBuilder(17, 40)
	for i := 0; i < 17; i++ {
		b.AddVertex(geo.Point{X: float64(i) * 0.001})
	}
	v := func(k int) roadnet.VertexID { return roadnet.VertexID(k - 1) }
	// Backbone realising the worked-example distances:
	//   dist(v1,v2)=6 and dist(v2,v12)=8, so c1's pick-up distance along
	//   ⟨v1,v2,v12,…⟩ is 14 ✓;
	//   dist(v2,v16)=12 (direct edge; the detour v2→v12→v16 ties at
	//   8+4=12, so no shortcut), giving dist_tr1 = 6+12 = 18;
	//   dist(v12,v16)=4 and dist(v16,v17)=3, giving dist_tr2 =
	//   6+8+4+3 = 21 and detour delta 21−18 = 3, hence price
	//   f2·(3+7) = 4 ✓;
	//   dist(v12,v17)=7 (direct edge; v12→v16→v17 ties at 4+3=7), and
	//   the in-schedule distance v12→v16→v17 = 7 ≤ 1.2·7 = 8.4 keeps
	//   R2's service constraint ✓;
	//   dist(v13,v12)=8, so the empty vehicle c2 offers pick-up 8 and
	//   price f2·(8+2·7) = 8.8 ✓.
	b.AddUndirectedEdge(v(1), v(2), 6)
	b.AddUndirectedEdge(v(2), v(12), 8)
	b.AddUndirectedEdge(v(2), v(16), 12)
	b.AddUndirectedEdge(v(12), v(16), 4)
	b.AddUndirectedEdge(v(16), v(17), 3)
	b.AddUndirectedEdge(v(12), v(17), 7)
	b.AddUndirectedEdge(v(13), v(12), 8)
	// Remaining vertices of Fig. 1(a), attached with weights large
	// enough not to create shortcuts between the vertices above.
	filler := [][2]int{
		{3, 2}, {4, 3}, {5, 4}, {6, 5}, {7, 6}, {8, 7}, {9, 8},
		{10, 9}, {11, 10}, {14, 13}, {15, 14},
	}
	for _, f := range filler {
		b.AddUndirectedEdge(v(f[0]), v(f[1]), 30)
	}
	return b.MustBuild()
}
