package multicity_test

// Durability tests at the router level: whole-process restart of the
// sharded backend (per-city journals plus the relay trip ledger), and
// the relay two-phase-commit crash window — a simulated process death
// between the leg-1 and leg-2 commits must be compensated on recovery
// so no vehicle stays reserved for a trip that will never run.

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/multicity"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
	"ptrider/internal/wal"
)

// durableTwinRouter builds (or recovers) the two-city relay router
// over a shared WAL directory. Construction errors are returned, not
// fatal — the mid-compensate test expects one.
func durableTwinRouter(t testing.TB, dir string, inj *wal.Injector) (*multicity.Router, error) {
	t.Helper()
	ga, err := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, Seed: 1})
	if err != nil {
		t.Fatalf("gen alpha: %v", err)
	}
	gb, err := gen.GenerateNetwork(gen.CityConfig{Width: 8, Height: 8, OriginX: 20000, Seed: 2})
	if err != nil {
		t.Fatalf("gen beta: %v", err)
	}
	return multicity.NewWithConfig([]multicity.CitySpec{
		{Name: "alpha", Graph: ga, Config: core.Config{Capacity: 4, Seed: 1}, Vehicles: 10},
		{Name: "beta", Graph: gb, Config: core.Config{Capacity: 4, Seed: 2}, Vehicles: 10},
	}, multicity.RouterConfig{
		EnableRelay: true,
		Relay:       relay.Config{TransferBufferSeconds: 120},
		Durability:  wal.ModeSync, WALDir: dir, FaultInjector: inj,
	})
}

// fleetLoad sums assigned work across a city's vehicles.
func fleetLoad(t *testing.T, r *multicity.Router, city string) (pending, onboard int) {
	t.Helper()
	views, err := r.VehicleViews(city, 0)
	if err != nil {
		t.Fatalf("vehicles %s: %v", city, err)
	}
	for _, v := range views {
		pending += v.Pending
		onboard += v.Onboard
	}
	return pending, onboard
}

// crashRelayCommitWindow drives a relay trip into the two-phase-commit
// window and kills the process there: leg 1 commits for real (and is
// journaled by the origin engine), then the leg-2 commit brings every
// shard down. Returns the quoted record.
func crashRelayCommitWindow(t *testing.T, r *multicity.Router) *multicity.Record {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	rec := quoteRelay(t, r, "alpha", "beta", rng)
	r.RelayScheduler().SetCommitOverride(func(leg int, eng relay.LegEngine, id core.RequestID, opt int) error {
		if leg == 1 {
			return eng.Choose(id, opt)
		}
		r.Kill() // simulated process death between the leg commits
		return core.ErrCrashed
	})
	if err := r.Choose(rec.ID, 0); err == nil {
		t.Fatal("choose succeeded through a killed process")
	}
	return rec
}

// alphaConfig is the alpha city's effective engine config, for peeking
// at its shard journal directly.
func alphaConfig(dir string) core.Config {
	return core.Config{
		Capacity: 4, Seed: 1,
		Durability: wal.ModeSync, WALDir: filepath.Join(dir, "city-alpha"),
	}
}

// TestRelayCrashWindowCompensatedOnRestart is the satellite-4 harness:
// kill the process between a relay trip's leg-1 and leg-2 commits,
// restart, and verify recovery released the leg-1 reservation — the
// origin fleet ends with zero assigned work and the trip aborted.
func TestRelayCrashWindowCompensatedOnRestart(t *testing.T) {
	dir := t.TempDir()
	r, err := durableTwinRouter(t, dir, nil)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	rec := crashRelayCommitWindow(t, r)

	// Peek at the crash state through a raw engine recovery of the
	// alpha shard: the journal must hold the committed leg-1 — the
	// leaked reservation the router-level recovery has to repair.
	ga, err := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	peek, err := core.NewEngine(ga, alphaConfig(dir))
	if err != nil {
		t.Fatalf("peek recovery: %v", err)
	}
	if got := peek.Stats().Assigned; got != 1 {
		t.Fatalf("crash state holds %d assigned legs, want the leaked 1", got)
	}
	if err := peek.Close(); err != nil {
		t.Fatalf("peek close: %v", err)
	}

	// Full restart: relay recovery finds the open intent and
	// compensates it.
	r2, err := durableTwinRouter(t, dir, nil)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	engA, _ := r2.Engine("alpha")
	if got := engA.Stats().Assigned; got != 0 {
		t.Fatalf("leg-1 reservation survived compensation: %d assigned", got)
	}
	if p, o := fleetLoad(t, r2, "alpha"); p != 0 || o != 0 {
		t.Fatalf("alpha fleet leaked work: pending %d, onboard %d", p, o)
	}
	got, err := r2.Request(rec.ID)
	if err != nil {
		t.Fatalf("trip lookup after restart: %v", err)
	}
	if got.Relay == nil || got.Relay.State != relay.StateAborted {
		t.Fatalf("trip not aborted after compensation: %+v", got.Relay)
	}
	if st := r2.Stats(); st.Relay.Aborted == 0 {
		t.Fatalf("relay panel shows no aborts: %+v", st.Relay)
	}
	if err := r2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after compensation: %v", err)
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestRelayMidCompensateCrashThenRecover crashes the recovery itself:
// a fault armed at the mid-compensate point kills the first restart,
// and a second restart must finish the compensation without
// double-cancelling anything.
func TestRelayMidCompensateCrashThenRecover(t *testing.T) {
	dir := t.TempDir()
	r, err := durableTwinRouter(t, dir, nil)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	crashRelayCommitWindow(t, r)

	inj := &wal.Injector{}
	inj.Arm(wal.CrashMidCompensate, 0)
	if _, err := durableTwinRouter(t, dir, inj); !errors.Is(err, wal.ErrCrashed) {
		t.Fatalf("restart with armed mid-compensate fault: err %v, want ErrCrashed", err)
	}

	r3, err := durableTwinRouter(t, dir, nil)
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	engA, _ := r3.Engine("alpha")
	if got := engA.Stats().Assigned; got != 0 {
		t.Fatalf("leg-1 reservation survived double recovery: %d assigned", got)
	}
	if p, o := fleetLoad(t, r3, "alpha"); p != 0 || o != 0 {
		t.Fatalf("alpha fleet leaked work: pending %d, onboard %d", p, o)
	}
	if err := r3.CheckInvariants(); err != nil {
		t.Fatalf("invariants after double recovery: %v", err)
	}
	if err := r3.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestRouterDurableRestart round-trips the whole sharded backend
// through a graceful shutdown: lifecycle counters, the clock, request
// outcomes and fleet sizes must survive, and the restart must not
// re-seed recovered fleets.
func TestRouterDurableRestart(t *testing.T) {
	dir := t.TempDir()
	r, err := durableTwinRouter(t, dir, nil)
	if err != nil {
		t.Fatalf("router: %v", err)
	}

	// Same-city workload in alpha: submit until quoted, choose, move.
	rng := rand.New(rand.NewSource(7))
	engA, _ := r.Engine("alpha")
	nv := engA.Graph().NumVertices()
	var chosen core.RequestID
	for attempt := 0; attempt < 50 && chosen == 0; attempt++ {
		s := roadnet.VertexID(rng.Intn(nv))
		d := roadnet.VertexID(rng.Intn(nv))
		if s == d {
			continue
		}
		rec, err := r.SubmitIn("alpha", s, d, 1, core.DefaultConstraints())
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if len(rec.Options) > 0 {
			if err := r.Choose(rec.ID, 0); err != nil {
				t.Fatalf("choose: %v", err)
			}
			chosen = rec.ID
		}
	}
	if chosen == 0 {
		t.Fatal("no quoted submission in 50 attempts")
	}
	if _, err := r.Tick(5); err != nil {
		t.Fatalf("tick: %v", err)
	}
	before := r.Stats()
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r2, err := durableTwinRouter(t, dir, nil)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	for _, name := range []string{"alpha", "beta"} {
		eng, _ := r2.Engine(name)
		if !eng.Recovered() {
			t.Fatalf("%s engine did not recover", name)
		}
		if n := eng.NumVehicles(); n != 10 {
			t.Fatalf("%s fleet re-seeded: %d vehicles", name, n)
		}
	}
	after := r2.Stats()
	if after.Total.Requests != before.Total.Requests ||
		after.Total.Assigned != before.Total.Assigned ||
		after.Total.Declined != before.Total.Declined ||
		after.Total.Completed != before.Total.Completed {
		t.Fatalf("counters diverged across restart:\n got %+v\nwant %+v", after.Total, before.Total)
	}
	if after.Total.Clock != before.Total.Clock {
		t.Fatalf("clock %v != %v across restart", after.Total.Clock, before.Total.Clock)
	}
	rec, err := r2.Request(chosen)
	if err != nil {
		t.Fatalf("request after restart: %v", err)
	}
	if rec.Status != core.StatusAssigned && rec.Status != core.StatusOnboard && rec.Status != core.StatusCompleted {
		t.Fatalf("chosen request recovered as %v", rec.Status)
	}
	if err := r2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after restart: %v", err)
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
