package multicity_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/geo"
	"ptrider/internal/multicity"
	"ptrider/internal/roadnet"
)

// twinRouter builds a two-city router ("alpha" at the origin, "beta"
// offset to the east) over small synthetic cities.
func twinRouter(t *testing.T, cfg core.Config, taxisA, taxisB int) *multicity.Router {
	t.Helper()
	ga, err := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, Seed: 1})
	if err != nil {
		t.Fatalf("gen alpha: %v", err)
	}
	gb, err := gen.GenerateNetwork(gen.CityConfig{Width: 8, Height: 8, OriginX: 20000, Seed: 2})
	if err != nil {
		t.Fatalf("gen beta: %v", err)
	}
	cfgA, cfgB := cfg, cfg
	cfgA.Seed, cfgB.Seed = 1, 2
	r, err := multicity.New([]multicity.CitySpec{
		{Name: "alpha", Graph: ga, Config: cfgA, Vehicles: taxisA},
		{Name: "beta", Graph: gb, Config: cfgB, Vehicles: taxisB},
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	return r
}

// cityPoints returns the coordinates of two distinct random vertices of
// a city.
func cityPoints(t *testing.T, r *multicity.Router, name string, rng *rand.Rand) (geo.Point, geo.Point) {
	t.Helper()
	eng, err := r.Engine(name)
	if err != nil {
		t.Fatalf("engine %s: %v", name, err)
	}
	g := eng.Graph()
	for {
		s := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if s != d {
			return g.Point(s), g.Point(d)
		}
	}
}

func TestRouterAssignsByOriginCoordinate(t *testing.T) {
	r := twinRouter(t, core.Config{Capacity: 4}, 8, 8)
	rng := rand.New(rand.NewSource(10))

	o, d := cityPoints(t, r, "alpha", rng)
	if city, err := r.Locate(o); err != nil || city != "alpha" {
		t.Fatalf("Locate(alpha point) = %q, %v", city, err)
	}
	rec, err := r.Submit(o, d, 1)
	if err != nil {
		t.Fatalf("submit alpha: %v", err)
	}
	if rec.City != "alpha" {
		t.Fatalf("record city = %q, want alpha", rec.City)
	}

	o, d = cityPoints(t, r, "beta", rng)
	rec, err = r.Submit(o, d, 1)
	if err != nil {
		t.Fatalf("submit beta: %v", err)
	}
	if rec.City != "beta" {
		t.Fatalf("record city = %q, want beta", rec.City)
	}
}

func TestRouterRejectsCrossCityTrips(t *testing.T) {
	r := twinRouter(t, core.Config{Capacity: 4}, 5, 5)
	rng := rand.New(rand.NewSource(11))
	oa, _ := cityPoints(t, r, "alpha", rng)
	ob, _ := cityPoints(t, r, "beta", rng)

	_, err := r.Submit(oa, ob, 1)
	if err == nil {
		t.Fatal("cross-city trip accepted")
	}
	if !errors.Is(err, multicity.ErrCrossCity) {
		t.Fatalf("cross-city error %v does not match ErrCrossCity", err)
	}
	var cce *multicity.CrossCityError
	if !errors.As(err, &cce) {
		t.Fatalf("cross-city error %v is not a *CrossCityError", err)
	}
	if cce.Origin != "alpha" || cce.Dest != "beta" {
		t.Fatalf("cross-city error cities = %q → %q", cce.Origin, cce.Dest)
	}

	// A coordinate in the sea between the cities belongs to no one.
	sea := geo.Point{X: 12000, Y: 0}
	if _, err := r.Submit(sea, ob, 1); !errors.Is(err, multicity.ErrNoCity) {
		t.Fatalf("no-city origin error = %v, want ErrNoCity", err)
	}
	if _, err := r.Locate(sea); !errors.Is(err, multicity.ErrNoCity) {
		t.Fatalf("Locate(sea) error = %v, want ErrNoCity", err)
	}

	// The typed rejection also surfaces per item in batches, without
	// poisoning the other items.
	ga, da := cityPoints(t, r, "alpha", rng)
	recs, err := r.SubmitBatch([]multicity.BatchItem{
		{O: ga, D: da, Riders: 1, Constraints: core.DefaultConstraints()},
		{O: oa, D: ob, Riders: 1, Constraints: core.DefaultConstraints()},
	})
	if !errors.Is(err, multicity.ErrCrossCity) {
		t.Fatalf("batch error = %v, want ErrCrossCity", err)
	}
	if recs[0] == nil || recs[0].City != "alpha" {
		t.Fatalf("in-city batch item did not survive: %+v", recs[0])
	}
	if recs[1] != nil {
		t.Fatalf("cross-city batch item produced a record: %+v", recs[1])
	}
}

func TestRouterGlobalIDsRoundTrip(t *testing.T) {
	r := twinRouter(t, core.Config{Capacity: 4}, 10, 10)
	rng := rand.New(rand.NewSource(12))

	seen := map[core.RequestID]string{}
	for i := 0; i < 20; i++ {
		name := "alpha"
		if i%2 == 1 {
			name = "beta"
		}
		o, d := cityPoints(t, r, name, rng)
		rec, err := r.Submit(o, d, 1)
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		if prev, dup := seen[rec.ID]; dup {
			t.Fatalf("global id %d reused across %s and %s", rec.ID, prev, name)
		}
		seen[rec.ID] = name

		got, err := r.Request(rec.ID)
		if err != nil {
			t.Fatalf("request %d: %v", rec.ID, err)
		}
		if got.City != name || got.ID != rec.ID {
			t.Fatalf("round trip: got city %q id %d, want %q %d", got.City, got.ID, name, rec.ID)
		}

		if len(rec.Options) > 0 && i%4 == 0 {
			if err := r.Choose(rec.ID, 0); err != nil {
				t.Fatalf("choose %d: %v", rec.ID, err)
			}
			if got, _ := r.Request(rec.ID); got.Status != core.StatusAssigned {
				t.Fatalf("after choose: status %v", got.Status)
			}
		} else {
			if err := r.Decline(rec.ID); err != nil {
				t.Fatalf("decline %d: %v", rec.ID, err)
			}
		}
	}
	if _, err := r.Request(core.RequestID(1)); err == nil {
		// id 1 < numCities is outside the striped namespace.
		t.Fatal("sub-stride id accepted")
	}
}

// TestRouterStatsIsolation pins per-city isolation under concurrent
// submit/tick: city A's counters reflect only city A's traffic, and the
// aggregate is the sum of the cities.
func TestRouterStatsIsolation(t *testing.T) {
	r := twinRouter(t, core.Config{Capacity: 4}, 8, 8)

	const perCity = 12
	var wg sync.WaitGroup
	for w, name := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(seed int64, name string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perCity; i++ {
				o, d := cityPoints(t, r, name, rng)
				rec, err := r.Submit(o, d, 1)
				if err != nil {
					t.Errorf("submit %s: %v", name, err)
					return
				}
				if len(rec.Options) > 0 && i%2 == 0 {
					_ = r.Choose(rec.ID, 0)
				} else {
					_ = r.Decline(rec.ID)
				}
				if i%3 == 0 {
					if _, err := r.Tick(1); err != nil {
						t.Errorf("tick: %v", err)
						return
					}
				}
			}
		}(int64(20+w), name)
	}
	wg.Wait()

	st := r.Stats()
	a, b := st.Cities["alpha"], st.Cities["beta"]
	if a.Requests != perCity || b.Requests != perCity {
		t.Fatalf("per-city requests = %d / %d, want %d each", a.Requests, b.Requests, perCity)
	}
	if st.Total.Requests != a.Requests+b.Requests {
		t.Fatalf("total requests %d != %d + %d", st.Total.Requests, a.Requests, b.Requests)
	}
	if st.Total.Assigned != a.Assigned+b.Assigned || st.Total.Completed != a.Completed+b.Completed {
		t.Fatalf("total lifecycle counters not the sum of cities: %+v vs %+v / %+v", st.Total, a, b)
	}
	if a.Clock != b.Clock {
		t.Fatalf("city clocks diverged under shared ticks: %v vs %v", a.Clock, b.Clock)
	}
	if st.Total.Clock != a.Clock {
		t.Fatalf("total clock %v != city clock %v", st.Total.Clock, a.Clock)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestRouterConcurrentStress is the multi-city race stress in the style
// of core's TestConcurrentStress: goroutines mixing coordinate submits,
// direct submits, batches, chooses, declines, router ticks and stats
// reads across two cities, with invariants checked during and after.
func TestRouterConcurrentStress(t *testing.T) {
	r := twinRouter(t, core.Config{Capacity: 3, CommitSlack: 0.2}, 10, 10)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			name := "alpha"
			if seed%2 == 0 {
				name = "beta"
			}
			other := "beta"
			if name == "beta" {
				other = "alpha"
			}
			for i := 0; i < 40; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					o, d := cityPoints(t, r, name, rng)
					rec, err := r.Submit(o, d, 1+rng.Intn(2))
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 && rng.Intn(3) > 0 {
						// Stale-candidate failures under concurrent ticks
						// are expected behaviour.
						_ = r.Choose(rec.ID, rng.Intn(len(rec.Options)))
					} else {
						_ = r.Decline(rec.ID)
					}
				case 4:
					// Cross-city attempts must fail typed, never crash.
					o, _ := cityPoints(t, r, name, rng)
					_, d := cityPoints(t, r, other, rng)
					if _, err := r.Submit(o, d, 1); !errors.Is(err, multicity.ErrCrossCity) {
						errs <- err
						return
					}
				case 5, 6:
					if _, err := r.Tick(0.5 + rng.Float64()); err != nil {
						errs <- err
						return
					}
				case 7:
					st := r.Stats()
					if st.Total.Assigned > st.Total.Requests {
						errs <- errors.New("total assigned > requests")
						return
					}
					if _, err := r.VehicleViews(name, 5); err != nil {
						errs <- err
						return
					}
				case 8:
					o1, d1 := cityPoints(t, r, name, rng)
					o2, d2 := cityPoints(t, r, other, rng)
					_, _ = r.SubmitBatch([]multicity.BatchItem{
						{O: o1, D: d1, Riders: 1, Constraints: core.DefaultConstraints(),
							Choose: func(opts []core.Option) int {
								if len(opts) == 0 {
									return -1
								}
								return 0
							}},
						{O: o2, D: d2, Riders: 1, Constraints: core.DefaultConstraints()},
					})
				case 9:
					o, d := cityPoints(t, r, other, rng)
					rec, err := r.Submit(o, d, 1)
					if err != nil {
						errs <- err
						return
					}
					_ = r.Decline(rec.ID)
				}
				if i%16 == 0 {
					if err := r.CheckInvariants(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("stress worker: %v", err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}
	st := r.Stats()
	if st.Cities["alpha"].Requests == 0 || st.Cities["beta"].Requests == 0 {
		t.Fatalf("storm left a city idle: %+v", st.Total)
	}

	// Drain: both fleets must still finish every onboard rider.
	for i := 0; i < 4000 && st.Total.Completed < st.Total.Assigned; i++ {
		if _, err := r.Tick(1); err != nil {
			t.Fatalf("drain tick: %v", err)
		}
		st = r.Stats()
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
}

func TestRouterConstructionValidation(t *testing.T) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 5, Height: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multicity.New(nil); err == nil {
		t.Error("empty city list accepted")
	}
	if _, err := multicity.New([]multicity.CitySpec{{Name: "", Graph: g}}); err == nil {
		t.Error("unnamed city accepted")
	}
	if _, err := multicity.New([]multicity.CitySpec{
		{Name: "a", Graph: g}, {Name: "a", Graph: g},
	}); err == nil {
		t.Error("duplicate city name accepted")
	}
	// Two cities over the same graph occupy the same region.
	if _, err := multicity.New([]multicity.CitySpec{
		{Name: "a", Graph: g}, {Name: "b", Graph: g},
	}); err == nil {
		t.Error("overlapping regions accepted")
	}
	if _, err := multicity.New([]multicity.CitySpec{{Name: "a", Graph: nil}}); err == nil {
		t.Error("nil graph accepted")
	}

	r, err := multicity.New([]multicity.CitySpec{{Name: "a", Graph: g, Vehicles: 2}})
	if err != nil {
		t.Fatalf("single city: %v", err)
	}
	if _, err := r.Engine("nope"); !errors.Is(err, multicity.ErrUnknownCity) {
		t.Errorf("unknown city error = %v", err)
	}
	if _, err := r.VehicleViews("nope", 0); !errors.Is(err, multicity.ErrUnknownCity) {
		t.Errorf("unknown city views error = %v", err)
	}
}

func TestRouterTickClassifiesAndIsolatesFailures(t *testing.T) {
	r := twinRouter(t, core.Config{Capacity: 2}, 2, 2)
	if _, err := r.Tick(-1); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("negative tick error = %v, want ErrInvalidArgument", err)
	}
	st := r.Stats()
	if st.Total.Clock != 0 {
		t.Fatalf("negative tick moved a clock: %v", st.Total.Clock)
	}
	if _, err := r.Tick(2); err != nil {
		t.Fatalf("tick: %v", err)
	}
	if st := r.Stats(); st.Cities["alpha"].Clock != 2 || st.Cities["beta"].Clock != 2 {
		t.Fatalf("clocks after tick: %+v", st)
	}
}

func TestBuildFromSpec(t *testing.T) {
	r, err := multicity.BuildFromSpec("east:6x6:4,west:5x5:3", core.Config{Capacity: 4}, 9)
	if err != nil {
		t.Fatalf("BuildFromSpec: %v", err)
	}
	if got := r.CityNames(); len(got) != 2 || got[0] != "east" || got[1] != "west" {
		t.Fatalf("cities = %v", got)
	}
	east, _ := r.Engine("east")
	west, _ := r.Engine("west")
	if east.NumVehicles() != 4 || west.NumVehicles() != 3 {
		t.Fatalf("vehicles = %d / %d", east.NumVehicles(), west.NumVehicles())
	}
	re, _ := r.Region("east")
	rw, _ := r.Region("west")
	if re.Intersects(rw) {
		t.Fatalf("spec regions overlap: %+v %+v", re, rw)
	}
	for _, bad := range []string{"", "east", "east:6:4", "east:axb:4", "east:6x6:x"} {
		if _, err := multicity.BuildFromSpec(bad, core.Config{}, 1); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}
