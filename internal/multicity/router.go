// Package multicity serves many cities behind one front door: a Router
// owns N fully independent core.Engine instances — one immutable
// routing substrate, fleet, grid index and pricing configuration per
// city — and assigns every request to the city whose service region
// contains its origin coordinate.
//
// Isolation is the design point. Cities share no mutable state: a
// hot-cell storm in one city cannot stall another's matchers, per-city
// pricing and constraint settings stay independently tunable, and each
// city's Tick runs on its own goroutine (per-city movement is naturally
// parallel work). The router layer adds only coordinate→city
// assignment, a global request-id namespace, concurrent fan-out of
// batches and ticks, and cross-city aggregation of the statistics
// panel.
//
// Cross-city trips (origin in one city, destination in another) are
// rejected with a typed error (*CrossCityError, matchable as
// ErrCrossCity) by default. With RouterConfig.EnableRelay they are
// served instead: the relay scheduler (internal/relay) quotes the trip
// as two coordinated legs over precomputed hand-off gateways, composes
// the per-leg skylines into a joint one, and commits both legs with a
// two-phase protocol — see the relay package for the full design. The
// typed rejection stays the default so callers relying on it keep it.
//
// Request ids are made globally unique by striding: a request answered
// by city c out of n receives id local*n + c, so Choose/Decline/Request
// route by plain arithmetic with no shared map — the router holds no
// lock on the request path at all. With a single city the encoding is
// the identity, so routing adds no id translation overhead there.
// Relay trips live in the negative half of the id space (trip t is
// global id −t), so same-city routing pays nothing for them either.
package multicity

import (
	"fmt"
	"path/filepath"
	"sync"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/geo"
	"ptrider/internal/kinetic"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
	"ptrider/internal/telemetry"
	"ptrider/internal/wal"
)

// The routing rejections are core-level Service errors (every backend
// shares one taxonomy); the historical multicity names remain as
// aliases so existing errors.Is/errors.As call sites keep working.
var (
	// ErrCrossCity matches (with errors.Is) the rejection of a trip
	// whose origin and destination fall in different cities.
	ErrCrossCity = core.ErrCrossCity
	// ErrNoCity matches the rejection of a coordinate outside every
	// city's service region.
	ErrNoCity = core.ErrNoCity
	// ErrUnknownCity matches lookups of a city name the router does not
	// own.
	ErrUnknownCity = core.ErrUnknownCity
)

// CrossCityError reports a rejected cross-city trip with the two cities
// involved. errors.Is(err, ErrCrossCity) matches it.
type CrossCityError = core.CrossCityError

// CitySpec declares one city of a Router.
type CitySpec struct {
	// Name identifies the city in every view; must be unique and
	// non-empty.
	Name string
	// Graph is the city's embedded road network.
	Graph *roadnet.Graph
	// Region is the city's service area. The zero Rect means "the
	// graph's bounding box". Regions of different cities must be
	// disjoint — they are what assigns a coordinate to a city.
	Region geo.Rect
	// Config is the city's engine configuration (capacity, constraints,
	// pricing, matching algorithm — independently tunable per market).
	Config core.Config
	// Vehicles places this many taxis uniformly at random.
	Vehicles int
}

// city is one registered city.
type city struct {
	name   string
	region geo.Rect
	eng    *core.Engine
	// reg is the city engine's telemetry registry (nil when telemetry
	// is off). Cities share nothing, registries included; the router
	// labels each city's families with city=<name> at gather time.
	reg *telemetry.Registry
}

// RouterConfig carries the router-level settings (per-city settings
// live in each CitySpec).
type RouterConfig struct {
	// EnableRelay serves cross-city O/D pairs as two-leg relay trips
	// instead of rejecting them with *CrossCityError. Needs at least
	// two cities.
	EnableRelay bool
	// Relay tunes the relay scheduler (gateway count, transfer buffer;
	// zero = defaults). Ignored unless EnableRelay.
	Relay relay.Config
	// TickWorkers is the total tick-shard worker budget across the
	// fleet of cities: Tick already runs the cities concurrently, so
	// per-city shard widths divide this budget (minimum one each)
	// rather than multiplying it. 0 leaves each CitySpec's own
	// Config.TickWorkers untouched.
	TickWorkers int

	// Durability turns on write-ahead journaling for every city shard
	// (one journal per city engine under WALDir/city-<name>, plus
	// WALDir/relay for the relay trip ledger when relay is enabled).
	// Cities found with journaled state are recovered and their
	// CitySpec.Vehicles seeding is skipped — the fleet is already in
	// the journal.
	Durability wal.Mode
	// WALDir is the root journal directory.
	WALDir string
	// SnapshotEvery is each city engine's snapshot cadence (see
	// core.Config.SnapshotEvery).
	SnapshotEvery int
	// FaultInjector arms simulated crash points (tests only). A fault
	// firing anywhere kills every city's and the relay's journal — one
	// process hosts all shards, so a simulated crash takes them down
	// together.
	FaultInjector *wal.Injector

	// Telemetry, when non-nil, turns on per-city engine telemetry: each
	// city gets its own child registry (cities share nothing), the
	// router-level registry itself carries the relay leg-quote
	// histogram, and MetricFamilies merges everything with a
	// city=<name> label per city. Nil — the default — disables
	// instrumentation everywhere at zero cost.
	Telemetry *telemetry.Registry
}

// Router fans requests out to per-city engines. All methods are safe
// for concurrent use; the router itself is immutable after New — every
// mutable bit of state lives inside the per-city engines (and, with
// relay enabled, the relay scheduler's ledger).
type Router struct {
	cities []city
	byName map[string]int
	relay  *relay.Scheduler    // nil unless RouterConfig.EnableRelay
	reg    *telemetry.Registry // router-level registry; nil when telemetry off
}

// New builds a Router over the given cities with default router
// settings (cross-city trips rejected). Regions default to each
// graph's bounding box and must be pairwise disjoint.
func New(specs []CitySpec) (*Router, error) {
	return NewWithConfig(specs, RouterConfig{})
}

// NewWithConfig is New with router-level settings.
func NewWithConfig(specs []CitySpec, rc RouterConfig) (*Router, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("multicity: no cities")
	}
	r := &Router{
		cities: make([]city, 0, len(specs)),
		byName: make(map[string]int, len(specs)),
		reg:    rc.Telemetry,
	}
	for i, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("multicity: city %d has no name", i)
		}
		if _, dup := r.byName[spec.Name]; dup {
			return nil, fmt.Errorf("multicity: duplicate city %q", spec.Name)
		}
		if spec.Graph == nil {
			return nil, fmt.Errorf("multicity: city %q has no graph", spec.Name)
		}
		region := spec.Region
		if region == (geo.Rect{}) {
			region = spec.Graph.Bounds()
		}
		for j := range r.cities {
			if r.cities[j].region.Intersects(region) {
				return nil, fmt.Errorf("multicity: regions of %q and %q overlap", r.cities[j].name, spec.Name)
			}
		}
		cfg := spec.Config
		if rc.TickWorkers > 0 {
			// Divide the router-level tick-worker budget across the
			// concurrently-ticking cities instead of letting each city
			// default to a full GOMAXPROCS fan-out.
			cfg.TickWorkers = rc.TickWorkers / len(specs)
			if cfg.TickWorkers < 1 {
				cfg.TickWorkers = 1
			}
		}
		if rc.Durability != wal.ModeOff {
			if rc.WALDir == "" {
				return nil, fmt.Errorf("multicity: durability %v requires WALDir", rc.Durability)
			}
			cfg.Durability = rc.Durability
			cfg.WALDir = filepath.Join(rc.WALDir, "city-"+spec.Name)
			cfg.SnapshotEvery = rc.SnapshotEvery
			cfg.FaultInjector = rc.FaultInjector
		}
		var cityReg *telemetry.Registry
		if rc.Telemetry != nil {
			// One child registry per city: engines stay share-nothing and
			// the gather path labels each city's families below.
			cityReg = telemetry.NewRegistry()
			cfg.Telemetry = cityReg
		}
		eng, err := core.NewEngine(spec.Graph, cfg)
		if err != nil {
			return nil, fmt.Errorf("multicity: city %q: %w", spec.Name, err)
		}
		if spec.Vehicles > 0 && !eng.Recovered() {
			// A recovered city already holds its fleet in the journal;
			// re-seeding would double the population.
			eng.AddVehiclesUniform(spec.Vehicles)
		}
		r.byName[spec.Name] = len(r.cities)
		r.cities = append(r.cities, city{name: spec.Name, region: region, eng: eng, reg: cityReg})
	}
	if rc.EnableRelay {
		refs := make([]relay.CityRef, len(r.cities))
		for i := range r.cities {
			refs[i] = relay.CityRef{
				Name:   r.cities[i].name,
				Engine: r.cities[i].eng,
				Region: r.cities[i].region,
			}
		}
		relayCfg := rc.Relay
		if rc.Durability != wal.ModeOff {
			relayCfg.Durability = rc.Durability
			relayCfg.WALDir = filepath.Join(rc.WALDir, "relay")
			relayCfg.FaultInjector = rc.FaultInjector
		}
		// Nil registry hands out a nil histogram — telemetry off.
		relayCfg.LegQuoteHist = rc.Telemetry.LatencyHist(
			"ptrider_relay_leg_quote_duration_seconds",
			"Per-leg quote wall time of cross-city relay trips.")
		sched, err := relay.New(refs, relayCfg)
		if err != nil {
			return nil, fmt.Errorf("multicity: %w", err)
		}
		r.relay = sched
	}
	if rc.FaultInjector != nil {
		// A simulated crash anywhere crashes the whole process: every
		// shard's journal dies together, which is what the recovery
		// tests must model.
		rc.FaultInjector.OnFire(r.Kill)
	}
	return r, nil
}

// Kill simulates a process crash across every shard: all city journals
// and the relay journal stop accepting appends and fail their pending
// group commits. In-memory state is considered lost; recover by
// rebuilding the router over the same WALDir.
func (r *Router) Kill() {
	for i := range r.cities {
		r.cities[i].eng.Kill()
	}
	if r.relay != nil {
		r.relay.Kill()
	}
}

// Close gracefully shuts every shard down: the relay trip ledger and
// each city engine flush their journals and write final snapshots.
func (r *Router) Close() error {
	var first error
	if r.relay != nil {
		first = r.relay.Close()
	}
	for i := range r.cities {
		if err := r.cities[i].eng.Close(); err != nil && first == nil {
			first = fmt.Errorf("multicity: %s: %w", r.cities[i].name, err)
		}
	}
	return first
}

// MetricFamilies gathers the router's telemetry: the router-level
// registry (relay instruments) plus every city's registry with its
// series labeled city=<name>, merged so each family appears once. Nil
// when telemetry is off.
func (r *Router) MetricFamilies() []telemetry.Family {
	if r.reg == nil {
		return nil
	}
	groups := make([][]telemetry.Family, 0, len(r.cities)+1)
	groups = append(groups, r.reg.Gather())
	for i := range r.cities {
		groups = append(groups, telemetry.WithLabel(r.cities[i].reg.Gather(), "city", r.cities[i].name))
	}
	return telemetry.Merge(groups...)
}

// Ready reports whether every city shard can serve traffic (no city's
// journal has died). The /v1/readyz probe is the caller.
func (r *Router) Ready() error {
	for i := range r.cities {
		if err := r.cities[i].eng.Ready(); err != nil {
			return fmt.Errorf("multicity: %s: %w", r.cities[i].name, err)
		}
	}
	return nil
}

// ReadyCities reports per-city readiness detail (see /v1/readyz).
func (r *Router) ReadyCities() []core.CityReadiness {
	out := make([]core.CityReadiness, len(r.cities))
	for i := range r.cities {
		out[i] = core.CityReadiness{City: r.cities[i].name, Ready: true}
		if err := r.cities[i].eng.Ready(); err != nil {
			out[i].Ready, out[i].Err = false, err.Error()
		}
	}
	return out
}

// RelayEnabled reports whether cross-city trips are served by relay
// scheduling rather than rejected.
func (r *Router) RelayEnabled() bool { return r.relay != nil }

// RelayScheduler exposes the relay scheduler (nil when relay is off) —
// a seam for the atomicity/durability test harnesses, which inject
// leg-commit failures through relay.Scheduler.SetCommitOverride. Not
// part of the supported surface.
func (r *Router) RelayScheduler() *relay.Scheduler { return r.relay }

// NumCities returns the number of cities behind the router.
func (r *Router) NumCities() int { return len(r.cities) }

// CityNames returns the city names in registration order.
func (r *Router) CityNames() []string {
	out := make([]string, len(r.cities))
	for i := range r.cities {
		out[i] = r.cities[i].name
	}
	return out
}

// Region returns the service region of a city.
func (r *Router) Region(name string) (geo.Rect, error) {
	ci, err := r.cityIndex(name)
	if err != nil {
		return geo.Rect{}, err
	}
	return r.cities[ci].region, nil
}

// Engine exposes a city's engine for inspection (views, invariants,
// benchmarks). Request ids obtained directly from the engine are local
// to that city and do not route through the Router's id space.
func (r *Router) Engine(name string) (*core.Engine, error) {
	ci, err := r.cityIndex(name)
	if err != nil {
		return nil, err
	}
	return r.cities[ci].eng, nil
}

func (r *Router) cityIndex(name string) (int, error) {
	ci, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownCity, name)
	}
	return ci, nil
}

// Locate returns the name of the city whose region contains p.
func (r *Router) Locate(p geo.Point) (string, error) {
	ci, err := r.locate(p)
	if err != nil {
		return "", err
	}
	return r.cities[ci].name, nil
}

func (r *Router) locate(p geo.Point) (int, error) {
	for i := range r.cities {
		if r.cities[i].region.Contains(p) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: (%.0f, %.0f)", ErrNoCity, p.X, p.Y)
}

// NearestVertex snaps a coordinate inside a city to a road-network
// vertex: the closest vertex of the grid cell containing p, falling
// back to a whole-graph scan when that cell is unpopulated (rare —
// only cells without any vertex).
func (r *Router) NearestVertex(name string, p geo.Point) (roadnet.VertexID, error) {
	ci, err := r.cityIndex(name)
	if err != nil {
		return 0, err
	}
	return r.nearestVertex(ci, p), nil
}

func (r *Router) nearestVertex(ci int, p geo.Point) roadnet.VertexID {
	return r.cities[ci].eng.NearestVertex(p)
}

// globalID strides a city-local request id into the router's id space
// (see GlobalID).
func (r *Router) globalID(ci int, local core.RequestID) core.RequestID {
	return GlobalID(len(r.cities), ci, local)
}

// splitID decodes a global request id into (city index, local id).
func (r *Router) splitID(id core.RequestID) (int, core.RequestID, error) {
	return SplitGlobalID(len(r.cities), id)
}

// Record is the router's view of a request record: the engine snapshot
// with the id lifted into the global namespace, plus the owning city.
// For a relay trip the embedded record is synthesised — a negative
// global id, the origin city, the joint skyline rendered as core
// options (price = composed fare, pick-up distance = composed ETA as a
// distance equivalent), the whole-trip lifecycle mapped onto the
// single-city states — and Relay carries the two-leg detail.
type Record struct {
	core.RequestRecord
	City string
	// Relay is the relay trip view when this record is a cross-city
	// relay trip; nil for ordinary same-city requests.
	Relay *relay.TripView
}

func (r *Router) wrap(ci int, rec *core.RequestRecord) *Record {
	out := &Record{RequestRecord: *rec, City: r.cities[ci].name}
	out.ID = r.globalID(ci, rec.ID)
	return out
}

// wrapRelay synthesises the router record of a relay trip (see
// RelayRequestRecord for the shared synthesis).
func (r *Router) wrapRelay(tv *relay.TripView) *Record {
	return &Record{RequestRecord: RelayRequestRecord(tv), City: tv.Origin, Relay: tv}
}

// Submit answers a ridesharing request given by planar coordinates: the
// origin's city is located, both endpoints are snapped to their cities'
// road networks, and the city's engine matches the request. A
// destination in a different city is served as a two-leg relay trip
// when relay is enabled (see RouterConfig.EnableRelay) and rejected
// with *CrossCityError otherwise; a coordinate outside every region
// fails with ErrNoCity.
func (r *Router) Submit(o, d geo.Point, riders int) (*Record, error) {
	return r.SubmitWithConstraints(o, d, riders, core.DefaultConstraints())
}

// SubmitWithConstraints is Submit with per-rider constraint overrides.
func (r *Router) SubmitWithConstraints(o, d geo.Point, riders int, c core.Constraints) (*Record, error) {
	return r.submitCoords(o, d, riders, c, "", nil)
}

// submitCoords serves one coordinate-addressed request; a non-empty
// idemKey makes a same-city submission idempotent (the key is scoped to
// the owning city's engine — regions are disjoint, so a retry always
// lands on the same city). Relay quotes are not deduplicated, and the
// optional span (stage-timing correlation) applies to same-city
// submissions only.
func (r *Router) submitCoords(o, d geo.Point, riders int, c core.Constraints, idemKey string, sp *telemetry.Span) (*Record, error) {
	oc, err := r.locate(o)
	if err != nil {
		return nil, err
	}
	dc, err := r.locate(d)
	if err != nil {
		return nil, err
	}
	if oc != dc {
		if r.relay == nil {
			return nil, &CrossCityError{Origin: r.cities[oc].name, Dest: r.cities[dc].name}
		}
		tv, err := r.relay.Quote(oc, dc, r.nearestVertex(oc, o), r.nearestVertex(dc, d), riders, c)
		if err != nil {
			return nil, fmt.Errorf("multicity: %w", err)
		}
		return r.wrapRelay(tv), nil
	}
	rec, err := r.cities[oc].eng.SubmitSpanned(
		r.nearestVertex(oc, o), r.nearestVertex(oc, d), riders, c, idemKey, sp)
	if err != nil {
		return nil, fmt.Errorf("multicity: %s: %w", r.cities[oc].name, err)
	}
	return r.wrap(oc, rec), nil
}

// SubmitIn answers a request addressed by city name and city-local
// vertex ids — the zero-translation path used when the caller already
// resolved the city (load replay, benchmarks).
func (r *Router) SubmitIn(name string, s, d roadnet.VertexID, riders int, c core.Constraints) (*Record, error) {
	return r.submitIn(name, s, d, riders, c, "", nil)
}

func (r *Router) submitIn(name string, s, d roadnet.VertexID, riders int, c core.Constraints, idemKey string, sp *telemetry.Span) (*Record, error) {
	ci, err := r.cityIndex(name)
	if err != nil {
		return nil, err
	}
	rec, err := r.cities[ci].eng.SubmitSpanned(s, d, riders, c, idemKey, sp)
	if err != nil {
		return nil, fmt.Errorf("multicity: %s: %w", name, err)
	}
	return r.wrap(ci, rec), nil
}

// BatchItem is one request of a simultaneous multi-city batch,
// addressed by coordinates like Submit.
type BatchItem struct {
	O, D        geo.Point
	Riders      int
	Constraints core.Constraints
	// Choose picks an option index from the quoted skyline (or -1 to
	// decline). Nil declines everything. Called on the owning city's
	// batch goroutine.
	Choose func(options []core.Option) int
}

// SubmitBatch processes simultaneously issued requests across cities:
// items are partitioned by origin city and each city's sub-batch runs
// through that engine's coalesced SubmitBatch concurrently — the waves
// of different cities proceed fully in parallel because the engines
// share no state. Within one city the paper's greedy order over that
// city's items is preserved exactly. Cross-city items are served
// through the relay scheduler when enabled (quoted and, via the item's
// Choose callback over the synthesised joint options, committed or
// declined), concurrently with the per-city sub-batches; with relay
// disabled they fail with *CrossCityError as before.
//
// One record is returned per item, in order; items that fail city
// assignment or fail inside the engine get a nil entry, with the first
// error returned.
func (r *Router) SubmitBatch(items []BatchItem) ([]*Record, error) {
	out := make([]*Record, len(items))
	var firstErr error
	fail := func(i int, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("multicity: batch item %d: %w", i, err)
		}
	}

	// Partition by origin city, preserving each city's item order.
	perCity := make([][]core.BatchItem, len(r.cities))
	perCityIdx := make([][]int, len(r.cities))
	type relayItem struct {
		idx    int
		oc, dc int
	}
	var relayItems []relayItem
	for i, it := range items {
		oc, err := r.locate(it.O)
		if err != nil {
			fail(i, err)
			continue
		}
		dc, err := r.locate(it.D)
		if err != nil {
			fail(i, err)
			continue
		}
		if oc != dc {
			if r.relay == nil {
				fail(i, &CrossCityError{Origin: r.cities[oc].name, Dest: r.cities[dc].name})
				continue
			}
			relayItems = append(relayItems, relayItem{idx: i, oc: oc, dc: dc})
			continue
		}
		perCity[oc] = append(perCity[oc], core.BatchItem{
			S: r.nearestVertex(oc, it.O), D: r.nearestVertex(oc, it.D),
			Riders: it.Riders, Constraints: it.Constraints, Choose: it.Choose,
		})
		perCityIdx[oc] = append(perCityIdx[oc], i)
	}

	// Fan the per-city sub-batches out; engines are independent. Relay
	// items ride their own goroutine — each quote already fans its legs
	// out to two engines, which interleaves with the city batches the
	// way any concurrent traffic does.
	recs := make([][]*core.RequestRecord, len(r.cities))
	errs := make([]error, len(r.cities))
	relayErrs := make([]error, len(relayItems))
	var wg sync.WaitGroup
	for ci := range r.cities {
		if len(perCity[ci]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			recs[ci], errs[ci] = r.cities[ci].eng.SubmitBatch(perCity[ci])
		}(ci)
	}
	if len(relayItems) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k, ri := range relayItems {
				out[ri.idx], relayErrs[k] = r.submitRelayItem(&items[ri.idx], ri.oc, ri.dc)
			}
		}()
	}
	wg.Wait()

	for ci := range r.cities {
		if errs[ci] != nil && firstErr == nil {
			firstErr = fmt.Errorf("multicity: %s: %w", r.cities[ci].name, errs[ci])
		}
		for k, rec := range recs[ci] {
			if rec != nil {
				out[perCityIdx[ci][k]] = r.wrap(ci, rec)
			}
		}
	}
	for k, ri := range relayItems {
		if relayErrs[k] != nil {
			fail(ri.idx, relayErrs[k])
		}
	}
	return out, firstErr
}

// submitRelayItem serves one cross-city batch item end to end: quote,
// let the item's chooser pick from the synthesised joint options,
// commit or decline, and return the refreshed record.
func (r *Router) submitRelayItem(it *BatchItem, oc, dc int) (*Record, error) {
	tv, err := r.relay.Quote(oc, dc, r.nearestVertex(oc, it.O), r.nearestVertex(dc, it.D), it.Riders, it.Constraints)
	if err != nil {
		return nil, err
	}
	pick := -1
	if it.Choose != nil {
		pick = it.Choose(tv.CoreOptions)
	}
	if pick >= 0 && pick < len(tv.Options) {
		if err := r.relay.Choose(tv.ID, pick); err != nil {
			// Mirror the engine batch path: a failed choice ends the
			// item's lifecycle here rather than abandoning the quote.
			refreshed, _ := r.relay.Trip(tv.ID)
			if refreshed != nil {
				return r.wrapRelay(refreshed), fmt.Errorf("choose: %w", err)
			}
			return r.wrapRelay(tv), fmt.Errorf("choose: %w", err)
		}
	} else {
		_ = r.relay.Decline(tv.ID)
	}
	refreshed, err := r.relay.Trip(tv.ID)
	if err != nil {
		return r.wrapRelay(tv), nil
	}
	return r.wrapRelay(refreshed), nil
}

// Choose commits the rider's selected option of a request previously
// answered by the router. For a relay trip (negative id) this is the
// two-phase commit of both legs: both book, or neither stays booked.
func (r *Router) Choose(id core.RequestID, optionIndex int) error {
	if id < 0 {
		if r.relay == nil {
			return fmt.Errorf("multicity: unknown request %d", id)
		}
		return r.relay.Choose(relay.TripID(-id), optionIndex)
	}
	ci, local, err := r.splitID(id)
	if err != nil {
		return err
	}
	return r.cities[ci].eng.Choose(local, optionIndex)
}

// Decline records that the rider took none of the options. Declining a
// relay trip releases every leg quote it held.
func (r *Router) Decline(id core.RequestID) error {
	if id < 0 {
		if r.relay == nil {
			return fmt.Errorf("multicity: unknown request %d", id)
		}
		return r.relay.Decline(relay.TripID(-id))
	}
	ci, local, err := r.splitID(id)
	if err != nil {
		return err
	}
	return r.cities[ci].eng.Decline(local)
}

// Request returns a snapshot of the record of a router-answered
// request (including relay trips, whose two-leg detail rides in
// Record.Relay).
func (r *Router) Request(id core.RequestID) (*Record, error) {
	if id < 0 {
		tv, err := r.RelayTrip(id)
		if err != nil {
			return nil, err
		}
		return r.wrapRelay(tv), nil
	}
	ci, local, err := r.splitID(id)
	if err != nil {
		return nil, err
	}
	rec, err := r.cities[ci].eng.Request(local)
	if err != nil {
		return nil, err
	}
	return r.wrap(ci, rec), nil
}

// RelayTrip returns the two-leg view of a relay trip addressed by its
// router record id (the negative global id).
func (r *Router) RelayTrip(id core.RequestID) (*relay.TripView, error) {
	if r.relay == nil {
		return nil, fmt.Errorf("multicity: relay is not enabled: %w", core.ErrNotFound)
	}
	if id >= 0 {
		return nil, fmt.Errorf("multicity: request %d is not a relay trip: %w", id, core.ErrNotFound)
	}
	return r.relay.Trip(relay.TripID(-id))
}

// CityEvents is one city's slice of a tick's movement events.
type CityEvents struct {
	City   string
	Events []fleet.Event
}

// Tick advances simulated time by dt seconds in every city, each city's
// movement phase on its own goroutine — per-city ticks are naturally
// parallel because fleets share nothing. The per-city events are
// returned in city registration order; the first city error (if any)
// is returned after every city finished, so one failing city never
// stalls or skips the others.
func (r *Router) Tick(dt float64) ([]CityEvents, error) {
	if dt < 0 {
		// Reject before any engine moves so the city clocks stay in
		// lockstep even on caller errors.
		return nil, fmt.Errorf("multicity: negative tick %v: %w", dt, core.ErrInvalidArgument)
	}
	out := make([]CityEvents, len(r.cities))
	errs := make([]error, len(r.cities))
	var wg sync.WaitGroup
	for ci := range r.cities {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			evs, err := r.cities[ci].eng.Tick(dt)
			out[ci] = CityEvents{City: r.cities[ci].name, Events: evs}
			errs[ci] = err
		}(ci)
	}
	wg.Wait()
	if r.relay != nil {
		// Advance the relay ledger after every city moved: trips observe
		// their legs' post-movement lifecycle states.
		r.relay.Advance()
	}
	for ci, err := range errs {
		if err != nil {
			return out, fmt.Errorf("multicity: %s: %w", r.cities[ci].name, err)
		}
	}
	return out, nil
}

// Stats is the aggregated statistics panel: per-city engine snapshots
// plus a cross-city total. In the total, lifecycle counters, vehicle
// counts and commit-protocol counters are sums; per-match averages are
// request-weighted and quality averages completed-weighted means of
// the city values; P95 response time and the clock are the maxima (a
// true cross-city quantile is not derivable from per-city summaries).
// In the Tick panel, Workers and AvgEvents are sums (cities tick
// concurrently, so the shard fan-out and event volume add up) while
// Ticks, wall times and shard skew are maxima (lockstep cities make
// the slowest city the tick's critical path).
// Relay carries the relay scheduler's own panel when relay is enabled
// (its leg quotes are counted inside the owning cities' panels; Relay
// counts whole cross-city trips).
type Stats struct {
	Total        core.EngineStats
	Cities       map[string]core.EngineStats
	RelayEnabled bool
	Relay        relay.Stats
}

// Stats snapshots every city and aggregates the totals (see
// StatsAggregator for the weighting rules).
func (r *Router) Stats() Stats {
	out := Stats{Cities: make(map[string]core.EngineStats, len(r.cities))}
	var agg StatsAggregator
	for i := range r.cities {
		st := r.cities[i].eng.Stats()
		out.Cities[r.cities[i].name] = st
		agg.Add(st)
	}
	out.Total = agg.Total()
	if r.relay != nil {
		out.RelayEnabled = true
		out.Relay = r.relay.Stats()
	}
	return out
}

// VehicleViews returns one city's vehicle summaries (see
// core.Engine.VehicleViews).
func (r *Router) VehicleViews(name string, limit int) ([]core.VehicleView, error) {
	ci, err := r.cityIndex(name)
	if err != nil {
		return nil, err
	}
	return r.cities[ci].eng.VehicleViews(limit), nil
}

// VehicleSchedules returns one vehicle's valid trip schedules in the
// given city.
func (r *Router) VehicleSchedules(name string, id fleet.VehicleID) (roadnet.VertexID, [][]kinetic.Point, error) {
	ci, err := r.cityIndex(name)
	if err != nil {
		return 0, nil, err
	}
	return r.cities[ci].eng.VehicleSchedules(id)
}

// CheckInvariants verifies every city's engine invariants (tests).
func (r *Router) CheckInvariants() error {
	for i := range r.cities {
		if err := r.cities[i].eng.CheckInvariants(); err != nil {
			return fmt.Errorf("multicity: %s: %w", r.cities[i].name, err)
		}
	}
	return nil
}
