package multicity_test

import (
	"math/rand"
	"sync"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/multicity"
	"ptrider/internal/relay"
)

// twinRelayRouter is twinRouter with relay scheduling enabled.
func twinRelayRouter(t testing.TB, cfg core.Config, taxisA, taxisB int, rcfg relay.Config) *multicity.Router {
	t.Helper()
	ga, err := gen.GenerateNetwork(gen.CityConfig{Width: 10, Height: 10, Seed: 1})
	if err != nil {
		t.Fatalf("gen alpha: %v", err)
	}
	gb, err := gen.GenerateNetwork(gen.CityConfig{Width: 8, Height: 8, OriginX: 20000, Seed: 2})
	if err != nil {
		t.Fatalf("gen beta: %v", err)
	}
	cfgA, cfgB := cfg, cfg
	cfgA.Seed, cfgB.Seed = 1, 2
	r, err := multicity.NewWithConfig([]multicity.CitySpec{
		{Name: "alpha", Graph: ga, Config: cfgA, Vehicles: taxisA},
		{Name: "beta", Graph: gb, Config: cfgB, Vehicles: taxisB},
	}, multicity.RouterConfig{EnableRelay: true, Relay: rcfg})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	return r
}

// quoteRelay submits cross-city pairs until a quote with options comes
// back (a sparse fleet can legitimately produce an empty skyline).
func quoteRelay(t *testing.T, r *multicity.Router, from, to string, rng *rand.Rand) *multicity.Record {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		o, _ := cityPoints(t, r, from, rng)
		_, d := cityPoints(t, r, to, rng)
		rec, err := r.Submit(o, d, 1)
		if err != nil {
			t.Fatalf("relay submit: %v", err)
		}
		if len(rec.Options) > 0 {
			return rec
		}
		_ = r.Decline(rec.ID)
	}
	t.Fatal("no relay quote produced options in 50 attempts")
	return nil
}

func TestRouterRelaysCrossCityTrips(t *testing.T) {
	r := twinRelayRouter(t, core.Config{Capacity: 4}, 10, 10, relay.Config{TransferBufferSeconds: 120})
	if !r.RelayEnabled() {
		t.Fatal("relay not enabled")
	}
	rng := rand.New(rand.NewSource(21))
	rec := quoteRelay(t, r, "alpha", "beta", rng)

	if rec.ID >= 0 {
		t.Fatalf("relay record id %d not in the negative namespace", rec.ID)
	}
	if rec.Relay == nil || rec.City != "alpha" || rec.Relay.Dest != "beta" {
		t.Fatalf("relay record misrouted: city %q, relay %+v", rec.City, rec.Relay)
	}
	if len(rec.Options) != len(rec.Relay.Options) {
		t.Fatalf("synthesised options (%d) not aligned with joint skyline (%d)", len(rec.Options), len(rec.Relay.Options))
	}
	for i, o := range rec.Relay.Options {
		if o.Fare != o.Leg1.Price+o.Leg2.Price {
			t.Fatalf("option %d fare %v != sum of leg fares %v", i, o.Fare, o.Leg1.Price+o.Leg2.Price)
		}
		if rec.Options[i].Price != o.Fare {
			t.Fatalf("option %d synthesised price %v != fare %v", i, rec.Options[i].Price, o.Fare)
		}
		if o.ETASeconds < o.PickupSeconds+rec.Relay.TransferBufferSeconds {
			t.Fatalf("option %d ETA %.0f violates the %.0f s transfer buffer", i, o.ETASeconds, rec.Relay.TransferBufferSeconds)
		}
	}

	// The record round-trips through the router's id space.
	got, err := r.Request(rec.ID)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if got.Relay == nil || got.Relay.ID != rec.Relay.ID || got.Status != core.StatusQuoted {
		t.Fatalf("round-tripped record = %+v", got.RequestRecord)
	}

	// Choosing commits both legs atomically.
	if err := r.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	got, err = r.Request(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != core.StatusAssigned || got.Relay.State != relay.StateLeg1Committed {
		t.Fatalf("post-choose record: status %v, relay state %v", got.Status, got.Relay.State)
	}
	engA, _ := r.Engine("alpha")
	engB, _ := r.Engine("beta")
	leg1, err := engA.Request(got.Relay.Leg1)
	if err != nil {
		t.Fatal(err)
	}
	leg2, err := engB.Request(got.Relay.Leg2)
	if err != nil {
		t.Fatal(err)
	}
	if leg1.Status != core.StatusAssigned || leg2.Status != core.StatusAssigned {
		t.Fatalf("leg statuses %v / %v after commit", leg1.Status, leg2.Status)
	}
	st := r.Stats()
	if !st.RelayEnabled || st.Relay.Committed != 1 {
		t.Fatalf("router relay stats: %+v", st.Relay)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRouterRelayTickAdvancesToCompletion(t *testing.T) {
	r := twinRelayRouter(t, core.Config{Capacity: 4, CommitSlack: 0.5}, 12, 10, relay.Config{})
	rng := rand.New(rand.NewSource(22))
	rec := quoteRelay(t, r, "beta", "alpha", rng)
	if err := r.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	for tick := 0; tick < 5000; tick++ {
		if _, err := r.Tick(2); err != nil {
			t.Fatal(err)
		}
		got, err := r.Request(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		switch got.Relay.State {
		case relay.StateCompleted:
			if got.Status != core.StatusCompleted {
				t.Fatalf("completed relay trip maps to %v", got.Status)
			}
			if st := r.Stats(); st.Relay.Completed != 1 || st.Relay.Active != 0 {
				t.Fatalf("relay stats after completion: %+v", st.Relay)
			}
			return
		case relay.StateAborted, relay.StateFailed:
			t.Fatalf("relay trip ended %v", got.Relay.State)
		}
	}
	t.Fatal("relay trip did not complete")
}

func TestRouterRelayBatchServesCrossItems(t *testing.T) {
	r := twinRelayRouter(t, core.Config{Capacity: 4}, 10, 10, relay.Config{})
	rng := rand.New(rand.NewSource(23))
	o1, d1 := cityPoints(t, r, "alpha", rng)
	o2, _ := cityPoints(t, r, "alpha", rng)
	_, d2 := cityPoints(t, r, "beta", rng)
	chooseFirst := func(opts []core.Option) int {
		if len(opts) == 0 {
			return -1
		}
		return 0
	}
	recs, err := r.SubmitBatch([]multicity.BatchItem{
		{O: o1, D: d1, Riders: 1, Constraints: core.DefaultConstraints(), Choose: chooseFirst},
		{O: o2, D: d2, Riders: 1, Constraints: core.DefaultConstraints(), Choose: chooseFirst},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if recs[0] == nil || recs[0].Relay != nil {
		t.Fatalf("same-city batch item came back %+v", recs[0])
	}
	if recs[1] == nil || recs[1].Relay == nil {
		t.Fatalf("cross-city batch item came back %+v", recs[1])
	}
	if len(recs[1].Options) > 0 && recs[1].Status != core.StatusAssigned {
		t.Fatalf("cross-city item with options ended %v", recs[1].Status)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRouterRelayRaceStress storms a 2-city relay router with
// concurrent cross-city submits/chooses, same-city traffic, batches
// and ticks, then checks that no reservation leaked and the relay
// ledger's accounting is internally consistent.
func TestRouterRelayRaceStress(t *testing.T) {
	r := twinRelayRouter(t, core.Config{Capacity: 3, CommitSlack: 0.3}, 10, 10, relay.Config{})

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			name, other := "alpha", "beta"
			if seed%2 == 0 {
				name, other = other, name
			}
			for i := 0; i < 30; i++ {
				switch rng.Intn(8) {
				case 0, 1, 2:
					// Cross-city relay trip; choose or decline.
					o, _ := cityPoints(t, r, name, rng)
					_, d := cityPoints(t, r, other, rng)
					rec, err := r.Submit(o, d, 1)
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 && rng.Intn(3) > 0 {
						// Stale legs under concurrent ticks abort the
						// two-phase commit; that is expected behaviour —
						// the protocol's job is releasing leg 1, which
						// the invariants check below.
						_ = r.Choose(rec.ID, rng.Intn(len(rec.Options)))
					} else {
						_ = r.Decline(rec.ID)
					}
				case 3, 4:
					o, d := cityPoints(t, r, name, rng)
					rec, err := r.Submit(o, d, 1)
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 {
						_ = r.Choose(rec.ID, 0)
					} else {
						_ = r.Decline(rec.ID)
					}
				case 5, 6:
					if _, err := r.Tick(0.5 + rng.Float64()); err != nil {
						errs <- err
						return
					}
				case 7:
					o1, _ := cityPoints(t, r, name, rng)
					_, d1 := cityPoints(t, r, other, rng)
					o2, d2 := cityPoints(t, r, other, rng)
					_, _ = r.SubmitBatch([]multicity.BatchItem{
						{O: o1, D: d1, Riders: 1, Constraints: core.DefaultConstraints(),
							Choose: func(opts []core.Option) int {
								if len(opts) == 0 {
									return -1
								}
								return 0
							}},
						{O: o2, D: d2, Riders: 1, Constraints: core.DefaultConstraints()},
					})
				}
				if i%10 == 0 {
					if err := r.CheckInvariants(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(300 + w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("relay stress worker: %v", err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}
	st := r.Stats()
	rs := st.Relay
	if rs.Quoted == 0 {
		t.Fatal("storm quoted no relay trips")
	}
	if rs.Committed != rs.Active+rs.Completed+rs.Failed {
		t.Fatalf("relay ledger inconsistent: committed %d != active %d + completed %d + failed %d",
			rs.Committed, rs.Active, rs.Completed, rs.Failed)
	}
	if rs.Committed+rs.Declined+rs.Aborted > rs.Quoted {
		t.Fatalf("relay ledger inconsistent: %+v", rs)
	}
	// Every leg quote relay issued is accounted for inside the city
	// engines: no request may be lost between the ledgers.
	if st.Total.Requests < rs.LegQuotes {
		t.Fatalf("cities saw %d requests, relay alone issued %d leg quotes", st.Total.Requests, rs.LegQuotes)
	}

	// Drain; committed relay legs must complete like any other trip.
	for i := 0; i < 4000 && st.Total.Completed < st.Total.Assigned; i++ {
		if _, err := r.Tick(1); err != nil {
			t.Fatalf("drain tick: %v", err)
		}
		st = r.Stats()
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
	if rs := st.Relay; rs.Active != 0 && st.Total.Completed >= st.Total.Assigned {
		t.Fatalf("drained fleet but %d relay trips still active", rs.Active)
	}
}

// TestRouterRelayShardedTickStress is TestRouterRelayRaceStress with
// parallel tick shards enabled (TickWorkers 4 per city): the relay
// ledger's Advance runs after every sharded multi-city tick, so this
// pins the trip-ledger advance against concurrent sharded movement,
// cross-city two-phase commits and vehicle removals under -race.
func TestRouterRelayShardedTickStress(t *testing.T) {
	r := twinRelayRouter(t, core.Config{Capacity: 3, CommitSlack: 0.3, TickWorkers: 4}, 12, 12, relay.Config{})

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			name, other := "alpha", "beta"
			if seed%2 == 0 {
				name, other = other, name
			}
			for i := 0; i < 30; i++ {
				switch rng.Intn(8) {
				case 0, 1, 2:
					// Cross-city relay trip racing the sharded ticks;
					// stale-leg commit aborts are expected behaviour.
					o, _ := cityPoints(t, r, name, rng)
					_, d := cityPoints(t, r, other, rng)
					rec, err := r.Submit(o, d, 1)
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 && rng.Intn(3) > 0 {
						_ = r.Choose(rec.ID, rng.Intn(len(rec.Options)))
					} else {
						_ = r.Decline(rec.ID)
					}
				case 3:
					o, d := cityPoints(t, r, name, rng)
					rec, err := r.Submit(o, d, 1)
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 {
						_ = r.Choose(rec.ID, 0)
					} else {
						_ = r.Decline(rec.ID)
					}
				case 4, 5, 6:
					// The hot path under test: every city ticks its shards
					// in parallel, then the relay ledger advances.
					if _, err := r.Tick(0.5 + rng.Float64()); err != nil {
						errs <- err
						return
					}
				case 7:
					// Removal races the shard stepping this vehicle;
					// already-removed errors are expected, races are not.
					eng, err := r.Engine(name)
					if err != nil {
						errs <- err
						return
					}
					_, _ = eng.RemoveVehicle(int32(rng.Intn(12)))
				}
				if i%10 == 0 {
					if err := r.CheckInvariants(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(900 + w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("sharded relay stress worker: %v", err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}
	st := r.Stats()
	if st.Total.Tick.Workers != 8 {
		t.Fatalf("aggregate Tick.Workers = %d, want 8 (4 per city)", st.Total.Tick.Workers)
	}
	if st.Total.Tick.Ticks == 0 {
		t.Fatal("storm recorded no ticks")
	}
}
