package multicity

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"ptrider/internal/core"
	"ptrider/internal/gen"
)

// specGapMeters separates the generated cities' regions in the plane —
// the "sea" between markets. Anything positive keeps the regions
// disjoint; a wide gap makes accidental cross-city snapping impossible.
const specGapMeters = 5000

// BuildFromSpec builds a Router over synthetic cities described by a
// compact spec string:
//
//	name:WIDTHxHEIGHT:TAXIS[,name:WIDTHxHEIGHT:TAXIS...]
//
// e.g. "east:40x40:500,west:28x28:200". Cities are generated with the
// standard synthetic generator and laid out left to right with a gap
// between their service regions; every city uses base as its engine
// configuration (per-city tuning is available through the CitySpec
// API). seed+i drives city i's generation and placement.
func BuildFromSpec(spec string, base core.Config, seed int64) (*Router, error) {
	return BuildFromSpecWithConfig(spec, base, seed, RouterConfig{})
}

// BuildFromSpecWithConfig is BuildFromSpec with router-level settings
// (relay scheduling, most notably). base.TickWorkers is treated as a
// total budget across the concurrently-ticking cities: it defaults to
// GOMAXPROCS when zero and is divided by the city count (minimum one
// per city) unless the RouterConfig sets its own TickWorkers budget.
func BuildFromSpecWithConfig(spec string, base core.Config, seed int64, rc RouterConfig) (*Router, error) {
	parts := strings.Split(spec, ",")
	if rc.TickWorkers == 0 {
		budget := base.TickWorkers
		if budget == 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		base.TickWorkers = budget / len(parts)
		if base.TickWorkers < 1 {
			base.TickWorkers = 1
		}
	}
	specs := make([]CitySpec, 0, len(parts))
	originX := 0.0
	for i, part := range parts {
		part = strings.TrimSpace(part)
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("multicity: bad city spec %q (want name:WxH:taxis)", part)
		}
		name := strings.TrimSpace(fields[0])
		dims := strings.SplitN(fields[1], "x", 2)
		if len(dims) != 2 {
			return nil, fmt.Errorf("multicity: bad city size %q in %q", fields[1], part)
		}
		width, err1 := strconv.Atoi(strings.TrimSpace(dims[0]))
		height, err2 := strconv.Atoi(strings.TrimSpace(dims[1]))
		taxis, err3 := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("multicity: bad numbers in city spec %q", part)
		}
		gcfg := gen.CityConfig{
			Width: width, Height: height,
			RemoveFrac: 0.1,
			OriginX:    originX,
			Seed:       seed + int64(i),
		}
		gcfg = applySpacingDefault(gcfg)
		g, err := gen.GenerateNetwork(gcfg)
		if err != nil {
			return nil, fmt.Errorf("multicity: city %q: %w", name, err)
		}
		cfg := base
		cfg.Seed = seed + int64(i)
		specs = append(specs, CitySpec{
			Name: name, Graph: g, Config: cfg, Vehicles: taxis,
		})
		originX += float64(width)*gcfg.Spacing + specGapMeters
	}
	return NewWithConfig(specs, rc)
}

// applySpacingDefault mirrors gen's internal default so the layout
// offset accounts for the real block size.
func applySpacingDefault(c gen.CityConfig) gen.CityConfig {
	if c.Spacing == 0 {
		c.Spacing = 250
	}
	return c
}
