// aggregate.go holds the cross-city reductions the router and the
// cluster gateway share: the global request-id striding that merges N
// city-local id spaces into one, and the statistics fold that turns
// per-city engine panels into one total. Both backends route by city
// and aggregate by the same rules, so the remote transport
// (internal/cluster) reuses these instead of re-deriving them.
package multicity

import (
	"fmt"

	"ptrider/internal/core"
	"ptrider/internal/relay"
)

// GlobalID strides a city-local request id into the n-city global id
// space: global = local·n + ci. City-local ids start at 1, so every
// global id is ≥ n and the city index is recoverable by modulo.
func GlobalID(n, ci int, local core.RequestID) core.RequestID {
	return local*core.RequestID(n) + core.RequestID(ci)
}

// SplitGlobalID decodes a global request id into (city index, local
// id). Ids below n (including the negative relay namespace) fail with
// core.ErrNotFound.
func SplitGlobalID(n int, id core.RequestID) (int, core.RequestID, error) {
	nn := core.RequestID(n)
	if id < nn {
		return 0, 0, fmt.Errorf("multicity: unknown request %d: %w", id, core.ErrNotFound)
	}
	return int(id % nn), id / nn, nil
}

// RelayStatus maps the relay trip lifecycle onto the single-city
// request states every view already speaks: any committed-and-moving
// stage reads as assigned, the terminal failures as declined.
func RelayStatus(s relay.State) core.RequestStatus {
	switch s {
	case relay.StateQuoted:
		return core.StatusQuoted
	case relay.StateCompleted:
		return core.StatusCompleted
	case relay.StateDeclined, relay.StateAborted, relay.StateFailed:
		return core.StatusDeclined
	}
	return core.StatusAssigned
}

// RelayRequestRecord synthesises the single-city record shape of a
// relay trip: a negative id (the trip id negated), the joint skyline
// rendered as core options (price = composed fare, pick-up distance =
// composed ETA as a distance equivalent), the whole-trip lifecycle
// mapped through RelayStatus. The router and the cluster gateway both
// present relay trips through this one synthesis.
func RelayRequestRecord(tv *relay.TripView) core.RequestRecord {
	rec := core.RequestRecord{
		ID: -core.RequestID(tv.ID), S: tv.OriginVertex, D: tv.DestVertex,
		Riders: tv.Riders, Status: RelayStatus(tv.State),
		Options: tv.CoreOptions, Chosen: tv.Chosen,
	}
	if tv.Chosen >= 0 && tv.Chosen < len(tv.CoreOptions) {
		rec.Vehicle = tv.CoreOptions[tv.Chosen].Vehicle
		rec.Price = tv.CoreOptions[tv.Chosen].Price
	}
	return rec
}

// StatsAggregator folds per-city engine panels into the cross-city
// total. Counters sum; clock, P95 response, tick wall times and shard
// skew are maxima (lockstep cities make the slowest the critical
// path); per-request means are request-weighted, per-trip means
// completed-trip-weighted; the surge panel sums cells and quotes,
// maxes the epoch and worst multiplier, and re-weights the mean
// multiplier by cell count. Zero value is ready to use.
type StatsAggregator struct {
	total                core.EngineStats
	requestW, completedW float64
}

// Add folds one city's panel into the total.
func (a *StatsAggregator) Add(st core.EngineStats) {
	t := &a.total
	t.Requests += st.Requests
	t.Assigned += st.Assigned
	t.Declined += st.Declined
	t.Completed += st.Completed
	t.SharedCompleted += st.SharedCompleted
	t.ActiveVehicles += st.ActiveVehicles
	t.CommitStale += st.CommitStale
	t.Reprobes += st.Reprobes
	t.ReprobeCommits += st.ReprobeCommits
	if st.Clock > t.Clock {
		t.Clock = st.Clock
	}
	if st.P95ResponseMs > t.P95ResponseMs {
		t.P95ResponseMs = st.P95ResponseMs
	}

	if st.Surge.Enabled {
		t.Surge.Enabled = true
		t.Surge.Cells += st.Surge.Cells
		t.Surge.ActiveCells += st.Surge.ActiveCells
		t.Surge.SurgedQuotes += st.Surge.SurgedQuotes
		t.Surge.AvgMultiplier += float64(st.Surge.Cells) * st.Surge.AvgMultiplier
		if st.Surge.Epoch > t.Surge.Epoch {
			t.Surge.Epoch = st.Surge.Epoch
		}
		if st.Surge.EpochSeconds > t.Surge.EpochSeconds {
			t.Surge.EpochSeconds = st.Surge.EpochSeconds
		}
		if st.Surge.MaxMultiplier > t.Surge.MaxMultiplier {
			t.Surge.MaxMultiplier = st.Surge.MaxMultiplier
		}
	}

	t.Tick.Workers += st.Tick.Workers
	t.Tick.AvgEvents += st.Tick.AvgEvents
	if st.Tick.Ticks > t.Tick.Ticks {
		t.Tick.Ticks = st.Tick.Ticks
	}
	if st.Tick.LastWallMs > t.Tick.LastWallMs {
		t.Tick.LastWallMs = st.Tick.LastWallMs
	}
	if st.Tick.AvgWallMs > t.Tick.AvgWallMs {
		t.Tick.AvgWallMs = st.Tick.AvgWallMs
	}
	if st.Tick.MaxShardSkewMs > t.Tick.MaxShardSkewMs {
		t.Tick.MaxShardSkewMs = st.Tick.MaxShardSkewMs
	}

	reqs := float64(st.Requests)
	t.AvgResponseMs += reqs * st.AvgResponseMs
	t.AvgOptions += reqs * st.AvgOptions
	t.AvgVerified += reqs * st.AvgVerified
	t.AvgPruned += reqs * st.AvgPruned
	t.AvgCellsScanned += reqs * st.AvgCellsScanned
	t.AvgDistCalls += reqs * st.AvgDistCalls
	t.AvgMatchWidth += reqs * st.AvgMatchWidth
	a.requestW += reqs

	done := float64(st.Completed)
	t.AvgWaitSeconds += done * st.AvgWaitSeconds
	t.AvgDetourFactor += done * st.AvgDetourFactor
	a.completedW += done
}

// Total finalises the weighted means and returns the aggregate.
func (a *StatsAggregator) Total() core.EngineStats {
	t := a.total
	if a.requestW > 0 {
		t.AvgResponseMs /= a.requestW
		t.AvgOptions /= a.requestW
		t.AvgVerified /= a.requestW
		t.AvgPruned /= a.requestW
		t.AvgCellsScanned /= a.requestW
		t.AvgDistCalls /= a.requestW
		t.AvgMatchWidth /= a.requestW
	}
	if a.completedW > 0 {
		t.AvgWaitSeconds /= a.completedW
		t.AvgDetourFactor /= a.completedW
	}
	if t.Completed > 0 {
		t.SharingRate = float64(t.SharedCompleted) / float64(t.Completed)
	}
	if t.Surge.Cells > 0 {
		t.Surge.AvgMultiplier /= float64(t.Surge.Cells)
	}
	return t
}
