package multicity_test

// Surge pricing across cities: each city engine runs its own tracker,
// relay legs quote through the per-city pipelines (joint fares sum the
// surged leg prices), and the router aggregates the per-city surge
// panels.

import (
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/multicity"
	"ptrider/internal/pricing"
	"ptrider/internal/pricing/surge"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
)

// surgeRouterConfig arms hair-trigger tiers: any demand in a cell
// doubles its fare after the next 10-second epoch boundary.
func surgeRouterConfig() core.Config {
	return core.Config{
		Capacity: 4, MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
		SurgeEnabled: true, SurgeEpochSeconds: 10, SurgeAlpha: 1,
		SurgeTiers: []surge.Tier{{MinRatio: 0.0001, Multiplier: 2}},
	}
}

func TestRelayJointFareSumsSurgedLegs(t *testing.T) {
	r := twinRelayRouter(t, surgeRouterConfig(), 10, 10, relay.Config{TransferBufferSeconds: 120})
	engA, _ := r.Engine("alpha")
	engB, _ := r.Engine("beta")

	// Heat one alpha cell: demand out of vertex 0, then an epoch tick.
	hot := roadnet.VertexID(0)
	far := roadnet.VertexID(engA.Graph().NumVertices() - 1)
	for i := 0; i < 6; i++ {
		if _, err := r.SubmitIn("alpha", hot, far, 1, core.DefaultConstraints()); err != nil {
			t.Fatalf("demand submit: %v", err)
		}
	}
	if _, err := r.Tick(10); err != nil {
		t.Fatalf("tick: %v", err)
	}
	if ep := engA.SurgeStats().Epoch; ep != 1 {
		t.Fatalf("alpha epoch %d after boundary, want 1", ep)
	}

	// Relay out of the hot cell. The origin vertex is pinned so the
	// leg-1 quote resolves the surged cell; destinations rotate until
	// the sparse fleet yields a non-empty joint skyline.
	rng := rand.New(rand.NewSource(31))
	var rec *multicity.Record
	for attempt := 0; attempt < 50 && rec == nil; attempt++ {
		d := roadnet.VertexID(rng.Intn(engB.Graph().NumVertices()))
		cand, err := r.Submit(engA.Graph().Point(hot), engB.Graph().Point(d), 1)
		if err != nil {
			t.Fatalf("relay submit: %v", err)
		}
		if len(cand.Options) > 0 {
			rec = cand
		} else {
			_ = r.Decline(cand.ID)
		}
	}
	if rec == nil {
		t.Fatal("no relay quote produced options in 50 attempts")
	}
	if rec.Relay == nil {
		t.Fatalf("expected a relay record, got city-local %+v", rec.RequestRecord)
	}
	for i, o := range rec.Relay.Options {
		if o.Fare != o.Leg1.Price+o.Leg2.Price {
			t.Fatalf("option %d: fare %v != surged leg sum %v", i, o.Fare, o.Leg1.Price+o.Leg2.Price)
		}
	}

	// Commit and audit both leg records' fare contexts.
	if err := r.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	got, err := r.Request(rec.ID)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	leg1, err := engA.Request(got.Relay.Leg1)
	if err != nil {
		t.Fatalf("leg1: %v", err)
	}
	leg2, err := engB.Request(got.Relay.Leg2)
	if err != nil {
		t.Fatalf("leg2: %v", err)
	}
	base := pricing.NewModel(nil)
	if leg1.SurgeMult != 2 || leg1.FareRatio != base.Ratio(1)*2 {
		t.Fatalf("leg1 fare context: mult %v ratio %v", leg1.SurgeMult, leg1.FareRatio)
	}
	for _, o := range leg1.Options {
		if want := leg1.FareRatio * (o.Candidate.Delta + leg1.SD); o.Price != want {
			t.Fatalf("leg1 option price %v, want surged %v", o.Price, want)
		}
	}
	// Beta had no demand before its epoch boundary: leg 2 quotes at the
	// static fare.
	if leg2.SurgeMult != 1 || leg2.FareRatio != base.Ratio(1) {
		t.Fatalf("leg2 fare context: mult %v ratio %v", leg2.SurgeMult, leg2.FareRatio)
	}

	// Router-level aggregation: panel sums cells and surged quotes
	// across cities, takes the max multiplier.
	st := r.Stats()
	if !st.Total.Surge.Enabled || st.Total.Surge.MaxMultiplier != 2 || st.Total.Surge.SurgedQuotes < 1 {
		t.Fatalf("aggregated surge panel: %+v", st.Total.Surge)
	}
	if want := engA.SurgeStats().Cells + engB.SurgeStats().Cells; st.Total.Surge.Cells != want {
		t.Fatalf("aggregated cell count %d, want %d", st.Total.Surge.Cells, want)
	}

	// Per-city surge views route by name; the bare name is ambiguous
	// with more than one city.
	va, err := r.Surge("alpha")
	if err != nil {
		t.Fatalf("surge alpha: %v", err)
	}
	if va.City != "alpha" || !va.Enabled {
		t.Fatalf("alpha surge view: %+v", va)
	}
	surged := false
	for _, c := range va.Cells {
		if c.Multiplier > 1 {
			surged = true
		}
	}
	if !surged {
		t.Fatal("alpha surge view shows no surged cells")
	}
	if _, err := r.Surge(""); err == nil {
		t.Fatal("ambiguous city name accepted for surge view")
	}
}
