package multicity_test

import (
	"math/rand"
	"sync"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/geo"
	"ptrider/internal/multicity"
	"ptrider/internal/roadnet"
)

// The router-overhead benchmark compares a bare engine against a
// single-city router over the same graph, config and seed. Each
// sub-benchmark builds its own fresh engine/router pair state so that
// ledger growth and GC pressure from an earlier sub-benchmark can't
// bleed into a later one's numbers — only the graph, the probe set and
// their coordinates are shared (all immutable).
var (
	routerBenchOnce   sync.Once
	routerBenchGraph  *roadnet.Graph
	routerBenchProbes [][2]roadnet.VertexID
	routerBenchPoints [][2]geo.Point
)

func routerBenchCfg() core.Config {
	return core.Config{GridCols: 12, GridRows: 12, Capacity: 4, Algorithm: core.AlgoDualSide, Seed: 31}
}

func routerBenchSetup(b *testing.B) {
	b.Helper()
	routerBenchOnce.Do(func() {
		g, err := gen.GenerateNetwork(gen.CityConfig{Width: 24, Height: 24, RemoveFrac: 0.15, Seed: 31})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(32))
		n := g.NumVertices()
		for len(routerBenchProbes) < 256 {
			s := roadnet.VertexID(rng.Intn(n))
			d := roadnet.VertexID(rng.Intn(n))
			if s == d {
				continue
			}
			routerBenchProbes = append(routerBenchProbes, [2]roadnet.VertexID{s, d})
			routerBenchPoints = append(routerBenchPoints, [2]geo.Point{g.Point(s), g.Point(d)})
		}
		routerBenchGraph = g
	})
}

// warmEngine pre-answers every probe once so no sub-benchmark pays the
// cold distance memo.
func warmEngine(b *testing.B, eng *core.Engine) {
	b.Helper()
	for _, p := range routerBenchProbes {
		if _, _, err := eng.MatchOnce(core.AlgoDualSide, p[0], p[1], 1); err != nil {
			b.Fatal(err)
		}
	}
}

func newBareEngine(b *testing.B) *core.Engine {
	b.Helper()
	eng, err := core.NewEngine(routerBenchGraph, routerBenchCfg())
	if err != nil {
		b.Fatal(err)
	}
	eng.AddVehiclesUniform(100)
	warmEngine(b, eng)
	return eng
}

func newSoloRouter(b *testing.B) *multicity.Router {
	b.Helper()
	router, err := multicity.New([]multicity.CitySpec{
		{Name: "solo", Graph: routerBenchGraph, Config: routerBenchCfg(), Vehicles: 100},
	})
	if err != nil {
		b.Fatal(err)
	}
	solo, err := router.Engine("solo")
	if err != nil {
		b.Fatal(err)
	}
	warmEngine(b, solo)
	return router
}

// BenchmarkRouterSubmit measures the multi-city router's overhead on
// single-city traffic against a bare engine (acceptance target: the
// "router" variant within 5% of "bare"). "router" addresses requests by
// city + vertex (the replay path: id striding and dispatch only);
// "router-coords" goes through the full coordinate front door (city
// lookup + nearest-vertex snap).
func BenchmarkRouterSubmit(b *testing.B) {
	routerBenchSetup(b)
	b.Run("bare", func(b *testing.B) {
		eng := newBareEngine(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := routerBenchProbes[i%len(routerBenchProbes)]
			rec, err := eng.Submit(p[0], p[1], 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Decline(rec.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("router", func(b *testing.B) {
		router := newSoloRouter(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := routerBenchProbes[i%len(routerBenchProbes)]
			rec, err := router.SubmitIn("solo", p[0], p[1], 1, core.DefaultConstraints())
			if err != nil {
				b.Fatal(err)
			}
			if err := router.Decline(rec.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("router-coords", func(b *testing.B) {
		router := newSoloRouter(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := routerBenchPoints[i%len(routerBenchPoints)]
			rec, err := router.Submit(p[0], p[1], 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := router.Decline(rec.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Relay-bench world: the router-bench city plus a second city across
// the gap, with probe pairs for same-city (city A) and cross-city
// traffic. Shared immutable state only; each sub-benchmark builds its
// own router.
var (
	relayBenchOnce   sync.Once
	relayBenchGraphB *roadnet.Graph
	relayBenchCross  [][2]geo.Point
)

func relayBenchSetup(b *testing.B) {
	b.Helper()
	routerBenchSetup(b)
	relayBenchOnce.Do(func() {
		gb, err := gen.GenerateNetwork(gen.CityConfig{Width: 16, Height: 16, RemoveFrac: 0.15, OriginX: 30000, Seed: 33})
		if err != nil {
			panic(err)
		}
		relayBenchGraphB = gb
		rng := rand.New(rand.NewSource(34))
		for len(relayBenchCross) < 128 {
			o := routerBenchGraph.Point(roadnet.VertexID(rng.Intn(routerBenchGraph.NumVertices())))
			d := gb.Point(roadnet.VertexID(rng.Intn(gb.NumVertices())))
			relayBenchCross = append(relayBenchCross, [2]geo.Point{o, d})
		}
	})
}

func newTwinRouter(b *testing.B, enableRelay bool) *multicity.Router {
	b.Helper()
	cfgB := routerBenchCfg()
	cfgB.Seed = 33
	router, err := multicity.NewWithConfig([]multicity.CitySpec{
		{Name: "solo", Graph: routerBenchGraph, Config: routerBenchCfg(), Vehicles: 100},
		{Name: "far", Graph: relayBenchGraphB, Config: cfgB, Vehicles: 60},
	}, multicity.RouterConfig{EnableRelay: enableRelay})
	if err != nil {
		b.Fatal(err)
	}
	solo, err := router.Engine("solo")
	if err != nil {
		b.Fatal(err)
	}
	warmEngine(b, solo)
	return router
}

// BenchmarkRelaySubmit measures what relay scheduling costs traffic
// that never crosses a city border (acceptance target: "relay-enabled"
// within 2% of "plain" — the relay path adds only nil checks to
// same-city routing) and, for scale, what a full cross-city relay
// quote costs ("cross": 2·MaxGateways engine quotes plus skyline
// composition per call).
func BenchmarkRelaySubmit(b *testing.B) {
	relayBenchSetup(b)
	sameCity := func(b *testing.B, router *multicity.Router) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := routerBenchProbes[i%len(routerBenchProbes)]
			rec, err := router.SubmitIn("solo", p[0], p[1], 1, core.DefaultConstraints())
			if err != nil {
				b.Fatal(err)
			}
			if err := router.Decline(rec.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) {
		sameCity(b, newTwinRouter(b, false))
	})
	b.Run("relay-enabled", func(b *testing.B) {
		sameCity(b, newTwinRouter(b, true))
	})
	b.Run("cross", func(b *testing.B) {
		router := newTwinRouter(b, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := relayBenchCross[i%len(relayBenchCross)]
			rec, err := router.Submit(p[0], p[1], 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := router.Decline(rec.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRouterTick measures the parallel per-city tick fan-out on a
// two-city router.
func BenchmarkRouterTick(b *testing.B) {
	r, err := multicity.BuildFromSpec("east:16x16:200,west:16x16:200", core.Config{Capacity: 4}, 41)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Tick(1); err != nil {
			b.Fatal(err)
		}
	}
}
