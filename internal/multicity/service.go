// service.go implements the core.Service interface over the Router, so
// every transport that speaks Service (the public ptrider package, the
// HTTP server, the workload simulator) serves one city or many through
// the same verbs. The Router's own richer API (Submit by geo.Point,
// SubmitIn, Record with the relay TripView) remains for programmatic
// callers; these methods adapt it to the backend-agnostic contract.
package multicity

import (
	"fmt"
	"sort"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
)

// Router implements core.Service as an N-city backend.
var _ core.Service = (*Router)(nil)

// serviceRecord lifts a router record into the Service view.
func (r *Router) serviceRecord(rec *Record) *core.ServiceRecord {
	out := &core.ServiceRecord{RequestRecord: rec.RequestRecord, City: rec.City}
	if ci, ok := r.byName[rec.City]; ok {
		out.Speed = r.cities[ci].eng.Speed()
	}
	if rec.Relay != nil {
		out.Relay = rec.Relay.ServiceView(rec.ID)
	}
	return out
}

// SubmitRequest implements core.Service: coordinate-addressed specs run
// the router's city assignment (and, when enabled, relay scheduling);
// vertex-addressed specs name their city explicitly.
func (r *Router) SubmitRequest(spec core.SubmitSpec) (*core.ServiceRecord, error) {
	rec, err := r.submitSpec(&spec)
	if err != nil {
		return nil, err
	}
	return r.serviceRecord(rec), nil
}

func (r *Router) submitSpec(spec *core.SubmitSpec) (*Record, error) {
	if spec.ByCoords {
		return r.submitCoords(spec.Origin, spec.Dest, spec.Riders, spec.Constraints, spec.IdemKey, spec.Span)
	}
	if spec.City == "" {
		return nil, fmt.Errorf("multicity: vertex-addressed requests need a city: %w", core.ErrInvalidArgument)
	}
	return r.submitIn(spec.City, spec.S, spec.D, spec.Riders, spec.Constraints, spec.IdemKey, spec.Span)
}

// SubmitRequestBatch implements core.Service over the router's
// concurrent per-city batch fan-out. Vertex-addressed specs are mapped
// to their vertices' coordinates, which the locator resolves back to
// the same city — one batch pipeline serves both addressing modes.
func (r *Router) SubmitRequestBatch(specs []core.SubmitSpec) ([]*core.ServiceRecord, error) {
	out := make([]*core.ServiceRecord, len(specs))
	var firstErr error
	items := make([]BatchItem, 0, len(specs))
	idxs := make([]int, 0, len(specs))
	for i := range specs {
		spec := &specs[i]
		it := BatchItem{Riders: spec.Riders, Constraints: spec.Constraints, Choose: spec.Choose}
		if spec.ByCoords {
			it.O, it.D = spec.Origin, spec.Dest
		} else {
			ci, err := r.cityIndex(spec.City)
			if err == nil {
				g := r.cities[ci].eng.Graph()
				n := roadnet.VertexID(g.NumVertices())
				if spec.S < 0 || spec.S >= n || spec.D < 0 || spec.D >= n {
					err = fmt.Errorf("multicity: %s: request endpoints out of range: %w",
						spec.City, core.ErrInvalidArgument)
				} else {
					it.O, it.D = g.Point(spec.S), g.Point(spec.D)
				}
			} else if spec.City == "" {
				err = fmt.Errorf("multicity: vertex-addressed requests need a city: %w", core.ErrInvalidArgument)
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("multicity: batch item %d: %w", i, err)
				}
				continue
			}
		}
		items = append(items, it)
		idxs = append(idxs, i)
	}
	recs, err := r.SubmitBatch(items)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	for k, rec := range recs {
		if rec != nil {
			out[idxs[k]] = r.serviceRecord(rec)
		}
	}
	return out, firstErr
}

// GetRequest implements core.Service.
func (r *Router) GetRequest(id core.RequestID) (*core.ServiceRecord, error) {
	rec, err := r.Request(id)
	if err != nil {
		return nil, err
	}
	return r.serviceRecord(rec), nil
}

// Requests implements core.Service: one city's ledger listing with ids
// lifted into the global namespace, or — with city "" — every city's
// listing merged, global id ascending. Relay trips are not listed (they
// live in the scheduler's trip ledger, per the Service contract).
func (r *Router) Requests(city string, filter core.RequestFilter, limit int) ([]*core.ServiceRecord, error) {
	cities := make([]int, 0, len(r.cities))
	if city != "" {
		ci, err := r.cityIndex(city)
		if err != nil {
			return nil, err
		}
		cities = append(cities, ci)
	} else {
		for ci := range r.cities {
			cities = append(cities, ci)
		}
	}
	var out []*core.ServiceRecord
	for _, ci := range cities {
		recs, err := r.cities[ci].eng.Requests("", filter, 0)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			rec.ID = r.globalID(ci, rec.ID)
			rec.City = r.cities[ci].name
			rec.Speed = r.cities[ci].eng.Speed()
			out = append(out, rec)
		}
	}
	// Per-city slices are locally sorted; the merged listing re-sorts by
	// global id so pagination pages are stable across cities.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// RelayItinerary implements core.Service.
func (r *Router) RelayItinerary(id core.RequestID) (*core.RelayView, error) {
	tv, err := r.RelayTrip(id)
	if err != nil {
		return nil, err
	}
	return tv.ServiceView(id), nil
}

// Advance implements core.Service: one concurrent tick of every city,
// with the events' request ids lifted into the router's global
// namespace so they match the ids the request surface hands out.
func (r *Router) Advance(dt float64) ([]core.ServiceEvent, error) {
	perCity, err := r.Tick(dt)
	var out []core.ServiceEvent
	for ci, ce := range perCity {
		for _, ev := range ce.Events {
			ev.Request = r.globalID(ci, ev.Request)
			out = append(out, core.ServiceEvent{City: ce.City, Event: ev})
		}
	}
	return out, err
}

// Clock implements core.Service: the maximum city clock (the clocks
// advance in lockstep through Tick; the max covers per-city skew from
// a partially-failed tick). Each read is one atomic load per city —
// no panel aggregation.
func (r *Router) Clock() float64 {
	var clock float64
	for i := range r.cities {
		if c := r.cities[i].eng.Clock(); c > clock {
			clock = c
		}
	}
	return clock
}

// ServiceStats implements core.Service.
func (r *Router) ServiceStats() core.ServiceStats {
	st := r.Stats()
	return core.ServiceStats{
		Total:        st.Total,
		Cities:       st.Cities,
		Multi:        true,
		RelayEnabled: st.RelayEnabled,
		Relay:        st.Relay,
	}
}

// Cities implements core.Service.
func (r *Router) Cities() []core.CityInfo {
	out := make([]core.CityInfo, len(r.cities))
	for i := range r.cities {
		out[i] = core.CityInfo{
			Name:     r.cities[i].name,
			Vertices: r.cities[i].eng.Graph().NumVertices(),
			Vehicles: r.cities[i].eng.NumVehicles(),
			Region:   r.cities[i].region,
		}
	}
	return out
}

// cityIndexArg resolves a Service city argument: multi-city backends
// have no "only city", so an empty name is a caller error rather than
// an unknown city.
func (r *Router) cityIndexArg(city string) (int, error) {
	if city == "" {
		return 0, fmt.Errorf("multicity: missing city parameter: %w", core.ErrInvalidArgument)
	}
	return r.cityIndex(city)
}

// Vehicles implements core.Service.
func (r *Router) Vehicles(city string, limit int) ([]core.VehicleView, error) {
	ci, err := r.cityIndexArg(city)
	if err != nil {
		return nil, err
	}
	return r.cities[ci].eng.VehicleViews(limit), nil
}

// VehicleItinerary implements core.Service.
func (r *Router) VehicleItinerary(city string, id fleet.VehicleID) (*core.VehicleItinerary, error) {
	ci, err := r.cityIndexArg(city)
	if err != nil {
		return nil, err
	}
	loc, branches, err := r.cities[ci].eng.VehicleSchedules(id)
	if err != nil {
		return nil, fmt.Errorf("multicity: %s: vehicle %d: %w", city, id, core.ErrNotFound)
	}
	return &core.VehicleItinerary{
		City: r.cities[ci].name, Vehicle: id, Location: loc, Branches: branches,
	}, nil
}

// Params implements core.Service.
func (r *Router) Params(city string) (core.ServiceParams, error) {
	ci, err := r.cityIndexArg(city)
	if err != nil {
		return core.ServiceParams{}, err
	}
	eng := r.cities[ci].eng
	p, err := eng.Params("")
	if err != nil {
		return core.ServiceParams{}, err
	}
	p.City = r.cities[ci].name
	return p, nil
}

// Surge implements core.Service.
func (r *Router) Surge(city string) (*core.SurgeView, error) {
	ci, err := r.cityIndexArg(city)
	if err != nil {
		return nil, err
	}
	v, err := r.cities[ci].eng.Surge("")
	if err != nil {
		return nil, err
	}
	v.City = r.cities[ci].name
	return v, nil
}

// SetCityAlgorithm implements core.Service.
func (r *Router) SetCityAlgorithm(city string, algo core.Algorithm) error {
	ci, err := r.cityIndexArg(city)
	if err != nil {
		return err
	}
	return r.cities[ci].eng.SetAlgorithm(algo)
}

// CityGraph implements core.Service.
func (r *Router) CityGraph(city string) (*roadnet.Graph, error) {
	ci, err := r.cityIndexArg(city)
	if err != nil {
		return nil, err
	}
	return r.cities[ci].eng.Graph(), nil
}

// RelayTripView keeps relay's TripView reachable from the multicity
// namespace without forcing transports to import the relay package.
type RelayTripView = relay.TripView
