package core_test

// Tests of the dynamic pricing pipeline threaded through the engine:
// surge-off quotes must be bit-identical to the paper's static model,
// surge-on quotes must carry the origin cell's multiplier resolved at
// quote time, and the tracker's epoch state must survive WAL recovery
// both through journal replay and through snapshot restore.

import (
	"fmt"
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/pricing"
	"ptrider/internal/pricing/surge"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
	"ptrider/internal/wal"
)

// hotTiers surge any cell with demand: threshold well below one
// request per epoch, doubling the fare.
func hotTiers() []surge.Tier {
	return []surge.Tier{{MinRatio: 0.0001, Multiplier: 2}}
}

// surgeConfig is the shared surge-on engine config: tiny epochs,
// no smoothing, hair-trigger tiers — every behaviour is observable
// within a couple of ticks.
func surgeConfig() core.Config {
	return core.Config{
		GridCols: 4, GridRows: 4,
		Capacity: 4, MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
		SurgeEnabled: true, SurgeEpochSeconds: 10, SurgeAlpha: 1,
		SurgeTiers: hotTiers(),
	}
}

// TestSurgeOffBitIdenticalToStaticModel pins the golden-equivalence
// contract on the serial submit path: with surge disabled, every
// quoted option's price and the record's fare context must equal the
// static paper model bit for bit.
func TestSurgeOffBitIdenticalToStaticModel(t *testing.T) {
	e := latticeEngine(t, 3, 8, 8, core.Config{
		Capacity: 4, MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
	})
	e.AddVehiclesUniform(12)
	m := pricing.NewModel(nil)
	rng := rand.New(rand.NewSource(7))
	nv := e.Graph().NumVertices()
	for i := 0; i < 40; i++ {
		s := roadnet.VertexID(rng.Intn(nv))
		d := roadnet.VertexID(rng.Intn(nv))
		for d == s {
			d = roadnet.VertexID(rng.Intn(nv))
		}
		riders := 1 + rng.Intn(3)
		rec, err := e.Submit(s, d, riders)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if rec.FareRatio != m.Ratio(riders) {
			t.Fatalf("req %d: FareRatio %v != static ratio %v", rec.ID, rec.FareRatio, m.Ratio(riders))
		}
		if rec.SurgeMult != 1 || rec.SurgeEpoch != 0 {
			t.Fatalf("req %d: surge provenance on a surge-off engine: %+v", rec.ID, rec)
		}
		for _, o := range rec.Options {
			if want := m.Price(riders, o.Candidate.Delta, rec.SD); o.Price != want {
				t.Fatalf("req %d vehicle %d: price %v != static %v", rec.ID, o.Vehicle, o.Price, want)
			}
		}
	}
}

// TestSurgeIdleIdenticalToSurgeOff runs the same workload against a
// surge-off engine and a surge-enabled engine with no demand pressure
// (default tiers never trip at this load): skylines must be
// byte-identical on both the serial and the batch path — enabling the
// pipeline must cost nothing in fidelity until a cell actually surges.
func TestSurgeIdleIdenticalToSurgeOff(t *testing.T) {
	base := core.Config{
		Capacity: 4, MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
	}
	surged := base
	surged.SurgeEnabled = true
	surged.SurgeEpochSeconds = 5

	off := latticeEngine(t, 3, 8, 8, base)
	on := latticeEngine(t, 3, 8, 8, surged)
	off.AddVehiclesUniform(12)
	on.AddVehiclesUniform(12)

	rng := rand.New(rand.NewSource(11))
	nv := off.Graph().NumVertices()
	pair := func() (roadnet.VertexID, roadnet.VertexID) {
		s := roadnet.VertexID(rng.Intn(nv))
		d := roadnet.VertexID(rng.Intn(nv))
		for d == s {
			d = roadnet.VertexID(rng.Intn(nv))
		}
		return s, d
	}
	checkEqual := func(a, b *core.RequestRecord) {
		t.Helper()
		if len(a.Options) != len(b.Options) {
			t.Fatalf("req %d: %d options vs %d", a.ID, len(a.Options), len(b.Options))
		}
		for i := range a.Options {
			oa, ob := a.Options[i], b.Options[i]
			if oa.Vehicle != ob.Vehicle || oa.Price != ob.Price || oa.PickupDist != ob.PickupDist {
				t.Fatalf("req %d option %d: %+v vs %+v", a.ID, i, oa, ob)
			}
		}
		if a.FareRatio != b.FareRatio {
			t.Fatalf("req %d: FareRatio %v vs %v", a.ID, a.FareRatio, b.FareRatio)
		}
	}

	// Serial path, with ticks interleaved so the surge engine crosses
	// epoch boundaries (all multipliers stay 1 under default tiers).
	for i := 0; i < 20; i++ {
		s, d := pair()
		ra, err := off.Submit(s, d, 1+i%3)
		if err != nil {
			t.Fatalf("off submit: %v", err)
		}
		rb, err := on.Submit(s, d, 1+i%3)
		if err != nil {
			t.Fatalf("on submit: %v", err)
		}
		checkEqual(ra, rb)
		if i%5 == 4 {
			if _, err := off.Tick(5); err != nil {
				t.Fatalf("off tick: %v", err)
			}
			if _, err := on.Tick(5); err != nil {
				t.Fatalf("on tick: %v", err)
			}
		}
	}

	// Batch path.
	items := make([]core.BatchItem, 8)
	for i := range items {
		s, d := pair()
		items[i] = core.BatchItem{S: s, D: d, Riders: 1 + i%3, Constraints: core.DefaultConstraints()}
	}
	ra, err := off.SubmitBatch(items)
	if err != nil {
		t.Fatalf("off batch: %v", err)
	}
	rb, err := on.SubmitBatch(items)
	if err != nil {
		t.Fatalf("on batch: %v", err)
	}
	for i := range ra {
		checkEqual(ra[i], rb[i])
	}

	if st := on.SurgeStats(); !st.Enabled || st.ActiveCells != 0 || st.SurgedQuotes != 0 {
		t.Fatalf("idle surge panel = %+v", st)
	}
}

// TestSurgeRaisesQuotesInHotCells drives demand into one cell, crosses
// an epoch boundary, and checks the next quote out of that cell is
// doubled — while a cold cell still quotes the static fare.
func TestSurgeRaisesQuotesInHotCells(t *testing.T) {
	e := latticeEngine(t, 3, 8, 8, surgeConfig())
	e.AddVehiclesUniform(4)

	g := e.Graph()
	hotV := roadnet.VertexID(0)
	coldV := roadnet.VertexID(g.NumVertices() - 1)
	hotCell := e.Grid().CellOf(hotV)
	if coldCell := e.Grid().CellOf(coldV); coldCell == hotCell {
		t.Fatalf("test vertices share cell %d", hotCell)
	}

	// Demand out of the hot cell, then an epoch boundary.
	for i := 0; i < 6; i++ {
		if _, err := e.Submit(hotV, coldV, 1); err != nil {
			t.Fatalf("demand submit: %v", err)
		}
	}
	if _, err := e.Tick(10); err != nil {
		t.Fatalf("tick: %v", err)
	}
	if ep := e.SurgeStats().Epoch; ep != 1 {
		t.Fatalf("epoch %d after first boundary, want 1", ep)
	}

	m := pricing.NewModel(nil)
	hot, err := e.Submit(hotV, coldV, 2)
	if err != nil {
		t.Fatalf("hot submit: %v", err)
	}
	if hot.SurgeMult != 2 || hot.SurgeCell != int32(hotCell) || hot.SurgeEpoch != 1 {
		t.Fatalf("hot quote provenance = mult %v cell %d epoch %d", hot.SurgeMult, hot.SurgeCell, hot.SurgeEpoch)
	}
	if want := m.Ratio(2) * 2; hot.FareRatio != want {
		t.Fatalf("hot FareRatio %v, want %v", hot.FareRatio, want)
	}
	for _, o := range hot.Options {
		if want := hot.FareRatio * (o.Candidate.Delta + hot.SD); o.Price != want {
			t.Fatalf("hot option price %v, want %v", o.Price, want)
		}
	}

	cold, err := e.Submit(coldV, hotV, 2)
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	if cold.SurgeMult != 1 || cold.FareRatio != m.Ratio(2) {
		t.Fatalf("cold quote surged: mult %v ratio %v", cold.SurgeMult, cold.FareRatio)
	}

	st := e.SurgeStats()
	if !st.Enabled || st.ActiveCells < 1 || st.MaxMultiplier != 2 || st.SurgedQuotes < 1 {
		t.Fatalf("surge panel = %+v", st)
	}
	view, err := e.Surge("")
	if err != nil {
		t.Fatalf("surge view: %v", err)
	}
	found := false
	for _, c := range view.Cells {
		if c.Cell == int(hotCell) && c.Multiplier == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot cell %d missing from surge view %+v", hotCell, view.Cells)
	}
	if ps, err := e.Params(""); err != nil || !ps.SurgeEnabled || ps.SurgeEpoch != st.Epoch {
		t.Fatalf("params surge fields = %+v (err %v)", ps, err)
	}
}

// TestSurgeQuoteKeepsItsMultiplier checks the FareContext is pinned at
// submit time: a quote taken during a surge keeps pricing under its
// quoted ratio even when the rider chooses after the epoch has rolled
// over and the cell has cooled off.
func TestSurgeQuoteKeepsItsMultiplier(t *testing.T) {
	cfg := surgeConfig()
	cfg.CommitSlack = 10 // commit through quote staleness from the ticks
	e := latticeEngine(t, 3, 8, 8, cfg)
	e.AddVehiclesUniform(6)

	hotV := roadnet.VertexID(0)
	farV := roadnet.VertexID(e.Graph().NumVertices() - 1)
	for i := 0; i < 6; i++ {
		if _, err := e.Submit(hotV, farV, 1); err != nil {
			t.Fatalf("demand submit: %v", err)
		}
	}
	if _, err := e.Tick(10); err != nil {
		t.Fatalf("tick: %v", err)
	}

	rec, err := e.Submit(hotV, farV, 1)
	if err != nil {
		t.Fatalf("surged submit: %v", err)
	}
	if rec.SurgeMult != 2 || len(rec.Options) == 0 {
		t.Fatalf("expected a surged quote with options, got mult %v, %d options", rec.SurgeMult, len(rec.Options))
	}

	// Cool the cell: epochs with no demand drop the multiplier back to
	// 1 (alpha 1 forgets the hot epoch immediately). Two ticks because
	// the surged quote above itself counted as demand for the first.
	for i := 0; i < 2; i++ {
		if _, err := e.Tick(10); err != nil {
			t.Fatalf("cooling tick: %v", err)
		}
	}
	if m := e.SurgeStats().MaxMultiplier; m != 1 {
		t.Fatalf("cell did not cool: max multiplier %v", m)
	}

	if err := e.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	got, err := e.Request(rec.ID)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	// Whether the commit used the quoted schedule or a slack re-probe,
	// the price must be in the quoted (surged) ratio — never the
	// cooled-off live ratio.
	if got.Price < rec.FareRatio*got.SD {
		t.Fatalf("committed price %v below the quoted surged floor %v", got.Price, rec.FareRatio*got.SD)
	}
}

// TestSurgeWALRecovery round-trips the surge state through both
// recovery paths: journal replay (abandoned engine) and snapshot
// restore (closed engine). The recovered tracker must expose the same
// epoch, multipliers and surged-quote count, and quote new requests
// identically to the original.
func TestSurgeWALRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := surgeConfig()
	cfg.Durability = wal.ModeSync
	cfg.WALDir = dir
	cfg.Seed = 3
	g := testnet.Lattice(rand.New(rand.NewSource(3)), 8, 8, 100)

	e, err := core.NewEngine(g, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.AddVehiclesUniform(4)
	hotV := roadnet.VertexID(0)
	farV := roadnet.VertexID(g.NumVertices() - 1)
	for i := 0; i < 6; i++ {
		if _, err := e.SubmitIdem(hotV, farV, 1, core.DefaultConstraints(), fmt.Sprintf("d%d", i)); err != nil {
			t.Fatalf("demand submit: %v", err)
		}
	}
	if _, err := e.Tick(10); err != nil {
		t.Fatalf("tick: %v", err)
	}
	surgedRec, err := e.SubmitIdem(hotV, farV, 1, core.DefaultConstraints(), "hot")
	if err != nil {
		t.Fatalf("surged submit: %v", err)
	}
	if surgedRec.SurgeMult != 2 {
		t.Fatalf("expected surged quote, got mult %v", surgedRec.SurgeMult)
	}
	// Pending mid-epoch demand that must survive recovery too.
	if _, err := e.SubmitIdem(farV, hotV, 1, core.DefaultConstraints(), "pend"); err != nil {
		t.Fatalf("pending submit: %v", err)
	}
	want := e.SurgeStats()

	assertRecovered := func(r *core.Engine, path string) {
		t.Helper()
		if !r.Recovered() {
			t.Fatalf("%s: engine did not recover", path)
		}
		got := r.SurgeStats()
		if got != want {
			t.Fatalf("%s: surge panel %+v != %+v", path, got, want)
		}
		rec, err := r.Request(surgedRec.ID)
		if err != nil {
			t.Fatalf("%s: surged request lost: %v", path, err)
		}
		if rec.FareRatio != surgedRec.FareRatio || rec.SurgeMult != 2 || rec.SurgeEpoch != surgedRec.SurgeEpoch {
			t.Fatalf("%s: fare context drifted: %+v", path, rec)
		}
		// A fresh quote out of the hot cell prices under the same
		// multiplier as the original engine would.
		fresh, err := r.SubmitIdem(hotV, farV, 1, core.DefaultConstraints(), "fresh-"+path)
		if err != nil {
			t.Fatalf("%s: fresh submit: %v", path, err)
		}
		if fresh.SurgeMult != 2 || fresh.SurgeEpoch != want.Epoch {
			t.Fatalf("%s: fresh quote mult %v epoch %d, want 2 @ %d", path, fresh.SurgeMult, fresh.SurgeEpoch, want.Epoch)
		}
	}

	// Path 1: journal replay — the first engine is abandoned without a
	// final snapshot, so recovery replays every record including the
	// opSurge epoch advance.
	e.Kill()
	r1, err := core.NewEngine(g, cfg)
	if err != nil {
		t.Fatalf("replay recovery: %v", err)
	}
	assertRecovered(r1, "replay")

	// Path 2: snapshot restore — close flushes a final snapshot; the
	// next engine restores it (plus the fresh quote's journal tail).
	if err := r1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r2, err := core.NewEngine(g, cfg)
	if err != nil {
		t.Fatalf("snapshot recovery: %v", err)
	}
	if got := r2.SurgeStats(); got.Epoch != want.Epoch || got.MaxMultiplier != want.MaxMultiplier ||
		got.ActiveCells != want.ActiveCells || got.SurgedQuotes != want.SurgedQuotes+1 {
		// +1: the replay-path engine quoted one more surged request.
		t.Fatalf("snapshot: surge panel %+v (want %+v with one extra surged quote)", got, want)
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("close r2: %v", err)
	}
}

// TestSurgeDisabledRecoverySkipsSurgeRecords checks a journal written
// by a surge-enabled engine still recovers under a surge-off config:
// the opSurge records are skipped and the quoted fares stand as
// journaled.
func TestSurgeDisabledRecoverySkipsSurgeRecords(t *testing.T) {
	dir := t.TempDir()
	cfg := surgeConfig()
	cfg.Durability = wal.ModeSync
	cfg.WALDir = dir
	cfg.Seed = 3
	g := testnet.Lattice(rand.New(rand.NewSource(3)), 8, 8, 100)

	e, err := core.NewEngine(g, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.AddVehiclesUniform(4)
	hotV := roadnet.VertexID(0)
	farV := roadnet.VertexID(g.NumVertices() - 1)
	for i := 0; i < 6; i++ {
		if _, err := e.SubmitIdem(hotV, farV, 1, core.DefaultConstraints(), fmt.Sprintf("d%d", i)); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	if _, err := e.Tick(10); err != nil {
		t.Fatalf("tick: %v", err)
	}
	hot, err := e.SubmitIdem(hotV, farV, 1, core.DefaultConstraints(), "hot")
	if err != nil {
		t.Fatalf("surged submit: %v", err)
	}
	e.Kill()

	off := cfg
	off.SurgeEnabled = false
	r, err := core.NewEngine(g, off)
	if err != nil {
		t.Fatalf("surge-off recovery: %v", err)
	}
	rec, err := r.Request(hot.ID)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if rec.FareRatio != hot.FareRatio || rec.SurgeMult != hot.SurgeMult {
		t.Fatalf("journaled fare context lost: %+v vs %+v", rec, hot)
	}
	if st := r.SurgeStats(); st.Enabled {
		t.Fatalf("surge-off engine reports surge enabled: %+v", st)
	}
}
