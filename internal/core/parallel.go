package core

import (
	"sync"
	"sync/atomic"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/skyline"
)

// This file holds the engine's parallel candidate-evaluation machinery.
//
// The matchers' hot cost is the kinetic-tree insertion probe
// (Vehicle.Quote); ring scanning and bound checks are cheap by
// comparison. With MatchWorkers > 1 the matchers therefore collect the
// vehicles that survive bound-based pruning per ring cell into a batch,
// probe the batch concurrently (each probe under its own vehicle's
// lock, side-effect-free), and fold the returned candidates into the
// skyline sequentially in discovery order.
//
// Folding in discovery order is what keeps the parallel matcher's
// option sets identical to the serial matcher's: the skyline is a
// deterministic function of the folded options and their order (order
// decides which vehicle wins an exact coordinate tie), and vehicles the
// serial matcher would have pruned mid-cell only ever contribute
// strictly dominated candidates (the bounds are sound), which the fold
// rejects. The parallel mode may therefore probe more vehicles —
// Verified/PrunedVehicles in MatchStats shift — but the returned
// skyline does not.

// visitSet is an epoch-stamped membership set over dense vehicle ids,
// reused across matches to avoid clearing. Ids beyond the current size
// (vehicles added mid-match) grow the stamp slice on demand.
type visitSet struct {
	stamp []uint32
	epoch uint32
}

// begin starts a new epoch sized for n vehicles.
func (s *visitSet) begin(n int) {
	if len(s.stamp) < n {
		grown := make([]uint32, n)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

func (s *visitSet) grow(id gridindex.VehicleID) {
	if int(id) >= len(s.stamp) {
		grown := make([]uint32, int(id)+1)
		copy(grown, s.stamp)
		s.stamp = grown
	}
}

// first marks id visited and reports whether this was the first visit
// this epoch.
func (s *visitSet) first(id gridindex.VehicleID) bool {
	s.grow(id)
	if s.stamp[id] == s.epoch {
		return false
	}
	s.stamp[id] = s.epoch
	return true
}

// mark records id without reporting.
func (s *visitSet) mark(id gridindex.VehicleID) {
	s.grow(id)
	s.stamp[id] = s.epoch
}

// seen reports whether id was marked this epoch.
func (s *visitSet) seen(id gridindex.VehicleID) bool {
	return int(id) < len(s.stamp) && s.stamp[id] == s.epoch
}

// matchScratch is the per-match workspace. Matchers are stateless and
// safe for concurrent Match calls; each call checks a scratch out of
// the context's pool.
type matchScratch struct {
	visit visitSet // s-side discovery
	dseen visitSet // d-side discovery (dual-side only)

	ids     []gridindex.VehicleID // cell-list read buffer
	batch   []*fleet.Vehicle      // vehicles awaiting a parallel probe
	quotes  [][]kinetic.Candidate // per-batch probe results
	pending []pendingVehicle      // dual-side deferred vehicles
}

func (ctx *matchContext) getScratch() *matchScratch {
	return ctx.scratch.Get().(*matchScratch)
}

func (ctx *matchContext) putScratch(sc *matchScratch) {
	sc.batch = sc.batch[:0]
	sc.pending = sc.pending[:0]
	ctx.scratch.Put(sc)
}

// flushBatch probes every batched vehicle (concurrently when the batch
// and the worker budget allow) and folds the candidates into the
// skyline in batch order. The batch is reset.
func (ctx *matchContext) flushBatch(sc *matchScratch, spec *ReqSpec, sky *skyline.Skyline[Option], stats *MatchStats) {
	n := len(sc.batch)
	if n == 0 {
		return
	}
	if n == 1 || ctx.workers <= 1 {
		for _, v := range sc.batch {
			quoteVehicle(v, spec, sky, stats)
		}
	} else {
		if cap(sc.quotes) < n {
			sc.quotes = make([][]kinetic.Candidate, n)
		}
		quotes := sc.quotes[:n]
		parallelFor(ctx.workers, n, func(i int) {
			quotes[i] = sc.batch[i].Quote(spec.Kin)
		})
		for i, v := range sc.batch {
			stats.Verified++
			foldCandidates(v, quotes[i], spec, sky, stats)
			quotes[i] = nil
		}
	}
	sc.batch = sc.batch[:0]
}

// parallelFor runs fn(0..n-1) across up to `workers` goroutines with
// work stealing via an atomic index; the caller participates, so the
// call makes progress even when the scheduler is saturated. fn must be
// safe for concurrent invocation on distinct indices.
func parallelFor(workers, n int, fn func(int)) {
	k := workers
	if n < k {
		k = n
	}
	if k <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(k - 1)
	for w := 0; w < k-1; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1) - 1)
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}
