package core

import (
	"math"
	"sync"
	"sync/atomic"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/skyline"
)

// This file holds the engine's parallel candidate-evaluation machinery.
//
// The matchers' hot cost is the kinetic-tree insertion probe
// (Vehicle.Quote); ring scanning and bound checks are cheap by
// comparison. With MatchWorkers > 1 the matchers therefore collect the
// vehicles that survive bound-based pruning per ring cell into a batch,
// probe the batch concurrently (each probe under its own vehicle's
// lock, side-effect-free), and fold the returned candidates into the
// skyline sequentially in discovery order.
//
// Folding in discovery order is what keeps the parallel matcher's
// option sets identical to the serial matcher's: the skyline is a
// deterministic function of the folded options and their order (order
// decides which vehicle wins an exact coordinate tie), and vehicles the
// serial matcher would have pruned mid-cell only ever contribute
// strictly dominated candidates (the bounds are sound), which the fold
// rejects. The parallel mode may therefore probe more vehicles —
// Verified/PrunedVehicles in MatchStats shift — but the returned
// skyline does not.

// visitSet is an epoch-stamped membership set over dense vehicle ids,
// reused across matches to avoid clearing. Ids beyond the current size
// (vehicles added mid-match) grow the stamp slice on demand.
type visitSet struct {
	stamp []uint32
	epoch uint32
}

// begin starts a new epoch sized for n vehicles.
func (s *visitSet) begin(n int) {
	if len(s.stamp) < n {
		grown := make([]uint32, n)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

func (s *visitSet) grow(id gridindex.VehicleID) {
	if int(id) >= len(s.stamp) {
		grown := make([]uint32, int(id)+1)
		copy(grown, s.stamp)
		s.stamp = grown
	}
}

// first marks id visited and reports whether this was the first visit
// this epoch.
func (s *visitSet) first(id gridindex.VehicleID) bool {
	s.grow(id)
	if s.stamp[id] == s.epoch {
		return false
	}
	s.stamp[id] = s.epoch
	return true
}

// mark records id without reporting.
func (s *visitSet) mark(id gridindex.VehicleID) {
	s.grow(id)
	s.stamp[id] = s.epoch
}

// seen reports whether id was marked this epoch.
func (s *visitSet) seen(id gridindex.VehicleID) bool {
	return int(id) < len(s.stamp) && s.stamp[id] == s.epoch
}

// matchScratch is the per-match workspace. Matchers are stateless and
// safe for concurrent Match calls; each call checks a scratch out of
// the context's pool. The scratch covers every reusable buffer of the
// hot path — cell-list reads, probe batches, candidate slices, the
// result skyline, and the distance-memo batch-fill workspace — so a
// steady-state match allocates only what escapes into the returned
// options.
type matchScratch struct {
	visit visitSet // s-side discovery
	dseen visitSet // d-side discovery (dual-side only)

	ids     []gridindex.VehicleID // cell-list read buffer
	batch   []*fleet.Vehicle      // vehicles awaiting a parallel probe
	pending []pendingVehicle      // dual-side deferred vehicles

	// Packed-probe buffers: candidates stay permutation-encoded until
	// the fold accepts them, so probing allocates nothing.
	pcands  []kinetic.PackedCandidate   // serial-probe candidates
	ptsBuf  []kinetic.Point             // serial-probe point set
	pquotes [][]kinetic.PackedCandidate // per-slot probe result views
	ppts    [][]kinetic.Point           // per-slot point-set views
	pbufs   [][]kinetic.PackedCandidate // per-slot candidate storage
	ptsBufs [][]kinetic.Point           // per-slot point-set storage

	// widthCap, when non-zero, caps the probe fan-out below the
	// configured worker budget. Group matches running inside a parallel
	// wave set it so the wave's total concurrency (groups × probes per
	// group) stays within MatchWorkers instead of multiplying.
	widthCap int

	sky skyline.Skyline[Option] // per-match result skyline

	// Empty-scan staging: the lower-bound survivors of one cell,
	// resolved by one batch fill.
	memoSc     memoBatchScratch
	emptyVehs  []*fleet.Vehicle
	emptyLocs  []roadnet.VertexID
	emptyDists []float64

	// Seeded-flush staging: the batched vehicles' schedule locations
	// (concatenated, with per-slot offsets) and the request-specific
	// distance rows fanned out to them.
	probeLocs   []roadnet.VertexID
	probeStarts []int32
	probeS      []float64
	probeD      []float64
	seeds       []kinetic.QuoteSeed

	// Radius-bounded fills, valid only during a coalesced group match:
	// when set, the seeded flush and the empty scan read these instead
	// of issuing per-flush and per-cell passes — one s-side and one
	// d-side search amortised across the request's whole frontier. The
	// bounds record each fill's truncation radius; lookups past them
	// fall back to per-pair searches (see DistBatchPrefilled).
	groupFills             bool
	sFill, dFill           []float64
	sFillOK, dFillOK       bool
	sFillBound, dFillBound float64
}

func (ctx *matchContext) getScratch() *matchScratch {
	return ctx.scratch.Get().(*matchScratch)
}

func (ctx *matchContext) putScratch(sc *matchScratch) {
	sc.batch = sc.batch[:0]
	sc.pending = sc.pending[:0]
	sc.groupFills = false
	sc.sFillOK = false
	sc.dFillOK = false
	sc.widthCap = 0
	ctx.scratch.Put(sc)
}

// parallelGrain is the smallest probe count worth one extra goroutine:
// batches below 2×grain run serially, so sparsely populated cells do
// not pay goroutine handoff for a couple of kinetic-tree probes.
const parallelGrain = 2

// adaptiveWidth sizes the candidate-evaluation fan-out from the
// surviving candidate count: one worker per parallelGrain probes,
// capped by the configured MatchWorkers budget.
func adaptiveWidth(workers, n int) int {
	if workers <= 1 || n < 2*parallelGrain {
		return 1
	}
	w := n / parallelGrain
	if w > workers {
		w = workers
	}
	return w
}

// flushBatch probes every batched vehicle and folds the candidates into
// the skyline in batch order. Probes run seeded: the vehicles' schedule
// locations are snapshotted, every request-specific distance the
// probes will read — dist(x, s) and dist(x, d) for every schedule
// point x — is answered through the memo's batch-fill API (one shared
// multi-target pass per side for the misses; the request's whole-graph
// fills answer them during a coalesced group match), and the probes
// consume the results straight from their enumeration matrices instead
// of issuing per-pair point searches. The fan-out width adapts to the
// batch size (see adaptiveWidth) and the widest fan-out used is
// recorded in stats.ParallelWidth. The batch is reset.
func (ctx *matchContext) flushBatch(sc *matchScratch, spec *ReqSpec, sky *skyline.Skyline[Option], stats *MatchStats) {
	n := len(sc.batch)
	if n == 0 {
		return
	}
	sc.probeLocs = sc.probeLocs[:0]
	sc.probeStarts = sc.probeStarts[:0]
	for _, v := range sc.batch {
		sc.probeStarts = append(sc.probeStarts, int32(len(sc.probeLocs)))
		sc.probeLocs = v.AppendProbeLocs(sc.probeLocs)
	}
	sc.probeStarts = append(sc.probeStarts, int32(len(sc.probeLocs)))
	total := len(sc.probeLocs)
	if cap(sc.probeS) < total {
		sc.probeS = make([]float64, total)
		sc.probeD = make([]float64, total)
	}
	probeS, probeD := sc.probeS[:total], sc.probeD[:total]
	if sc.groupFills && n >= 2 {
		// A coalesced group match amortises its probe passes against the
		// request's radius-bounded fills, created on the first flush
		// worth one (a single-vehicle flush is cheaper as a plain batch
		// pass). The radius derives from this flush's own probe
		// locations — the wave's farthest schedule point so far.
		sc.ensureSFill(ctx, spec, sc.probeLocs)
		sc.ensureDFill(ctx, spec, sc.probeLocs)
	}
	if sc.sFillOK && sc.dFillOK {
		ctx.metric.DistBatchPrefilled(spec.Kin.S, sc.probeLocs, math.Inf(1), probeS, sc.sFill, sc.sFillBound, &sc.memoSc)
		ctx.metric.DistBatchPrefilled(spec.Kin.D, sc.probeLocs, math.Inf(1), probeD, sc.dFill, sc.dFillBound, &sc.memoSc)
	} else {
		ctx.metric.DistBatch(spec.Kin.S, sc.probeLocs, math.Inf(1), probeS, &sc.memoSc)
		ctx.metric.DistBatch(spec.Kin.D, sc.probeLocs, math.Inf(1), probeD, &sc.memoSc)
	}
	for len(sc.seeds) < n {
		sc.seeds = append(sc.seeds, kinetic.QuoteSeed{})
	}
	for i := 0; i < n; i++ {
		a, b := sc.probeStarts[i], sc.probeStarts[i+1]
		sc.seeds[i] = kinetic.QuoteSeed{Locs: sc.probeLocs[a:b], SDist: probeS[a:b], DDist: probeD[a:b]}
	}

	budget := ctx.workers
	if sc.widthCap > 0 && sc.widthCap < budget {
		budget = sc.widthCap
	}
	width := adaptiveWidth(budget, n)
	if width > stats.ParallelWidth {
		stats.ParallelWidth = width
	}
	if width <= 1 {
		for i, v := range sc.batch {
			stats.Verified++
			pcands, pts := v.QuotePacked(spec.Kin, sc.pcands[:0], sc.ptsBuf[:0], &sc.seeds[i])
			foldPacked(v, pcands, pts, spec, sky, stats)
			sc.pcands, sc.ptsBuf = pcands[:0], pts[:0] // retain grown buffers
		}
	} else {
		if cap(sc.pquotes) < n {
			sc.pquotes = make([][]kinetic.PackedCandidate, n)
			sc.ppts = make([][]kinetic.Point, n)
		}
		for len(sc.pbufs) < n {
			sc.pbufs = append(sc.pbufs, nil)
			sc.ptsBufs = append(sc.ptsBufs, nil)
		}
		pquotes, ppts := sc.pquotes[:n], sc.ppts[:n]
		pbufs, ptsBufs := sc.pbufs, sc.ptsBufs
		seeds := sc.seeds
		parallelFor(width, n, func(i int) {
			pquotes[i], ppts[i] = sc.batch[i].QuotePacked(spec.Kin, pbufs[i][:0], ptsBufs[i][:0], &seeds[i])
		})
		for i, v := range sc.batch {
			stats.Verified++
			foldPacked(v, pquotes[i], ppts[i], spec, sky, stats)
			if pquotes[i] != nil {
				pbufs[i] = pquotes[i][:0] // retain grown buffers
			}
			if ppts[i] != nil {
				ptsBufs[i] = ppts[i][:0]
			}
			pquotes[i], ppts[i] = nil, nil
		}
	}
	sc.batch = sc.batch[:0]
}

// parallelFor runs fn(0..n-1) across up to `workers` goroutines with
// work stealing via an atomic index; the caller participates, so the
// call makes progress even when the scheduler is saturated. fn must be
// safe for concurrent invocation on distinct indices.
func parallelFor(workers, n int, fn func(int)) {
	k := workers
	if n < k {
		k = n
	}
	if k <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(k - 1)
	for w := 0; w < k-1; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1) - 1)
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}
