package core

// batch.go implements the coalesced batch-matching pipeline for
// simultaneously issued requests (paper §2.5). Requests that share an
// origin grid cell share one ring frontier: each ring cell's vehicle
// lists are fetched and each candidate vehicle's probe state resolved
// once per cell, then evaluated for every co-located request against
// that request's private skyline. Each request lazily runs one s-side
// and one d-side whole-graph pass (Searcher.FillDists) that then
// answers every empty-scan and probe-seed distance of its entire
// frontier by array index — where the per-request matcher issues one
// pass per empty-scan cell and two per probe flush.
//
// Equivalence with per-request matching: a request's skyline evolves
// through exactly the per-request fold sequence — the same cells in the
// same ring order, the same list orders, the same termination tests at
// each ring boundary, and candidate folds in discovery order. Shared
// resolution can only probe vehicles the per-request matcher would have
// pruned mid-cell; the bounds are sound, so such vehicles contribute
// only dominated candidates, which the fold rejects. The returned
// option sets are therefore identical to running Match per request
// against the same world; only the work counters (Verified,
// PrunedVehicles, CellsScanned, DistCalls) shift, exactly as documented
// for parallel candidate evaluation.

import (
	"math"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
)

// vehProbe is one cell vehicle's shared probe state, resolved once per
// ring cell and read by every co-located request.
type vehProbe struct {
	id     gridindex.VehicleID
	v      *fleet.Vehicle
	loc    roadnet.VertexID
	maxLeg float64
	active bool
}

// reqRun is the per-request state of one coalesced group match: the
// private skyline, discovery sets, termination flags and (dual-side)
// destination frontier of a single request riding the shared ring.
type reqRun struct {
	spec  *ReqSpec
	stats *MatchStats
	sc    *matchScratch
	es    emptyScan

	nonEmptyDone bool
	done         bool

	// Dual-side destination frontier.
	dRing []gridindex.RingEntry
	di    int
	ld    float64
}

// groupScratch is the shared workspace of one coalesced group match.
type groupScratch struct {
	runs     []reqRun
	ids      []gridindex.VehicleID
	empty    []vehProbe
	nonEmpty []vehProbe
}

func (ctx *matchContext) getGroupScratch() *groupScratch {
	return ctx.groups.Get().(*groupScratch)
}

func (ctx *matchContext) putGroupScratch(gs *groupScratch) {
	ctx.groups.Put(gs)
}

// resolveEmpty reads the cell's empty-vehicle list and each vehicle's
// location once, for all requests of the group.
func (gs *groupScratch) resolveEmpty(ctx *matchContext, cell gridindex.CellID) {
	gs.ids = ctx.lists.AppendEmpty(cell, gs.ids[:0])
	gs.empty = gs.empty[:0]
	for _, id := range gs.ids {
		vp := vehProbe{id: id}
		if v, err := ctx.fleet.Vehicle(id); err == nil {
			vp.v = v
			vp.loc, vp.active = v.ActiveLoc()
		}
		gs.empty = append(gs.empty, vp)
	}
}

// resolveNonEmpty reads the cell's non-empty-vehicle list and each
// vehicle's probe state once, for all requests of the group.
func (gs *groupScratch) resolveNonEmpty(ctx *matchContext, cell gridindex.CellID) {
	gs.ids = ctx.lists.AppendNonEmpty(cell, gs.ids[:0])
	gs.nonEmpty = gs.nonEmpty[:0]
	for _, id := range gs.ids {
		vp := vehProbe{id: id}
		if v, err := ctx.fleet.Vehicle(id); err == nil {
			vp.v = v
			vp.loc, vp.maxLeg, vp.active = v.ProbeState()
		}
		gs.nonEmpty = append(gs.nonEmpty, vp)
	}
}

// fillRadiusSlack scales the farthest target's lower bound into the
// fill radius: sound lower bounds on metric graphs are tight enough
// that 1.5x headroom settles nearly every target the wave will ever
// ask about, while still truncating the search far below the graph
// diameter on continent-scale networks.
const fillRadiusSlack = 1.5

// fillRadius derives a fill's truncation radius from the targets it is
// about to answer: slack times the farthest target's lower bound (the
// wave's farthest schedule point, for a probe flush), floored at the
// request's pick-up cutoff so the fill also covers every later ring
// cell's empty scan. Targets a later, farther flush asks about beyond
// this radius fall back to per-pair searches (see DistBatchPrefilled)
// — rare by construction, pinned by the dist-calls regression tests.
func fillRadius(ctx *matchContext, from roadnet.VertexID, targets []roadnet.VertexID, floor float64) float64 {
	maxLB := floor
	for _, t := range targets {
		if lb := ctx.metric.LB(from, t) * fillRadiusSlack; lb > maxLB {
			maxLB = lb
		}
	}
	return maxLB
}

// ensureSFill lazily runs the request's s-side radius-bounded pass —
// one search that then answers every empty-scan and seed lookup of the
// request's entire frontier by array index. The values are identical
// to what per-cell and per-flush passes would compute (a settled
// Dijkstra distance does not depend on the target set), which is what
// keeps the coalesced option sets equal to per-request ones:
// structurally exact, with coordinates matching up to floating-point
// ulps on pairs that different flows legitimately resolve first (see
// the golden tests' coordEq). The radius derives from the triggering
// targets (see fillRadius); the stored bound routes later beyond-bound
// lookups to the per-pair fallback.
func (sc *matchScratch) ensureSFill(ctx *matchContext, spec *ReqSpec, targets []roadnet.VertexID) {
	if sc.sFillOK {
		return
	}
	n := ctx.sub.g.NumVertices()
	if cap(sc.sFill) < n {
		sc.sFill = make([]float64, n)
	}
	sc.sFill = sc.sFill[:n]
	sc.sFillBound = fillRadius(ctx, spec.Kin.S, targets, spec.MaxPickupDist)
	ctx.metric.FillDistsUncached(spec.Kin.S, sc.sFillBound, sc.sFill)
	sc.sFillOK = true
}

// ensureDFill is ensureSFill for the destination side.
func (sc *matchScratch) ensureDFill(ctx *matchContext, spec *ReqSpec, targets []roadnet.VertexID) {
	if sc.dFillOK {
		return
	}
	n := ctx.sub.g.NumVertices()
	if cap(sc.dFill) < n {
		sc.dFill = make([]float64, n)
	}
	sc.dFill = sc.dFill[:n]
	sc.dFillBound = fillRadius(ctx, spec.Kin.D, targets, spec.MaxPickupDist)
	ctx.metric.FillDistsUncached(spec.Kin.D, sc.dFillBound, sc.dFill)
	sc.dFillOK = true
}

// scanEmptyShared folds the resolved empty-vehicle list into one
// request's nearest-empty scan: the same lower-bound filter and batch
// fill as the per-request scanCell, with the shared probe states and
// the request's whole-graph fill answering the pass.
func (ctx *matchContext) scanEmptyShared(gs *groupScratch, r *reqRun) {
	es := &r.es
	spec := r.spec
	if spec.Kin.Riders > ctx.fleet.Capacity() {
		es.done = true
		return
	}
	sc := r.sc
	sc.emptyVehs = sc.emptyVehs[:0]
	sc.emptyLocs = sc.emptyLocs[:0]
	for pi := range gs.empty {
		vp := &gs.empty[pi]
		if vp.v == nil || !vp.active {
			continue
		}
		lb := ctx.metric.LB(vp.loc, spec.Kin.S)
		if lb >= es.bestDist || lb > spec.MaxPickupDist {
			r.stats.PrunedVehicles++
			continue
		}
		sc.emptyVehs = append(sc.emptyVehs, vp.v)
		sc.emptyLocs = append(sc.emptyLocs, vp.loc)
	}
	if len(sc.emptyLocs) == 0 {
		return
	}
	sc.ensureSFill(ctx, spec, sc.emptyLocs)
	es.foldPass(ctx, sc, spec, &sc.sky)
}

// scanNonEmptyShared evaluates the resolved non-empty list for one
// request: bound-based pruning, dual-side deferral, then the seeded
// probe flush reading the request's whole-graph fills.
func (ctx *matchContext) scanNonEmptyShared(gs *groupScratch, r *reqRun, dual bool) {
	spec := r.spec
	sc := r.sc
	sky := &sc.sky
	for pi := range gs.nonEmpty {
		vp := &gs.nonEmpty[pi]
		if !sc.visit.first(vp.id) {
			continue
		}
		if vp.v == nil || !vp.active {
			continue
		}
		pickupLB := ctx.metric.LB(vp.loc, spec.Kin.S)
		if pickupLB > spec.MaxPickupDist || sky.IsDominated(pickupLB, spec.MinPrice) {
			r.stats.PrunedVehicles++
			continue
		}
		if dual && !sc.dseen.seen(vp.id) {
			// Certifiably far from d at radius ld: price floor rises.
			dlb := detourLB(r.ld, vp.maxLeg)
			if sky.IsDominated(pickupLB, spec.Ratio*(spec.Kin.SD+dlb)) {
				r.stats.PrunedVehicles++
				continue
			}
			sc.pending = append(sc.pending, pendingVehicle{v: vp.v, pickupLB: pickupLB, maxLeg: vp.maxLeg})
			continue
		}
		sc.batch = append(sc.batch, vp.v)
	}
	ctx.flushBatch(sc, spec, sky, r.stats)
}

// matchGroup answers a group of requests sharing one origin grid cell
// with a single shared ring frontier. statsOut[i] receives request i's
// counters; the group's exact-search count is split evenly across the
// group (the passes are genuinely shared work). widthCap, when
// positive, caps the group's probe fan-out below the configured worker
// budget (groups running concurrently inside one wave split the budget
// between them). The returned option sets are identical to running the
// per-request matcher for each spec against the same world.
func (ctx *matchContext) matchGroup(specs []*ReqSpec, dual bool, statsOut []*MatchStats, widthCap int) [][]Option {
	k := len(specs)
	before := ctx.metric.DistCalls()
	gs := ctx.getGroupScratch()
	defer ctx.putGroupScratch(gs)

	grid := ctx.grid()
	n := ctx.fleet.NumVehicles()
	ring := grid.Cell(grid.CellOf(specs[0].Kin.S)).Ring

	if cap(gs.runs) < k {
		gs.runs = make([]reqRun, k)
	}
	runs := gs.runs[:k]
	for i := range runs {
		r := &runs[i]
		r.spec = specs[i]
		r.stats = statsOut[i]
		r.sc = ctx.getScratch()
		r.sc.widthCap = widthCap
		r.sc.groupFills = true
		r.sc.visit.begin(n)
		r.sc.sky.Reset()
		r.es = newEmptyScan()
		r.nonEmptyDone = false
		r.done = false
		if dual {
			r.sc.dseen.begin(n)
			r.dRing = grid.Cell(grid.CellOf(specs[i].Kin.D)).Ring
			r.di = 0
			r.ld = 0
		}
	}

	active := k
	for ei := range ring {
		if active == 0 {
			break
		}
		entry := &ring[ei]
		L := entry.LB

		// Phase 1 — per-request frontier bookkeeping: pick-up cutoff,
		// destination-ring lockstep advance, termination tests. Order
		// matches the per-request matchers exactly, so each request
		// freezes (done) with the same state it would have alone.
		needEmpty, needNonEmpty := false, false
		for i := range runs {
			r := &runs[i]
			if r.done {
				continue
			}
			if L > r.spec.MaxPickupDist {
				r.done = true
				active--
				continue
			}
			if dual {
				for r.di < len(r.dRing) && r.dRing[r.di].LB <= L {
					gs.ids = ctx.lists.AppendNonEmpty(r.dRing[r.di].Cell, gs.ids[:0])
					for _, id := range gs.ids {
						r.sc.dseen.mark(id)
					}
					r.stats.CellsScanned++
					r.di++
				}
				if r.di < len(r.dRing) {
					r.ld = r.dRing[r.di].LB
				} else {
					r.ld = math.Inf(1)
				}
			}
			emptyDone := r.es.terminateAt(L, r.spec, &r.sc.sky)
			if !r.nonEmptyDone && r.sc.sky.IsDominated(L, r.spec.MinPrice) {
				r.nonEmptyDone = true
			}
			if emptyDone && r.nonEmptyDone {
				r.done = true
				active--
				continue
			}
			r.stats.CellsScanned++
			if !emptyDone {
				needEmpty = true
			}
			if !r.nonEmptyDone {
				needNonEmpty = true
			}
		}
		if active == 0 {
			break
		}

		// Phase 2 — shared resolution: each needed vehicle list is
		// fetched and each vehicle's probe state read once per cell.
		if needEmpty {
			gs.resolveEmpty(ctx, entry.Cell)
		}
		if needNonEmpty {
			gs.resolveNonEmpty(ctx, entry.Cell)
		}

		// Phase 3 — per-request evaluation against the shared lists.
		for i := range runs {
			r := &runs[i]
			if r.done {
				continue
			}
			if !r.es.done {
				ctx.scanEmptyShared(gs, r)
			}
			if !r.nonEmptyDone {
				ctx.scanNonEmptyShared(gs, r, dual)
			}
		}
	}

	// Finish each request: flush dual-side deferrals against the final
	// skyline and frozen d-frontier, land the nearest empty vehicle,
	// extract the skyline.
	outs := make([][]Option, k)
	for i := range runs {
		r := &runs[i]
		sc := r.sc
		sky := &sc.sky
		if dual {
			for _, p := range sc.pending {
				if sky.IsDominated(p.pickupLB, r.spec.MinPrice) {
					r.stats.PrunedVehicles++
					continue
				}
				if !sc.dseen.seen(p.v.ID) {
					dlb := detourLB(r.ld, p.maxLeg)
					if sky.IsDominated(p.pickupLB, r.spec.Ratio*(r.spec.Kin.SD+dlb)) {
						r.stats.PrunedVehicles++
						continue
					}
				}
				sc.batch = append(sc.batch, p.v)
			}
			sc.pending = sc.pending[:0]
			ctx.flushBatch(sc, r.spec, sky, r.stats)
		}
		r.es.finish(r.spec, sky)
		outs[i] = skylineOptions(sky, r.stats)
	}

	// Attribute the group's exact-search count evenly: the multi-target
	// passes are shared work, and per-request interleaving makes finer
	// attribution meaningless (see MatchStats.DistCalls).
	delta := ctx.metric.DistCalls() - before
	share, rem := delta/int64(k), delta%int64(k)
	for i := range runs {
		runs[i].stats.DistCalls += share
		if int64(i) < rem {
			runs[i].stats.DistCalls++
		}
		ctx.putScratch(runs[i].sc)
		runs[i] = reqRun{}
	}
	return outs
}
