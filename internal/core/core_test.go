package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

func latticeEngine(t *testing.T, seed int64, w, h int, cfg core.Config) *core.Engine {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(seed)), w, h, 100)
	if cfg.GridCols == 0 {
		cfg.GridCols, cfg.GridRows = 4, 4
	}
	cfg.Seed = seed
	e, err := core.NewEngine(g, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

// TestPaperExampleEndToEnd reproduces §2.5's worked example through the
// whole stack: two vehicles c1 (serving R1 = ⟨v2,v16,2,5,0.2⟩ from v1)
// and c2 (empty at v13); request R2 = ⟨v12,v17,2,5,0.2⟩ must receive
// exactly the results ⟨c1, 14, 4⟩ and ⟨c2, 8, 8.8⟩, under all three
// matching algorithms.
func TestPaperExampleEndToEnd(t *testing.T) {
	for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
		t.Run(algo.String(), func(t *testing.T) {
			g := testnet.PaperNetwork()
			// Weights in the figure are abstract units; speed 3.6 km/h
			// = 1 unit/s makes time equal distance, and the global wait
			// w = 5 units and σ = 0.2 match the example.
			e, err := core.NewEngine(g, core.Config{
				GridCols: 1, GridRows: 1, // plain grid: exercises fallback bounds
				Capacity: 4, SpeedKmh: 3.6,
				MaxWaitSeconds: 5, Sigma: 0.2,
				MaxPickupSeconds: 1e6,
				Algorithm:        algo,
			})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			v := func(k int) roadnet.VertexID { return roadnet.VertexID(k - 1) }

			c1 := e.AddVehicleAt(v(1))
			c2 := e.AddVehicleAt(v(13))

			// Assign R1 to c1 (its quoted plan is ⟨v2, v16⟩).
			r1, err := e.Submit(v(2), v(16), 2)
			if err != nil {
				t.Fatalf("submit R1: %v", err)
			}
			idx := -1
			for i, o := range r1.Options {
				if o.Vehicle == c1 {
					idx = i
				}
			}
			if idx < 0 {
				t.Fatalf("R1 options %+v do not include c1", r1.Options)
			}
			if err := e.Choose(r1.ID, idx); err != nil {
				t.Fatalf("choose R1: %v", err)
			}

			// R2 must see exactly ⟨c1,14,4⟩ and ⟨c2,8,8.8⟩.
			r2, err := e.Submit(v(12), v(17), 2)
			if err != nil {
				t.Fatalf("submit R2: %v", err)
			}
			if len(r2.Options) != 2 {
				t.Fatalf("R2 options = %+v, want 2", r2.Options)
			}
			byVehicle := map[fleet.VehicleID]core.Option{}
			for _, o := range r2.Options {
				byVehicle[o.Vehicle] = o
			}
			o1, ok1 := byVehicle[c1]
			o2, ok2 := byVehicle[c2]
			if !ok1 || !ok2 {
				t.Fatalf("R2 options missing a vehicle: %+v", r2.Options)
			}
			if o1.PickupDist != 14 || math.Abs(o1.Price-4) > 1e-9 {
				t.Errorf("c1 option = (%v, %v), want (14, 4)", o1.PickupDist, o1.Price)
			}
			if o2.PickupDist != 8 || math.Abs(o2.Price-8.8) > 1e-9 {
				t.Errorf("c2 option = (%v, %v), want (8, 8.8)", o2.PickupDist, o2.Price)
			}
		})
	}
}

// optionCoords canonicalises an option list for cross-matcher
// comparison: the exact (pickup distance, price) multiset. Bit-exact
// comparison is intentional — the matchers are required to compute
// identical floats (see emptyVehicleOption), because any drift can flip
// dominance at ties.
func optionCoords(opts []core.Option) []string {
	out := make([]string, len(opts))
	for i, o := range opts {
		out[i] = fmt.Sprintf("%x/%x", o.PickupDist, o.Price)
	}
	sort.Strings(out)
	return out
}

// TestMatcherEquivalence is the central correctness property of the
// reproduction: on randomised fleets, requests and schedules, all three
// matching algorithms return identical option skylines.
func TestMatcherEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := latticeEngine(t, seed, 10, 10, core.Config{
				Capacity: 3, MaxWaitSeconds: 400, Sigma: 0.6,
				MaxPickupSeconds: 250, // cutoff active: part of the contract
				GridCols:         5, GridRows: 5,
			})
			rng := rand.New(rand.NewSource(seed + 1000))
			n := e.Graph().NumVertices()
			e.AddVehiclesUniform(30)

			// Load the fleet with random accepted requests and motion.
			for i := 0; i < 25; i++ {
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				if s == d {
					continue
				}
				rec, err := e.Submit(s, d, 1+rng.Intn(2))
				if err != nil {
					t.Fatalf("submit: %v", err)
				}
				if len(rec.Options) > 0 && rng.Intn(3) > 0 {
					if err := e.Choose(rec.ID, rng.Intn(len(rec.Options))); err != nil {
						t.Fatalf("choose: %v", err)
					}
				} else if len(rec.Options) > 0 {
					e.Decline(rec.ID)
				}
				if _, err := e.Tick(5 + rng.Float64()*20); err != nil {
					t.Fatalf("tick: %v", err)
				}
			}

			// Now compare the three algorithms on fresh probes. Rider
			// counts deliberately exceed the capacity (3) sometimes:
			// oversized groups must get an empty skyline from every
			// matcher.
			for probe := 0; probe < 30; probe++ {
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				if s == d {
					continue
				}
				riders := 1 + rng.Intn(4)
				naive, nStats, err := e.MatchOnce(core.AlgoNaive, s, d, riders)
				if err != nil {
					t.Fatalf("naive: %v", err)
				}
				single, sStats, err := e.MatchOnce(core.AlgoSingleSide, s, d, riders)
				if err != nil {
					t.Fatalf("single: %v", err)
				}
				dual, dStats, err := e.MatchOnce(core.AlgoDualSide, s, d, riders)
				if err != nil {
					t.Fatalf("dual: %v", err)
				}
				nc, sc, dc := optionCoords(naive), optionCoords(single), optionCoords(dual)
				if !equalStrings(nc, sc) {
					t.Fatalf("probe %d (%d→%d): naive %v != single %v", probe, s, d, nc, sc)
				}
				if !equalStrings(nc, dc) {
					t.Fatalf("probe %d (%d→%d): naive %v != dual %v", probe, s, d, nc, dc)
				}
				if sStats.Verified > nStats.Verified {
					t.Errorf("probe %d: single verified %d > naive %d", probe, sStats.Verified, nStats.Verified)
				}
				if dStats.Verified > nStats.Verified {
					t.Errorf("probe %d: dual verified %d > naive %d", probe, dStats.Verified, nStats.Verified)
				}
			}
		})
	}
}

// TestMatcherEquivalenceUnderAblation re-checks equivalence with each
// optimisation disabled (they must change cost, never results).
func TestMatcherEquivalenceUnderAblation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*core.Config)
	}{
		{"no-lb", func(c *core.Config) { c.DisableLB = true }},
		{"no-empty-lemma", func(c *core.Config) { c.DisableEmptyLemma = true }},
		{"landmarks", func(c *core.Config) { c.NumLandmarks = 6 }},
		{"truncated-bounds", func(c *core.Config) { c.MaxBoundRadius = 300 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.Config{
				Capacity: 3, MaxWaitSeconds: 400, Sigma: 0.6,
				MaxPickupSeconds: 250, GridCols: 5, GridRows: 5,
			}
			tc.mut(&cfg)
			e := latticeEngine(t, 3, 10, 10, cfg)
			rng := rand.New(rand.NewSource(42))
			n := e.Graph().NumVertices()
			e.AddVehiclesUniform(25)
			for i := 0; i < 15; i++ {
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				if s == d {
					continue
				}
				rec, _ := e.Submit(s, d, 1)
				if rec != nil && len(rec.Options) > 0 {
					e.Choose(rec.ID, 0)
				}
				e.Tick(10)
			}
			for probe := 0; probe < 20; probe++ {
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				if s == d {
					continue
				}
				naive, _, _ := e.MatchOnce(core.AlgoNaive, s, d, 1)
				single, _, _ := e.MatchOnce(core.AlgoSingleSide, s, d, 1)
				dual, _, _ := e.MatchOnce(core.AlgoDualSide, s, d, 1)
				if !equalStrings(optionCoords(naive), optionCoords(single)) ||
					!equalStrings(optionCoords(naive), optionCoords(dual)) {
					t.Fatalf("probe %d: ablation %s broke equivalence", probe, tc.name)
				}
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSubmitValidation(t *testing.T) {
	e := latticeEngine(t, 1, 5, 5, core.Config{Capacity: 2})
	e.AddVehiclesUniform(3)
	if _, err := e.Submit(0, 0, 1); err == nil {
		t.Error("s == d accepted")
	}
	if _, err := e.Submit(-1, 3, 1); err == nil {
		t.Error("out-of-range start accepted")
	}
	if _, err := e.Submit(0, 3, 0); err == nil {
		t.Error("0 riders accepted")
	}
	// Above-capacity groups are valid requests with an empty skyline.
	rec, err := e.Submit(0, 3, 5)
	if err != nil {
		t.Fatalf("above-capacity group rejected as invalid: %v", err)
	}
	if len(rec.Options) != 0 {
		t.Errorf("above-capacity group got options: %+v", rec.Options)
	}
}

func TestChooseLifecycle(t *testing.T) {
	e := latticeEngine(t, 2, 8, 8, core.Config{Capacity: 4})
	e.AddVehiclesUniform(5)
	rec, err := e.Submit(3, 40, 2)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(rec.Options) == 0 {
		t.Fatal("no options with idle vehicles nearby")
	}
	if rec.Status != core.StatusQuoted {
		t.Fatalf("status = %v", rec.Status)
	}
	if err := e.Choose(rec.ID, len(rec.Options)); err == nil {
		t.Error("out-of-range option index accepted")
	}
	if err := e.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	if err := e.Choose(rec.ID, 0); err == nil {
		t.Error("double choose accepted")
	}
	if err := e.Decline(rec.ID); err == nil {
		t.Error("decline after choose accepted")
	}

	// Run the day: the request must complete with constraints honoured.
	var completed bool
	for i := 0; i < 2000 && !completed; i++ {
		if _, err := e.Tick(1); err != nil {
			t.Fatalf("tick: %v", err)
		}
		r, _ := e.Request(rec.ID)
		completed = r.Status == core.StatusCompleted
	}
	if !completed {
		t.Fatal("request never completed")
	}
	r, _ := e.Request(rec.ID)
	if r.DropoffOdo <= r.PickupOdo {
		t.Fatal("dropoff odometer not after pickup")
	}
	inVehicle := r.DropoffOdo - r.PickupOdo
	if inVehicle > (1+e.Config().Sigma)*r.SD+1e-6 {
		t.Fatalf("service constraint violated: %v > %v", inVehicle, (1+e.Config().Sigma)*r.SD)
	}
	st := e.Stats()
	if st.Completed != 1 || st.Assigned != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOptionsAreNonDominatedAndSorted(t *testing.T) {
	e := latticeEngine(t, 4, 10, 10, core.Config{Capacity: 3, MaxPickupSeconds: 1e5})
	e.AddVehiclesUniform(40)
	rng := rand.New(rand.NewSource(5))
	// Occupy some vehicles to diversify prices.
	for i := 0; i < 10; i++ {
		s := roadnet.VertexID(rng.Intn(100))
		d := roadnet.VertexID(rng.Intn(100))
		if s == d {
			continue
		}
		if rec, err := e.Submit(s, d, 1); err == nil && len(rec.Options) > 0 {
			e.Choose(rec.ID, 0)
		}
	}
	rec, err := e.Submit(11, 88, 1)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	opts := rec.Options
	for i := 1; i < len(opts); i++ {
		if opts[i].PickupDist < opts[i-1].PickupDist {
			t.Fatal("options not sorted by pickup distance")
		}
	}
	for i := range opts {
		for j := range opts {
			if i == j {
				continue
			}
			di := opts[i]
			dj := opts[j]
			if (di.PickupDist <= dj.PickupDist && di.Price < dj.Price) ||
				(di.PickupDist < dj.PickupDist && di.Price <= dj.Price) {
				t.Fatalf("option %d dominates option %d: %+v vs %+v", i, j, di, dj)
			}
		}
	}
}

func TestMaxPickupCutoff(t *testing.T) {
	// A tight cutoff must bound every returned option's pickup time.
	e := latticeEngine(t, 6, 10, 10, core.Config{Capacity: 2, MaxPickupSeconds: 20, SpeedKmh: 48})
	e.AddVehiclesUniform(20)
	cut := 20 * e.Speed()
	for probe := 0; probe < 20; probe++ {
		s := e.RandomVertex()
		d := e.RandomVertex()
		if s == d {
			continue
		}
		rec, err := e.Submit(s, d, 1)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		for _, o := range rec.Options {
			if o.PickupDist > cut+1e-9 {
				t.Fatalf("option pickup %v exceeds cutoff %v", o.PickupDist, cut)
			}
		}
	}
}

func TestSharingRateStatistics(t *testing.T) {
	e := latticeEngine(t, 7, 8, 8, core.Config{Capacity: 4, Sigma: 1.0, MaxWaitSeconds: 2000})
	// One vehicle, two overlapping requests along the same corridor.
	e.AddVehicleAt(0)
	r1, err := e.Submit(9, 54, 1)
	if err != nil || len(r1.Options) == 0 {
		t.Fatalf("r1: %v, %d options", err, len(r1.Options))
	}
	if err := e.Choose(r1.ID, 0); err != nil {
		t.Fatalf("choose r1: %v", err)
	}
	r2, err := e.Submit(18, 63, 1)
	if err != nil {
		t.Fatalf("r2: %v", err)
	}
	if len(r2.Options) == 0 {
		t.Skip("no shared option on this seed")
	}
	if err := e.Choose(r2.ID, 0); err != nil {
		t.Fatalf("choose r2: %v", err)
	}
	for i := 0; i < 3000; i++ {
		if _, err := e.Tick(1); err != nil {
			t.Fatalf("tick: %v", err)
		}
		if e.Stats().Completed == 2 {
			break
		}
	}
	st := e.Stats()
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
	a, _ := e.Request(r1.ID)
	b, _ := e.Request(r2.ID)
	if a.Shared != b.Shared {
		t.Fatalf("sharing must be mutual: %v vs %v", a.Shared, b.Shared)
	}
	if a.Shared && st.SharingRate != 1 {
		t.Fatalf("sharing rate = %v, want 1", st.SharingRate)
	}
}

func TestVehicleFailureInjection(t *testing.T) {
	e := latticeEngine(t, 8, 8, 8, core.Config{Capacity: 4})
	ids := e.AddVehiclesUniform(2)
	rec, err := e.Submit(3, 50, 1)
	if err != nil || len(rec.Options) == 0 {
		t.Fatalf("submit: %v", err)
	}
	if err := e.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	victim := rec.Options[0].Vehicle
	orphans, err := e.RemoveVehicle(victim)
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	if len(orphans) != 1 || orphans[0] != rec.ID {
		t.Fatalf("orphans = %v", orphans)
	}
	r, _ := e.Request(rec.ID)
	if r.Status != core.StatusDeclined {
		t.Fatalf("orphaned request status = %v", r.Status)
	}
	// The other vehicle keeps working.
	other := ids[0]
	if other == victim {
		other = ids[1]
	}
	if _, err := e.Tick(10); err != nil {
		t.Fatalf("tick after failure: %v", err)
	}
	if _, _, err := e.VehicleSchedules(other); err != nil {
		t.Fatalf("surviving vehicle: %v", err)
	}
}

func TestSetAlgorithm(t *testing.T) {
	e := latticeEngine(t, 9, 5, 5, core.Config{Capacity: 2})
	if e.Algorithm() != core.AlgoNaive {
		t.Fatalf("default algorithm = %v", e.Algorithm())
	}
	if err := e.SetAlgorithm(core.AlgoDualSide); err != nil {
		t.Fatalf("set: %v", err)
	}
	if e.Algorithm() != core.AlgoDualSide {
		t.Fatal("algorithm did not switch")
	}
	if _, err := core.ParseAlgorithm("dual"); err != nil {
		t.Error("ParseAlgorithm(dual) failed")
	}
	if _, err := core.ParseAlgorithm("bogus"); err == nil {
		t.Error("ParseAlgorithm accepted bogus input")
	}
}

// TestNoVehiclesReturnsEmptyOptions: a request with no fleet gets an
// empty (but valid) skyline.
func TestNoVehiclesReturnsEmptyOptions(t *testing.T) {
	e := latticeEngine(t, 10, 5, 5, core.Config{Capacity: 2})
	rec, err := e.Submit(0, 7, 1)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(rec.Options) != 0 {
		t.Fatalf("options = %+v, want none", rec.Options)
	}
}

// TestKineticRequestConsistency guards the invariant that Choose
// rebuilds the same kinetic request Submit used for quoting.
func TestKineticRequestConsistency(t *testing.T) {
	e := latticeEngine(t, 11, 6, 6, core.Config{Capacity: 4, Sigma: 0.3, MaxWaitSeconds: 120})
	e.AddVehicleAt(0)
	rec, err := e.Submit(7, 28, 2)
	if err != nil || len(rec.Options) == 0 {
		t.Fatalf("submit: %v (%d options)", err, len(rec.Options))
	}
	if err := e.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose must succeed against an unmoved vehicle: %v", err)
	}
	_, branches, err := e.VehicleSchedules(rec.Options[0].Vehicle)
	if err != nil || len(branches) == 0 {
		t.Fatalf("vehicle has no schedule after choose: %v", err)
	}
	found := false
	for _, b := range branches {
		for _, p := range b {
			if p.Req == rec.ID && p.Kind == kinetic.Pickup {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("vehicle schedules do not contain the committed pickup")
	}
}
