// service.go defines the Service interface — the one engine contract
// every transport (the public ptrider package, the HTTP server, the
// workload simulator) programs against. Two backends implement it:
//
//   - *Engine: a single city (itself a degenerate "default" city).
//   - *multicity.Router: N cities behind coordinate routing, optionally
//     with cross-city relay scheduling.
//
// The interface is deliberately expressed in core types only, so the
// transports need no knowledge of which backend serves them: requests
// are addressed either by city + city-local vertices or by planar
// coordinates (SubmitSpec), answers come back as ServiceRecords (the
// single-city record plus the owning city and, for cross-city trips,
// the two-leg relay itinerary), and the statistics panel always carries
// the per-city dimension (a single engine reports one city).
//
// Errors crossing the Service boundary are typed for transport-level
// classification: ErrInvalidArgument (caller input), ErrNotFound
// (unknown request/vehicle/trip), ErrUnknownCity, ErrNoCity (coordinate
// outside every service region), ErrCrossCity (cross-city trip with no
// relay; carries the city pair via *CrossCityError), and
// ErrAlreadyChosen (double-commit of a request). HTTP maps these to
// 400/404/404/422/422/409 respectively; see internal/server.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ptrider/internal/fleet"
	"ptrider/internal/geo"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/telemetry"
)

// Typed service errors, matchable with errors.Is across every backend.
var (
	// ErrNotFound marks lookups of requests, vehicles or relay trips
	// that do not exist.
	ErrNotFound = errors.New("not found")
	// ErrAlreadyChosen marks a Choose of a request that is already
	// committed (assigned, onboard or completed) — the double-submit a
	// client retry produces. HTTP answers 409.
	ErrAlreadyChosen = errors.New("already chosen")
	// ErrCrossCity matches the rejection of a trip whose origin and
	// destination fall in different cities (relay disabled).
	ErrCrossCity = errors.New("cross-city trip not supported")
	// ErrNoCity matches the rejection of a coordinate outside every
	// city's service region.
	ErrNoCity = errors.New("no city serves this location")
	// ErrUnknownCity matches lookups of a city name the backend does
	// not own.
	ErrUnknownCity = errors.New("unknown city")
	// ErrUnavailable marks a backend (a remote city shard, typically)
	// that could not be reached or did not answer in time. The request
	// may or may not have taken effect — callers that mutated state
	// must reconcile by re-reading it once the backend returns. HTTP
	// answers 503.
	ErrUnavailable = errors.New("backend unavailable")
)

// CrossCityError reports a rejected cross-city trip with the two cities
// involved. errors.Is(err, ErrCrossCity) matches it.
type CrossCityError struct {
	Origin, Dest string
}

func (e *CrossCityError) Error() string {
	return fmt.Sprintf("cross-city trip %s → %s not supported", e.Origin, e.Dest)
}

// Is makes errors.Is(err, ErrCrossCity) match.
func (e *CrossCityError) Is(target error) bool { return target == ErrCrossCity }

// DefaultCityName is the city name a bare *Engine serves under: a
// single-city backend is a one-city Service, so every city-scoped view
// still has a name to hang off. An empty city argument always means
// "the backend's only city" and is rejected by multi-city backends.
const DefaultCityName = "default"

// SubmitSpec is the unified request addressing of the Service
// interface: either city + city-local vertex ids, or planar coordinates
// that the backend assigns to a city (or, with relay, to two) and snaps
// to the road network.
type SubmitSpec struct {
	// City names the serving city for vertex addressing. "" means the
	// backend's only city; multi-city backends require it when ByCoords
	// is false.
	City string
	// S and D are city-local vertex ids (used when ByCoords is false).
	S, D roadnet.VertexID
	// Origin and Dest are planar coordinates (used when ByCoords).
	Origin, Dest geo.Point
	// ByCoords selects coordinate addressing.
	ByCoords bool
	// Riders is the group size.
	Riders int
	// Constraints carries the per-request overrides.
	Constraints Constraints
	// Choose, when non-nil, picks an option index from the quoted
	// skyline (or -1 to decline) right at submission — honoured by
	// SubmitRequestBatch (workload drivers); SubmitRequest ignores it.
	Choose func(options []Option) int
	// IdemKey, when non-empty, makes the submission idempotent: a
	// retry carrying the same key returns the original submission's
	// record instead of quoting anew. Honoured by single-request
	// submission (SubmitRequest); batch and relay submissions ignore
	// it.
	IdemKey string
	// Span, when non-nil, receives the submit pipeline's per-stage
	// timings (quote/register/wal_wait) for request correlation — the
	// HTTP middleware opens one per request and logs its breakdown when
	// the request is slow. Honoured by single-request submission; batch
	// and relay submissions ignore it.
	Span *telemetry.Span
}

// ServiceRecord is the Service-level view of a request: the engine
// record with the id lifted into the backend's global namespace, the
// owning city, the quoting city's speed (to render pick-up distances as
// seconds), and — for a cross-city trip served by relay — the two-leg
// itinerary.
type ServiceRecord struct {
	RequestRecord
	// City is the owning city (a relay trip's origin city).
	City string
	// Speed is the quoting city's speed in metres per second.
	Speed float64
	// Relay is the two-leg itinerary when this record is a cross-city
	// relay trip; nil for ordinary requests.
	Relay *RelayView
}

// PickupSecondsOf renders an option's pick-up distance as seconds at
// the record's quoting speed. For a relay record the synthesised
// options carry the composed door-to-destination ETA, so this returns
// that ETA.
func (r *ServiceRecord) PickupSecondsOf(o Option) float64 {
	if r.Speed <= 0 {
		return 0
	}
	return o.PickupDist / r.Speed
}

// RelayGatewayView is one hand-off vertex pair of a relay itinerary.
type RelayGatewayView struct {
	From, To  roadnet.VertexID
	GapMeters float64
}

// RelayOptionView is one row of a relay trip's joint skyline with its
// per-leg breakdown.
type RelayOptionView struct {
	// Gateway indexes RelayView.Gateways.
	Gateway int
	// Leg1 and Leg2 are the per-leg option snapshots.
	Leg1, Leg2 Option
	// Fare is the composed price (leg fares sum).
	Fare float64
	// PickupSeconds is leg 1's planned door pick-up ETA.
	PickupSeconds float64
	// ETASeconds is the composed door-to-destination worst-case ETA.
	ETASeconds float64
}

// RelayView is the Service-level snapshot of a cross-city relay trip:
// lifecycle state, hand-off gateways, the joint skyline and — once
// committed — the two leg record ids.
type RelayView struct {
	// RequestID is the trip's global request id (negative on the
	// multi-city router).
	RequestID RequestID
	// Origin and Dest are the two city names.
	Origin, Dest string
	// State is the trip lifecycle stage ("quoted", "leg1-committed",
	// "in-transfer", "leg2-active", "completed", "declined", "aborted",
	// "failed").
	State string
	// TransferBufferSeconds is the scheduler's hand-off margin.
	TransferBufferSeconds float64
	Gateways              []RelayGatewayView
	Options               []RelayOptionView
	// Chosen is the committed option index (-1 while quoted/declined).
	Chosen int
	// Leg1 and Leg2 are the committed legs' request ids, city-local to
	// the origin and destination engines (zero before commit).
	Leg1, Leg2 RequestID
}

// RelayStats is the relay scheduler's counter panel (zero unless the
// backend enables relay scheduling).
type RelayStats struct {
	// Quoted counts relay trips quoted; LegQuotes the per-city leg
	// quotes issued on their behalf.
	Quoted    int64
	LegQuotes int64
	// Committed counts two-phase commits that booked both legs;
	// Aborted those that released a half-booked trip; Declined rider
	// declines; Completed trips whose leg 2 dropped the rider off;
	// Failed trips a vehicle failure orphaned after commit.
	Committed int64
	Aborted   int64
	Declined  int64
	Completed int64
	Failed    int64
	// Active is the committed trips still moving.
	Active int64
}

// ServiceStats is the backend-agnostic statistics panel: per-city
// engine snapshots plus the cross-city total (for a single engine the
// total and the one city coincide), and the relay panel when enabled.
type ServiceStats struct {
	Total  EngineStats
	Cities map[string]EngineStats
	// Multi reports whether the backend routes more than one city's
	// namespace (legacy transports use it to keep the flat single-city
	// stats shape).
	Multi        bool
	RelayEnabled bool
	Relay        RelayStats
}

// RequestFilter narrows a Requests listing. The zero value matches
// every request.
type RequestFilter struct {
	// Status filters to one lifecycle state when HasStatus is set
	// (StatusQuoted is a valid filter, so presence needs its own bit).
	Status    RequestStatus
	HasStatus bool
}

// ParseRequestStatus parses the lowercase lifecycle names the API uses
// ("quoted", "assigned", "onboard", "completed", "declined").
// Unknown names fail with ErrInvalidArgument.
func ParseRequestStatus(s string) (RequestStatus, error) {
	for st := StatusQuoted; st <= StatusDeclined; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("core: unknown request status %q: %w", s, ErrInvalidArgument)
}

// ServiceEvent is one tick movement event tagged with its city.
type ServiceEvent struct {
	City string
	fleet.Event
}

// CityInfo describes one city of a backend.
type CityInfo struct {
	Name     string
	Vertices int
	Vehicles int
	Region   geo.Rect
}

// CityReadiness is one city's readiness probe result — the per-city
// row of the /v1/readyz detail body. For remote backends Err carries
// the transport failure ("dial tcp ...") of an unreachable shard.
type CityReadiness struct {
	City  string `json:"city"`
	Ready bool   `json:"ready"`
	Err   string `json:"error,omitempty"`
}

// ServiceParams is one city's live settings panel.
type ServiceParams struct {
	City           string
	Algorithm      Algorithm
	Capacity       int
	NumTaxis       int
	MaxWaitSeconds float64
	Sigma          float64
	SpeedKmh       float64
	MatchWorkers   int
	TickWorkers    int

	// Surge pricing state: whether the stage is in the pipeline, the
	// epoch cadence, and the tracker's live epoch/multiplier summary.
	SurgeEnabled       bool
	SurgeEpochSeconds  float64
	SurgeEpoch         uint64
	SurgeActiveCells   int
	SurgeMaxMultiplier float64
}

// SurgeCellView is one surged grid cell of a city's tracker.
type SurgeCellView struct {
	// Cell is the grid cell id (row-major over Cols×Rows).
	Cell int
	// Multiplier is the cell's current fare multiplier.
	Multiplier float64
	// Ratio is the EMA-smoothed demand/supply ratio behind it.
	Ratio float64
}

// SurgeView is one city's per-cell surge state — the payload of the
// /v1/surge endpoint. Only surged cells (multiplier > 1) are listed.
type SurgeView struct {
	City         string
	Enabled      bool
	Epoch        uint64
	EpochSeconds float64
	Cols, Rows   int
	Cells        []SurgeCellView
}

// VehicleItinerary is one vehicle's location and kinetic-tree schedule
// branches.
type VehicleItinerary struct {
	City     string
	Vehicle  fleet.VehicleID
	Location roadnet.VertexID
	Branches [][]kinetic.Point
}

// Service is the shared engine contract: everything a transport needs
// to submit, commit, observe and advance ridesharing requests, over one
// city or many. *Engine and *multicity.Router implement it; all methods
// are safe for concurrent use.
type Service interface {
	// SubmitRequest answers one ridesharing request with its skyline of
	// options (spec.Choose is ignored).
	SubmitRequest(spec SubmitSpec) (*ServiceRecord, error)
	// SubmitRequestBatch answers simultaneously issued requests with
	// the greedy batch semantics of the backend; one record per spec,
	// in order, nil entries for failed items with the first error
	// returned. Spec.Choose callbacks commit or decline in-line.
	SubmitRequestBatch(specs []SubmitSpec) ([]*ServiceRecord, error)
	// Choose commits the rider's selected option. Choosing an
	// already-committed request fails with ErrAlreadyChosen.
	Choose(id RequestID, optionIndex int) error
	// Decline records that the rider took none of the options.
	Decline(id RequestID) error
	// GetRequest returns a snapshot of a request record; unknown ids
	// fail with ErrNotFound.
	GetRequest(id RequestID) (*ServiceRecord, error)
	// Requests lists request records, id ascending, optionally scoped
	// to one city and filtered by lifecycle state; up to limit records
	// (limit ≤ 0 means all). Relay trips are not listed — they live in
	// the scheduler's trip ledger, not a city's request ledger; use
	// RelayItinerary.
	Requests(city string, filter RequestFilter, limit int) ([]*ServiceRecord, error)
	// RelayItinerary returns the two-leg view of a relay trip; ids that
	// are not relay trips (or backends without relay) fail with
	// ErrNotFound.
	RelayItinerary(id RequestID) (*RelayView, error)
	// Advance moves simulated time forward by dt seconds in every city
	// and returns the movement events, city-tagged, with request ids in
	// the backend's global namespace.
	Advance(dt float64) ([]ServiceEvent, error)
	// Clock returns the simulated time in seconds (the maximum across
	// cities) without aggregating the full statistics panel.
	Clock() float64
	// ServiceStats snapshots the statistics panel.
	ServiceStats() ServiceStats
	// Cities lists the backend's cities in registration order.
	Cities() []CityInfo
	// Vehicles returns up to limit vehicle summaries of one city
	// (limit ≤ 0 means all; city "" means the only city).
	Vehicles(city string, limit int) ([]VehicleView, error)
	// VehicleItinerary returns one vehicle's schedules.
	VehicleItinerary(city string, id fleet.VehicleID) (*VehicleItinerary, error)
	// Params returns one city's live settings.
	Params(city string) (ServiceParams, error)
	// Surge returns one city's per-cell surge state (Enabled false,
	// empty cell list when the surge stage is off).
	Surge(city string) (*SurgeView, error)
	// SetCityAlgorithm switches one city's matching algorithm.
	SetCityAlgorithm(city string, algo Algorithm) error
	// CityGraph exposes one city's road network (map rendering).
	CityGraph(city string) (*roadnet.Graph, error)
}

// Engine implements Service as a one-city backend.
var _ Service = (*Engine)(nil)

// checkCity validates a city argument against the engine's single
// implicit city ("" and DefaultCityName both address it).
func (e *Engine) checkCity(city string) error {
	if city == "" || city == DefaultCityName {
		return nil
	}
	return fmt.Errorf("core: %w: %q", ErrUnknownCity, city)
}

// NearestVertex snaps a planar coordinate to a road-network vertex: the
// closest vertex of the grid cell containing p, falling back to a
// whole-graph scan when that cell holds no vertex.
func (e *Engine) NearestVertex(p geo.Point) roadnet.VertexID {
	grid, g := e.sub.grid, e.sub.g
	verts := grid.Cell(grid.CellAt(p)).Vertices
	best, bestD := roadnet.VertexID(0), math.Inf(1)
	for _, v := range verts {
		if d := g.Point(v).DistSq(p); d < bestD {
			best, bestD = v, d
		}
	}
	if len(verts) > 0 {
		return best
	}
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Point(roadnet.VertexID(v)).DistSq(p); d < bestD {
			best, bestD = roadnet.VertexID(v), d
		}
	}
	return best
}

// resolveSpec maps a SubmitSpec onto the engine's vertex space.
func (e *Engine) resolveSpec(spec *SubmitSpec) (s, d roadnet.VertexID, err error) {
	if err := e.checkCity(spec.City); err != nil {
		return 0, 0, err
	}
	if spec.ByCoords {
		return e.NearestVertex(spec.Origin), e.NearestVertex(spec.Dest), nil
	}
	return spec.S, spec.D, nil
}

// serviceRecord lifts an engine record into the Service view.
func (e *Engine) serviceRecord(rec *RequestRecord) *ServiceRecord {
	return &ServiceRecord{RequestRecord: *rec, City: DefaultCityName, Speed: e.sub.speed}
}

// SubmitRequest implements Service.
func (e *Engine) SubmitRequest(spec SubmitSpec) (*ServiceRecord, error) {
	s, d, err := e.resolveSpec(&spec)
	if err != nil {
		return nil, err
	}
	rec, err := e.submitIdemSpan(s, d, spec.Riders, spec.Constraints, spec.IdemKey, spec.Span)
	if err != nil {
		return nil, err
	}
	return e.serviceRecord(rec), nil
}

// SubmitRequestBatch implements Service over the engine's coalesced
// SubmitBatch pipeline.
func (e *Engine) SubmitRequestBatch(specs []SubmitSpec) ([]*ServiceRecord, error) {
	out := make([]*ServiceRecord, len(specs))
	var firstErr error
	items := make([]BatchItem, 0, len(specs))
	idxs := make([]int, 0, len(specs))
	for i := range specs {
		s, d, err := e.resolveSpec(&specs[i])
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: batch item %d: %w", i, err)
			}
			continue
		}
		items = append(items, BatchItem{
			S: s, D: d, Riders: specs[i].Riders,
			Constraints: specs[i].Constraints, Choose: specs[i].Choose,
		})
		idxs = append(idxs, i)
	}
	recs, err := e.SubmitBatch(items)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	for k, rec := range recs {
		if rec != nil {
			out[idxs[k]] = e.serviceRecord(rec)
		}
	}
	return out, firstErr
}

// GetRequest implements Service.
func (e *Engine) GetRequest(id RequestID) (*ServiceRecord, error) {
	rec, err := e.Request(id)
	if err != nil {
		return nil, err
	}
	return e.serviceRecord(rec), nil
}

// Requests implements Service: a snapshot listing of the single city's
// ledger, id ascending.
func (e *Engine) Requests(city string, filter RequestFilter, limit int) ([]*ServiceRecord, error) {
	if err := e.checkCity(city); err != nil {
		return nil, err
	}
	e.ledgerMu.Lock()
	recs := make([]*RequestRecord, 0, len(e.reqs))
	for _, rec := range e.reqs {
		if filter.HasStatus && rec.Status != filter.Status {
			continue
		}
		cp := *rec
		recs = append(recs, &cp)
	}
	e.ledgerMu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	out := make([]*ServiceRecord, len(recs))
	for i, rec := range recs {
		out[i] = e.serviceRecord(rec)
	}
	return out, nil
}

// RelayItinerary implements Service: a single-city backend has no relay
// trips.
func (e *Engine) RelayItinerary(id RequestID) (*RelayView, error) {
	return nil, fmt.Errorf("core: request %d is not a relay trip: %w", id, ErrNotFound)
}

// Advance implements Service: one tick of the single city.
func (e *Engine) Advance(dt float64) ([]ServiceEvent, error) {
	events, err := e.Tick(dt)
	out := make([]ServiceEvent, len(events))
	for i, ev := range events {
		out[i] = ServiceEvent{City: DefaultCityName, Event: ev}
	}
	return out, err
}

// ServiceStats implements Service: the engine's panel doubles as the
// total and its one city.
func (e *Engine) ServiceStats() ServiceStats {
	st := e.Stats()
	return ServiceStats{
		Total:  st,
		Cities: map[string]EngineStats{DefaultCityName: st},
	}
}

// Cities implements Service.
func (e *Engine) Cities() []CityInfo {
	return []CityInfo{{
		Name:     DefaultCityName,
		Vertices: e.sub.g.NumVertices(),
		Vehicles: e.NumVehicles(),
		Region:   e.sub.g.Bounds(),
	}}
}

// Vehicles implements Service.
func (e *Engine) Vehicles(city string, limit int) ([]VehicleView, error) {
	if err := e.checkCity(city); err != nil {
		return nil, err
	}
	return e.VehicleViews(limit), nil
}

// VehicleItinerary implements Service.
func (e *Engine) VehicleItinerary(city string, id fleet.VehicleID) (*VehicleItinerary, error) {
	if err := e.checkCity(city); err != nil {
		return nil, err
	}
	loc, branches, err := e.VehicleSchedules(id)
	if err != nil {
		return nil, fmt.Errorf("core: vehicle %d: %w", id, ErrNotFound)
	}
	return &VehicleItinerary{
		City: DefaultCityName, Vehicle: id, Location: loc, Branches: branches,
	}, nil
}

// Params implements Service.
func (e *Engine) Params(city string) (ServiceParams, error) {
	if err := e.checkCity(city); err != nil {
		return ServiceParams{}, err
	}
	cfg := e.sub.cfg
	p := ServiceParams{
		City:           DefaultCityName,
		Algorithm:      e.Algorithm(),
		Capacity:       cfg.Capacity,
		NumTaxis:       e.NumVehicles(),
		MaxWaitSeconds: cfg.MaxWaitSeconds,
		Sigma:          cfg.Sigma,
		SpeedKmh:       cfg.SpeedKmh,
		MatchWorkers:   cfg.MatchWorkers,
		TickWorkers:    cfg.TickWorkers,
	}
	if sp := e.SurgeStats(); sp.Enabled {
		p.SurgeEnabled = true
		p.SurgeEpochSeconds = sp.EpochSeconds
		p.SurgeEpoch = sp.Epoch
		p.SurgeActiveCells = sp.ActiveCells
		p.SurgeMaxMultiplier = sp.MaxMultiplier
	}
	return p, nil
}

// Surge implements Service.
func (e *Engine) Surge(city string) (*SurgeView, error) {
	if err := e.checkCity(city); err != nil {
		return nil, err
	}
	cols, rows := e.sub.grid.Dims()
	v := &SurgeView{City: DefaultCityName, Cols: cols, Rows: rows}
	if e.tracker == nil {
		return v, nil
	}
	v.Enabled = true
	v.EpochSeconds = e.sub.cfg.SurgeEpochSeconds
	epoch, ema, mult := e.tracker.Cells()
	v.Epoch = epoch
	for c, m := range mult {
		if m > 1 {
			v.Cells = append(v.Cells, SurgeCellView{Cell: c, Multiplier: m, Ratio: ema[c]})
		}
	}
	return v, nil
}

// SetCityAlgorithm implements Service.
func (e *Engine) SetCityAlgorithm(city string, algo Algorithm) error {
	if err := e.checkCity(city); err != nil {
		return err
	}
	return e.SetAlgorithm(algo)
}

// CityGraph implements Service.
func (e *Engine) CityGraph(city string) (*roadnet.Graph, error) {
	if err := e.checkCity(city); err != nil {
		return nil, err
	}
	return e.sub.g, nil
}
