package core_test

// Benchmark for the PR-8 acceptance number: quoting through the
// pricing pipeline with the surge tracker live must stay within a few
// percent of the static-fare submit path.

import (
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/pricing/surge"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// BenchmarkSubmitSurge measures the serial Submit path in three
// pricing configurations: the static model (surge off), the live
// tracker with no cell surged (the common case — demand counting plus
// a multiplier load per quote), and the live tracker with every cell
// surged (hair-trigger tiers; the full surged-quote path including the
// provenance bookkeeping).
func BenchmarkSubmitSurge(b *testing.B) {
	variants := []struct {
		name string
		cfg  func(*core.Config)
	}{
		{"off", func(c *core.Config) {}},
		{"on-cold", func(c *core.Config) {
			c.SurgeEnabled = true
			c.SurgeEpochSeconds = 60
		}},
		{"on-hot", func(c *core.Config) {
			c.SurgeEnabled = true
			c.SurgeEpochSeconds = 60
			c.SurgeAlpha = 1
			c.SurgeTiers = []surge.Tier{{MinRatio: 0.0001, Multiplier: 2}}
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := core.Config{
				GridCols: 8, GridRows: 8, Capacity: 4, Seed: 11,
				MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
			}
			v.cfg(&cfg)
			g := testnet.Lattice(rand.New(rand.NewSource(11)), 16, 16, 100)
			e, err := core.NewEngine(g, cfg)
			if err != nil {
				b.Fatalf("NewEngine: %v", err)
			}
			e.AddVehiclesUniform(200)
			nv := e.Graph().NumVertices()

			// Warm the path, then cross an epoch boundary so the hot
			// variant quotes every request at 2× (the warmup demand
			// touches enough cells under hair-trigger tiers).
			warm := rand.New(rand.NewSource(1000))
			for i := 0; i < 500; i++ {
				s := roadnet.VertexID(warm.Intn(nv))
				d := roadnet.VertexID(warm.Intn(nv))
				if s == d {
					continue
				}
				if _, err := e.Submit(s, d, 1); err != nil {
					b.Fatalf("warmup submit: %v", err)
				}
			}
			if cfg.SurgeEnabled {
				if _, err := e.Tick(60); err != nil {
					b.Fatalf("epoch tick: %v", err)
				}
			}

			rng := rand.New(rand.NewSource(42))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := roadnet.VertexID(rng.Intn(nv))
				d := roadnet.VertexID(rng.Intn(nv))
				for d == s {
					d = roadnet.VertexID(rng.Intn(nv))
				}
				if _, err := e.Submit(s, d, 1); err != nil {
					b.Fatalf("submit: %v", err)
				}
			}
			b.StopTimer()
			if v.name == "on-hot" && e.SurgeStats().SurgedQuotes == 0 {
				b.Fatal("hot variant quoted nothing surged")
			}
		})
	}
}
