package core_test

// Benchmark for the PR-9 acceptance number: Submit with the telemetry
// registry live (stage histograms observing every quote/register)
// must stay within 3% of the registry-off path — the nil-registry
// no-op contract priced on the real submit pipeline.

import (
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/roadnet"
	"ptrider/internal/telemetry"
	"ptrider/internal/testnet"
)

// BenchmarkSubmitTelemetry measures the serial Submit path against
// the same loaded 200-vehicle city as BenchmarkSubmitSurge, with the
// telemetry registry off (nil — the zero-cost disabled state) and on
// (sharded latency histograms plus P² quantiles observing the quote
// and register stages of every submission).
func BenchmarkSubmitTelemetry(b *testing.B) {
	variants := []struct {
		name string
		reg  func() *telemetry.Registry
	}{
		{"off", func() *telemetry.Registry { return nil }},
		{"on", telemetry.NewRegistry},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			reg := v.reg()
			cfg := core.Config{
				GridCols: 8, GridRows: 8, Capacity: 4, Seed: 11,
				MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
				Telemetry: reg,
			}
			g := testnet.Lattice(rand.New(rand.NewSource(11)), 16, 16, 100)
			e, err := core.NewEngine(g, cfg)
			if err != nil {
				b.Fatalf("NewEngine: %v", err)
			}
			e.AddVehiclesUniform(200)
			nv := e.Graph().NumVertices()

			warm := rand.New(rand.NewSource(1000))
			for i := 0; i < 500; i++ {
				s := roadnet.VertexID(warm.Intn(nv))
				d := roadnet.VertexID(warm.Intn(nv))
				if s == d {
					continue
				}
				if _, err := e.Submit(s, d, 1); err != nil {
					b.Fatalf("warmup submit: %v", err)
				}
			}

			rng := rand.New(rand.NewSource(42))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := roadnet.VertexID(rng.Intn(nv))
				d := roadnet.VertexID(rng.Intn(nv))
				for d == s {
					d = roadnet.VertexID(rng.Intn(nv))
				}
				if _, err := e.Submit(s, d, 1); err != nil {
					b.Fatalf("submit: %v", err)
				}
			}
			b.StopTimer()
			if reg != nil {
				// The on variant must actually have observed the stages.
				found := false
				for _, f := range reg.Gather() {
					if f.Name != "ptrider_submit_stage_duration_seconds" {
						continue
					}
					for _, s := range f.Series {
						if s.Hist != nil && s.Hist.Count > 0 {
							found = true
						}
					}
				}
				if !found {
					b.Fatal("telemetry-on run recorded no stage observations")
				}
			}
		})
	}
}
