package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/pricing"
	"ptrider/internal/roadnet"
	"ptrider/internal/stats"
)

// Algorithm selects the matching method (configurable in the demo's
// website interface).
type Algorithm int

// Matching algorithms.
const (
	AlgoNaive Algorithm = iota
	AlgoSingleSide
	AlgoDualSide
)

func (a Algorithm) String() string {
	switch a {
	case AlgoNaive:
		return "naive"
	case AlgoSingleSide:
		return "single-side"
	case AlgoDualSide:
		return "dual-side"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm maps a name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "naive":
		return AlgoNaive, nil
	case "single", "single-side":
		return AlgoSingleSide, nil
	case "dual", "dual-side":
		return AlgoDualSide, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// Config carries the demo's global settings (paper §4.2: taxi capacity,
// number of taxis, maximal waiting time, service constraint, price
// calculator function, and the matching algorithm).
type Config struct {
	// GridCols/GridRows give the road-network grid index resolution.
	GridCols, GridRows int
	// MaxBoundRadius optionally truncates the index's bound matrix; see
	// gridindex.Config.
	MaxBoundRadius float64

	// Capacity is the per-vehicle rider capacity.
	Capacity int
	// MaxSchedulePoints caps pending stops per vehicle (0 = 8).
	MaxSchedulePoints int

	// SpeedKmh is the constant vehicle speed; the demo uses 48 km/h.
	SpeedKmh float64
	// MaxWaitSeconds is the global maximal waiting time w.
	MaxWaitSeconds float64
	// Sigma is the global service constraint σ.
	Sigma float64
	// MaxPickupSeconds caps the planned pick-up time of returned
	// options (search cutoff). Zero means 1800 s.
	MaxPickupSeconds float64

	// PriceRatio overrides the paper's f_n (nil = default).
	PriceRatio pricing.RatioFunc

	// Algorithm selects the matcher; the default is dual-side.
	Algorithm Algorithm

	// Seed drives vehicle placement and roaming.
	Seed int64

	// NumLandmarks additionally builds ALT landmark tables whose
	// triangle-inequality bounds are combined with the grid bounds
	// (max of both). Zero disables; 8 is a good default on large
	// networks.
	NumLandmarks int

	// DisableEmptyLemma and DisableLB switch off individual
	// optimisations for the E8 ablation benchmarks.
	DisableEmptyLemma bool
	DisableLB         bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.GridCols == 0 {
		out.GridCols = 16
	}
	if out.GridRows == 0 {
		out.GridRows = 16
	}
	if out.Capacity == 0 {
		out.Capacity = 4
	}
	if out.SpeedKmh == 0 {
		out.SpeedKmh = 48
	}
	if out.MaxWaitSeconds == 0 {
		out.MaxWaitSeconds = 300
	}
	if out.Sigma == 0 {
		out.Sigma = 0.4
	}
	if out.MaxPickupSeconds == 0 {
		out.MaxPickupSeconds = 1800
	}
	return out
}

// RequestID identifies a request across the engine (it doubles as the
// kinetic request id).
type RequestID = kinetic.RequestID

// RequestStatus is a request's lifecycle state.
type RequestStatus int

// Request lifecycle states.
const (
	StatusQuoted RequestStatus = iota
	StatusAssigned
	StatusOnboard
	StatusCompleted
	StatusDeclined
)

func (s RequestStatus) String() string {
	switch s {
	case StatusQuoted:
		return "quoted"
	case StatusAssigned:
		return "assigned"
	case StatusOnboard:
		return "onboard"
	case StatusCompleted:
		return "completed"
	case StatusDeclined:
		return "declined"
	}
	return fmt.Sprintf("RequestStatus(%d)", int(s))
}

// RequestRecord is the engine's view of a request's lifecycle, exposed
// for statistics and the website interface.
type RequestRecord struct {
	ID     RequestID
	S, D   roadnet.VertexID
	Riders int
	Status RequestStatus

	// WaitSeconds and Sigma are the constraints this request was quoted
	// under (the globals, unless the rider overrode them).
	WaitSeconds float64
	Sigma       float64

	Options []Option // the quoted skyline
	Chosen  int      // index into Options once assigned; -1 before

	Vehicle          fleet.VehicleID
	Price            float64
	PlannedPickupOdo float64 // vehicle odometer promised for pickup
	PickupOdo        float64
	DropoffOdo       float64
	SD               float64 // direct distance dist(s,d)
	Shared           bool    // overlapped onboard with another request
	SubmitClock      float64 // engine clock at submission (seconds)
}

// Engine is the PTRider system core: it owns the index structures, the
// fleet and the matchers, answers requests with skyline options,
// commits rider choices, and advances simulated time. Safe for
// concurrent use.
type Engine struct {
	mu sync.Mutex

	cfg    Config
	g      *roadnet.Graph
	grid   *gridindex.Grid
	lists  *gridindex.VehicleLists
	fleet  *fleet.Fleet
	metric *memoMetric
	model  pricing.Model

	matchers map[Algorithm]Matcher
	algo     Algorithm

	speed  float64 // m/s
	rng    *rand.Rand
	clock  float64 // seconds of simulated time
	nextID RequestID
	reqs   map[RequestID]*RequestRecord
	byVeh  map[fleet.VehicleID]map[RequestID]bool // assigned, not yet dropped
	search *roadnet.Searcher

	// Statistics for the website panel (Fig. 4c).
	respNs     stats.Online // per-match wall time
	respP95    *stats.P2Quantile
	optCount   stats.Online
	verified   stats.Online
	pruned     stats.Online
	cells      stats.Online
	distCalls  stats.Online
	waitDist   stats.Online // actual − planned pickup distance
	detourFrac stats.Online // in-vehicle distance / direct distance
	completed  int64
	shared     int64
	declined   int64
	assigned   int64
}

// NewEngine builds the full system over an embedded road network.
func NewEngine(g *roadnet.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.SpeedKmh <= 0 {
		return nil, fmt.Errorf("core: speed must be positive")
	}
	if cfg.Sigma < 0 {
		return nil, fmt.Errorf("core: sigma must be non-negative")
	}
	grid, err := gridindex.Build(g, gridindex.Config{
		Cols: cfg.GridCols, Rows: cfg.GridRows, MaxBoundRadius: cfg.MaxBoundRadius,
	})
	if err != nil {
		return nil, err
	}
	model := pricing.NewModel(cfg.PriceRatio)
	if err := model.Validate(cfg.Capacity); err != nil {
		return nil, err
	}
	lists := gridindex.NewVehicleLists(grid.NumCells())
	var lm *roadnet.Landmarks
	if cfg.NumLandmarks > 0 {
		lm, err = roadnet.SelectLandmarks(g, cfg.NumLandmarks)
		if err != nil {
			return nil, err
		}
	}
	metric := newMemoMetric(grid, lm, cfg.DisableLB)
	fl, err := fleet.New(grid, lists, metric, fleet.Config{
		Capacity:          cfg.Capacity,
		MaxSchedulePoints: cfg.MaxSchedulePoints,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		g:       g,
		grid:    grid,
		lists:   lists,
		fleet:   fl,
		metric:  metric,
		model:   model,
		algo:    cfg.Algorithm,
		speed:   cfg.SpeedKmh / 3.6,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nextID:  1,
		reqs:    make(map[RequestID]*RequestRecord),
		byVeh:   make(map[fleet.VehicleID]map[RequestID]bool),
		search:  roadnet.NewSearcher(g),
		respP95: stats.NewP2Quantile(0.95),
	}
	ctx := &matchContext{
		fleet:             fl,
		grid:              grid,
		lists:             lists,
		metric:            metric,
		model:             model,
		disableEmptyLemma: cfg.DisableEmptyLemma,
	}
	e.matchers = map[Algorithm]Matcher{
		AlgoNaive:      newNaiveMatcher(ctx),
		AlgoSingleSide: newSingleSideMatcher(ctx),
		AlgoDualSide:   newDualSideMatcher(ctx),
	}
	return e, nil
}

// Grid exposes the road-network index (read-only).
func (e *Engine) Grid() *gridindex.Grid { return e.grid }

// Graph exposes the road network.
func (e *Engine) Graph() *roadnet.Graph { return e.g }

// Speed returns the system speed in metres per second.
func (e *Engine) Speed() float64 { return e.speed }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Clock returns the simulated time in seconds.
func (e *Engine) Clock() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clock
}

// SetAlgorithm switches the matching algorithm at run time (website
// admin control).
func (e *Engine) SetAlgorithm(a Algorithm) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.matchers[a]; !ok {
		return fmt.Errorf("core: unknown algorithm %v", a)
	}
	e.algo = a
	return nil
}

// Algorithm returns the active matching algorithm.
func (e *Engine) Algorithm() Algorithm {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.algo
}

// AddVehicleAt places a vehicle at the given vertex.
func (e *Engine) AddVehicleAt(loc roadnet.VertexID) fleet.VehicleID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fleet.AddVehicle(loc).ID
}

// AddVehiclesUniform places n vehicles uniformly at random vertices
// (the demo's initialisation) and returns their ids.
func (e *Engine) AddVehiclesUniform(n int) []fleet.VehicleID {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]fleet.VehicleID, n)
	for i := range ids {
		loc := roadnet.VertexID(e.rng.Intn(e.g.NumVertices()))
		ids[i] = e.fleet.AddVehicle(loc).ID
	}
	return ids
}

// NumVehicles returns the number of in-service vehicles.
func (e *Engine) NumVehicles() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fleet.NumActive()
}

// Constraints carries per-request overrides of the global waiting time
// and service constraint. The demo "adopts a global setting for
// simplification" but notes riders may set their own (§4.2); this is
// the non-simplified version. Zero fields fall back to the globals.
type Constraints struct {
	// WaitSeconds overrides the maximal waiting time w.
	WaitSeconds float64
	// Sigma overrides the service constraint σ. Negative means "use the
	// global"; zero is a valid override (no detour allowed), so use
	// DefaultSigma (-1) for fallback.
	Sigma float64
}

// DefaultSigma requests the engine-global service constraint.
const DefaultSigma = -1.0

// DefaultConstraints uses the engine-global settings.
func DefaultConstraints() Constraints {
	return Constraints{WaitSeconds: 0, Sigma: DefaultSigma}
}

// Submit answers a ridesharing request under the global constraints: it
// runs the active matcher and returns the request record holding all
// qualified non-dominated options. The rider then calls Choose or
// Decline.
func (e *Engine) Submit(s, d roadnet.VertexID, riders int) (*RequestRecord, error) {
	return e.SubmitWithConstraints(s, d, riders, DefaultConstraints())
}

// SubmitWithConstraints is Submit with per-rider waiting-time and
// service-constraint overrides.
func (e *Engine) SubmitWithConstraints(s, d roadnet.VertexID, riders int, c Constraints) (*RequestRecord, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked(s, d, riders, c)
}

func (e *Engine) submitLocked(s, d roadnet.VertexID, riders int, c Constraints) (*RequestRecord, error) {
	n := e.g.NumVertices()
	if s < 0 || int(s) >= n || d < 0 || int(d) >= n {
		return nil, fmt.Errorf("core: request endpoints out of range")
	}
	if s == d {
		return nil, fmt.Errorf("core: start and destination coincide")
	}
	if riders < 1 {
		return nil, fmt.Errorf("core: rider count %d < 1", riders)
	}
	// A group larger than every vehicle's capacity is a legitimate
	// request that simply cannot be served: matching returns an empty
	// skyline (each kinetic tree refuses it), mirroring the demo's
	// behaviour of showing no taxis rather than an input error.
	sd := e.metric.Dist(s, d)
	if math.IsInf(sd, 1) {
		return nil, fmt.Errorf("core: no route from %d to %d", s, d)
	}
	wait := c.WaitSeconds
	if wait <= 0 {
		wait = e.cfg.MaxWaitSeconds
	}
	sigma := c.Sigma
	if sigma < 0 {
		sigma = e.cfg.Sigma
	}

	id := e.nextID
	e.nextID++
	spec := &ReqSpec{
		Kin: kinetic.Request{
			ID: id, S: s, D: d, Riders: riders,
			SD:           sd,
			ServiceLimit: (1 + sigma) * sd,
			WaitBudget:   wait * e.speed,
		},
		Ratio:         e.model.Ratio(riders),
		MinPrice:      e.model.MinPrice(riders, sd),
		MaxPickupDist: e.cfg.MaxPickupSeconds * e.speed,
	}

	var ms MatchStats
	start := time.Now()
	options := e.matchers[e.algo].Match(spec, &ms)
	elapsed := time.Since(start)

	e.respNs.Observe(float64(elapsed.Nanoseconds()))
	e.respP95.Observe(float64(elapsed.Nanoseconds()))
	e.optCount.Observe(float64(len(options)))
	e.verified.Observe(float64(ms.Verified))
	e.pruned.Observe(float64(ms.PrunedVehicles))
	e.cells.Observe(float64(ms.CellsScanned))
	e.distCalls.Observe(float64(ms.DistCalls))

	rec := &RequestRecord{
		ID: id, S: s, D: d, Riders: riders,
		WaitSeconds: wait, Sigma: sigma,
		Status: StatusQuoted, Options: options, Chosen: -1,
		SD: sd, SubmitClock: e.clock,
	}
	e.reqs[id] = rec
	return rec, nil
}

// Choose commits the rider's selected option.
func (e *Engine) Choose(id RequestID, optionIndex int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.chooseLocked(id, optionIndex)
}

func (e *Engine) chooseLocked(id RequestID, optionIndex int) error {
	rec, ok := e.reqs[id]
	if !ok {
		return fmt.Errorf("core: unknown request %d", id)
	}
	if rec.Status != StatusQuoted {
		return fmt.Errorf("core: request %d is %v, not quoted", id, rec.Status)
	}
	if optionIndex < 0 || optionIndex >= len(rec.Options) {
		return fmt.Errorf("core: option index %d outside [0,%d)", optionIndex, len(rec.Options))
	}
	opt := rec.Options[optionIndex]
	spec := kinetic.Request{
		ID: id, S: rec.S, D: rec.D, Riders: rec.Riders,
		SD:           rec.SD,
		ServiceLimit: (1 + rec.Sigma) * rec.SD,
		WaitBudget:   rec.WaitSeconds * e.speed,
	}
	v, err := e.fleet.Vehicle(opt.Vehicle)
	if err != nil {
		return err
	}
	if err := e.fleet.Commit(opt.Vehicle, spec, opt.Candidate); err != nil {
		return err
	}
	rec.Status = StatusAssigned
	rec.Chosen = optionIndex
	rec.Vehicle = opt.Vehicle
	rec.Price = opt.Price
	rec.PlannedPickupOdo = v.Odometer() + opt.Candidate.PickupDist
	if e.byVeh[opt.Vehicle] == nil {
		e.byVeh[opt.Vehicle] = make(map[RequestID]bool)
	}
	e.byVeh[opt.Vehicle][id] = true
	e.assigned++
	return nil
}

// BatchItem is one request of a simultaneous batch.
type BatchItem struct {
	S, D        roadnet.VertexID
	Riders      int
	Constraints Constraints
	// Choose picks an option index from the quoted skyline (or -1 to
	// decline). Nil declines everything (quote-only batch).
	Choose func(options []Option) int
}

// SubmitBatch processes simultaneously issued requests with the paper's
// greedy strategy (§2.5): requests are quoted and committed one at a
// time under a single engine lock, each seeing the fleet state left by
// the previous commitments. It returns one record per item, in order;
// individual failures are recorded as nil entries with the first error
// returned.
func (e *Engine) SubmitBatch(items []BatchItem) ([]*RequestRecord, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*RequestRecord, len(items))
	var firstErr error
	for i, it := range items {
		rec, err := e.submitLocked(it.S, it.D, it.Riders, it.Constraints)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: batch item %d: %w", i, err)
			}
			continue
		}
		out[i] = rec
		pick := -1
		if it.Choose != nil {
			pick = it.Choose(rec.Options)
		}
		if pick >= 0 && pick < len(rec.Options) {
			if err := e.chooseLocked(rec.ID, pick); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("core: batch item %d choose: %w", i, err)
			}
		} else {
			rec.Status = StatusDeclined
			e.declined++
		}
	}
	return out, firstErr
}

// Decline records that the rider took none of the options.
func (e *Engine) Decline(id RequestID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.reqs[id]
	if !ok {
		return fmt.Errorf("core: unknown request %d", id)
	}
	if rec.Status != StatusQuoted {
		return fmt.Errorf("core: request %d is %v, not quoted", id, rec.Status)
	}
	rec.Status = StatusDeclined
	e.declined++
	return nil
}

// Request returns the record of request id.
func (e *Engine) Request(id RequestID) (*RequestRecord, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.reqs[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown request %d", id)
	}
	cp := *rec
	return &cp, nil
}

// Tick advances simulated time by dt seconds: vehicles move at the
// system speed, pickups and dropoffs fire, request records update.
func (e *Engine) Tick(dt float64) ([]fleet.Event, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if dt < 0 {
		return nil, fmt.Errorf("core: negative tick %v", dt)
	}
	e.clock += dt
	events, err := e.fleet.Step(dt * e.speed)
	for _, ev := range events {
		e.applyEvent(ev)
	}
	return events, err
}

func (e *Engine) applyEvent(ev fleet.Event) {
	rec, ok := e.reqs[ev.Request]
	if !ok {
		return
	}
	switch ev.Kind {
	case fleet.EventPickup:
		rec.Status = StatusOnboard
		rec.PickupOdo = ev.Odo
		if wait := ev.Odo - rec.PlannedPickupOdo; wait > 0 {
			e.waitDist.Observe(wait)
		} else {
			e.waitDist.Observe(0)
		}
		// Sharing: this rider overlaps with every other request
		// currently assigned to the vehicle and onboard.
		for other := range e.byVeh[ev.Vehicle] {
			if other == ev.Request {
				continue
			}
			if o := e.reqs[other]; o != nil && o.Status == StatusOnboard {
				if !o.Shared {
					o.Shared = true
				}
				rec.Shared = true
			}
		}
	case fleet.EventDropoff:
		rec.Status = StatusCompleted
		rec.DropoffOdo = ev.Odo
		if rec.SD > 0 {
			e.detourFrac.Observe((ev.Odo - rec.PickupOdo) / rec.SD)
		}
		if rec.Shared {
			e.shared++
		}
		e.completed++
		delete(e.byVeh[ev.Vehicle], ev.Request)
	}
}

// VehicleView is a vehicle summary for the website's map.
type VehicleView struct {
	ID       fleet.VehicleID  `json:"id"`
	Location roadnet.VertexID `json:"location"`
	X        float64          `json:"x"`
	Y        float64          `json:"y"`
	Onboard  int              `json:"onboard"`
	Pending  int              `json:"pending_requests"`
}

// VehicleViews returns summaries of up to limit in-service vehicles
// (limit ≤ 0 means all), in id order.
func (e *Engine) VehicleViews(limit int) []VehicleView {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []VehicleView
	e.fleet.Vehicles(func(v *fleet.Vehicle) {
		if limit > 0 && len(out) >= limit {
			return
		}
		p := e.g.Point(v.Loc())
		out = append(out, VehicleView{
			ID:       v.ID,
			Location: v.Loc(),
			X:        p.X,
			Y:        p.Y,
			Onboard:  v.Tree.Onboard(),
			Pending:  v.Tree.NumRequests(),
		})
	})
	return out
}

// VehicleSchedules returns every valid trip schedule of a vehicle (the
// website's red lines) plus its current location.
func (e *Engine) VehicleSchedules(id fleet.VehicleID) (loc roadnet.VertexID, branches [][]kinetic.Point, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, err := e.fleet.Vehicle(id)
	if err != nil {
		return 0, nil, err
	}
	return v.Loc(), v.Tree.Branches(), nil
}

// RemoveVehicle injects a vehicle failure. The vehicle's pending
// requests are orphaned: their records are marked declined and their
// ids returned so the caller can resubmit them.
func (e *Engine) RemoveVehicle(id fleet.VehicleID) ([]RequestID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	orphans, err := e.fleet.RemoveVehicle(id)
	if err != nil {
		return nil, err
	}
	out := make([]RequestID, 0, len(orphans))
	for _, r := range orphans {
		out = append(out, r.ID)
		if rec := e.reqs[r.ID]; rec != nil {
			rec.Status = StatusDeclined
			delete(e.byVeh[id], r.ID)
		}
	}
	return out, nil
}

// EngineStats is the statistics panel snapshot (Fig. 4c).
type EngineStats struct {
	Clock           float64
	Requests        int64
	Assigned        int64
	Declined        int64
	Completed       int64
	SharedCompleted int64
	SharingRate     float64 // shared / completed
	AvgResponseMs   float64
	P95ResponseMs   float64
	AvgOptions      float64
	AvgVerified     float64
	AvgPruned       float64
	AvgCellsScanned float64
	AvgDistCalls    float64
	AvgWaitSeconds  float64 // actual−planned pickup wait
	AvgDetourFactor float64 // in-vehicle distance / direct
	ActiveVehicles  int
}

// Stats returns a snapshot of the running statistics.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	p95 := 0.0
	if e.respP95.Count() > 0 {
		p95 = e.respP95.Value() / 1e6
	}
	s := EngineStats{
		Clock:           e.clock,
		Requests:        e.respNs.Count(),
		Assigned:        e.assigned,
		Declined:        e.declined,
		Completed:       e.completed,
		SharedCompleted: e.shared,
		AvgResponseMs:   e.respNs.Mean() / 1e6,
		P95ResponseMs:   p95,
		AvgOptions:      e.optCount.Mean(),
		AvgVerified:     e.verified.Mean(),
		AvgPruned:       e.pruned.Mean(),
		AvgCellsScanned: e.cells.Mean(),
		AvgDistCalls:    e.distCalls.Mean(),
		AvgWaitSeconds:  e.waitDist.Mean() / e.speed,
		AvgDetourFactor: e.detourFrac.Mean(),
		ActiveVehicles:  e.fleet.NumActive(),
	}
	if e.completed > 0 {
		s.SharingRate = float64(e.shared) / float64(e.completed)
	}
	return s
}

// MatchOnce runs a single matching with an explicit algorithm without
// registering a request — the benchmark harness's entry point.
func (e *Engine) MatchOnce(algo Algorithm, s, d roadnet.VertexID, riders int) ([]Option, MatchStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s == d {
		return nil, MatchStats{}, fmt.Errorf("core: start and destination coincide")
	}
	sd := e.metric.Dist(s, d)
	if math.IsInf(sd, 1) {
		return nil, MatchStats{}, fmt.Errorf("core: no route from %d to %d", s, d)
	}
	spec := &ReqSpec{
		Kin: kinetic.Request{
			ID: -1, S: s, D: d, Riders: riders,
			SD:           sd,
			ServiceLimit: (1 + e.cfg.Sigma) * sd,
			WaitBudget:   e.cfg.MaxWaitSeconds * e.speed,
		},
		Ratio:         e.model.Ratio(riders),
		MinPrice:      e.model.MinPrice(riders, sd),
		MaxPickupDist: e.cfg.MaxPickupSeconds * e.speed,
	}
	var ms MatchStats
	opts := e.matchers[algo].Match(spec, &ms)
	return opts, ms, nil
}

// PickupSeconds converts an option's pick-up distance to seconds under
// the engine speed.
func (e *Engine) PickupSeconds(o Option) float64 { return o.PickupDist / e.speed }

// ResetDistCache clears the shared distance memo, so the next matching
// runs against a cold cache. Benchmark-harness use only.
func (e *Engine) ResetDistCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.metric.Reset()
}

// RandomVertex returns a uniformly random vertex (generator helper).
func (e *Engine) RandomVertex() roadnet.VertexID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return roadnet.VertexID(e.rng.Intn(e.g.NumVertices()))
}

// SortOptionsByPrice returns the options of a record re-sorted by price
// ascending (the smartphone interface's alternate ordering).
func SortOptionsByPrice(opts []Option) []Option {
	out := append([]Option(nil), opts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Price < out[j].Price })
	return out
}
