package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/pricing"
	"ptrider/internal/pricing/surge"
	"ptrider/internal/roadnet"
	"ptrider/internal/stats"
	"ptrider/internal/telemetry"
	"ptrider/internal/wal"
)

// Algorithm selects the matching method (configurable in the demo's
// website interface).
type Algorithm int

// Matching algorithms.
const (
	AlgoNaive Algorithm = iota
	AlgoSingleSide
	AlgoDualSide
)

func (a Algorithm) String() string {
	switch a {
	case AlgoNaive:
		return "naive"
	case AlgoSingleSide:
		return "single-side"
	case AlgoDualSide:
		return "dual-side"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm maps a name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "naive":
		return AlgoNaive, nil
	case "single", "single-side":
		return AlgoSingleSide, nil
	case "dual", "dual-side":
		return AlgoDualSide, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// Config carries the demo's global settings (paper §4.2: taxi capacity,
// number of taxis, maximal waiting time, service constraint, price
// calculator function, and the matching algorithm).
type Config struct {
	// GridCols/GridRows give the road-network grid index resolution.
	GridCols, GridRows int
	// MaxBoundRadius optionally truncates the index's bound matrix; see
	// gridindex.Config.
	MaxBoundRadius float64

	// Capacity is the per-vehicle rider capacity.
	Capacity int
	// MaxSchedulePoints caps pending stops per vehicle (0 = 8; at most
	// 16 — the kinetic quote's permutation encoding and factorial
	// enumeration both cap there, and NewEngine rejects more).
	MaxSchedulePoints int

	// SpeedKmh is the constant vehicle speed; the demo uses 48 km/h.
	SpeedKmh float64
	// MaxWaitSeconds is the global maximal waiting time w.
	MaxWaitSeconds float64
	// Sigma is the global service constraint σ.
	Sigma float64
	// MaxPickupSeconds caps the planned pick-up time of returned
	// options (search cutoff). Zero means 1800 s.
	MaxPickupSeconds float64

	// PriceRatio overrides the paper's f_n (nil = default).
	PriceRatio pricing.RatioFunc

	// SurgeEnabled turns on the quote-time surge stage of the pricing
	// pipeline: a per-cell demand/supply tracker scales each quote's
	// ratio by its origin cell's multiplier. Off, the pipeline runs the
	// static paper model alone, bit-identically.
	SurgeEnabled bool
	// SurgeEpochSeconds is the surge epoch length in simulated seconds:
	// multipliers recompute when the engine clock crosses an epoch
	// boundary at tick time (0 = 60).
	SurgeEpochSeconds float64
	// SurgeAlpha is the EMA weight of the newest epoch's demand/supply
	// ratio (0 = the tracker default, 0.5).
	SurgeAlpha float64
	// SurgeTiers overrides the ratio→multiplier tier table
	// (nil = surge.DefaultTiers: >1.5 → 1.2×, >2.0 → 1.5×).
	SurgeTiers []surge.Tier

	// Algorithm selects the matcher; the default is dual-side.
	Algorithm Algorithm

	// Seed drives vehicle placement and roaming.
	Seed int64

	// NumLandmarks additionally builds ALT landmark tables whose
	// triangle-inequality bounds are combined with the grid bounds
	// (max of both). Zero disables; 8 is a good default on large
	// networks.
	NumLandmarks int

	// MatchWorkers bounds the per-match candidate-evaluation fan-out:
	// vehicles surviving bound-based pruning are probed by up to this
	// many goroutines. 0 means GOMAXPROCS; 1 forces fully serial
	// evaluation (the reference algorithm, bit for bit). Independent of
	// this setting, whole Submit calls always run concurrently.
	MatchWorkers int

	// TickWorkers bounds Tick's per-vehicle shard fan-out: the fleet is
	// partitioned into this many stable shards (vehicle id modulo
	// width) whose movement steps run concurrently. 0 means GOMAXPROCS;
	// 1 forces the fully serial reference step. Serial and parallel
	// ticks produce identical events at every width (see fleet.Step).
	TickWorkers int

	// CommitSlack loosens Choose's validate-then-commit: when the
	// quoted candidate has gone stale (the vehicle moved or accepted
	// other riders between quote and choice), the request is re-probed
	// and a fresh candidate within CommitSlack·dist(s,d) metres of the
	// quoted pick-up distance and detour is committed instead. Zero is
	// strict: a stale candidate fails the choice, as the serial engine
	// did.
	CommitSlack float64

	// DisableEmptyLemma and DisableLB switch off individual
	// optimisations for the E8 ablation benchmarks.
	DisableEmptyLemma bool
	DisableLB         bool

	// Durability selects the write-ahead journaling mode (off, async,
	// sync; see package wal). When not off, WALDir must name the
	// journal directory; NewEngine recovers any state found there
	// before serving.
	Durability wal.Mode
	// WALDir is the journal + snapshot directory (created on demand).
	WALDir string
	// SnapshotEvery snapshots the engine after this many journaled
	// records, checked at tick boundaries (0 = 4096; negative disables
	// automatic snapshots — explicit Snapshot/Close still work).
	SnapshotEvery int
	// WALNoFsync skips the journal's fsync calls (crash-unsafe; exists
	// so benchmarks can separate group-commit machinery overhead from
	// device sync latency).
	WALNoFsync bool
	// FaultInjector arms simulated crash points and torn writes in the
	// durability path (tests only; nil in production).
	FaultInjector *wal.Injector

	// Telemetry, when non-nil, receives the engine's hot-path metrics:
	// submit-stage latency histograms (quote/register/wal_wait/
	// probe_commit), tick and tick-shard wall times, WAL append/fsync
	// latencies, lifecycle counters and surge/clock gauges (see
	// internal/telemetry for the instrument semantics). Nil — the
	// default — disables instrumentation at zero hot-path cost: every
	// observation site is a nil histogram whose methods no-op
	// (BenchmarkSubmitTelemetry pins the enabled overhead < 3%).
	Telemetry *telemetry.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.GridCols == 0 {
		out.GridCols = 16
	}
	if out.GridRows == 0 {
		out.GridRows = 16
	}
	if out.Capacity == 0 {
		out.Capacity = 4
	}
	if out.SpeedKmh == 0 {
		out.SpeedKmh = 48
	}
	if out.MaxWaitSeconds == 0 {
		out.MaxWaitSeconds = 300
	}
	if out.Sigma == 0 {
		out.Sigma = 0.4
	}
	if out.MaxPickupSeconds == 0 {
		out.MaxPickupSeconds = 1800
	}
	if out.MatchWorkers == 0 {
		out.MatchWorkers = runtime.GOMAXPROCS(0)
	}
	if out.TickWorkers == 0 {
		out.TickWorkers = runtime.GOMAXPROCS(0)
	}
	if out.SnapshotEvery == 0 {
		out.SnapshotEvery = defaultSnapshotEvery
	}
	if out.SurgeEpochSeconds == 0 {
		out.SurgeEpochSeconds = 60
	}
	return out
}

// ErrInvalidArgument marks errors caused by invalid caller input —
// a negative tick, for example — as opposed to internal engine
// failures. Transport layers classify with errors.Is: caller errors map
// to 4xx, everything else to 5xx.
var ErrInvalidArgument = errors.New("invalid argument")

// RequestID identifies a request across the engine (it doubles as the
// kinetic request id).
type RequestID = kinetic.RequestID

// RequestStatus is a request's lifecycle state.
type RequestStatus int

// Request lifecycle states.
const (
	StatusQuoted RequestStatus = iota
	StatusAssigned
	StatusOnboard
	StatusCompleted
	StatusDeclined
)

func (s RequestStatus) String() string {
	switch s {
	case StatusQuoted:
		return "quoted"
	case StatusAssigned:
		return "assigned"
	case StatusOnboard:
		return "onboard"
	case StatusCompleted:
		return "completed"
	case StatusDeclined:
		return "declined"
	}
	return fmt.Sprintf("RequestStatus(%d)", int(s))
}

// RequestRecord is the engine's view of a request's lifecycle, exposed
// for statistics and the website interface. Methods returning a record
// return a snapshot copy; the ledger's live records stay behind the
// engine's coordination lock.
type RequestRecord struct {
	ID     RequestID
	S, D   roadnet.VertexID
	Riders int
	Status RequestStatus

	// WaitSeconds and Sigma are the constraints this request was quoted
	// under (the globals, unless the rider overrode them).
	WaitSeconds float64
	Sigma       float64

	Options []Option // the quoted skyline
	Chosen  int      // index into Options once assigned; -1 before

	Vehicle          fleet.VehicleID
	Price            float64
	PlannedPickupOdo float64 // vehicle odometer promised for pickup
	PickupOdo        float64
	DropoffOdo       float64
	SD               float64 // direct distance dist(s,d)
	Shared           bool    // overlapped onboard with another request
	SubmitClock      float64 // engine clock at submission (seconds)

	// Quote-time fare context (see pricing.FareContext): the effective
	// ratio every price of this request used, plus its surge
	// provenance. FareRatio is authoritative for repricing — a
	// CommitSlack re-probe at choice time must price under the quoted
	// multiplier, not whatever the tracker says now. Zero FareRatio
	// (a record recovered from a pre-pipeline snapshot) falls back to
	// the static model.
	FareRatio  float64 // effective ratio f_n × multiplier
	SurgeMult  float64 // surge multiplier at quote time (1 = unsurged)
	SurgeCell  int32   // origin cell the multiplier was read from (-1 = none)
	SurgeEpoch uint64  // surge epoch the multiplier was read at
}

// Engine is the PTRider system core: it owns the index structures, the
// fleet and the matchers, answers requests with skyline options,
// commits rider choices, and advances simulated time.
//
// Safe for concurrent use — and, unlike the first generation of this
// engine, internally parallel. State is layered by mutability:
//
//   - Substrate: graph, grid index, landmarks, pricing — immutable,
//     shared lock-free (see Substrate).
//   - Distance memo: internally sharded (see memoMetric).
//   - Fleet: per-vehicle locks; probes and commits on distinct
//     vehicles never contend (see package fleet).
//   - Coordination core: the request ledger and lifecycle counters
//     behind ledgerMu, the response/quality accumulators behind
//     statsMu, the simulated clock in an atomic, the algorithm switch
//     in an atomic, and the placement RNG behind rngMu. Ticks are
//     serialised by tickMu but overlap freely with matching.
//
// Lock order: ledgerMu → statsMu, and ledgerMu → Vehicle.mu (Choose
// holds the ledger across its vehicle commit so assignment is atomic
// against event application and vehicle removal); no code path
// acquires ledgerMu while holding a vehicle lock. Submit holds no
// engine-wide lock while matching, so request answering scales with
// cores.
type Engine struct {
	sub    *Substrate
	metric *memoMetric
	lists  *gridindex.VehicleLists
	fleet  *fleet.Fleet

	matchers map[Algorithm]Matcher
	mctx     *matchContext
	algo     atomic.Int32

	// Pricing pipeline (see pricing.Pipeline): every quote resolves its
	// FareContext here. fares is immutable after construction; tracker
	// is nil when surge is disabled. surgeNext (the clock at which the
	// next epoch advances) and surgeSupply (the Advance scratch) ride
	// under ledgerMu with the epoch machinery that uses them;
	// surgedQuotes counts quotes priced under a non-unit multiplier.
	fares        *pricing.Pipeline
	tracker      *surge.Tracker
	surgeNext    float64 // guarded by ledgerMu
	surgeSupply  []int   // guarded by ledgerMu
	surgedQuotes atomic.Int64

	clockBits atomic.Uint64 // simulated seconds, as math.Float64bits
	nextID    atomic.Int64
	requests  atomic.Int64 // quoted requests, for consistent Stats

	tickMu sync.Mutex // serialises Tick's movement phase
	// stepOverride replaces fleet.Step in Tick when non-nil (test seam;
	// see SetStepOverride). Written before concurrency starts.
	stepOverride func(budget float64) ([]fleet.Event, error)

	rngMu  sync.Mutex
	rng    *rand.Rand
	rngSrc *fleet.CountedSource // rng's source, counted for snapshots

	// ledgerMu guards the request ledger and the lifecycle counters.
	ledgerMu  sync.Mutex
	reqs      map[RequestID]*RequestRecord
	byVeh     map[fleet.VehicleID]map[RequestID]bool // assigned, not yet dropped
	completed int64
	shared    int64
	declined  int64
	assigned  int64

	// Durability (see durability.go). journal is nil when off; the
	// idempotency LRU and the records-since-snapshot cadence counter
	// ride under ledgerMu like the ledger they protect.
	journal      *wal.Journal
	inj          *wal.Injector
	walDir       string
	walDead      atomic.Bool
	recovered    bool
	snapEvery    int
	recSinceSnap int    // guarded by ledgerMu
	walScratch   []byte // record-encoding scratch, guarded by ledgerMu
	// Reused record envelopes for the hot append paths (submit and
	// choose run once per request); appendLocked only encodes them, so
	// reuse under ledgerMu is safe and keeps the paths allocation-free.
	walRecScratch walRecord
	walSubScratch submitRec
	walChoScratch chooseRec
	idem          *idemLRU
	lastSnapSeg   atomic.Uint64
	snapCount     atomic.Int64
	divergence    atomic.Int64
	recInfo       recoveryInfo

	// statsMu guards the online accumulators for the website panel
	// (Fig. 4c). Taken after ledgerMu when both are needed.
	statsMu    sync.Mutex
	respNs     stats.Online // per-match wall time
	respP95    *stats.P2Quantile
	optCount   stats.Online
	verified   stats.Online
	pruned     stats.Online
	cells      stats.Online
	distCalls  stats.Online
	parWidth   stats.Online // widest probe fan-out per match
	waitDist   stats.Online // actual − planned pickup distance
	detourFrac stats.Online // in-vehicle distance / direct distance

	// Tick observability (also behind statsMu): wall time and merged
	// event volume per Tick, plus the worst per-tick shard skew seen —
	// the gap between the slowest and fastest shard of one step, the
	// quantity that bounds parallel efficiency.
	tickWallMs     stats.Online
	tickEvents     stats.Online
	lastTickWallMs float64
	maxShardSkewMs float64

	// Telemetry instruments (see Config.Telemetry). reg and every
	// histogram are nil when telemetry is off; the histograms' methods
	// are nil-safe no-ops, so the hot paths observe unconditionally and
	// only pay when enabled.
	reg             *telemetry.Registry
	quoteHist       *telemetry.LatencyHist
	registerHist    *telemetry.LatencyHist
	walWaitHist     *telemetry.LatencyHist
	probeCommitHist *telemetry.LatencyHist
	tickHist        *telemetry.LatencyHist
}

// NewEngine builds the full system over an embedded road network.
func NewEngine(g *roadnet.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	sub, err := newSubstrate(g, cfg)
	if err != nil {
		return nil, err
	}
	metric := newMemoMetric(sub.grid, sub.lm, cfg.DisableLB)
	lists := gridindex.NewVehicleLists(sub.grid.NumCells())
	fl, err := fleet.New(sub.grid, lists, metric, fleet.Config{
		Capacity:          cfg.Capacity,
		MaxSchedulePoints: cfg.MaxSchedulePoints,
		Seed:              cfg.Seed,
		Workers:           cfg.TickWorkers,
		// Nil registry hands out a nil histogram — telemetry off.
		ShardHist: cfg.Telemetry.LatencyHist(
			"ptrider_tick_shard_duration_seconds",
			"Per-shard wall time of one fleet movement step."),
	})
	if err != nil {
		return nil, err
	}
	rngSrc := fleet.NewCountedSource(cfg.Seed)
	e := &Engine{
		sub:       sub,
		metric:    metric,
		lists:     lists,
		fleet:     fl,
		rng:       rand.New(rngSrc),
		rngSrc:    rngSrc,
		reqs:      make(map[RequestID]*RequestRecord),
		byVeh:     make(map[fleet.VehicleID]map[RequestID]bool),
		respP95:   stats.NewP2Quantile(0.95),
		snapEvery: cfg.SnapshotEvery,
		idem:      newIdemLRU(idemCapacity),
	}
	e.algo.Store(int32(cfg.Algorithm))
	if cfg.SurgeEnabled {
		e.tracker = surge.New(sub.grid.NumCells(), surge.Config{Tiers: cfg.SurgeTiers, Alpha: cfg.SurgeAlpha})
		e.surgeSupply = make([]int, sub.grid.NumCells())
		e.surgeNext = cfg.SurgeEpochSeconds
		e.fares = pricing.NewPipeline(pricing.Base(sub.model), pricing.Surge(e.tracker))
	} else {
		e.fares = pricing.NewPipeline(pricing.Base(sub.model))
	}
	e.mctx = newMatchContext(sub, fl, lists, metric, cfg.MatchWorkers, cfg.DisableEmptyLemma)
	e.matchers = map[Algorithm]Matcher{
		AlgoNaive:      newNaiveMatcher(e.mctx),
		AlgoSingleSide: newSingleSideMatcher(e.mctx),
		AlgoDualSide:   newDualSideMatcher(e.mctx),
	}
	if cfg.Telemetry != nil {
		e.initTelemetry(cfg.Telemetry)
	}
	if cfg.Durability != wal.ModeOff {
		if err := e.openDurability(cfg); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// initTelemetry registers the engine's instruments. Stage histograms
// live as fields so the hot paths reach them without a registry
// lookup; lifecycle counters and clock/surge gauges are func-backed —
// the engine already tracks them, so the scrape reads the live values
// instead of double-counting. The surge gauges are registered even
// when surge is off (reading zero) so the family exists on every
// telemetry-enabled backend.
func (e *Engine) initTelemetry(reg *telemetry.Registry) {
	e.reg = reg
	stage := func(s string) telemetry.Label { return telemetry.Label{Name: "stage", Value: s} }
	const subHelp = "Submit pipeline stage wall times."
	e.quoteHist = reg.LatencyHist("ptrider_submit_stage_duration_seconds", subHelp, stage("quote"))
	e.registerHist = reg.LatencyHist("ptrider_submit_stage_duration_seconds", subHelp, stage("register"))
	e.walWaitHist = reg.LatencyHist("ptrider_submit_stage_duration_seconds", subHelp, stage("wal_wait"))
	e.probeCommitHist = reg.LatencyHist("ptrider_submit_stage_duration_seconds", subHelp, stage("probe_commit"))
	e.tickHist = reg.LatencyHist("ptrider_tick_duration_seconds",
		"Whole-tick movement-phase wall time.")

	reg.CounterFunc("ptrider_requests_total", "Quoted requests.",
		func() float64 { return float64(e.requests.Load()) })
	ledgerCount := func(f func() int64) func() float64 {
		return func() float64 {
			e.ledgerMu.Lock()
			defer e.ledgerMu.Unlock()
			return float64(f())
		}
	}
	reg.CounterFunc("ptrider_assigned_total", "Requests committed to a vehicle.",
		ledgerCount(func() int64 { return e.assigned }))
	reg.CounterFunc("ptrider_declined_total", "Requests declined or cancelled.",
		ledgerCount(func() int64 { return e.declined }))
	reg.CounterFunc("ptrider_completed_total", "Requests dropped off.",
		ledgerCount(func() int64 { return e.completed }))
	reg.GaugeFunc("ptrider_clock_seconds", "Simulated engine clock.", e.Clock)
	reg.GaugeFunc("ptrider_vehicles", "In-service vehicles.",
		func() float64 { return float64(e.NumVehicles()) })
	reg.GaugeFunc("ptrider_surge_epoch", "Current surge pricing epoch (0 when surge is off).",
		func() float64 { return float64(e.SurgeStats().Epoch) })
	reg.GaugeFunc("ptrider_surge_active_cells", "Cells with a non-unit surge multiplier.",
		func() float64 { return float64(e.SurgeStats().ActiveCells) })
}

// MetricFamilies gathers the engine's telemetry registry (nil when
// telemetry is off). The server's /metrics handler merges this with
// its own HTTP-layer families.
func (e *Engine) MetricFamilies() []telemetry.Family { return e.reg.Gather() }

// Ready reports whether the engine can serve traffic: construction
// succeeded (trivially true by the time a caller holds an *Engine) and
// the journal, when configured, has not died. The /v1/readyz probe is
// the caller.
func (e *Engine) Ready() error { return e.alive() }

// Grid exposes the road-network index (read-only).
func (e *Engine) Grid() *gridindex.Grid { return e.sub.grid }

// Graph exposes the road network.
func (e *Engine) Graph() *roadnet.Graph { return e.sub.g }

// Speed returns the system speed in metres per second.
func (e *Engine) Speed() float64 { return e.sub.speed }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.sub.cfg }

// LegLimits returns the global waiting-time and planned-pick-up
// budgets relay leg quoting widens by the transfer buffer. Part of the
// relay.LegEngine contract, which remote shard clients also satisfy.
func (e *Engine) LegLimits() (maxWait, maxPickup float64) {
	return e.sub.cfg.MaxWaitSeconds, e.sub.cfg.MaxPickupSeconds
}

// ReadyCities reports the single city's readiness (see Ready).
func (e *Engine) ReadyCities() []CityReadiness {
	cr := CityReadiness{City: DefaultCityName, Ready: true}
	if err := e.Ready(); err != nil {
		cr.Ready, cr.Err = false, err.Error()
	}
	return []CityReadiness{cr}
}

// Clock returns the simulated time in seconds.
func (e *Engine) Clock() float64 {
	return math.Float64frombits(e.clockBits.Load())
}

// SetAlgorithm switches the matching algorithm at run time (website
// admin control).
func (e *Engine) SetAlgorithm(a Algorithm) error {
	if _, ok := e.matchers[a]; !ok {
		return fmt.Errorf("core: unknown algorithm %v", a)
	}
	e.algo.Store(int32(a))
	return nil
}

// Algorithm returns the active matching algorithm.
func (e *Engine) Algorithm() Algorithm {
	return Algorithm(e.algo.Load())
}

// AddVehicleAt places a vehicle at the given vertex.
func (e *Engine) AddVehicleAt(loc roadnet.VertexID) fleet.VehicleID {
	ids := e.addVehicles([]roadnet.VertexID{loc}, 0)
	if len(ids) == 0 {
		return -1
	}
	return ids[0]
}

// AddVehiclesUniform places n vehicles uniformly at random vertices
// (the demo's initialisation) and returns their ids.
func (e *Engine) AddVehiclesUniform(n int) []fleet.VehicleID {
	if err := e.alive(); err != nil {
		return nil
	}
	// Draw and add under ledgerMu: the journaled record carries both
	// the drawn locations and the placement stream's raw step count, so
	// the snapshot's stream position and the tail's burns always add up
	// (ledgerMu → rngMu is a fresh lock edge with no reverse path).
	e.ledgerMu.Lock()
	e.rngMu.Lock()
	before := e.rngSrc.Draws()
	locs := make([]roadnet.VertexID, n)
	for i := range locs {
		locs[i] = roadnet.VertexID(e.rng.Intn(e.sub.g.NumVertices()))
	}
	draws := e.rngSrc.Draws() - before
	e.rngMu.Unlock()
	ids, commit := e.addVehiclesLocked(locs, draws)
	e.ledgerMu.Unlock()
	if e.noteWALErr(commit.Wait()) != nil {
		return nil
	}
	return ids
}

// addVehicles journals and applies a placement of explicit locations
// (draws = placement-RNG steps consumed drawing them, if any).
func (e *Engine) addVehicles(locs []roadnet.VertexID, draws uint64) []fleet.VehicleID {
	if err := e.alive(); err != nil {
		return nil
	}
	e.ledgerMu.Lock()
	ids, commit := e.addVehiclesLocked(locs, draws)
	e.ledgerMu.Unlock()
	if e.noteWALErr(commit.Wait()) != nil {
		return nil
	}
	return ids
}

func (e *Engine) addVehiclesLocked(locs []roadnet.VertexID, draws uint64) ([]fleet.VehicleID, wal.Commit) {
	var commit wal.Commit
	if e.journal != nil {
		rec := &walRecord{Op: opAddV, AddV: &addvRec{Locs: locs, Draws: draws}}
		var err error
		commit, err = e.appendLocked(rec)
		if err != nil {
			return nil, wal.Commit{}
		}
	}
	ids := make([]fleet.VehicleID, len(locs))
	for i, loc := range locs {
		ids[i] = e.fleet.AddVehicle(loc).ID
	}
	return ids, commit
}

// NumVehicles returns the number of in-service vehicles.
func (e *Engine) NumVehicles() int {
	return e.fleet.NumActive()
}

// Constraints carries per-request overrides of the global waiting time
// and service constraint. The demo "adopts a global setting for
// simplification" but notes riders may set their own (§4.2); this is
// the non-simplified version. Zero fields fall back to the globals.
type Constraints struct {
	// WaitSeconds overrides the maximal waiting time w.
	WaitSeconds float64
	// Sigma overrides the service constraint σ. Negative means "use the
	// global"; zero is a valid override (no detour allowed), so use
	// DefaultSigma (-1) for fallback.
	Sigma float64
	// MaxPickupSeconds overrides the engine-global planned pick-up
	// cutoff for this request (0 = global). Relay leg quoting widens it:
	// a hand-off pickup may legitimately be planned one transfer window
	// later than an ordinary door pickup.
	MaxPickupSeconds float64
}

// DefaultSigma requests the engine-global service constraint.
const DefaultSigma = -1.0

// DefaultConstraints uses the engine-global settings.
func DefaultConstraints() Constraints {
	return Constraints{WaitSeconds: 0, Sigma: DefaultSigma}
}

// Submit answers a ridesharing request under the global constraints: it
// runs the active matcher and returns a snapshot of the request record
// holding all qualified non-dominated options. The rider then calls
// Choose or Decline. Submissions run fully in parallel: no engine-wide
// lock is held while matching.
func (e *Engine) Submit(s, d roadnet.VertexID, riders int) (*RequestRecord, error) {
	return e.SubmitWithConstraints(s, d, riders, DefaultConstraints())
}

// SubmitWithConstraints is Submit with per-rider waiting-time and
// service-constraint overrides.
func (e *Engine) SubmitWithConstraints(s, d roadnet.VertexID, riders int, c Constraints) (*RequestRecord, error) {
	return e.SubmitIdem(s, d, riders, c, "")
}

// SubmitIdem is SubmitWithConstraints with an idempotency key: a
// non-empty key that matches an earlier submission returns that
// submission's current record instead of quoting again, which is what
// makes a client (or recovery-driven) retry of a submit safe — the
// original may have been journaled before the crash, and re-quoting it
// would fork the id sequence.
func (e *Engine) SubmitIdem(s, d roadnet.VertexID, riders int, c Constraints, idemKey string) (*RequestRecord, error) {
	return e.submitIdemSpan(s, d, riders, c, idemKey, nil)
}

// SubmitSpanned is SubmitIdem with a request span (see
// SubmitSpec.Span) — the multi-city router threads the HTTP
// middleware's span down to the owning city's engine through it.
func (e *Engine) SubmitSpanned(s, d roadnet.VertexID, riders int, c Constraints, idemKey string, sp *telemetry.Span) (*RequestRecord, error) {
	return e.submitIdemSpan(s, d, riders, c, idemKey, sp)
}

// submitIdemSpan is SubmitIdem with an optional request span: the
// server's middleware opens one per HTTP request and the stage timings
// recorded here become the slow-request breakdown. A nil span costs
// nothing (nil-safe no-ops), and the histograms are nil when telemetry
// is off, so the instrumentation reuses the clock reads observeMatch
// already pays for.
func (e *Engine) submitIdemSpan(s, d roadnet.VertexID, riders int, c Constraints, idemKey string, sp *telemetry.Span) (*RequestRecord, error) {
	if err := e.alive(); err != nil {
		return nil, err
	}
	if idemKey != "" {
		e.ledgerMu.Lock()
		id, hit := e.idem.get(idemKey)
		var cp RequestRecord
		if hit {
			cp = *e.reqs[id]
		}
		e.ledgerMu.Unlock()
		if hit {
			return &cp, nil
		}
	}
	spec, wait, sigma, err := e.prepareRequest(s, d, riders, c)
	if err != nil {
		return nil, err
	}

	var ms MatchStats
	start := time.Now()
	options := e.matchers[e.Algorithm()].Match(&spec, &ms)
	elapsed := time.Since(start)
	e.observeMatch(&ms, len(options), float64(elapsed.Nanoseconds()))
	if e.quoteHist != nil || sp != nil {
		secs := elapsed.Seconds()
		e.quoteHist.Observe(secs)
		sp.Observe("quote", secs)
	}

	cp, err := e.registerRecord(&spec, wait, sigma, options, idemKey, sp)
	if err != nil {
		return nil, err
	}
	return &cp, nil
}

// prepareRequest validates a request, resolves constraint defaults, and
// builds the matcher-level spec under a freshly assigned id — the entry
// work shared by per-request and batch submission.
func (e *Engine) prepareRequest(s, d roadnet.VertexID, riders int, c Constraints) (spec ReqSpec, wait, sigma float64, err error) {
	n := e.sub.g.NumVertices()
	if s < 0 || int(s) >= n || d < 0 || int(d) >= n {
		return spec, 0, 0, fmt.Errorf("core: request endpoints out of range")
	}
	if s == d {
		return spec, 0, 0, fmt.Errorf("core: start and destination coincide")
	}
	if riders < 1 {
		return spec, 0, 0, fmt.Errorf("core: rider count %d < 1", riders)
	}
	// A group larger than every vehicle's capacity is a legitimate
	// request that simply cannot be served: matching returns an empty
	// skyline (each kinetic tree refuses it), mirroring the demo's
	// behaviour of showing no taxis rather than an input error.
	sd := e.metric.Dist(s, d)
	if math.IsInf(sd, 1) {
		return spec, 0, 0, fmt.Errorf("core: no route from %d to %d", s, d)
	}
	wait = c.WaitSeconds
	if wait <= 0 {
		wait = e.sub.cfg.MaxWaitSeconds
	}
	sigma = c.Sigma
	if sigma < 0 {
		sigma = e.sub.cfg.Sigma
	}
	maxPickup := c.MaxPickupSeconds
	if maxPickup <= 0 {
		maxPickup = e.sub.cfg.MaxPickupSeconds
	}
	// Resolve the fare through the pricing pipeline, pinned to the
	// origin cell's surge multiplier as of this instant — the context
	// is immutable for the quote's lifetime, so an epoch rolling over
	// mid-match cannot bend a price already being searched under.
	cell := int32(-1)
	if e.tracker != nil {
		cell = int32(e.sub.grid.CellOf(s))
	}
	fare := e.fares.Resolve(riders, sd, cell)
	spec = ReqSpec{
		Kin: kinetic.Request{
			ID: RequestID(e.nextID.Add(1)), S: s, D: d, Riders: riders,
			SD:           sd,
			ServiceLimit: (1 + sigma) * sd,
			WaitBudget:   wait * e.sub.speed,
		},
		Fare:          fare,
		Ratio:         fare.Ratio,
		MinPrice:      fare.MinPrice(sd),
		MaxPickupDist: maxPickup * e.sub.speed,
	}
	return spec, wait, sigma, nil
}

// observeMatch folds one answered match into the online accumulators
// and counts the request. The count lands before the record becomes
// visible: any assign that includes this request is then counted after
// it, keeping Stats' Assigned ≤ Requests under concurrency.
func (e *Engine) observeMatch(ms *MatchStats, numOptions int, elapsedNs float64) {
	e.statsMu.Lock()
	e.respNs.Observe(elapsedNs)
	e.respP95.Observe(elapsedNs)
	e.optCount.Observe(float64(numOptions))
	e.verified.Observe(float64(ms.Verified))
	e.pruned.Observe(float64(ms.PrunedVehicles))
	e.cells.Observe(float64(ms.CellsScanned))
	e.distCalls.Observe(float64(ms.DistCalls))
	e.parWidth.Observe(float64(ms.ParallelWidth))
	e.statsMu.Unlock()
	e.requests.Add(1)
}

// registerRecord creates the quoted ledger record for an answered
// request, journals it, and returns a snapshot copy. A non-empty
// idemKey is re-checked authoritatively under ledgerMu — two
// concurrent submits with the same key race to here, and the loser
// returns the winner's record (undoing its own request count so the
// lifecycle counters match a single submission).
func (e *Engine) registerRecord(spec *ReqSpec, wait, sigma float64, options []Option, idemKey string, sp *telemetry.Span) (RequestRecord, error) {
	// Stage timing brackets the ledger critical section ("register")
	// and the group-commit wait ("wal_wait") separately — the two very
	// different ways a submit can stall. Clock reads are gated so the
	// telemetry-off path stays free of them.
	timed := e.registerHist != nil || sp != nil
	var regStart time.Time
	if timed {
		regStart = time.Now()
	}
	rec := &RequestRecord{
		ID: spec.Kin.ID, S: spec.Kin.S, D: spec.Kin.D, Riders: spec.Kin.Riders,
		WaitSeconds: wait, Sigma: sigma,
		Status: StatusQuoted, Options: options, Chosen: -1,
		SD: spec.Kin.SD, SubmitClock: e.Clock(),
		FareRatio: spec.Fare.Ratio, SurgeMult: spec.Fare.Multiplier,
		SurgeCell: spec.Fare.Cell, SurgeEpoch: spec.Fare.Epoch,
	}
	e.ledgerMu.Lock()
	if idemKey != "" {
		if prior, hit := e.idem.get(idemKey); hit {
			cp := *e.reqs[prior]
			e.ledgerMu.Unlock()
			e.requests.Add(-1)
			return cp, nil
		}
	}
	var commit wal.Commit
	if e.journal != nil {
		e.walSubScratch = submitRec{
			ID: rec.ID, S: rec.S, D: rec.D, Riders: rec.Riders,
			Wait: wait, Sigma: sigma, SD: rec.SD, Clock: rec.SubmitClock,
			FareRatio: rec.FareRatio, SurgeMult: rec.SurgeMult,
			SurgeCell: rec.SurgeCell, SurgeEpoch: rec.SurgeEpoch,
			IdemKey: idemKey, Options: options,
		}
		e.walRecScratch = walRecord{Op: opSubmit, Submit: &e.walSubScratch}
		var err error
		commit, err = e.appendLocked(&e.walRecScratch)
		if err != nil {
			e.ledgerMu.Unlock()
			return RequestRecord{}, err
		}
	}
	e.reqs[rec.ID] = rec
	if e.tracker != nil {
		// Demand lands here, under ledgerMu after the journal append, so
		// the replayed tracker re-accumulates exactly the demand the
		// live one counted: one per installed record, idempotent
		// duplicates excluded.
		e.tracker.RecordDemand(rec.SurgeCell)
		if rec.SurgeMult != 1 {
			e.surgedQuotes.Add(1)
		}
	}
	if idemKey != "" {
		e.idem.put(idemKey, rec.ID)
	}
	cp := *rec
	e.ledgerMu.Unlock()
	var walStart time.Time
	if timed {
		secs := time.Since(regStart).Seconds()
		e.registerHist.Observe(secs)
		sp.Observe("register", secs)
		walStart = time.Now()
	}
	err := e.noteWALErr(commit.Wait())
	if timed && e.journal != nil {
		secs := time.Since(walStart).Seconds()
		e.walWaitHist.Observe(secs)
		sp.Observe("wal_wait", secs)
	}
	if err != nil {
		return RequestRecord{}, err
	}
	return cp, nil
}

// Choose commits the rider's selected option: a validate-then-commit
// under the chosen vehicle's lock. The candidate quoted at Submit is
// validated against the vehicle's current schedule state; if it has
// gone stale and Config.CommitSlack allows, the request is re-probed
// and an equivalent fresh candidate committed (see fleet.Commit).
//
// The ledger lock is held across the vehicle commit. That is what
// makes assignment atomic with respect to the rest of the lifecycle:
// a pickup served by a concurrent Tick, or an orphaning
// RemoveVehicle, must pass through ledgerMu to touch the record, so
// neither can observe — or be clobbered by — a half-finalised
// assignment. The order ledgerMu → Vehicle.mu is safe because no
// code path acquires ledgerMu while holding a vehicle lock (Tick
// releases every vehicle before its ledger phase), and matching —
// the hot path — never touches ledgerMu at all.
func (e *Engine) Choose(id RequestID, optionIndex int) error {
	if err := e.alive(); err != nil {
		return err
	}
	e.ledgerMu.Lock()
	commit, err := e.chooseLocked(id, optionIndex)
	e.ledgerMu.Unlock()
	if err != nil {
		return err
	}
	return e.noteWALErr(commit.Wait())
}

func (e *Engine) chooseLocked(id RequestID, optionIndex int) (wal.Commit, error) {
	var none wal.Commit
	rec, ok := e.reqs[id]
	if !ok {
		return none, fmt.Errorf("core: unknown request %d: %w", id, ErrNotFound)
	}
	if rec.Status != StatusQuoted {
		if rec.Status == StatusAssigned || rec.Status == StatusOnboard || rec.Status == StatusCompleted {
			// A committed request cannot be committed again — the
			// double-submit a client retry produces. Typed so transports
			// can answer 409 rather than a generic failure.
			return none, fmt.Errorf("core: request %d is %v, not quoted: %w", id, rec.Status, ErrAlreadyChosen)
		}
		return none, fmt.Errorf("core: request %d is %v, not quoted", id, rec.Status)
	}
	if optionIndex < 0 || optionIndex >= len(rec.Options) {
		return none, fmt.Errorf("core: option index %d outside [0,%d)", optionIndex, len(rec.Options))
	}
	opt := rec.Options[optionIndex]
	spec := kinetic.Request{
		ID: id, S: rec.S, D: rec.D, Riders: rec.Riders,
		SD:           rec.SD,
		ServiceLimit: (1 + rec.Sigma) * rec.SD,
		WaitBudget:   rec.WaitSeconds * e.sub.speed,
	}
	// Reprice under the quote-time fare context, never the current
	// tracker state: the rider chose from prices fixed at submit, and a
	// surge epoch rolling over between quote and choice must not move
	// them. Zero FareRatio means a record recovered from a pre-pipeline
	// snapshot; the static model is exact for those.
	ratio := rec.FareRatio
	if ratio == 0 {
		ratio = e.sub.model.Ratio(rec.Riders)
	}

	var pc0 time.Time
	if e.probeCommitHist != nil {
		pc0 = time.Now()
	}
	res, err := e.fleet.Commit(opt.Vehicle, spec, opt.Candidate, e.sub.cfg.CommitSlack)
	if e.probeCommitHist != nil {
		// Failed commits are observed too: a stale-candidate rejection
		// still spent the vehicle-lock time the histogram measures.
		e.probeCommitHist.ObserveSince(pc0)
	}
	if err != nil {
		return none, err
	}
	price := opt.Price
	if res.Reprobed {
		// The committed schedule differs from the quoted one; reprice
		// from the committed detour so the record stays truthful.
		price = ratio * (res.Candidate.Delta + rec.SD)
	}
	// Journal the commit outcome after the vehicle accepted it. A crash
	// between the fleet commit and a durable append leaves the dying
	// process's fleet ahead of the journal — harmless, because the
	// in-memory state is discarded and recovery rebuilds the fleet from
	// what was journaled.
	var commit wal.Commit
	if e.journal != nil {
		e.walChoScratch = chooseRec{
			ID: id, OptionIndex: optionIndex, Vehicle: opt.Vehicle,
			Price: price, PlannedPickupOdo: res.PlannedPickupOdo,
			Reprobed: res.Reprobed,
		}
		e.walRecScratch = walRecord{Op: opChoose, Choose: &e.walChoScratch}
		commit, err = e.appendLocked(&e.walRecScratch)
		if err != nil {
			return none, err
		}
	}
	rec.Status = StatusAssigned
	rec.Chosen = optionIndex
	rec.Vehicle = opt.Vehicle
	rec.Price = price
	rec.PlannedPickupOdo = res.PlannedPickupOdo
	if e.byVeh[opt.Vehicle] == nil {
		e.byVeh[opt.Vehicle] = make(map[RequestID]bool)
	}
	e.byVeh[opt.Vehicle][id] = true
	e.assigned++
	return commit, nil
}

// CancelAssigned releases an assigned request whose rider has not been
// picked up yet: the vehicle reservation is dropped (see fleet.Cancel)
// and the record ends declined. It is the compensation primitive of the
// relay scheduler's two-phase commit — abort of leg 2 must release
// leg 1 — and doubles as a rider cancellation. A request whose rider is
// already onboard cannot be cancelled; the error reports it.
//
// Like Choose, the ledger lock is held across the fleet mutation so a
// concurrent Tick's event application cannot interleave with the
// cancellation: a pickup that already physically happened makes
// fleet.Cancel refuse (the record then stays assigned and the pickup
// lands normally), and one that has not cannot land afterwards because
// the request has left the vehicle's tree.
func (e *Engine) CancelAssigned(id RequestID) error {
	if err := e.alive(); err != nil {
		return err
	}
	e.ledgerMu.Lock()
	commit, err := e.cancelAssignedLocked(id)
	e.ledgerMu.Unlock()
	if err != nil {
		return err
	}
	return e.noteWALErr(commit.Wait())
}

func (e *Engine) cancelAssignedLocked(id RequestID) (wal.Commit, error) {
	var none wal.Commit
	rec, ok := e.reqs[id]
	if !ok {
		return none, fmt.Errorf("core: unknown request %d: %w", id, ErrNotFound)
	}
	if rec.Status != StatusAssigned {
		return none, fmt.Errorf("core: request %d is %v, not assigned", id, rec.Status)
	}
	if err := e.fleet.Cancel(rec.Vehicle, id); err != nil {
		return none, err
	}
	var commit wal.Commit
	if e.journal != nil {
		var err error
		commit, err = e.appendLocked(&walRecord{Op: opCancel, ReqID: id})
		if err != nil {
			return none, err
		}
	}
	rec.Status = StatusDeclined
	delete(e.byVeh[rec.Vehicle], id)
	e.assigned--
	e.declined++
	return commit, nil
}

// BatchItem is one request of a simultaneous batch.
type BatchItem struct {
	S, D        roadnet.VertexID
	Riders      int
	Constraints Constraints
	// Choose picks an option index from the quoted skyline (or -1 to
	// decline). Nil declines everything (quote-only batch).
	Choose func(options []Option) int
}

// batchWaveTail bounds how many items past the first potential
// committer one wave speculatively quotes (see SubmitBatch).
const batchWaveTail = 7

// batchPrep is one validated batch item awaiting its quote.
type batchPrep struct {
	idx         int // index into the caller's items
	spec        ReqSpec
	wait, sigma float64
}

// SubmitBatch processes simultaneously issued requests with the paper's
// greedy strategy (§2.5): commitments are applied one at a time in
// batch order, each subsequent quote seeing the fleet state left by the
// previous commitments. Between commitments, quoting is coalesced:
// maximal runs of consecutive items ("waves") are matched together, and
// items sharing an origin grid cell share one ring frontier, one
// vehicle-list fetch and probe-state read per ring cell, and
// multi-target distance passes (see matchGroup) — the hot-cell path
// that makes N co-located simultaneous requests cost far less than N
// independent submits. A successful commitment ends the wave; the
// remaining items are re-quoted in a fresh wave so greedy semantics are
// preserved exactly.
//
// It returns one record snapshot per item, in order; individual
// failures are recorded as nil entries with the first error returned.
// Unrelated traffic may interleave with a batch — the greedy order is a
// property of the batch, not a global freeze.
func (e *Engine) SubmitBatch(items []BatchItem) ([]*RequestRecord, error) {
	if err := e.alive(); err != nil {
		return nil, err
	}
	out := make([]*RequestRecord, len(items))
	var firstErr error
	fail := func(i int, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("core: batch item %d: %w", i, err)
		}
	}

	preps := make([]batchPrep, 0, len(items))
	for i, it := range items {
		spec, wait, sigma, err := e.prepareRequest(it.S, it.D, it.Riders, it.Constraints)
		if err != nil {
			fail(i, err)
			continue
		}
		preps = append(preps, batchPrep{idx: i, spec: spec, wait: wait, sigma: sigma})
	}

	for start := 0; start < len(preps); {
		// A wave is a maximal run of items that cannot commit (nil
		// Choose) — their coalesced quotes are never discarded — plus a
		// bounded tail once choosers appear. The tail bounds the
		// speculation: a commit discards at most batchWaveTail quotes
		// (so commit-heavy batches cost O(k·tail), not O(k²)), while
		// decline-heavy chooser batches still coalesce about
		// batchWaveTail+1 items per wave.
		end := start
		for end < len(preps) && items[preps[end].idx].Choose == nil {
			end++
		}
		for tail := 0; end < len(preps) && tail <= batchWaveTail; tail++ {
			end++
		}
		start += e.runWave(preps[start:end], items, out, fail)
	}
	return out, firstErr
}

// runWave quotes a maximal commit-free run of batch items in one
// coalesced pass, then walks the wave in batch order applying choices.
// The first successful commitment truncates the wave — its tail is
// discarded and re-quoted by the caller against the post-commit fleet,
// which is exactly the paper's greedy order. It returns the number of
// items consumed.
func (e *Engine) runWave(wave []batchPrep, items []BatchItem, out []*RequestRecord, fail func(int, error)) int {
	start := time.Now()
	optsList, statsList := e.matchWave(wave)
	perNs := float64(time.Since(start).Nanoseconds()) / float64(len(wave))

	consumed := 0
	for wi := range wave {
		p := &wave[wi]
		id := p.spec.Kin.ID
		e.observeMatch(&statsList[wi], len(optsList[wi]), perNs)
		snap, err := e.registerRecord(&p.spec, p.wait, p.sigma, optsList[wi], "", nil)
		if err != nil {
			fail(p.idx, err)
			consumed = wi + 1
			break
		}

		committed := false
		pick := -1
		if ch := items[p.idx].Choose; ch != nil {
			pick = ch(snap.Options)
		}
		if pick >= 0 && pick < len(snap.Options) {
			if err := e.Choose(id, pick); err != nil {
				// Don't abandon the record in the quoted state: a
				// failed choice (e.g. the candidate went stale under a
				// concurrent ticker) ends the item's lifecycle here.
				fail(p.idx, fmt.Errorf("choose: %w", err))
				_ = e.Decline(id)
			} else {
				committed = true
			}
		} else {
			_ = e.Decline(id)
		}
		if fresh, err := e.Request(id); err == nil {
			out[p.idx] = fresh
		} else {
			cp := snap
			out[p.idx] = &cp
		}
		consumed = wi + 1
		if committed {
			break
		}
	}
	return consumed
}

// matchWave quotes one wave: items are grouped by origin grid cell and
// each group of two or more rides one shared ring frontier
// (matchGroup); singleton groups — and the naive algorithm, which scans
// no rings — run the ordinary per-request matcher. Groups are mutually
// independent (each owns its requests' skylines and counters, and
// quoting never mutates fleet state), so they fan out over the engine's
// worker budget like candidate probes do; the per-group results are
// deterministic, so the wave's option sets match a serial pass exactly.
// Per-request DistCalls deltas are read from the shared counter, so
// concurrently-running groups bleed into each other's counts — the same
// documented imprecision concurrent Submits always had (see
// MatchStats); the engine-level DistCalls() total stays exact.
func (e *Engine) matchWave(wave []batchPrep) ([][]Option, []MatchStats) {
	k := len(wave)
	optsList := make([][]Option, k)
	statsList := make([]MatchStats, k)
	algo := e.Algorithm()
	m := e.matchers[algo]
	dual := algo == AlgoDualSide
	coalesce := (algo == AlgoSingleSide || dual) && !e.sub.cfg.DisableEmptyLemma
	if !coalesce || k == 1 {
		// No grouping: every item is its own independent match.
		width := e.mctx.workers
		if width > k {
			width = k
		}
		parallelFor(width, k, func(i int) {
			optsList[i] = m.Match(&wave[i].spec, &statsList[i])
		})
		return optsList, statsList
	}

	// Group the wave's items by origin cell. idxs holds the members of
	// every group back to back; groups[g] is the offset of group g+1,
	// so group g spans idxs[groups[g-1]:groups[g]].
	grouped := make([]bool, k)
	idxs := make([]int, 0, k)
	groups := make([]int, 0, 4)
	for i := 0; i < k; i++ {
		if grouped[i] {
			continue
		}
		cell := e.sub.grid.CellOf(wave[i].spec.Kin.S)
		for j := i; j < k; j++ {
			if !grouped[j] && e.sub.grid.CellOf(wave[j].spec.Kin.S) == cell {
				grouped[j] = true
				idxs = append(idxs, j)
			}
		}
		groups = append(groups, len(idxs))
	}

	specs := make([]*ReqSpec, k)
	stats := make([]*MatchStats, k)
	for pos, j := range idxs {
		specs[pos] = &wave[j].spec
		stats[pos] = &statsList[j]
	}

	// Split the worker budget between the two axes: up to `width`
	// groups run concurrently, and each grouped match caps its probe
	// fan-out at workers/width, so the wave's total concurrency stays
	// within MatchWorkers instead of multiplying. (Singleton groups run
	// the plain per-request matcher, whose fan-out is not cappable from
	// here — exactly like independent concurrent Submits.)
	width := e.mctx.workers
	if width > len(groups) {
		width = len(groups)
	}
	innerCap := 0
	if width > 1 {
		innerCap = e.mctx.workers / width
		if innerCap < 1 {
			innerCap = 1
		}
	}
	parallelFor(width, len(groups), func(g int) {
		lo := 0
		if g > 0 {
			lo = groups[g-1]
		}
		hi := groups[g]
		if hi-lo == 1 {
			optsList[idxs[lo]] = m.Match(specs[lo], stats[lo])
			return
		}
		groupOuts := e.mctx.matchGroup(specs[lo:hi], dual, stats[lo:hi], innerCap)
		for gi, j := range idxs[lo:hi] {
			optsList[j] = groupOuts[gi]
		}
	})
	return optsList, statsList
}

// Decline records that the rider took none of the options.
func (e *Engine) Decline(id RequestID) error {
	if err := e.alive(); err != nil {
		return err
	}
	e.ledgerMu.Lock()
	commit, err := e.declineLocked(id)
	e.ledgerMu.Unlock()
	if err != nil {
		return err
	}
	return e.noteWALErr(commit.Wait())
}

func (e *Engine) declineLocked(id RequestID) (wal.Commit, error) {
	var none wal.Commit
	rec, ok := e.reqs[id]
	if !ok {
		return none, fmt.Errorf("core: unknown request %d: %w", id, ErrNotFound)
	}
	if rec.Status != StatusQuoted {
		return none, fmt.Errorf("core: request %d is %v, not quoted", id, rec.Status)
	}
	var commit wal.Commit
	if e.journal != nil {
		var err error
		commit, err = e.appendLocked(&walRecord{Op: opDecline, ReqID: id})
		if err != nil {
			return none, err
		}
	}
	rec.Status = StatusDeclined
	e.declined++
	return commit, nil
}

// Request returns a snapshot of the record of request id. Unknown ids
// fail with ErrNotFound.
func (e *Engine) Request(id RequestID) (*RequestRecord, error) {
	e.ledgerMu.Lock()
	defer e.ledgerMu.Unlock()
	rec, ok := e.reqs[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown request %d: %w", id, ErrNotFound)
	}
	cp := *rec
	return &cp, nil
}

// Tick advances simulated time by dt seconds: vehicles move at the
// system speed, pickups and dropoffs fire, request records update.
// Ticks serialise against each other but overlap with matching and
// choices; a commit landing mid-tick simply waits for that one
// vehicle's step.
func (e *Engine) Tick(dt float64) ([]fleet.Event, error) {
	if dt < 0 {
		return nil, fmt.Errorf("core: negative tick %v: %w", dt, ErrInvalidArgument)
	}
	if err := e.alive(); err != nil {
		return nil, err
	}
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	step := e.fleet.Step
	if e.stepOverride != nil {
		step = e.stepOverride
	}
	t0 := time.Now()
	events, err := step(dt * e.sub.speed)
	wallMs := float64(time.Since(t0)) / float64(time.Millisecond)
	e.tickHist.Observe(wallMs / 1e3)
	if e.stepOverride == nil {
		// Record tick observability only for real fleet steps: an
		// override bypasses the fleet entirely, so its shard stats would
		// be stale. statsMu taken alone is fine (ledgerMu → statsMu is an
		// order, not a requirement to hold both).
		ss := e.fleet.StepStats()
		skewMs := float64(ss.MaxShardNanos-ss.MinShardNanos) / float64(time.Millisecond)
		e.statsMu.Lock()
		e.tickWallMs.Observe(wallMs)
		e.tickEvents.Observe(float64(len(events)))
		e.lastTickWallMs = wallMs
		if skewMs > e.maxShardSkewMs {
			e.maxShardSkewMs = skewMs
		}
		e.statsMu.Unlock()
	}
	if err == nil {
		// The clock advances only after the fleet completed the whole
		// movement step: a failed step must not leave the engine clock
		// permanently ahead of fleet odometry. Events a partially-failed
		// step did produce are still folded below — that movement
		// physically happened, and dropping the pickups/dropoffs would
		// desynchronise the ledger from the fleet. (A failed step is an
		// engine inconsistency; retrying the tick is best-effort, not
		// exactly-once, for the vehicles that did move.)
		e.clockBits.Store(math.Float64bits(e.Clock() + dt))
	}
	e.ledgerMu.Lock()
	var commit, surgeCommit wal.Commit
	if e.journal != nil && err == nil {
		// Journal the tick as (dt, event digest): replay re-runs the
		// deterministic fleet step and cross-checks the digest. A failed
		// step is not journaled — it is unreachable through the public
		// API, and replaying it would re-advance a clock the live engine
		// did not.
		w := &walRecord{Op: opTick, Tick: &tickRec{Dt: dt, N: len(events), Digest: eventsDigest(events)}}
		var jerr error
		commit, jerr = e.appendLocked(w)
		if jerr != nil {
			e.ledgerMu.Unlock()
			return nil, jerr
		}
	}
	if err == nil && e.tracker != nil {
		// Surge epochs advance here, in the same critical section as the
		// tick's journal record: the journal order (tick, then epoch)
		// is the linearisation replay restores, so every submit lands on
		// the same side of the epoch boundary on both runs.
		if clk := e.Clock(); clk >= e.surgeNext {
			var jerr error
			surgeCommit, jerr = e.advanceSurgeLocked(clk)
			if jerr != nil {
				e.ledgerMu.Unlock()
				return nil, jerr
			}
		}
	}
	for _, ev := range events {
		e.applyEventLocked(ev)
	}
	needSnap := err == nil && e.snapshotDueLocked()
	e.ledgerMu.Unlock()
	if werr := e.noteWALErr(commit.Wait()); werr != nil {
		return nil, werr
	}
	if werr := e.noteWALErr(surgeCommit.Wait()); werr != nil {
		return nil, werr
	}
	if needSnap {
		if serr := e.snapshotHoldingTick(); serr != nil {
			return events, serr
		}
	}
	return events, err
}

// advanceSurgeLocked closes one surge epoch at tick time: the grid
// index's per-cell vehicle counts are read in one lock, folded with
// the demand accumulated since the last epoch, and the new multiplier
// vector journaled (tag "srg") so a recovered engine restores the
// identical epoch state instead of re-deriving it. Caller holds
// ledgerMu; the returned commit is waited after unlock like every
// other append.
func (e *Engine) advanceSurgeLocked(clock float64) (wal.Commit, error) {
	e.lists.FillSupply(e.surgeSupply)
	e.tracker.Advance(e.surgeSupply)
	e.surgeNext = clock + e.sub.cfg.SurgeEpochSeconds
	if e.journal == nil {
		return wal.Commit{}, nil
	}
	st := e.tracker.State()
	return e.appendLocked(&walRecord{Op: opSurge, Surge: &surgeRec{
		Epoch: st.Epoch, Next: e.surgeNext, EMA: st.EMA,
	}})
}

// SetStepOverride replaces the fleet movement step used by Tick.
// A fleet step failure is not reachable through the public API on a
// consistent engine, so tests that pin the failure semantics (clock
// stays put, HTTP layer answers 500) inject one here. Passing nil
// restores the real fleet step. Call before concurrent use; not part
// of the supported surface.
func (e *Engine) SetStepOverride(fn func(budget float64) ([]fleet.Event, error)) {
	e.tickMu.Lock()
	e.stepOverride = fn
	e.tickMu.Unlock()
}

// SetVehicleStepFault injects a per-vehicle movement failure into the
// real fleet step (unlike SetStepOverride, which replaces it wholesale).
// Tests that pin the error-join semantics — one bad vehicle must not
// freeze the rest of the fleet for the tick — fault specific ids here.
// Passing nil clears the fault. Call before concurrent use; not part of
// the supported surface.
func (e *Engine) SetVehicleStepFault(fn func(fleet.VehicleID) error) {
	e.fleet.SetStepFault(fn)
}

// applyEventLocked folds one movement event into the ledger. The caller
// holds ledgerMu; the quality accumulators are taken under statsMu
// inside (ledgerMu → statsMu is the documented order).
func (e *Engine) applyEventLocked(ev fleet.Event) {
	rec, ok := e.reqs[ev.Request]
	if !ok {
		return
	}
	switch ev.Kind {
	case fleet.EventPickup:
		if rec.Status != StatusAssigned {
			// The record left the assigned state between the fleet step
			// and this ledger phase — e.g. RemoveVehicle orphaned it to
			// declined. The movement already happened; the lifecycle
			// must not be resurrected.
			return
		}
		rec.Status = StatusOnboard
		rec.PickupOdo = ev.Odo
		wait := ev.Odo - rec.PlannedPickupOdo
		if wait < 0 {
			wait = 0
		}
		e.statsMu.Lock()
		e.waitDist.Observe(wait)
		e.statsMu.Unlock()
		// Sharing: this rider overlaps with every other request
		// currently assigned to the vehicle and onboard.
		for other := range e.byVeh[ev.Vehicle] {
			if other == ev.Request {
				continue
			}
			if o := e.reqs[other]; o != nil && o.Status == StatusOnboard {
				o.Shared = true
				rec.Shared = true
			}
		}
	case fleet.EventDropoff:
		if rec.Status != StatusOnboard {
			return
		}
		rec.Status = StatusCompleted
		rec.DropoffOdo = ev.Odo
		if rec.SD > 0 {
			e.statsMu.Lock()
			e.detourFrac.Observe((ev.Odo - rec.PickupOdo) / rec.SD)
			e.statsMu.Unlock()
		}
		if rec.Shared {
			e.shared++
		}
		e.completed++
		delete(e.byVeh[ev.Vehicle], ev.Request)
	}
}

// VehicleView is a vehicle summary for the website's map.
type VehicleView struct {
	ID       fleet.VehicleID  `json:"id"`
	Location roadnet.VertexID `json:"location"`
	X        float64          `json:"x"`
	Y        float64          `json:"y"`
	Onboard  int              `json:"onboard"`
	Pending  int              `json:"pending_requests"`
}

// VehicleViews returns summaries of up to limit in-service vehicles
// (limit ≤ 0 means all), in id order.
func (e *Engine) VehicleViews(limit int) []VehicleView {
	var out []VehicleView
	for _, v := range e.fleet.Snapshot() {
		if limit > 0 && len(out) >= limit {
			break
		}
		loc, onboard, pending, removed := v.View()
		if removed {
			continue
		}
		p := e.sub.g.Point(loc)
		out = append(out, VehicleView{
			ID:       v.ID,
			Location: loc,
			X:        p.X,
			Y:        p.Y,
			Onboard:  onboard,
			Pending:  pending,
		})
	}
	return out
}

// VehicleSchedules returns every valid trip schedule of a vehicle (the
// website's red lines) plus its current location.
func (e *Engine) VehicleSchedules(id fleet.VehicleID) (loc roadnet.VertexID, branches [][]kinetic.Point, err error) {
	v, err := e.fleet.Vehicle(id)
	if err != nil {
		return 0, nil, err
	}
	loc, branches = v.Schedules()
	return loc, branches, nil
}

// RemoveVehicle injects a vehicle failure. The vehicle's pending
// requests are orphaned: their records are marked declined and their
// ids returned so the caller can resubmit them.
//
// Unlike its first generation this runs under ledgerMu end to end so
// the removal record's journal position matches the ledger mutation
// (ledgerMu → Vehicle.mu inside fleet.RemoveVehicle is the documented
// order; the reverse edge does not exist).
func (e *Engine) RemoveVehicle(id fleet.VehicleID) ([]RequestID, error) {
	if err := e.alive(); err != nil {
		return nil, err
	}
	e.ledgerMu.Lock()
	out, commit, err := e.removeVehicleLocked(id)
	e.ledgerMu.Unlock()
	if err != nil {
		return nil, err
	}
	if werr := e.noteWALErr(commit.Wait()); werr != nil {
		return nil, werr
	}
	return out, nil
}

func (e *Engine) removeVehicleLocked(id fleet.VehicleID) ([]RequestID, wal.Commit, error) {
	var none wal.Commit
	orphans, err := e.fleet.RemoveVehicle(id)
	if err != nil {
		return nil, none, err
	}
	var commit wal.Commit
	if e.journal != nil {
		commit, err = e.appendLocked(&walRecord{Op: opRemV, Vehicle: id})
		if err != nil {
			return nil, none, err
		}
	}
	out := make([]RequestID, 0, len(orphans))
	for _, r := range orphans {
		out = append(out, r.ID)
		if rec := e.reqs[r.ID]; rec != nil {
			rec.Status = StatusDeclined
			delete(e.byVeh[id], r.ID)
		}
	}
	return out, commit, nil
}

// EngineStats is the statistics panel snapshot (Fig. 4c).
type EngineStats struct {
	Clock           float64
	Requests        int64
	Assigned        int64
	Declined        int64
	Completed       int64
	SharedCompleted int64
	SharingRate     float64 // shared / completed
	AvgResponseMs   float64
	P95ResponseMs   float64
	AvgOptions      float64
	AvgVerified     float64
	AvgPruned       float64
	AvgCellsScanned float64
	AvgDistCalls    float64
	AvgMatchWidth   float64 // widest candidate-probe fan-out per match
	AvgWaitSeconds  float64 // actual−planned pickup wait
	AvgDetourFactor float64 // in-vehicle distance / direct
	ActiveVehicles  int

	// Commit-protocol effectiveness (see fleet.CommitStats): stale
	// first-commit attempts, CommitSlack re-probes, and the commits the
	// re-probe salvaged.
	CommitStale    int64
	Reprobes       int64
	ReprobeCommits int64

	// Tick is the sharded time-advancement panel.
	Tick TickStats

	// Surge is the dynamic-pricing panel (Enabled false when the surge
	// stage is off).
	Surge SurgePanel

	// Durability is the write-ahead journaling panel (Mode "off" when
	// journaling is disabled).
	Durability DurabilityStats
}

// SurgePanel summarises the surge pricing stage: the current epoch,
// how much of the grid is surged, and how many quotes priced under a
// non-unit multiplier.
type SurgePanel struct {
	// Enabled reports whether the surge stage is in the pipeline.
	Enabled bool
	// Epoch is the tracker's current epoch (0 before the first
	// advance); EpochSeconds its configured length.
	Epoch        uint64
	EpochSeconds float64
	// Cells is the tracked cell count; ActiveCells how many currently
	// carry a multiplier above 1.
	Cells       int
	ActiveCells int
	// MaxMultiplier and AvgMultiplier describe the current multiplier
	// vector (both 1 when the grid is idle).
	MaxMultiplier float64
	AvgMultiplier float64
	// SurgedQuotes counts quotes resolved under a multiplier above 1.
	SurgedQuotes int64
}

// TickStats summarises Tick's sharded time advancement: how wide the
// shard fan-out runs, how long ticks take, how many movement events they
// merge, and the worst shard skew seen — the slowest-minus-fastest shard
// gap that bounds parallel efficiency. Populated only for real fleet
// steps (a test's SetStepOverride bypasses the fleet and records
// nothing).
type TickStats struct {
	// Workers is the resolved shard width (Config.TickWorkers after
	// defaulting; the fleet additionally clamps to the population size).
	Workers int
	// Ticks counts recorded ticks.
	Ticks int64
	// LastWallMs and AvgWallMs measure the fleet step's wall time.
	LastWallMs float64
	AvgWallMs  float64
	// AvgEvents is the mean merged pickup/dropoff events per tick.
	AvgEvents float64
	// MaxShardSkewMs is the largest slowest−fastest shard wall-time gap
	// observed in any single tick.
	MaxShardSkewMs float64
}

// Stats returns a consistent snapshot of the running statistics without
// stalling the matchers: the lifecycle counters are copied in one brief
// ledger lock, the quality accumulators in one brief stats lock, and
// the request counter is read last so Assigned ≤ Requests and
// Completed ≤ Assigned always hold in the result.
func (e *Engine) Stats() EngineStats {
	var s EngineStats
	e.ledgerMu.Lock()
	s.Assigned = e.assigned
	s.Declined = e.declined
	s.Completed = e.completed
	s.SharedCompleted = e.shared
	e.ledgerMu.Unlock()

	e.statsMu.Lock()
	if e.respP95.Count() > 0 {
		s.P95ResponseMs = e.respP95.Value() / 1e6
	}
	s.AvgResponseMs = e.respNs.Mean() / 1e6
	s.AvgOptions = e.optCount.Mean()
	s.AvgVerified = e.verified.Mean()
	s.AvgPruned = e.pruned.Mean()
	s.AvgCellsScanned = e.cells.Mean()
	s.AvgDistCalls = e.distCalls.Mean()
	s.AvgMatchWidth = e.parWidth.Mean()
	s.AvgWaitSeconds = e.waitDist.Mean() / e.sub.speed
	s.AvgDetourFactor = e.detourFrac.Mean()
	s.Tick.Ticks = e.tickWallMs.Count()
	s.Tick.LastWallMs = e.lastTickWallMs
	s.Tick.AvgWallMs = e.tickWallMs.Mean()
	s.Tick.AvgEvents = e.tickEvents.Mean()
	s.Tick.MaxShardSkewMs = e.maxShardSkewMs
	e.statsMu.Unlock()
	s.Tick.Workers = e.fleet.Workers()

	// Requests is loaded after Assigned: submissions count themselves
	// before their record exists, so the ordering guarantees the
	// snapshot never shows more assignments than requests.
	s.Requests = e.requests.Load()
	s.Clock = e.Clock()
	s.ActiveVehicles = e.fleet.NumActive()
	s.CommitStale, s.Reprobes, s.ReprobeCommits = e.fleet.CommitStats()
	if s.Completed > 0 {
		s.SharingRate = float64(s.SharedCompleted) / float64(s.Completed)
	}
	s.Surge = e.SurgeStats()
	s.Durability = e.DurabilityStats()
	return s
}

// SurgeStats snapshots the surge panel.
func (e *Engine) SurgeStats() SurgePanel {
	if e.tracker == nil {
		return SurgePanel{}
	}
	p := e.tracker.Panel()
	return SurgePanel{
		Enabled:       true,
		Epoch:         p.Epoch,
		EpochSeconds:  e.sub.cfg.SurgeEpochSeconds,
		Cells:         p.Cells,
		ActiveCells:   p.ActiveCells,
		MaxMultiplier: p.MaxMultiplier,
		AvgMultiplier: p.AvgMultiplier,
		SurgedQuotes:  e.surgedQuotes.Load(),
	}
}

// CheckInvariants verifies cross-layer consistency after (possibly
// concurrent) operations: every in-service vehicle's schedule state is
// valid under the engine's capacity, and the lifecycle counters are
// mutually consistent. Intended for tests.
func (e *Engine) CheckInvariants() error {
	if err := e.fleet.CheckInvariants(); err != nil {
		return err
	}
	st := e.Stats()
	if st.Assigned > st.Requests {
		return fmt.Errorf("core: assigned %d > requests %d", st.Assigned, st.Requests)
	}
	if st.Completed > st.Assigned {
		return fmt.Errorf("core: completed %d > assigned %d", st.Completed, st.Assigned)
	}
	if st.SharedCompleted > st.Completed {
		return fmt.Errorf("core: shared %d > completed %d", st.SharedCompleted, st.Completed)
	}
	return nil
}

// MatchOnce runs a single matching with an explicit algorithm without
// registering a request — the benchmark harness's entry point.
func (e *Engine) MatchOnce(algo Algorithm, s, d roadnet.VertexID, riders int) ([]Option, MatchStats, error) {
	m, ok := e.matchers[algo]
	if !ok {
		return nil, MatchStats{}, fmt.Errorf("core: unknown algorithm %v", algo)
	}
	if s == d {
		return nil, MatchStats{}, fmt.Errorf("core: start and destination coincide")
	}
	sd := e.metric.Dist(s, d)
	if math.IsInf(sd, 1) {
		return nil, MatchStats{}, fmt.Errorf("core: no route from %d to %d", s, d)
	}
	cell := int32(-1)
	if e.tracker != nil {
		cell = int32(e.sub.grid.CellOf(s))
	}
	fare := e.fares.Resolve(riders, sd, cell)
	spec := &ReqSpec{
		Kin: kinetic.Request{
			ID: -1, S: s, D: d, Riders: riders,
			SD:           sd,
			ServiceLimit: (1 + e.sub.cfg.Sigma) * sd,
			WaitBudget:   e.sub.cfg.MaxWaitSeconds * e.sub.speed,
		},
		Fare:          fare,
		Ratio:         fare.Ratio,
		MinPrice:      fare.MinPrice(sd),
		MaxPickupDist: e.sub.cfg.MaxPickupSeconds * e.sub.speed,
	}
	var ms MatchStats
	opts := m.Match(spec, &ms)
	return opts, ms, nil
}

// PickupSeconds converts an option's pick-up distance to seconds under
// the engine speed.
func (e *Engine) PickupSeconds(o Option) float64 { return o.PickupDist / e.sub.speed }

// ResetDistCache clears the shared distance memo, so the next matching
// runs against a cold cache. Benchmark-harness use only.
func (e *Engine) ResetDistCache() {
	e.metric.Reset()
}

// DistCalls returns the cumulative number of exact shortest-path
// searches the engine has performed (a multi-target batch pass counts
// once) — the paper's §3.3 efficiency metric, exposed for the
// benchmark harness.
func (e *Engine) DistCalls() int64 { return e.metric.DistCalls() }

// RandomVertex returns a uniformly random vertex (generator helper).
func (e *Engine) RandomVertex() roadnet.VertexID {
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return roadnet.VertexID(e.rng.Intn(e.sub.g.NumVertices()))
}

// SortOptionsByPrice returns the options of a record re-sorted by price
// ascending (the smartphone interface's alternate ordering).
func SortOptionsByPrice(opts []Option) []Option {
	out := append([]Option(nil), opts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Price < out[j].Price })
	return out
}
